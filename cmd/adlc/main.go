// Command adlc is the ADL compiler/checker: parse and validate a
// Darwin-style architecture description, list its configurations, and
// diff two modes into a reconfiguration plan.
//
// Usage:
//
//	adlc check file.adl              # parse + semantic checks
//	adlc lint [-json] file.adl       # static-analysis diagnostics
//	adlc render file.adl             # canonical re-rendering
//	adlc config file.adl [mode]      # flattened configuration
//	adlc diff file.adl from to       # unbind/rebind plan
//	adlc figure4                     # built-in Figure 4 fixture
//
// `lint` runs the admlint configuration-graph pass (dangling binds,
// never-bound instances, duplicate modes, interface compatibility)
// and emits positioned diagnostics in the shared lint format; it
// exits 1 when any error-severity finding is produced.
//
// Pass '-' as the file to read stdin.
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/lint"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: adlc <check|lint|render|config|diff|figure4> [args]")
	os.Exit(2)
}

func load(path string) *adl.Model {
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "adlc: %v\n", err)
		os.Exit(2)
	}
	m, err := adl.Parse(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "adlc: %v\n", err)
		os.Exit(1)
	}
	return m
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "figure4":
		m := adl.MustParse(adl.Figure4)
		fmt.Print(m.Render())
		fmt.Printf("// modes: %v\n", m.ModeNames())
	case "check":
		if len(os.Args) != 3 {
			usage()
		}
		m := load(os.Args[2])
		errs := m.Validate()
		if len(errs) == 0 {
			fmt.Printf("OK: %d types, %d base instances, %d modes\n",
				len(m.Types), len(m.Insts), len(m.Modes))
			return
		}
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, e)
		}
		os.Exit(1)
	case "lint":
		args := os.Args[2:]
		jsonOut := false
		if len(args) > 0 && args[0] == "-json" {
			jsonOut = true
			args = args[1:]
		}
		if len(args) != 1 {
			usage()
		}
		path := args[0]
		m := load(path)
		if path == "-" {
			path = "stdin"
		}
		diags := lint.AnalyzeADL(path, m)
		if jsonOut {
			lint.WriteJSON(os.Stdout, diags)
		} else {
			lint.WriteText(os.Stdout, diags)
		}
		if lint.HasErrors(diags) {
			os.Exit(1)
		}
	case "render":
		if len(os.Args) != 3 {
			usage()
		}
		fmt.Print(load(os.Args[2]).Render())
	case "config":
		if len(os.Args) < 3 || len(os.Args) > 4 {
			usage()
		}
		mode := ""
		if len(os.Args) == 4 {
			mode = os.Args[3]
		}
		cfg, err := load(os.Args[2]).ConfigFor(mode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adlc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("configuration %q:\n", mode)
		for _, n := range cfg.InstNames() {
			fmt.Printf("  inst %s : %s\n", n, cfg.Insts[n].Type)
		}
		for _, b := range cfg.BindList() {
			fmt.Printf("  %s\n", b)
		}
	case "diff":
		if len(os.Args) != 5 {
			usage()
		}
		plan, err := load(os.Args[2]).Diff(os.Args[3], os.Args[4])
		if err != nil {
			fmt.Fprintf(os.Stderr, "adlc: %v\n", err)
			os.Exit(1)
		}
		if plan.Empty() {
			fmt.Println("no changes")
			return
		}
		fmt.Printf("plan %s -> %s:\n", os.Args[3], os.Args[4])
		for _, s := range plan.Steps() {
			fmt.Printf("  %s\n", s)
		}
	default:
		usage()
	}
}

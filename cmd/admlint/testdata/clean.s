# Positive fixture: an SISR-safe component text with a loop.
start:
  load buf
  cmp r1
  je done
  add r1
  jmp start
done:
  store buf
  ret

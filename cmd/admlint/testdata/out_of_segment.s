# Negative fixture: a branch target outside the component's code
# segment. SISR must reject the image at load time: the jump would
# escape the component's protection domain.
start:
  load buf
  add r1
  jmp 12        ; only 4 instructions in this segment
  ret

// Command admlint is the unified static-verification front end: it
// runs every load-time analyzer in the stack over ADL architecture
// descriptions, constraint rule sets and SISR assembly listings, and
// reports findings in one shared diagnostic format.
//
// Usage:
//
//	admlint [-json] <path ...>
//
// Each path is a file or a directory; directories are walked for
// lintable files. The artifact kind is chosen by extension:
//
//	.adl          ADL model       — configuration-graph checks
//	.rules .cst   constraint set  — vocabulary/interval/shadow checks
//	.s .asm       assembly listing — SISR control-flow analysis
//
// With -json the diagnostics are emitted as a JSON array (always an
// array, possibly empty). Exit status: 0 when no error-severity
// diagnostics were produced (warnings allowed), 1 when at least one
// error was found, 2 on usage or I/O problems.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/goos"
	"github.com/adm-project/adm/internal/lint"
)

// AnalyzerADLParse tags syntax errors from the ADL parser.
const analyzerADLParse = "adl-parse"

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: admlint [-json] <file-or-dir ...>")
		fmt.Fprintln(os.Stderr, "  lints .adl models, .rules/.cst constraint sets and .s/.asm listings")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	files, err := collect(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "admlint: %v\n", err)
		os.Exit(2)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "admlint: no lintable files (.adl, .rules, .cst, .s, .asm) under the given paths")
	}

	var diags []lint.Diagnostic
	for _, f := range files {
		d, err := lintFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "admlint: %v\n", err)
			os.Exit(2)
		}
		diags = append(diags, d...)
	}
	lint.Sort(diags)

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "admlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		lint.WriteText(os.Stdout, diags)
		if n := lint.ErrorCount(diags); n > 0 {
			fmt.Printf("admlint: %d error(s), %d other finding(s) in %d file(s)\n",
				n, len(diags)-n, len(files))
		}
	}
	if lint.HasErrors(diags) {
		os.Exit(1)
	}
}

// collect expands the argument list into lintable files. Explicitly
// named files are linted regardless of extension recognition;
// directories contribute only files with known extensions.
func collect(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		if arg == "-" {
			out = append(out, arg)
			continue
		}
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			if kindOf(arg) == kindUnknown {
				return nil, fmt.Errorf("%s: unknown artifact kind (want .adl, .rules, .cst, .s or .asm)", arg)
			}
			out = append(out, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && kindOf(path) != kindUnknown {
				out = append(out, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

type artifactKind int

const (
	kindUnknown artifactKind = iota
	kindADL
	kindRules
	kindAsm
)

func kindOf(path string) artifactKind {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".adl":
		return kindADL
	case ".rules", ".cst":
		return kindRules
	case ".s", ".asm":
		return kindAsm
	}
	return kindUnknown
}

// lintFile runs the analyzer family matching the file's kind.
func lintFile(path string) ([]lint.Diagnostic, error) {
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
		path = "stdin"
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	switch kindOf(path) {
	case kindRules:
		rules, vocab, diags := lint.ParseRulesFile(path, string(src))
		return append(diags, lint.AnalyzeRules(path, rules, vocab)...), nil
	case kindAsm:
		listing, diags := goos.ParseListing(path, string(src))
		return append(diags, goos.AnalyzeListing(listing)...), nil
	default: // kindADL, and stdin defaults to ADL
		m, err := adl.Parse(string(src))
		if err != nil {
			if pe, ok := err.(*adl.ParseError); ok {
				return []lint.Diagnostic{lint.Errorf(path, pe.Line, 0, analyzerADLParse, "syntax", "%s", pe.Msg)}, nil
			}
			return []lint.Diagnostic{lint.Errorf(path, 0, 0, analyzerADLParse, "syntax", "%v", err)}, nil
		}
		return lint.AnalyzeADL(path, m), nil
	}
}

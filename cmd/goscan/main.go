// Command goscan is the SISR code scanner as a CLI: it reads a
// component text section in a simple assembly listing (one mnemonic
// per line) and reports whether the image is loadable under Go!'s
// protection model — the load-time check that lets the zero-kernel
// run without privilege modes.
//
// Usage:
//
//	goscan file.s        # scan a listing
//	goscan -             # scan stdin
//
// Listing format: one instruction per line; mnemonics map to the
// machine's instruction classes:
//
//	add sub mov cmp      -> alu
//	load store           -> load/store
//	call ret jmp         -> call/ret/branch
//	movseg               -> segment-register load (privileged)
//	cli sti lgdt hlt     -> privileged control
//	in out               -> I/O (privileged)
//	int iret             -> trap / trap-return
//
// Lines starting with '#' or ';' are comments.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/adm-project/adm/internal/goos"
	"github.com/adm-project/adm/internal/machine"
)

var mnemonics = map[string]machine.OpClass{
	"add": machine.OpALU, "sub": machine.OpALU, "mov": machine.OpALU, "cmp": machine.OpALU,
	"mul": machine.OpALU, "xor": machine.OpALU, "and": machine.OpALU, "or": machine.OpALU,
	"load": machine.OpLoad, "store": machine.OpStore,
	"call": machine.OpCall, "ret": machine.OpRet,
	"jmp": machine.OpBranch, "je": machine.OpBranch, "jne": machine.OpBranch,
	"movseg": machine.OpSegLoad,
	"cli":    machine.OpPrivCtl, "sti": machine.OpPrivCtl,
	"lgdt": machine.OpPrivCtl, "lidt": machine.OpPrivCtl, "hlt": machine.OpPrivCtl,
	"in": machine.OpIO, "out": machine.OpIO,
	"int": machine.OpTrap, "iret": machine.OpIret,
	"invlpg": machine.OpTLBFlush, "movcr3": machine.OpPTSwitch,
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: goscan <file.s | ->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	name := "stdin"
	if os.Args[1] != "-" {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "goscan: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
		name = os.Args[1]
	}

	var text []machine.Instruction
	sc := bufio.NewScanner(in)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		mnem := strings.Fields(line)[0]
		op, ok := mnemonics[strings.ToLower(mnem)]
		if !ok {
			fmt.Fprintf(os.Stderr, "goscan: %s:%d: unknown mnemonic %q\n", name, lineNo, mnem)
			os.Exit(2)
		}
		text = append(text, machine.Instruction{Op: op, Name: line})
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "goscan: %v\n", err)
		os.Exit(2)
	}

	scanner := goos.Scanner{}
	rep := scanner.Scan(text)
	fmt.Printf("%s: %d instructions, scan cost %d cycles\n", name, rep.Instructions, scanner.ScanCost(text))
	if rep.OK() {
		fmt.Println("LOADABLE: no privileged instructions; component is SISR-safe")
		return
	}
	fmt.Printf("REJECTED: %d privileged instruction(s):\n", len(rep.Offenses))
	for _, o := range rep.Offenses {
		fmt.Printf("  %s\n", o)
	}
	os.Exit(1)
}

// Command goscan is the SISR code scanner as a CLI: it reads
// component text sections in a simple assembly listing (one mnemonic
// per line, with optional `label:` definitions and branch operands)
// and reports whether each image is loadable under Go!'s protection
// model — the load-time check that lets the zero-kernel run without
// privilege modes.
//
// Usage:
//
//	goscan [-json] <file.s ...>    # scan one or more listings
//	goscan [-json] -               # scan stdin
//
// The mnemonic vocabulary is machine.Mnemonics (shared with admlint's
// deeper control-flow pass): alu ops (add, sub, mov, …), load/store,
// call/ret/jmp/jcc, movseg (segment-register load — privileged), cli/
// sti/lgdt/lidt/hlt, in/out, int/iret, invlpg/movcr3. Lines starting
// with '#' or ';' are comments; trailing comments are allowed.
//
// With -json, privileged-instruction findings are emitted to stdout
// as a JSON array in the shared lint.Diagnostic format. Exit status:
// 0 when every listing is loadable, 1 when any listing is rejected,
// 2 on usage, I/O or parse problems (unknown mnemonics).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/adm-project/adm/internal/goos"
	"github.com/adm-project/adm/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: goscan [-json] <file.s ... | ->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	rejected := false
	parseFailed := false
	for _, arg := range flag.Args() {
		var src []byte
		var err error
		name := arg
		if arg == "-" {
			src, err = io.ReadAll(os.Stdin)
			name = "stdin"
		} else {
			src, err = os.ReadFile(arg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "goscan: %v\n", err)
			os.Exit(2)
		}

		listing, parseDiags := goos.ParseListing(name, string(src))
		if len(parseDiags) > 0 {
			parseFailed = true
			diags = append(diags, parseDiags...)
			if !*jsonOut {
				lint.WriteText(os.Stderr, parseDiags)
			}
			continue
		}

		text := listing.Text()
		scanner := goos.Scanner{}
		rep := scanner.Scan(text)
		offenses := goos.PrivilegeDiagnostics(listing)
		diags = append(diags, offenses...)

		if !*jsonOut {
			fmt.Printf("%s: %d instructions, scan cost %d cycles\n",
				name, rep.Instructions, scanner.ScanCost(text))
			if rep.OK() {
				fmt.Println("LOADABLE: no privileged instructions; component is SISR-safe")
			} else {
				fmt.Printf("REJECTED: %d privileged instruction(s):\n", len(rep.Offenses))
				lint.WriteText(os.Stdout, offenses)
			}
		}
		if !rep.OK() {
			rejected = true
		}
	}

	if *jsonOut {
		lint.Sort(diags)
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "goscan: %v\n", err)
			os.Exit(2)
		}
	}
	switch {
	case parseFailed:
		os.Exit(2)
	case rejected:
		os.Exit(1)
	}
}

// Command patiad runs the Patia adaptive-webserver simulation under a
// flash-crowd schedule and prints the per-interval timeline plus the
// adaptive-vs-static comparison.
//
// Usage:
//
//	patiad                 # default Table 2 flash-crowd schedule
//	patiad -static         # disable the SWITCH rule (baseline)
//	patiad -peak 500       # flash-crowd peak request rate
//	patiad -timeline       # dump the per-100ms interval timeline
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/adm-project/adm/internal/patia"
)

func main() {
	var (
		static   = flag.Bool("static", false, "disable adaptation (baseline run)")
		peak     = flag.Float64("peak", 320, "flash-crowd peak RPS")
		timeline = flag.Bool("timeline", false, "print per-interval timeline")
	)
	flag.Parse()

	cfg := patia.DefaultCrowdConfig(!*static)
	cfg.Phases[1].RPS = *peak

	res, err := patia.RunFlashCrowd(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "patiad: %v\n", err)
		os.Exit(1)
	}

	mode := "adaptive"
	if *static {
		mode = "static"
	}
	fmt.Printf("patia flash crowd (%s, peak %.0f rps)\n", mode, *peak)
	fmt.Printf("  mean latency   %8.2f ms\n", res.MeanLatencyMS)
	fmt.Printf("  peak latency   %8.2f ms\n", res.PeakLatencyMS)
	fmt.Printf("  saturated      %8d ticks\n", res.SaturatedTicks)
	fmt.Printf("  agent switches %8d\n", res.Switches)

	if *timeline {
		fmt.Println("\n  time_ms  rps   node    util%  latency_ms")
		for _, iv := range res.Intervals {
			fmt.Printf("  %7.0f  %4.0f  %-6s  %5.1f  %8.2f\n",
				iv.TimeMS, iv.RPS, iv.Node, iv.Util, iv.LatencyMS)
		}
	}
	fmt.Println("\nadaptation trace:", res.Log.Summary())
}

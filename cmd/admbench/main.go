// Command admbench regenerates the paper's tables and figures.
//
// Usage:
//
//	admbench              # run everything, print paper-vs-measured
//	admbench -exp table1  # run one experiment
//	admbench -list        # list experiment ids
//	admbench -markdown    # emit markdown (EXPERIMENTS.md body)
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/adm-project/adm/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "run a single experiment by id")
		list     = flag.Bool("list", false, "list experiment ids")
		markdown = flag.Bool("markdown", false, "emit markdown instead of text tables")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-16s %s\n", r.ID, r.Desc)
		}
		return
	}

	runners := experiments.All()
	if *exp != "" {
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "admbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	failed := 0
	for _, r := range runners {
		rep, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "admbench: %s: %v\n", r.ID, err)
			failed++
			continue
		}
		if *markdown {
			fmt.Println(rep.Markdown())
		} else {
			fmt.Println(rep.String())
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

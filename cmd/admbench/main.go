// Command admbench regenerates the paper's tables and figures, and
// benchmarks the parallel executor.
//
// Usage:
//
//	admbench                      # run everything, print paper-vs-measured
//	admbench -exp table1          # run one experiment
//	admbench -list                # list experiment ids
//	admbench -markdown            # emit markdown (EXPERIMENTS.md body)
//	admbench -bench               # join/sort/top-k benchmarks, human-readable
//	admbench -json                # same, one JSON record per line
//	admbench -json -baseline f    # also gate against a baseline file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"github.com/adm-project/adm/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "run a single experiment by id")
		list     = flag.Bool("list", false, "list experiment ids")
		markdown = flag.Bool("markdown", false, "emit markdown instead of text tables")
		bench    = flag.Bool("bench", false, "run the parallel executor benchmarks (join, sort, top-k)")
		jsonOut  = flag.Bool("json", false, "emit benchmark results as JSON lines (implies -bench)")
		rows     = flag.Int("rows", 20000, "benchmark rows per join side")
		workers  = flag.String("workers", "1,2,4,8", "comma-separated worker counts")
		repeats  = flag.Int("repeats", 3, "benchmark repetitions (best run reported)")
		batch    = flag.Int("batch", 0, "exchange batch size in tuples (0 = default)")
		baseline = flag.String("baseline", "", "baseline JSON file to gate 4-worker throughput against")
		flash    = flag.Bool("flash", false, "include the live-server flash-crowd benchmarks (multi-second)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the benchmark to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile after the benchmark to this file")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-16s %s\n", r.ID, r.Desc)
		}
		return
	}

	if *bench || *jsonOut {
		if *cpuProf != "" {
			f, err := os.Create(*cpuProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "admbench: cpuprofile: %v\n", err)
				os.Exit(2)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "admbench: cpuprofile: %v\n", err)
				os.Exit(2)
			}
		}
		code := runBench(*rows, *workers, *repeats, *batch, *jsonOut, *baseline, *flash)
		if *cpuProf != "" {
			pprof.StopCPUProfile()
		}
		if *memProf != "" {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "admbench: memprofile: %v\n", err)
				os.Exit(2)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "admbench: memprofile: %v\n", err)
				os.Exit(2)
			}
			f.Close()
		}
		os.Exit(code)
	}

	runners := experiments.All()
	if *exp != "" {
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "admbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	failed := 0
	for _, r := range runners {
		rep, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "admbench: %s: %v\n", r.ID, err)
			failed++
			continue
		}
		if *markdown {
			fmt.Println(rep.Markdown())
		} else {
			fmt.Println(rep.String())
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func runBench(rows int, workerList string, repeats, batch int, jsonOut bool, baselinePath string, flash bool) int {
	var workers []int
	for _, f := range strings.Split(workerList, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			fmt.Fprintf(os.Stderr, "admbench: bad -workers value %q\n", f)
			return 2
		}
		workers = append(workers, w)
	}
	results, err := experiments.RunParallelJoinBenchBatch(rows, workers, repeats, batch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "admbench: bench: %v\n", err)
		return 1
	}
	sortResults, err := experiments.RunParallelSortBench(rows, workers, repeats, batch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "admbench: bench: %v\n", err)
		return 1
	}
	results = append(results, sortResults...)
	topkResults, err := experiments.RunTopKBench(rows, workers, repeats, batch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "admbench: bench: %v\n", err)
		return 1
	}
	results = append(results, topkResults...)
	recResults, err := experiments.RunRecoveryBench(rows, repeats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "admbench: bench: %v\n", err)
		return 1
	}
	results = append(results, recResults...)
	commitResults, err := experiments.RunCommitBench([]int{1, 4, 16}, 64, repeats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "admbench: bench: %v\n", err)
		return 1
	}
	results = append(results, commitResults...)
	mjResults, err := experiments.RunMultiJoinBench(rows, 1, repeats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "admbench: bench: %v\n", err)
		return 1
	}
	results = append(results, mjResults...)
	ptResults, err := experiments.RunPlanTimeBench(repeats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "admbench: bench: %v\n", err)
		return 1
	}
	results = append(results, ptResults...)
	sfResults, err := experiments.RunScanFilterBench(rows, 4, repeats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "admbench: bench: %v\n", err)
		return 1
	}
	results = append(results, sfResults...)
	if flash {
		flashResults, err := experiments.RunFlashCrowdBench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "admbench: bench: %v\n", err)
			return 1
		}
		results = append(results, flashResults...)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				fmt.Fprintf(os.Stderr, "admbench: %v\n", err)
				return 1
			}
		}
	} else {
		fmt.Printf("bench  rows=%d, best of %d\n", rows, repeats)
		for _, r := range results {
			fmt.Printf("  %-12s workers=%-2d  %12.0f rows/sec  %12d ns", r.Bench, r.Workers, r.RowsPerSec, r.Cycles)
			if r.ScalingEfficiency > 0 {
				fmt.Printf("  scaling=%.2f", r.ScalingEfficiency)
			}
			if r.AbortRate > 0 {
				fmt.Printf("  aborts=%.1f%%", r.AbortRate*100)
			}
			if r.P99MS > 0 {
				fmt.Printf("  p99=%.1fms", r.P99MS)
			}
			if r.ShedRecovery > 0 {
				fmt.Printf("  shed-recovery=%.2f", r.ShedRecovery)
			}
			fmt.Println()
		}
	}
	if baselinePath != "" {
		return gateAgainstBaseline(results, baselinePath, rows)
	}
	return 0
}

// baselineFile is the checked-in bench_baseline.json shape.
type baselineFile struct {
	Readme  []string                          `json:"_readme"`
	Rows    int                               `json:"rows"`
	Benches []experiments.ParallelBenchResult `json:"benches"`
	// ScalingFloor is the minimum accepted 4w/1w join rows_per_sec
	// ratio (0 = no scaling gate). It is checked in alongside the
	// throughput numbers because the attainable ratio is
	// hardware-dependent: on a single-core CI host ~1.0 is the ceiling,
	// on real multicore it should be well above 1.
	ScalingFloor float64 `json:"scaling_floor,omitempty"`
	// SortScalingFloor is the minimum accepted ParallelSort(4w) /
	// SerialSort rows_per_sec ratio. Unlike ScalingFloor this holds even
	// on one core: the numerator uses typed extracted keys where the
	// denominator pays storage.Compare on boxed Values per comparison,
	// so the ratio is mostly the comparator win.
	SortScalingFloor float64 `json:"sort_scaling_floor,omitempty"`
	// RecoveryFloor is the minimum accepted recovered rows/sec for the
	// crash-recovery smoke benches (RecoveryWAL and RecoveryCkpt; 0 =
	// no recovery gate). An absolute floor rather than a baseline
	// ratio: the benches are sub-millisecond at smoke sizes, so a
	// ratio would be all scheduler noise — what CI must catch is
	// recovery going accidentally quadratic or re-reading the whole
	// log per record.
	RecoveryFloor float64 `json:"recovery_floor,omitempty"`
	// CommitScalingFloor is the minimum accepted CommitTxn(16
	// sessions) / CommitTxn(1 session) commits/sec ratio — the
	// group-commit gate. The bench's WAL pays a fixed simulated fsync
	// latency, so the ratio measures fsync batching, not CPU
	// parallelism, and holds on a single-core host: one session pays
	// one fsync per commit while sixteen share each barrier through
	// the group-commit leader.
	CommitScalingFloor float64 `json:"commit_scaling_floor,omitempty"`
	// GreedyRecoveryFloor is the minimum accepted
	// (MultiJoinGreedy − MultiJoinDecl) / (MultiJoinOracle − MultiJoinDecl)
	// throughput ratio: how much of the gap between the mis-declared
	// join order and the hand-ordered plan greedy ordering alone
	// recovers, given honest statistics. A ratio, so it holds across
	// hardware; both floors are computed from the measured run, the
	// baseline only supplies the floor.
	GreedyRecoveryFloor float64 `json:"greedy_recovery_floor,omitempty"`
	// AdaptationRecoveryFloor is the same recovery ratio for
	// MultiJoinAdapt — greedy seeded with deliberately stale
	// statistics, so the safe-point router must discover the real
	// cardinalities mid-query. It must still recover most of the gap.
	AdaptationRecoveryFloor float64 `json:"adaptation_recovery_floor,omitempty"`
	// PlanTimeCeilingNs is the maximum accepted nanoseconds per plan
	// for the PlanTime bench (5-table greedy planning via a pre-parsed
	// EXPLAIN; 0 = no gate). Catches the O(n²) greedy loop going
	// accidentally cubic or allocation-heavy.
	PlanTimeCeilingNs uint64 `json:"plan_time_ceiling_ns,omitempty"`
	// FilterKernelFloor is the minimum accepted ScanFilter
	// filter_kernel_ratio: kernel-path over boxed-path throughput on
	// the 1%-selectivity clustered scan, paired within a repeat. A
	// ratio, so it holds across hardware; it catches the vectorized
	// path silently falling back to boxed execution or zone-map
	// pruning stopping (the ratio collapses toward 1).
	FilterKernelFloor float64 `json:"filter_kernel_floor,omitempty"`
	// FlashP99CeilingMS is the maximum accepted FlashCrowdAdapt crowd
	// p99 (ms; 0 = no gate) — the admission-control SLO gate. The
	// paired FlashCrowdStatic record is the overload witness: its p99
	// must EXCEED the ceiling, or the drive no longer overloads the
	// server and the gate is vacuous (a configuration error, not a
	// regression). Requires -flash.
	FlashP99CeilingMS float64 `json:"flash_p99_ceiling_ms,omitempty"`
	// ShedRecoveryFloor is the minimum accepted FlashCrowdAdapt
	// shed-recovery: the served fraction of decay-phase traffic after
	// the crowd leaves. A ladder that fails to release keeps shedding
	// healthy traffic and this collapses toward 0.
	ShedRecoveryFloor float64 `json:"shed_recovery_floor,omitempty"`
}

// gateAgainstBaseline fails (exit 1) when, for any bench family the
// baseline records at 4 workers (ParallelJoin, ParallelSort, TopK),
// the measured 4-worker throughput falls below 0.9× the baseline's —
// the CI regression gate. Scaling floors gate the ratio fields:
// scaling_floor the join's 4w/1w ratio, sort_scaling_floor the
// parallel sort's speedup over the serial boxed-Compare reference.
// Rows mismatch is a configuration error (exit 2): the numbers would
// not be comparable.
func gateAgainstBaseline(results []experiments.ParallelBenchResult, path string, rows int) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "admbench: baseline: %v\n", err)
		return 2
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "admbench: baseline %s: %v\n", path, err)
		return 2
	}
	if base.Rows != rows {
		fmt.Fprintf(os.Stderr, "admbench: baseline rows=%d but measured rows=%d; rerun with -rows %d or refresh the baseline\n",
			base.Rows, rows, base.Rows)
		return 2
	}
	find := func(rs []experiments.ParallelBenchResult, bench string) (experiments.ParallelBenchResult, bool) {
		for _, r := range rs {
			if r.Bench == bench && r.Workers == 4 {
				return r, true
			}
		}
		return experiments.ParallelBenchResult{}, false
	}
	code := 0
	for _, want := range base.Benches {
		if want.Workers != 4 {
			continue
		}
		// CommitTxn throughput is dominated by the bench's simulated
		// fsync latency, not real work — absolute commits/sec is not a
		// regression signal. Its gate is commit_scaling_floor below.
		if want.Bench == "CommitTxn" {
			continue
		}
		// The scan-filter pair is gated on its paired kernel/boxed
		// ratio (filter_kernel_floor), which cancels host speed; the
		// absolute records are informational.
		if want.Bench == "ScanFilter" || want.Bench == "ScanFilterBoxed" {
			continue
		}
		got, ok := find(results, want.Bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "admbench: measured results have no 4-worker %s record (include 4 in -workers)\n", want.Bench)
			return 2
		}
		ratio := got.RowsPerSec / want.RowsPerSec
		fmt.Fprintf(os.Stderr, "admbench: gate: 4-worker %s %.0f rows/sec vs baseline %.0f (ratio %.2f, floor 0.90)\n",
			want.Bench, got.RowsPerSec, want.RowsPerSec, ratio)
		if ratio < 0.9 {
			fmt.Fprintf(os.Stderr, "admbench: REGRESSION: %s throughput below 0.9x baseline\n", want.Bench)
			code = 1
		}
	}
	checkScaling := func(bench string, floor float64, label string) {
		if floor <= 0 {
			return
		}
		got, ok := find(results, bench)
		if !ok || got.ScalingEfficiency == 0 {
			fmt.Fprintf(os.Stderr, "admbench: baseline sets %s but the reference run is missing (include 1 and 4 in -workers)\n", label)
			code = 2
			return
		}
		fmt.Fprintf(os.Stderr, "admbench: gate: %s scaling efficiency %.2f (floor %.2f)\n",
			bench, got.ScalingEfficiency, floor)
		if got.ScalingEfficiency < floor {
			fmt.Fprintf(os.Stderr, "admbench: REGRESSION: %s scaling efficiency below floor\n", bench)
			if code == 0 {
				code = 1
			}
		}
	}
	checkScaling("ParallelJoin", base.ScalingFloor, "scaling_floor")
	checkScaling("ParallelSort", base.SortScalingFloor, "sort_scaling_floor")
	if base.CommitScalingFloor > 0 {
		var got experiments.ParallelBenchResult
		ok := false
		for _, r := range results {
			if r.Bench == "CommitTxn" && r.Workers == 16 {
				got, ok = r, true
				break
			}
		}
		if !ok || got.ScalingEfficiency == 0 {
			fmt.Fprintf(os.Stderr, "admbench: baseline sets commit_scaling_floor but the 16-session CommitTxn run is missing\n")
			return 2
		}
		fmt.Fprintf(os.Stderr, "admbench: gate: CommitTxn 16-session group-commit scaling %.2f (floor %.2f, abort rate %.1f%%)\n",
			got.ScalingEfficiency, base.CommitScalingFloor, got.AbortRate*100)
		if got.ScalingEfficiency < base.CommitScalingFloor {
			fmt.Fprintf(os.Stderr, "admbench: REGRESSION: group-commit fan-in below commit_scaling_floor — concurrent sessions are paying per-commit fsyncs\n")
			if code == 0 {
				code = 1
			}
		}
	}
	if base.GreedyRecoveryFloor > 0 || base.AdaptationRecoveryFloor > 0 {
		get := func(bench string) (experiments.ParallelBenchResult, bool) {
			for _, r := range results {
				if r.Bench == bench {
					return r, true
				}
			}
			return experiments.ParallelBenchResult{}, false
		}
		decl, ok1 := get("MultiJoinDecl")
		oracle, ok2 := get("MultiJoinOracle")
		if !ok1 || !ok2 {
			fmt.Fprintf(os.Stderr, "admbench: baseline sets a recovery floor but the MultiJoin reference runs are missing\n")
			return 2
		}
		if oracle.RowsPerSec <= decl.RowsPerSec {
			// The mis-ordered plan was not measurably slower than the
			// hand-ordered one — the recovery ratio is meaningless, which
			// means the bench is mis-sized, not that the optimizer broke.
			fmt.Fprintf(os.Stderr, "admbench: MultiJoinOracle (%.0f rows/sec) is not faster than MultiJoinDecl (%.0f); increase -rows or refresh the baseline\n",
				oracle.RowsPerSec, decl.RowsPerSec)
			return 2
		}
		checkRecovery := func(bench string, floor float64, label string) {
			if floor <= 0 {
				return
			}
			got, ok := get(bench)
			if !ok || got.RecoveryRatio == 0 {
				fmt.Fprintf(os.Stderr, "admbench: baseline sets %s but %s was not measured\n", label, bench)
				code = 2
				return
			}
			fmt.Fprintf(os.Stderr, "admbench: gate: %s recovers %.2f of the declared->oracle gap (floor %.2f)\n",
				bench, got.RecoveryRatio, floor)
			if got.RecoveryRatio < floor {
				fmt.Fprintf(os.Stderr, "admbench: REGRESSION: %s below %s\n", bench, label)
				if code == 0 {
					code = 1
				}
			}
		}
		checkRecovery("MultiJoinGreedy", base.GreedyRecoveryFloor, "greedy_recovery_floor")
		checkRecovery("MultiJoinAdapt", base.AdaptationRecoveryFloor, "adaptation_recovery_floor")
	}
	if base.PlanTimeCeilingNs > 0 {
		found := false
		for _, r := range results {
			if r.Bench == "PlanTime" {
				found = true
				fmt.Fprintf(os.Stderr, "admbench: gate: PlanTime %d ns/plan (ceiling %d)\n",
					r.Cycles, base.PlanTimeCeilingNs)
				if r.Cycles > base.PlanTimeCeilingNs {
					fmt.Fprintf(os.Stderr, "admbench: REGRESSION: planning above plan_time_ceiling_ns\n")
					if code == 0 {
						code = 1
					}
				}
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "admbench: baseline sets plan_time_ceiling_ns but PlanTime was not measured\n")
			return 2
		}
	}
	if base.FilterKernelFloor > 0 {
		got, ok := find(results, "ScanFilter")
		if !ok || got.FilterKernelRatio == 0 {
			fmt.Fprintf(os.Stderr, "admbench: baseline sets filter_kernel_floor but the ScanFilter pair was not measured\n")
			return 2
		}
		fmt.Fprintf(os.Stderr, "admbench: gate: ScanFilter kernel/boxed throughput ratio %.2f (floor %.2f)\n",
			got.FilterKernelRatio, base.FilterKernelFloor)
		if got.FilterKernelRatio < base.FilterKernelFloor {
			fmt.Fprintf(os.Stderr, "admbench: REGRESSION: vectorized filter below filter_kernel_floor — the kernel path is no faster than boxed (kernels bypassed or zone pruning dead)\n")
			if code == 0 {
				code = 1
			}
		}
	}
	if base.FlashP99CeilingMS > 0 || base.ShedRecoveryFloor > 0 {
		get := func(bench string) (experiments.ParallelBenchResult, bool) {
			for _, r := range results {
				if r.Bench == bench {
					return r, true
				}
			}
			return experiments.ParallelBenchResult{}, false
		}
		adapt, ok1 := get("FlashCrowdAdapt")
		static, ok2 := get("FlashCrowdStatic")
		if !ok1 || !ok2 {
			fmt.Fprintf(os.Stderr, "admbench: baseline sets a flash-crowd gate but the FlashCrowd pair was not measured (run with -flash)\n")
			return 2
		}
		if base.FlashP99CeilingMS > 0 {
			if static.P99MS <= base.FlashP99CeilingMS {
				// The un-adapted server stayed under the ceiling — the
				// crowd no longer overloads it, so holding the ceiling
				// proves nothing. Mis-sized drive, not a regression.
				fmt.Fprintf(os.Stderr, "admbench: FlashCrowdStatic p99 %.1fms does not exceed the %.0fms ceiling; the drive no longer overloads the server — resize it or refresh the baseline\n",
					static.P99MS, base.FlashP99CeilingMS)
				return 2
			}
			fmt.Fprintf(os.Stderr, "admbench: gate: FlashCrowdAdapt p99 %.1fms (ceiling %.0fms; static witness %.1fms)\n",
				adapt.P99MS, base.FlashP99CeilingMS, static.P99MS)
			if adapt.P99MS > base.FlashP99CeilingMS {
				fmt.Fprintf(os.Stderr, "admbench: REGRESSION: adaptive flash-crowd p99 above flash_p99_ceiling_ms — the degradation ladder is not defending the SLO\n")
				if code == 0 {
					code = 1
				}
			}
		}
		if base.ShedRecoveryFloor > 0 {
			fmt.Fprintf(os.Stderr, "admbench: gate: FlashCrowdAdapt shed recovery %.2f (floor %.2f)\n",
				adapt.ShedRecovery, base.ShedRecoveryFloor)
			if adapt.ShedRecovery < base.ShedRecoveryFloor {
				fmt.Fprintf(os.Stderr, "admbench: REGRESSION: ladder kept shedding after the crowd left — below shed_recovery_floor\n")
				if code == 0 {
					code = 1
				}
			}
		}
	}
	if base.RecoveryFloor > 0 {
		for _, bench := range []string{"RecoveryWAL", "RecoveryCkpt"} {
			var got experiments.ParallelBenchResult
			ok := false
			for _, r := range results {
				if r.Bench == bench {
					got, ok = r, true
					break
				}
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "admbench: baseline sets recovery_floor but %s was not measured\n", bench)
				return 2
			}
			fmt.Fprintf(os.Stderr, "admbench: gate: %s %.0f recovered rows/sec (floor %.0f)\n",
				bench, got.RowsPerSec, base.RecoveryFloor)
			if got.RowsPerSec < base.RecoveryFloor {
				fmt.Fprintf(os.Stderr, "admbench: REGRESSION: %s below recovery_floor\n", bench)
				if code == 0 {
					code = 1
				}
			}
		}
	}
	return code
}

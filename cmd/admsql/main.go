// Command admsql is an interactive SQL shell over the componentised
// query machine: every statement flows frontend → parser → executor →
// (bound) optimiser through concrete component boundaries, and the
// optimiser can be swapped mid-session.
//
// Usage:
//
//	admsql                       # interactive shell on stdin
//	echo 'SELECT 1;' | admsql    # batch mode
//
// Meta commands:
//
//	\optimiser [cost|conservative]   show or swap the bound optimiser
//	\components                      list live components and bindings
//	\trace                           adaptation-trace summary
//	\q                               quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"github.com/adm-project/adm/internal/dbmachine"
	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

func main() {
	log := trace.New()
	m, err := dbmachine.New(512, log)
	if err != nil {
		fmt.Fprintf(os.Stderr, "admsql: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("admsql — componentised SQL shell (\\q to quit, \\optimiser to swap)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("adm> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "\\q" || line == "\\quit":
			return
		case line == "\\components":
			for _, n := range m.Asm.Components() {
				fmt.Printf("  component %s\n", n)
			}
			for _, b := range m.Asm.Bindings() {
				fmt.Printf("  bind %s\n", b)
			}
			continue
		case line == "\\trace":
			fmt.Println(" ", log.Summary())
			continue
		case strings.HasPrefix(line, "\\optimiser"):
			parts := strings.Fields(line)
			if len(parts) == 1 {
				fmt.Printf("  bound: %s\n", m.Optimiser())
				continue
			}
			if err := m.SwapOptimiser(parts[1]); err != nil {
				fmt.Printf("  error: %v\n", err)
				continue
			}
			fmt.Printf("  optimiser -> %s\n", m.Optimiser())
			continue
		case strings.HasPrefix(line, "\\"):
			fmt.Println("  unknown meta command")
			continue
		}
		line = strings.TrimSuffix(line, ";")
		res, rep, err := m.Exec(line)
		if err != nil {
			fmt.Printf("  error: %v\n", err)
			continue
		}
		printResult(res)
		if rep != nil && rep.Replanned {
			fmt.Printf("  (replanned mid-query: build %s -> %s at row %d)\n",
				rep.InitialBuild, rep.FinalBuild, rep.TriggerRow)
		}
	}
}

func printResult(res *query.Result) {
	if len(res.Cols) == 0 {
		fmt.Printf("  ok (%d affected)\n", res.Affected)
		return
	}
	widths := make([]int, len(res.Cols))
	for i, c := range res.Cols {
		widths[i] = len(c)
	}
	render := func(row storage.Tuple) []string {
		out := make([]string, len(row))
		for i, v := range row {
			out[i] = v.String()
			if len(out[i]) > widths[i] {
				widths[i] = len(out[i])
			}
		}
		return out
	}
	var rendered [][]string
	for _, r := range res.Rows {
		rendered = append(rendered, render(r))
	}
	line := "  "
	for i, c := range res.Cols {
		line += fmt.Sprintf("%-*s  ", widths[i], c)
	}
	fmt.Println(line)
	for _, r := range rendered {
		line = "  "
		for i, v := range r {
			line += fmt.Sprintf("%-*s  ", widths[i], v)
		}
		fmt.Println(line)
	}
	fmt.Printf("  (%d rows)\n", len(res.Rows))
}

// Command admsql is an interactive SQL shell over the componentised
// query machine: every statement flows frontend → parser → executor →
// (bound) optimiser through concrete component boundaries, and the
// optimiser can be swapped mid-session.
//
// Usage:
//
//	admsql                       # interactive shell on stdin
//	echo 'SELECT 1;' | admsql    # batch mode
//	admsql -connect host:port    # wire-protocol shell against admsqld
//
// In -connect mode retryable server failures (write conflicts, load
// shedding) are reported distinctly from hard errors so scripted
// clients know to retry.
//
// Meta commands:
//
//	\optimiser [cost|conservative]   show or swap the bound optimiser
//	\components                      list live components and bindings
//	\trace                           adaptation-trace summary
//	\q                               quit
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/adm-project/adm/internal/dbmachine"
	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/server"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

func main() {
	connect := flag.String("connect", "", "admsqld address; empty runs the embedded machine")
	token := flag.String("token", "", "auth token for -connect")
	flag.Parse()
	if *connect != "" {
		if err := remoteShell(*connect, *token); err != nil {
			fmt.Fprintf(os.Stderr, "admsql: %v\n", err)
			os.Exit(1)
		}
		return
	}
	log := trace.New()
	m, err := dbmachine.New(512, log)
	if err != nil {
		fmt.Fprintf(os.Stderr, "admsql: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("admsql — componentised SQL shell (\\q to quit, \\optimiser to swap)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("adm> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "\\q" || line == "\\quit":
			return
		case line == "\\components":
			for _, n := range m.Asm.Components() {
				fmt.Printf("  component %s\n", n)
			}
			for _, b := range m.Asm.Bindings() {
				fmt.Printf("  bind %s\n", b)
			}
			continue
		case line == "\\trace":
			fmt.Println(" ", log.Summary())
			continue
		case strings.HasPrefix(line, "\\optimiser"):
			parts := strings.Fields(line)
			if len(parts) == 1 {
				fmt.Printf("  bound: %s\n", m.Optimiser())
				continue
			}
			if err := m.SwapOptimiser(parts[1]); err != nil {
				fmt.Printf("  error: %v\n", err)
				continue
			}
			fmt.Printf("  optimiser -> %s\n", m.Optimiser())
			continue
		case strings.HasPrefix(line, "\\"):
			fmt.Println("  unknown meta command")
			continue
		}
		line = strings.TrimSuffix(line, ";")
		res, rep, err := m.Exec(line)
		if err != nil {
			if errors.Is(err, storage.ErrWriteConflict) {
				fmt.Printf("  retryable: %v (re-issue the transaction)\n", err)
			} else {
				fmt.Printf("  error: %v\n", err)
			}
			continue
		}
		printResult(res)
		if rep != nil && rep.Replanned {
			fmt.Printf("  (replanned mid-query: build %s -> %s at row %d)\n",
				rep.InitialBuild, rep.FinalBuild, rep.TriggerRow)
		}
	}
}

// remoteShell is the -connect REPL: statements go over the wire and
// retryable failures (conflict, shed) are labelled as such.
func remoteShell(addr, token string) error {
	c, err := server.Dial(addr, token)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := c.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "admsql: close: %v\n", cerr)
		}
	}()
	fmt.Printf("admsql — connected to %s (\\q to quit)\n", addr)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("adm> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "\\q" || line == "\\quit" {
			return nil
		}
		res, err := c.Query(strings.TrimSuffix(line, ";"))
		if err != nil {
			var re *server.RemoteError
			if errors.As(err, &re) {
				if re.Retryable() {
					fmt.Printf("  retryable (code %d): %s\n", re.Code, re.Msg)
				} else {
					fmt.Printf("  error (code %d): %s\n", re.Code, re.Msg)
				}
				continue
			}
			return err // the connection is poisoned
		}
		printResult(&query.Result{Cols: res.Cols, Rows: res.Rows, Affected: res.Affected})
	}
}

func printResult(res *query.Result) {
	if len(res.Cols) == 0 {
		fmt.Printf("  ok (%d affected)\n", res.Affected)
		return
	}
	widths := make([]int, len(res.Cols))
	for i, c := range res.Cols {
		widths[i] = len(c)
	}
	render := func(row storage.Tuple) []string {
		out := make([]string, len(row))
		for i, v := range row {
			out[i] = v.String()
			if len(out[i]) > widths[i] {
				widths[i] = len(out[i])
			}
		}
		return out
	}
	var rendered [][]string
	for _, r := range res.Rows {
		rendered = append(rendered, render(r))
	}
	line := "  "
	for i, c := range res.Cols {
		line += fmt.Sprintf("%-*s  ", widths[i], c)
	}
	fmt.Println(line)
	for _, r := range rendered {
		line = "  "
		for i, v := range r {
			line += fmt.Sprintf("%-*s  ", widths[i], v)
		}
		fmt.Println(line)
	}
	fmt.Printf("  (%d rows)\n", len(res.Rows))
}

// Command admvet is the engine-invariant multichecker: it runs the
// internal/analysis suite (pinpair, batchrelease, latchorder,
// poisoncheck, morselguard) over Go packages and reports findings in
// the shared internal/lint diagnostic format — the same text and
// -json schemas admlint uses, so CI and editors consume one stream.
//
// Usage:
//
//	admvet [-json] [-analyzers a,b] [packages...]   # default ./...
//	admvet [-json] -dir path                        # one fixture/plain directory
//
// Intentional exceptions are annotated in source as
//
//	//admvet:allow <analyzer> <reason>
//
// on (or directly above) the offending line. Unused or malformed
// directives are themselves errors, so every exception stays
// load-bearing.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load
// failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/adm-project/adm/internal/analysis"
	"github.com/adm-project/adm/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	dir := flag.String("dir", "", "analyze the Go files of one directory as a single package")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: admvet [-json] [-analyzers a,b] [packages...]\n")
		fmt.Fprintf(os.Stderr, "       admvet [-json] -dir path\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	suite := analysis.All()
	if *names != "" {
		suite = analysis.ByName(strings.Split(*names, ","))
		if suite == nil {
			fmt.Fprintf(os.Stderr, "admvet: unknown analyzer in %q\n", *names)
			os.Exit(2)
		}
	}

	var pkgs []*analysis.Package
	var err error
	if *dir != "" {
		if flag.NArg() > 0 {
			flag.Usage()
			os.Exit(2)
		}
		pkgs, err = analysis.LoadDir(*dir)
	} else {
		pkgs, err = analysis.Load(".", flag.Args()...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "admvet: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.RunAnalyzers(pkgs, suite)
	relativize(diags)
	if *jsonOut {
		err = lint.WriteJSON(os.Stdout, diags)
	} else {
		err = lint.WriteText(os.Stdout, diags)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "admvet: %v\n", err)
		os.Exit(2)
	}
	if lint.HasErrors(diags) {
		os.Exit(1)
	}
}

// relativize rewrites absolute file paths relative to the working
// directory when that makes them shorter, matching compiler output.
func relativize(diags []lint.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i, d := range diags {
		if rel, err := filepath.Rel(wd, d.File); err == nil && len(rel) < len(d.File) {
			diags[i].File = rel
		}
	}
}

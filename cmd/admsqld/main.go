// Command admsqld is the network front door: a TCP server speaking
// the adm wire protocol, with per-statement deadlines and memory
// quotas, a bounded admission queue, and an adaptive degradation
// ladder (shed -> shrink batch -> drop workers) driven by the
// monitor/constraint machinery when the p99 latency SLO slips.
//
// Usage:
//
//	admsqld -addr 127.0.0.1:7744 -init seed.sql
//	admsql -connect 127.0.0.1:7744      # wire-protocol shell
//
// The store is memory-backed (the storage layer's disks are in-core);
// -init replays a SQL file at boot to seed the catalog.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/server"
	"github.com/adm-project/adm/internal/session"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7744", "listen address")
	token := flag.String("token", "", "auth token clients must present (empty: open)")
	initFile := flag.String("init", "", "SQL file replayed at boot to seed the store")
	inflight := flag.Int("max-inflight", 4, "max concurrently executing statements")
	queue := flag.Int("max-queue", 16, "max admission waiters beyond max-inflight")
	stmtTimeout := flag.Duration("stmt-timeout", 2*time.Second, "per-statement deadline and queue wait bound")
	writeTimeout := flag.Duration("write-timeout", 5*time.Second, "per-flush write deadline (stalled readers)")
	quota := flag.Int64("mem-quota", 64<<20, "per-statement memory budget in bytes (<0: unlimited)")
	workers := flag.Int("workers", 0, "parallel SELECT workers (0: runtime default)")
	batch := flag.Int("batch", 0, "morsel batch size (0: executor default)")
	adaptive := flag.Bool("adaptive", true, "enable the degradation ladder")
	slo := flag.Float64("slo-ms", 50, "p99 latency SLO in milliseconds")
	tick := flag.Duration("tick", 25*time.Millisecond, "controller evaluation interval")
	stats := flag.Bool("stats", false, "print server stats on shutdown")
	flag.Parse()

	if err := run(*addr, *token, *initFile, *inflight, *queue, *stmtTimeout,
		*writeTimeout, *quota, *workers, *batch, *adaptive, *slo, *tick, *stats); err != nil {
		fmt.Fprintf(os.Stderr, "admsqld: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, token, initFile string, inflight, queue int,
	stmtTimeout, writeTimeout time.Duration, quota int64, workers, batch int,
	adaptive bool, slo float64, tick time.Duration, stats bool) error {
	db, err := storage.Open(storage.NewMemDisk(), storage.NewMemDisk(),
		storage.DBOptions{Sync: storage.SyncManual})
	if err != nil {
		return err
	}
	cat, err := query.NewDurableCatalog(db)
	if err != nil {
		return err
	}
	eng := query.NewEngine(cat, nil, nil)
	if initFile != "" {
		if err := replay(eng, db, initFile); err != nil {
			return fmt.Errorf("init %s: %w", initFile, err)
		}
	}

	log := trace.New()
	srv := server.New(eng, db, server.Config{
		Addr:             addr,
		AuthToken:        token,
		MaxInflight:      inflight,
		MaxQueue:         queue,
		StatementTimeout: stmtTimeout,
		WriteTimeout:     writeTimeout,
		MemQuota:         quota,
		Workers:          workers,
		BatchSize:        batch,
		Adaptive:         adaptive,
		SLOMS:            slo,
		Tick:             tick,
	}, log)
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("admsqld listening on %s (adaptive=%v, slo=%gms)\n", srv.Addr(), adaptive, slo)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("admsqld: shutting down")
	err = srv.Close()
	if stats {
		st := srv.Stats()
		fmt.Printf("admsqld: accepted=%d served=%d shed=%d conflicts=%d deadlines=%d quota=%d errors=%d ladder-switches=%d\n",
			st.Accepted, st.Served, st.Shed, st.Conflicts, st.Deadlines, st.QuotaHits, st.Errors, st.Switches)
	}
	return err
}

// replay runs a semicolon/newline-delimited SQL file through one
// session (statements run transactionally exactly as network clients').
func replay(eng *query.Engine, db *storage.DB, path string) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sess := session.NewDBSession(eng, db)
	defer func() { err = errors.Join(err, sess.Close()) }()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		stmt := strings.TrimSpace(strings.TrimSuffix(sc.Text(), ";"))
		if stmt == "" || strings.HasPrefix(stmt, "--") {
			continue
		}
		if _, err := sess.Exec(stmt); err != nil {
			return fmt.Errorf("%q: %w", stmt, err)
		}
	}
	return sc.Err()
}

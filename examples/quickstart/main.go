// Quickstart: build a tiny adaptive component system with the public
// API — two interchangeable cache components behind a typed binding,
// a monitor-driven switching rule, and a session manager that rebinds
// the configuration when the rule fires.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	adm "github.com/adm-project/adm"
	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/monitor"
)

func main() {
	tlog := adm.NewTraceLog()
	clock := adm.NewClock()
	asm := adm.NewAssembly(tlog, clock.Now)

	// Two providers of the same "cache" service: a large in-memory
	// cache and a tiny low-power one.
	big := adm.NewComponent("cache-big").Provide("get", "cache",
		func(req adm.Request) (any, error) { return "big:" + req.Op, nil })
	small := adm.NewComponent("cache-small").Provide("get", "cache",
		func(req adm.Request) (any, error) { return "small:" + req.Op, nil })
	app := adm.NewComponent("app").Require("cache", "cache")

	for _, c := range []*adm.Component{big, small, app} {
		if err := asm.Add(c); err != nil {
			log.Fatal(err)
		}
	}
	if err := asm.Bind("app", "cache", "cache-big", "get"); err != nil {
		log.Fatal(err)
	}
	if err := asm.StartAll(); err != nil {
		log.Fatal(err)
	}

	call := func() {
		out, err := asm.Call("app", "cache", adm.Request{Op: "lookup"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%5.0fms  app -> %v\n", clock.Now(), out)
	}
	call()

	// Monitors + a switching rule: when battery drops below 20%, the
	// session manager swaps the big cache out for the small one.
	reg := adm.NewRegistry()
	rule, err := adm.ParseConstraint("If battery < 20 then smallcache.mode")
	if err != nil {
		log.Fatal(err)
	}
	rs := constraint.NewRuleSet(constraint.PrioritisedRule{ID: 1, Rule: rule})

	sm := adm.NewSessionManager("quickstart", reg, rs, tlog, clock.Now,
		func(d adm.Decision, _ *constraint.PrioritisedRule) error {
			fmt.Printf("t=%5.0fms  ADAPT: %s\n", clock.Now(), d.Reason)
			if err := asm.Unbind("app", "cache"); err != nil {
				return err
			}
			return asm.Bind("app", "cache", "cache-small", "get")
		})
	sm.Attach()

	// Battery drains over time; samples feed the loop.
	for t, b := 0.0, 100.0; t <= 1000; t, b = t+100, b-12 {
		tt, bb := t, b
		clock.Schedule(tt, func() {
			reg.Publish(adm.Sample{
				Key:    monitor.Key{Metric: monitor.MetricBattery},
				Value:  bb,
				TimeMS: tt,
			})
		})
	}
	clock.Run()
	call()

	fmt.Println("\nadaptation trace:")
	for _, ev := range tlog.Events() {
		fmt.Println("  ", ev)
	}
}

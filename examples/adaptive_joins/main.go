// Adaptive joins: the data-operator substrate the paper motivates in
// §2 — pipelined/symmetric hash join, XJoin and ripple join against
// the blocking classic hash join, over slow bursty remote sources.
//
//	go run ./examples/adaptive_joins
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/adm-project/adm/internal/experiments"
	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
)

func main() {
	fmt.Println("=== time-to-first-tuple: blocking vs symmetric vs xjoin ===")
	r, err := experiments.RunAdaptiveJoins(400)
	if err != nil {
		log.Fatal(err)
	}
	row := func(name string, res operators.RunResult) {
		fmt.Printf("%-10s first output %7.0f ms   completion %7.0f ms   idle %7.0f ms   peak mem %4d tuples\n",
			name, res.FirstOutputMS, res.CompletionMS, res.IdleMS, res.MaxMemTuples)
	}
	row("blocking", r.Blocking)
	row("symmetric", r.Symmetric)
	row("xjoin", r.XJoin)
	fmt.Printf("all three produced %d identical results\n", len(r.Blocking.Outputs))

	fmt.Println("\n=== ripple join: online SUM estimate while the join runs ===")
	rippleDemo()
}

func rippleDemo() {
	rng := rand.New(rand.NewSource(3))
	var l, r []storage.Tuple
	for i := 0; i < 300; i++ {
		l = append(l, storage.Tuple{
			storage.IntValue(int64(rng.Intn(20))),
			storage.FloatValue(float64(rng.Intn(100))),
		})
	}
	for i := 0; i < 300; i++ {
		r = append(r, storage.Tuple{storage.IntValue(int64(rng.Intn(20)))})
	}
	ls := operators.NewTimedSource("L", l, operators.ArrivalPattern{PerTupleMS: 3})
	rs := operators.NewTimedSource("R", r, operators.ArrivalPattern{PerTupleMS: 3})
	res := operators.RunRippleJoin(ls, rs, 0, 0, 1, 40)
	fmt.Printf("%-10s %-14s %-16s %s\n", "time", "sampled", "estimate", "error")
	for _, pt := range res.Trajectory {
		errPct := 100 * math.Abs(pt.Estimate-res.Exact) / res.Exact
		fmt.Printf("%7.0fms  %5.1f%% of grid  %14.0f  %6.1f%%\n",
			pt.At, 100*pt.Fraction, pt.Estimate, errPct)
	}
	fmt.Printf("exact answer: %.0f\n", res.Exact)
}

// Patia flash crowd: Table 2's constraint 455 in action — a web
// agent serving Page1.html migrates off a saturating node when
// processor utilisation crosses 90%, carrying its processing state.
//
//	go run ./examples/patia_flashcrowd
package main

import (
	"fmt"
	"log"

	adm "github.com/adm-project/adm"
)

func main() {
	static, err := adm.RunFlashCrowd(adm.DefaultCrowdConfig(false))
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := adm.RunFlashCrowd(adm.DefaultCrowdConfig(true))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("flash crowd: 50 rps -> 320 rps for 6s -> 60 rps; node1 carries 150 background load")
	fmt.Printf("%-22s %12s %12s\n", "", "static", "adaptive")
	fmt.Printf("%-22s %12.2f %12.2f\n", "mean latency (ms)", static.MeanLatencyMS, adaptive.MeanLatencyMS)
	fmt.Printf("%-22s %12.2f %12.2f\n", "peak latency (ms)", static.PeakLatencyMS, adaptive.PeakLatencyMS)
	fmt.Printf("%-22s %12d %12d\n", "saturated ticks", static.SaturatedTicks, adaptive.SaturatedTicks)
	fmt.Printf("%-22s %12d %12d\n", "agent switches", static.Switches, adaptive.Switches)

	fmt.Println("\nadaptive timeline (node serving the agent):")
	lastNode := ""
	for _, iv := range adaptive.Intervals {
		if iv.Node != lastNode {
			fmt.Printf("  t=%6.0fms  -> %s (util %.0f%%)\n", iv.TimeMS, iv.Node, iv.Util)
			lastNode = iv.Node
		}
	}
	fmt.Println("\ntrace:", adaptive.Log.Summary())
}

// Adaptive system in one declaration: the §3 architecture (ADL modes
// + switching rules + monitors + transactional reconfiguration)
// behind adm.NewSystem, with the §6 self-tuning extension attached.
//
//	go run ./examples/adaptive_system
package main

import (
	"fmt"
	"log"

	adm "github.com/adm-project/adm"
	"github.com/adm-project/adm/internal/monitor"
)

func main() {
	sys, err := adm.NewSystem(adm.SystemConfig{
		Name:        "mobile-cbms",
		ADL:         adm.Figure4ADL,
		InitialMode: "docked",
		CooldownMS:  200,
		Rules: []adm.SystemRule{
			{ID: 1, Source: "If bandwidth < 1000 then wireless.mode", Action: adm.ActionSwitchMode},
			{ID: 2, Source: "If bandwidth >= 1000 then docked.mode", Action: adm.ActionSwitchMode, Priority: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted in mode %q with components %v\n", sys.Mode(), sys.Assembly().Components())

	// Drive a day of connectivity: docked, undocked on the move,
	// docked again.
	trace := []struct {
		t  float64
		bw float64
	}{
		{0, 10_000}, {100, 10_000}, {400, 500}, {700, 480}, {1200, 10_000},
	}
	for _, p := range trace {
		pt := p
		sys.Clock().Schedule(pt.t, func() {
			sys.Publish(adm.Sample{
				Key:    monitor.Key{Metric: monitor.MetricBandwidth},
				Value:  pt.bw,
				TimeMS: pt.t,
			})
			fmt.Printf("t=%5.0fms  bandwidth=%6.0f  mode=%s\n", pt.t, pt.bw, sys.Mode())
		})
	}
	sys.Clock().Run()

	fmt.Printf("\nfinal mode: %s\n", sys.Mode())
	st := sys.SessionStats()
	fmt.Printf("session: %d checks, %d violations, %d adaptations, %d cooldown skips\n",
		st.Checks, st.Violations, st.Actions, st.Skips)
	am := sys.Adaptivity().Stats()
	fmt.Printf("adaptivity: %d switches (%d binds, %d unbinds, %d starts, %d stops), %d rollbacks\n",
		am.Switches, am.Binds, am.Unbinds, am.Starts, am.Stops, am.Rollbacks)
	if errs := sys.Validate(); len(errs) == 0 {
		fmt.Println("configuration valid: every require port bound")
	}
}

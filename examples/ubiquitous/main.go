// Ubiquitous: the paper's three Section 4 scenarios end to end on the
// Figure 3 testbed (sensor — Laptop — PDA).
//
//	go run ./examples/ubiquitous
package main

import (
	"fmt"
	"log"

	adm "github.com/adm-project/adm"
	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/device"
	"github.com/adm-project/adm/internal/experiments"
)

func main() {
	fmt.Println("=== Scenario 1: inter-query adaptation (BEST / NEAREST) ===")
	scenario1()
	fmt.Println("\n=== Scenario 2: system adaptation (undock mid-stream) ===")
	scenario2()
	fmt.Println("\n=== Scenario 3: intra-query adaptation (join replanning) ===")
	scenario3()
}

// Scenario 1: a PDA query's data component carries BEST/NEAREST
// constraints; the decisions track live device vitals.
func scenario1() {
	tb := adm.NewTestbed(1)
	ctx := &adm.ConstraintContext{Env: tb.Reg}
	best := constraint.MustParse("Select BEST (PDA, Laptop)")
	near := constraint.MustParse("Select NEAREST (PDA, Laptop)")

	d, err := best.Eval(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("laptop idle:  BEST    -> %-8s (%s)\n", d.Target.Node(), d.Reason)
	d, _ = near.Eval(ctx)
	fmt.Printf("              NEAREST -> %-8s (%s)\n", d.Target.Node(), d.Reason)

	// Someone starts using the Laptop heavily.
	tb.Devices[device.NodeLaptop].SetLoad(95)
	tb.PublishAll()
	d, _ = best.Eval(ctx)
	fmt.Printf("laptop busy:  BEST    -> %-8s (%s)\n", d.Target.Node(), d.Reason)
}

// Scenario 2: the sensor streams XML to the Laptop; mid-stream the
// Laptop undocks and the adaptive run switches to the compressed
// version at a safe point.
func scenario2() {
	static, err := experiments.RunScenario2(false)
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := experiments.RunScenario2(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static run:   %6.0f ms, %7d bytes on the wire\n", static.CompletionMS, static.BytesSent)
	fmt.Printf("adaptive run: %6.0f ms, %7d bytes (switched to compressed at a safe point)\n",
		adaptive.CompletionMS, adaptive.BytesSent)
	fmt.Printf("speedup:      %.1fx, readings intact: %v (%d)\n",
		static.CompletionMS/adaptive.CompletionMS,
		adaptive.Readings == static.Readings, adaptive.Readings)
}

// Scenario 3: stale statistics mislead the optimiser; the executor
// detects the misestimate at a safe point and swaps the join's build
// side mid-query.
func scenario3() {
	r, err := experiments.RunScenario3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replanned:          %v (triggered at build row %d)\n", r.Replanned, r.TriggerRow)
	fmt.Printf("peak hash rows:     %d adaptive vs %d static\n", r.PeakHashRows, r.StaticPeak)
	fmt.Printf("results consistent: %v (%d rows both ways)\n",
		r.StaticRows == r.AdaptiveRows, r.AdaptiveRows)
}

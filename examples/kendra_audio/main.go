// Kendra audio: mid-stream codec swap-in under a bandwidth drop —
// "a new less bandwidth hungry codec is swapped in" (§5.2).
//
//	go run ./examples/kendra_audio
package main

import (
	"fmt"
	"log"

	adm "github.com/adm-project/adm"
)

func main() {
	trace := adm.KendraDropTrace()
	fmt.Println("bandwidth trace: 300 Kbps, drop to 40 Kbps at 10s, recover to 120 Kbps at 20s")

	fixed, err := adm.KendraStream(adm.DefaultKendraConfig(false), trace)
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := adm.KendraStream(adm.DefaultKendraConfig(true), trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-24s %10s %10s\n", "", "fixed pcm", "adaptive")
	fmt.Printf("%-24s %9.1f%% %9.2f%%\n", "stall rate", 100*fixed.StallRate(), 100*adaptive.StallRate())
	fmt.Printf("%-24s %10.2f %10.2f\n", "mean quality", fixed.MeanQuality, adaptive.MeanQuality)
	fmt.Printf("%-24s %10d %10d\n", "codec switches", fixed.Switches, adaptive.Switches)
	fmt.Printf("codec mix (adaptive): %v\n", adaptive.CodecFrames)

	fmt.Println("\nswitch events:")
	for _, ev := range adaptive.Log.OfKind("switch") {
		fmt.Println("  ", ev)
	}
}

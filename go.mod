module github.com/adm-project/adm

go 1.22

#!/bin/sh
# ci.sh — the checks a change must pass before merging.
#
#   formatting   gofmt -l (fails on any unformatted file)
#   analysis     go vet ./...
#   invariants   cmd/admvet — the engine-invariant analyzers (pinpair,
#                batchrelease, latchorder, poisoncheck, morselguard)
#                over the whole module; fails on any diagnostic,
#                including a stale //admvet:allow directive. The
#                per-analyzer negative fixtures must keep producing
#                diagnostics (exit != 0) so a silently broken analyzer
#                cannot green-light the build.
#   build        go build ./... plus an explicit go build of every
#                cmd/* binary (a main package go build ./... only
#                type-checks; this links them)
#   tests        go test -race ./...
#   race matrix  go test -count=1 -race on the parallel-executor
#                packages at GOMAXPROCS=2 and 4 (scheduling diversity
#                beyond the default run)
#   crash matrix the deterministic fault-injection recovery suite
#                (internal/fault) at GOMAXPROCS=2 and 4 under two
#                ADM_FAULT_SEED schedules: crash at every WAL write
#                and sync barrier — including the group-commit
#                barriers, where the leader dies between appending a
#                batch's commit records and the fsync — seeded
#                torn-write tails, injected I/O errors; recovery must
#                come back byte-identical every time with every
#                transaction all-or-nothing
#   conn matrix  the wire-level connection-fault matrix against a live
#                admsqld (internal/server) at GOMAXPROCS=2 and 4 under
#                two ADM_FAULT_SEED schedules: torn frames, mid-result
#                disconnects, stalled readers, deaths in-transaction
#                and mid-group-commit; the leak oracles (open txns,
#                pooled batches, tracked conns, goroutines) must read
#                zero after every schedule
#   lint         admlint over every checked-in ADL model, rule file and
#                assembly listing; the negative fixtures must keep
#                producing diagnostics (exit != 0), the clean ones none.
#   bench smoke  cmd/admbench -json on a small fixed workload, written
#                to BENCH_parallel.json and gated against
#                bench_baseline.json: the build fails if the 4-worker
#                join, parallel-sort or top-k throughput drops below
#                0.9x the checked-in baseline, if the join's 4w/1w
#                scaling efficiency falls below scaling_floor, if
#                the parallel sort's speedup over the serial
#                boxed-Compare reference falls below
#                sort_scaling_floor, if either crash-recovery
#                smoke bench (RecoveryWAL, RecoveryCkpt) recovers
#                fewer rows/sec than recovery_floor, or if the
#                concurrent-commit bench's 16-session/1-session
#                commits/sec ratio falls below commit_scaling_floor
#                (group commit degenerating to fsync-per-commit), if
#                the mis-ordered multi-join bench's recovery ratios
#                (MultiJoinGreedy / MultiJoinAdapt vs the
#                MultiJoinDecl..MultiJoinOracle throughput gap,
#                paired per repeat) fall below greedy_recovery_floor
#                / adaptation_recovery_floor — the greedy join order
#                or the safe-point router no longer rescuing a bad
#                declaration order — if PlanTime exceeds
#                plan_time_ceiling_ns per 5-table plan, or if the
#                vectorized scan-filter's paired kernel/boxed
#                throughput ratio (ScanFilter vs ScanFilterBoxed,
#                1%-selectivity clustered scan) falls below
#                filter_kernel_floor, if the adaptive flash-crowd
#                drive's served p99 exceeds flash_p99_ceiling_ms
#                while the static witness run exceeds it (the
#                degradation ladder no longer defending the SLO), or
#                if its decay-phase shed recovery falls below
#                shed_recovery_floor (the ladder failing to release).
#                To refresh the baseline (after an
#                intentional perf change, or on new CI hardware), see
#                the update procedure in bench_baseline.json's
#                _readme.
#   alloc gate   BenchmarkBatchHeapScan, BenchmarkTopK and
#                BenchmarkFilterBatch with -benchmem: fails if the
#                batched scan's allocs/op exceeds SCAN_ALLOC_BUDGET,
#                if the Top-K path exceeds TOPK_ALLOC_BUDGET
#                allocs/op or TOPK_BYTE_BUDGET B/op — the bounded
#                heaps started materialising the input they exist to
#                avoid — or if steady-state kernel filtering of a
#                1024-row batch exceeds FILTER_ALLOC_BUDGET allocs/op
#                (the selection vector must be reused off the batch,
#                never reallocated per batch).
#
# Every step prints its elapsed time when the next one starts; on any
# failure the last line on stderr is "FAILED: <step>" so the culprit
# is readable without scrolling.
#
# ADM_CI_QUICK=1 skips the race and crash matrices (the two
# multi-schedule re-runs) for fast local iteration. CI runs the full
# script.
set -eu

# Allocations per full batched heap-file scan (steady state is 1: the
# page-list snapshot; headroom for pool warm-up noise).
SCAN_ALLOC_BUDGET=8
# Budgets for ORDER BY ... LIMIT 10 over 100k rows at 4 workers.
# Measured ~30 allocs / ~3.4 KB per op: per-worker heaps, batch pool
# noise and the final k-row merge. The byte budget is the real
# non-materialisation gate — 100k tuples would be megabytes.
TOPK_ALLOC_BUDGET=64
TOPK_BYTE_BUDGET=16384
# Steady-state vectorized filtering of a 1024-row batch (measured 0:
# the selection vector lives on the batch and is reused; headroom for
# the occasional conjunct-reorder copy).
FILTER_ALLOC_BUDGET=2

cd "$(dirname "$0")"

CI_STEP="setup"
CI_T0=$(date +%s)
CI_STEP_T0=$CI_T0

# step <name>: close the previous step (printing its elapsed seconds)
# and open the next. The trap below names the in-flight step on any
# non-zero exit.
step() {
    now=$(date +%s)
    echo "   (${CI_STEP}: $((now - CI_STEP_T0))s)"
    CI_STEP="$1"
    CI_STEP_T0=$now
    echo "== $1"
}

trap 'code=$?; if [ "$code" -ne 0 ]; then echo "FAILED: $CI_STEP" >&2; fi' EXIT

echo "== gofmt"
CI_STEP="gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet"
go vet ./...

step "admvet (engine invariants)"
go run ./cmd/admvet ./...

step "admvet (negative fixtures must fail)"
for a in pinpair batchrelease latchorder poisoncheck morselguard; do
    if go run ./cmd/admvet -analyzers "$a" \
        -dir "internal/analysis/testdata/src/$a" >/dev/null 2>&1; then
        echo "admvet $a produced no diagnostics on its positive fixture" >&2
        exit 1
    fi
done

step "go build"
go build ./...

step "go build (link all cmd binaries)"
bindir=$(mktemp -d)
go build -o "$bindir/" ./cmd/...
rm -rf "$bindir"

step "go test -race"
go test -race ./...

if [ "${ADM_CI_QUICK:-0}" = "1" ]; then
    step "race matrix (skipped: ADM_CI_QUICK=1)"
    step "crash matrix (skipped: ADM_CI_QUICK=1)"
else
    step "race matrix (parallel packages)"
    for gmp in 2 4; do
        echo "   GOMAXPROCS=$gmp"
        GOMAXPROCS=$gmp go test -count=1 -race \
            ./internal/operators/... ./internal/query/... ./internal/storage/...
    done

    step "crash matrix (seeded fault schedules)"
    # The fault-injection recovery suite under two GOMAXPROCS values and
    # two WAL-crash seeds: the default schedule plus one alternate, so a
    # recovery bug that hides behind one torn-write pattern still fails
    # the build. ADM_FAULT_SEED reseeds the torn-write/crash-point
    # schedules in internal/fault's tests (see faultSeed).
    for gmp in 2 4; do
        for seed in 0xADC0FFEE 0x5EED0001; do
            echo "   GOMAXPROCS=$gmp ADM_FAULT_SEED=$seed"
            GOMAXPROCS=$gmp ADM_FAULT_SEED=$seed go test -count=1 -race \
                ./internal/fault/...
        done
    done

    step "connection-fault matrix (server lifecycle)"
    # The wire-level fault matrix against a live admsqld: torn frames,
    # mid-result disconnects, stalled readers hitting the write
    # deadline, sessions dying inside transactions and mid-group-commit.
    # Reseeded like the crash matrix; after every schedule the leak
    # oracles must read zero (open transactions, pooled batches,
    # tracked connections, goroutines).
    for gmp in 2 4; do
        for seed in 0xADC0FFEE 0x5EED0001; do
            echo "   GOMAXPROCS=$gmp ADM_FAULT_SEED=$seed"
            GOMAXPROCS=$gmp ADM_FAULT_SEED=$seed go test -count=1 -race \
                -run 'TestConnectionFaultMatrix' ./internal/server/
        done
    done
fi

step "admlint (clean inputs)"
go run ./cmd/admlint \
    cmd/adlc/testdata \
    cmd/admlint/testdata/clean.rules \
    cmd/admlint/testdata/clean.s \
    examples

step "admlint (negative fixtures must fail)"
for f in cmd/admlint/testdata/dangling_bind.adl \
         cmd/admlint/testdata/unsat.rules \
         cmd/admlint/testdata/out_of_segment.s; do
    if go run ./cmd/admlint "$f" >/dev/null 2>&1; then
        echo "admlint passed $f but must reject it" >&2
        exit 1
    fi
done

step "bench smoke (join/sort/top-k/commit/multijoin/flash-crowd regression gate)"
go run ./cmd/admbench -json -rows 20000 -workers 1,2,4 -repeats 5 -flash \
    -baseline bench_baseline.json > BENCH_parallel.json
echo "   wrote BENCH_parallel.json"

step "alloc gate (batched scan)"
bench_out=$(go test -run '^$' -bench '^BenchmarkBatchHeapScan$' \
    -benchmem -benchtime 20x .)
allocs=$(echo "$bench_out" | awk '/^BenchmarkBatchHeapScan/ { print $(NF-1) }')
if [ -z "$allocs" ]; then
    echo "could not parse allocs/op from benchmark output:" >&2
    echo "$bench_out" >&2
    exit 1
fi
echo "   BatchHeapScan: $allocs allocs/op (budget $SCAN_ALLOC_BUDGET)"
if [ "$allocs" -gt "$SCAN_ALLOC_BUDGET" ]; then
    echo "ALLOC REGRESSION: batched scan at $allocs allocs/op, budget $SCAN_ALLOC_BUDGET" >&2
    exit 1
fi

step "alloc gate (top-k)"
topk_out=$(go test -run '^$' -bench '^BenchmarkTopK$' \
    -benchmem -benchtime 20x .)
topk_allocs=$(echo "$topk_out" | awk '/^BenchmarkTopK/ { print $(NF-1) }')
topk_bytes=$(echo "$topk_out" | awk '/^BenchmarkTopK/ { print $(NF-3) }')
if [ -z "$topk_allocs" ] || [ -z "$topk_bytes" ]; then
    echo "could not parse allocs/B per op from benchmark output:" >&2
    echo "$topk_out" >&2
    exit 1
fi
echo "   TopK: $topk_allocs allocs/op (budget $TOPK_ALLOC_BUDGET), $topk_bytes B/op (budget $TOPK_BYTE_BUDGET)"
if [ "$topk_allocs" -gt "$TOPK_ALLOC_BUDGET" ]; then
    echo "ALLOC REGRESSION: top-k at $topk_allocs allocs/op, budget $TOPK_ALLOC_BUDGET" >&2
    exit 1
fi
if [ "$topk_bytes" -gt "$TOPK_BYTE_BUDGET" ]; then
    echo "MATERIALISATION REGRESSION: top-k at $topk_bytes B/op, budget $TOPK_BYTE_BUDGET" >&2
    exit 1
fi

step "alloc gate (vectorized filter)"
filter_out=$(go test -run '^$' -bench '^BenchmarkFilterBatch$' \
    -benchmem -benchtime 100x ./internal/operators)
filter_allocs=$(echo "$filter_out" | awk '/^BenchmarkFilterBatch/ { print $(NF-1) }')
if [ -z "$filter_allocs" ]; then
    echo "could not parse allocs/op from benchmark output:" >&2
    echo "$filter_out" >&2
    exit 1
fi
echo "   FilterBatch: $filter_allocs allocs/op (budget $FILTER_ALLOC_BUDGET)"
if [ "$filter_allocs" -gt "$FILTER_ALLOC_BUDGET" ]; then
    echo "ALLOC REGRESSION: kernel filter at $filter_allocs allocs/op, budget $FILTER_ALLOC_BUDGET" >&2
    exit 1
fi

step "done"
echo "ok (total $(( $(date +%s) - CI_T0 ))s)"

#!/bin/sh
# ci.sh — the checks a change must pass before merging.
#
#   formatting   gofmt -l (fails on any unformatted file)
#   analysis     go vet ./...
#   build        go build ./...
#   tests        go test -race ./...
#   lint         admlint over every checked-in ADL model, rule file and
#                assembly listing; the negative fixtures must keep
#                producing diagnostics (exit != 0), the clean ones none.
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== admlint (clean inputs)"
go run ./cmd/admlint \
    cmd/adlc/testdata \
    cmd/admlint/testdata/clean.rules \
    cmd/admlint/testdata/clean.s \
    examples

echo "== admlint (negative fixtures must fail)"
for f in cmd/admlint/testdata/dangling_bind.adl \
         cmd/admlint/testdata/unsat.rules \
         cmd/admlint/testdata/out_of_segment.s; do
    if go run ./cmd/admlint "$f" >/dev/null 2>&1; then
        echo "admlint passed $f but must reject it" >&2
        exit 1
    fi
done

echo "ok"

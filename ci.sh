#!/bin/sh
# ci.sh — the checks a change must pass before merging.
#
#   formatting   gofmt -l (fails on any unformatted file)
#   analysis     go vet ./...
#   invariants   cmd/admvet — the engine-invariant analyzers (pinpair,
#                batchrelease, latchorder, poisoncheck, morselguard)
#                over the whole module; fails on any diagnostic,
#                including a stale //admvet:allow directive. The
#                per-analyzer negative fixtures must keep producing
#                diagnostics (exit != 0) so a silently broken analyzer
#                cannot green-light the build.
#   build        go build ./... plus an explicit go build of every
#                cmd/* binary (a main package go build ./... only
#                type-checks; this links them)
#   tests        go test -race ./...
#   race matrix  go test -count=1 -race on the parallel-executor
#                packages at GOMAXPROCS=2 and 4 (scheduling diversity
#                beyond the default run)
#   crash matrix the deterministic fault-injection recovery suite
#                (internal/fault) at GOMAXPROCS=2 and 4 under two
#                ADM_FAULT_SEED schedules: crash at every WAL write
#                and sync barrier, seeded torn-write tails, injected
#                I/O errors — recovery must come back byte-identical
#                every time
#   lint         admlint over every checked-in ADL model, rule file and
#                assembly listing; the negative fixtures must keep
#                producing diagnostics (exit != 0), the clean ones none.
#   bench smoke  cmd/admbench -json on a small fixed workload, written
#                to BENCH_parallel.json and gated against
#                bench_baseline.json: the build fails if the 4-worker
#                join, parallel-sort or top-k throughput drops below
#                0.9x the checked-in baseline, if the join's 4w/1w
#                scaling efficiency falls below scaling_floor, or if
#                the parallel sort's speedup over the serial
#                boxed-Compare reference falls below
#                sort_scaling_floor, or if either crash-recovery
#                smoke bench (RecoveryWAL, RecoveryCkpt) recovers
#                fewer rows/sec than recovery_floor.
#                To refresh the baseline (after an
#                intentional perf change, or on new CI hardware), see
#                the update procedure in bench_baseline.json's
#                _readme.
#   alloc gate   BenchmarkBatchHeapScan and BenchmarkTopK with
#                -benchmem: fails if the batched scan's allocs/op
#                exceeds SCAN_ALLOC_BUDGET, or if the Top-K path
#                exceeds TOPK_ALLOC_BUDGET allocs/op or
#                TOPK_BYTE_BUDGET B/op — the bounded heaps started
#                materialising the input they exist to avoid.
set -eu

# Allocations per full batched heap-file scan (steady state is 1: the
# page-list snapshot; headroom for pool warm-up noise).
SCAN_ALLOC_BUDGET=8
# Budgets for ORDER BY ... LIMIT 10 over 100k rows at 4 workers.
# Measured ~30 allocs / ~3.4 KB per op: per-worker heaps, batch pool
# noise and the final k-row merge. The byte budget is the real
# non-materialisation gate — 100k tuples would be megabytes.
TOPK_ALLOC_BUDGET=64
TOPK_BYTE_BUDGET=16384

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== admvet (engine invariants)"
go run ./cmd/admvet ./...

echo "== admvet (negative fixtures must fail)"
for a in pinpair batchrelease latchorder poisoncheck morselguard; do
    if go run ./cmd/admvet -analyzers "$a" \
        -dir "internal/analysis/testdata/src/$a" >/dev/null 2>&1; then
        echo "admvet $a produced no diagnostics on its positive fixture" >&2
        exit 1
    fi
done

echo "== go build"
go build ./...

echo "== go build (link all cmd binaries)"
bindir=$(mktemp -d)
go build -o "$bindir/" ./cmd/...
rm -rf "$bindir"

echo "== go test -race"
go test -race ./...

echo "== race matrix (parallel packages)"
for gmp in 2 4; do
    echo "   GOMAXPROCS=$gmp"
    GOMAXPROCS=$gmp go test -count=1 -race \
        ./internal/operators/... ./internal/query/... ./internal/storage/...
done

echo "== crash matrix (seeded fault schedules)"
# The fault-injection recovery suite under two GOMAXPROCS values and
# two WAL-crash seeds: the default schedule plus one alternate, so a
# recovery bug that hides behind one torn-write pattern still fails
# the build. ADM_FAULT_SEED reseeds the torn-write/crash-point
# schedules in internal/fault's tests (see faultSeed).
for gmp in 2 4; do
    for seed in 0xADC0FFEE 0x5EED0001; do
        echo "   GOMAXPROCS=$gmp ADM_FAULT_SEED=$seed"
        GOMAXPROCS=$gmp ADM_FAULT_SEED=$seed go test -count=1 -race \
            ./internal/fault/...
    done
done

echo "== admlint (clean inputs)"
go run ./cmd/admlint \
    cmd/adlc/testdata \
    cmd/admlint/testdata/clean.rules \
    cmd/admlint/testdata/clean.s \
    examples

echo "== admlint (negative fixtures must fail)"
for f in cmd/admlint/testdata/dangling_bind.adl \
         cmd/admlint/testdata/unsat.rules \
         cmd/admlint/testdata/out_of_segment.s; do
    if go run ./cmd/admlint "$f" >/dev/null 2>&1; then
        echo "admlint passed $f but must reject it" >&2
        exit 1
    fi
done

echo "== bench smoke (join/sort/top-k regression gate)"
go run ./cmd/admbench -json -rows 20000 -workers 1,2,4 -repeats 5 \
    -baseline bench_baseline.json > BENCH_parallel.json
echo "   wrote BENCH_parallel.json"

echo "== alloc gate (batched scan)"
bench_out=$(go test -run '^$' -bench '^BenchmarkBatchHeapScan$' \
    -benchmem -benchtime 20x .)
allocs=$(echo "$bench_out" | awk '/^BenchmarkBatchHeapScan/ { print $(NF-1) }')
if [ -z "$allocs" ]; then
    echo "could not parse allocs/op from benchmark output:" >&2
    echo "$bench_out" >&2
    exit 1
fi
echo "   BatchHeapScan: $allocs allocs/op (budget $SCAN_ALLOC_BUDGET)"
if [ "$allocs" -gt "$SCAN_ALLOC_BUDGET" ]; then
    echo "ALLOC REGRESSION: batched scan at $allocs allocs/op, budget $SCAN_ALLOC_BUDGET" >&2
    exit 1
fi

echo "== alloc gate (top-k)"
topk_out=$(go test -run '^$' -bench '^BenchmarkTopK$' \
    -benchmem -benchtime 20x .)
topk_allocs=$(echo "$topk_out" | awk '/^BenchmarkTopK/ { print $(NF-1) }')
topk_bytes=$(echo "$topk_out" | awk '/^BenchmarkTopK/ { print $(NF-3) }')
if [ -z "$topk_allocs" ] || [ -z "$topk_bytes" ]; then
    echo "could not parse allocs/B per op from benchmark output:" >&2
    echo "$topk_out" >&2
    exit 1
fi
echo "   TopK: $topk_allocs allocs/op (budget $TOPK_ALLOC_BUDGET), $topk_bytes B/op (budget $TOPK_BYTE_BUDGET)"
if [ "$topk_allocs" -gt "$TOPK_ALLOC_BUDGET" ]; then
    echo "ALLOC REGRESSION: top-k at $topk_allocs allocs/op, budget $TOPK_ALLOC_BUDGET" >&2
    exit 1
fi
if [ "$topk_bytes" -gt "$TOPK_BYTE_BUDGET" ]; then
    echo "MATERIALISATION REGRESSION: top-k at $topk_bytes B/op, budget $TOPK_BYTE_BUDGET" >&2
    exit 1
fi

echo "ok"

// Engine-level crash matrix: the fault harness drives the real DB
// through crashes at EVERY WAL write, torn writes of seeded lengths,
// failed sync barriers, and injected I/O errors, then reopens from the
// frozen bytes and checks the durability contract:
//
//   - every acknowledged operation survives recovery byte-identically;
//   - at most the single in-flight operation may differ, and only
//     between its before/after/absent versions;
//   - recovery itself never fails on a crash-consistent image.
//
// Schedules are deterministic. ADM_FAULT_SEED overrides the torn-write
// seed so CI can replay the matrix under different schedules.
package fault_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/fault"
	"github.com/adm-project/adm/internal/storage"
)

// faultSeed returns the schedule seed (ADM_FAULT_SEED or a fixed
// default) so a CI failure names a replayable schedule.
func faultSeed(t *testing.T) uint64 {
	if s := os.Getenv("ADM_FAULT_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			t.Fatalf("bad ADM_FAULT_SEED %q: %v", s, err)
		}
		return v
	}
	return 0xADC0FFEE
}

// ---------------------------------------------------------------------------
// Workload + shadow model (mirrors the storage-level crash workload,
// sized down so the full per-write matrix stays fast).

type op struct {
	kind string
	key  int64
	tup  storage.Tuple
}

func mkTuple(key int64, rev int) storage.Tuple {
	pay := strings.Repeat(fmt.Sprintf("k%dr%d.", key, rev), 80)
	return storage.Tuple{storage.IntValue(key), storage.StringValue(pay)}
}

func workload() []op {
	ops := []op{{kind: "create"}}
	for i := int64(0); i < 12; i++ {
		ops = append(ops, op{kind: "insert", key: i, tup: mkTuple(i, 0)})
	}
	ops = append(ops, op{kind: "checkpoint"})
	ops = append(ops,
		op{kind: "delete", key: 3},
		op{kind: "delete", key: 8},
		op{kind: "update", key: 5, tup: mkTuple(5, 1)},
		op{kind: "update", key: 10, tup: mkTuple(10, 1)},
		op{kind: "index"},
	)
	for i := int64(12); i < 18; i++ {
		ops = append(ops, op{kind: "insert", key: i, tup: mkTuple(i, 0)})
	}
	return ops
}

type model struct {
	rows map[int64][]byte
	rids map[int64]storage.RID
}

func newModel() *model {
	return &model{rows: map[int64][]byte{}, rids: map[int64]storage.RID{}}
}

// run executes ops until the first error (the crash), returning the
// acked model and the index of the op that was in flight (len(ops) if
// the workload completed).
func run(db *storage.DB, ops []op) (*model, int) {
	m := newModel()
	for i, o := range ops {
		var err error
		switch o.kind {
		case "create":
			_, err = db.CreateFile("t")
		case "insert":
			h, _ := db.File("t")
			var rid storage.RID
			rid, err = h.Insert(o.tup)
			if err == nil {
				m.rows[o.key] = storage.EncodeTuple(o.tup)
				m.rids[o.key] = rid
			}
		case "delete":
			h, _ := db.File("t")
			err = h.Delete(m.rids[o.key])
			if err == nil {
				delete(m.rows, o.key)
				delete(m.rids, o.key)
			}
		case "update":
			h, _ := db.File("t")
			var rid storage.RID
			rid, err = h.Update(m.rids[o.key], o.tup)
			if err == nil {
				m.rows[o.key] = storage.EncodeTuple(o.tup)
				m.rids[o.key] = rid
			}
		case "index":
			err = db.LogIndex(storage.IndexDef{Name: "t_k0", File: "t", Col: 0})
		case "checkpoint":
			err = db.Checkpoint()
		}
		if err != nil {
			return m, i
		}
	}
	return m, len(ops)
}

func scanRows(t *testing.T, db *storage.DB) map[int64][]byte {
	t.Helper()
	h, ok := db.File("t")
	if !ok {
		return map[int64][]byte{}
	}
	out := map[int64][]byte{}
	err := h.Scan(func(rid storage.RID, tu storage.Tuple) bool {
		k := tu[0].Int
		if _, dup := out[k]; dup {
			t.Fatalf("key %d recovered twice", k)
		}
		out[k] = storage.EncodeTuple(tu)
		return true
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

// checkDurability asserts the recovered rows honour the contract given
// the acked model and the in-flight op (ops[inflight] if in range).
func checkDurability(t *testing.T, tag string, got map[int64][]byte, m *model, ops []op, inflight int) {
	t.Helper()
	touched := int64(-1)
	var allowed [][]byte
	if inflight < len(ops) {
		o := ops[inflight]
		switch o.kind {
		case "insert", "update":
			touched = o.key
			allowed = append(allowed, storage.EncodeTuple(o.tup))
		case "delete":
			touched = o.key
		}
		if prev, ok := m.rows[touched]; ok {
			allowed = append(allowed, prev)
		}
	}
	for k, v := range m.rows {
		if k == touched {
			continue
		}
		if !bytes.Equal(got[k], v) {
			t.Fatalf("%s: acked key %d lost or altered", tag, k)
		}
	}
	for k, v := range got {
		if k == touched {
			okv := false
			for _, a := range allowed {
				if bytes.Equal(a, v) {
					okv = true
					break
				}
			}
			if !okv {
				t.Fatalf("%s: in-flight key %d has phantom bytes", tag, k)
			}
			continue
		}
		if want, ok := m.rows[k]; !ok {
			t.Fatalf("%s: phantom key %d", tag, k)
		} else if !bytes.Equal(want, v) {
			t.Fatalf("%s: key %d bytes differ", tag, k)
		}
	}
}

// crashRun executes the workload with a crash armed on the WAL disk,
// then recovers from the frozen bytes and checks durability. Returns
// the recovered DB for extra assertions.
func crashRun(t *testing.T, tag string, arm func(*fault.Disk)) (*storage.DB, *model, int, []op) {
	t.Helper()
	walMem, dataMem := storage.NewMemDisk(), storage.NewMemDisk()
	wd := fault.Wrap(walMem)
	arm(wd)
	ops := workload()
	m, inflight := newModel(), 0
	db, err := storage.Open(wd, dataMem, storage.DBOptions{})
	if err != nil {
		// Crash during Open (e.g. on the magic write): nothing acked.
		if !errors.Is(err, fault.ErrCrashed) && !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("%s: open failed outside injection: %v", tag, err)
		}
	} else {
		m, inflight = run(db, ops)
	}
	db2, err := storage.Open(storage.NewMemDiskFrom(walMem.Bytes()), storage.NewMemDiskFrom(dataMem.Bytes()), storage.DBOptions{})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", tag, err)
	}
	checkDurability(t, tag, scanRows(t, db2), m, ops, inflight)
	return db2, m, inflight, ops
}

// ---------------------------------------------------------------------------
// The matrix.

// TestCrashAtEveryWALWrite crashes the engine at every single WAL
// write with nothing torn (a clean record boundary) and checks that
// exactly the durable prefix is recovered: RecordsScanned == n-2 for a
// crash at write n (write 1 is the magic), and every acked op
// survives byte-identically.
func TestCrashAtEveryWALWrite(t *testing.T) {
	// Golden run to size the matrix.
	walMem, dataMem := storage.NewMemDisk(), storage.NewMemDisk()
	wd := fault.Wrap(walMem)
	db, err := storage.Open(wd, dataMem, storage.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m, done := run(db, workload()); done != len(workload()) {
		t.Fatalf("golden run stopped at op %d with %d rows", done, len(m.rows))
	}
	writes, _, _ := wd.Counts()
	if writes < 20 {
		t.Fatalf("workload produced only %d WAL writes", writes)
	}

	for n := 1; n <= writes; n++ {
		db2, _, _, _ := crashRun(t, fmt.Sprintf("write %d", n), func(d *fault.Disk) {
			d.CrashAtWrite(n, 0)
		})
		if n >= 2 {
			if got := db2.Stats().Recovery.RecordsScanned; got != n-2 {
				t.Fatalf("crash at write %d: scanned %d records, want %d", n, got, n-2)
			}
		}
	}
}

// TestSeededTornWrites crashes at seeded write ordinals with seeded
// torn prefixes — mid-record torn writes the boundary matrix cannot
// produce. The schedule derives from ADM_FAULT_SEED.
func TestSeededTornWrites(t *testing.T) {
	seed := faultSeed(t)
	rng := fault.NewRand(seed)

	walMem, dataMem := storage.NewMemDisk(), storage.NewMemDisk()
	wd := fault.Wrap(walMem)
	db, err := storage.Open(wd, dataMem, storage.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run(db, workload())
	writes, _, _ := wd.Counts()

	for i := 0; i < 24; i++ {
		n := 2 + rng.Intn(writes-1)
		torn := rng.Intn(64)
		crashRun(t, fmt.Sprintf("seed %#x iter %d (write %d torn %d)", seed, i, n, torn), func(d *fault.Disk) {
			d.CrashAtWrite(n, torn)
		})
	}
}

// TestCrashAtEverySyncBarrier fails each fsync barrier in turn. The
// record bytes reached the (non-volatile in this model) backing store,
// so the in-flight op may surface after recovery — but unacked is the
// most it can be; acked ops must all survive.
func TestCrashAtEverySyncBarrier(t *testing.T) {
	walMem, dataMem := storage.NewMemDisk(), storage.NewMemDisk()
	wd := fault.Wrap(walMem)
	db, err := storage.Open(wd, dataMem, storage.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run(db, workload())
	_, _, syncs := wd.Counts()
	if syncs < 10 {
		t.Fatalf("workload produced only %d sync barriers", syncs)
	}
	for n := 1; n <= syncs; n++ {
		crashRun(t, fmt.Sprintf("sync %d", n), func(d *fault.Disk) {
			d.CrashAtSync(n)
		})
	}
}

// TestCrashDuringCheckpointFlush crashes the DATA disk at each write
// during the checkpoint flush: the WAL survives intact, so recovery
// must fall back to full redo and lose nothing that was acked.
func TestCrashDuringCheckpointFlush(t *testing.T) {
	// Golden run counting data-disk writes.
	walMem, dataMem := storage.NewMemDisk(), storage.NewMemDisk()
	dd := fault.Wrap(dataMem)
	db, err := storage.Open(walMem, dd, storage.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run(db, workload())
	writes, _, _ := dd.Counts()
	if writes < 3 {
		t.Fatalf("checkpoint produced only %d data writes", writes)
	}

	ops := workload()
	for n := 1; n <= writes; n++ {
		walMem, dataMem := storage.NewMemDisk(), storage.NewMemDisk()
		dd := fault.Wrap(dataMem)
		dd.CrashAtWrite(n, fault.NewRand(uint64(n)).Intn(256))
		db, err := storage.Open(walMem, dd, storage.DBOptions{})
		if err != nil {
			if errors.Is(err, fault.ErrCrashed) {
				continue // crash on the page-file magic write
			}
			t.Fatalf("data write %d: open: %v", n, err)
		}
		m, inflight := run(db, ops)
		db2, err := storage.Open(storage.NewMemDiskFrom(walMem.Bytes()), storage.NewMemDiskFrom(dataMem.Bytes()), storage.DBOptions{})
		if err != nil {
			t.Fatalf("data write %d: recovery: %v", n, err)
		}
		checkDurability(t, fmt.Sprintf("data write %d", n), scanRows(t, db2), m, ops, inflight)
		// A data-disk crash must not have quarantined anything the
		// checkpoint record never referenced.
		if q := db2.Stats().Recovery.PagesQuarantined; q != 0 {
			t.Fatalf("data write %d: quarantined %d pages on crash-consistent image", n, q)
		}
	}
}

// TestInjectedWALWriteErrorPoisonsDB: a one-shot write error (disk
// keeps running) must poison the DB — it cannot tell how far the
// append got — and recovery must see exactly the acked state.
func TestInjectedWALWriteErrorPoisonsDB(t *testing.T) {
	walMem, dataMem := storage.NewMemDisk(), storage.NewMemDisk()
	wd := fault.Wrap(walMem)
	wd.FailWrite(9) // mid-insert-run
	db, err := storage.Open(wd, dataMem, storage.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ops := workload()
	m, inflight := run(db, ops)
	if inflight == len(ops) {
		t.Fatal("workload survived an injected write error")
	}
	if err := db.Err(); !errors.Is(err, storage.ErrDBFailed) {
		t.Fatalf("Err() = %v, want ErrDBFailed", err)
	}
	h, _ := db.File("t")
	if _, err := h.Insert(mkTuple(99, 0)); !errors.Is(err, storage.ErrDBFailed) {
		t.Fatalf("post-poison insert = %v, want ErrDBFailed", err)
	}
	db2, err := storage.Open(storage.NewMemDiskFrom(walMem.Bytes()), storage.NewMemDiskFrom(dataMem.Bytes()), storage.DBOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	// The failed write never reached the disk, so there is no in-flight
	// ambiguity: recovered state == acked state exactly.
	got := scanRows(t, db2)
	if len(got) != len(m.rows) {
		t.Fatalf("recovered %d rows, want %d", len(got), len(m.rows))
	}
	checkDurability(t, "injected write", got, m, ops, len(ops))
}

// TestInjectedReadErrorFailsOpen: recovery reads that error out must
// fail Open loudly, not fabricate state.
func TestInjectedReadErrorFailsOpen(t *testing.T) {
	walMem, dataMem := storage.NewMemDisk(), storage.NewMemDisk()
	db, err := storage.Open(walMem, dataMem, storage.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run(db, workload())

	wd := fault.Wrap(storage.NewMemDiskFrom(walMem.Bytes()))
	wd.FailRead(1)
	if _, err := storage.Open(wd, storage.NewMemDiskFrom(dataMem.Bytes()), storage.DBOptions{}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("open with failing read = %v, want ErrInjected", err)
	}
}

// TestRandIsStable pins the splitmix64 stream: CI seeds must mean the
// same schedule forever.
func TestRandIsStable(t *testing.T) {
	r := fault.NewRand(42)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	want := []uint64{0xbdd732262feb6e95, 0x28efe333b266f103, 0x47526757130f9f52}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitmix64(42) stream[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

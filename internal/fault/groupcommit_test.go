// Group-commit crash matrix: concurrent sessions commit multi-row
// marker transactions through the group-commit WAL path (SyncManual —
// one fsync per batch) while the fault harness kills the WAL disk at
// every sync barrier (the leader dying between batch append and
// fsync) and at seeded write ordinals with torn tails. The recovery
// contract, per transaction:
//
//   - atomicity: ALL of a transaction's rows are visible after
//     recovery or NONE are, no matter where inside the batch the
//     crash landed;
//   - durability: a transaction whose Commit() returned nil must be
//     fully visible;
//   - determinism: recovering the same frozen bytes twice yields
//     byte-identical visible state.
package fault_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/adm-project/adm/internal/fault"
	"github.com/adm-project/adm/internal/storage"
)

const (
	gcSessions = 4 // concurrent committing sessions
	gcTxns     = 3 // transactions per session
	gcRows     = 3 // rows per transaction (multi-row: atomicity is observable)
)

func gcKey(session, txn, row int) int64 {
	return int64(session*1000 + txn*10 + row)
}

// gcRun drives the concurrent commit workload against db until it
// completes or the disk crashes. Returns the set of acked
// transactions (Commit returned nil), keyed by [session, txn].
func gcRun(db *storage.DB) map[[2]int]bool {
	h, err := db.CreateFile("t")
	if err != nil {
		return map[[2]int]bool{}
	}
	var mu sync.Mutex
	acked := map[[2]int]bool{}
	var wg sync.WaitGroup
	for s := 0; s < gcSessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for j := 0; j < gcTxns; j++ {
				tx := db.Txns().Begin()
				ok := true
				for r := 0; r < gcRows; r++ {
					if _, err := tx.Insert(h, mkTuple(gcKey(s, j, r), 0)); err != nil {
						ok = false
						break
					}
				}
				if !ok {
					_ = tx.Rollback()
					return // disk is dead; stop this session
				}
				if err := tx.Commit(); err != nil {
					return
				}
				mu.Lock()
				acked[[2]int{s, j}] = true
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	return acked
}

// gcVisible reopens from frozen bytes and returns the visible rows
// (by key, encoded bytes) under a fresh snapshot.
func gcVisible(t *testing.T, tag string, walBytes, dataBytes []byte) map[int64][]byte {
	t.Helper()
	db, err := storage.Open(storage.NewMemDiskFrom(walBytes), storage.NewMemDiskFrom(dataBytes),
		storage.DBOptions{Sync: storage.SyncManual})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", tag, err)
	}
	h, ok := db.File("t")
	if !ok {
		return map[int64][]byte{}
	}
	tx := db.Txns().Begin()
	defer tx.Rollback()
	out := map[int64][]byte{}
	err = tx.View(h).Scan(func(_ storage.RID, tu storage.Tuple) bool {
		k := tu[0].Int
		if _, dup := out[k]; dup {
			t.Fatalf("%s: key %d visible twice after recovery", tag, k)
		}
		out[k] = storage.EncodeTuple(tu)
		return true
	})
	if err != nil {
		t.Fatalf("%s: scan: %v", tag, err)
	}
	return out
}

// gcCheck asserts per-transaction atomicity and acked durability over
// the recovered visible set.
func gcCheck(t *testing.T, tag string, vis map[int64][]byte, acked map[[2]int]bool) {
	t.Helper()
	for s := 0; s < gcSessions; s++ {
		for j := 0; j < gcTxns; j++ {
			n := 0
			for r := 0; r < gcRows; r++ {
				if _, ok := vis[gcKey(s, j, r)]; ok {
					n++
				}
			}
			if n != 0 && n != gcRows {
				t.Fatalf("%s: txn (%d,%d) partially visible: %d of %d rows — batch atomicity broken",
					tag, s, j, n, gcRows)
			}
			if acked[[2]int{s, j}] && n != gcRows {
				t.Fatalf("%s: acked txn (%d,%d) lost after recovery", tag, s, j)
			}
		}
	}
	for k := range vis {
		s, rest := int(k)/1000, int(k)%1000
		j, r := rest/10, rest%10
		if s >= gcSessions || j >= gcTxns || r >= gcRows {
			t.Fatalf("%s: phantom key %d", tag, k)
		}
	}
}

// gcCrashRun arms a crash on the WAL disk, runs the concurrent
// workload, then recovers twice and checks atomicity, acked
// durability and recovery determinism.
func gcCrashRun(t *testing.T, tag string, arm func(*fault.Disk)) {
	t.Helper()
	walMem, dataMem := storage.NewMemDisk(), storage.NewMemDisk()
	wd := fault.Wrap(walMem)
	arm(wd)
	acked := map[[2]int]bool{}
	db, err := storage.Open(wd, dataMem, storage.DBOptions{Sync: storage.SyncManual})
	if err != nil {
		if !errors.Is(err, fault.ErrCrashed) && !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("%s: open failed outside injection: %v", tag, err)
		}
	} else {
		acked = gcRun(db)
	}
	walBytes, dataBytes := walMem.Bytes(), dataMem.Bytes()
	vis := gcVisible(t, tag, walBytes, dataBytes)
	gcCheck(t, tag, vis, acked)
	// Determinism: a second recovery of the same frozen bytes must see
	// byte-identical state.
	again := gcVisible(t, tag+" (2nd recovery)", walBytes, dataBytes)
	if len(again) != len(vis) {
		t.Fatalf("%s: second recovery sees %d rows, first saw %d", tag, len(again), len(vis))
	}
	for k, v := range vis {
		if string(again[k]) != string(v) {
			t.Fatalf("%s: second recovery differs at key %d", tag, k)
		}
	}
}

// TestCrashAtEveryGroupCommitSync kills the WAL disk at each sync
// barrier in turn: the group-commit leader dies after appending the
// batch's commit records but before the fsync returns. Every batched
// transaction must recover all-or-nothing.
func TestCrashAtEveryGroupCommitSync(t *testing.T) {
	// Golden run to bound the barrier count (schedule-dependent: group
	// sizes vary with goroutine interleaving, so crash points past the
	// actual count simply complete the workload — still checked).
	walMem, dataMem := storage.NewMemDisk(), storage.NewMemDisk()
	wd := fault.Wrap(walMem)
	db, err := storage.Open(wd, dataMem, storage.DBOptions{Sync: storage.SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	acked := gcRun(db)
	if len(acked) != gcSessions*gcTxns {
		t.Fatalf("golden run acked %d txns, want %d", len(acked), gcSessions*gcTxns)
	}
	_, _, syncs := wd.Counts()
	if syncs < 2 {
		t.Fatalf("workload produced only %d sync barriers", syncs)
	}
	for n := 1; n <= syncs; n++ {
		gcCrashRun(t, fmt.Sprintf("group-commit sync %d", n), func(d *fault.Disk) {
			d.CrashAtSync(n)
		})
	}
}

// TestCrashInsideGroupCommitBatch crashes at seeded WAL write ordinals
// with seeded torn tails: crashes landing between a batch's commit
// records leave some transactions with durable commit records and
// some without — each must still recover atomically. The schedule
// derives from ADM_FAULT_SEED.
func TestCrashInsideGroupCommitBatch(t *testing.T) {
	seed := faultSeed(t)
	rng := fault.NewRand(seed)

	walMem, dataMem := storage.NewMemDisk(), storage.NewMemDisk()
	wd := fault.Wrap(walMem)
	db, err := storage.Open(wd, dataMem, storage.DBOptions{Sync: storage.SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	gcRun(db)
	writes, _, _ := wd.Counts()
	if writes < 10 {
		t.Fatalf("workload produced only %d WAL writes", writes)
	}
	for i := 0; i < 20; i++ {
		n := 2 + rng.Intn(writes-1)
		torn := rng.Intn(64)
		gcCrashRun(t, fmt.Sprintf("seed %#x iter %d (write %d torn %d)", seed, i, n, torn),
			func(d *fault.Disk) { d.CrashAtWrite(n, torn) })
	}
}

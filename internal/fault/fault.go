// Package fault deterministically injects storage failures. It wraps
// any storage.DiskFile with programmable crash points, torn (partial)
// writes, and one-shot I/O errors, all driven by explicit operation
// counts or a seeded generator — no wall clock, no process kill, no
// real disk. The recovery tests use it to "crash" the engine at every
// WAL barrier and assert byte-identical reconstruction; the CI crash
// matrix replays the same schedules under different seeds and
// GOMAXPROCS values.
//
// Crash semantics: once the crash point fires, the disk freezes. The
// crashing write applies at most its configured torn prefix, and
// every later operation (read, write, sync, truncate) fails with
// ErrCrashed without mutating state — exactly what a kernel sees
// after the machine below it disappears. The frozen bytes are then
// reopened as a fresh DiskFile to simulate restart.
package fault

import (
	"errors"
	"fmt"
	"sync"

	"github.com/adm-project/adm/internal/storage"
)

// Injection errors.
var (
	// ErrCrashed is returned by every operation after the crash point.
	ErrCrashed = errors.New("fault: disk crashed")
	// ErrInjected is the base error for injected (non-crash) I/O
	// failures.
	ErrInjected = errors.New("fault: injected I/O error")
)

// Disk wraps a DiskFile with deterministic fault injection. All
// configuration must happen before the wrapped disk is handed to the
// engine; the counters advance on every operation regardless of
// configuration, so schedules are stable across runs.
type Disk struct {
	mu    sync.Mutex
	inner storage.DiskFile

	writes  int
	reads   int
	syncs   int
	crashed bool

	// crashAtWrite, when > 0, freezes the disk on the Nth write
	// (1-based): the write applies only its first tornBytes bytes
	// (clamped to the write length) and returns ErrCrashed.
	crashAtWrite int
	tornBytes    int

	// crashAtSync, when > 0, freezes the disk on the Nth Sync: the
	// barrier fails, everything written before it stays (writes hit
	// the backing store immediately — MemDisk has no volatile cache;
	// the WAL's contract only needs the *failure* of the barrier).
	crashAtSync int

	failWrites map[int]error // one-shot write errors by ordinal
	failReads  map[int]error // one-shot read errors by ordinal
}

// Wrap returns a fault-injecting view over inner with no faults
// armed.
func Wrap(inner storage.DiskFile) *Disk {
	return &Disk{
		inner:      inner,
		failWrites: map[int]error{},
		failReads:  map[int]error{},
	}
}

// CrashAtWrite arms a crash on the nth write (1-based), applying the
// first torn bytes of that write before freezing. torn <= 0 drops the
// write entirely.
func (d *Disk) CrashAtWrite(n, torn int) {
	d.mu.Lock()
	d.crashAtWrite, d.tornBytes = n, torn
	d.mu.Unlock()
}

// CrashAtSync arms a crash on the nth Sync (1-based).
func (d *Disk) CrashAtSync(n int) {
	d.mu.Lock()
	d.crashAtSync = n
	d.mu.Unlock()
}

// CrashNow freezes the disk immediately.
func (d *Disk) CrashNow() {
	d.mu.Lock()
	d.crashed = true
	d.mu.Unlock()
}

// FailWrite injects a one-shot error on the nth write (1-based). The
// write does not apply; the disk keeps running.
func (d *Disk) FailWrite(n int) {
	d.mu.Lock()
	d.failWrites[n] = fmt.Errorf("%w: write %d", ErrInjected, n)
	d.mu.Unlock()
}

// FailRead injects a one-shot error on the nth read (1-based).
func (d *Disk) FailRead(n int) {
	d.mu.Lock()
	d.failReads[n] = fmt.Errorf("%w: read %d", ErrInjected, n)
	d.mu.Unlock()
}

// Crashed reports whether the crash point has fired.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// Counts returns the operations seen so far (writes, reads, syncs) —
// how a schedule for a later identical run is calibrated.
func (d *Disk) Counts() (writes, reads, syncs int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes, d.reads, d.syncs
}

// WriteAt implements storage.DiskFile.
func (d *Disk) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return 0, ErrCrashed
	}
	d.writes++
	n := d.writes
	if err, ok := d.failWrites[n]; ok {
		delete(d.failWrites, n)
		d.mu.Unlock()
		return 0, err
	}
	if d.crashAtWrite > 0 && n >= d.crashAtWrite {
		d.crashed = true
		torn := d.tornBytes
		d.mu.Unlock()
		if torn > len(p) {
			torn = len(p)
		}
		if torn > 0 {
			// The torn prefix reaches the platter; the tail is lost.
			if _, err := d.inner.WriteAt(p[:torn], off); err != nil {
				return 0, err
			}
		}
		return 0, fmt.Errorf("%w: torn write of %d/%d bytes at %d", ErrCrashed, max(torn, 0), len(p), off)
	}
	d.mu.Unlock()
	return d.inner.WriteAt(p, off)
}

// ReadAt implements storage.DiskFile.
func (d *Disk) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return 0, ErrCrashed
	}
	d.reads++
	if err, ok := d.failReads[d.reads]; ok {
		delete(d.failReads, d.reads)
		d.mu.Unlock()
		return 0, err
	}
	d.mu.Unlock()
	return d.inner.ReadAt(p, off)
}

// Sync implements storage.DiskFile.
func (d *Disk) Sync() error {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return ErrCrashed
	}
	d.syncs++
	if d.crashAtSync > 0 && d.syncs >= d.crashAtSync {
		d.crashed = true
		d.mu.Unlock()
		return fmt.Errorf("%w: at sync barrier", ErrCrashed)
	}
	d.mu.Unlock()
	return d.inner.Sync()
}

// Size implements storage.DiskFile.
func (d *Disk) Size() (int64, error) {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return 0, ErrCrashed
	}
	d.mu.Unlock()
	return d.inner.Size()
}

// Truncate implements storage.DiskFile.
func (d *Disk) Truncate(size int64) error {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return ErrCrashed
	}
	d.mu.Unlock()
	return d.inner.Truncate(size)
}

// ---------------------------------------------------------------------------
// Seeded determinism.

// Rand is a splitmix64 generator: tiny, fast, and stable across Go
// releases (unlike math/rand's unspecified stream), so a CI seed
// reproduces the exact same fault schedule forever.
type Rand struct{ state uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next raw value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("fault: Intn bound must be positive")
	}
	return int(r.Uint64() % uint64(n))
}

// Package machine implements a cycle-costed model of an IA32-class
// processor, sufficient to reproduce the control-transfer cost
// arithmetic behind Table 1 of McCann (CIDR 2003): segment registers,
// privilege modes, privileged instructions, traps, and a paging unit
// with a TLB whose flushes dominate cross-address-space costs.
//
// The model is deliberately a *path-length* machine, not a functional
// emulator: executing an instruction charges its cycle cost, enforces
// the protection rules that matter to the paper (privileged opcodes
// fault in user mode; segment-register loads are privileged), and
// updates the small amount of architectural state the Go! ORB and the
// baseline kernel paths rely on (current segments, privilege level,
// TLB contents). Cycle costs are calibrated to a mid-1990s Pentium,
// the processor generation the paper's Table 1 measurements were
// taken on.
package machine

import (
	"errors"
	"fmt"
)

// Mode is the processor privilege level. The paper's SISR design
// removes the need for two modes; the baseline kernels use both.
type Mode int

const (
	// Kernel is ring 0: all instructions permitted.
	Kernel Mode = iota
	// User is ring 3: privileged instructions fault.
	User
)

func (m Mode) String() string {
	if m == Kernel {
		return "kernel"
	}
	return "user"
}

// OpClass classifies instructions by cost and privilege. The classes
// cover exactly what the reproduced paths need; adding a class is a
// one-line change to the cost table.
type OpClass int

const (
	// OpALU is a register-register arithmetic/logic operation.
	OpALU OpClass = iota
	// OpLoad reads memory through the paging unit.
	OpLoad
	// OpStore writes memory through the paging unit.
	OpStore
	// OpBranch is a conditional or unconditional near jump.
	OpBranch
	// OpCall is a near call (push return address + jump).
	OpCall
	// OpRet is a near return.
	OpRet
	// OpSegLoad loads a segment register (privileged in this model,
	// exactly as SISR requires: "SISR considers a segment-register
	// load a privileged operation").
	OpSegLoad
	// OpTrap is a software interrupt (INT n): mode switch to kernel.
	OpTrap
	// OpIret returns from a trap: mode switch back to user.
	OpIret
	// OpPrivCtl covers CLI/STI/LGDT/LIDT/HLT-class control ops.
	OpPrivCtl
	// OpIO is an IN/OUT port access.
	OpIO
	// OpTLBFlush invalidates the whole TLB (MOV CR3 side effect).
	OpTLBFlush
	// OpPTSwitch switches the active page table (MOV CR3).
	OpPTSwitch
	// OpCacheProbe models a cache-missing memory reference on a
	// cold working set (used by the heavyweight kernel paths).
	OpCacheProbe
)

var opNames = map[OpClass]string{
	OpALU:        "alu",
	OpLoad:       "load",
	OpStore:      "store",
	OpBranch:     "branch",
	OpCall:       "call",
	OpRet:        "ret",
	OpSegLoad:    "segload",
	OpTrap:       "trap",
	OpIret:       "iret",
	OpPrivCtl:    "privctl",
	OpIO:         "io",
	OpTLBFlush:   "tlbflush",
	OpPTSwitch:   "ptswitch",
	OpCacheProbe: "cacheprobe",
}

func (c OpClass) String() string {
	if s, ok := opNames[c]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(c))
}

// Privileged reports whether the class faults at user privilege.
// Segment-register loads are included: this is the single rule SISR's
// code scanner leans on to make a scanned component safe to run
// without a kernel mode.
func (c OpClass) Privileged() bool {
	switch c {
	case OpSegLoad, OpPrivCtl, OpIO, OpTLBFlush, OpPTSwitch, OpIret:
		return true
	}
	return false
}

// CostModel maps instruction classes to cycle costs. The defaults are
// Pentium-calibrated; tests pin the values so Table 1 stays stable.
type CostModel struct {
	Cycles map[OpClass]int
	// TrapEntry is charged on OpTrap in addition to the opcode cost:
	// microcoded ring crossing, stack switch, vector fetch.
	TrapEntry int
	// TrapExit is charged on OpIret.
	TrapExit int
	// TLBMiss is the page-walk cost per missing translation.
	TLBMiss int
	// TLBFlushRefill approximates the deferred cost of refilling a
	// flushed TLB across the working set that follows the flush.
	TLBFlushRefill int
}

// DefaultCostModel returns Pentium-era calibration. A segment-register
// load is 1 cycle of issue; three of them implement the Go! context
// switch, matching the paper's "only 3 cycles on a Pentium".
func DefaultCostModel() CostModel {
	return CostModel{
		Cycles: map[OpClass]int{
			OpALU:        1,
			OpLoad:       1,
			OpStore:      1,
			OpBranch:     1,
			OpCall:       2,
			OpRet:        2,
			OpSegLoad:    1,
			OpTrap:       2,
			OpIret:       2,
			OpPrivCtl:    4,
			OpIO:         30,
			OpTLBFlush:   10,
			OpPTSwitch:   12,
			OpCacheProbe: 22,
		},
		TrapEntry:      105, // Pentium INT+ring-switch microcode
		TrapExit:       79,  // IRET back to ring 3
		TLBMiss:        24,  // two-level page walk, mostly cached
		TLBFlushRefill: 900, // ~40 hot pages refaulted after a full flush
	}
}

// Instruction is one executable step. Name is for traces; Seg/Page
// feed the protection and paging units where relevant.
type Instruction struct {
	Op   OpClass
	Name string
	// Seg is the selector for OpSegLoad, or — on OpLoad/OpStore with
	// CheckSeg set — the segment the access goes through.
	Seg Selector
	// Page is the virtual page number touched by OpLoad/OpStore/
	// OpCacheProbe. Zero means "hot page, always mapped".
	Page uint32
	// CheckSeg enables segment-limit checking on OpLoad/OpStore: the
	// access faults unless Off < the segment's limit. This is the
	// run-time half of SISR protection — each component confined to
	// its own data segment.
	CheckSeg bool
	// Off is the intra-segment offset of a checked access.
	Off uint32
}

// Selector names a GDT entry (index only; the model does not need RPL
// bits).
type Selector uint16

// SegKind distinguishes descriptor types. Go! gives each component
// type a code segment and each instance a data segment.
type SegKind int

const (
	// SegCode is an executable segment.
	SegCode SegKind = iota
	// SegData is a read/write data segment.
	SegData
	// SegStack is an expand-down data segment used as a stack.
	SegStack
)

func (k SegKind) String() string {
	switch k {
	case SegCode:
		return "code"
	case SegData:
		return "data"
	default:
		return "stack"
	}
}

// SegmentDescriptor is one GDT entry: base/limit protection is what
// SISR substitutes for page protection.
type SegmentDescriptor struct {
	Base  uint32
	Limit uint32
	Kind  SegKind
	// Present gates loading; the ORB unmaps a component by clearing it.
	Present bool
}

// Fault is a protection violation raised by the machine.
type Fault struct {
	// Kind describes the violation.
	Kind FaultKind
	// Instr is the faulting instruction.
	Instr Instruction
	// Mode is the privilege level at the fault.
	Mode Mode
}

// FaultKind enumerates protection violations.
type FaultKind int

const (
	// FaultPrivilege is a privileged opcode at user level.
	FaultPrivilege FaultKind = iota
	// FaultSegNotPresent is a load of a non-present selector.
	FaultSegNotPresent
	// FaultSegBounds is an out-of-limit segment reference.
	FaultSegBounds
	// FaultBadSelector is a selector outside the GDT.
	FaultBadSelector
)

func (k FaultKind) String() string {
	switch k {
	case FaultPrivilege:
		return "privilege violation"
	case FaultSegNotPresent:
		return "segment not present"
	case FaultSegBounds:
		return "segment bounds"
	default:
		return "bad selector"
	}
}

func (f *Fault) Error() string {
	return fmt.Sprintf("fault: %s on %s %q in %s mode", f.Kind, f.Instr.Op, f.Instr.Name, f.Mode)
}

// ErrGDTFull is returned when no descriptor slots remain.
var ErrGDTFull = errors.New("machine: GDT full")

// SegRegs is the live segment-register file. Loading all three is the
// Go! context switch.
type SegRegs struct {
	CS Selector
	DS Selector
	SS Selector
}

// Machine is the simulated processor.
type Machine struct {
	cost CostModel
	mode Mode
	segs SegRegs
	gdt  []SegmentDescriptor

	tlb        tlb
	pagingOn   bool
	activePT   uint32
	cycles     uint64
	instrs     uint64
	faults     uint64
	trapVector func(m *Machine, vector int)

	// trace, when non-nil, receives every retired instruction. Used
	// by tests; nil in benchmarks to keep the hot path clean.
	trace func(Instruction, int)
}

// New returns a machine with the given cost model, an empty GDT of
// capacity gdtSlots, paging enabled, starting in kernel mode.
func New(cost CostModel, gdtSlots int) *Machine {
	m := &Machine{
		cost:     cost,
		mode:     Kernel,
		gdt:      make([]SegmentDescriptor, gdtSlots),
		pagingOn: true,
	}
	m.tlb.init(64)
	return m
}

// SetTrace installs a retirement hook (instruction, cycles charged).
func (m *Machine) SetTrace(fn func(Instruction, int)) { m.trace = fn }

// SetTrapVector installs the kernel's trap dispatcher. The baseline
// kernels use it; Go! never does (it has no traps on the RPC path).
func (m *Machine) SetTrapVector(fn func(m *Machine, vector int)) { m.trapVector = fn }

// Cycles returns total cycles retired since construction or the last
// ResetCounters.
func (m *Machine) Cycles() uint64 { return m.cycles }

// Instructions returns total instructions retired.
func (m *Machine) Instructions() uint64 { return m.instrs }

// Faults returns the number of protection faults raised.
func (m *Machine) Faults() uint64 { return m.faults }

// ResetCounters zeroes cycle/instruction/fault counters without
// touching architectural state. Benches call it between iterations.
func (m *Machine) ResetCounters() { m.cycles, m.instrs, m.faults = 0, 0, 0 }

// Mode returns the current privilege level.
func (m *Machine) Mode() Mode { return m.mode }

// SetMode forces the privilege level (used by kernel models when
// constructing their address spaces; not reachable from user code).
func (m *Machine) SetMode(mode Mode) { m.mode = mode }

// Segs returns the current segment-register file.
func (m *Machine) Segs() SegRegs { return m.segs }

// DefineSegment installs a descriptor and returns its selector.
func (m *Machine) DefineSegment(d SegmentDescriptor) (Selector, error) {
	for i := range m.gdt {
		if !m.gdt[i].Present && m.gdt[i].Limit == 0 && m.gdt[i].Base == 0 {
			m.gdt[i] = d
			return Selector(i), nil
		}
	}
	return 0, ErrGDTFull
}

// Descriptor returns the descriptor for a selector.
func (m *Machine) Descriptor(s Selector) (SegmentDescriptor, bool) {
	if int(s) >= len(m.gdt) {
		return SegmentDescriptor{}, false
	}
	return m.gdt[int(s)], true
}

// RevokeSegment marks a selector not-present (component unload).
func (m *Machine) RevokeSegment(s Selector) {
	if int(s) < len(m.gdt) {
		m.gdt[int(s)].Present = false
	}
}

// GDTBytes reports the descriptor-table bytes in use: 8 bytes per
// IA32 descriptor. This feeds the §5.1 memory comparison.
func (m *Machine) GDTBytes() int {
	n := 0
	for i := range m.gdt {
		if m.gdt[i].Present {
			n += 8
		}
	}
	return n
}

// Exec retires one instruction, charging its cycle cost and enforcing
// protection. It returns the Fault (also raised through the trap
// vector in baseline kernels) if the instruction violates protection.
func (m *Machine) Exec(in Instruction) error {
	cycles := m.cost.Cycles[in.Op]

	if m.mode == User && in.Op.Privileged() {
		m.faults++
		// The faulting instruction still burns its issue slot.
		m.charge(in, cycles)
		return &Fault{Kind: FaultPrivilege, Instr: in, Mode: m.mode}
	}

	switch in.Op {
	case OpSegLoad:
		d, ok := m.Descriptor(in.Seg)
		if !ok {
			m.faults++
			m.charge(in, cycles)
			return &Fault{Kind: FaultBadSelector, Instr: in, Mode: m.mode}
		}
		if !d.Present {
			m.faults++
			m.charge(in, cycles)
			return &Fault{Kind: FaultSegNotPresent, Instr: in, Mode: m.mode}
		}
		switch d.Kind {
		case SegCode:
			m.segs.CS = in.Seg
		case SegData:
			m.segs.DS = in.Seg
		case SegStack:
			m.segs.SS = in.Seg
		}
	case OpTrap:
		cycles += m.cost.TrapEntry
		m.mode = Kernel
		m.charge(in, cycles)
		if m.trapVector != nil {
			m.trapVector(m, int(in.Page))
		}
		return nil
	case OpIret:
		cycles += m.cost.TrapExit
		m.mode = User
	case OpLoad, OpStore, OpCacheProbe:
		if in.CheckSeg {
			d, ok := m.Descriptor(in.Seg)
			if !ok {
				m.faults++
				m.charge(in, cycles)
				return &Fault{Kind: FaultBadSelector, Instr: in, Mode: m.mode}
			}
			if !d.Present {
				m.faults++
				m.charge(in, cycles)
				return &Fault{Kind: FaultSegNotPresent, Instr: in, Mode: m.mode}
			}
			if in.Off >= d.Limit {
				m.faults++
				m.charge(in, cycles)
				return &Fault{Kind: FaultSegBounds, Instr: in, Mode: m.mode}
			}
		}
		if m.pagingOn && in.Page != 0 {
			if !m.tlb.lookup(m.activePT, in.Page) {
				cycles += m.cost.TLBMiss
				m.tlb.insert(m.activePT, in.Page)
			}
		}
	case OpTLBFlush:
		m.tlb.flush()
		cycles += m.cost.TLBFlushRefill
	case OpPTSwitch:
		m.activePT = in.Page
		m.tlb.flush()
		cycles += m.cost.TLBFlushRefill
	}

	m.charge(in, cycles)
	return nil
}

// Run executes a sequence, stopping at the first fault.
func (m *Machine) Run(seq []Instruction) error {
	for _, in := range seq {
		if err := m.Exec(in); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) charge(in Instruction, cycles int) {
	m.cycles += uint64(cycles)
	m.instrs++
	if m.trace != nil {
		m.trace(in, cycles)
	}
}

// tlb is a tiny direct-lookup TLB tagged by page table root. A full
// flush models the CR3 reload on traditional context switches — the
// cost SISR's segment-only switch avoids entirely.
type tlb struct {
	entries map[uint64]struct{}
	order   []uint64
	cap     int
}

func (t *tlb) init(capacity int) {
	t.entries = make(map[uint64]struct{}, capacity)
	t.cap = capacity
}

func key(pt uint32, page uint32) uint64 { return uint64(pt)<<32 | uint64(page) }

func (t *tlb) lookup(pt, page uint32) bool {
	_, ok := t.entries[key(pt, page)]
	return ok
}

func (t *tlb) insert(pt, page uint32) {
	k := key(pt, page)
	if _, ok := t.entries[k]; ok {
		return
	}
	if len(t.order) >= t.cap {
		oldest := t.order[0]
		t.order = t.order[1:]
		delete(t.entries, oldest)
	}
	t.entries[k] = struct{}{}
	t.order = append(t.order, k)
}

func (t *tlb) flush() {
	t.entries = make(map[uint64]struct{}, t.cap)
	t.order = t.order[:0]
}

// Seq is a convenience builder for instruction sequences.
type Seq struct {
	ins []Instruction
}

// NewSeq returns an empty sequence builder.
func NewSeq() *Seq { return &Seq{} }

// ALU appends n register ops.
func (s *Seq) ALU(name string, n int) *Seq {
	for i := 0; i < n; i++ {
		s.ins = append(s.ins, Instruction{Op: OpALU, Name: name})
	}
	return s
}

// Load appends n loads against page.
func (s *Seq) Load(name string, page uint32, n int) *Seq {
	for i := 0; i < n; i++ {
		s.ins = append(s.ins, Instruction{Op: OpLoad, Name: name, Page: page})
	}
	return s
}

// Store appends n stores against page.
func (s *Seq) Store(name string, page uint32, n int) *Seq {
	for i := 0; i < n; i++ {
		s.ins = append(s.ins, Instruction{Op: OpStore, Name: name, Page: page})
	}
	return s
}

// Probe appends n cache-missing references (cold working set).
func (s *Seq) Probe(name string, page uint32, n int) *Seq {
	for i := 0; i < n; i++ {
		s.ins = append(s.ins, Instruction{Op: OpCacheProbe, Name: name, Page: page})
	}
	return s
}

// Call appends a near call.
func (s *Seq) Call(name string) *Seq {
	s.ins = append(s.ins, Instruction{Op: OpCall, Name: name})
	return s
}

// Ret appends a near return.
func (s *Seq) Ret(name string) *Seq {
	s.ins = append(s.ins, Instruction{Op: OpRet, Name: name})
	return s
}

// Branch appends n branches.
func (s *Seq) Branch(name string, n int) *Seq {
	for i := 0; i < n; i++ {
		s.ins = append(s.ins, Instruction{Op: OpBranch, Name: name})
	}
	return s
}

// SegLoad appends a segment-register load of sel.
func (s *Seq) SegLoad(name string, sel Selector) *Seq {
	s.ins = append(s.ins, Instruction{Op: OpSegLoad, Name: name, Seg: sel})
	return s
}

// Trap appends a software interrupt with vector v.
func (s *Seq) Trap(name string, v int) *Seq {
	s.ins = append(s.ins, Instruction{Op: OpTrap, Name: name, Page: uint32(v)})
	return s
}

// Iret appends a trap return.
func (s *Seq) Iret(name string) *Seq {
	s.ins = append(s.ins, Instruction{Op: OpIret, Name: name})
	return s
}

// PrivCtl appends a privileged control op (CLI/STI class).
func (s *Seq) PrivCtl(name string) *Seq {
	s.ins = append(s.ins, Instruction{Op: OpPrivCtl, Name: name})
	return s
}

// PTSwitch appends a page-table switch to root pt.
func (s *Seq) PTSwitch(name string, pt uint32) *Seq {
	s.ins = append(s.ins, Instruction{Op: OpPTSwitch, Name: name, Page: pt})
	return s
}

// Build returns the accumulated instructions.
func (s *Seq) Build() []Instruction { return s.ins }

// Len returns the number of accumulated instructions.
func (s *Seq) Len() int { return len(s.ins) }

package machine

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestMachine() *Machine { return New(DefaultCostModel(), 32) }

func TestPrivilegedFaultsInUserMode(t *testing.T) {
	priv := []OpClass{OpSegLoad, OpPrivCtl, OpIO, OpTLBFlush, OpPTSwitch, OpIret}
	for _, op := range priv {
		m := newTestMachine()
		m.SetMode(User)
		err := m.Exec(Instruction{Op: op, Name: "probe"})
		var f *Fault
		if !errors.As(err, &f) {
			t.Fatalf("%s: want fault in user mode, got %v", op, err)
		}
		if f.Kind != FaultPrivilege {
			t.Errorf("%s: fault kind = %v, want privilege", op, f.Kind)
		}
		if m.Faults() != 1 {
			t.Errorf("%s: fault counter = %d, want 1", op, m.Faults())
		}
	}
}

func TestPrivilegedOKInKernelMode(t *testing.T) {
	m := newTestMachine()
	sel, err := m.DefineSegment(SegmentDescriptor{Base: 0, Limit: 4096, Kind: SegData, Present: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Exec(Instruction{Op: OpSegLoad, Name: "mov ds", Seg: sel}); err != nil {
		t.Fatalf("kernel segload: %v", err)
	}
	if m.Segs().DS != sel {
		t.Errorf("DS = %d, want %d", m.Segs().DS, sel)
	}
}

func TestUnprivilegedOpsRunInUserMode(t *testing.T) {
	m := newTestMachine()
	m.SetMode(User)
	seq := NewSeq().ALU("add", 3).Load("mov", 7, 2).Store("mov", 7, 1).Call("f").Ret("f").Build()
	if err := m.Run(seq); err != nil {
		t.Fatalf("user-mode sequence: %v", err)
	}
	if m.Instructions() != uint64(len(seq)) {
		t.Errorf("retired %d, want %d", m.Instructions(), len(seq))
	}
}

func TestSegLoadRouting(t *testing.T) {
	m := newTestMachine()
	code, _ := m.DefineSegment(SegmentDescriptor{Limit: 100, Kind: SegCode, Present: true})
	data, _ := m.DefineSegment(SegmentDescriptor{Limit: 100, Kind: SegData, Present: true})
	stack, _ := m.DefineSegment(SegmentDescriptor{Limit: 100, Kind: SegStack, Present: true})
	for _, sel := range []Selector{code, data, stack} {
		if err := m.Exec(Instruction{Op: OpSegLoad, Seg: sel}); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Segs()
	if s.CS != code || s.DS != data || s.SS != stack {
		t.Errorf("segs = %+v, want cs=%d ds=%d ss=%d", s, code, data, stack)
	}
}

func TestSegLoadNotPresentFaults(t *testing.T) {
	m := newTestMachine()
	sel, _ := m.DefineSegment(SegmentDescriptor{Limit: 100, Kind: SegData, Present: true})
	m.RevokeSegment(sel)
	err := m.Exec(Instruction{Op: OpSegLoad, Seg: sel})
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultSegNotPresent {
		t.Fatalf("want not-present fault, got %v", err)
	}
}

func TestSegLoadBadSelectorFaults(t *testing.T) {
	m := newTestMachine()
	err := m.Exec(Instruction{Op: OpSegLoad, Seg: 999})
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultBadSelector {
		t.Fatalf("want bad-selector fault, got %v", err)
	}
}

func TestTrapSwitchesToKernelAndDispatches(t *testing.T) {
	m := newTestMachine()
	m.SetMode(User)
	var gotVector int
	m.SetTrapVector(func(m *Machine, v int) {
		gotVector = v
		if m.Mode() != Kernel {
			t.Error("trap handler not in kernel mode")
		}
	})
	if err := m.Exec(Instruction{Op: OpTrap, Name: "int 0x80", Page: 0x80}); err != nil {
		t.Fatal(err)
	}
	if gotVector != 0x80 {
		t.Errorf("vector = %#x, want 0x80", gotVector)
	}
	if m.Mode() != Kernel {
		t.Error("mode after trap should be kernel")
	}
	if err := m.Exec(Instruction{Op: OpIret, Name: "iret"}); err != nil {
		t.Fatal(err)
	}
	if m.Mode() != User {
		t.Error("mode after iret should be user")
	}
}

func TestTrapCostIncludesEntryMicrocode(t *testing.T) {
	cost := DefaultCostModel()
	m := New(cost, 8)
	m.SetMode(User)
	_ = m.Exec(Instruction{Op: OpTrap, Page: 1})
	want := uint64(cost.Cycles[OpTrap] + cost.TrapEntry)
	if m.Cycles() != want {
		t.Errorf("trap cycles = %d, want %d", m.Cycles(), want)
	}
}

func TestTLBMissThenHit(t *testing.T) {
	cost := DefaultCostModel()
	m := New(cost, 8)
	_ = m.Exec(Instruction{Op: OpLoad, Page: 42})
	missCost := m.Cycles()
	m.ResetCounters()
	_ = m.Exec(Instruction{Op: OpLoad, Page: 42})
	hitCost := m.Cycles()
	if missCost != uint64(cost.Cycles[OpLoad]+cost.TLBMiss) {
		t.Errorf("miss cost = %d", missCost)
	}
	if hitCost != uint64(cost.Cycles[OpLoad]) {
		t.Errorf("hit cost = %d, want bare load", hitCost)
	}
}

func TestPTSwitchFlushesTLB(t *testing.T) {
	cost := DefaultCostModel()
	m := New(cost, 8)
	_ = m.Exec(Instruction{Op: OpLoad, Page: 42})
	_ = m.Exec(Instruction{Op: OpPTSwitch, Page: 7})
	// Back to the original page table: translations were flushed.
	_ = m.Exec(Instruction{Op: OpPTSwitch, Page: 0})
	m.ResetCounters()
	_ = m.Exec(Instruction{Op: OpLoad, Page: 42})
	if m.Cycles() != uint64(cost.Cycles[OpLoad]+cost.TLBMiss) {
		t.Errorf("post-flush load = %d cycles, want miss cost", m.Cycles())
	}
}

func TestTLBIsTaggedByPageTable(t *testing.T) {
	// Same page number under two roots must be distinct translations.
	m := newTestMachine()
	_ = m.Exec(Instruction{Op: OpLoad, Page: 9})
	m.activePT = 1 // direct set: avoid the flush that PTSwitch does
	m.ResetCounters()
	_ = m.Exec(Instruction{Op: OpLoad, Page: 9})
	if m.Cycles() == uint64(m.cost.Cycles[OpLoad]) {
		t.Error("translation leaked across page tables")
	}
}

func TestTLBEviction(t *testing.T) {
	m := New(DefaultCostModel(), 8)
	// Fill past capacity (64) and verify the earliest entry is evicted.
	for p := uint32(1); p <= 65; p++ {
		_ = m.Exec(Instruction{Op: OpLoad, Page: p})
	}
	m.ResetCounters()
	_ = m.Exec(Instruction{Op: OpLoad, Page: 1})
	if m.Cycles() == uint64(m.cost.Cycles[OpLoad]) {
		t.Error("page 1 should have been evicted")
	}
	m.ResetCounters()
	_ = m.Exec(Instruction{Op: OpLoad, Page: 65})
	if m.Cycles() != uint64(m.cost.Cycles[OpLoad]) {
		t.Error("page 65 should still be resident")
	}
}

func TestGDTBytesCountsPresentOnly(t *testing.T) {
	m := newTestMachine()
	a, _ := m.DefineSegment(SegmentDescriptor{Limit: 1, Kind: SegCode, Present: true})
	_, _ = m.DefineSegment(SegmentDescriptor{Limit: 1, Kind: SegData, Present: true})
	if got := m.GDTBytes(); got != 16 {
		t.Errorf("GDTBytes = %d, want 16", got)
	}
	m.RevokeSegment(a)
	if got := m.GDTBytes(); got != 8 {
		t.Errorf("GDTBytes after revoke = %d, want 8", got)
	}
}

func TestGDTFull(t *testing.T) {
	m := New(DefaultCostModel(), 2)
	_, _ = m.DefineSegment(SegmentDescriptor{Limit: 1, Kind: SegCode, Present: true})
	_, _ = m.DefineSegment(SegmentDescriptor{Limit: 1, Kind: SegData, Present: true})
	if _, err := m.DefineSegment(SegmentDescriptor{Limit: 1, Kind: SegData, Present: true}); !errors.Is(err, ErrGDTFull) {
		t.Fatalf("want ErrGDTFull, got %v", err)
	}
}

func TestRunStopsAtFirstFault(t *testing.T) {
	m := newTestMachine()
	m.SetMode(User)
	seq := NewSeq().ALU("a", 2).PrivCtl("cli").ALU("b", 5).Build()
	if err := m.Run(seq); err == nil {
		t.Fatal("want fault")
	}
	if m.Instructions() != 3 { // 2 ALU + the faulting CLI
		t.Errorf("retired %d instructions, want 3", m.Instructions())
	}
}

func TestTraceHook(t *testing.T) {
	m := newTestMachine()
	var names []string
	m.SetTrace(func(in Instruction, _ int) { names = append(names, in.Name) })
	_ = m.Run(NewSeq().ALU("x", 1).Call("y").Build())
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("trace = %v", names)
	}
}

func TestResetCountersKeepsState(t *testing.T) {
	m := newTestMachine()
	sel, _ := m.DefineSegment(SegmentDescriptor{Limit: 1, Kind: SegData, Present: true})
	_ = m.Exec(Instruction{Op: OpSegLoad, Seg: sel})
	m.ResetCounters()
	if m.Cycles() != 0 || m.Instructions() != 0 {
		t.Error("counters not reset")
	}
	if m.Segs().DS != sel {
		t.Error("architectural state lost on reset")
	}
}

// Property: cycle accounting is additive — running a sequence charges
// exactly the sum of the per-instruction charges, independent of
// interleaving with counter resets.
func TestCyclesAdditiveProperty(t *testing.T) {
	f := func(aluA, aluB uint8) bool {
		m1 := newTestMachine()
		_ = m1.Run(NewSeq().ALU("a", int(aluA)).ALU("b", int(aluB)).Build())
		m2 := newTestMachine()
		_ = m2.Run(NewSeq().ALU("a", int(aluA)).Build())
		first := m2.Cycles()
		m2.ResetCounters()
		_ = m2.Run(NewSeq().ALU("b", int(aluB)).Build())
		return m1.Cycles() == first+m2.Cycles()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: in user mode, a sequence containing any privileged opcode
// always faults before completing, whatever surrounds it.
func TestUserModePrivilegeProperty(t *testing.T) {
	priv := []OpClass{OpSegLoad, OpPrivCtl, OpIO, OpTLBFlush, OpPTSwitch, OpIret}
	f := func(pre, post uint8, pick uint8) bool {
		op := priv[int(pick)%len(priv)]
		m := newTestMachine()
		m.SetMode(User)
		seq := NewSeq().ALU("pre", int(pre)%16).Build()
		seq = append(seq, Instruction{Op: op})
		seq = append(seq, NewSeq().ALU("post", int(post)%16).Build()...)
		err := m.Run(seq)
		var fault *Fault
		return errors.As(err, &fault) && fault.Kind == FaultPrivilege
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeqBuilderCounts(t *testing.T) {
	s := NewSeq().ALU("a", 3).Load("l", 1, 2).Store("s", 1, 1).Probe("p", 2, 4).
		Call("c").Ret("r").Branch("b", 2).Trap("t", 1).Iret("i").PrivCtl("cli").
		PTSwitch("cr3", 1)
	want := 3 + 2 + 1 + 4 + 1 + 1 + 2 + 1 + 1 + 1 + 1
	if s.Len() != want {
		t.Errorf("Len = %d, want %d", s.Len(), want)
	}
}

func TestOpClassStringAndPrivileged(t *testing.T) {
	if OpALU.String() != "alu" || OpSegLoad.String() != "segload" {
		t.Error("op names wrong")
	}
	if OpALU.Privileged() || OpLoad.Privileged() {
		t.Error("unprivileged ops misclassified")
	}
	if OpClass(99).String() == "" {
		t.Error("unknown op should still stringify")
	}
	if Kernel.String() != "kernel" || User.String() != "user" {
		t.Error("mode names wrong")
	}
}

func TestSegBoundsChecking(t *testing.T) {
	m := newTestMachine()
	sel, _ := m.DefineSegment(SegmentDescriptor{Limit: 100, Kind: SegData, Present: true})
	// In-bounds access succeeds.
	if err := m.Exec(Instruction{Op: OpLoad, Seg: sel, CheckSeg: true, Off: 99}); err != nil {
		t.Fatalf("in-bounds: %v", err)
	}
	// Out-of-bounds faults.
	err := m.Exec(Instruction{Op: OpStore, Seg: sel, CheckSeg: true, Off: 100})
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultSegBounds {
		t.Fatalf("want bounds fault, got %v", err)
	}
	// Revoked segment faults not-present.
	m.RevokeSegment(sel)
	err = m.Exec(Instruction{Op: OpLoad, Seg: sel, CheckSeg: true, Off: 0})
	if !errors.As(err, &f) || f.Kind != FaultSegNotPresent {
		t.Fatalf("want not-present fault, got %v", err)
	}
	// Unknown selector faults.
	err = m.Exec(Instruction{Op: OpLoad, Seg: 999, CheckSeg: true, Off: 0})
	if !errors.As(err, &f) || f.Kind != FaultBadSelector {
		t.Fatalf("want bad-selector fault, got %v", err)
	}
	// Unchecked accesses are unaffected (hot path).
	if err := m.Exec(Instruction{Op: OpLoad, Off: 1 << 30}); err != nil {
		t.Fatalf("unchecked access: %v", err)
	}
}

// Property: a checked access succeeds iff Off < Limit, for any limit
// and offset.
func TestSegBoundsProperty(t *testing.T) {
	f := func(limit, off uint16) bool {
		if limit == 0 {
			return true // zero-limit segments reject everything; covered above
		}
		m := newTestMachine()
		sel, _ := m.DefineSegment(SegmentDescriptor{Limit: uint32(limit), Kind: SegData, Present: true})
		err := m.Exec(Instruction{Op: OpLoad, Seg: sel, CheckSeg: true, Off: uint32(off)})
		if uint32(off) < uint32(limit) {
			return err == nil
		}
		var fault *Fault
		return errors.As(err, &fault) && fault.Kind == FaultSegBounds
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package machine

import (
	"sort"
	"testing"
)

func TestParseMnemonicClasses(t *testing.T) {
	cases := map[string]OpClass{
		"add":    OpALU,
		"nop":    OpALU,
		"load":   OpLoad,
		"store":  OpStore,
		"jmp":    OpBranch,
		"jle":    OpBranch,
		"call":   OpCall,
		"ret":    OpRet,
		"iret":   OpIret,
		"cli":    OpPrivCtl,
		"movseg": OpSegLoad,
		"in":     OpIO,
		"movcr3": OpPTSwitch,
	}
	for mnem, want := range cases {
		got, ok := ParseMnemonic(mnem)
		if !ok || got != want {
			t.Errorf("ParseMnemonic(%q) = %v,%v, want %v", mnem, got, ok, want)
		}
	}
	if _, ok := ParseMnemonic("frobnicate"); ok {
		t.Error("unknown mnemonic accepted")
	}
	// The table is all lower-case; callers lower before lookup.
	if _, ok := ParseMnemonic("JMP"); ok {
		t.Error("upper-case lookup should miss; callers must lower-case")
	}
}

func TestMnemonicsSortedAndComplete(t *testing.T) {
	all := Mnemonics()
	if !sort.StringsAreSorted(all) {
		t.Fatalf("Mnemonics() not sorted: %v", all)
	}
	if len(all) != len(mnemonics) {
		t.Fatalf("Mnemonics() has %d entries, table has %d", len(all), len(mnemonics))
	}
	for _, m := range all {
		if _, ok := ParseMnemonic(m); !ok {
			t.Errorf("listed mnemonic %q does not parse", m)
		}
	}
}

func TestUnconditionalJump(t *testing.T) {
	if !UnconditionalJump("jmp") {
		t.Error("jmp must be unconditional")
	}
	for _, m := range []string{"je", "jnz", "call", "ret"} {
		if UnconditionalJump(m) {
			t.Errorf("%q must not be unconditional jump", m)
		}
	}
}

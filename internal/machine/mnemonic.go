package machine

import "sort"

// mnemonics is the canonical assembly-listing vocabulary shared by
// the goscan CLI, the admlint SISR control-flow pass and the goos
// listing parser. It was historically private to cmd/goscan; keeping
// it here means every consumer classifies an image identically.
var mnemonics = map[string]OpClass{
	// Register ALU.
	"add": OpALU, "sub": OpALU, "mov": OpALU, "cmp": OpALU,
	"mul": OpALU, "xor": OpALU, "and": OpALU, "or": OpALU,
	"nop": OpALU,
	// Memory.
	"load": OpLoad, "store": OpStore,
	// Near control transfer.
	"call": OpCall, "ret": OpRet,
	"jmp": OpBranch, "je": OpBranch, "jne": OpBranch,
	"jz": OpBranch, "jnz": OpBranch, "ja": OpBranch, "jb": OpBranch,
	"jg": OpBranch, "jl": OpBranch, "jge": OpBranch, "jle": OpBranch,
	// Segment-register load: the one privileged op SISR leans on.
	"movseg": OpSegLoad,
	// Privileged control.
	"cli": OpPrivCtl, "sti": OpPrivCtl,
	"lgdt": OpPrivCtl, "lidt": OpPrivCtl, "hlt": OpPrivCtl,
	// Port I/O.
	"in": OpIO, "out": OpIO,
	// Traps.
	"int": OpTrap, "iret": OpIret,
	// Paging.
	"invlpg": OpTLBFlush, "movcr3": OpPTSwitch,
}

// ParseMnemonic maps a listing mnemonic (case-insensitive via ASCII
// lowering by the caller's tokenizer; this table is all lower-case)
// to its instruction class.
func ParseMnemonic(mnem string) (OpClass, bool) {
	op, ok := mnemonics[mnem]
	return op, ok
}

// Mnemonics returns the known listing mnemonics, sorted.
func Mnemonics() []string {
	out := make([]string, 0, len(mnemonics))
	for m := range mnemonics {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// UnconditionalJump reports whether mnem is an unconditional near
// jump (control never falls through). Conditional jumps (je, jnz, …)
// keep their fall-through edge in the control-flow graph.
func UnconditionalJump(mnem string) bool { return mnem == "jmp" }

// Package datacomp implements the paper's data component structure
// (Figure 2): payload data plus "the standard metadata found in
// traditional databases e.g. attribute statistics, triggers", the
// adaptability rules bound to the component, and "the list of
// versions ... not necessarily exact replicas; they could be
// compressed versions of the data (perhaps with associated
// decompression code) or be out-of-date. They also could be lower
// quality versions or summaries of the data."
package datacomp

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/adm-project/adm/internal/constraint"
)

// PayloadKind tags the heterogeneous representations the paper
// anticipates: "OO structured data concerned with a person or a
// relational table used for transaction processing or an XML stream".
type PayloadKind string

// Payload kinds.
const (
	KindRelational PayloadKind = "relational"
	KindXMLStream  PayloadKind = "xml-stream"
	KindObject     PayloadKind = "object"
	KindWebAtom    PayloadKind = "web-atom"
)

// AttrStats is per-attribute metadata: the statistics the optimiser
// consults (and which Scenario 3 deliberately gets wrong).
type AttrStats struct {
	Name     string
	Distinct int
	Min, Max float64
	NullFrac float64
}

// Trigger is a named metadata trigger (fired on update).
type Trigger struct {
	Name   string
	Event  string // insert|update|delete
	Action string // free-form description; execution is app-specific
}

// Metadata is the traditional-database metadata block of Figure 2.
type Metadata struct {
	Rows     int
	Bytes    int
	Attrs    []AttrStats
	Triggers []Trigger
}

// Attr finds attribute stats by name.
func (m *Metadata) Attr(name string) (AttrStats, bool) {
	for _, a := range m.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return AttrStats{}, false
}

// VersionKind classifies an alternative representation.
type VersionKind string

// Version kinds from Figure 2's narration.
const (
	VersionReplica    VersionKind = "replica"    // exact copy elsewhere
	VersionCompressed VersionKind = "compressed" // smaller, needs decode
	VersionSummary    VersionKind = "summary"    // lower quality
	VersionStale      VersionKind = "stale"      // out-of-date copy
)

// Decoder is the "associated decompression code" a compressed version
// carries: it rehydrates the delivered bytes.
type Decoder func(data []byte) ([]byte, error)

// Version is one entry in the component's version list.
type Version struct {
	// Node hosts this version.
	Node string
	// Kind classifies it.
	Kind VersionKind
	// Bytes is the wire size of this version.
	Bytes int
	// Quality in (0,1]: 1 = exact. Summaries trade quality for size.
	Quality float64
	// StalenessMS is how far behind the authoritative copy it is.
	StalenessMS float64
	// DecodeCostMS is CPU time to rehydrate (compressed versions).
	DecodeCostMS float64
	// Decoder rehydrates delivered bytes (nil = identity).
	Decoder Decoder
	// Data is the version's payload bytes.
	Data []byte
}

// Label renders a short identity for traces.
func (v Version) Label() string {
	return fmt.Sprintf("%s@%s(%dB q=%.2f)", v.Kind, v.Node, v.Bytes, v.Quality)
}

// Component is a data component: the unit the adaptive architecture
// moves, re-binds and serves in alternative versions.
type Component struct {
	mu       sync.RWMutex
	ID       string
	Name     string
	Kind     PayloadKind
	Primary  []byte
	Meta     Metadata
	Rules    *constraint.RuleSet
	versions []Version
}

// New creates a data component with the given primary payload.
func New(id, name string, kind PayloadKind, primary []byte) *Component {
	return &Component{
		ID:      id,
		Name:    name,
		Kind:    kind,
		Primary: primary,
		Rules:   constraint.NewRuleSet(),
	}
}

// AddVersion appends a version to the list.
func (c *Component) AddVersion(v Version) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.versions = append(c.versions, v)
}

// Versions returns a snapshot of the version list.
func (c *Component) Versions() []Version {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Version(nil), c.versions...)
}

// VersionsAt returns the versions hosted on a node.
func (c *Component) VersionsAt(node string) []Version {
	var out []Version
	for _, v := range c.Versions() {
		if v.Node == node {
			out = append(out, v)
		}
	}
	return out
}

// Requirements bound what a consumer will accept from a version.
type Requirements struct {
	// MinQuality rejects summaries below this fidelity.
	MinQuality float64
	// MaxStalenessMS rejects copies too far out of date ("the ability
	// to cope with slightly out-of-date data" has limits).
	MaxStalenessMS float64
	// DeadlineMS bounds delivery time (transfer + decode); 0 = none.
	DeadlineMS float64
}

// LinkModel prices a transfer of n bytes from a node.
type LinkModel func(node string, bytes int) (ms float64, ok bool)

// ErrNoVersion is returned when no version satisfies the requirements.
var ErrNoVersion = errors.New("datacomp: no version satisfies requirements")

// Choice is the outcome of version selection.
type Choice struct {
	Version    Version
	TransferMS float64
	TotalMS    float64 // transfer + decode
}

// Select picks the best version under req given link costs: among the
// versions that satisfy quality/staleness/deadline, the highest
// quality wins, with delivery time as tie-breaker. This is Scenario
// 2's decision — "decides to send a compressed version of the data
// thus using more resources on both the sensor and the Laptop while
// saving communication time" — falling out of the deadline term.
func (c *Component) Select(req Requirements, link LinkModel) (Choice, error) {
	var best *Choice
	for _, v := range c.Versions() {
		if v.Quality < req.MinQuality {
			continue
		}
		if req.MaxStalenessMS > 0 && v.StalenessMS > req.MaxStalenessMS {
			continue
		}
		tms, ok := link(v.Node, v.Bytes)
		if !ok {
			continue
		}
		total := tms + v.DecodeCostMS
		if req.DeadlineMS > 0 && total > req.DeadlineMS {
			continue
		}
		ch := Choice{Version: v, TransferMS: tms, TotalMS: total}
		if best == nil || better(ch, *best) {
			b := ch
			best = &b
		}
	}
	if best == nil {
		return Choice{}, fmt.Errorf("%w: %s", ErrNoVersion, c.Name)
	}
	return *best, nil
}

func better(a, b Choice) bool {
	if a.Version.Quality != b.Version.Quality {
		return a.Version.Quality > b.Version.Quality
	}
	if a.TotalMS != b.TotalMS {
		return a.TotalMS < b.TotalMS
	}
	return a.Version.StalenessMS < b.Version.StalenessMS
}

// Fetch returns the decoded payload of a chosen version.
func (ch Choice) Fetch() ([]byte, error) {
	if ch.Version.Decoder == nil {
		return ch.Version.Data, nil
	}
	return ch.Version.Decoder(ch.Version.Data)
}

// ---------------------------------------------------------------------------
// Catalog: the distributed directory of data components.

// Catalog indexes data components by id and by hosting node.
type Catalog struct {
	mu    sync.RWMutex
	comps map[string]*Component
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{comps: map[string]*Component{}} }

// Put registers a component (replacing any same-id entry).
func (cat *Catalog) Put(c *Component) {
	cat.mu.Lock()
	defer cat.mu.Unlock()
	cat.comps[c.ID] = c
}

// Get looks a component up by id.
func (cat *Catalog) Get(id string) (*Component, bool) {
	cat.mu.RLock()
	defer cat.mu.RUnlock()
	c, ok := cat.comps[id]
	return c, ok
}

// IDs lists registered component ids, sorted.
func (cat *Catalog) IDs() []string {
	cat.mu.RLock()
	defer cat.mu.RUnlock()
	out := make([]string, 0, len(cat.comps))
	for id := range cat.comps {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// HostedOn lists component ids with at least one version on node.
func (cat *Catalog) HostedOn(node string) []string {
	var out []string
	for _, id := range cat.IDs() {
		c, _ := cat.Get(id)
		if len(c.VersionsAt(node)) > 0 {
			out = append(out, id)
		}
	}
	return out
}

// MigrateVersions reassigns every version of component id hosted on
// `from` to `to` — the data side of an agent SWITCH.
func (cat *Catalog) MigrateVersions(id, from, to string) (int, error) {
	c, ok := cat.Get(id)
	if !ok {
		return 0, fmt.Errorf("datacomp: unknown component %q", id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i := range c.versions {
		if c.versions[i].Node == from {
			c.versions[i].Node = to
			n++
		}
	}
	return n, nil
}

// QualityBound returns the best quality reachable under req and link —
// used by experiments to report how adaptation degrades results
// gracefully rather than failing. Returns 0 when nothing qualifies.
func (c *Component) QualityBound(req Requirements, link LinkModel) float64 {
	ch, err := c.Select(req, link)
	if err != nil {
		return 0
	}
	return ch.Version.Quality
}

// StaticLink builds a LinkModel from a fixed table of per-node
// bandwidth (Kbps) and latency (ms); useful in tests.
func StaticLink(kbps, latency map[string]float64) LinkModel {
	return func(node string, bytes int) (float64, bool) {
		bw, ok := kbps[node]
		if !ok || bw <= 0 {
			return 0, false
		}
		lat := latency[node]
		return lat + float64(bytes)*8/bw, true
	}
}

// Inf is a convenience for tests asserting unreachable versions.
var Inf = math.Inf(1)

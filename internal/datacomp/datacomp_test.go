package datacomp

import (
	"errors"
	"testing"
	"testing/quick"
)

func personComponent() *Component {
	c := New("dc1", "personal-data", KindObject, []byte("full-data"))
	c.Meta = Metadata{
		Rows:  1000,
		Bytes: 100_000,
		Attrs: []AttrStats{
			{Name: "age", Distinct: 80, Min: 0, Max: 110},
			{Name: "name", Distinct: 950},
		},
		Triggers: []Trigger{{Name: "audit", Event: "update", Action: "log"}},
	}
	c.AddVersion(Version{Node: "Laptop", Kind: VersionReplica, Bytes: 100_000, Quality: 1})
	c.AddVersion(Version{Node: "Laptop", Kind: VersionCompressed, Bytes: 20_000, Quality: 1,
		DecodeCostMS: 30, Data: []byte("compressed"), Decoder: func(b []byte) ([]byte, error) {
			return []byte("full-data"), nil
		}})
	c.AddVersion(Version{Node: "PDA", Kind: VersionSummary, Bytes: 5_000, Quality: 0.25})
	c.AddVersion(Version{Node: "server", Kind: VersionStale, Bytes: 100_000, Quality: 1, StalenessMS: 60_000})
	return c
}

func fastLinks() LinkModel {
	return StaticLink(
		map[string]float64{"Laptop": 10_000, "PDA": 500, "server": 2_000},
		map[string]float64{"Laptop": 1, "PDA": 20, "server": 5},
	)
}

func TestMetadataAttr(t *testing.T) {
	c := personComponent()
	a, ok := c.Meta.Attr("age")
	if !ok || a.Distinct != 80 {
		t.Fatalf("attr = %+v %v", a, ok)
	}
	if _, ok := c.Meta.Attr("ghost"); ok {
		t.Fatal("ghost attribute found")
	}
}

func TestSelectPrefersQualityThenSpeed(t *testing.T) {
	c := personComponent()
	ch, err := c.Select(Requirements{MinQuality: 0.5}, fastLinks())
	if err != nil {
		t.Fatal(err)
	}
	// Replica and compressed both quality 1; compressed is smaller:
	// replica = 1 + 800000/10000 = 81ms; compressed = 1+160000/10000+30 = 47ms.
	if ch.Version.Kind != VersionCompressed {
		t.Fatalf("chose %s", ch.Version.Label())
	}
}

func TestSelectDeadlineForcesCompressed(t *testing.T) {
	c := personComponent()
	// Slow link to Laptop: full replica takes 1+800000/500 = 1601ms,
	// compressed takes 1+160000/500+30 = 351ms.
	slow := StaticLink(map[string]float64{"Laptop": 500}, map[string]float64{"Laptop": 1})
	ch, err := c.Select(Requirements{MinQuality: 1, DeadlineMS: 400}, slow)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Version.Kind != VersionCompressed {
		t.Fatalf("deadline should force the compressed version, got %s", ch.Version.Label())
	}
	data, err := ch.Fetch()
	if err != nil || string(data) != "full-data" {
		t.Fatalf("fetch = %q %v", data, err)
	}
}

func TestSelectQualityFloorExcludesSummary(t *testing.T) {
	c := personComponent()
	onlyPDA := StaticLink(map[string]float64{"PDA": 500}, nil)
	if _, err := c.Select(Requirements{MinQuality: 0.5}, onlyPDA); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("want ErrNoVersion, got %v", err)
	}
	ch, err := c.Select(Requirements{MinQuality: 0.2}, onlyPDA)
	if err != nil || ch.Version.Kind != VersionSummary {
		t.Fatalf("ch=%v err=%v", ch, err)
	}
}

func TestSelectStalenessBound(t *testing.T) {
	c := personComponent()
	onlyServer := StaticLink(map[string]float64{"server": 2000}, nil)
	if _, err := c.Select(Requirements{MaxStalenessMS: 1000}, onlyServer); !errors.Is(err, ErrNoVersion) {
		t.Fatal("stale copy must be rejected under tight staleness bound")
	}
	ch, err := c.Select(Requirements{MaxStalenessMS: 120_000}, onlyServer)
	if err != nil || ch.Version.Kind != VersionStale {
		t.Fatalf("ch=%v err=%v", ch, err)
	}
}

func TestSelectUnreachableNodesSkipped(t *testing.T) {
	c := personComponent()
	if _, err := c.Select(Requirements{}, StaticLink(nil, nil)); !errors.Is(err, ErrNoVersion) {
		t.Fatal("no links must mean no version")
	}
}

func TestFetchIdentityDecoder(t *testing.T) {
	v := Version{Data: []byte("abc")}
	ch := Choice{Version: v}
	b, err := ch.Fetch()
	if err != nil || string(b) != "abc" {
		t.Fatalf("fetch = %q %v", b, err)
	}
}

func TestQualityBound(t *testing.T) {
	c := personComponent()
	if q := c.QualityBound(Requirements{}, fastLinks()); q != 1 {
		t.Fatalf("q = %v", q)
	}
	if q := c.QualityBound(Requirements{MinQuality: 2}, fastLinks()); q != 0 {
		t.Fatalf("impossible requirement: q = %v", q)
	}
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog()
	c := personComponent()
	cat.Put(c)
	got, ok := cat.Get("dc1")
	if !ok || got != c {
		t.Fatal("get failed")
	}
	if _, ok := cat.Get("zz"); ok {
		t.Fatal("phantom component")
	}
	if ids := cat.IDs(); len(ids) != 1 || ids[0] != "dc1" {
		t.Fatalf("ids = %v", ids)
	}
	hosted := cat.HostedOn("Laptop")
	if len(hosted) != 1 {
		t.Fatalf("hosted = %v", hosted)
	}
	if hosted := cat.HostedOn("mars"); len(hosted) != 0 {
		t.Fatalf("hosted = %v", hosted)
	}
}

func TestMigrateVersions(t *testing.T) {
	cat := NewCatalog()
	c := personComponent()
	cat.Put(c)
	n, err := cat.MigrateVersions("dc1", "Laptop", "server")
	if err != nil || n != 2 {
		t.Fatalf("migrated %d, err %v", n, err)
	}
	if len(c.VersionsAt("Laptop")) != 0 {
		t.Fatal("versions left behind")
	}
	if len(c.VersionsAt("server")) != 3 { // 2 migrated + 1 stale already there
		t.Fatalf("server versions = %d", len(c.VersionsAt("server")))
	}
	if _, err := cat.MigrateVersions("nope", "a", "b"); err == nil {
		t.Fatal("unknown id must error")
	}
}

// Property: Select never returns a version violating the requirements,
// and among admissible versions it returns a maximal-quality one.
func TestSelectRespectsRequirementsProperty(t *testing.T) {
	f := func(quals [5]uint8, sizes [5]uint16, minQRaw uint8) bool {
		c := New("x", "x", KindRelational, nil)
		for i := 0; i < 5; i++ {
			c.AddVersion(Version{
				Node:    "n",
				Kind:    VersionReplica,
				Bytes:   int(sizes[i]) + 1,
				Quality: float64(quals[i]%100+1) / 100,
			})
		}
		minQ := float64(minQRaw%100) / 100
		link := StaticLink(map[string]float64{"n": 1000}, nil)
		ch, err := c.Select(Requirements{MinQuality: minQ}, link)
		var bestAdmissible float64
		for _, v := range c.Versions() {
			if v.Quality >= minQ && v.Quality > bestAdmissible {
				bestAdmissible = v.Quality
			}
		}
		if bestAdmissible == 0 {
			return errors.Is(err, ErrNoVersion)
		}
		return err == nil && ch.Version.Quality == bestAdmissible && ch.Version.Quality >= minQ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package adapt

import (
	"fmt"

	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/component"
)

// Instantiate boots an assembly into a model's configuration for the
// given mode: every instance is built by the factory, added, started,
// and every binding wired. It is the cold-boot counterpart of Apply
// (which handles differential reconfiguration).
func Instantiate(asm *component.Assembly, model *adl.Model, mode string, factory Factory) error {
	cfg, err := model.ConfigFor(mode)
	if err != nil {
		return err
	}
	for _, name := range cfg.InstNames() {
		inst := cfg.Insts[name]
		c, err := factory(inst)
		if err != nil {
			return fmt.Errorf("adapt: instantiate %s:%s: %w", inst.Name, inst.Type, err)
		}
		if err := asm.Add(c); err != nil {
			return err
		}
		if err := c.Start(); err != nil {
			return err
		}
	}
	for _, b := range cfg.BindList() {
		if err := asm.Bind(b.From, b.FromPort, b.To, b.ToPort); err != nil {
			return err
		}
	}
	return nil
}

// TypeFactory builds a generic Factory from an ADL model: each
// instance gets a component whose ports mirror its declared type,
// with provided ports backed by the handler returned by impl (keyed
// by type and port name; a nil handler echoes the request payload).
// Real systems register purposeful implementations; tests and the
// scenario harness use this to stand components up structurally.
func TypeFactory(model *adl.Model, impl func(typeName, port string) component.Handler) Factory {
	return func(inst adl.InstDecl) (*component.Component, error) {
		t, ok := model.Types[inst.Type]
		if !ok {
			return nil, fmt.Errorf("adapt: unknown type %q", inst.Type)
		}
		c := component.New(inst.Name)
		c.Meta["type"] = inst.Type
		for _, p := range t.Ports {
			if p.Provided {
				var h component.Handler
				if impl != nil {
					h = impl(inst.Type, p.Name)
				}
				if h == nil {
					h = func(req component.Request) (any, error) { return req.Payload, nil }
				}
				c.Provide(p.Name, component.Service(p.Service), h)
			} else {
				c.Require(p.Name, component.Service(p.Service))
			}
		}
		return c, nil
	}
}

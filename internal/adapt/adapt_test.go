package adapt

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/component"
	"github.com/adm-project/adm/internal/trace"
)

func dockedAssembly(t *testing.T) (*component.Assembly, *adl.Model, Factory, *Manager) {
	t.Helper()
	model := adl.MustParse(adl.Figure4)
	asm := component.NewAssembly(trace.New(), nil)
	factory := TypeFactory(model, nil)
	if err := Instantiate(asm, model, "docked", factory); err != nil {
		t.Fatal(err)
	}
	am := NewManager(asm, asm.Log(), nil)
	return asm, model, factory, am
}

func bindingSet(asm *component.Assembly) map[string]string {
	out := map[string]string{}
	for _, b := range asm.Bindings() {
		out[b.FromComp+"."+b.FromPort] = b.ToComp + "." + b.ToPort
	}
	return out
}

func TestInstantiateDocked(t *testing.T) {
	asm, _, _, _ := dockedAssembly(t)
	if errs := asm.Validate(); len(errs) != 0 {
		t.Fatalf("docked assembly invalid: %v", errs)
	}
	want := []string{"eth", "opt", "qm", "sm", "src"}
	if got := asm.Components(); !reflect.DeepEqual(got, want) {
		t.Fatalf("components = %v", got)
	}
	for _, n := range want {
		c, _ := asm.Component(n)
		if c.State() != component.Started {
			t.Errorf("%s state = %v", n, c.State())
		}
	}
}

func TestApplyFigure5Switchover(t *testing.T) {
	asm, model, factory, am := dockedAssembly(t)
	plan, err := model.Diff("docked", "wireless")
	if err != nil {
		t.Fatal(err)
	}
	if err := am.Apply(plan, factory); err != nil {
		t.Fatal(err)
	}
	// Retired instances gone, new ones live.
	if _, ok := asm.Component("opt"); ok {
		t.Error("opt survived")
	}
	if _, ok := asm.Component("eth"); ok {
		t.Error("eth survived")
	}
	for _, n := range []string{"wopt", "wifi"} {
		c, ok := asm.Component(n)
		if !ok || c.State() != component.Started {
			t.Errorf("%s missing or not started", n)
		}
	}
	// Survivors resumed.
	for _, n := range []string{"qm", "sm", "src"} {
		c, _ := asm.Component(n)
		if c.State() != component.Started {
			t.Errorf("%s state = %v", n, c.State())
		}
	}
	// Wiring matches the wireless configuration exactly.
	bs := bindingSet(asm)
	want := map[string]string{
		"qm.pages":   "src.pages",
		"qm.plan":    "wopt.plan",
		"wopt.stats": "sm.stats",
		"sm.net":     "wifi.net",
		"src.net":    "wifi.net",
	}
	if !reflect.DeepEqual(bs, want) {
		t.Fatalf("bindings = %v, want %v", bs, want)
	}
	if errs := asm.Validate(); len(errs) != 0 {
		t.Fatalf("post-switch invalid: %v", errs)
	}
	st := am.Stats()
	if st.Switches != 1 || st.Starts != 2 || st.Stops != 2 || st.Rollbacks != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if asm.Log().Count(trace.KindSwitch) != 1 {
		t.Fatalf("trace: %s", asm.Log().Summary())
	}
}

func TestApplyEmptyPlanNoop(t *testing.T) {
	asm, model, factory, am := dockedAssembly(t)
	before := bindingSet(asm)
	plan, _ := model.Diff("docked", "docked")
	if err := am.Apply(plan, factory); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, bindingSet(asm)) {
		t.Fatal("noop plan changed bindings")
	}
	if am.Stats().Switches != 0 {
		t.Fatal("empty plan counted as switch")
	}
}

func TestApplyNoFactory(t *testing.T) {
	_, model, _, am := dockedAssembly(t)
	plan, _ := model.Diff("docked", "wireless")
	if err := am.Apply(plan, nil); !errors.Is(err, ErrNoFactory) {
		t.Fatalf("got %v", err)
	}
}

func snapshotConfig(asm *component.Assembly) (comps []string, binds map[string]string, states map[string]component.State) {
	comps = asm.Components()
	binds = bindingSet(asm)
	states = map[string]component.State{}
	for _, n := range comps {
		c, _ := asm.Component(n)
		states[n] = c.State()
	}
	return
}

func TestRollbackOnFactoryFailure(t *testing.T) {
	asm, model, factory, am := dockedAssembly(t)
	wantComps, wantBinds, wantStates := snapshotConfig(asm)

	failing := func(inst adl.InstDecl) (*component.Component, error) {
		if inst.Name == "wifi" {
			return nil, fmt.Errorf("wireless driver not retrievable")
		}
		return factory(inst)
	}
	plan, _ := model.Diff("docked", "wireless")
	err := am.Apply(plan, failing)
	var se *SwitchError
	if !errors.As(err, &se) {
		t.Fatalf("want SwitchError, got %v", err)
	}
	if !se.RolledBack || se.Phase != "start" {
		t.Fatalf("switch error = %+v", se)
	}
	gotComps, gotBinds, gotStates := snapshotConfig(asm)
	if !reflect.DeepEqual(gotComps, wantComps) {
		t.Fatalf("components after rollback = %v, want %v", gotComps, wantComps)
	}
	if !reflect.DeepEqual(gotBinds, wantBinds) {
		t.Fatalf("bindings after rollback = %v, want %v", gotBinds, wantBinds)
	}
	if !reflect.DeepEqual(gotStates, wantStates) {
		t.Fatalf("states after rollback = %v, want %v", gotStates, wantStates)
	}
	if am.Stats().Rollbacks != 1 || am.Stats().Switches != 0 {
		t.Fatalf("stats = %+v", am.Stats())
	}
	if asm.Log().Count(trace.KindRollback) != 1 {
		t.Fatal("rollback not traced")
	}
	// The configuration must still be fully functional.
	if errs := asm.Validate(); len(errs) != 0 {
		t.Fatalf("post-rollback invalid: %v", errs)
	}
}

func TestRollbackOnQuiesceVeto(t *testing.T) {
	asm, model, factory, am := dockedAssembly(t)
	// Replace qm with one that refuses to quiesce.
	_ = asm.Remove("qm")
	veto := errors.New("mid-transaction, not safe")
	qm := component.New("qm").
		Require("plan", "optimise").Require("pages", "getpage").
		Provide("query", "query", func(component.Request) (any, error) { return nil, nil }).
		WithLifecycle(component.Lifecycle{OnQuiesce: func() error { return veto }})
	_ = asm.Add(qm)
	_ = qm.Start()
	_ = asm.Bind("qm", "plan", "opt", "plan")
	_ = asm.Bind("qm", "pages", "src", "pages")

	plan, _ := model.Diff("docked", "wireless")
	err := am.Apply(plan, factory)
	var se *SwitchError
	if !errors.As(err, &se) || se.Phase != "quiesce" || !errors.Is(err, veto) {
		t.Fatalf("got %v", err)
	}
	if qm.State() != component.Started {
		t.Fatal("qm must still be running")
	}
	if errs := asm.Validate(); len(errs) != 0 {
		t.Fatalf("post-veto invalid: %v", errs)
	}
}

func TestRollbackResumesQuiescedSurvivors(t *testing.T) {
	asm, model, factory, am := dockedAssembly(t)
	failing := func(inst adl.InstDecl) (*component.Component, error) {
		if inst.Name == "wopt" {
			return nil, errors.New("nope")
		}
		return factory(inst)
	}
	plan, _ := model.Diff("docked", "wireless")
	_ = am.Apply(plan, failing)
	for _, n := range []string{"qm", "sm", "src", "opt", "eth"} {
		c, ok := asm.Component(n)
		if !ok {
			t.Fatalf("%s missing after rollback", n)
		}
		if c.State() != component.Started {
			t.Errorf("%s = %v, want started", n, c.State())
		}
	}
}

func TestApplyCapturesStatefulSurvivors(t *testing.T) {
	asm, model, factory, am := dockedAssembly(t)
	// Make src stateful: its snapshot must be taken across the switch.
	_ = asm.Remove("src")
	ms := &memState{val: []byte("stream-pos=42")}
	src := component.New("src").
		Provide("pages", "getpage", func(component.Request) (any, error) { return nil, nil }).
		Require("net", "net").
		WithStateful(ms)
	_ = asm.Add(src)
	_ = src.Start()
	_ = asm.Bind("src", "net", "eth", "net")
	_ = asm.Bind("qm", "pages", "src", "pages")

	plan, _ := model.Diff("docked", "wireless")
	if err := am.Apply(plan, factory); err != nil {
		t.Fatal(err)
	}
	snap, ok := am.StateManager().Snapshot("src")
	if !ok || string(snap) != "stream-pos=42" {
		t.Fatalf("snapshot = %q %v", snap, ok)
	}
}

type memState struct{ val []byte }

func (m *memState) CaptureState() ([]byte, error) { return append([]byte(nil), m.val...), nil }
func (m *memState) RestoreState(b []byte) error   { m.val = append([]byte(nil), b...); return nil }

type brokenState struct{}

func (brokenState) CaptureState() ([]byte, error) { return nil, errors.New("capture broken") }
func (brokenState) RestoreState([]byte) error     { return errors.New("restore broken") }

func TestMigrateMovesProcessingState(t *testing.T) {
	log := trace.New()
	from := component.NewAssembly(log, nil)
	to := component.NewAssembly(log, nil)
	st := &memState{val: []byte("served=1234")}
	agent := component.New("agent").WithStateful(st).
		Provide("serve", "http", func(component.Request) (any, error) { return nil, nil })
	_ = from.Add(agent)
	_ = agent.Start()

	replacementState := &memState{}
	repl := component.New("agent").WithStateful(replacementState).
		Provide("serve", "http", func(component.Request) (any, error) { return nil, nil })

	am := NewManager(from, log, nil)
	if err := am.Migrate("agent", from, repl, to); err != nil {
		t.Fatal(err)
	}
	if string(replacementState.val) != "served=1234" {
		t.Fatalf("state = %q", replacementState.val)
	}
	if _, ok := from.Component("agent"); ok {
		t.Fatal("agent still on source")
	}
	c, ok := to.Component("agent")
	if !ok || c.State() != component.Started {
		t.Fatal("replacement not running on target")
	}
	if am.Stats().Migrations != 1 {
		t.Fatalf("stats = %+v", am.Stats())
	}
	if log.Count(trace.KindMigrate) != 1 {
		t.Fatal("migration not traced")
	}
}

func TestMigrateErrors(t *testing.T) {
	log := trace.New()
	from := component.NewAssembly(log, nil)
	to := component.NewAssembly(log, nil)
	am := NewManager(from, log, nil)

	// Unknown component.
	if err := am.Migrate("ghost", from, component.New("x"), to); !errors.Is(err, component.ErrUnknown) {
		t.Fatalf("got %v", err)
	}
	// Not stateful.
	plain := component.New("plain")
	_ = from.Add(plain)
	_ = plain.Start()
	if err := am.Migrate("plain", from, component.New("plain"), to); !errors.Is(err, component.ErrNotStateful) {
		t.Fatalf("got %v", err)
	}
	// Capture failure resumes the source.
	bad := component.New("bad").WithStateful(brokenState{})
	_ = from.Add(bad)
	_ = bad.Start()
	repl := component.New("bad").WithStateful(&memState{})
	if err := am.Migrate("bad", from, repl, to); err == nil {
		t.Fatal("want capture error")
	}
	if bad.State() != component.Started {
		t.Fatal("source not resumed after failed capture")
	}
}

func TestStateManagerLifecycle(t *testing.T) {
	sm := NewStateManager(nil, nil)
	ms := &memState{val: []byte("abc")}
	if err := sm.Capture("x", ms); err != nil {
		t.Fatal(err)
	}
	if sm.Count() != 1 {
		t.Fatalf("count = %d", sm.Count())
	}
	ms.val = []byte("changed")
	if err := sm.Restore("x", ms); err != nil {
		t.Fatal(err)
	}
	if string(ms.val) != "abc" {
		t.Fatalf("restored = %q", ms.val)
	}
	if err := sm.Restore("ghost", ms); err == nil {
		t.Fatal("want missing-snapshot error")
	}
	if err := sm.Capture("bad", brokenState{}); err == nil {
		t.Fatal("want capture error")
	}
	if err := sm.Restore("x", brokenState{}); err == nil {
		t.Fatal("want restore error")
	}
	sm.Drop("x")
	if _, ok := sm.Snapshot("x"); ok || sm.Count() != 0 {
		t.Fatal("drop failed")
	}
}

func TestTypeFactoryUnknownType(t *testing.T) {
	model := adl.MustParse(adl.Figure4)
	f := TypeFactory(model, nil)
	if _, err := f(adl.InstDecl{Name: "x", Type: "Ghost"}); err == nil {
		t.Fatal("want error")
	}
}

func TestTypeFactoryCustomImpl(t *testing.T) {
	model := adl.MustParse(`component A { provide p : s; }`)
	f := TypeFactory(model, func(typeName, port string) component.Handler {
		if typeName == "A" && port == "p" {
			return func(component.Request) (any, error) { return "custom", nil }
		}
		return nil
	})
	c, err := f(adl.InstDecl{Name: "a", Type: "A"})
	if err != nil {
		t.Fatal(err)
	}
	asm := component.NewAssembly(nil, nil)
	_ = asm.Add(c)
	d := component.New("d").Require("out", "s")
	_ = asm.Add(d)
	_ = asm.Bind("d", "out", "a", "p")
	_ = asm.StartAll()
	got, err := asm.Call("d", "out", component.Request{})
	if err != nil || got != "custom" {
		t.Fatalf("got %v %v", got, err)
	}
}

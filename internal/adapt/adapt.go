// Package adapt implements the paper's Adaptivity Manager and State
// Manager (§3): "The Adaptivity Manager then carries out the
// unbinding and rebinding of components (establishing any glue
// necessary to achieve the binding). To do this it must ensure the
// instantiation adheres to transactional style properties. That is,
// the switch can be backed off if something goes wrong."
//
// Apply executes an ADL reconfiguration plan against a running
// assembly in phases — quiesce, unbind, start, bind, resume, stop —
// journaling an inverse for every mutation so any failure before the
// commit point rolls the configuration back to exactly where it was.
package adapt

import (
	"errors"
	"fmt"
	"sync"

	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/component"
	"github.com/adm-project/adm/internal/trace"
)

// Factory constructs runtime components for instances that a plan
// starts. It is the "retrieved off the network" step of Scenario 2 —
// new component types arrive from outside the running configuration.
type Factory func(inst adl.InstDecl) (*component.Component, error)

// ErrNoFactory is returned when a plan starts instances but no
// factory was supplied.
var ErrNoFactory = errors.New("adapt: plan starts instances but no factory given")

// SwitchError wraps the failure that aborted a reconfiguration,
// recording whether rollback restored the previous configuration.
type SwitchError struct {
	Phase        string
	Err          error
	RolledBack   bool
	RollbackErrs []error
}

func (e *SwitchError) Error() string {
	s := fmt.Sprintf("adapt: switch failed in %s phase: %v", e.Phase, e.Err)
	if e.RolledBack {
		s += " (configuration rolled back)"
	} else {
		s += fmt.Sprintf(" (ROLLBACK INCOMPLETE: %v)", e.RollbackErrs)
	}
	return s
}

func (e *SwitchError) Unwrap() error { return e.Err }

// Stats counts the manager's lifetime activity.
type Stats struct {
	Switches    int
	Rollbacks   int
	Unbinds     int
	Binds       int
	Starts      int
	Stops       int
	Migrations  int
	LastLatency float64 // ms, detection-to-commit of the last switch
}

// Manager is the Adaptivity Manager.
type Manager struct {
	mu    sync.Mutex
	asm   *component.Assembly
	log   *trace.Log
	clock func() float64
	state *StateManager
	stats Stats
}

// NewManager builds an adaptivity manager over an assembly. clock may
// be nil (time 0); the state manager is created internally and shared
// via StateManager().
func NewManager(asm *component.Assembly, log *trace.Log, clock func() float64) *Manager {
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	if log == nil {
		log = trace.New()
	}
	return &Manager{asm: asm, log: log, clock: clock, state: NewStateManager(log, clock)}
}

// StateManager returns the manager's state-capture component.
func (m *Manager) StateManager() *StateManager { return m.state }

// Stats returns activity counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Apply executes a reconfiguration plan transactionally. factory may
// be nil when the plan starts nothing. On success the assembly is in
// the plan's target configuration; on failure it is restored and a
// *SwitchError is returned.
func (m *Manager) Apply(plan *adl.Plan, factory Factory) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := m.clock()
	if plan.Empty() {
		return nil
	}
	if len(plan.Start) > 0 && factory == nil {
		return ErrNoFactory
	}
	m.log.Emit(start, trace.KindPlan, "adaptivity-mgr", "applying %s -> %s: %d steps",
		plan.From, plan.To, len(plan.Steps()))

	var undo []func() error
	fail := func(phase string, err error) error {
		m.stats.Rollbacks++
		var rbErrs []error
		for i := len(undo) - 1; i >= 0; i-- {
			if e := undo[i](); e != nil {
				rbErrs = append(rbErrs, e)
			}
		}
		m.log.Emit(m.clock(), trace.KindRollback, "adaptivity-mgr",
			"switch %s->%s backed off in %s: %v", plan.From, plan.To, phase, err)
		return &SwitchError{Phase: phase, Err: err, RolledBack: len(rbErrs) == 0, RollbackErrs: rbErrs}
	}

	// Phase 1: quiesce survivors whose wiring changes, and the
	// instances about to stop (their veto aborts the switch while it
	// is still free to abort). Stateful survivors are checkpointed.
	toQuiesce := append(append([]string{}, plan.Quiesce...), plan.Stop...)
	for _, name := range toQuiesce {
		c, ok := m.asm.Component(name)
		if !ok {
			return fail("quiesce", fmt.Errorf("unknown component %q", name))
		}
		if c.State() != component.Started {
			continue // already quiet (never started, or previous partial)
		}
		if err := c.Quiesce(); err != nil {
			return fail("quiesce", err)
		}
		cc := c
		undo = append(undo, func() error { return cc.Resume() })
		if sf, ok := cc.StatefulPart(); ok {
			if err := m.state.Capture(name, sf); err != nil {
				return fail("capture", err)
			}
		}
	}

	// Phase 2: unbind old wires.
	for _, b := range plan.Unbind {
		bb := b
		old, had := m.asm.BoundTo(b.From, b.FromPort)
		if err := m.asm.Unbind(b.From, b.FromPort); err != nil {
			return fail("unbind", err)
		}
		m.stats.Unbinds++
		if had {
			undo = append(undo, func() error {
				return m.asm.Bind(old.FromComp, old.FromPort, old.ToComp, old.ToPort)
			})
		}
		_ = bb
	}

	// Phase 3: start new instances.
	for _, inst := range plan.Start {
		c, err := factory(inst)
		if err != nil {
			return fail("start", fmt.Errorf("factory %s:%s: %w", inst.Name, inst.Type, err))
		}
		if c.Name() != inst.Name {
			return fail("start", fmt.Errorf("factory returned %q for instance %q", c.Name(), inst.Name))
		}
		if err := m.asm.Add(c); err != nil {
			return fail("start", err)
		}
		name := inst.Name
		undo = append(undo, func() error { return m.asm.Remove(name) })
		if err := c.Start(); err != nil {
			return fail("start", err)
		}
		cc := c
		undo = append(undo, func() error { return cc.Stop() })
		m.stats.Starts++
	}

	// Phase 4: bind new wires (the "glue").
	for _, b := range plan.Bind {
		if err := m.asm.Bind(b.From, b.FromPort, b.To, b.ToPort); err != nil {
			return fail("bind", err)
		}
		bb := b
		undo = append(undo, func() error { return m.asm.Unbind(bb.From, bb.FromPort) })
		m.stats.Binds++
	}

	// Phase 5: resume survivors.
	for _, name := range plan.Resume {
		c, ok := m.asm.Component(name)
		if !ok {
			return fail("resume", fmt.Errorf("unknown component %q", name))
		}
		if c.State() != component.Quiesced {
			continue
		}
		if err := c.Resume(); err != nil {
			return fail("resume", err)
		}
	}

	// Commit point: the new configuration is live. Stops of retired
	// instances can no longer abort the switch; a veto here is logged
	// and the component is removed regardless.
	for _, name := range plan.Stop {
		if c, ok := m.asm.Component(name); ok {
			if err := c.Stop(); err != nil {
				m.log.Emit(m.clock(), trace.KindInfo, "adaptivity-mgr",
					"post-commit stop of %s failed: %v (removed anyway)", name, err)
			}
			m.stats.Stops++
		}
		if err := m.asm.Remove(name); err != nil {
			m.log.Emit(m.clock(), trace.KindInfo, "adaptivity-mgr", "remove %s: %v", name, err)
		}
	}

	m.stats.Switches++
	m.stats.LastLatency = m.clock() - start
	m.log.Emit(m.clock(), trace.KindSwitch, "adaptivity-mgr", "committed %s -> %s", plan.From, plan.To)
	return nil
}

// Migrate moves a stateful component's execution state from one
// assembly to a replacement component (typically on another node's
// assembly): quiesce → capture → restore into the replacement → start
// replacement → stop original. This is Table 2's SWITCH — "not only
// should the Adaptivity Manager save the data state, but also the
// processing state, as it is this that is about to migrate".
func (m *Manager) Migrate(name string, from *component.Assembly, replacement *component.Component, to *component.Assembly) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	src, ok := from.Component(name)
	if !ok {
		return fmt.Errorf("adapt: migrate: %w %q", component.ErrUnknown, name)
	}
	sf, ok := src.StatefulPart()
	if !ok {
		return fmt.Errorf("adapt: migrate %q: %w", name, component.ErrNotStateful)
	}
	rf, ok := replacement.StatefulPart()
	if !ok {
		return fmt.Errorf("adapt: migrate %q: replacement: %w", name, component.ErrNotStateful)
	}
	if err := src.Quiesce(); err != nil {
		return fmt.Errorf("adapt: migrate %q: %w", name, err)
	}
	snap, err := sf.CaptureState()
	if err != nil {
		_ = src.Resume()
		return fmt.Errorf("adapt: migrate %q: capture: %w", name, err)
	}
	if err := rf.RestoreState(snap); err != nil {
		_ = src.Resume()
		return fmt.Errorf("adapt: migrate %q: restore: %w", name, err)
	}
	if err := to.Add(replacement); err != nil {
		_ = src.Resume()
		return fmt.Errorf("adapt: migrate %q: %w", name, err)
	}
	if err := replacement.Start(); err != nil {
		_ = to.Remove(replacement.Name())
		_ = src.Resume()
		return fmt.Errorf("adapt: migrate %q: start replacement: %w", name, err)
	}
	_ = src.Stop()
	_ = from.Remove(name)
	m.stats.Migrations++
	m.log.Emit(m.clock(), trace.KindMigrate, "adaptivity-mgr",
		"migrated %s (%d state bytes)", name, len(snap))
	return nil
}

// ---------------------------------------------------------------------------
// State Manager.

// StateManager is the paper's State Manager component: "the adaptivity
// manager brings the query to a consistent state maintained by the
// State Manager component. The query then continues from this point."
// It is "only called upon" when there is update-bearing or migrating
// state — stateless reconfigurations never touch it.
type StateManager struct {
	mu    sync.Mutex
	snaps map[string][]byte
	log   *trace.Log
	clock func() float64
}

// NewStateManager returns an empty state manager.
func NewStateManager(log *trace.Log, clock func() float64) *StateManager {
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	if log == nil {
		log = trace.New()
	}
	return &StateManager{snaps: map[string][]byte{}, log: log, clock: clock}
}

// Capture snapshots a stateful component under its name.
func (s *StateManager) Capture(name string, sf component.Stateful) error {
	b, err := sf.CaptureState()
	if err != nil {
		return fmt.Errorf("adapt: capture %q: %w", name, err)
	}
	s.mu.Lock()
	s.snaps[name] = append([]byte(nil), b...)
	s.mu.Unlock()
	s.log.Emit(s.clock(), trace.KindSafePoint, "state-mgr", "captured %s (%d bytes)", name, len(b))
	return nil
}

// Restore reinstates the last snapshot of name into sf.
func (s *StateManager) Restore(name string, sf component.Stateful) error {
	s.mu.Lock()
	b, ok := s.snaps[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("adapt: no snapshot for %q", name)
	}
	if err := sf.RestoreState(b); err != nil {
		return fmt.Errorf("adapt: restore %q: %w", name, err)
	}
	return nil
}

// Snapshot returns the raw last snapshot of name.
func (s *StateManager) Snapshot(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.snaps[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// Drop discards the snapshot of name.
func (s *StateManager) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.snaps, name)
}

// Count returns the number of held snapshots.
func (s *StateManager) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snaps)
}

package device

import (
	"testing"

	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/simnet"
)

func TestDeviceLoadAndUtil(t *testing.T) {
	d := New("l", DefaultSpecs()[ClassLaptop]) // capacity 100
	d.SetLoad(25)
	if d.Util() != 25 || d.Load() != 25 {
		t.Fatalf("util=%v load=%v", d.Util(), d.Load())
	}
	d.AddLoad(80)
	if d.Util() != 100 { // saturates
		t.Fatalf("util = %v", d.Util())
	}
	d.AddLoad(-1000)
	if d.Load() != 0 {
		t.Fatalf("load clamped = %v", d.Load())
	}
}

func TestBatteryDrainOnlyWhenUndocked(t *testing.T) {
	d := New("l", Spec{Class: ClassLaptop, CapacityUnits: 100, DrainPerSec: 1})
	d.Tick(10_000)
	if d.Battery() != 100 {
		t.Fatalf("docked battery drained: %v", d.Battery())
	}
	d.Undock()
	d.Tick(10_000) // 10s at 1%/s
	if d.Battery() != 90 {
		t.Fatalf("battery = %v, want 90", d.Battery())
	}
	d.Dock()
	d.Tick(10_000)
	if d.Battery() != 90 {
		t.Fatal("re-docked device drained")
	}
}

func TestBatteryExhaustionKills(t *testing.T) {
	d := New("p", Spec{Class: ClassPDA, CapacityUnits: 10, DrainPerSec: 50})
	d.Undock()
	d.Tick(3000)
	if d.Alive() {
		t.Fatal("device should have died")
	}
	if d.Battery() != 0 {
		t.Fatalf("battery = %v", d.Battery())
	}
	// Ticking a dead device is a no-op.
	d.Tick(1000)
	if d.Alive() {
		t.Fatal("dead device revived")
	}
}

func TestKill(t *testing.T) {
	d := New("x", DefaultSpecs()[ClassServer])
	d.Kill()
	if d.Alive() {
		t.Fatal("kill failed")
	}
}

func TestPublishVitals(t *testing.T) {
	reg := monitor.NewRegistry()
	d := New("Laptop", DefaultSpecs()[ClassLaptop])
	d.SetLoad(10)
	d.SetDistance(12)
	d.PublishVitals(reg, 5)
	checks := map[string]float64{
		monitor.MetricCapacity:      100,
		monitor.MetricLoad:          10,
		monitor.MetricProcessorUtil: 10,
		monitor.MetricBattery:       100,
		monitor.MetricDistance:      12,
	}
	for m, want := range checks {
		got, ok := reg.Metric(m, "Laptop")
		if !ok || got != want {
			t.Errorf("%s = %v %v, want %v", m, got, ok, want)
		}
	}
}

func TestTestbedTopology(t *testing.T) {
	tb := NewTestbed(1)
	if len(tb.Devices) != 3 {
		t.Fatalf("devices = %d", len(tb.Devices))
	}
	for _, pair := range [][2]string{
		{NodeSensor, NodeLaptop}, {NodeLaptop, NodePDA}, {NodeSensor, NodePDA},
	} {
		if _, ok := tb.Net.Link(pair[0], pair[1]); !ok {
			t.Errorf("missing link %v", pair)
		}
	}
	p, _ := tb.Net.Link(NodeSensor, NodeLaptop)
	if p.Name != "ethernet" {
		t.Fatalf("initial sensor-laptop link = %q, want docked ethernet", p.Name)
	}
}

// The testbed must make Scenario 1 come out as the paper says: "At the
// moment the Laptop is better as it is not being used and has much
// more capacity compared with the PDA", while the PDA is NEAREST.
func TestTestbedScenario1Defaults(t *testing.T) {
	tb := NewTestbed(1)
	ctx := &constraint.Context{Env: tb.Reg}
	best, err := constraint.MustParse("Select BEST (PDA, Laptop)").Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if best.Target.Node() != NodeLaptop {
		t.Fatalf("BEST = %v, want Laptop", best.Target)
	}
	near, err := constraint.MustParse("Select NEAREST (PDA, Laptop)").Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if near.Target.Node() != NodePDA {
		t.Fatalf("NEAREST = %v, want PDA", near.Target)
	}
}

func TestUndockLaptopDegradesLink(t *testing.T) {
	tb := NewTestbed(1)
	if err := tb.UndockLaptop(); err != nil {
		t.Fatal(err)
	}
	p, _ := tb.Net.Link(NodeSensor, NodeLaptop)
	if p.Name != "wireless" {
		t.Fatalf("post-undock link = %q", p.Name)
	}
	if tb.Devices[NodeLaptop].Docked() {
		t.Fatal("laptop still docked")
	}
	bw, ok := tb.Reg.Metric(monitor.MetricBandwidth, simnet.LinkName(NodeSensor, NodeLaptop))
	if !ok || bw != 500 {
		t.Fatalf("bandwidth after undock = %v %v", bw, ok)
	}
}

func TestTickAllRepublishes(t *testing.T) {
	tb := NewTestbed(1)
	tb.Devices[NodeLaptop].Undock()
	before, _ := tb.Reg.Metric(monitor.MetricBattery, NodeLaptop)
	tb.Clock.Schedule(60_000, func() {})
	tb.Clock.Run()
	tb.TickAll(60_000)
	after, ok := tb.Reg.Metric(monitor.MetricBattery, NodeLaptop)
	if !ok || after >= before {
		t.Fatalf("battery %v -> %v, want drain visible in registry", before, after)
	}
}

func TestPositionsAndDistanceTo(t *testing.T) {
	a := New("a", DefaultSpecs()[ClassPDA])
	b := New("b", DefaultSpecs()[ClassLaptop])
	if _, _, ok := a.Position(); ok {
		t.Fatal("unplaced device has a position")
	}
	if _, ok := a.DistanceTo(b); ok {
		t.Fatal("distance between unplaced devices")
	}
	a.SetPosition(0, 0)
	b.SetPosition(3, 4)
	d, ok := a.DistanceTo(b)
	if !ok || d != 5 {
		t.Fatalf("distance = %v %v", d, ok)
	}
}

// NEAREST over moving devices: the user (querier) walks away from the
// PDA towards the Laptop, and the data component's NEAREST decision
// follows — "the component can migrate, as can the data component"
// (§3) driven purely by the monitor feed.
func TestNearestTracksMovement(t *testing.T) {
	tb := NewTestbed(1)
	user := New("user", DefaultSpecs()[ClassPDA])
	tb.Devices["user"] = user
	tb.Querier = "user"
	tb.Devices[NodePDA].SetPosition(0, 0)
	tb.Devices[NodeLaptop].SetPosition(100, 0)
	tb.Devices[NodeSensor].SetPosition(50, 80)
	user.SetPosition(5, 0) // starts next to the PDA
	tb.PublishAll()

	near := constraint.MustParse("Select NEAREST (PDA, Laptop)")
	ctx := &constraint.Context{Env: tb.Reg}
	d, err := near.Eval(ctx)
	if err != nil || d.Target.Node() != NodePDA {
		t.Fatalf("near the PDA: %v %v", d, err)
	}
	// The user walks across the room.
	for x := 5.0; x <= 95; x += 10 {
		user.SetPosition(x, 0)
		tb.PublishAll()
	}
	d, err = near.Eval(ctx)
	if err != nil || d.Target.Node() != NodeLaptop {
		t.Fatalf("near the Laptop: %v %v", d, err)
	}
}

// Package device models the computing units of the paper's ubiquitous
// scenarios — "anything from a set of sensors, PDAs, mobile phones and
// webpads etc. to servers" (§1) — with the capacity, load, battery and
// docking state the BEST/NEAREST constraints and Scenario 2's
// undocking event consume. Devices publish their vitals into the
// monitor registry on every tick, exactly as the paper's monitors
// feed the session manager.
package device

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/simnet"
)

// Class labels a device's role.
type Class string

// Device classes from Figure 3.
const (
	ClassSensor Class = "sensor"
	ClassPDA    Class = "pda"
	ClassLaptop Class = "laptop"
	ClassServer Class = "server"
)

// Spec is the static capability sheet for a device class.
type Spec struct {
	Class Class
	// CapacityUnits is the abstract compute capacity BEST compares.
	CapacityUnits float64
	// MemKB is main memory (bounds buffer pools and join hash tables).
	MemKB int
	// DrainPerSec is battery percentage drained per simulated second
	// when undocked.
	DrainPerSec float64
}

// DefaultSpecs returns the calibration used by the scenarios: a
// laptop has "much more capacity compared with the PDA" (§4).
func DefaultSpecs() map[Class]Spec {
	return map[Class]Spec{
		ClassSensor: {Class: ClassSensor, CapacityUnits: 2, MemKB: 64, DrainPerSec: 0.002},
		ClassPDA:    {Class: ClassPDA, CapacityUnits: 20, MemKB: 16 * 1024, DrainPerSec: 0.02},
		ClassLaptop: {Class: ClassLaptop, CapacityUnits: 100, MemKB: 512 * 1024, DrainPerSec: 0.05},
		ClassServer: {Class: ClassServer, CapacityUnits: 400, MemKB: 4 * 1024 * 1024, DrainPerSec: 0},
	}
}

// Device is one running unit.
type Device struct {
	mu       sync.Mutex
	name     string
	spec     Spec
	docked   bool
	battery  float64 // percent
	load     float64 // abstract units, <= capacity in sane states
	util     float64 // percent 0..100, derived from load/capacity
	distance float64 // metres from the querying user (NEAREST)
	pos      *position
	alive    bool
}

type position struct{ x, y float64 }

// New creates a device, initially docked with a full battery.
func New(name string, spec Spec) *Device {
	return &Device{name: name, spec: spec, docked: true, battery: 100, alive: true}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Class returns the device class.
func (d *Device) Class() Class { return d.spec.Class }

// Spec returns the static capability sheet.
func (d *Device) Spec() Spec { return d.spec }

// Docked reports docking state.
func (d *Device) Docked() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.docked
}

// Dock attaches the device to power + Ethernet.
func (d *Device) Dock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.docked = true
}

// Undock detaches power; battery drain begins (Scenario 2: "it has
// been unplugged and is now working off the battery and wireless
// network").
func (d *Device) Undock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.docked = false
}

// Battery returns remaining battery percentage.
func (d *Device) Battery() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.battery
}

// Alive reports whether the device is still running (battery > 0).
// "The system must be able to cope with units failing — perhaps mid
// way through answering a query" (§1).
func (d *Device) Alive() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alive
}

// Kill force-fails the device (failure-injection in tests).
func (d *Device) Kill() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.alive = false
}

// SetLoad sets the current load in capacity units; utilisation is
// derived. Loads above capacity saturate utilisation at 100.
func (d *Device) SetLoad(load float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if load < 0 {
		load = 0
	}
	d.load = load
	if d.spec.CapacityUnits > 0 {
		d.util = 100 * load / d.spec.CapacityUnits
		if d.util > 100 {
			d.util = 100
		}
	}
}

// AddLoad adjusts load by delta.
func (d *Device) AddLoad(delta float64) {
	d.mu.Lock()
	load := d.load + delta
	d.mu.Unlock()
	d.SetLoad(load)
}

// Load returns current load units.
func (d *Device) Load() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.load
}

// Util returns processor utilisation percent.
func (d *Device) Util() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.util
}

// SetDistance sets the device's distance from the query origin
// directly (used when no positions are modelled).
func (d *Device) SetDistance(m float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.distance = m
}

// SetPosition places the device on the plane; once positioned, its
// published distance is computed from geometry (NEAREST over moving
// devices).
func (d *Device) SetPosition(x, y float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pos = &position{x: x, y: y}
}

// Position returns the device's coordinates (ok=false if unplaced).
func (d *Device) Position() (x, y float64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pos == nil {
		return 0, 0, false
	}
	return d.pos.x, d.pos.y, true
}

// DistanceTo returns the Euclidean distance to another positioned
// device (ok=false when either is unplaced).
func (d *Device) DistanceTo(o *Device) (float64, bool) {
	x1, y1, ok1 := d.Position()
	x2, y2, ok2 := o.Position()
	if !ok1 || !ok2 {
		return 0, false
	}
	dx, dy := x1-x2, y1-y2
	return math.Sqrt(dx*dx + dy*dy), true
}

// Tick advances the device dt milliseconds: battery drain when
// undocked; a drained battery kills the device.
func (d *Device) Tick(dtMS float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.alive {
		return
	}
	if !d.docked {
		d.battery -= d.spec.DrainPerSec * dtMS / 1000
		if d.battery <= 0 {
			d.battery = 0
			d.alive = false
		}
	}
}

// PublishVitals emits capacity, load, processor-util, battery and
// distance samples for this device at time t.
func (d *Device) PublishVitals(reg *monitor.Registry, t float64) {
	d.mu.Lock()
	name := d.name
	samples := []monitor.Sample{
		{Key: monitor.Key{Metric: monitor.MetricCapacity, Source: name}, Value: d.spec.CapacityUnits, TimeMS: t},
		{Key: monitor.Key{Metric: monitor.MetricLoad, Source: name}, Value: d.load, TimeMS: t},
		{Key: monitor.Key{Metric: monitor.MetricProcessorUtil, Source: name}, Value: d.util, TimeMS: t},
		{Key: monitor.Key{Metric: monitor.MetricBattery, Source: name}, Value: d.battery, TimeMS: t},
		{Key: monitor.Key{Metric: monitor.MetricDistance, Source: name}, Value: d.distance, TimeMS: t},
	}
	d.mu.Unlock()
	for _, s := range samples {
		reg.Publish(s)
	}
}

// ---------------------------------------------------------------------------
// Testbed: the Figure 3 topology.

// Testbed is the sensor–Laptop–PDA subset of a ubiquitous system used
// by the Section 4 scenarios, wired over a simulated network with a
// shared clock and monitor registry.
type Testbed struct {
	Clock   *simnet.Clock
	Net     *simnet.Network
	Reg     *monitor.Registry
	Devices map[string]*Device
	// Querier, when set to a positioned device's name, makes
	// PublishAll compute every device's distance metric relative to
	// it — NEAREST then tracks movement.
	Querier string
}

// Standard testbed node names.
const (
	NodeSensor = "sensor"
	NodeLaptop = "Laptop"
	NodePDA    = "PDA"
)

// NewTestbed builds the Figure 3 system: sensor—Laptop and
// Laptop—PDA links plus a direct sensor—PDA wireless link; the Laptop
// starts docked (Ethernet to the sensor's base station), the PDA is
// always wireless.
func NewTestbed(seed int64) *Testbed {
	clock := simnet.NewClock()
	reg := monitor.NewRegistry()
	net := simnet.New(clock, reg, seed)
	specs := DefaultSpecs()

	tb := &Testbed{Clock: clock, Net: net, Reg: reg, Devices: map[string]*Device{}}
	add := func(name string, class Class) {
		net.AddNode(name)
		tb.Devices[name] = New(name, specs[class])
	}
	add(NodeSensor, ClassSensor)
	add(NodeLaptop, ClassLaptop)
	add(NodePDA, ClassPDA)

	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("testbed wiring: %v", err))
		}
	}
	must(net.SetLink(NodeSensor, NodeLaptop, simnet.Ethernet))
	must(net.SetLink(NodeLaptop, NodePDA, simnet.Wireless))
	must(net.SetLink(NodeSensor, NodePDA, simnet.Wireless))

	// Scenario defaults: laptop idle and roomy, PDA small and nearer.
	tb.Devices[NodeLaptop].SetLoad(10)
	tb.Devices[NodeLaptop].SetDistance(12)
	tb.Devices[NodePDA].SetLoad(15)
	tb.Devices[NodePDA].SetDistance(1)
	tb.Devices[NodeSensor].SetLoad(1)
	tb.Devices[NodeSensor].SetDistance(30)
	tb.PublishAll()
	return tb
}

// PublishAll pushes every device's vitals at the current time.
func (tb *Testbed) PublishAll() {
	names := make([]string, 0, len(tb.Devices))
	for n := range tb.Devices {
		names = append(names, n)
	}
	sort.Strings(names)
	var q *Device
	if tb.Querier != "" {
		q = tb.Devices[tb.Querier]
	}
	for _, n := range names {
		d := tb.Devices[n]
		if q != nil {
			if dist, ok := d.DistanceTo(q); ok {
				d.SetDistance(dist)
			}
		}
		d.PublishVitals(tb.Reg, tb.Clock.Now())
	}
}

// TickAll advances every device and republishes vitals.
func (tb *Testbed) TickAll(dtMS float64) {
	for _, d := range tb.Devices {
		d.Tick(dtMS)
	}
	tb.PublishAll()
}

// UndockLaptop performs Scenario 2's environmental event: the Laptop
// loses power and Ethernet; its links degrade to wireless.
func (tb *Testbed) UndockLaptop() error {
	tb.Devices[NodeLaptop].Undock()
	if err := tb.Net.SetLink(NodeSensor, NodeLaptop, simnet.Wireless); err != nil {
		return err
	}
	tb.PublishAll()
	return nil
}

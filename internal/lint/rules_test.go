package lint

import (
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/constraint"
)

func oneRule(t *testing.T, src string) []RuleLine {
	t.Helper()
	r, err := constraint.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return []RuleLine{{Line: 1, ID: 0, Priority: 0, Rule: r}}
}

func TestRulesUnknownMetric(t *testing.T) {
	diags := AnalyzeRules("r", oneRule(t, "If warp-factor > 9 then node1.q"), nil)
	if codes(diags)["unknown-metric"] != 1 {
		t.Fatalf("got %v", diags)
	}
}

func TestRulesUnitMismatch(t *testing.T) {
	diags := AnalyzeRules("r", oneRule(t, "If bandwidth > 30 ms then node1.q"), nil)
	if codes(diags)["unit-mismatch"] != 1 {
		t.Fatalf("got %v", diags)
	}
}

func TestRulesEmptyBand(t *testing.T) {
	diags := AnalyzeRules("r", oneRule(t, "If bandwidth > 100 < 30 Kbps then node1.q"), nil)
	if codes(diags)["unsatisfiable"] == 0 {
		t.Fatalf("got %v", diags)
	}
	if !HasErrors(diags) {
		t.Fatal("empty band must be an error")
	}
}

func TestRulesOutOfDeclaredRange(t *testing.T) {
	diags := AnalyzeRules("r", oneRule(t, "If processor-util > 150 % then SWITCH(node1.q, node2.q)"), nil)
	if codes(diags)["out-of-range"] != 1 {
		t.Fatalf("got %v", diags)
	}
}

func TestRulesAlwaysTrueGuard(t *testing.T) {
	diags := AnalyzeRules("r", oneRule(t, "If processor-util >= 0 % then node1.q else node2.q"), nil)
	c := codes(diags)
	if c["always-true"] != 1 {
		t.Fatalf("got %v", diags)
	}
	if HasErrors(diags) {
		t.Fatalf("always-true is a warning, got %v", diags)
	}
}

func TestRulesContradictoryConjunction(t *testing.T) {
	diags := AnalyzeRules("r", oneRule(t, "If bandwidth > 90 and bandwidth < 10 then node1.q"), nil)
	if codes(diags)["contradictory-guard"] != 1 {
		t.Fatalf("got %v", diags)
	}
}

func TestRulesSatisfiableBandClean(t *testing.T) {
	diags := AnalyzeRules("r", oneRule(t, "If bandwidth > 30 < 100 Kbps then node3.videohalf.ram"), nil)
	if len(diags) != 0 {
		t.Fatalf("clean band flagged: %v", diags)
	}
}

func parseRules(t *testing.T, lines ...string) []RuleLine {
	t.Helper()
	var out []RuleLine
	for i, src := range lines {
		r, err := constraint.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		out = append(out, RuleLine{Line: i + 1, ID: i, Priority: i, Rule: r})
	}
	return out
}

func TestRulesDeadAfterSelect(t *testing.T) {
	diags := AnalyzeRules("r", parseRules(t,
		"Select BEST(node1.q, node2.q)",
		"If bandwidth > 50 then node1.q",
	), nil)
	c := codes(diags)
	if c["dead-rule"] != 1 {
		t.Fatalf("got %v", diags)
	}
}

func TestRulesDeadAfterElseRule(t *testing.T) {
	diags := AnalyzeRules("r", parseRules(t,
		"If bandwidth > 50 then node1.q else node2.q",
		"If processor-util > 90 % then SWITCH(node1.q, node2.q)",
	), nil)
	if codes(diags)["dead-rule"] != 1 {
		t.Fatalf("got %v", diags)
	}
}

func TestRulesShadowedGuard(t *testing.T) {
	// Rule 2's guard (bandwidth > 80) implies rule 1's (bandwidth >
	// 50): whenever 2 would fire, 1 fires first.
	diags := AnalyzeRules("r", parseRules(t,
		"If bandwidth > 50 then node1.q",
		"If bandwidth > 80 then node2.q",
	), nil)
	c := codes(diags)
	if c["shadowed-rule"] != 1 {
		t.Fatalf("got %v", diags)
	}
	if HasErrors(diags) {
		t.Fatalf("shadowing is a warning, got %v", diags)
	}
}

func TestRulesNoShadowAcrossDifferentMetrics(t *testing.T) {
	diags := AnalyzeRules("r", parseRules(t,
		"If bandwidth > 50 then node1.q",
		"If processor-util > 90 % then node2.q",
	), nil)
	if len(diags) != 0 {
		t.Fatalf("independent rules flagged: %v", diags)
	}
}

func TestRulesPriorityOrderGovernsShadowing(t *testing.T) {
	// The wider guard has a *worse* priority, so it is not shadowed:
	// the tighter rule is evaluated first but the wider guard still
	// fires on its own for values in (50, 80].
	r1, _ := constraint.Parse("If bandwidth > 80 then node1.q")
	r2, _ := constraint.Parse("If bandwidth > 50 then node2.q")
	diags := AnalyzeRules("r", []RuleLine{
		{Line: 1, ID: 0, Priority: 0, Rule: r1},
		{Line: 2, ID: 1, Priority: 5, Rule: r2},
	}, nil)
	if len(diags) != 0 {
		t.Fatalf("got %v", diags)
	}
}

func TestRulesDuplicateCandidateAndDegenerateSwitch(t *testing.T) {
	diags := AnalyzeRules("r", oneRule(t, "If processor-util > 90 % then SWITCH(node1.q, node1.q)"), nil)
	c := codes(diags)
	if c["duplicate-candidate"] != 1 || c["degenerate-switch"] != 1 {
		t.Fatalf("got %v", diags)
	}
}

func TestParseRulesFile(t *testing.T) {
	src := `# comment
declare temperature C -50 150

10: If temperature > 40 C then node1.q
If bandwidth > 30 < 100 Kbps then node2.q   // trailing comment
If bogus( then node3.q
`
	rules, vocab, diags := ParseRulesFile("f.rules", src)
	if len(rules) != 2 {
		t.Fatalf("rules = %d, want 2 (got %v)", len(rules), rules)
	}
	if rules[0].Priority != 10 || rules[0].Line != 4 {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if _, ok := vocab["temperature"]; !ok {
		t.Fatal("declare not recorded")
	}
	if info := vocab["temperature"]; info.Unit != "C" || info.Min != -50 || info.Max != 150 {
		t.Fatalf("temperature info = %+v", info)
	}
	if len(diags) != 1 || diags[0].Code != "syntax" || diags[0].Line != 6 {
		t.Fatalf("diags = %v", diags)
	}
	// The declared metric must satisfy the analyzer.
	if d := AnalyzeRules("f.rules", rules, vocab); len(d) != 0 {
		t.Fatalf("declared vocabulary rejected: %v", d)
	}
}

func TestParseRulesFileBadDeclare(t *testing.T) {
	_, _, diags := ParseRulesFile("f.rules", "declare\n")
	if len(diags) != 1 || diags[0].Code != "bad-declare" {
		t.Fatalf("got %v", diags)
	}
	_, _, diags = ParseRulesFile("f.rules", "declare x u 9 1\n")
	if len(diags) != 1 || diags[0].Code != "bad-declare" {
		t.Fatalf("got %v", diags)
	}
}

func TestAnalyzeRuleSetAdapter(t *testing.T) {
	rs := constraint.NewRuleSet(
		constraint.PrioritisedRule{ID: 1, Priority: 0, Rule: constraint.MustParse("Select BEST(node1.q, node2.q)")},
		constraint.PrioritisedRule{ID: 2, Priority: 1, Rule: constraint.MustParse("If bandwidth > 50 then node1.q")},
	)
	diags := AnalyzeRuleSet("", rs.Rules(), nil)
	if codes(diags)["dead-rule"] != 1 {
		t.Fatalf("got %v", diags)
	}
	if !strings.Contains(diags[0].File, "ruleset") {
		t.Fatalf("virtual file name missing: %v", diags[0])
	}
}

func TestIntervalHelpers(t *testing.T) {
	a := boundInterval(constraint.Bound{Op: constraint.OpGT, Value: 30})
	b := boundInterval(constraint.Bound{Op: constraint.OpLT, Value: 100})
	iv := a.intersect(b)
	if iv.empty() {
		t.Fatal("30..100 band must be non-empty")
	}
	c := boundInterval(constraint.Bound{Op: constraint.OpLT, Value: 30})
	if !a.intersect(c).empty() {
		t.Fatal(">30 and <30 must be empty")
	}
	eq := boundInterval(constraint.Bound{Op: constraint.OpEQ, Value: 30})
	if eq.empty() {
		t.Fatal("point interval is non-empty")
	}
	if !a.intersect(eq).empty() {
		t.Fatal(">30 excludes the point 30")
	}
	if !fullInterval().contains(iv) || iv.contains(fullInterval()) {
		t.Fatal("containment misordered")
	}
}

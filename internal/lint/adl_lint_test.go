package lint

import (
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/adl"
)

func analyzeSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	m, err := adl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return AnalyzeADL("test.adl", m)
}

func codes(diags []Diagnostic) map[string]int {
	out := map[string]int{}
	for _, d := range diags {
		out[d.Code]++
	}
	return out
}

func TestAnalyzeADLFigure4Clean(t *testing.T) {
	diags := analyzeSrc(t, adl.Figure4)
	if len(diags) != 0 {
		t.Fatalf("figure 4 should be clean, got %v", diags)
	}
}

func TestAnalyzeADLDanglingBind(t *testing.T) {
	diags := analyzeSrc(t, `
component A { require x : s; }
component B { provide y : s; }
inst a : A;
inst b : B;
bind a.x -- c.y;
bind a.z -- b.y;
`)
	c := codes(diags)
	if c["dangling-bind"] != 2 {
		t.Fatalf("want 2 dangling-bind, got %v", diags)
	}
	// Both diagnostics must carry the bind lines (6 and 7).
	for _, d := range diags {
		if d.Code == "dangling-bind" && d.Line != 6 && d.Line != 7 {
			t.Fatalf("dangling-bind at line %d, want 6 or 7: %v", d.Line, d)
		}
	}
}

func TestAnalyzeADLServiceMismatchPerMode(t *testing.T) {
	diags := analyzeSrc(t, `
component A { require x : left; }
component B { provide y : right; }
inst a : A;
when m {
  inst b : B;
  bind a.x -- b.y;
}
`)
	c := codes(diags)
	if c["service-mismatch"] != 1 {
		t.Fatalf("want service-mismatch, got %v", diags)
	}
	found := false
	for _, d := range diags {
		if d.Code == "service-mismatch" && strings.Contains(d.Message, `mode "m"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("mismatch should name the mode: %v", diags)
	}
}

func TestAnalyzeADLNeverBound(t *testing.T) {
	diags := analyzeSrc(t, `
component Loner { provide y : s; }
inst l : Loner;
`)
	c := codes(diags)
	if c["never-bound"] != 1 {
		t.Fatalf("want never-bound, got %v", diags)
	}
}

func TestAnalyzeADLDuplicateMode(t *testing.T) {
	diags := analyzeSrc(t, `
component A { provide y : s; }
component B { require x : s; }
inst a : A;
inst b : B;
bind b.x -- a.y;
when m1 { }
when m2 { }
`)
	c := codes(diags)
	// Both modes equal base; m2 also equals m1, but one finding per
	// mode is enough.
	if c["duplicate-mode"] != 2 {
		t.Fatalf("want 2 duplicate-mode, got %v", diags)
	}
}

func TestAnalyzeADLUnusedType(t *testing.T) {
	diags := analyzeSrc(t, `
component Used { provide y : s; }
component Unused { provide y : s; }
component Client { require x : s; }
inst u : Used;
inst c : Client;
bind c.x -- u.y;
`)
	c := codes(diags)
	if c["unused-type"] != 1 {
		t.Fatalf("want unused-type, got %v", diags)
	}
}

func TestAnalyzeADLReboundPort(t *testing.T) {
	diags := analyzeSrc(t, `
component A { require x : s; }
component B { provide y : s; }
inst a : A;
inst b : B;
inst b2 : B;
bind a.x -- b.y;
bind a.x -- b2.y;
`)
	if codes(diags)["rebound-port"] != 1 {
		t.Fatalf("want rebound-port, got %v", diags)
	}
}

func TestAnalyzeADLUnknownTypePositioned(t *testing.T) {
	diags := analyzeSrc(t, `inst a : Ghost;`)
	if len(diags) == 0 || diags[0].Code != "unknown-type" || diags[0].Line != 1 {
		t.Fatalf("got %v", diags)
	}
}

package lint

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/monitor"
)

// AnalyzerRules tags diagnostics from the constraint-rule pass.
const AnalyzerRules = "rules"

// MetricInfo declares one metric of the monitor vocabulary: its
// publishing unit and its value range. Rules are type-checked against
// this — the paper's monitors publish in fixed units ("processor-util
// > 90 %", "bandwidth ... Kbps"), so a rule comparing against a
// different unit, or against a value no monitor can ever report, is a
// configuration bug detectable before the session manager runs.
type MetricInfo struct {
	Unit string
	// Min/Max bound the values the monitor can publish; ±Inf means
	// unbounded on that side.
	Min, Max float64
}

// Vocabulary maps metric names to their declared info.
type Vocabulary map[string]MetricInfo

// DefaultVocabulary returns the well-known metric vocabulary of
// internal/monitor, with the units and ranges the repo's monitors
// publish in.
func DefaultVocabulary() Vocabulary {
	inf := math.Inf(1)
	return Vocabulary{
		monitor.MetricProcessorUtil: {Unit: "%", Min: 0, Max: 100},
		monitor.MetricBattery:       {Unit: "%", Min: 0, Max: 100},
		monitor.MetricBandwidth:     {Unit: "Kbps", Min: 0, Max: inf},
		monitor.MetricRequestRate:   {Unit: "", Min: 0, Max: inf},
		monitor.MetricCapacity:      {Unit: "", Min: 0, Max: inf},
		monitor.MetricLoad:          {Unit: "", Min: 0, Max: inf},
		monitor.MetricDistance:      {Unit: "", Min: 0, Max: inf},
		monitor.MetricLatency:       {Unit: "ms", Min: 0, Max: inf},
		monitor.MetricFreeMemory:    {Unit: "KiB", Min: 0, Max: inf},
	}
}

// Clone returns a copy of the vocabulary.
func (v Vocabulary) Clone() Vocabulary {
	out := make(Vocabulary, len(v))
	for k, i := range v {
		out[k] = i
	}
	return out
}

// Names returns the vocabulary's metric names, sorted.
func (v Vocabulary) Names() []string {
	out := make([]string, 0, len(v))
	for k := range v {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RuleLine is one rule positioned in a rule-set source file. Priority
// follows constraint.PrioritisedRule (lower = evaluated earlier); ID
// breaks priority ties by declaration order.
type RuleLine struct {
	Line int
	// ColOff is the byte offset of the rule text within its source
	// line (non-zero when a priority prefix precedes it).
	ColOff   int
	ID       int
	Priority int
	Rule     *constraint.Rule
}

// AnalyzeRules runs the constraint-rule static analysis over an
// ordered rule set:
//
//   - vocabulary type-check: every metric a condition reads must be
//     declared, and bound units must match the metric's publishing
//     unit (error);
//   - constant folding / interval analysis: a comparison band that is
//     unsatisfiable (`x > 50 < 30`), a guard contradicting itself
//     across an `and` (`x > 90 and x < 10`), or a guard outside the
//     metric's declared range (`processor-util > 150 %`) can never
//     fire (error); a guard implied by the metric's range alone
//     (`processor-util >= 0`) always fires, making any else-branch
//     dead (warning);
//   - shadowing: a rule is dead if an earlier (higher-priority) rule
//     always produces a decision (Select, or a guard with an else),
//     or if its guard implies an earlier else-less rule's guard, so
//     the earlier rule always claims the decision first (warning).
//
// vocab nil means DefaultVocabulary.
func AnalyzeRules(file string, rules []RuleLine, vocab Vocabulary) []Diagnostic {
	if vocab == nil {
		vocab = DefaultVocabulary()
	}
	a := &ruleAnalysis{file: file, vocab: vocab}

	ordered := append([]RuleLine(nil), rules...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Priority != ordered[j].Priority {
			return ordered[i].Priority < ordered[j].Priority
		}
		return ordered[i].ID < ordered[j].ID
	})

	summaries := make([]condSummary, len(ordered))
	for i, rl := range ordered {
		summaries[i] = a.analyzeRule(rl)
	}
	a.analyzeShadowing(ordered, summaries)

	Sort(a.diags)
	return a.diags
}

type ruleAnalysis struct {
	file  string
	vocab Vocabulary
	diags []Diagnostic
}

func (a *ruleAnalysis) errorf(rl RuleLine, pos int, code, format string, args ...any) {
	a.diags = append(a.diags, Errorf(a.file, rl.Line, colFor(rl, pos), AnalyzerRules, code, format, args...))
}

func (a *ruleAnalysis) warnf(rl RuleLine, pos int, code, format string, args ...any) {
	a.diags = append(a.diags, Warnf(a.file, rl.Line, colFor(rl, pos), AnalyzerRules, code, format, args...))
}

// colFor converts a rule-source byte offset to a 1-based column in
// the rule's file line.
func colFor(rl RuleLine, pos int) int {
	if pos < 0 {
		return 0
	}
	return rl.ColOff + pos + 1
}

// triState is the constant-folding lattice.
type triState int

const (
	triUnknown triState = iota
	triTrue
	triFalse
)

// condSummary is the folded shape of one rule's guard.
type condSummary struct {
	// verdict is the guard folded against the vocabulary ranges.
	verdict triState
	// andOnly is true when the guard is a pure conjunction of metric
	// conditions (no `or`), which is when interval implication between
	// rules is decidable.
	andOnly bool
	// metrics maps "metric@source" to the guard's intersected interval
	// for it (bounds only, not range-clipped). Valid when andOnly.
	metrics map[string]interval
	// hasNE notes a != bound anywhere, which blocks implication
	// reasoning.
	hasNE bool
	// alwaysDecides is true when evaluating the rule always yields a
	// decision: Select rules and guarded rules with an else branch.
	alwaysDecides bool
}

// analyzeRule checks one rule and returns its guard summary.
func (a *ruleAnalysis) analyzeRule(rl RuleLine) condSummary {
	r := rl.Rule
	sum := condSummary{verdict: triUnknown, andOnly: true, metrics: map[string]interval{}}
	if r == nil {
		return sum
	}
	if r.Select != nil {
		a.checkCall(rl, r.Select)
		sum.alwaysDecides = true
		sum.verdict = triTrue
		return sum
	}
	if r.Then != nil && r.Then.Call != nil {
		a.checkCall(rl, r.Then.Call)
	}
	if r.Else != nil && r.Else.Call != nil {
		a.checkCall(rl, r.Else.Call)
	}
	sum.alwaysDecides = r.Else != nil
	before := len(a.diags)
	sum.verdict = a.foldCond(rl, r.Cond, &sum)
	condAlreadyReported := len(a.diags) > before

	switch sum.verdict {
	case triFalse:
		if condAlreadyReported {
			break // the offending comparison was already reported
		}
		if r.Else == nil {
			a.errorf(rl, condPos(r.Cond), "unsatisfiable",
				"guard %s can never hold, so the rule never fires", r.Cond)
		} else {
			a.errorf(rl, condPos(r.Cond), "unsatisfiable",
				"guard %s can never hold; the then-branch is dead and only the else-branch runs", r.Cond)
		}
	case triTrue:
		if r.Else != nil {
			a.warnf(rl, condPos(r.Cond), "always-true",
				"guard %s always holds, so the else-branch is dead", r.Cond)
		} else {
			a.warnf(rl, condPos(r.Cond), "always-true",
				"guard %s always holds; the rule is unconditional", r.Cond)
		}
	}
	if sum.verdict != triUnknown {
		// A constant guard decides (or not) independent of metrics.
		sum.alwaysDecides = sum.alwaysDecides || sum.verdict == triTrue
	}

	// Cross-condition contradiction inside a conjunction: each metric
	// condition satisfiable alone, but their intersection empty.
	if sum.andOnly && sum.verdict == triUnknown {
		for key, iv := range sum.metrics {
			if iv.empty() {
				a.errorf(rl, condPos(r.Cond), "contradictory-guard",
					"conjunction constrains %s to an empty interval; the guard can never hold", key)
				sum.verdict = triFalse
			}
		}
	}
	return sum
}

// foldCond folds a condition tree, accumulating per-metric intervals
// into sum and emitting per-condition diagnostics.
func (a *ruleAnalysis) foldCond(rl RuleLine, c constraint.Cond, sum *condSummary) triState {
	switch c := c.(type) {
	case *constraint.MetricCond:
		return a.foldMetricCond(rl, c, sum)
	case *constraint.BoolCond:
		l := a.foldCond(rl, c.L, sum)
		r := a.foldCond(rl, c.R, sum)
		if c.OpAnd {
			switch {
			case l == triFalse || r == triFalse:
				return triFalse
			case l == triTrue && r == triTrue:
				return triTrue
			}
			return triUnknown
		}
		sum.andOnly = false
		switch {
		case l == triTrue || r == triTrue:
			return triTrue
		case l == triFalse && r == triFalse:
			return triFalse
		}
		return triUnknown
	default:
		sum.andOnly = false
		return triUnknown
	}
}

// foldMetricCond type-checks one metric comparison and folds it
// against the vocabulary range.
func (a *ruleAnalysis) foldMetricCond(rl RuleLine, c *constraint.MetricCond, sum *condSummary) triState {
	info, known := a.vocab[c.Metric]
	if !known {
		a.errorf(rl, c.Pos, "unknown-metric",
			"metric %q is not in the monitor vocabulary (known: %s)",
			c.Metric, strings.Join(a.vocab.Names(), ", "))
	}

	iv := fullInterval()
	neBounds := []constraint.Bound{}
	for _, b := range c.Bounds {
		if known && info.Unit != "" && b.Unit != "" && b.Unit != info.Unit {
			a.errorf(rl, b.Pos, "unit-mismatch",
				"metric %q is published in %s, but the bound compares against %s",
				c.Metric, info.Unit, b.Unit)
		}
		if b.Op == constraint.OpNE {
			neBounds = append(neBounds, b)
			sum.hasNE = true
			continue
		}
		iv = iv.intersect(boundInterval(b))
	}

	// The band itself unsatisfiable, regardless of the metric's range:
	// `bandwidth > 50 < 30`.
	if iv.empty() {
		a.errorf(rl, c.Pos, "unsatisfiable",
			"comparison band on %q is empty: %s", c.Metric, c)
		return triFalse
	}

	// Merge into the conjunction's per-metric interval map.
	key := c.Metric
	if c.Source != "" {
		key += "@" + c.Source
	}
	if prev, ok := sum.metrics[key]; ok {
		sum.metrics[key] = prev.intersect(iv)
	} else {
		sum.metrics[key] = iv
	}

	if !known {
		return triUnknown
	}
	rng := interval{lo: info.Min, hi: info.Max}

	// NE against a value outside the declared range is vacuously true;
	// a range pinned to exactly the NE value is always false.
	neVerdict := triTrue
	for _, b := range neBounds {
		switch {
		case b.Value < rng.lo || b.Value > rng.hi:
			// vacuously true; keep folding
		case rng.lo == rng.hi && rng.lo == b.Value:
			a.errorf(rl, b.Pos, "unsatisfiable",
				"metric %q is always %g, so %s never holds", c.Metric, b.Value, c)
			return triFalse
		default:
			neVerdict = triUnknown
		}
	}

	clipped := iv.intersect(rng)
	if clipped.empty() {
		a.errorf(rl, c.Pos, "out-of-range",
			"%s can never hold: %q ranges over [%g, %g]", c, c.Metric, info.Min, info.Max)
		return triFalse
	}
	if iv.contains(rng) && neVerdict == triTrue {
		return triTrue
	}
	return triUnknown
}

// checkCall validates a builtin invocation's candidate list.
func (a *ruleAnalysis) checkCall(rl RuleLine, c *constraint.Call) {
	seen := map[string]int{}
	for i, t := range c.Args {
		if prev, dup := seen[t.String()]; dup {
			a.warnf(rl, c.Pos, "duplicate-candidate",
				"%s lists candidate %s twice (positions %d and %d)", c.Fn, t, prev+1, i+1)
		} else {
			seen[t.String()] = i
		}
	}
	if c.Fn == "SWITCH" && len(seen) == 1 {
		a.warnf(rl, c.Pos, "degenerate-switch",
			"SWITCH with a single candidate cannot migrate anywhere else")
	}
}

// analyzeShadowing reports rules that can never produce the first
// decision under RuleSet.FirstDecision's priority-ordered semantics.
func (a *ruleAnalysis) analyzeShadowing(ordered []RuleLine, sums []condSummary) {
	for j := 1; j < len(ordered); j++ {
		for i := 0; i < j; i++ {
			ri, rj := ordered[i], ordered[j]
			si, sj := sums[i], sums[j]
			if si.alwaysDecides {
				a.warnf(rj, 0, "dead-rule",
					"rule is unreachable: the rule at line %d (priority %d) always produces a decision first",
					ri.Line, ri.Priority)
				break
			}
			if implies(sj, si) {
				a.warnf(rj, 0, "shadowed-rule",
					"rule is shadowed: whenever its guard holds, the guard of the rule at line %d (priority %d) also holds and decides first",
					ri.Line, ri.Priority)
				break
			}
		}
	}
}

// implies reports whether sj's guard implies si's guard: both must be
// pure conjunctions without != bounds, and every metric si constrains
// must be constrained at least as tightly by sj.
func implies(sj, si condSummary) bool {
	if !si.andOnly || !sj.andOnly || si.hasNE || sj.hasNE {
		return false
	}
	if len(si.metrics) == 0 {
		return false
	}
	for key, ivI := range si.metrics {
		ivJ, ok := sj.metrics[key]
		if !ok || !ivI.contains(ivJ) {
			return false
		}
	}
	return true
}

// condPos returns the source position of the leftmost metric
// condition in a guard, for rule-level diagnostics.
func condPos(c constraint.Cond) int {
	switch c := c.(type) {
	case *constraint.MetricCond:
		return c.Pos
	case *constraint.BoolCond:
		return condPos(c.L)
	}
	return 0
}

// ---------------------------------------------------------------------------
// Intervals.

// interval is a possibly-open numeric interval used for constant
// folding of comparison bands.
type interval struct {
	lo, hi         float64
	loOpen, hiOpen bool
}

func fullInterval() interval { return interval{lo: math.Inf(-1), hi: math.Inf(1)} }

// boundInterval converts a (non-NE) comparison bound to an interval.
func boundInterval(b constraint.Bound) interval {
	iv := fullInterval()
	switch b.Op {
	case constraint.OpLT:
		iv.hi, iv.hiOpen = b.Value, true
	case constraint.OpLE:
		iv.hi = b.Value
	case constraint.OpGT:
		iv.lo, iv.loOpen = b.Value, true
	case constraint.OpGE:
		iv.lo = b.Value
	case constraint.OpEQ:
		iv.lo, iv.hi = b.Value, b.Value
	}
	return iv
}

func (iv interval) intersect(o interval) interval {
	out := iv
	if o.lo > out.lo || (o.lo == out.lo && o.loOpen) {
		out.lo, out.loOpen = o.lo, o.loOpen
	}
	if o.hi < out.hi || (o.hi == out.hi && o.hiOpen) {
		out.hi, out.hiOpen = o.hi, o.hiOpen
	}
	return out
}

func (iv interval) empty() bool {
	if iv.lo > iv.hi {
		return true
	}
	return iv.lo == iv.hi && (iv.loOpen || iv.hiOpen)
}

// contains reports iv ⊇ o for non-empty o.
func (iv interval) contains(o interval) bool {
	loOK := iv.lo < o.lo || (iv.lo == o.lo && (!iv.loOpen || o.loOpen))
	hiOK := iv.hi > o.hi || (iv.hi == o.hi && (!iv.hiOpen || o.hiOpen))
	return loOK && hiOK
}

// ---------------------------------------------------------------------------
// Rule-set source files.

// ParseRulesFile parses a rule-set source file: one rule per line,
// `#` or `//` comments, optional `declare` vocabulary lines and an
// optional numeric priority prefix —
//
//	declare processor-util % 0 100
//	10: If processor-util > 90 % then SWITCH(node1.q, node2.q)
//	If bandwidth > 30 < 100 Kbps then node3.videohalf.ram
//
// Undeclared metrics fall back to the DefaultVocabulary entries.
// Syntax problems are returned as positioned diagnostics; well-formed
// rules are returned even when other lines are broken.
func ParseRulesFile(file, src string) ([]RuleLine, Vocabulary, []Diagnostic) {
	vocab := DefaultVocabulary()
	var rules []RuleLine
	var diags []Diagnostic
	id := 0
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if trimmed == "declare" || strings.HasPrefix(trimmed, "declare ") {
			if d, ok := parseDeclare(file, lineNo+1, trimmed, vocab); !ok {
				diags = append(diags, d)
			}
			continue
		}
		ruleText := trimmed
		colOff := strings.Index(raw, trimmed)
		priority := id
		if head, rest, found := strings.Cut(trimmed, ":"); found {
			if p, err := strconv.Atoi(strings.TrimSpace(head)); err == nil {
				priority = p
				ruleText = strings.TrimSpace(rest)
				colOff = strings.Index(raw, ruleText)
			}
		}
		r, err := constraint.Parse(ruleText)
		if err != nil {
			col := colOff + 1
			if se, ok := err.(*constraint.SyntaxError); ok {
				col = colOff + se.Pos + 1
			}
			diags = append(diags, Errorf(file, lineNo+1, col, AnalyzerRules, "syntax", "%v", err))
			continue
		}
		rules = append(rules, RuleLine{Line: lineNo + 1, ColOff: colOff, ID: id, Priority: priority, Rule: r})
		id++
	}
	return rules, vocab, diags
}

// parseDeclare handles `declare <metric> [<unit>|-] [<min> <max>]`.
func parseDeclare(file string, line int, text string, vocab Vocabulary) (Diagnostic, bool) {
	fields := strings.Fields(text)[1:]
	if len(fields) == 0 || len(fields) == 3 || len(fields) > 4 {
		return Errorf(file, line, 1, AnalyzerRules, "bad-declare",
			"declare wants: declare <metric> [<unit>|-] [<min> <max>]"), false
	}
	info := MetricInfo{Min: math.Inf(-1), Max: math.Inf(1)}
	if len(fields) >= 2 && fields[1] != "-" {
		info.Unit = fields[1]
	}
	if len(fields) == 4 {
		lo, err1 := strconv.ParseFloat(fields[2], 64)
		hi, err2 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil || lo > hi {
			return Errorf(file, line, 1, AnalyzerRules, "bad-declare",
				"declare %s: min/max must be numbers with min <= max", fields[0]), false
		}
		info.Min, info.Max = lo, hi
	}
	vocab[fields[0]] = info
	return Diagnostic{}, true
}

// AnalyzeRuleSet adapts a programmatically built rule set (no source
// file) for analysis: diagnostics carry the given virtual file name
// and rule indices instead of line numbers.
func AnalyzeRuleSet(name string, rules []constraint.PrioritisedRule, vocab Vocabulary) []Diagnostic {
	lines := make([]RuleLine, len(rules))
	for i, r := range rules {
		lines[i] = RuleLine{Line: i + 1, ID: r.ID, Priority: r.Priority, Rule: r.Rule}
	}
	if name == "" {
		name = "<ruleset>"
	}
	return AnalyzeRules(name, lines, vocab)
}

package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDiagnosticString(t *testing.T) {
	d := Errorf("a.adl", 12, 3, "adl-graph", "dangling-bind", "unknown instance %q", "q")
	got := d.String()
	want := `a.adl:12:3: error: unknown instance "q" [adl-graph/dangling-bind]`
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	// Position-less diagnostics omit line/col.
	d2 := Warnf("m.rules", 0, 0, "rules", "dead-rule", "unreachable")
	if got := d2.String(); got != "m.rules: warning: unreachable [rules/dead-rule]" {
		t.Fatalf("String() = %q", got)
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{SeverityError, SeverityWarning, SeverityInfo} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Fatalf("round trip %v -> %s -> %v", s, b, back)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &bad); err == nil {
		t.Fatal("want error for unknown severity name")
	}
}

func TestWriteJSONAlwaysArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("empty diagnostics = %q, want []", got)
	}
}

func TestSortOrdersByPosition(t *testing.T) {
	diags := []Diagnostic{
		Warnf("b.adl", 1, 0, "x", "c1", "m"),
		Errorf("a.adl", 9, 2, "x", "c2", "m"),
		Errorf("a.adl", 9, 1, "x", "c3", "m"),
		Warnf("a.adl", 2, 0, "x", "c4", "m"),
	}
	Sort(diags)
	var got []string
	for _, d := range diags {
		got = append(got, d.Code)
	}
	want := "c4,c3,c2,c1"
	if strings.Join(got, ",") != want {
		t.Fatalf("order = %v, want %s", got, want)
	}
}

func TestErrorCount(t *testing.T) {
	diags := []Diagnostic{
		Errorf("f", 1, 0, "x", "a", "m"),
		Warnf("f", 2, 0, "x", "b", "m"),
		Infof("f", 3, 0, "x", "c", "m"),
	}
	if n := ErrorCount(diags); n != 1 {
		t.Fatalf("ErrorCount = %d", n)
	}
	if !HasErrors(diags) {
		t.Fatal("HasErrors = false")
	}
	if HasErrors(diags[1:]) {
		t.Fatal("warnings must not count as errors")
	}
}

package lint

import (
	"fmt"
	"sort"

	"github.com/adm-project/adm/internal/adl"
)

// AnalyzerADL tags diagnostics from the ADL configuration-graph pass.
const AnalyzerADL = "adl-graph"

// AnalyzeADL runs the configuration-graph checks over a parsed ADL
// model: the semantic rules of adl.Model.Validate plus the whole-graph
// properties the Adaptivity Manager assumes hold before it executes a
// reconfiguration plan —
//
//   - dangling bind endpoints (unknown instance, unknown port) and
//     direction/service mismatches, per configuration (error);
//   - require ports left unbound in a configuration (error);
//   - a require port bound more than once in one configuration
//     (error);
//   - instances that participate in no binding in any configuration
//     in which they are active (warning: an isolated node can never
//     serve or consume anything);
//   - component types never instantiated (warning);
//   - modes unreachable via Diff: a mode whose flattened
//     configuration is identical to another mode's (or to the base),
//     so switching to it is an empty reconfiguration plan (warning).
//
// Every diagnostic carries the declaration's source line, so `admlint
// file.adl` findings are clickable.
func AnalyzeADL(file string, m *adl.Model) []Diagnostic {
	a := &adlAnalysis{file: file, m: m, everBound: map[string]bool{}}

	a.checkInstances()

	modes := m.ModeNames()
	if len(modes) == 0 {
		a.checkConfig("base configuration", m.Insts, nil, m.Binds, nil)
	} else {
		for _, mn := range modes {
			mo := m.Modes[mn]
			a.checkConfig(fmt.Sprintf("mode %q", mn), m.Insts, mo.Insts, m.Binds, mo.Binds)
		}
	}

	a.checkNeverBound(modes)
	a.checkUnusedTypes()
	a.checkDuplicateModes(modes)

	Sort(a.diags)
	return a.diags
}

type adlAnalysis struct {
	file  string
	m     *adl.Model
	diags []Diagnostic
	// everBound records instances seen on either side of a binding in
	// any configuration.
	everBound map[string]bool
}

func (a *adlAnalysis) errorf(line, col int, code, format string, args ...any) {
	a.diags = append(a.diags, Errorf(a.file, line, col, AnalyzerADL, code, format, args...))
}

func (a *adlAnalysis) warnf(line, col int, code, format string, args ...any) {
	a.diags = append(a.diags, Warnf(a.file, line, col, AnalyzerADL, code, format, args...))
}

// checkInstances reports unknown types and duplicate instance names
// (within the base, and between a mode and the base or itself — two
// different modes may legitimately reuse a name, as they are never
// co-active).
func (a *adlAnalysis) checkInstances() {
	check := func(where string, insts []adl.InstDecl, seen map[string]int) {
		for _, i := range insts {
			if prev, dup := seen[i.Name]; dup {
				a.errorf(i.Line, 0, "duplicate-instance",
					"%s: instance %q already declared at line %d", where, i.Name, prev)
			} else {
				seen[i.Name] = i.Line
			}
			if _, ok := a.m.Types[i.Type]; !ok {
				a.errorf(i.Line, 0, "unknown-type",
					"%s: instance %q has unknown component type %q", where, i.Name, i.Type)
			}
		}
	}
	base := map[string]int{}
	check("base configuration", a.m.Insts, base)
	for _, mn := range a.m.ModeNames() {
		seen := map[string]int{}
		for k, v := range base {
			seen[k] = v
		}
		check(fmt.Sprintf("mode %q", mn), a.m.Modes[mn].Insts, seen)
	}
}

// checkConfig validates one flattened configuration's binding graph.
func (a *adlAnalysis) checkConfig(where string, baseInsts, modeInsts []adl.InstDecl, baseBinds, modeBinds []adl.BindDecl) {
	insts := map[string]adl.InstDecl{}
	for _, i := range baseInsts {
		insts[i.Name] = i
	}
	for _, i := range modeInsts {
		insts[i.Name] = i
	}
	bound := map[string]int{} // require endpoint -> bind line
	all := append(append([]adl.BindDecl{}, baseBinds...), modeBinds...)
	for _, b := range all {
		from, fromOK := insts[b.From]
		if !fromOK {
			a.errorf(b.Line, 0, "dangling-bind",
				"%s: binding %s: unknown instance %q", where, b, b.From)
		}
		to, toOK := insts[b.To]
		if !toOK {
			a.errorf(b.Line, 0, "dangling-bind",
				"%s: binding %s: unknown instance %q", where, b, b.To)
		}
		if !fromOK || !toOK {
			continue
		}
		a.everBound[b.From] = true
		a.everBound[b.To] = true
		ft, ok := a.m.Types[from.Type]
		if !ok {
			continue // reported by checkInstances
		}
		tt, ok := a.m.Types[to.Type]
		if !ok {
			continue
		}
		fp, ok := ft.Port(b.FromPort)
		if !ok {
			a.errorf(b.Line, 0, "dangling-bind",
				"%s: binding %s: component %q has no port %q", where, b, from.Type, b.FromPort)
			continue
		}
		tp, ok := tt.Port(b.ToPort)
		if !ok {
			a.errorf(b.Line, 0, "dangling-bind",
				"%s: binding %s: component %q has no port %q", where, b, to.Type, b.ToPort)
			continue
		}
		if fp.Provided {
			a.errorf(b.Line, 0, "bind-direction",
				"%s: binding %s: left endpoint %s.%s must be a required port", where, b, b.From, b.FromPort)
		}
		if !tp.Provided {
			a.errorf(b.Line, 0, "bind-direction",
				"%s: binding %s: right endpoint %s.%s must be a provided port", where, b, b.To, b.ToPort)
		}
		if !fp.Provided && tp.Provided && fp.Service != tp.Service {
			a.errorf(b.Line, 0, "service-mismatch",
				"%s: binding %s: interface mismatch: %s.%s requires %q but %s.%s provides %q",
				where, b, b.From, b.FromPort, fp.Service, b.To, b.ToPort, tp.Service)
		}
		if prev, dup := bound[b.Key()]; dup {
			a.errorf(b.Line, 0, "rebound-port",
				"%s: require port %s already bound at line %d", where, b.Key(), prev)
		} else {
			bound[b.Key()] = b.Line
		}
	}
	// Completeness: every require port of every active instance bound.
	names := make([]string, 0, len(insts))
	for n := range insts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		i := insts[n]
		t, ok := a.m.Types[i.Type]
		if !ok {
			continue
		}
		for _, p := range t.Ports {
			if !p.Provided {
				if _, ok := bound[i.Name+"."+p.Name]; !ok {
					a.errorf(i.Line, 0, "unbound-require",
						"%s: require port %s.%s (%s) is unbound", where, i.Name, p.Name, p.Service)
				}
			}
		}
	}
}

// checkNeverBound warns about instances that no configuration ever
// wires to anything.
func (a *adlAnalysis) checkNeverBound(modes []string) {
	report := func(where string, insts []adl.InstDecl) {
		for _, i := range insts {
			t, ok := a.m.Types[i.Type]
			if !ok || len(t.Ports) == 0 || a.everBound[i.Name] {
				continue
			}
			a.warnf(i.Line, 0, "never-bound",
				"%s: instance %q (%s) participates in no binding in any configuration", where, i.Name, i.Type)
		}
	}
	report("base configuration", a.m.Insts)
	for _, mn := range modes {
		report(fmt.Sprintf("mode %q", mn), a.m.Modes[mn].Insts)
	}
}

// checkUnusedTypes warns about component types never instantiated.
func (a *adlAnalysis) checkUnusedTypes() {
	used := map[string]bool{}
	for _, i := range a.m.Insts {
		used[i.Type] = true
	}
	for _, mn := range a.m.ModeNames() {
		for _, i := range a.m.Modes[mn].Insts {
			used[i.Type] = true
		}
	}
	names := make([]string, 0, len(a.m.Types))
	for n := range a.m.Types {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !used[n] {
			a.warnf(a.m.Types[n].Line, 0, "unused-type",
				"component type %q is never instantiated", n)
		}
	}
}

// checkDuplicateModes flags modes unreachable via Diff: switching to
// them from the base or from an earlier mode is an empty plan, so the
// Adaptivity Manager can never observe the mode as a distinct
// configuration.
func (a *adlAnalysis) checkDuplicateModes(modes []string) {
	for i, mn := range modes {
		mo := a.m.Modes[mn]
		if plan, err := a.m.Diff("", mn); err == nil && plan.Empty() {
			a.warnf(mo.Line, 0, "duplicate-mode",
				"mode %q is identical to the base configuration (empty reconfiguration plan)", mn)
			continue
		}
		for _, prev := range modes[:i] {
			if plan, err := a.m.Diff(prev, mn); err == nil && plan.Empty() {
				a.warnf(mo.Line, 0, "duplicate-mode",
					"mode %q is identical to mode %q (empty reconfiguration plan)", mn, prev)
				break
			}
		}
	}
}

// Package lint is the cross-layer static-verification subsystem: one
// shared Diagnostic currency for every load-time check in the stack —
// the SISR control-flow scan over component images (internal/goos),
// the ADL configuration-graph checks (this package, over internal/adl
// models), and the constraint-rule analysis (this package, over
// internal/constraint rules).
//
// The paper's safety argument is entirely load-time: Go!'s scanner
// proves a component image unprivileged *before* it runs (§5.1), and
// the ADL-plus-constraints layer is supposed to make reconfiguration
// "evaluated" rather than discovered at runtime (§3–§4). Every
// analyzer here therefore runs before Instantiate/LoadType and
// reports findings positionally, so tooling (cmd/admlint, cmd/adlc,
// cmd/goscan) and embedders (adm.LintADL etc.) see the same machine-
// readable stream.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Severity grades a diagnostic. Errors make an artifact unloadable
// (admlint exits non-zero); warnings flag suspicious-but-runnable
// constructs; infos are advisory.
type Severity int

// Severity levels, most severe first.
const (
	SeverityError Severity = iota
	SeverityWarning
	SeverityInfo
)

var severityNames = [...]string{"error", "warning", "info"}

func (s Severity) String() string {
	if s >= 0 && int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON emits the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range severityNames {
		if n == name {
			*s = Severity(i)
			return nil
		}
	}
	return fmt.Errorf("lint: unknown severity %q", name)
}

// Diagnostic is one analyzer finding, positioned in its source
// artifact. Line and Col are 1-based; zero means "position unknown"
// (e.g. a whole-model finding). Analyzer names the pass family
// ("sisr-cfa", "adl-graph", "rules"); Code is a stable machine-
// readable finding kind within it.
type Diagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col,omitempty"`
	Severity Severity `json:"severity"`
	Analyzer string   `json:"analyzer"`
	Code     string   `json:"code"`
	Message  string   `json:"message"`
}

// String renders the conventional file:line:col: severity: message
// form used by compilers, with the analyzer/code tag appended.
func (d Diagnostic) String() string {
	var b strings.Builder
	b.WriteString(d.File)
	if d.Line > 0 {
		fmt.Fprintf(&b, ":%d", d.Line)
		if d.Col > 0 {
			fmt.Fprintf(&b, ":%d", d.Col)
		}
	}
	fmt.Fprintf(&b, ": %s: %s [%s/%s]", d.Severity, d.Message, d.Analyzer, d.Code)
	return b.String()
}

// Errorf builds a positioned error diagnostic.
func Errorf(file string, line, col int, analyzer, code, format string, args ...any) Diagnostic {
	return Diagnostic{File: file, Line: line, Col: col, Severity: SeverityError,
		Analyzer: analyzer, Code: code, Message: fmt.Sprintf(format, args...)}
}

// Warnf builds a positioned warning diagnostic.
func Warnf(file string, line, col int, analyzer, code, format string, args ...any) Diagnostic {
	return Diagnostic{File: file, Line: line, Col: col, Severity: SeverityWarning,
		Analyzer: analyzer, Code: code, Message: fmt.Sprintf(format, args...)}
}

// Infof builds a positioned info diagnostic.
func Infof(file string, line, col int, analyzer, code, format string, args ...any) Diagnostic {
	return Diagnostic{File: file, Line: line, Col: col, Severity: SeverityInfo,
		Analyzer: analyzer, Code: code, Message: fmt.Sprintf(format, args...)}
}

// Sort orders diagnostics by (file, line, col, severity, code) so
// output is deterministic regardless of analyzer scheduling.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		return a.Code < b.Code
	})
}

// ErrorCount returns the number of error-severity diagnostics.
func ErrorCount(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Severity == SeverityError {
			n++
		}
	}
	return n
}

// HasErrors reports whether any diagnostic is an error.
func HasErrors(diags []Diagnostic) bool { return ErrorCount(diags) > 0 }

// WriteText writes one diagnostic per line in String form.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the diagnostics as an indented JSON array (always
// an array, never null, so consumers can parse unconditionally).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

package operators

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/adm-project/adm/internal/storage"
)

// sortValueCorpus covers every comparator band plus the float edge
// cases the typed keys must reproduce: NaN, -0/+0, mixed numeric
// kinds, bools, strings, NULLs.
func sortValueCorpus() []storage.Value {
	return []storage.Value{
		storage.NullValue(),
		storage.IntValue(-3), storage.IntValue(0), storage.IntValue(7),
		storage.FloatValue(math.NaN()),
		storage.FloatValue(math.Copysign(0, -1)), storage.FloatValue(0),
		storage.FloatValue(-2.5), storage.FloatValue(7), storage.FloatValue(math.Inf(1)),
		storage.BoolValue(false), storage.BoolValue(true),
		storage.StringValue(""), storage.StringValue("a"), storage.StringValue("b"),
	}
}

// TestSortKeyMatchesCompare checks the extracted-key comparator is
// exactly storage.Compare over the full corpus cross product, except
// for NaN: Compare deems NaN equal to every number (non-transitive, so
// unusable for sorting); compareKeys instead pins NaN after all other
// numerics and equal only to itself.
func TestSortKeyMatchesCompare(t *testing.T) {
	vals := sortValueCorpus()
	isNaNNum := func(v storage.Value) bool {
		f, ok := v.AsFloat()
		return ok && math.IsNaN(f)
	}
	for _, a := range vals {
		for _, b := range vals {
			got := compareKeys(sortKeyOf(a), sortKeyOf(b))
			if isNaNNum(a) || isNaNNum(b) {
				var want int
				switch {
				case isNaNNum(a) && isNaNNum(b):
					want = 0
				case isNaNNum(a) && sortKeyOf(b).class == classNum:
					want = 1
				case isNaNNum(b) && sortKeyOf(a).class == classNum:
					want = -1
				default:
					want = storage.Compare(a, b) // cross-class: kind tag, same as Compare
				}
				if got != want {
					t.Errorf("compareKeys(%v, %v) = %d, want %d (NaN refinement)", a, b, got, want)
				}
				continue
			}
			want := storage.Compare(a, b)
			if got != want {
				t.Errorf("compareKeys(%v, %v) = %d, Compare = %d", a, b, got, want)
			}
		}
	}
}

// TestCompareKeysTransitive brute-forces transitivity over corpus
// triples — the property storage.Compare lacks (NaN) and the sort
// comparator must have. Bools and strings are checked in separate
// sub-corpora: a column holding bools AND strings AND numbers at once
// has a kind-tag cycle inherited from Compare (false < 7 < "a" <
// false), but the typed catalog cannot produce such a column, so the
// sort only ever sees NULLs plus one comparable class.
func TestCompareKeysTransitive(t *testing.T) {
	full := sortValueCorpus()
	sub := func(drop storage.ValueKind) []storage.Value {
		var out []storage.Value
		for _, v := range full {
			if v.Kind != drop {
				out = append(out, v)
			}
		}
		return out
	}
	for _, vals := range [][]storage.Value{sub(storage.KindBool), sub(storage.KindString)} {
		for _, a := range vals {
			for _, b := range vals {
				for _, c := range vals {
					ka, kb, kc := sortKeyOf(a), sortKeyOf(b), sortKeyOf(c)
					if compareKeys(ka, kb) <= 0 && compareKeys(kb, kc) <= 0 && compareKeys(ka, kc) > 0 {
						t.Fatalf("compareKeys not transitive on %v <= %v <= %v", a, b, c)
					}
				}
			}
		}
	}
}

// TestTotalTupleCompareIsTotal checks the tie-break comparator only
// reports 0 for content-identical rows (the property the byte-for-byte
// determinism guarantee rests on).
func TestTotalTupleCompareIsTotal(t *testing.T) {
	vals := sortValueCorpus()
	for i, a := range vals {
		for j, b := range vals {
			c := totalValueCompare(a, b)
			if cr := totalValueCompare(b, a); cr != -c {
				t.Fatalf("totalValueCompare not antisymmetric on %v/%v: %d vs %d", a, b, c, cr)
			}
			if i == j && c != 0 {
				t.Fatalf("totalValueCompare(%v, itself) = %d", a, c)
			}
			if i != j && c == 0 && a.String() != b.String() {
				// Distinct renderable contents must be distinguished.
				t.Fatalf("totalValueCompare(%v, %v) = 0 for distinct values", a, b)
			}
		}
	}
}

// sortedRef sorts tuples with the shared comparator via the serial
// Sort operator — the reference every parallel path must match.
func sortedRef(t *testing.T, tuples []storage.Tuple, col int, desc bool) []storage.Tuple {
	t.Helper()
	out, err := Drain(NewSort(NewMemScan(tuples), col, desc))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func renderRows(rows []storage.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var parts []string
		for _, v := range r {
			parts = append(parts, fmt.Sprintf("%d:%s", v.Kind, v.String()))
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func requireSameRows(t *testing.T, label string, got, want []storage.Tuple) {
	t.Helper()
	g, w := renderRows(got), renderRows(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d = %q, want %q", label, i, g[i], w[i])
		}
	}
}

// messyTuples builds n rows over a key column with heavy duplicates
// and float edge cases, plus a distinguishing payload column.
func messyTuples(n int) []storage.Tuple {
	rng := rand.New(rand.NewSource(42))
	keys := []storage.Value{
		storage.IntValue(1), storage.IntValue(1), storage.IntValue(2),
		storage.FloatValue(1), // ties the int 1 under Compare, differs in bytes
		storage.FloatValue(math.NaN()),
		storage.FloatValue(math.Copysign(0, -1)), storage.FloatValue(0),
		storage.NullValue(),
	}
	out := make([]storage.Tuple, n)
	for i := range out {
		out[i] = storage.Tuple{
			keys[rng.Intn(len(keys))],
			storage.IntValue(int64(rng.Intn(5))), // duplicated payloads too
			storage.IntValue(int64(i)),
		}
	}
	return out
}

// TestParallelSortMatchesSerial sweeps worker counts and batch sizes:
// the loser-tree merge of worker runs must emit byte-for-byte the
// serial Sort sequence, duplicates and NaN/-0/NULL keys included.
func TestParallelSortMatchesSerial(t *testing.T) {
	tuples := messyTuples(3000)
	for _, desc := range []bool{false, true} {
		want := sortedRef(t, tuples, 0, desc)
		for _, w := range []int{1, 2, 4, 8} {
			for _, batch := range []int{1, 64, 1024} {
				m, err := ParallelSortBatches(NewSliceBatches(tuples, batch), 0, desc,
					ParallelConfig{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				got, err := Drain(m)
				if err != nil {
					t.Fatal(err)
				}
				requireSameRows(t, fmt.Sprintf("desc=%v w=%d batch=%d", desc, w, batch), got, want)
			}
		}
	}
}

// TestParallelTopKMatchesSortPrefix checks Top-K equals the first k of
// the full sort at every k regime (below / at / above the input size)
// and that k<=0 is empty without consuming the source.
func TestParallelTopKMatchesSortPrefix(t *testing.T) {
	tuples := messyTuples(500)
	for _, desc := range []bool{false, true} {
		full := sortedRef(t, tuples, 0, desc)
		for _, k := range []int{1, 7, 100, len(tuples), len(tuples) + 50} {
			want := full
			if k < len(want) {
				want = want[:k]
			}
			for _, w := range []int{1, 3, 8} {
				got, err := ParallelTopKBatches(NewSliceBatches(tuples, 64), 0, desc, k,
					ParallelConfig{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				requireSameRows(t, fmt.Sprintf("desc=%v k=%d w=%d", desc, k, w), got, want)
			}
		}
	}
	src := &countingBatches{src: NewSliceBatches(tuples, 64)}
	got, err := ParallelTopKBatches(src, 0, false, 0, ParallelConfig{Workers: 4})
	if err != nil || len(got) != 0 {
		t.Fatalf("k=0: got %d rows, err %v", len(got), err)
	}
	if src.claims.Load() != 0 {
		t.Fatalf("k=0 consumed %d batches from the source", src.claims.Load())
	}
}

// TestSerialTopKMatchesSortLimit checks the serial TopK operator
// against Sort+prefix, including the k=0 short-circuit.
func TestSerialTopKMatchesSortLimit(t *testing.T) {
	tuples := messyTuples(400)
	full := sortedRef(t, tuples, 0, false)
	for _, k := range []int{0, 1, 13, 400, 999} {
		got, err := Drain(NewTopK(NewMemScan(tuples), 0, false, k))
		if err != nil {
			t.Fatal(err)
		}
		want := full
		if k < len(want) {
			want = want[:k]
		}
		requireSameRows(t, fmt.Sprintf("k=%d", k), got, want)
	}
}

// TestLoserTreeMergesRandomRuns exercises the tournament directly with
// uneven (and empty) runs.
func TestLoserTreeMergesRandomRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all []storage.Tuple
	var runs []sortRun
	for i, size := range []int{0, 1, 17, 256, 3, 0, 40} {
		var r sortRun
		tuples := make([]storage.Tuple, size)
		for j := range tuples {
			tuples[j] = storage.Tuple{storage.IntValue(int64(rng.Intn(9))), storage.IntValue(int64(i*1000 + j))}
		}
		r.absorb(tuples, 0)
		r.sort(false)
		runs = append(runs, r)
		all = append(all, tuples...)
	}
	want := sortedRef(t, all, 0, false)
	var got []storage.Tuple
	lt := newLoserTree(runs, false)
	for {
		tu, ok := lt.next()
		if !ok {
			break
		}
		got = append(got, tu)
	}
	requireSameRows(t, "loser tree", got, want)
}

// TestSortReleasesBuffer checks the satellite fix: the materialised
// buffer is dropped at exhaustion and on Close, not pinned for the
// iterator's lifetime.
func TestSortReleasesBuffer(t *testing.T) {
	s := NewSort(NewMemScan(messyTuples(50)), 0, false)
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if s.buf != nil {
		t.Fatal("Sort retained buf after exhaustion")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.buf != nil {
		t.Fatal("Sort retained buf after Close")
	}
	// Close-before-exhaustion must release too.
	s2 := NewSort(NewMemScan(messyTuples(50)), 0, false)
	if err := s2.Open(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if s2.buf != nil {
		t.Fatal("Sort retained buf after early Close")
	}
}

// countingBatches counts claims on an underlying source.
type countingBatches struct {
	src    BatchSource
	claims atomic.Int64
}

func (c *countingBatches) NextBatch(b *Batch) (int, error) {
	c.claims.Add(1)
	return c.src.NextBatch(b)
}

// TestDrainParallelLimitStopsClaiming checks the cooperative LIMIT
// quota: once the quota is covered, workers stop claiming batches, so
// a LIMIT 10 over a huge source never drains it.
func TestDrainParallelLimitStopsClaiming(t *testing.T) {
	const rows, batch, limit, workers = 100_000, 100, 10, 4
	tuples := make([]storage.Tuple, rows)
	for i := range tuples {
		tuples[i] = storage.Tuple{storage.IntValue(int64(i))}
	}
	src := &countingBatches{src: NewSliceBatches(tuples, batch)}
	got, err := DrainParallelBatches(src, ParallelConfig{Workers: workers, Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < limit {
		t.Fatalf("drained %d rows, want at least %d", len(got), limit)
	}
	// Each worker may have one batch in flight when the quota fills;
	// anything near the full source means cancellation did not work.
	maxClaims := int64(2*workers + limit/batch + 1)
	if c := src.claims.Load(); c > maxClaims {
		t.Fatalf("source claimed %d batches, want <= %d (early termination broken)", c, maxClaims)
	}
}

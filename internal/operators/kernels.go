// Vectorized predicate kernels: compiled column-vs-constant conjuncts
// evaluated over a batch's selection vector without per-row closure
// dispatch, plus the zone-map page-prune decision that runs before a
// page is even decoded. The kernels replicate the boxed predicate's
// semantics EXACTLY — NULL fails every comparison (even !=), numeric
// kinds compare through their float64 image (int64 precision loss
// included), NaN compares equal to every numeric, mixed string/number
// order by kind tag — by reducing each operator to three precomputed
// pass bits indexed by the sign of storage.Compare. Byte-identical
// results with the boxed path are a hard invariant, enforced by the
// determinism matrix in the query package.
package operators

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"github.com/adm-project/adm/internal/storage"
)

// KernelOp is a compiled predicate operator: the query layer's
// comparison set plus the SQL null tests.
type KernelOp int

// Kernel operators. The comparison six mirror the query layer's CmpOp
// in order; the null tests never consult the literal.
const (
	KernEQ KernelOp = iota
	KernNE
	KernLT
	KernGT
	KernLE
	KernGE
	KernIsNull
	KernNotNull
)

// passBits expands a comparison operator into its acceptance of the
// three Compare outcomes: (cmp<0, cmp==0, cmp>0). Exactly CmpOp.Eval,
// precomputed.
func (o KernelOp) passBits() (lt, eq, gt bool) {
	switch o {
	case KernEQ:
		return false, true, false
	case KernNE:
		return true, false, true
	case KernLT:
		return true, false, false
	case KernGT:
		return false, false, true
	case KernLE:
		return true, true, false
	case KernGE:
		return false, true, true
	}
	return false, false, false
}

// ColPred is one compilable conjunct: column Col of the scanned tuple,
// compared against the constant Lit. Name is the EXPLAIN rendering;
// Cost feeds the eddy rank (uniform 1 when unknown).
type ColPred struct {
	Col  int
	Op   KernelOp
	Lit  storage.Value
	Name string
	Cost float64
}

// compiledPred is a ColPred with the literal pre-classified and the
// operator expanded to pass bits, plus windowless observed-selectivity
// counters (shared across scan workers, hence atomic).
type compiledPred struct {
	ColPred
	passLT, passEQ, passGT bool
	litNull                bool
	litNum                 bool // AsFloat ok
	litNaN                 bool
	litStr                 bool
	litF                   float64
	litS                   string

	evals  atomic.Int64
	passes atomic.Int64
}

func compilePred(p ColPred) *compiledPred {
	c := &compiledPred{ColPred: p}
	if c.Cost <= 0 {
		c.Cost = 1
	}
	c.passLT, c.passEQ, c.passGT = p.Op.passBits()
	c.litNull = p.Lit.Kind == storage.KindNull
	if f, ok := p.Lit.AsFloat(); ok {
		c.litNum, c.litF, c.litNaN = true, f, math.IsNaN(f)
	}
	if p.Lit.Kind == storage.KindString {
		c.litStr, c.litS = true, p.Lit.Str
	}
	return c
}

// slowKeep is the reference row evaluation: boxed semantics verbatim
// (NULL fails, then pass bit by Compare sign). The typed loops in
// filterSel shortcut the common kind pairs and fall back here for
// cross-kind rows, so every row evaluates identically to the boxed
// predicate by construction.
func (p *compiledPred) slowKeep(v storage.Value) bool {
	switch p.Op {
	case KernIsNull:
		return v.Kind == storage.KindNull
	case KernNotNull:
		return v.Kind != storage.KindNull
	}
	if v.Kind == storage.KindNull {
		return false
	}
	cmp := storage.Compare(v, p.Lit)
	switch {
	case cmp < 0:
		return p.passLT
	case cmp > 0:
		return p.passGT
	}
	return p.passEQ
}

// filterSel compacts sel to the rows passing this predicate. The typed
// fast paths compare int64/float64 columns against a numeric literal
// (through the float image, replicating Compare's coercion) and string
// columns against a string literal without any interface dispatch; NaN
// rows fall through both inequalities into the passEQ bit, exactly as
// Compare returns 0 for them.
func (p *compiledPred) filterSel(tuples []storage.Tuple, sel []int32) []int32 {
	in := len(sel)
	out := sel[:0]
	col := p.Col
	switch {
	case p.Op == KernIsNull:
		for _, i := range sel {
			if tuples[i][col].Kind == storage.KindNull {
				out = append(out, i)
			}
		}
	case p.Op == KernNotNull:
		for _, i := range sel {
			if tuples[i][col].Kind != storage.KindNull {
				out = append(out, i)
			}
		}
	case p.litNum:
		lf := p.litF
		for _, i := range sel {
			v := &tuples[i][col]
			var keep bool
			switch v.Kind {
			case storage.KindInt:
				switch f := float64(v.Int); {
				case f < lf:
					keep = p.passLT
				case f > lf:
					keep = p.passGT
				default:
					keep = p.passEQ
				}
			case storage.KindFloat:
				switch f := v.Float; {
				case f < lf:
					keep = p.passLT
				case f > lf:
					keep = p.passGT
				default:
					keep = p.passEQ
				}
			case storage.KindNull:
				keep = false
			default:
				keep = p.slowKeep(*v)
			}
			if keep {
				out = append(out, i)
			}
		}
	case p.litStr:
		ls := p.litS
		for _, i := range sel {
			v := &tuples[i][col]
			var keep bool
			switch v.Kind {
			case storage.KindString:
				switch {
				case v.Str < ls:
					keep = p.passLT
				case v.Str > ls:
					keep = p.passGT
				default:
					keep = p.passEQ
				}
			case storage.KindNull:
				keep = false
			default:
				keep = p.slowKeep(*v)
			}
			if keep {
				out = append(out, i)
			}
		}
	default: // NULL literal: every non-null row compares +1
		for _, i := range sel {
			if v := &tuples[i][col]; v.Kind != storage.KindNull && p.passGT {
				out = append(out, i)
			}
		}
	}
	p.evals.Add(int64(in))
	p.passes.Add(int64(len(out)))
	return out
}

// selectivity is the predicate's observed pass rate (0.5 uninformed
// prior, as the eddy uses before its first window).
func (p *compiledPred) selectivity() float64 {
	e := p.evals.Load()
	if e == 0 {
		return 0.5
	}
	return float64(p.passes.Load()) / float64(e)
}

// mayMatch decides whether any row summarised by zones could pass this
// predicate. Missing or unmodelled information always answers true;
// false is returned only when NO value category present on the page
// can produce a passing Compare sign.
func (p *compiledPred) mayMatch(zones []storage.ColZone) bool {
	if p.Col >= len(zones) {
		return true
	}
	z := &zones[p.Col]
	if z.HasOther {
		return true
	}
	nonNull := z.HasNum || z.HasNaN || z.HasStr
	switch p.Op {
	case KernIsNull:
		return z.HasNull
	case KernNotNull:
		return nonNull
	}
	if p.litNull {
		// Non-null row vs NULL literal compares +1; NULL rows fail.
		return p.passGT && nonNull
	}
	if p.litNum {
		if p.litNaN {
			// Any numeric (or NaN) row compares 0 against a NaN literal.
			if p.passEQ && (z.HasNum || z.HasNaN) {
				return true
			}
		} else {
			if z.HasNum {
				if p.passLT && z.MinF < p.litF {
					return true
				}
				if p.passGT && z.MaxF > p.litF {
					return true
				}
				if p.passEQ && z.MinF <= p.litF && z.MaxF >= p.litF {
					return true
				}
			}
			if z.HasNaN && p.passEQ { // NaN row vs finite literal: 0
				return true
			}
		}
		// String rows against a numeric literal order by kind tag:
		// above int/float, below bool.
		if z.HasStr {
			if p.Lit.Kind == storage.KindBool {
				return p.passLT
			}
			return p.passGT
		}
		return false
	}
	// String literal.
	if z.HasStr {
		if p.passLT && z.MinS < p.litS {
			return true
		}
		if p.passGT && z.MaxS > p.litS {
			return true
		}
		if p.passEQ && z.MinS <= p.litS && z.MaxS >= p.litS {
			return true
		}
	}
	if (z.HasNum || z.HasNaN) && p.passLT { // int/float rows order below strings
		return true
	}
	if z.HasBool && p.passGT { // bool rows order above strings
		return true
	}
	return false
}

// ScanStats counts a scan's page-level pruning decisions, shared by
// every worker of the scan and read by EXPLAIN after execution.
type ScanStats struct {
	Pruned  atomic.Int64
	Scanned atomic.Int64
}

// reorderEvery is the adaptation cadence: the kernel re-ranks its
// conjuncts from observed selectivities every reorderEvery batches.
const reorderEvery = 32

// FilterKernel is a compiled conjunction evaluated over batches with a
// selection vector. The conjunct order adapts continuously: every
// reorderEvery batches the conjuncts re-sort by the eddy rank
// cost/(1-selectivity), so the cheapest most-selective kernel runs
// first. Reordering never changes the surviving row set (conjunction
// is commutative and the predicates are pure), so results stay
// byte-identical no matter when adaptation fires. Safe for concurrent
// use by any number of scan workers.
type FilterKernel struct {
	preds []*compiledPred
	// order is the current routing order (a fresh slice per reorder,
	// swapped atomically; readers never see a partial sort).
	order atomic.Pointer[[]*compiledPred]
	// Boxed, when non-nil, is the residual predicate for conjuncts the
	// kernel set does not cover; it runs after the kernels, on the
	// compacted batch.
	Boxed Predicate
	// Stats, when non-nil, receives page prune/scan counts.
	Stats   *ScanStats
	batches atomic.Int64
}

// NewFilterKernel compiles the conjunction. boxed may be nil; stats
// may be nil.
func NewFilterKernel(preds []ColPred, boxed Predicate, stats *ScanStats) *FilterKernel {
	k := &FilterKernel{Boxed: boxed, Stats: stats}
	for _, p := range preds {
		k.preds = append(k.preds, compilePred(p))
	}
	initial := append([]*compiledPred(nil), k.preds...)
	k.order.Store(&initial)
	return k
}

// NumPreds returns the compiled conjunct count.
func (k *FilterKernel) NumPreds() int { return len(k.preds) }

// Apply filters b in place through the compiled conjunction: the
// selection vector is built by the first conjunct, narrowed by each
// subsequent one, and the surviving rows compacted to the batch head.
// Steady-state it allocates nothing (the selection vector is retained
// on the batch). Returns the surviving row count.
func (k *FilterKernel) Apply(b *Batch) int {
	n := len(b.Tuples)
	if n == 0 {
		return 0
	}
	sel := b.Sel[:0]
	if cap(sel) < n {
		sel = make([]int32, 0, cap(b.Tuples))
	}
	for i := 0; i < n; i++ {
		sel = append(sel, int32(i))
	}
	order := *k.order.Load()
	for _, p := range order {
		if len(sel) == 0 {
			break
		}
		sel = p.filterSel(b.Tuples, sel)
	}
	// Compact survivors to the head; sel is ascending so j <= sel[j].
	for j, i := range sel {
		b.Tuples[j] = b.Tuples[i]
	}
	b.Tuples = b.Tuples[:len(sel)]
	b.Sel = sel[:0] // retain capacity on the batch
	if k.Boxed != nil && len(b.Tuples) > 0 {
		filterInPlace(b, k.Boxed)
	}
	if len(k.preds) > 1 && k.batches.Add(1)%reorderEvery == 0 {
		k.reorder()
	}
	return len(b.Tuples)
}

// reorder installs a fresh conjunct order ranked by observed
// selectivity (see FilterRank). Stable sort keeps ties deterministic.
func (k *FilterKernel) reorder() {
	next := append([]*compiledPred(nil), k.preds...)
	sort.SliceStable(next, func(a, b int) bool {
		return FilterRank(next[a].Cost, next[a].selectivity()) <
			FilterRank(next[b].Cost, next[b].selectivity())
	})
	k.order.Store(&next)
}

// MayMatchPage decides whether a page needs decoding: nil zones (no
// entry — never built or invalidated) must scan; an empty non-nil
// entry is a rowless page; otherwise every conjunct gets a veto. The
// boxed residual never vetoes — it sees every surviving page.
func (k *FilterKernel) MayMatchPage(zones []storage.ColZone) bool {
	if zones == nil {
		return true
	}
	if len(zones) == 0 {
		return false // page holds no rows at all
	}
	for _, p := range k.preds {
		if !p.mayMatch(zones) {
			return false
		}
	}
	return true
}

// countPage records one prune/scan decision.
func (k *FilterKernel) countPage(pruned bool) {
	if k.Stats == nil {
		return
	}
	if pruned {
		k.Stats.Pruned.Add(1)
	} else {
		k.Stats.Scanned.Add(1)
	}
}

// Describe renders the conjunction for EXPLAIN: each kernel-compiled
// conjunct by name, in compile (not adapted) order.
func (k *FilterKernel) Describe() string {
	s := "kernel["
	for i, p := range k.preds {
		if i > 0 {
			s += " AND "
		}
		s += p.Name
	}
	return s + "]"
}

// PruneSummary renders the page-prune counters ("pruned=3/12"); empty
// when the kernel collects no stats.
func (k *FilterKernel) PruneSummary() string {
	if k.Stats == nil {
		return ""
	}
	pruned := k.Stats.Pruned.Load()
	return fmt.Sprintf("pruned=%d/%d", pruned, pruned+k.Stats.Scanned.Load())
}

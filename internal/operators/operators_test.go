package operators

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/adm-project/adm/internal/storage"
)

func rows(vals ...int64) []storage.Tuple {
	var out []storage.Tuple
	for _, v := range vals {
		out = append(out, storage.Tuple{storage.IntValue(v), storage.StringValue("r")})
	}
	return out
}

func intsOf(ts []storage.Tuple, col int) []int64 {
	var out []int64
	for _, t := range ts {
		out = append(out, t[col].Int)
	}
	return out
}

func TestMemScanAndDrain(t *testing.T) {
	got, err := Drain(NewMemScan(rows(1, 2, 3)))
	if err != nil || len(got) != 3 {
		t.Fatalf("%v %v", got, err)
	}
	if _, _, err := NewMemScan(nil).Next(); err != ErrNotOpen {
		t.Fatalf("unopened Next: %v", err)
	}
}

func TestFilterProjectLimit(t *testing.T) {
	src := NewMemScan(rows(1, 2, 3, 4, 5, 6))
	it := NewLimit(NewProject(NewFilter(src, func(t storage.Tuple) bool {
		return t[0].Int%2 == 0
	}), []int{0}), 2)
	got, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][0].Int != 2 || got[1][0].Int != 4 || len(got[0]) != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestProjectOutOfRange(t *testing.T) {
	it := NewProject(NewMemScan(rows(1)), []int{5})
	if _, err := Drain(it); err == nil {
		t.Fatal("want error")
	}
}

func TestSortAscDesc(t *testing.T) {
	src := rows(3, 1, 2)
	asc, _ := Drain(NewSort(NewMemScan(src), 0, false))
	if got := intsOf(asc, 0); got[0] != 1 || got[2] != 3 {
		t.Fatalf("asc = %v", got)
	}
	desc, _ := Drain(NewSort(NewMemScan(src), 0, true))
	if got := intsOf(desc, 0); got[0] != 3 || got[2] != 1 {
		t.Fatalf("desc = %v", got)
	}
}

func TestHeapAndIndexScan(t *testing.T) {
	store := storage.NewStore()
	bm := storage.NewBufferManager(store, 16, storage.NewLRU())
	hf := storage.NewHeapFile("t", store, bm)
	idx := storage.NewBTree("t_a")
	for i := int64(0); i < 100; i++ {
		rid, err := hf.Insert(storage.Tuple{storage.IntValue(i), storage.StringValue("x")})
		if err != nil {
			t.Fatal(err)
		}
		idx.Insert(storage.IntValue(i), rid)
	}
	n, err := Count(NewHeapScan(hf))
	if err != nil || n != 100 {
		t.Fatalf("heap count = %d %v", n, err)
	}
	got, err := Drain(NewIndexScan(hf, idx, storage.IntValue(10), storage.IntValue(19)))
	if err != nil || len(got) != 10 {
		t.Fatalf("index scan = %d %v", len(got), err)
	}
	for i, tu := range got {
		if tu[0].Int != int64(10+i) {
			t.Fatalf("order: %v", intsOf(got, 0))
		}
	}
}

func joinInputs() ([]storage.Tuple, []storage.Tuple) {
	var l, r []storage.Tuple
	for i := int64(0); i < 30; i++ {
		l = append(l, storage.Tuple{storage.IntValue(i % 10), storage.StringValue("L")})
	}
	for i := int64(0); i < 20; i++ {
		r = append(r, storage.Tuple{storage.IntValue(i % 5), storage.StringValue("R")})
	}
	return l, r
}

func canonical(ts []storage.Tuple) []string {
	var out []string
	for _, t := range ts {
		s := ""
		for _, v := range t {
			s += v.String() + "|"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestJoinsAgree(t *testing.T) {
	l, r := joinInputs()
	nl, err := Drain(NewNestedLoopJoin(NewMemScan(l), NewMemScan(r), 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	hj, err := Drain(NewHashJoin(NewMemScan(l), NewMemScan(r), 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// 30 L tuples: keys 0..9 3× each. 20 R tuples: keys 0..4 4× each.
	// Matches: keys 0..4: 3*4 = 12 each → 60.
	if len(nl) != 60 {
		t.Fatalf("NL join = %d rows", len(nl))
	}
	a, b := canonical(nl), canonical(hj)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("join disagreement at %d", i)
		}
	}
}

func TestHashJoinRespectsColumnsAndNulls(t *testing.T) {
	l := []storage.Tuple{
		{storage.IntValue(1), storage.StringValue("a")},
		{storage.NullValue(), storage.StringValue("b")},
	}
	r := []storage.Tuple{
		{storage.StringValue("x"), storage.IntValue(1)},
		{storage.StringValue("y"), storage.NullValue()},
	}
	got, err := Drain(NewHashJoin(NewMemScan(l), NewMemScan(r), 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][3].Int != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestIndexNLJoin(t *testing.T) {
	store := storage.NewStore()
	bm := storage.NewBufferManager(store, 16, storage.NewLRU())
	inner := storage.NewHeapFile("inner", store, bm)
	idx := storage.NewBTree("inner_k")
	for i := int64(0); i < 50; i++ {
		rid, _ := inner.Insert(storage.Tuple{storage.IntValue(i % 10), storage.IntValue(i)})
		idx.Insert(storage.IntValue(i%10), rid)
	}
	outer := rows(3, 7, 3)
	j := NewIndexNLJoin(NewMemScan(outer), 0, idx, inner)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 { // 5 inner matches per outer tuple
		t.Fatalf("rows = %d", len(got))
	}
	if j.Probes != 3 {
		t.Fatalf("probes = %d", j.Probes)
	}
	// Agreement with hash join.
	all, _ := inner.All()
	hj, _ := Drain(NewHashJoin(NewMemScan(outer), NewMemScan(all), 0, 0))
	if len(hj) != len(got) {
		t.Fatalf("hash=%d indexnl=%d", len(hj), len(got))
	}
}

func TestHashAggregate(t *testing.T) {
	src := []storage.Tuple{
		{storage.StringValue("a"), storage.IntValue(10)},
		{storage.StringValue("b"), storage.IntValue(5)},
		{storage.StringValue("a"), storage.IntValue(20)},
		{storage.StringValue("a"), storage.NullValue()},
	}
	it := NewHashAggregate(NewMemScan(src), 0, []AggSpec{
		{Kind: AggCount}, {Kind: AggSum, Col: 1}, {Kind: AggAvg, Col: 1},
		{Kind: AggMin, Col: 1}, {Kind: AggMax, Col: 1},
	})
	got, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	a := got[0] // first-seen order: "a"
	if a[0].Str != "a" || a[1].Int != 3 || a[2].Float != 30 || a[3].Float != 15 ||
		a[4].Int != 10 || a[5].Int != 20 {
		t.Fatalf("group a = %v", a)
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	it := NewHashAggregate(NewMemScan(nil), -1, []AggSpec{{Kind: AggCount}, {Kind: AggAvg, Col: 0}})
	got, err := Drain(it)
	if err != nil || len(got) != 1 {
		t.Fatalf("%v %v", got, err)
	}
	if got[0][0].Int != 0 || !got[0][1].IsNull() {
		t.Fatalf("empty agg = %v", got[0])
	}
}

// --------------------------------------------------------------------------
// Timed adaptive joins.

func timedInputs(n int, lPat, rPat ArrivalPattern) (*TimedSource, *TimedSource) {
	var l, r []storage.Tuple
	for i := 0; i < n; i++ {
		l = append(l, storage.Tuple{storage.IntValue(int64(i % 20)), storage.StringValue("L")})
		r = append(r, storage.Tuple{storage.IntValue(int64(i % 20)), storage.StringValue("R")})
	}
	return NewTimedSource("L", l, lPat), NewTimedSource("R", r, rPat)
}

func TestTimedSourceSchedule(t *testing.T) {
	src := NewTimedSource("s", rows(1, 2, 3), ArrivalPattern{InitialDelayMS: 10, PerTupleMS: 5})
	if _, ok := src.PollAt(9); ok {
		t.Fatal("early poll succeeded")
	}
	a, ok := src.NextArrival()
	if !ok || a != 10 {
		t.Fatalf("next arrival = %v", a)
	}
	tu, ok := src.PollAt(10)
	if !ok || tu.Seq != 0 {
		t.Fatalf("poll = %+v %v", tu, ok)
	}
	if src.LastArrival() != 20 {
		t.Fatalf("last = %v", src.LastArrival())
	}
	src.Reset()
	if src.Done() || src.Remaining() != 3 {
		t.Fatal("reset failed")
	}
}

func TestTimedSourceStalls(t *testing.T) {
	src := NewTimedSource("s", rows(1, 2, 3, 4), ArrivalPattern{PerTupleMS: 1, StallEvery: 2, StallMS: 100})
	// arrivals: 0, 1, 102, 103
	times := []float64{}
	for !src.Done() {
		a, _ := src.NextArrival()
		times = append(times, a)
		src.PollAt(a)
	}
	want := []float64{0, 1, 102, 103}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("arrivals = %v", times)
		}
	}
}

func sameOutputs(t *testing.T, a, b RunResult, label string) {
	t.Helper()
	ca := map[[2]int]int{}
	for _, o := range a.Outputs {
		ca[[2]int{o.LSeq, o.RSeq}]++
	}
	cb := map[[2]int]int{}
	for _, o := range b.Outputs {
		cb[[2]int{o.LSeq, o.RSeq}]++
	}
	if len(ca) != len(cb) || len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("%s: result sets differ: %d vs %d", label, len(a.Outputs), len(b.Outputs))
	}
	for k, v := range ca {
		if cb[k] != v {
			t.Fatalf("%s: pair %v count %d vs %d", label, k, v, cb[k])
		}
	}
}

func TestAdaptiveJoinsProduceSameResults(t *testing.T) {
	mk := func() (*TimedSource, *TimedSource) {
		return timedInputs(200,
			ArrivalPattern{InitialDelayMS: 50, PerTupleMS: 2, StallEvery: 50, StallMS: 200},
			ArrivalPattern{PerTupleMS: 1})
	}
	l1, r1 := mk()
	blocking := RunBlockingHashJoin(l1, r1, 0, 0)
	l2, r2 := mk()
	symmetric := RunSymmetricHashJoin(l2, r2, 0, 0)
	l3, r3 := mk()
	xjoin := RunXJoin(l3, r3, 0, 0, XJoinConfig{MemTuplesPerSide: 32, ReactiveBatch: 16, ReactiveStepMS: 1})
	// 200 tuples each side, keys i%20 → 10 repeats per key per side →
	// 20 keys × 10 × 10 = 2000 output pairs.
	if len(blocking.Outputs) != 2000 {
		t.Fatalf("blocking outputs = %d", len(blocking.Outputs))
	}
	sameOutputs(t, blocking, symmetric, "blocking-vs-symmetric")
	sameOutputs(t, blocking, xjoin, "blocking-vs-xjoin")
}

func TestSymmetricBeatsBlockingTimeToFirstTuple(t *testing.T) {
	// Both sides trickle in slowly: the blocking join cannot emit
	// until the whole build side lands; the symmetric join emits on
	// the first matching arrivals.
	mk := func() (*TimedSource, *TimedSource) {
		return timedInputs(100,
			ArrivalPattern{PerTupleMS: 10},
			ArrivalPattern{PerTupleMS: 10})
	}
	l1, r1 := mk()
	blocking := RunBlockingHashJoin(l1, r1, 0, 0)
	l2, r2 := mk()
	symmetric := RunSymmetricHashJoin(l2, r2, 0, 0)
	if blocking.FirstOutputMS < 10*99 {
		t.Fatalf("blocking emitted before build completed: %v", blocking.FirstOutputMS)
	}
	if symmetric.FirstOutputMS >= blocking.FirstOutputMS/10 {
		t.Fatalf("symmetric first output %v vs blocking %v: want ≥10× earlier",
			symmetric.FirstOutputMS, blocking.FirstOutputMS)
	}
}

func TestXJoinWorksDuringStalls(t *testing.T) {
	// Both sources stall together mid-stream for a long window.
	pat := ArrivalPattern{PerTupleMS: 1, StallEvery: 100, StallMS: 5000}
	l1, r1 := timedInputs(300, pat, pat)
	sym := RunSymmetricHashJoin(l1, r1, 0, 0)
	l2, r2 := timedInputs(300, pat, pat)
	xj := RunXJoin(l2, r2, 0, 0, XJoinConfig{MemTuplesPerSide: 64, ReactiveBatch: 8, ReactiveStepMS: 5})
	// During the first stall window (strictly inside it, so the burst
	// of arrivals at t=5100 is excluded) the symmetric join is idle
	// while XJoin's reactive stage keeps emitting disk×disk matches.
	stallStart, stallEnd := 99.5, 5099.0
	symDuring := sym.OutputsBy(stallEnd) - sym.OutputsBy(stallStart)
	xjDuring := xj.OutputsBy(stallEnd) - xj.OutputsBy(stallStart)
	if xjDuring <= symDuring {
		t.Fatalf("xjoin stall-window outputs %d <= symmetric %d", xjDuring, symDuring)
	}
	if xj.IdleMS >= sym.IdleMS {
		t.Fatalf("xjoin idle %v >= symmetric idle %v", xj.IdleMS, sym.IdleMS)
	}
	// XJoin respects its memory cap.
	if xj.MaxMemTuples > 64 {
		t.Fatalf("xjoin mem = %d > cap", xj.MaxMemTuples)
	}
}

func TestXJoinNoDuplicates(t *testing.T) {
	pat := ArrivalPattern{PerTupleMS: 1, StallEvery: 20, StallMS: 50}
	l, r := timedInputs(150, pat, pat)
	xj := RunXJoin(l, r, 0, 0, XJoinConfig{MemTuplesPerSide: 16, ReactiveBatch: 8, ReactiveStepMS: 1})
	seen := map[[2]int]bool{}
	for _, o := range xj.Outputs {
		k := [2]int{o.LSeq, o.RSeq}
		if seen[k] {
			t.Fatalf("duplicate output pair %v", k)
		}
		seen[k] = true
	}
}

func TestRippleJoinConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var l, r []storage.Tuple
	exact := 0.0
	for i := 0; i < 120; i++ {
		k := int64(rng.Intn(15))
		v := float64(rng.Intn(100))
		l = append(l, storage.Tuple{storage.IntValue(k), storage.FloatValue(v)})
	}
	for i := 0; i < 80; i++ {
		k := int64(rng.Intn(15))
		r = append(r, storage.Tuple{storage.IntValue(k), storage.StringValue("r")})
	}
	for _, lt := range l {
		for _, rt := range r {
			if storage.Equal(lt[0], rt[0]) {
				exact += lt[1].Float
			}
		}
	}
	ls := NewTimedSource("L", l, ArrivalPattern{PerTupleMS: 1})
	rs := NewTimedSource("R", r, ArrivalPattern{PerTupleMS: 1})
	res := RunRippleJoin(ls, rs, 0, 0, 1, 10)
	if res.FinalSum != exact {
		t.Fatalf("final = %v, exact = %v", res.FinalSum, exact)
	}
	if len(res.Trajectory) < 5 {
		t.Fatalf("trajectory too short: %d", len(res.Trajectory))
	}
	last := res.Trajectory[len(res.Trajectory)-1]
	if last.Fraction != 1 || last.Estimate != exact {
		t.Fatalf("last point = %+v", last)
	}
	// Estimates exist long before completion (online aggregation).
	first := res.Trajectory[0]
	if first.Fraction >= 0.3 {
		t.Fatalf("first estimate only at fraction %v", first.Fraction)
	}
	// The late-run estimate should be close to exact (within 50%).
	mid := res.Trajectory[len(res.Trajectory)/2]
	if exact > 0 && math.Abs(mid.Estimate-exact)/exact > 0.5 {
		t.Logf("mid estimate %.0f vs exact %.0f (loose sampling bound)", mid.Estimate, exact)
	}
}

func TestEddyAdaptsToDrift(t *testing.T) {
	// Two filters; selectivities invert halfway through the stream.
	n := 4000
	tuples := make([]storage.Tuple, n)
	for i := range tuples {
		tuples[i] = storage.Tuple{storage.IntValue(int64(i))}
	}
	mk := func() []*EddyFilter {
		return []*EddyFilter{
			{Name: "A", Cost: 1, Pred: func(t storage.Tuple) bool {
				i := t[0].Int
				if i < int64(n/2) {
					return i%10 == 0 // selective early
				}
				return i%10 != 0 // permissive late
			}},
			{Name: "B", Cost: 1, Pred: func(t storage.Tuple) bool {
				i := t[0].Int
				if i < int64(n/2) {
					return i%10 != 0 // permissive early
				}
				return i%10 == 0 // selective late
			}},
		}
	}
	// Static order B,A: wrong for the first half, right for the second.
	static := RunEddy(tuples, []*EddyFilter{mk()[1], mk()[0]}, 0)
	adaptive := RunEddy(tuples, []*EddyFilter{mk()[1], mk()[0]}, 100)
	if adaptive.Work >= static.Work {
		t.Fatalf("adaptive work %v >= static %v", adaptive.Work, static.Work)
	}
	if adaptive.Reorders == 0 {
		t.Fatal("eddy never re-routed")
	}
	if adaptive.Passed != static.Passed {
		t.Fatalf("routing changed semantics: %d vs %d", adaptive.Passed, static.Passed)
	}
}

// Property: all three timed joins produce identical result multisets
// for random inputs and arrival patterns.
func TestTimedJoinEquivalenceProperty(t *testing.T) {
	f := func(seed int64, nRaw, memRaw uint8) bool {
		n := int(nRaw)%80 + 5
		mem := int(memRaw)%32 + 4
		rng := rand.New(rand.NewSource(seed))
		var l, r []storage.Tuple
		for i := 0; i < n; i++ {
			l = append(l, storage.Tuple{storage.IntValue(int64(rng.Intn(8)))})
			r = append(r, storage.Tuple{storage.IntValue(int64(rng.Intn(8)))})
		}
		mk := func() (*TimedSource, *TimedSource) {
			return NewTimedSource("L", l, ArrivalPattern{PerTupleMS: float64(rng.Intn(3)), StallEvery: 10, StallMS: 20}),
				NewTimedSource("R", r, ArrivalPattern{PerTupleMS: 1})
		}
		l1, r1 := mk()
		a := RunBlockingHashJoin(l1, r1, 0, 0)
		l2, r2 := mk()
		b := RunSymmetricHashJoin(l2, r2, 0, 0)
		l3, r3 := mk()
		c := RunXJoin(l3, r3, 0, 0, XJoinConfig{MemTuplesPerSide: mem, ReactiveBatch: 4, ReactiveStepMS: 1})
		count := func(res RunResult) map[[2]int]int {
			m := map[[2]int]int{}
			for _, o := range res.Outputs {
				m[[2]int{o.LSeq, o.RSeq}]++
			}
			return m
		}
		ca, cb, cc := count(a), count(b), count(c)
		if len(ca) != len(cb) || len(ca) != len(cc) {
			return false
		}
		for k, v := range ca {
			if v != 1 || cb[k] != 1 || cc[k] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRippleConfidenceShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var l, r []storage.Tuple
	for i := 0; i < 200; i++ {
		l = append(l, storage.Tuple{storage.IntValue(int64(rng.Intn(10))), storage.FloatValue(float64(rng.Intn(50)))})
		r = append(r, storage.Tuple{storage.IntValue(int64(rng.Intn(10)))})
	}
	ls := NewTimedSource("L", l, ArrivalPattern{PerTupleMS: 1})
	rs := NewTimedSource("R", r, ArrivalPattern{PerTupleMS: 1})
	res := RunRippleJoin(ls, rs, 0, 0, 1, 20)
	if len(res.Trajectory) < 5 {
		t.Fatalf("trajectory = %d points", len(res.Trajectory))
	}
	early := res.Trajectory[1]
	late := res.Trajectory[len(res.Trajectory)-2]
	if early.HalfWidth <= 0 {
		t.Fatalf("early half-width = %v", early.HalfWidth)
	}
	if late.HalfWidth >= early.HalfWidth {
		t.Fatalf("half-width did not shrink: %v -> %v", early.HalfWidth, late.HalfWidth)
	}
	// Final point covers the exact answer trivially (fraction 1).
	final := res.Trajectory[len(res.Trajectory)-1]
	if final.Fraction != 1 || final.Estimate != res.Exact {
		t.Fatalf("final point = %+v", final)
	}
}

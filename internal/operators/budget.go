package operators

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/adm-project/adm/internal/storage"
)

// Per-statement resource controls for the parallel pipelines: a
// cooperative Cancel hook (deadlines, client disconnects) and a
// MemBudget metering materialised bytes. Both ride the existing
// failFlag protocol — a tripped control latches an error exactly like
// a source error, every worker drains at the phase barrier, and the
// statement fails cleanly with all pooled batches returned.

// ErrMemBudget reports a statement that materialised more bytes than
// its memory quota allows. The statement is cancelled cooperatively;
// the session survives.
var ErrMemBudget = errors.New("operators: statement memory budget exceeded")

// MemBudget meters the bytes a statement materialises across every
// parallel phase (drained scan output, hash-table build sides, probe
// output arenas, sort runs). It is an approximation — value headers
// plus string payloads — not an allocator: the point is to fail a
// runaway statement at a bounded multiple of the quota, not to
// account exactly. Safe for concurrent use; a nil *MemBudget meters
// nothing.
type MemBudget struct {
	limit int64
	used  atomic.Int64
}

// NewMemBudget builds a budget of limit bytes; limit <= 0 means
// unlimited (Charge never fails but still counts).
func NewMemBudget(limit int64) *MemBudget {
	return &MemBudget{limit: limit}
}

// Charge adds n bytes, failing with ErrMemBudget once the total
// exceeds the limit. The charge is recorded even when it overflows,
// so Used reports how far past the quota the statement got before the
// workers drained.
func (m *MemBudget) Charge(n int64) error {
	if m == nil {
		return nil
	}
	used := m.used.Add(n)
	if m.limit > 0 && used > m.limit {
		return fmt.Errorf("%w: %d of %d bytes", ErrMemBudget, used, m.limit)
	}
	return nil
}

// Used returns the bytes charged so far.
func (m *MemBudget) Used() int64 {
	if m == nil {
		return 0
	}
	return m.used.Load()
}

// Limit returns the configured cap (0 = unlimited).
func (m *MemBudget) Limit() int64 {
	if m == nil {
		return 0
	}
	return m.limit
}

// valueBytes approximates the resident size of one storage.Value
// header (kind + int64 + float64 + string header + bool, padded).
const valueBytes = 48

// valsBytes approximates the resident bytes of a value slice.
func valsBytes(vals []storage.Value) int64 {
	n := int64(len(vals)) * valueBytes
	for i := range vals {
		n += int64(len(vals[i].Str))
	}
	return n
}

// TupleBytes approximates the resident bytes of a tuple slice (the
// unit MemBudget charges in).
func TupleBytes(ts []storage.Tuple) int64 {
	var n int64
	for _, t := range ts {
		n += valsBytes(t)
	}
	return n
}

// interrupted polls the statement's cooperative Cancel hook; a non-nil
// cancel error latches into fail and stops the phase exactly like a
// source error. Workers call it once per claimed batch.
func (c ParallelConfig) interrupted(fail *failFlag) bool {
	if c.Cancel == nil {
		return false
	}
	if err := c.Cancel(); err != nil {
		fail.set(err)
		return true
	}
	return false
}

// charge meters materialised tuples against the budget, latching
// ErrMemBudget into fail on overflow.
func (c ParallelConfig) charge(fail *failFlag, ts []storage.Tuple) bool {
	if c.Budget == nil {
		return false
	}
	if err := c.Budget.Charge(TupleBytes(ts)); err != nil {
		fail.set(err)
		return true
	}
	return false
}

// chargeVals is charge over a flat value arena (probe output).
func (c ParallelConfig) chargeVals(fail *failFlag, vals []storage.Value) bool {
	if c.Budget == nil {
		return false
	}
	if err := c.Budget.Charge(valsBytes(vals)); err != nil {
		fail.set(err)
		return true
	}
	return false
}

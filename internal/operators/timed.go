package operators

import (
	"math"

	"github.com/adm-project/adm/internal/storage"
)

// The timed source model for the adaptive-join laboratory: tuples
// arrive at simulated times (initial delay + per-tuple spacing +
// periodic bursts/stalls), the regime of "querying data from highly
// heterogeneous distributed databases over wide-area networks" (§2)
// where the optimiser cannot rely on steady delivery.

// TimedTuple is a tuple with its arrival timestamp and a per-source
// sequence number (used by XJoin's duplicate elimination).
type TimedTuple struct {
	Seq     int
	Tuple   storage.Tuple
	Arrival float64
}

// TimedSource delivers a fixed tuple sequence on a schedule.
type TimedSource struct {
	Name   string
	tuples []TimedTuple
	pos    int
}

// ArrivalPattern describes a source's delivery schedule.
type ArrivalPattern struct {
	// InitialDelayMS before the first tuple.
	InitialDelayMS float64
	// PerTupleMS between consecutive tuples.
	PerTupleMS float64
	// StallEvery introduces an extra StallMS gap before every
	// StallEvery-th tuple (0 = never): the bursty/stalling remote
	// source XJoin was designed for.
	StallEvery int
	StallMS    float64
}

// NewTimedSource schedules tuples under the pattern.
func NewTimedSource(name string, tuples []storage.Tuple, p ArrivalPattern) *TimedSource {
	ts := &TimedSource{Name: name}
	t := p.InitialDelayMS
	for i, tu := range tuples {
		if p.StallEvery > 0 && i > 0 && i%p.StallEvery == 0 {
			t += p.StallMS
		}
		ts.tuples = append(ts.tuples, TimedTuple{Seq: i, Tuple: tu, Arrival: t})
		t += p.PerTupleMS
	}
	return ts
}

// PollAt returns the next tuple if it has arrived by now.
func (s *TimedSource) PollAt(now float64) (TimedTuple, bool) {
	if s.pos >= len(s.tuples) {
		return TimedTuple{}, false
	}
	if s.tuples[s.pos].Arrival <= now {
		t := s.tuples[s.pos]
		s.pos++
		return t, true
	}
	return TimedTuple{}, false
}

// NextArrival returns the arrival time of the next pending tuple.
func (s *TimedSource) NextArrival() (float64, bool) {
	if s.pos >= len(s.tuples) {
		return 0, false
	}
	return s.tuples[s.pos].Arrival, true
}

// Done reports exhaustion.
func (s *TimedSource) Done() bool { return s.pos >= len(s.tuples) }

// Remaining returns undelivered tuples.
func (s *TimedSource) Remaining() int { return len(s.tuples) - s.pos }

// Reset rewinds the source for another run.
func (s *TimedSource) Reset() { s.pos = 0 }

// LastArrival returns the arrival time of the final tuple (0 for an
// empty source).
func (s *TimedSource) LastArrival() float64 {
	if len(s.tuples) == 0 {
		return 0
	}
	return s.tuples[len(s.tuples)-1].Arrival
}

// TimedOutput is one join result with its production timestamp.
type TimedOutput struct {
	Tuple storage.Tuple
	At    float64
	// LSeq/RSeq identify the contributing input tuples (dedup checks).
	LSeq, RSeq int
}

// RunResult summarises a timed join execution.
type RunResult struct {
	Outputs []TimedOutput
	// FirstOutputMS is the time of the first result (+Inf if none).
	FirstOutputMS float64
	// CompletionMS is when the join finished all work.
	CompletionMS float64
	// Comparisons counts probe work.
	Comparisons uint64
	// IdleMS is time spent with no input available and no work done —
	// blocking operators accumulate it, adaptive ones convert it to
	// useful work.
	IdleMS float64
	// MaxMemTuples is the peak in-memory tuple count.
	MaxMemTuples int
}

func newRunResult() RunResult {
	return RunResult{FirstOutputMS: math.Inf(1)}
}

func (r *RunResult) emit(out TimedOutput) {
	if len(r.Outputs) == 0 {
		r.FirstOutputMS = out.At
	}
	r.Outputs = append(r.Outputs, out)
}

// OutputsBy returns how many results had been produced by time t.
func (r *RunResult) OutputsBy(t float64) int {
	n := 0
	for _, o := range r.Outputs {
		if o.At <= t {
			n++
		}
	}
	return n
}

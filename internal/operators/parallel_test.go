package operators

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"github.com/adm-project/adm/internal/storage"
)

func intTuple(vs ...int64) storage.Tuple {
	t := make(storage.Tuple, len(vs))
	for i, v := range vs {
		t[i] = storage.IntValue(v)
	}
	return t
}

// multiset renders tuples as a sorted string multiset for comparison
// across nondeterministic orderings.
func multiset(ts []storage.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		s := ""
		for _, v := range t {
			s += v.String() + "|"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func sameMultiset(t *testing.T, got, want []storage.Tuple) {
	t.Helper()
	g, w := multiset(got), multiset(want)
	if len(g) != len(w) {
		t.Fatalf("row count: got %d want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d: got %q want %q", i, g[i], w[i])
		}
	}
}

func TestSliceMorselsCoverEverythingOnce(t *testing.T) {
	var in []storage.Tuple
	for i := 0; i < 1000; i++ {
		in = append(in, intTuple(int64(i)))
	}
	src := NewSliceMorsels(in, 7)
	got, err := DrainParallel(src, ParallelConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, got, in)
}

func TestHeapMorselsMatchSerialScan(t *testing.T) {
	store := storage.NewStore()
	bm := storage.NewBufferManager(store, 8, storage.NewLRU())
	hf := storage.NewHeapFile("t", store, bm)
	var want []storage.Tuple
	for i := 0; i < 2500; i++ {
		tp := intTuple(int64(i), int64(i%13))
		if _, err := hf.Insert(tp); err != nil {
			t.Fatal(err)
		}
		want = append(want, tp)
	}
	got, err := DrainParallel(NewHeapMorsels(hf), ParallelConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, got, want)
}

func TestFilterMorsels(t *testing.T) {
	var in, want []storage.Tuple
	for i := 0; i < 500; i++ {
		tp := intTuple(int64(i))
		in = append(in, tp)
		if i%3 == 0 {
			want = append(want, tp)
		}
	}
	src := NewFilterMorsels(NewSliceMorsels(in, 16), func(t storage.Tuple) bool {
		return t[0].Int%3 == 0
	})
	got, err := DrainParallel(src, ParallelConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, got, want)
}

func TestIterMorselsMatchesDrain(t *testing.T) {
	var in []storage.Tuple
	for i := 0; i < 333; i++ {
		in = append(in, intTuple(int64(i)))
	}
	src := NewIterMorsels(NewMemScan(in), 10)
	got, err := DrainParallel(src, ParallelConfig{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, got, in)
}

func TestParallelJoinMatchesSerial(t *testing.T) {
	var build, probe []storage.Tuple
	for i := 0; i < 800; i++ {
		build = append(build, intTuple(int64(i%50), int64(i)))
	}
	for i := 0; i < 1200; i++ {
		probe = append(probe, intTuple(int64(i%75), int64(-i)))
	}
	// some nulls on both sides: they never join
	build = append(build, storage.Tuple{storage.NullValue(), storage.IntValue(1)})
	probe = append(probe, storage.Tuple{storage.NullValue(), storage.IntValue(2)})

	serial := NewHashJoin(NewMemScan(build), NewMemScan(probe), 0, 0)
	want, err := Drain(serial)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		cfg := ParallelConfig{Workers: workers, MorselSize: 64}
		bt, _, err := ParallelBuild(NewSliceMorsels(build, 64), 0, cfg, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if bt.Rows() != len(build) {
			t.Fatalf("workers=%d: build rows %d want %d", workers, bt.Rows(), len(build))
		}
		got, err := bt.ParallelProbe(NewSliceMorsels(probe, 64), 0, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameMultiset(t, got, want)
	}
}

func TestParallelBuildAbortReturnsExactPrefix(t *testing.T) {
	var build []storage.Tuple
	for i := 0; i < 1000; i++ {
		build = append(build, intTuple(int64(i)))
	}
	src := NewSliceMorsels(build, 32)
	cfg := ParallelConfig{Workers: 4, MorselSize: 32}
	bt, prefix, err := ParallelBuild(src, 0, cfg, func(rows int) bool {
		return rows <= 200 // abort once more than 200 rows observed
	})
	if !errors.Is(err, ErrBuildAborted) {
		t.Fatalf("err = %v, want ErrBuildAborted", err)
	}
	if bt != nil {
		t.Fatal("aborted build returned a table")
	}
	if len(prefix) <= 200 {
		t.Fatalf("prefix %d rows, want > 200 (abort fires after the morsel that crossed)", len(prefix))
	}
	// The prefix plus whatever the source still holds must be exactly
	// the input multiset: nothing lost, nothing duplicated.
	rest, err := DrainParallel(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, append(append([]storage.Tuple{}, prefix...), rest...), build)
}

func TestChainMorselsReplaysPrefixThenRest(t *testing.T) {
	var a, b, want []storage.Tuple
	for i := 0; i < 100; i++ {
		a = append(a, intTuple(int64(i)))
		b = append(b, intTuple(int64(1000+i)))
	}
	want = append(append(want, a...), b...)
	src := NewChainMorsels(NewSliceMorsels(a, 9), NewSliceMorsels(b, 9))
	got, err := DrainParallel(src, ParallelConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, got, want)
}

func TestParallelAggregateMatchesSerial(t *testing.T) {
	var in []storage.Tuple
	for i := 0; i < 2000; i++ {
		in = append(in, intTuple(int64(i%17), int64(i), int64(i%5)))
	}
	aggs := []AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: 1}, {Kind: AggMin, Col: 1},
		{Kind: AggMax, Col: 1}, {Kind: AggAvg, Col: 2}}
	for _, groupCol := range []int{0, -1} {
		want, err := Drain(NewHashAggregate(NewMemScan(in), groupCol, aggs))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := ParallelHashAggregate(NewSliceMorsels(in, 128), groupCol, aggs,
				ParallelConfig{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			sameMultiset(t, got, want)
		}
	}
}

func TestParallelAggregateGlobalOverEmptyInput(t *testing.T) {
	aggs := []AggSpec{{Kind: AggCount}}
	got, err := ParallelHashAggregate(NewSliceMorsels(nil, 0), -1, aggs, ParallelConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0].Int != 0 {
		t.Fatalf("global COUNT over empty input = %v, want [0]", got)
	}
}

func TestDrainParallelPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	src := &erringSource{after: 5, err: boom}
	_, err := DrainParallel(src, ParallelConfig{Workers: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

type erringSource struct {
	n     atomic.Int64
	after int64
	err   error
}

func (s *erringSource) NextMorsel() ([]storage.Tuple, error) {
	n := s.n.Add(1)
	if n > s.after {
		return nil, s.err
	}
	return []storage.Tuple{intTuple(n)}, nil
}

func TestOnWorkerRowCountsAddUp(t *testing.T) {
	var in []storage.Tuple
	for i := 0; i < 640; i++ {
		in = append(in, intTuple(int64(i)))
	}
	var total atomic.Int64
	cfg := ParallelConfig{Workers: 4, MorselSize: 10,
		OnWorker: func(w int, phase string, rows int) {
			if phase != "scan" {
				panic(fmt.Sprintf("phase %q", phase))
			}
			total.Add(int64(rows))
		}}
	if _, err := DrainParallel(NewSliceMorsels(in, 10), cfg); err != nil {
		t.Fatal(err)
	}
	if total.Load() != int64(len(in)) {
		t.Fatalf("worker row counts sum to %d, want %d", total.Load(), len(in))
	}
}

package operators

import (
	"fmt"

	"github.com/adm-project/adm/internal/storage"
)

// joinKey renders a value as a hash-map key. Numeric kinds normalise
// to float text so 2 (int) joins with 2.0 (float), matching Compare.
func joinKey(v storage.Value) string {
	if f, ok := v.AsFloat(); ok {
		return fmt.Sprintf("n:%g", f)
	}
	if v.Kind == storage.KindNull {
		return "∅" // never joins; filtered by callers
	}
	return "s:" + v.Str
}

func concat(l, r storage.Tuple) storage.Tuple {
	out := make(storage.Tuple, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// NestedLoopJoin is the naive O(|L|·|R|) equality join on LCol=RCol.
// The right input is materialised at Open.
type NestedLoopJoin struct {
	L, R       Iterator
	LCol, RCol int
	right      []storage.Tuple
	cur        storage.Tuple
	rpos       int
	open       bool
	// Comparisons counts predicate evaluations (cost accounting for
	// the Scenario 3 replanning decision).
	Comparisons uint64
}

// NewNestedLoopJoin joins l.lcol = r.rcol.
func NewNestedLoopJoin(l, r Iterator, lcol, rcol int) *NestedLoopJoin {
	return &NestedLoopJoin{L: l, R: r, LCol: lcol, RCol: rcol}
}

// Open implements Iterator.
func (j *NestedLoopJoin) Open() error {
	right, err := Drain(j.R)
	if err != nil {
		return err
	}
	j.right = right
	j.cur = nil
	j.rpos = 0
	j.open = true
	return j.L.Open()
}

// Next implements Iterator.
func (j *NestedLoopJoin) Next() (storage.Tuple, bool, error) {
	if !j.open {
		return nil, false, ErrNotOpen
	}
	for {
		if j.cur == nil {
			t, ok, err := j.L.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = t
			j.rpos = 0
		}
		for j.rpos < len(j.right) {
			r := j.right[j.rpos]
			j.rpos++
			j.Comparisons++
			lv, rv := j.cur[j.LCol], r[j.RCol]
			if lv.IsNull() || rv.IsNull() {
				continue
			}
			if storage.Equal(lv, rv) {
				return concat(j.cur, r), true, nil
			}
		}
		j.cur = nil
	}
}

// Close implements Iterator.
func (j *NestedLoopJoin) Close() error {
	j.open = false
	j.right = nil
	return j.L.Close()
}

// CrossJoin is the cartesian product — the planner's last resort for
// disconnected join graphs. The right input is materialised at Open;
// the left is streamed.
type CrossJoin struct {
	L, R  Iterator
	right []storage.Tuple
	cur   storage.Tuple
	rpos  int
	open  bool
}

// NewCrossJoin builds l × r.
func NewCrossJoin(l, r Iterator) *CrossJoin {
	return &CrossJoin{L: l, R: r}
}

// Open implements Iterator.
func (j *CrossJoin) Open() error {
	right, err := Drain(j.R)
	if err != nil {
		return err
	}
	j.right = right
	j.cur = nil
	j.rpos = 0
	j.open = true
	return j.L.Open()
}

// Next implements Iterator.
func (j *CrossJoin) Next() (storage.Tuple, bool, error) {
	if !j.open {
		return nil, false, ErrNotOpen
	}
	for {
		if j.cur == nil {
			t, ok, err := j.L.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = t
			j.rpos = 0
		}
		if j.rpos < len(j.right) {
			r := j.right[j.rpos]
			j.rpos++
			return concat(j.cur, r), true, nil
		}
		j.cur = nil
	}
}

// Close implements Iterator.
func (j *CrossJoin) Close() error {
	j.open = false
	j.right = nil
	return j.L.Close()
}

// HashJoin is the classic blocking hash join: build the left input
// fully, then stream the right. First output cannot appear before the
// entire build side has arrived — the blocking behaviour the adaptive
// joins exist to fix.
type HashJoin struct {
	Build, Probe       Iterator
	BuildCol, ProbeCol int
	table              map[string][]storage.Tuple
	pending            []storage.Tuple
	open               bool
	// BuildRows counts the materialised build side.
	BuildRows int
}

// NewHashJoin joins build.bcol = probe.pcol.
func NewHashJoin(build, probe Iterator, bcol, pcol int) *HashJoin {
	return &HashJoin{Build: build, Probe: probe, BuildCol: bcol, ProbeCol: pcol}
}

// Open implements Iterator.
func (j *HashJoin) Open() error {
	rows, err := Drain(j.Build)
	if err != nil {
		return err
	}
	j.table = make(map[string][]storage.Tuple, len(rows))
	for _, t := range rows {
		v := t[j.BuildCol]
		if v.IsNull() {
			continue
		}
		k := joinKey(v)
		j.table[k] = append(j.table[k], t)
	}
	j.BuildRows = len(rows)
	j.pending = nil
	j.open = true
	return j.Probe.Open()
}

// Next implements Iterator.
func (j *HashJoin) Next() (storage.Tuple, bool, error) {
	if !j.open {
		return nil, false, ErrNotOpen
	}
	for {
		if len(j.pending) > 0 {
			t := j.pending[0]
			j.pending = j.pending[1:]
			return t, true, nil
		}
		p, ok, err := j.Probe.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		v := p[j.ProbeCol]
		if v.IsNull() {
			continue
		}
		for _, b := range j.table[joinKey(v)] {
			j.pending = append(j.pending, concat(b, p))
		}
	}
}

// Close implements Iterator.
func (j *HashJoin) Close() error {
	j.open = false
	j.table = nil
	return j.Probe.Close()
}

// IndexNLJoin probes a B-tree index for each outer tuple — the
// operator Scenario 3's re-optimiser injects when it "adds an index
// to one of the tables".
type IndexNLJoin struct {
	Outer    Iterator
	OuterCol int
	Index    *storage.BTree
	File     *storage.HeapFile
	pending  []storage.Tuple
	open     bool
	// Probes counts index lookups.
	Probes uint64
}

// NewIndexNLJoin joins outer.col against the indexed inner file.
func NewIndexNLJoin(outer Iterator, outerCol int, index *storage.BTree, file *storage.HeapFile) *IndexNLJoin {
	return &IndexNLJoin{Outer: outer, OuterCol: outerCol, Index: index, File: file}
}

// Open implements Iterator.
func (j *IndexNLJoin) Open() error {
	j.pending = nil
	j.open = true
	return j.Outer.Open()
}

// Next implements Iterator.
func (j *IndexNLJoin) Next() (storage.Tuple, bool, error) {
	if !j.open {
		return nil, false, ErrNotOpen
	}
	for {
		if len(j.pending) > 0 {
			t := j.pending[0]
			j.pending = j.pending[1:]
			return t, true, nil
		}
		o, ok, err := j.Outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		v := o[j.OuterCol]
		if v.IsNull() {
			continue
		}
		j.Probes++
		for _, rid := range j.Index.Search(v) {
			inner, err := j.File.Get(rid)
			if err != nil {
				continue // deleted under us
			}
			j.pending = append(j.pending, concat(o, inner))
		}
	}
}

// Close implements Iterator.
func (j *IndexNLJoin) Close() error { j.open = false; return j.Outer.Close() }

// ---------------------------------------------------------------------------
// Aggregation.

// AggKind is an aggregate function.
type AggKind int

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (k AggKind) String() string {
	return [...]string{"count", "sum", "avg", "min", "max"}[k]
}

// AggSpec is one aggregate over a column.
type AggSpec struct {
	Kind AggKind
	Col  int
}

// HashAggregate groups by GroupCol (or globally when GroupCol < 0)
// and computes the aggregates. Output tuples are [group, agg1, agg2,
// ...] (no group column when global), in first-seen group order.
type HashAggregate struct {
	In       Iterator
	GroupCol int
	Aggs     []AggSpec
	out      []storage.Tuple
	pos      int
	open     bool
}

// NewHashAggregate builds a grouping aggregate.
func NewHashAggregate(in Iterator, groupCol int, aggs []AggSpec) *HashAggregate {
	return &HashAggregate{In: in, GroupCol: groupCol, Aggs: aggs}
}

type aggState struct {
	group storage.Value
	count int64
	sum   []float64
	min   []storage.Value
	max   []storage.Value
	n     []int64
}

// aggAccum accumulates grouped aggregate state. It is the shared core
// of the serial HashAggregate and the parallel partial-aggregation
// path: workers each fill a local accumulator, then the partials are
// merged at the barrier (count/sum/n add, min/max fold), which is
// exact for every supported aggregate.
type aggAccum struct {
	groupCol int
	aggs     []AggSpec
	groups   map[string]*aggState
	order    []string // first-seen group order
}

func newAggAccum(groupCol int, aggs []AggSpec) *aggAccum {
	return &aggAccum{groupCol: groupCol, aggs: aggs, groups: map[string]*aggState{}}
}

func (a *aggAccum) state(gk string, gv storage.Value) *aggState {
	st, ok := a.groups[gk]
	if !ok {
		st = &aggState{
			group: gv,
			sum:   make([]float64, len(a.aggs)),
			min:   make([]storage.Value, len(a.aggs)),
			max:   make([]storage.Value, len(a.aggs)),
			n:     make([]int64, len(a.aggs)),
		}
		a.groups[gk] = st
		a.order = append(a.order, gk)
	}
	return st
}

// absorb folds one input tuple into the accumulator.
func (a *aggAccum) absorb(t storage.Tuple) {
	gk := "*"
	var gv storage.Value
	if a.groupCol >= 0 {
		gv = t[a.groupCol]
		gk = joinKey(gv)
	}
	st := a.state(gk, gv)
	st.count++
	for i, sp := range a.aggs {
		if sp.Kind == AggCount {
			continue
		}
		v := t[sp.Col]
		if v.IsNull() {
			continue
		}
		f, _ := v.AsFloat()
		if st.n[i] == 0 {
			st.min[i], st.max[i] = v, v
		} else {
			if storage.Compare(v, st.min[i]) < 0 {
				st.min[i] = v
			}
			if storage.Compare(v, st.max[i]) > 0 {
				st.max[i] = v
			}
		}
		st.sum[i] += f
		st.n[i]++
	}
}

// merge folds another accumulator's partial state into this one.
func (a *aggAccum) merge(b *aggAccum) {
	for _, gk := range b.order {
		bs := b.groups[gk]
		st := a.state(gk, bs.group)
		st.count += bs.count
		for i := range a.aggs {
			if bs.n[i] == 0 {
				continue
			}
			if st.n[i] == 0 {
				st.min[i], st.max[i] = bs.min[i], bs.max[i]
			} else {
				if storage.Compare(bs.min[i], st.min[i]) < 0 {
					st.min[i] = bs.min[i]
				}
				if storage.Compare(bs.max[i], st.max[i]) > 0 {
					st.max[i] = bs.max[i]
				}
			}
			st.sum[i] += bs.sum[i]
			st.n[i] += bs.n[i]
		}
	}
}

// rows renders the final output tuples ([group?, agg1, agg2, ...]) in
// first-seen group order.
func (a *aggAccum) rows() []storage.Tuple {
	order := a.order
	if a.groupCol < 0 && len(order) == 0 {
		// Global aggregate over empty input still emits one row.
		order = append(order, "*")
		a.groups["*"] = &aggState{
			sum: make([]float64, len(a.aggs)),
			min: make([]storage.Value, len(a.aggs)),
			max: make([]storage.Value, len(a.aggs)),
			n:   make([]int64, len(a.aggs)),
		}
	}
	var out []storage.Tuple
	for _, gk := range order {
		st := a.groups[gk]
		var t storage.Tuple
		if a.groupCol >= 0 {
			t = append(t, st.group)
		}
		for i, sp := range a.aggs {
			switch sp.Kind {
			case AggCount:
				t = append(t, storage.IntValue(st.count))
			case AggSum:
				t = append(t, storage.FloatValue(st.sum[i]))
			case AggAvg:
				if st.n[i] == 0 {
					t = append(t, storage.NullValue())
				} else {
					t = append(t, storage.FloatValue(st.sum[i]/float64(st.n[i])))
				}
			case AggMin:
				if st.n[i] == 0 {
					t = append(t, storage.NullValue())
				} else {
					t = append(t, st.min[i])
				}
			case AggMax:
				if st.n[i] == 0 {
					t = append(t, storage.NullValue())
				} else {
					t = append(t, st.max[i])
				}
			}
		}
		out = append(out, t)
	}
	return out
}

// Open implements Iterator.
func (a *HashAggregate) Open() error {
	rows, err := Drain(a.In)
	if err != nil {
		return err
	}
	acc := newAggAccum(a.GroupCol, a.Aggs)
	for _, t := range rows {
		acc.absorb(t)
	}
	a.out = acc.rows()
	a.pos = 0
	a.open = true
	return nil
}

// Next implements Iterator.
func (a *HashAggregate) Next() (storage.Tuple, bool, error) {
	if !a.open {
		return nil, false, ErrNotOpen
	}
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	t := a.out[a.pos]
	a.pos++
	return t, true, nil
}

// Close implements Iterator.
func (a *HashAggregate) Close() error { a.open, a.out = false, nil; return nil }

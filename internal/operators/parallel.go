// Morsel-driven parallel execution: the exchange layer that widens
// the Volcano pipeline across GOMAXPROCS workers. The design follows
// the morsel model (Leis et al.): sources hand out small batches
// ("morsels") to whichever worker is free, so skewed partitions never
// stall the pipeline; the hash join runs as a partitioned build (each
// worker scatters its morsels into W radix partitions, then each
// partition's hash table is assembled independently) followed by a
// partitioned probe against the immutable tables.
//
// The build phase honours the Scenario 3 safe-point protocol: an
// optional callback observes the cumulative build cardinality at
// morsel granularity from every worker; when any worker's observation
// trips the misestimate check, all workers finish their in-flight
// morsel and drain at the phase barrier, and the consumed prefix is
// handed back so the re-optimiser can replan without losing work.
package operators

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/adm-project/adm/internal/storage"
)

// DefaultMorselSize is the tuples-per-morsel default.
const DefaultMorselSize = 1024

// ParallelConfig tunes the exchange layer.
type ParallelConfig struct {
	// Workers is the worker-goroutine count; <=0 means GOMAXPROCS.
	Workers int
	// MorselSize is the batch granularity for sources that cut their
	// own morsels; <=0 means DefaultMorselSize. Heap sources use page
	// granularity regardless.
	MorselSize int
	// OnWorker, when non-nil, is invoked from each worker goroutine as
	// it finishes a phase with the number of tuples it processed (trace
	// span threading). It must be safe for concurrent use.
	OnWorker func(worker int, phase string, rows int)
}

// WorkerCount resolves the effective worker count.
func (c ParallelConfig) WorkerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c ParallelConfig) morselSize() int {
	if c.MorselSize > 0 {
		return c.MorselSize
	}
	return DefaultMorselSize
}

// ---------------------------------------------------------------------------
// Morsel sources.

// MorselSource hands out batches of tuples to concurrent workers.
// NextMorsel must be safe for concurrent use; a nil batch with nil
// error means the source is exhausted. Each tuple is handed out
// exactly once, so a partially-consumed source can keep serving the
// remainder to a later phase (how replanning resumes the aborted
// build side).
type MorselSource interface {
	NextMorsel() ([]storage.Tuple, error)
}

// SliceMorsels serves a tuple slice in fixed-size morsels claimed by
// an atomic cursor.
type SliceMorsels struct {
	tuples []storage.Tuple
	size   int
	pos    atomic.Int64
}

// NewSliceMorsels wraps tuples; size <= 0 means DefaultMorselSize.
func NewSliceMorsels(tuples []storage.Tuple, size int) *SliceMorsels {
	if size <= 0 {
		size = DefaultMorselSize
	}
	return &SliceMorsels{tuples: tuples, size: size}
}

// NextMorsel implements MorselSource.
func (s *SliceMorsels) NextMorsel() ([]storage.Tuple, error) {
	end := s.pos.Add(int64(s.size))
	start := end - int64(s.size)
	if start >= int64(len(s.tuples)) {
		return nil, nil
	}
	if end > int64(len(s.tuples)) {
		end = int64(len(s.tuples))
	}
	return s.tuples[start:end], nil
}

// HeapMorsels serves a heap file page-by-page: workers claim page
// indexes from an atomic cursor over a snapshot of the page list and
// read each page under its read latch, so the underlying file stays
// shareable with concurrent writers.
type HeapMorsels struct {
	file  *storage.HeapFile
	pages []storage.PageID
	next  atomic.Int64
}

// NewHeapMorsels snapshots file's pages for parallel consumption.
func NewHeapMorsels(file *storage.HeapFile) *HeapMorsels {
	return &HeapMorsels{file: file, pages: file.PageIDs()}
}

// NextMorsel implements MorselSource; one morsel is one page.
func (h *HeapMorsels) NextMorsel() ([]storage.Tuple, error) {
	for {
		i := h.next.Add(1) - 1
		if i >= int64(len(h.pages)) {
			return nil, nil
		}
		ts, err := h.file.PageTuples(h.pages[i])
		if err != nil {
			return nil, err
		}
		if len(ts) > 0 {
			return ts, nil
		}
	}
}

// FilterMorsels applies a predicate inside the consuming worker, so
// filtering parallelises with the scan.
type FilterMorsels struct {
	src  MorselSource
	pred Predicate
}

// NewFilterMorsels wraps src with pred.
func NewFilterMorsels(src MorselSource, pred Predicate) *FilterMorsels {
	return &FilterMorsels{src: src, pred: pred}
}

// NextMorsel implements MorselSource.
func (f *FilterMorsels) NextMorsel() ([]storage.Tuple, error) {
	for {
		m, err := f.src.NextMorsel()
		if err != nil || m == nil {
			return nil, err
		}
		var out []storage.Tuple
		for _, t := range m {
			if f.pred(t) {
				out = append(out, t)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

// IterMorsels adapts a serial Iterator (index scans, adaptive
// operators) to the morsel interface behind a mutex: the scan itself
// is serialised but everything downstream still parallelises.
type IterMorsels struct {
	mu     sync.Mutex
	it     Iterator
	size   int
	opened bool
	done   bool
}

// NewIterMorsels wraps it; size <= 0 means DefaultMorselSize. The
// iterator is opened lazily on first claim and closed at exhaustion.
func NewIterMorsels(it Iterator, size int) *IterMorsels {
	if size <= 0 {
		size = DefaultMorselSize
	}
	return &IterMorsels{it: it, size: size}
}

// NextMorsel implements MorselSource.
func (m *IterMorsels) NextMorsel() ([]storage.Tuple, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return nil, nil
	}
	if !m.opened {
		if err := m.it.Open(); err != nil {
			m.done = true
			return nil, err
		}
		m.opened = true
	}
	var out []storage.Tuple
	for len(out) < m.size {
		t, ok, err := m.it.Next()
		if err != nil {
			m.done = true
			m.it.Close()
			return nil, err
		}
		if !ok {
			m.done = true
			m.it.Close()
			break
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// ChainMorsels serves all of a, then all of b (the replay stream of a
// replanned join: consumed prefix first, then the untouched remainder
// of the aborted source).
type ChainMorsels struct {
	a, b  MorselSource
	aDone atomic.Bool
}

// NewChainMorsels concatenates two sources.
func NewChainMorsels(a, b MorselSource) *ChainMorsels { return &ChainMorsels{a: a, b: b} }

// NextMorsel implements MorselSource.
func (c *ChainMorsels) NextMorsel() ([]storage.Tuple, error) {
	if !c.aDone.Load() {
		m, err := c.a.NextMorsel()
		if err != nil || m != nil {
			return m, err
		}
		c.aDone.Store(true)
	}
	return c.b.NextMorsel()
}

// ---------------------------------------------------------------------------
// Parallel drain (scan/filter fan-out).

// DrainParallel collects every tuple of src using cfg workers. The
// result order is nondeterministic (a multiset).
func DrainParallel(src MorselSource, cfg ParallelConfig) ([]storage.Tuple, error) {
	w := cfg.WorkerCount()
	outs := make([][]storage.Tuple, w)
	counts := make([]int, w)
	var fail failFlag
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for !fail.failed() {
				m, err := src.NextMorsel()
				if err != nil {
					fail.set(err)
					return
				}
				if m == nil {
					break
				}
				outs[i] = append(outs[i], m...)
				counts[i] += len(m)
			}
			if cfg.OnWorker != nil {
				cfg.OnWorker(i, "scan", counts[i])
			}
		}(i)
	}
	wg.Wait()
	if err := fail.err(); err != nil {
		return nil, err
	}
	return mergeSlices(outs), nil
}

// ---------------------------------------------------------------------------
// Partitioned parallel hash join.

// ErrBuildAborted is returned by ParallelBuild when the safe-point
// callback vetoed continuing; the consumed prefix accompanies it.
var ErrBuildAborted = errors.New("operators: parallel build aborted at safe point")

// BuildTable is the immutable partitioned hash table produced by
// ParallelBuild; once built it is probed lock-free by any number of
// workers.
type BuildTable struct {
	parts []map[string][]storage.Tuple
	rows  int
}

// Rows returns the number of build tuples in the table (the memory
// proxy the adaptive report tracks).
func (t *BuildTable) Rows() int { return t.rows }

type keyedTuple struct {
	key string
	t   storage.Tuple
}

// ParallelBuild consumes src with cfg workers and assembles the
// partitioned hash table on col. safePoint, when non-nil, is called
// (possibly concurrently) after every morsel with the cumulative
// build row count; returning false aborts the build: every claimed
// morsel is still fully absorbed, workers drain at the barrier, and
// (nil, consumedPrefix, ErrBuildAborted) is returned. The caller can
// then replan and replay the prefix, resuming src for the remainder.
func ParallelBuild(src MorselSource, col int, cfg ParallelConfig,
	safePoint func(rows int) bool) (*BuildTable, []storage.Tuple, error) {
	w := cfg.WorkerCount()
	scatter := make([][][]keyedTuple, w) // [worker][partition]
	nulls := make([][]storage.Tuple, w)  // null keys never join but must replay
	var consumed atomic.Int64
	var aborted atomic.Bool
	var fail failFlag
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local := make([][]keyedTuple, w)
			rows := 0
			for !aborted.Load() && !fail.failed() {
				m, err := src.NextMorsel()
				if err != nil {
					fail.set(err)
					break
				}
				if m == nil {
					break
				}
				for _, t := range m {
					v := t[col]
					if v.IsNull() {
						nulls[i] = append(nulls[i], t)
						continue
					}
					k := joinKey(v)
					p := int(fnv32(k) % uint32(w))
					local[p] = append(local[p], keyedTuple{key: k, t: t})
				}
				rows += len(m)
				total := consumed.Add(int64(len(m)))
				if safePoint != nil && !safePoint(int(total)) {
					aborted.Store(true)
					break
				}
			}
			scatter[i] = local
			if cfg.OnWorker != nil {
				cfg.OnWorker(i, "build", rows)
			}
		}(i)
	}
	wg.Wait() // the safe-point barrier: no worker is mid-tuple past here
	if err := fail.err(); err != nil {
		return nil, nil, err
	}
	if aborted.Load() {
		var prefix []storage.Tuple
		for i := 0; i < w; i++ {
			for _, part := range scatter[i] {
				for _, kt := range part {
					prefix = append(prefix, kt.t)
				}
			}
			prefix = append(prefix, nulls[i]...)
		}
		return nil, prefix, ErrBuildAborted
	}
	// Assemble each partition's hash table; partitions are disjoint so
	// this fans out without locks.
	parts := make([]map[string][]storage.Tuple, w)
	for p := 0; p < w; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			n := 0
			for i := 0; i < w; i++ {
				n += len(scatter[i][p])
			}
			table := make(map[string][]storage.Tuple, n)
			for i := 0; i < w; i++ {
				for _, kt := range scatter[i][p] {
					table[kt.key] = append(table[kt.key], kt.t)
				}
			}
			parts[p] = table
		}(p)
	}
	wg.Wait()
	return &BuildTable{parts: parts, rows: int(consumed.Load())}, nil, nil
}

// ParallelProbe streams src through the table with cfg workers and
// returns the joined tuples (build side's columns first, as HashJoin
// emits). The result order is nondeterministic.
func (t *BuildTable) ParallelProbe(src MorselSource, col int, cfg ParallelConfig) ([]storage.Tuple, error) {
	w := cfg.WorkerCount()
	np := uint32(len(t.parts))
	outs := make([][]storage.Tuple, w)
	var fail failFlag
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows := 0
			for !fail.failed() {
				m, err := src.NextMorsel()
				if err != nil {
					fail.set(err)
					return
				}
				if m == nil {
					break
				}
				for _, p := range m {
					v := p[col]
					if v.IsNull() {
						continue
					}
					k := joinKey(v)
					for _, b := range t.parts[fnv32(k)%np][k] {
						outs[i] = append(outs[i], concat(b, p))
					}
				}
				rows += len(m)
			}
			if cfg.OnWorker != nil {
				cfg.OnWorker(i, "probe", rows)
			}
		}(i)
	}
	wg.Wait()
	if err := fail.err(); err != nil {
		return nil, err
	}
	return mergeSlices(outs), nil
}

// ---------------------------------------------------------------------------
// Parallel aggregation.

// ParallelHashAggregate computes grouped aggregates over src with cfg
// workers: worker-local partial accumulators, merged at the barrier.
// Merging is exact for COUNT/SUM/AVG/MIN/MAX (integer sums stay exact
// in float64 below 2^53; float SUM/AVG may differ from the serial
// result in the last ulps because addition order varies). Group order
// in the output is nondeterministic.
func ParallelHashAggregate(src MorselSource, groupCol int, aggs []AggSpec,
	cfg ParallelConfig) ([]storage.Tuple, error) {
	w := cfg.WorkerCount()
	partials := make([]*aggAccum, w)
	var fail failFlag
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acc := newAggAccum(groupCol, aggs)
			rows := 0
			for !fail.failed() {
				m, err := src.NextMorsel()
				if err != nil {
					fail.set(err)
					break
				}
				if m == nil {
					break
				}
				for _, t := range m {
					acc.absorb(t)
				}
				rows += len(m)
			}
			partials[i] = acc
			if cfg.OnWorker != nil {
				cfg.OnWorker(i, "aggregate", rows)
			}
		}(i)
	}
	wg.Wait()
	if err := fail.err(); err != nil {
		return nil, err
	}
	final := partials[0]
	for _, p := range partials[1:] {
		final.merge(p)
	}
	return final.rows(), nil
}

// ---------------------------------------------------------------------------
// Shared plumbing.

// failFlag latches the first error across workers; failed() is the
// cheap cooperative-cancellation check workers poll between morsels.
type failFlag struct {
	flag atomic.Bool
	mu   sync.Mutex
	e    error
}

func (f *failFlag) failed() bool { return f.flag.Load() }

func (f *failFlag) set(err error) {
	f.mu.Lock()
	if f.e == nil {
		f.e = err
	}
	f.mu.Unlock()
	f.flag.Store(true)
}

func (f *failFlag) err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.e
}

// mergeSlices concatenates per-worker outputs.
func mergeSlices(outs [][]storage.Tuple) []storage.Tuple {
	n := 0
	for _, o := range outs {
		n += len(o)
	}
	merged := make([]storage.Tuple, 0, n)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged
}

// fnv32 is FNV-1a over the join key, the radix-partition hash.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

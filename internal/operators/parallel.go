// Morsel-driven parallel execution: the exchange layer that widens
// the Volcano pipeline across GOMAXPROCS workers. The design follows
// the morsel model (Leis et al.): sources hand out small batches
// ("morsels") to whichever worker is free, so skewed partitions never
// stall the pipeline; the hash join runs as a partitioned build (each
// worker scatters its morsels into W radix partitions, then each
// partition's hash table is assembled independently) followed by a
// partitioned probe against the immutable tables.
//
// The data plane is batch-native (see batch.go): workers pull into
// sync.Pool-recycled Batches, heap sources decode whole pinned pages
// under one latch acquisition, join keys are comparable structs (no
// per-tuple key formatting or allocation), and probe output is carved
// from per-worker value arenas. The scalar MorselSource interface from
// the first parallel executor is kept as a thin adapter so existing
// callers and the index-scan path keep working.
//
// The build phase honours the Scenario 3 safe-point protocol: an
// optional callback observes the cumulative build cardinality at
// batch granularity from every worker; when any worker's observation
// trips the misestimate check, all workers finish their in-flight
// batch and drain at the phase barrier, and the consumed prefix is
// handed back so the re-optimiser can replan without losing work. The
// prefix counts tuples, not batches, so replay granularity is
// unchanged from the scalar executor.
package operators

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"github.com/adm-project/adm/internal/storage"
)

// DefaultMorselSize is the tuples-per-morsel default.
const DefaultMorselSize = 1024

// ParallelConfig tunes the exchange layer.
type ParallelConfig struct {
	// Workers is the worker-goroutine count; <=0 means GOMAXPROCS.
	Workers int
	// MorselSize is the batch granularity for sources that cut their
	// own morsels; <=0 means DefaultMorselSize. Heap sources use page
	// granularity regardless.
	MorselSize int
	// OnWorker, when non-nil, is invoked from each worker goroutine as
	// it finishes a phase with the number of tuples it processed (trace
	// span threading). It must be safe for concurrent use.
	OnWorker func(worker int, phase string, rows int)
	// Limit, when > 0, is a cooperative output quota: workers stop
	// claiming batches as soon as the combined output reaches Limit
	// rows, so a satisfied downstream LIMIT cancels the rest of the
	// scan instead of finishing it. Checked at batch granularity — the
	// drain may return slightly more than Limit rows (in-flight batches
	// complete); callers truncate. <= 0 means unlimited.
	Limit int
	// Cancel, when non-nil, is polled by every worker between batches:
	// a non-nil return cancels the statement cooperatively (the error
	// latches into the shared failFlag, all workers drain at the phase
	// barrier, and it surfaces as the statement error). This is how
	// per-statement deadlines and dead-client detection reach the
	// morsel pipelines. Must be safe for concurrent use and cheap — it
	// runs once per claimed batch.
	Cancel func() error
	// Budget, when non-nil, meters the bytes each phase materialises
	// (drained rows, build tables, probe output, sort runs); overflow
	// cancels the statement with ErrMemBudget through the same
	// cooperative path.
	Budget *MemBudget
}

// WorkerCount resolves the effective worker count.
func (c ParallelConfig) WorkerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c ParallelConfig) morselSize() int {
	if c.MorselSize > 0 {
		return c.MorselSize
	}
	return DefaultMorselSize
}

// ---------------------------------------------------------------------------
// Batch sources (the concurrent counterpart of BatchIterator).

// BatchSource hands out batches of tuples to concurrent workers.
// NextBatch must be safe for concurrent use; it resets and refills b
// and returns the tuple count, 0 with nil error meaning exhausted.
// Each tuple is handed out exactly once, so a partially-consumed
// source can keep serving the remainder to a later phase (how
// replanning resumes the aborted build side). Tuple values must stay
// valid after b is reused — sources decode arena-style or serve
// stable slices, so consumers may retain tuples without copying.
type BatchSource interface {
	NextBatch(b *Batch) (int, error)
}

// HeapBatches serves a heap file page-by-page: workers claim page
// indexes from an atomic cursor over a snapshot of the page list and
// decode each page into their own batch under one read-latch
// acquisition, so the underlying file stays shareable with concurrent
// writers. With a kernel attached (NewHeapBatchesKernel), each claimed
// page is first tested against its zone map — pruned pages cost one
// atomic increment instead of a pin+decode — and survivors are
// filtered through the kernel inside the claiming worker.
type HeapBatches struct {
	file   storage.HeapReader
	kernel *FilterKernel
	pages  []storage.PageID
	zones  [][]storage.ColZone
	next   atomic.Int64
}

// NewHeapBatches snapshots file's pages for parallel consumption.
func NewHeapBatches(file storage.HeapReader) *HeapBatches {
	return &HeapBatches{file: file, pages: file.PageIDs()}
}

// NewHeapBatchesKernel snapshots file's pages and zone maps for
// parallel consumption with kernel-fused filtering. The kernel (shared
// by all workers) may be nil, giving plain NewHeapBatches behaviour.
func NewHeapBatchesKernel(file storage.HeapReader, kernel *FilterKernel) *HeapBatches {
	h := &HeapBatches{file: file, kernel: kernel, pages: file.PageIDs()}
	if kernel != nil {
		if zr, ok := file.(storage.ZoneReader); ok {
			h.zones = zr.PageZones(h.pages)
		}
	}
	return h
}

// NextBatch implements BatchSource; one batch is one page (post
// filter, when a kernel is fused).
func (h *HeapBatches) NextBatch(b *Batch) (int, error) {
	for {
		i := h.next.Add(1) - 1
		if i >= int64(len(h.pages)) {
			b.Reset()
			return 0, nil
		}
		if h.kernel != nil && i < int64(len(h.zones)) {
			if !h.kernel.MayMatchPage(h.zones[i]) {
				h.kernel.countPage(true)
				continue
			}
		}
		ts, err := h.file.PageTuplesInto(h.pages[i], b.Tuples[:0])
		if err != nil {
			return 0, err
		}
		b.Tuples = ts
		if h.kernel != nil {
			h.kernel.countPage(false)
			if h.kernel.Apply(b) > 0 {
				return len(b.Tuples), nil
			}
			continue
		}
		if len(ts) > 0 {
			return len(ts), nil
		}
	}
}

// SliceBatches serves a tuple slice in fixed-size batches claimed by
// an atomic cursor.
type SliceBatches struct {
	tuples []storage.Tuple
	size   int
	pos    atomic.Int64
}

// NewSliceBatches wraps tuples; size <= 0 means DefaultBatchSize.
func NewSliceBatches(tuples []storage.Tuple, size int) *SliceBatches {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &SliceBatches{tuples: tuples, size: size}
}

// NextBatch implements BatchSource.
func (s *SliceBatches) NextBatch(b *Batch) (int, error) {
	end := s.pos.Add(int64(s.size))
	start := end - int64(s.size)
	if start >= int64(len(s.tuples)) {
		b.Reset()
		return 0, nil
	}
	if end > int64(len(s.tuples)) {
		end = int64(len(s.tuples))
	}
	b.Tuples = append(b.Tuples[:0], s.tuples[start:end]...)
	return len(b.Tuples), nil
}

// FilterBatches applies a predicate inside the consuming worker by
// compacting each batch in place, so filtering parallelises with the
// scan at zero copies.
type FilterBatches struct {
	src  BatchSource
	pred Predicate
}

// NewFilterBatches wraps src with pred.
func NewFilterBatches(src BatchSource, pred Predicate) *FilterBatches {
	return &FilterBatches{src: src, pred: pred}
}

// NextBatch implements BatchSource.
func (f *FilterBatches) NextBatch(b *Batch) (int, error) {
	for {
		n, err := f.src.NextBatch(b)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, nil
		}
		if k := filterInPlace(b, f.pred); k > 0 {
			return k, nil
		}
	}
}

// IterBatches adapts a serial Iterator (index scans, adaptive
// operators) to the batch-source interface behind a mutex: the scan
// itself is serialised but everything downstream still parallelises.
type IterBatches struct {
	mu     sync.Mutex
	it     Iterator
	size   int
	opened bool
	done   bool
}

// NewIterBatches wraps it; size <= 0 means DefaultBatchSize. The
// iterator is opened lazily on first claim and closed at exhaustion.
func NewIterBatches(it Iterator, size int) *IterBatches {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &IterBatches{it: it, size: size}
}

// NextBatch implements BatchSource.
func (m *IterBatches) NextBatch(b *Batch) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b.Reset()
	if m.done {
		return 0, nil
	}
	if !m.opened {
		if err := m.it.Open(); err != nil {
			m.done = true
			return 0, err
		}
		m.opened = true
	}
	for len(b.Tuples) < m.size {
		t, ok, err := m.it.Next()
		if err != nil {
			m.done = true
			return 0, errors.Join(err, m.it.Close())
		}
		if !ok {
			m.done = true
			if cerr := m.it.Close(); cerr != nil {
				return 0, cerr
			}
			break
		}
		b.Tuples = append(b.Tuples, t)
	}
	return len(b.Tuples), nil
}

// ChainBatches serves all of a, then all of b (the replay stream of a
// replanned join: consumed prefix first, then the untouched remainder
// of the aborted source).
type ChainBatches struct {
	a, b  BatchSource
	aDone atomic.Bool
}

// NewChainBatches concatenates two sources.
func NewChainBatches(a, b BatchSource) *ChainBatches { return &ChainBatches{a: a, b: b} }

// NextBatch implements BatchSource.
func (c *ChainBatches) NextBatch(b *Batch) (int, error) {
	if !c.aDone.Load() {
		n, err := c.a.NextBatch(b)
		if err != nil || n > 0 {
			return n, err
		}
		c.aDone.Store(true)
	}
	return c.b.NextBatch(b)
}

// ---------------------------------------------------------------------------
// Scalar morsel compatibility layer.

// MorselSource hands out batches of tuples to concurrent workers.
// NextMorsel must be safe for concurrent use; a nil batch with nil
// error means the source is exhausted. Kept for callers predating the
// batch path; the executor adapts it via Batches.
type MorselSource interface {
	NextMorsel() ([]storage.Tuple, error)
}

// Batches adapts a MorselSource to the BatchSource interface.
func Batches(src MorselSource) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &morselBatches{src: src}
}

type morselBatches struct{ src MorselSource }

func (m *morselBatches) NextBatch(b *Batch) (int, error) {
	morsel, err := m.src.NextMorsel()
	if err != nil || morsel == nil {
		b.Reset()
		return 0, err
	}
	b.Tuples = append(b.Tuples[:0], morsel...)
	return len(b.Tuples), nil
}

// SliceMorsels serves a tuple slice in fixed-size morsels claimed by
// an atomic cursor.
type SliceMorsels struct{ SliceBatches }

// NewSliceMorsels wraps tuples; size <= 0 means DefaultMorselSize.
func NewSliceMorsels(tuples []storage.Tuple, size int) *SliceMorsels {
	return &SliceMorsels{*NewSliceBatches(tuples, size)}
}

// NextMorsel implements MorselSource.
func (s *SliceMorsels) NextMorsel() ([]storage.Tuple, error) {
	end := s.pos.Add(int64(s.size))
	start := end - int64(s.size)
	if start >= int64(len(s.tuples)) {
		return nil, nil
	}
	if end > int64(len(s.tuples)) {
		end = int64(len(s.tuples))
	}
	return s.tuples[start:end], nil
}

// HeapMorsels serves a heap file page-by-page (scalar shim over
// HeapBatches).
type HeapMorsels struct{ HeapBatches }

// NewHeapMorsels snapshots file's pages for parallel consumption.
func NewHeapMorsels(file storage.HeapReader) *HeapMorsels {
	return &HeapMorsels{HeapBatches{file: file, pages: file.PageIDs()}}
}

// NextMorsel implements MorselSource; one morsel is one page.
func (h *HeapMorsels) NextMorsel() ([]storage.Tuple, error) {
	for {
		i := h.next.Add(1) - 1
		if i >= int64(len(h.pages)) {
			return nil, nil
		}
		ts, err := h.file.PageTuples(h.pages[i])
		if err != nil {
			return nil, err
		}
		if len(ts) > 0 {
			return ts, nil
		}
	}
}

// FilterMorsels applies a predicate inside the consuming worker, so
// filtering parallelises with the scan.
type FilterMorsels struct {
	src  MorselSource
	pred Predicate
}

// NewFilterMorsels wraps src with pred.
func NewFilterMorsels(src MorselSource, pred Predicate) *FilterMorsels {
	return &FilterMorsels{src: src, pred: pred}
}

// NextMorsel implements MorselSource.
func (f *FilterMorsels) NextMorsel() ([]storage.Tuple, error) {
	for {
		m, err := f.src.NextMorsel()
		if err != nil || m == nil {
			return nil, err
		}
		out := make([]storage.Tuple, 0, len(m))
		for _, t := range m {
			if f.pred(t) {
				out = append(out, t)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

// IterMorsels adapts a serial Iterator to the morsel interface behind
// a mutex (scalar shim over IterBatches).
type IterMorsels struct{ IterBatches }

// NewIterMorsels wraps it; size <= 0 means DefaultMorselSize.
func NewIterMorsels(it Iterator, size int) *IterMorsels {
	return &IterMorsels{*NewIterBatches(it, size)}
}

// NextMorsel implements MorselSource.
func (m *IterMorsels) NextMorsel() ([]storage.Tuple, error) {
	b := GetBatch()
	defer PutBatch(b)
	n, err := m.NextBatch(b)
	if err != nil || n == 0 {
		return nil, err
	}
	return append([]storage.Tuple(nil), b.Tuples...), nil
}

// ChainMorsels serves all of a, then all of b.
type ChainMorsels struct {
	a, b  MorselSource
	aDone atomic.Bool
}

// NewChainMorsels concatenates two sources.
func NewChainMorsels(a, b MorselSource) *ChainMorsels { return &ChainMorsels{a: a, b: b} }

// NextMorsel implements MorselSource.
func (c *ChainMorsels) NextMorsel() ([]storage.Tuple, error) {
	if !c.aDone.Load() {
		m, err := c.a.NextMorsel()
		if err != nil || m != nil {
			return m, err
		}
		c.aDone.Store(true)
	}
	return c.b.NextMorsel()
}

// ---------------------------------------------------------------------------
// Parallel drain (scan/filter fan-out).

// DrainParallel collects every tuple of src using cfg workers. The
// result order is nondeterministic (a multiset).
func DrainParallel(src MorselSource, cfg ParallelConfig) ([]storage.Tuple, error) {
	return DrainParallelBatches(Batches(src), cfg)
}

// DrainParallelBatches collects every tuple of src using cfg workers,
// each pulling into a pool-recycled batch. The result order is
// nondeterministic (a multiset). When cfg.Limit > 0, workers stop
// claiming once the combined output covers the quota.
func DrainParallelBatches(src BatchSource, cfg ParallelConfig) ([]storage.Tuple, error) {
	w := cfg.WorkerCount()
	outs := make([][]storage.Tuple, w)
	var produced atomic.Int64
	var fail failFlag
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer containPanic(&fail, i, "scan")
			b := GetBatch()
			defer PutBatch(b)
			rows := 0
			for !fail.failed() {
				if cfg.Limit > 0 && produced.Load() >= int64(cfg.Limit) {
					break
				}
				if cfg.interrupted(&fail) {
					break
				}
				n, err := src.NextBatch(b)
				if err != nil {
					fail.set(err)
					return
				}
				if n == 0 {
					break
				}
				if cfg.charge(&fail, b.Tuples) {
					break
				}
				outs[i] = append(outs[i], b.Tuples...)
				rows += n
				if cfg.Limit > 0 {
					produced.Add(int64(n))
				}
			}
			if cfg.OnWorker != nil {
				cfg.OnWorker(i, "scan", rows)
			}
		}(i)
	}
	wg.Wait()
	if err := fail.err(); err != nil {
		return nil, err
	}
	return mergeSlices(outs), nil
}

// ---------------------------------------------------------------------------
// Join keys. The first executor rendered every key to a string
// (fmt.Sprintf per tuple — the single hottest call on the join path);
// keys are now comparable structs hashed directly.

// joinK is a hash/equality key over a Value, normalised so mixed
// numeric kinds (and bools) join per Compare semantics: any value with
// a float image keys by that image, strings key by content.
type joinK struct {
	f   float64
	s   string
	num bool
}

// joinKeyOf derives the key; ok is false for NULL (never joins).
func joinKeyOf(v storage.Value) (joinK, bool) {
	if f, ok := v.AsFloat(); ok {
		if f == 0 {
			f = 0 // fold -0 into +0 so both hash to one partition
		}
		if math.IsNaN(f) {
			// Map lookups can't hit float NaN keys; fold NaN to a
			// reserved string key (distinct from any user string, which
			// would key with num=false but equal content and s-prefix
			// hashing — the \x00 prefix cannot appear in decoded text
			// produced by our encoder's joinable kinds).
			return joinK{s: "\x00NaN"}, true
		}
		return joinK{f: f, num: true}, true
	}
	if v.Kind == storage.KindNull {
		return joinK{}, false
	}
	return joinK{s: v.Str}, true
}

// hash radix-partitions a key (FNV-1a).
func (k joinK) hash() uint32 {
	if k.num {
		b := math.Float64bits(k.f)
		h := uint32(2166136261)
		for i := 0; i < 64; i += 8 {
			h ^= uint32(b>>i) & 0xff
			h *= 16777619
		}
		return h
	}
	return fnv32(k.s)
}

// ---------------------------------------------------------------------------
// Partitioned parallel hash join.

// ErrBuildAborted is returned by ParallelBuild when the safe-point
// callback vetoed continuing; the consumed prefix accompanies it.
var ErrBuildAborted = errors.New("operators: parallel build aborted at safe point")

// BuildTable is the immutable partitioned hash table produced by
// ParallelBuild; once built it is probed lock-free by any number of
// workers.
type BuildTable struct {
	parts []map[joinK][]storage.Tuple
	rows  int
}

// Rows returns the number of build tuples in the table (the memory
// proxy the adaptive report tracks).
func (t *BuildTable) Rows() int { return t.rows }

// partBuf is one worker's scatter output for one partition. Tuples
// are aliased, not copied: batch sources guarantee stable values.
type partBuf struct {
	keys []joinK
	tups []storage.Tuple
}

// ParallelBuild consumes src with cfg workers and assembles the
// partitioned hash table on col (scalar-source shim over
// ParallelBuildBatches).
func ParallelBuild(src MorselSource, col int, cfg ParallelConfig,
	safePoint func(rows int) bool) (*BuildTable, []storage.Tuple, error) {
	return ParallelBuildBatches(Batches(src), col, cfg, safePoint)
}

// ParallelBuildBatches consumes src with cfg workers and assembles the
// partitioned hash table on col. safePoint, when non-nil, is called
// (possibly concurrently) after every batch with the cumulative
// build row count; returning false aborts the build: every claimed
// batch is still fully absorbed, workers drain at the barrier, and
// (nil, consumedPrefix, ErrBuildAborted) is returned. The caller can
// then replan and replay the prefix, resuming src for the remainder.
func ParallelBuildBatches(src BatchSource, col int, cfg ParallelConfig,
	safePoint func(rows int) bool) (*BuildTable, []storage.Tuple, error) {
	w := cfg.WorkerCount()
	scatter := make([][]partBuf, w)     // [worker][partition]
	nulls := make([][]storage.Tuple, w) // null keys never join but must replay
	var consumed atomic.Int64
	var aborted atomic.Bool
	var fail failFlag
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer containPanic(&fail, i, "build")
			b := GetBatch()
			defer PutBatch(b)
			local := make([]partBuf, w)
			rows := 0
			for !aborted.Load() && !fail.failed() {
				if cfg.interrupted(&fail) {
					break
				}
				n, err := src.NextBatch(b)
				if err != nil {
					fail.set(err)
					break
				}
				if n == 0 {
					break
				}
				if cfg.charge(&fail, b.Tuples) {
					break
				}
				for _, t := range b.Tuples {
					k, ok := joinKeyOf(t[col])
					if !ok {
						nulls[i] = append(nulls[i], t)
						continue
					}
					p := int(k.hash() % uint32(w))
					local[p].keys = append(local[p].keys, k)
					local[p].tups = append(local[p].tups, t)
				}
				rows += n
				total := consumed.Add(int64(n))
				if safePoint != nil && !safePoint(int(total)) {
					aborted.Store(true)
					break
				}
			}
			scatter[i] = local
			if cfg.OnWorker != nil {
				cfg.OnWorker(i, "build", rows)
			}
		}(i)
	}
	wg.Wait() // the safe-point barrier: no worker is mid-tuple past here
	if err := fail.err(); err != nil {
		return nil, nil, err
	}
	if aborted.Load() {
		var prefix []storage.Tuple
		for i := 0; i < w; i++ {
			for _, part := range scatter[i] {
				prefix = append(prefix, part.tups...)
			}
			prefix = append(prefix, nulls[i]...)
		}
		return nil, prefix, ErrBuildAborted
	}
	// Assemble each partition's hash table; partitions are disjoint so
	// this fans out without locks.
	parts := make([]map[joinK][]storage.Tuple, w)
	for p := 0; p < w; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer containPanic(&fail, p, "assemble")
			n := 0
			for i := 0; i < w; i++ {
				n += len(scatter[i][p].keys)
			}
			table := make(map[joinK][]storage.Tuple, n)
			for i := 0; i < w; i++ {
				pb := &scatter[i][p]
				for j, k := range pb.keys {
					table[k] = append(table[k], pb.tups[j])
				}
			}
			parts[p] = table
		}(p)
	}
	wg.Wait()
	return &BuildTable{parts: parts, rows: int(consumed.Load())}, nil, nil
}

// probeOut accumulates join output in a value arena: concatenated
// (build, probe) values back-to-back in vals, tuple boundaries in
// ends. materialize carves the tuple headers once the arena is final,
// so a probe allocates O(log n) arena growths instead of one
// allocation per output row.
type probeOut struct {
	vals storage.Tuple
	ends []int
}

func (o *probeOut) reset() { o.vals, o.ends = o.vals[:0], o.ends[:0] }

func (o *probeOut) emit(b, p storage.Tuple) {
	o.vals = append(o.vals, b...)
	o.vals = append(o.vals, p...)
	o.ends = append(o.ends, len(o.vals))
}

// materialize appends the accumulated tuples to dst. The arena is
// owned by the returned tuples; the probeOut must be reset (not
// reused in place) if more output is needed.
func (o *probeOut) materialize(dst []storage.Tuple) []storage.Tuple {
	start := 0
	for _, end := range o.ends {
		dst = append(dst, o.vals[start:end:end])
		start = end
	}
	return dst
}

// probeBatch probes every tuple of rows against the table, emitting
// matches (build columns first) into out.
func (t *BuildTable) probeBatch(rows []storage.Tuple, col int, out *probeOut) {
	np := uint32(len(t.parts))
	for _, p := range rows {
		k, ok := joinKeyOf(p[col])
		if !ok {
			continue
		}
		for _, b := range t.parts[k.hash()%np][k] {
			out.emit(b, p)
		}
	}
}

// probeBatchProject is probeBatch with the final projection fused in:
// cols index the conceptual joined tuple (build columns first, then
// probe columns, buildW of the former), and only those columns are
// emitted. Fusing skips materialising the wide joined tuple for
// queries that immediately project it away.
func (t *BuildTable) probeBatchProject(rows []storage.Tuple, col int, out *probeOut, cols []int, buildW int) {
	np := uint32(len(t.parts))
	for _, p := range rows {
		k, ok := joinKeyOf(p[col])
		if !ok {
			continue
		}
		for _, b := range t.parts[k.hash()%np][k] {
			for _, c := range cols {
				if c < buildW {
					out.vals = append(out.vals, b[c])
				} else {
					out.vals = append(out.vals, p[c-buildW])
				}
			}
			out.ends = append(out.ends, len(out.vals))
		}
	}
}

// ParallelProbe streams src through the table with cfg workers
// (scalar-source shim over ParallelProbeBatches).
func (t *BuildTable) ParallelProbe(src MorselSource, col int, cfg ParallelConfig) ([]storage.Tuple, error) {
	return t.ParallelProbeBatches(Batches(src), col, cfg)
}

// ParallelProbeBatches streams src through the table with cfg workers
// and returns the joined tuples (build side's columns first, as
// HashJoin emits). Each worker accumulates output in a private value
// arena. The result order is nondeterministic.
func (t *BuildTable) ParallelProbeBatches(src BatchSource, col int, cfg ParallelConfig) ([]storage.Tuple, error) {
	return t.parallelProbe(src, col, cfg, nil, 0)
}

// ParallelProbeProject is ParallelProbeBatches with the projection
// fused into the probe: each output tuple holds only cols (indexes
// into the joined build++probe layout, buildW build columns). The
// wide intermediate join tuple is never materialised.
func (t *BuildTable) ParallelProbeProject(src BatchSource, col int, cfg ParallelConfig,
	cols []int, buildW int) ([]storage.Tuple, error) {
	return t.parallelProbe(src, col, cfg, cols, buildW)
}

func (t *BuildTable) parallelProbe(src BatchSource, col int, cfg ParallelConfig,
	cols []int, buildW int) ([]storage.Tuple, error) {
	w := cfg.WorkerCount()
	outs := make([][]storage.Tuple, w)
	var produced atomic.Int64
	var fail failFlag
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer containPanic(&fail, i, "probe")
			b := GetBatch()
			defer PutBatch(b)
			var out probeOut
			rows := 0
			for !fail.failed() {
				if cfg.Limit > 0 && produced.Load() >= int64(cfg.Limit) {
					break
				}
				if cfg.interrupted(&fail) {
					break
				}
				n, err := src.NextBatch(b)
				if err != nil {
					fail.set(err)
					return
				}
				if n == 0 {
					break
				}
				before := len(out.ends)
				beforeVals := len(out.vals)
				if cols == nil {
					t.probeBatch(b.Tuples, col, &out)
				} else {
					t.probeBatchProject(b.Tuples, col, &out, cols, buildW)
				}
				if cfg.chargeVals(&fail, out.vals[beforeVals:]) {
					break
				}
				rows += n
				if cfg.Limit > 0 {
					produced.Add(int64(len(out.ends) - before))
				}
			}
			outs[i] = out.materialize(nil)
			if cfg.OnWorker != nil {
				cfg.OnWorker(i, "probe", rows)
			}
		}(i)
	}
	wg.Wait()
	if err := fail.err(); err != nil {
		return nil, err
	}
	return mergeSlices(outs), nil
}

// ---------------------------------------------------------------------------
// Parallel aggregation.

// ParallelHashAggregate computes grouped aggregates over src (scalar
// shim over ParallelHashAggregateBatches).
func ParallelHashAggregate(src MorselSource, groupCol int, aggs []AggSpec,
	cfg ParallelConfig) ([]storage.Tuple, error) {
	return ParallelHashAggregateBatches(Batches(src), groupCol, aggs, cfg)
}

// ParallelHashAggregateBatches computes grouped aggregates over src
// with cfg workers: worker-local partial accumulators, merged at the
// barrier. Merging is exact for COUNT/SUM/AVG/MIN/MAX (integer sums
// stay exact in float64 below 2^53; float SUM/AVG may differ from the
// serial result in the last ulps because addition order varies).
// Group order in the output is nondeterministic.
func ParallelHashAggregateBatches(src BatchSource, groupCol int, aggs []AggSpec,
	cfg ParallelConfig) ([]storage.Tuple, error) {
	w := cfg.WorkerCount()
	partials := make([]*aggAccum, w)
	var fail failFlag
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer containPanic(&fail, i, "aggregate")
			b := GetBatch()
			defer PutBatch(b)
			acc := newAggAccum(groupCol, aggs)
			rows := 0
			for !fail.failed() {
				if cfg.interrupted(&fail) {
					break
				}
				n, err := src.NextBatch(b)
				if err != nil {
					fail.set(err)
					break
				}
				if n == 0 {
					break
				}
				for _, t := range b.Tuples {
					acc.absorb(t)
				}
				rows += n
			}
			partials[i] = acc
			if cfg.OnWorker != nil {
				cfg.OnWorker(i, "aggregate", rows)
			}
		}(i)
	}
	wg.Wait()
	if err := fail.err(); err != nil {
		return nil, err
	}
	final := partials[0]
	for _, p := range partials[1:] {
		final.merge(p)
	}
	return final.rows(), nil
}

// ---------------------------------------------------------------------------
// Shared plumbing.

// PanicError is a panic captured inside a parallel worker goroutine.
// Every worker defers containPanic, so a panicking worker latches one
// of these in the shared failFlag and exits; its peers drain
// cooperatively at the phase barrier and the parallel operator
// returns this error instead of killing the process. The query layer
// recognises it and degrades the query to the serial plan.
type PanicError struct {
	Worker int
	Phase  string
	Value  any
	Stack  []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("operators: worker %d panicked in %s phase: %v", e.Worker, e.Phase, e.Value)
}

// containPanic is deferred first in every parallel worker goroutine:
// it converts a panic into a latched PanicError, which cancels the
// phase cooperatively instead of unwinding past the goroutine and
// crashing the process.
func containPanic(fail *failFlag, worker int, phase string) {
	if v := recover(); v != nil {
		fail.set(&PanicError{Worker: worker, Phase: phase, Value: v, Stack: debug.Stack()})
	}
}

// failFlag latches the first error across workers; failed() is the
// cheap cooperative-cancellation check workers poll between morsels.
type failFlag struct {
	flag atomic.Bool
	mu   sync.Mutex
	e    error
}

func (f *failFlag) failed() bool { return f.flag.Load() }

func (f *failFlag) set(err error) {
	f.mu.Lock()
	if f.e == nil {
		f.e = err
	}
	f.mu.Unlock()
	f.flag.Store(true)
}

func (f *failFlag) err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.e
}

// mergeSlices concatenates per-worker outputs.
func mergeSlices(outs [][]storage.Tuple) []storage.Tuple {
	n := 0
	for _, o := range outs {
		n += len(o)
	}
	merged := make([]storage.Tuple, 0, n)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged
}

// fnv32 is FNV-1a over the join key, the radix-partition hash.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

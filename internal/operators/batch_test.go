package operators

import (
	"fmt"
	"math"
	"testing"

	"github.com/adm-project/adm/internal/storage"
)

// batchHeap builds a heap file with n sequential rows (id, "v<id>").
func batchHeap(t *testing.T, n int) *storage.HeapFile {
	t.Helper()
	store := storage.NewStore()
	bm := storage.NewBufferManager(store, 64, storage.NewLRU())
	hf := storage.NewHeapFile("t", store, bm)
	for i := int64(0); i < int64(n); i++ {
		if _, err := hf.Insert(storage.Tuple{
			storage.IntValue(i), storage.StringValue(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	return hf
}

// TestBatchHeapScanMatchesSerial: draining the batch-native page scan
// must equal the Volcano heap scan exactly — including after deletes
// punch holes in the slot directories.
func TestBatchHeapScanMatchesSerial(t *testing.T) {
	hf := batchHeap(t, 500)
	// Tombstone a spread of slots, including page boundaries.
	i := 0
	var kill []storage.RID
	hf.Scan(func(rid storage.RID, _ storage.Tuple) bool {
		if i%7 == 0 || i == 499 {
			kill = append(kill, rid)
		}
		i++
		return true
	})
	for _, rid := range kill {
		if err := hf.Delete(rid); err != nil {
			t.Fatal(err)
		}
	}
	want, err := Drain(NewHeapScan(hf))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DrainBatches(NewBatchHeapScan(hf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	// Both scan in page/slot order, so equality is positional.
	for j := range got {
		if got[j][0].Int != want[j][0].Int || got[j][1].Str != want[j][1].Str {
			t.Fatalf("row %d: %v want %v", j, got[j], want[j])
		}
	}
}

// TestBatchAdapterRoundTrip: Volcano -> batch -> Volcano must be the
// identity at any batch size, and the adapters must survive reopening.
func TestBatchAdapterRoundTrip(t *testing.T) {
	src := rows(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13)
	for _, size := range []int{1, 3, 64, 1024} {
		it := NewIteratorFromBatch(NewBatchFromIterator(NewMemScan(src), size))
		for pass := 0; pass < 2; pass++ { // second pass = reopened iterator
			got, err := Drain(it)
			if err != nil {
				t.Fatalf("size=%d pass=%d: %v", size, pass, err)
			}
			if len(got) != len(src) {
				t.Fatalf("size=%d pass=%d: %d rows, want %d", size, pass, len(got), len(src))
			}
			for j := range got {
				if got[j][0].Int != src[j][0].Int {
					t.Fatalf("size=%d pass=%d row %d: %v", size, pass, j, got[j])
				}
			}
		}
	}
	if _, _, err := NewIteratorFromBatch(NewBatchFromIterator(NewMemScan(src), 4)).Next(); err != ErrNotOpen {
		t.Fatalf("unopened Next: %v", err)
	}
}

// TestBatchHeapScanReopen: Open re-snapshots the page list, so a
// reopened scan sees rows inserted after the first drain.
func TestBatchHeapScanReopen(t *testing.T) {
	hf := batchHeap(t, 100)
	scan := NewBatchHeapScan(hf)
	first, err := DrainBatches(scan)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(100); i < 700; i++ { // forces new pages
		if _, err := hf.Insert(storage.Tuple{storage.IntValue(i), storage.StringValue("x")}); err != nil {
			t.Fatal(err)
		}
	}
	second, err := DrainBatches(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 100 || len(second) != 700 {
		t.Fatalf("first=%d second=%d", len(first), len(second))
	}
}

// TestBatchRetentionAcrossRecycle: tuples handed out of a batch scan
// must stay valid after their batch is recycled and refilled (the
// arena-ownership contract consumers like hash-join builds rely on).
func TestBatchRetentionAcrossRecycle(t *testing.T) {
	hf := batchHeap(t, 600)
	scan := NewBatchHeapScan(hf)
	if err := scan.Open(); err != nil {
		t.Fatal(err)
	}
	b := GetBatch()
	var retained []storage.Tuple
	for {
		n, err := scan.NextBatch(b) // refills over the same header slice
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		retained = append(retained, b.Tuples...)
	}
	PutBatch(b)
	scan.Close()
	seen := map[int64]bool{}
	for _, tp := range retained {
		if tp[1].Str != fmt.Sprintf("v%d", tp[0].Int) {
			t.Fatalf("corrupted retained tuple %v", tp)
		}
		seen[tp[0].Int] = true
	}
	if len(seen) != 600 {
		t.Fatalf("retained %d distinct ids, want 600", len(seen))
	}
}

// TestBatchFilterProjectMatchSerial compares the vectorized
// filter+project pipeline against the Volcano one.
func TestBatchFilterProjectMatchSerial(t *testing.T) {
	hf := batchHeap(t, 300)
	pred := func(tp storage.Tuple) bool { return tp[0].Int%3 == 0 }
	want, err := Drain(NewProject(NewFilter(NewHeapScan(hf), pred), []int{1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DrainBatches(NewBatchProject(NewBatchFilter(NewBatchHeapScan(hf), pred), []int{1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, got, want)

	if _, err := DrainBatches(NewBatchProject(NewBatchHeapScan(hf), []int{9})); err == nil {
		t.Fatal("out-of-range projection should error")
	}
}

// TestBatchHashProbeMatchesHashJoin: the batch probe operator over a
// parallel-built table must produce the serial HashJoin's multiset.
func TestBatchHashProbeMatchesHashJoin(t *testing.T) {
	build := rows(1, 2, 2, 3, 5, 8)
	probe := batchHeap(t, 50) // ids 0..49 joined against small build side
	want, err := Drain(NewHashJoin(NewMemScan(build), NewHeapScan(probe), 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	bt, _, err := ParallelBuildBatches(NewSliceBatches(build, 2), 0,
		ParallelConfig{Workers: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DrainBatches(NewBatchHashProbe(NewBatchHeapScan(probe), bt, 0))
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, got, want)
}

// TestJoinKeyEdgeCases pins the struct-key semantics to the old
// string-key behaviour: NaN joins NaN, -0 joins +0, numeric kinds
// join by float image, NULL never joins, and strings never collide
// with numbers.
func TestJoinKeyEdgeCases(t *testing.T) {
	nan := storage.FloatValue(math.NaN())
	k1, ok1 := joinKeyOf(nan)
	k2, ok2 := joinKeyOf(nan)
	if !ok1 || !ok2 || k1 != k2 {
		t.Fatalf("NaN keys differ: %v %v", k1, k2)
	}
	neg, okn := joinKeyOf(storage.FloatValue(math.Copysign(0, -1)))
	pos, okp := joinKeyOf(storage.IntValue(0))
	if !okn || !okp || neg != pos || neg.hash() != pos.hash() {
		t.Fatalf("-0 and +0 keys differ: %v %v", neg, pos)
	}
	if _, ok := joinKeyOf(storage.Value{Kind: storage.KindNull}); ok {
		t.Fatal("NULL must not produce a join key")
	}
	num, _ := joinKeyOf(storage.IntValue(7))
	str, _ := joinKeyOf(storage.StringValue("7"))
	if num == str {
		t.Fatal("number 7 and string \"7\" must not join")
	}
}

// TestBatchSourcesMatchScalarMorsels: the batch-native sources and
// their scalar shims must cover identical tuple sets.
func TestBatchSourcesMatchScalarMorsels(t *testing.T) {
	hf := batchHeap(t, 400)
	pred := func(tp storage.Tuple) bool { return tp[0].Int%2 == 1 }
	cfg := ParallelConfig{Workers: 4}

	fromBatches, err := DrainParallelBatches(
		NewFilterBatches(NewHeapBatches(hf), pred), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fromMorsels, err := DrainParallel(
		NewFilterMorsels(NewHeapMorsels(hf), pred), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, fromBatches, fromMorsels)
	if len(fromBatches) != 200 {
		t.Fatalf("filtered %d rows, want 200", len(fromBatches))
	}
}

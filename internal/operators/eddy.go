package operators

import (
	"sort"

	"github.com/adm-project/adm/internal/storage"
)

// Eddy implements the tuple-routing operator of Avnur & Hellerstein
// [1]: a stream of tuples is routed through a set of commutative
// filter operators whose costs and selectivities the eddy does not
// trust a priori. A lottery-style statistics window continuously
// re-estimates each filter's pass rate and cost, and each tuple is
// routed through the currently best order — so when selectivities
// drift mid-stream, the eddy re-routes while a static plan keeps
// paying for its stale ordering.

// EddyFilter is one routable filter with an intrinsic evaluation cost
// (abstract work units) and a predicate.
type EddyFilter struct {
	Name string
	Cost float64
	Pred Predicate

	// windowed statistics
	evals  int
	passes int
}

func (f *EddyFilter) observedSelectivity() float64 {
	if f.evals == 0 {
		return 0.5 // uninformed prior
	}
	return float64(f.passes) / float64(f.evals)
}

// rank orders filters: lower is better. The classic greedy ordering
// runs cheap, highly-selective (low pass-rate) filters first:
// rank = cost / (1 - selectivity).
func (f *EddyFilter) rank() float64 {
	return FilterRank(f.Cost, f.observedSelectivity())
}

// FilterRank is the eddy's routing rank, cost / (1 - selectivity),
// with the drop rate floored so always-passing filters rank finite.
// Lower is better. Shared by the tuple-routing eddy above and the
// vectorized FilterKernel's conjunct reordering.
func FilterRank(cost, selectivity float64) float64 {
	drop := 1 - selectivity
	if drop < 1e-6 {
		drop = 1e-6
	}
	return cost / drop
}

// EddyResult reports a routing run.
type EddyResult struct {
	// Passed counts tuples surviving all filters.
	Passed int
	// Work is total filter-evaluation cost incurred.
	Work float64
	// Evaluations counts individual predicate applications.
	Evaluations uint64
	// Reorders counts routing-order changes.
	Reorders int
}

// exploreEvery is the sampling rate of exploration tuples: every
// exploreEvery-th tuple is evaluated by ALL filters so selectivity
// estimates are unbiased. Short-circuited routing measures only the
// survivors of upstream filters, which is correlated and makes naive
// re-ranking oscillate — the role lottery tickets play in the
// original eddy.
const exploreEvery = 7

// RunEddy routes tuples through filters, re-ranking every windowSize
// tuples from windowed statistics gathered on exploration tuples.
// windowSize <= 0 disables adaptation entirely (the static baseline:
// initial order forever, no exploration).
func RunEddy(tuples []storage.Tuple, filters []*EddyFilter, windowSize int) EddyResult {
	res := EddyResult{}
	order := make([]*EddyFilter, len(filters))
	copy(order, filters)
	lastOrder := names(order)

	for i, t := range tuples {
		if windowSize > 0 && i > 0 && i%windowSize == 0 {
			sort.SliceStable(order, func(a, b int) bool { return order[a].rank() < order[b].rank() })
			if cur := names(order); cur != lastOrder {
				res.Reorders++
				lastOrder = cur
			}
			for _, f := range order {
				f.evals, f.passes = 0, 0 // fresh window
			}
		}
		if windowSize > 0 && i%exploreEvery == 0 {
			// Exploration: evaluate every filter (unbiased stats).
			alive := true
			for _, f := range order {
				res.Work += f.Cost
				res.Evaluations++
				f.evals++
				if f.Pred(t) {
					f.passes++
				} else {
					alive = false
				}
			}
			if alive {
				res.Passed++
			}
			continue
		}
		// Exploitation: short-circuit in the current order.
		alive := true
		for _, f := range order {
			res.Work += f.Cost
			res.Evaluations++
			if !f.Pred(t) {
				alive = false
				break
			}
		}
		if alive {
			res.Passed++
		}
	}
	return res
}

func names(fs []*EddyFilter) string {
	s := ""
	for _, f := range fs {
		s += f.Name + ","
	}
	return s
}

// Package operators implements the data-operator layer of the
// architecture in two halves:
//
//   - Volcano-style pull iterators (scan, filter, project, sort,
//     aggregate, nested-loop/index/hash joins) used by the query
//     engine, each a fine-grained component in the paper's sense; and
//
//   - the *adaptive* operators the paper names as required substrate
//     (§2, §6): the symmetric pipelined hash join [31], the ripple
//     join for online aggregation [14], XJoin [29] with its reactive
//     phase, and Eddies [1] — implemented over a discrete-time source
//     model so their time-to-first-tuple behaviour against slow and
//     bursty remote sources can be measured, which is exactly the
//     regime the paper motivates them for.
package operators

import (
	"errors"
	"fmt"

	"github.com/adm-project/adm/internal/storage"
)

// Iterator is the Volcano pull interface.
type Iterator interface {
	// Open prepares the operator tree.
	Open() error
	// Next returns the next tuple; ok=false means exhausted.
	Next() (storage.Tuple, bool, error)
	// Close releases resources; the iterator may be reopened.
	Close() error
}

// ErrNotOpen is returned by Next on an unopened iterator.
var ErrNotOpen = errors.New("operators: iterator not open")

// Drain runs an iterator to completion and returns all tuples. Close
// errors surface deferred storage failures, so they are joined with
// the drain error rather than discarded.
func Drain(it Iterator) (out []storage.Tuple, err error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer func() { err = errors.Join(err, it.Close()) }()
	for {
		t, ok, nerr := it.Next()
		if nerr != nil || !ok {
			return out, nerr
		}
		out = append(out, t)
	}
}

// Count runs an iterator to completion and returns the tuple count.
func Count(it Iterator) (n int, err error) {
	if err := it.Open(); err != nil {
		return 0, err
	}
	defer func() { err = errors.Join(err, it.Close()) }()
	for {
		_, ok, nerr := it.Next()
		if nerr != nil || !ok {
			return n, nerr
		}
		n++
	}
}

// ---------------------------------------------------------------------------
// Sources.

// MemScan iterates a tuple slice.
type MemScan struct {
	Tuples []storage.Tuple
	pos    int
	open   bool
}

// NewMemScan wraps tuples in an iterator.
func NewMemScan(tuples []storage.Tuple) *MemScan { return &MemScan{Tuples: tuples} }

// Open implements Iterator.
func (m *MemScan) Open() error { m.pos, m.open = 0, true; return nil }

// Next implements Iterator.
func (m *MemScan) Next() (storage.Tuple, bool, error) {
	if !m.open {
		return nil, false, ErrNotOpen
	}
	if m.pos >= len(m.Tuples) {
		return nil, false, nil
	}
	t := m.Tuples[m.pos]
	m.pos++
	return t, true, nil
}

// Close implements Iterator.
func (m *MemScan) Close() error { m.open = false; return nil }

// HeapScan iterates a heap file (snapshot of pages at Open).
type HeapScan struct {
	File storage.HeapReader
	buf  []storage.Tuple
	pos  int
	open bool
}

// NewHeapScan scans file.
func NewHeapScan(file storage.HeapReader) *HeapScan { return &HeapScan{File: file} }

// Open implements Iterator.
func (h *HeapScan) Open() error {
	all, err := h.File.All()
	if err != nil {
		return err
	}
	h.buf, h.pos, h.open = all, 0, true
	return nil
}

// Next implements Iterator.
func (h *HeapScan) Next() (storage.Tuple, bool, error) {
	if !h.open {
		return nil, false, ErrNotOpen
	}
	if h.pos >= len(h.buf) {
		return nil, false, nil
	}
	t := h.buf[h.pos]
	h.pos++
	return t, true, nil
}

// Close implements Iterator.
func (h *HeapScan) Close() error { h.open, h.buf = false, nil; return nil }

// IndexScan iterates tuples whose indexed column lies in [Lo,Hi],
// fetching through the heap file.
type IndexScan struct {
	File   storage.HeapReader
	Index  *storage.BTree
	Lo, Hi storage.Value
	rids   []storage.RID
	pos    int
	open   bool
}

// NewIndexScan builds a range scan over index into file.
func NewIndexScan(file storage.HeapReader, index *storage.BTree, lo, hi storage.Value) *IndexScan {
	return &IndexScan{File: file, Index: index, Lo: lo, Hi: hi}
}

// Open implements Iterator.
func (s *IndexScan) Open() error {
	s.rids = s.rids[:0]
	s.Index.Range(s.Lo, s.Hi, func(_ storage.Value, rid storage.RID) bool {
		s.rids = append(s.rids, rid)
		return true
	})
	s.pos, s.open = 0, true
	return nil
}

// Next implements Iterator.
func (s *IndexScan) Next() (storage.Tuple, bool, error) {
	if !s.open {
		return nil, false, ErrNotOpen
	}
	for s.pos < len(s.rids) {
		rid := s.rids[s.pos]
		s.pos++
		t, err := s.File.Get(rid)
		if errors.Is(err, storage.ErrNotFound) {
			continue // deleted since Range snapshot
		}
		if err != nil {
			return nil, false, err
		}
		return t, true, nil
	}
	return nil, false, nil
}

// Close implements Iterator.
func (s *IndexScan) Close() error { s.open = false; return nil }

// ---------------------------------------------------------------------------
// Row transforms.

// Predicate tests a tuple.
type Predicate func(storage.Tuple) bool

// Filter passes tuples satisfying Pred.
type Filter struct {
	In   Iterator
	Pred Predicate
	open bool
}

// NewFilter wraps in with a predicate.
func NewFilter(in Iterator, pred Predicate) *Filter { return &Filter{In: in, Pred: pred} }

// Open implements Iterator.
func (f *Filter) Open() error { f.open = true; return f.In.Open() }

// Next implements Iterator.
func (f *Filter) Next() (storage.Tuple, bool, error) {
	if !f.open {
		return nil, false, ErrNotOpen
	}
	for {
		t, ok, err := f.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred(t) {
			return t, true, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { f.open = false; return f.In.Close() }

// Project maps tuples to the given column indexes.
type Project struct {
	In   Iterator
	Cols []int
	open bool
}

// NewProject keeps only cols (in order).
func NewProject(in Iterator, cols []int) *Project { return &Project{In: in, Cols: cols} }

// Open implements Iterator.
func (p *Project) Open() error { p.open = true; return p.In.Open() }

// Next implements Iterator.
func (p *Project) Next() (storage.Tuple, bool, error) {
	if !p.open {
		return nil, false, ErrNotOpen
	}
	t, ok, err := p.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(storage.Tuple, len(p.Cols))
	for i, c := range p.Cols {
		if c < 0 || c >= len(t) {
			return nil, false, fmt.Errorf("operators: project column %d out of range (%d)", c, len(t))
		}
		out[i] = t[c]
	}
	return out, true, nil
}

// Close implements Iterator.
func (p *Project) Close() error { p.open = false; return p.In.Close() }

// Sort and TopK (the ordering operators) live in sort.go, on the same
// typed-key machinery as the parallel sort pipeline.

// Limit passes at most N tuples.
type Limit struct {
	In   Iterator
	N    int
	seen int
	open bool
}

// NewLimit caps in at n tuples.
func NewLimit(in Iterator, n int) *Limit { return &Limit{In: in, N: n} }

// Open implements Iterator.
func (l *Limit) Open() error { l.seen, l.open = 0, true; return l.In.Open() }

// Next implements Iterator.
func (l *Limit) Next() (storage.Tuple, bool, error) {
	if !l.open {
		return nil, false, ErrNotOpen
	}
	if l.seen >= l.N {
		return nil, false, nil
	}
	t, ok, err := l.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}

// Close implements Iterator.
func (l *Limit) Close() error { l.open = false; return l.In.Close() }

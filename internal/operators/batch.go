// Batch-at-a-time (vectorized) execution. The Volcano interface pays
// one virtual Next() call, one bounds-checked type dispatch, and
// frequently one allocation per tuple; at millions of rows per second
// that interface tax dominates the actual work (the same boundary tax
// the paper charges the OS/DBMS split with, one layer down). The batch
// path amortises it: operators exchange a reusable Batch of tuples, so
// the per-tuple cost collapses to a slice append, and sources decode
// whole pinned pages under one latch acquisition.
//
// Memory discipline: a Batch owns only its header slice, never the
// tuple values. Sources produce tuples whose values are arena-decoded
// (storage.Page.TuplesInto) or otherwise stable, so consumers may
// retain individual tuples after the batch is recycled; only the
// []Tuple headers are reused. Batches are recycled through a
// sync.Pool.
package operators

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/adm-project/adm/internal/storage"
)

// DefaultBatchSize is the default tuples-per-batch granularity.
const DefaultBatchSize = 1024

// Batch is a reusable buffer of tuples. Tuples holds the current
// contents; capacity is retained across refills.
type Batch struct {
	Tuples []storage.Tuple
	// Sel is the selection-vector scratch used by vectorized filter
	// kernels (FilterKernel.Apply): row indexes into Tuples that
	// survive the conjuncts so far. It is working space owned by the
	// batch purely so its capacity is reused across refills — between
	// operator calls it is always empty.
	Sel []int32
}

// Len returns the number of tuples in the batch.
func (b *Batch) Len() int { return len(b.Tuples) }

// Reset empties the batch, keeping capacity.
func (b *Batch) Reset() { b.Tuples, b.Sel = b.Tuples[:0], b.Sel[:0] }

var batchPool = sync.Pool{
	New: func() any { return &Batch{Tuples: make([]storage.Tuple, 0, DefaultBatchSize)} },
}

// outstandingBatches counts Get-without-Put batches. The GC may drop
// pooled batches at any time, so the pool length itself proves
// nothing; this counter is the leak oracle the connection-fault
// matrix asserts returns to its baseline after every crash and
// disconnect scenario.
var outstandingBatches atomic.Int64

// OutstandingBatches reports the number of pooled batches currently
// checked out (GetBatch minus PutBatch). Quiescent engines owe zero.
func OutstandingBatches() int64 { return outstandingBatches.Load() }

// GetBatch takes a recycled batch from the pool (empty, capacity
// retained from its previous life).
func GetBatch() *Batch {
	outstandingBatches.Add(1)
	b := batchPool.Get().(*Batch)
	b.Reset()
	return b
}

// PutBatch returns a batch to the pool. The caller must not touch the
// batch afterwards; tuples previously read from it remain valid.
func PutBatch(b *Batch) {
	outstandingBatches.Add(-1)
	b.Reset()
	batchPool.Put(b)
}

// BatchIterator is the vectorized counterpart of Iterator. NextBatch
// resets and refills b, returning the number of tuples produced; 0
// with a nil error means exhausted. The same Batch is normally passed
// back on every call so its buffer is reused.
type BatchIterator interface {
	// Open prepares the operator tree.
	Open() error
	// NextBatch refills b and returns the tuple count; 0 = exhausted.
	NextBatch(b *Batch) (int, error)
	// Close releases resources; the iterator may be reopened.
	Close() error
}

// DrainBatches runs a BatchIterator to completion and returns all
// tuples (test/verification convenience). Close errors are joined
// with the drain error, not discarded.
func DrainBatches(bi BatchIterator) (out []storage.Tuple, err error) {
	if err := bi.Open(); err != nil {
		return nil, err
	}
	defer func() { err = errors.Join(err, bi.Close()) }()
	b := GetBatch()
	defer PutBatch(b)
	for {
		n, nerr := bi.NextBatch(b)
		if nerr != nil || n == 0 {
			return out, nerr
		}
		out = append(out, b.Tuples...)
	}
}

// ---------------------------------------------------------------------------
// Volcano <-> batch adapters. Every existing operator keeps working:
// wrap a scalar iterator to feed a batch pipeline, or a batch pipeline
// to feed a scalar consumer.

// BatchFromIterator adapts a Volcano iterator to the batch interface,
// pulling up to size tuples per NextBatch.
type BatchFromIterator struct {
	In   Iterator
	size int
	open bool
}

// NewBatchFromIterator wraps it; size <= 0 means DefaultBatchSize.
func NewBatchFromIterator(it Iterator, size int) *BatchFromIterator {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &BatchFromIterator{In: it, size: size}
}

// Open implements BatchIterator.
func (a *BatchFromIterator) Open() error {
	if err := a.In.Open(); err != nil {
		return err
	}
	a.open = true
	return nil
}

// NextBatch implements BatchIterator.
func (a *BatchFromIterator) NextBatch(b *Batch) (int, error) {
	if !a.open {
		return 0, ErrNotOpen
	}
	b.Reset()
	for len(b.Tuples) < a.size {
		t, ok, err := a.In.Next()
		if err != nil {
			return len(b.Tuples), err
		}
		if !ok {
			break
		}
		b.Tuples = append(b.Tuples, t)
	}
	return len(b.Tuples), nil
}

// Close implements BatchIterator.
func (a *BatchFromIterator) Close() error { a.open = false; return a.In.Close() }

// IteratorFromBatch adapts a batch pipeline back to the Volcano
// interface. Tuples are handed out by header copy, so they survive the
// internal batch's next refill.
type IteratorFromBatch struct {
	In   BatchIterator
	buf  *Batch
	pos  int
	open bool
}

// NewIteratorFromBatch wraps bi.
func NewIteratorFromBatch(bi BatchIterator) *IteratorFromBatch {
	return &IteratorFromBatch{In: bi}
}

// Open implements Iterator. The pooled buffer is taken only after the
// input opens: a failed In.Open() returns before the caller owes a
// Close, so anything acquired first would leak from the pool.
func (a *IteratorFromBatch) Open() error {
	if err := a.In.Open(); err != nil {
		return err
	}
	a.buf = GetBatch()
	a.pos = 0
	a.open = true
	return nil
}

// Next implements Iterator.
func (a *IteratorFromBatch) Next() (storage.Tuple, bool, error) {
	if !a.open {
		return nil, false, ErrNotOpen
	}
	for a.pos >= a.buf.Len() {
		n, err := a.In.NextBatch(a.buf)
		if err != nil {
			return nil, false, err
		}
		if n == 0 {
			return nil, false, nil
		}
		a.pos = 0
	}
	t := a.buf.Tuples[a.pos]
	a.pos++
	return t, true, nil
}

// Close implements Iterator.
func (a *IteratorFromBatch) Close() error {
	a.open = false
	if a.buf != nil {
		PutBatch(a.buf)
		a.buf = nil
	}
	return a.In.Close()
}

// ---------------------------------------------------------------------------
// Batch-native sources and transforms.

// BatchHeapScan reads a heap file page-at-a-time: each NextBatch
// decodes one pinned page into the caller's batch under a single latch
// acquisition (storage.HeapFile.PageTuplesInto) — the batch-native
// scan. The page list is snapshotted at Open, matching HeapScan's
// semantics; reopening re-snapshots.
//
// With a Kernel attached the scan fuses filtering: each page's zone
// map (snapshotted at Open alongside the page list, when the file
// exposes storage.ZoneReader) is consulted BEFORE the page is pinned
// or decoded, and surviving pages are compacted through the kernel in
// place — the scan+filter pipeline the paper's database machines
// pushed to the disk head, here pushed below the batch boundary.
type BatchHeapScan struct {
	File storage.HeapReader
	// Kernel, when non-nil, fuses predicate evaluation and zone-map
	// page pruning into the scan.
	Kernel *FilterKernel
	pages  []storage.PageID
	zones  [][]storage.ColZone
	idx    int
	open   bool
}

// NewBatchHeapScan scans file.
func NewBatchHeapScan(file storage.HeapReader) *BatchHeapScan {
	return &BatchHeapScan{File: file}
}

// Open implements BatchIterator.
func (s *BatchHeapScan) Open() error {
	s.pages = s.File.PageIDs()
	s.zones = nil
	if s.Kernel != nil {
		if zr, ok := s.File.(storage.ZoneReader); ok {
			s.zones = zr.PageZones(s.pages)
		}
	}
	s.idx = 0
	s.open = true
	return nil
}

// NextBatch implements BatchIterator; one batch is one page (post
// filter, when a kernel is fused).
func (s *BatchHeapScan) NextBatch(b *Batch) (int, error) {
	if !s.open {
		return 0, ErrNotOpen
	}
	for s.idx < len(s.pages) {
		id := s.pages[s.idx]
		if s.Kernel != nil && s.idx < len(s.zones) {
			if !s.Kernel.MayMatchPage(s.zones[s.idx]) {
				s.Kernel.countPage(true)
				s.idx++
				continue
			}
		}
		s.idx++
		ts, err := s.File.PageTuplesInto(id, b.Tuples[:0])
		if err != nil {
			return 0, err
		}
		b.Tuples = ts
		if s.Kernel != nil {
			s.Kernel.countPage(false)
			if s.Kernel.Apply(b) > 0 {
				return len(b.Tuples), nil
			}
			continue
		}
		if len(ts) > 0 {
			return len(ts), nil
		}
	}
	b.Reset()
	return 0, nil
}

// Close implements BatchIterator.
func (s *BatchHeapScan) Close() error { s.open, s.pages, s.zones = false, nil, nil; return nil }

// BatchFilter drops tuples failing Pred, compacting each batch in
// place — no copy, no allocation.
type BatchFilter struct {
	In   BatchIterator
	Pred Predicate
	open bool
}

// NewBatchFilter wraps in with a predicate.
func NewBatchFilter(in BatchIterator, pred Predicate) *BatchFilter {
	return &BatchFilter{In: in, Pred: pred}
}

// Open implements BatchIterator.
func (f *BatchFilter) Open() error {
	if err := f.In.Open(); err != nil {
		return err
	}
	f.open = true
	return nil
}

// NextBatch implements BatchIterator.
func (f *BatchFilter) NextBatch(b *Batch) (int, error) {
	if !f.open {
		return 0, ErrNotOpen
	}
	for {
		n, err := f.In.NextBatch(b)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, nil
		}
		if k := filterInPlace(b, f.Pred); k > 0 {
			return k, nil
		}
	}
}

// Close implements BatchIterator.
func (f *BatchFilter) Close() error { f.open = false; return f.In.Close() }

// filterInPlace compacts b to the tuples satisfying pred.
func filterInPlace(b *Batch, pred Predicate) int {
	k := 0
	for _, t := range b.Tuples {
		if pred(t) {
			b.Tuples[k] = t
			k++
		}
	}
	b.Tuples = b.Tuples[:k]
	return k
}

// BatchProject maps batches to the given column indexes. Output tuples
// are carved from one arena per batch (two allocations per batch
// instead of one per tuple).
type BatchProject struct {
	In      BatchIterator
	Cols    []int
	scratch *Batch
	open    bool
}

// NewBatchProject keeps only cols (in order).
func NewBatchProject(in BatchIterator, cols []int) *BatchProject {
	return &BatchProject{In: in, Cols: cols}
}

// Open implements BatchIterator. Input first, pooled scratch second:
// a failed In.Open() must not strand a pool batch (see
// IteratorFromBatch.Open).
func (p *BatchProject) Open() error {
	if err := p.In.Open(); err != nil {
		return err
	}
	p.scratch = GetBatch()
	p.open = true
	return nil
}

// NextBatch implements BatchIterator.
func (p *BatchProject) NextBatch(b *Batch) (int, error) {
	if !p.open {
		return 0, ErrNotOpen
	}
	n, err := p.In.NextBatch(p.scratch)
	if err != nil {
		return 0, err
	}
	b.Reset()
	if n == 0 {
		return 0, nil
	}
	out, err := ProjectTuples(b.Tuples[:0], p.scratch.Tuples, p.Cols)
	if err != nil {
		return 0, err
	}
	b.Tuples = out
	return len(out), nil
}

// Close implements BatchIterator.
func (p *BatchProject) Close() error {
	p.open = false
	if p.scratch != nil {
		PutBatch(p.scratch)
		p.scratch = nil
	}
	return p.In.Close()
}

// ProjectTuples appends cols-projections of rows to dst, allocating
// all output values from a single arena. The projected tuples own
// their memory (they stay valid when rows' batch is recycled).
func ProjectTuples(dst []storage.Tuple, rows []storage.Tuple, cols []int) ([]storage.Tuple, error) {
	arena := make(storage.Tuple, 0, len(rows)*len(cols))
	for _, t := range rows {
		start := len(arena)
		for _, c := range cols {
			if c < 0 || c >= len(t) {
				return dst, fmt.Errorf("operators: project column %d out of range (%d)", c, len(t))
			}
			arena = append(arena, t[c])
		}
		dst = append(dst, arena[start:len(arena):len(arena)])
	}
	return dst, nil
}

// BatchHashProbe streams probe batches against a partitioned
// BuildTable (the batch-native hash-join probe). Each NextBatch pulls
// one input batch and emits all of its matches, build columns first;
// output values are carved from one arena per batch.
type BatchHashProbe struct {
	In       BatchIterator
	Table    *BuildTable
	ProbeCol int
	scratch  *Batch
	open     bool
}

// NewBatchHashProbe probes table with in's ProbeCol.
func NewBatchHashProbe(in BatchIterator, table *BuildTable, probeCol int) *BatchHashProbe {
	return &BatchHashProbe{In: in, Table: table, ProbeCol: probeCol}
}

// Open implements BatchIterator. Input first, pooled scratch second
// (see IteratorFromBatch.Open).
func (j *BatchHashProbe) Open() error {
	if err := j.In.Open(); err != nil {
		return err
	}
	j.scratch = GetBatch()
	j.open = true
	return nil
}

// NextBatch implements BatchIterator. Empty-output input batches are
// skipped internally, so 0 still means exhausted.
func (j *BatchHashProbe) NextBatch(b *Batch) (int, error) {
	if !j.open {
		return 0, ErrNotOpen
	}
	b.Reset()
	var out probeOut
	for {
		n, err := j.In.NextBatch(j.scratch)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, nil
		}
		out.reset()
		j.Table.probeBatch(j.scratch.Tuples, j.ProbeCol, &out)
		if len(out.ends) > 0 {
			b.Tuples = out.materialize(b.Tuples[:0])
			return len(b.Tuples), nil
		}
	}
}

// Close implements BatchIterator.
func (j *BatchHashProbe) Close() error {
	j.open = false
	if j.scratch != nil {
		PutBatch(j.scratch)
		j.scratch = nil
	}
	return j.In.Close()
}

// Sorting and Top-K selection, serial and parallel. ORDER BY was the
// last operator that collapsed the morsel-parallel pipeline back into
// one thread: the old Sort drained its whole input and ran
// sort.SliceStable with a storage.Compare closure — two Value structs
// copied per comparison, O(n log n) interface dispatches, one core.
//
// The path here is run formation + tournament merge:
//
//   - each worker claims batches from the shared source, extracts the
//     sort key of every tuple once into a typed key column (sortKey:
//     float image / string / class tag, mirroring storage.Compare
//     semantics except that NaN takes a fixed position after all other
//     numbers — Compare's NaN-equals-everything is non-transitive and
//     cannot drive a deterministic sort), and sorts its accumulated
//     run with plain float/string comparisons;
//   - a k-way loser-tree (tournament) merge streams globally ordered
//     tuples out of the worker runs without re-materialising them —
//     each emitted tuple costs ⌈log₂ k⌉ comparisons up the tree;
//   - ORDER BY ... LIMIT k runs as a bounded Top-K heap instead: each
//     worker keeps only its k best rows, and the barrier merges the
//     ≤ k·W candidates, so LIMIT 10 over a million rows never
//     materialises the table.
//
// Determinism: sort keys compare like storage.Compare (NaN placement
// aside, see compareKeys), and ties break by a strict total order
// over the entire tuple
// (totalTupleCompare), not by input position. Worker runs form from
// dynamically claimed morsels, so positional (stable-sort) tie-breaks
// cannot be reproduced across worker counts; a content tie-break can —
// rows that still tie under it are byte-identical, so every schedule,
// batch size and worker count (including the serial operators, which
// share the comparator) emits the same sequence.
package operators

import (
	"errors"
	"math"
	"sort"
	"sync"

	"github.com/adm-project/adm/internal/storage"
)

// ---------------------------------------------------------------------------
// Typed sort keys.

// Key classes, ordered as storage.Compare orders them: NULLs first,
// then one ordered band per comparable class.
const (
	classNull = iota
	classNum  // int / float / bool, compared by float image
	classStr
)

// sortKey is the typed image of one sort-column value, extracted once
// per tuple so the O(n log n) comparisons run on machine types instead
// of storage.Compare's interface walk over full Value structs.
type sortKey struct {
	class uint8
	kind  storage.ValueKind // original kind tag: the cross-class fallback order
	nan   bool              // NaN numeric: sorts after every other number
	f     float64
	s     string
}

// sortKeyOf extracts the key; it mirrors storage.Compare's coercions
// (mixed numeric kinds and bools compare by float image).
func sortKeyOf(v storage.Value) sortKey {
	if f, ok := v.AsFloat(); ok {
		return sortKey{class: classNum, kind: v.Kind, f: f, nan: math.IsNaN(f)}
	}
	if v.Kind == storage.KindNull {
		return sortKey{class: classNull, kind: v.Kind}
	}
	return sortKey{class: classStr, kind: v.Kind, s: v.Str}
}

// compareKeys orders the extracted keys the way storage.Compare orders
// values — NULLs first, numerics by float image, strings lexically,
// cross-class pairs by kind tag — with one deliberate refinement:
// Compare's three-way float switch makes NaN *equal to every number*,
// which is not transitive (NaN = 1, NaN = 2, yet 1 < 2) and therefore
// cannot drive a deterministic sort. Here NaN gets a fixed total
// position instead: equal to NaN, after every other numeric. For
// NaN-free data the two comparators agree on all pairs.
func compareKeys(a, b sortKey) int {
	if a.class == classNull || b.class == classNull {
		switch {
		case a.class == b.class:
			return 0
		case a.class == classNull:
			return -1
		default:
			return 1
		}
	}
	if a.class == classNum && b.class == classNum {
		if a.nan || b.nan {
			switch {
			case a.nan && b.nan:
				return 0
			case b.nan:
				return -1
			default:
				return 1
			}
		}
		switch {
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		default:
			return 0
		}
	}
	if a.class == classStr && b.class == classStr {
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	}
	switch {
	case a.kind < b.kind:
		return -1
	case a.kind > b.kind:
		return 1
	}
	return 0
}

// totalValueCompare is a strict total order on value *contents*, used
// only to break sort-key ties: kind tag first, then the payload, with
// floats ordered by their bit image so -0/+0 and NaN payloads occupy
// fixed (if arbitrary) positions. Values that compare equal here are
// indistinguishable, so the order among them never affects output.
func totalValueCompare(a, b storage.Value) int {
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case storage.KindInt:
		switch {
		case a.Int < b.Int:
			return -1
		case a.Int > b.Int:
			return 1
		}
	case storage.KindFloat:
		ab, bb := math.Float64bits(a.Float), math.Float64bits(b.Float)
		switch {
		case ab < bb:
			return -1
		case ab > bb:
			return 1
		}
	case storage.KindString:
		switch {
		case a.Str < b.Str:
			return -1
		case a.Str > b.Str:
			return 1
		}
	case storage.KindBool:
		switch {
		case !a.Bool && b.Bool:
			return -1
		case a.Bool && !b.Bool:
			return 1
		}
	}
	return 0
}

// totalTupleCompare extends totalValueCompare left-to-right across the
// whole row: the deterministic tie-break shared by the serial and
// parallel sort paths.
func totalTupleCompare(a, b storage.Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := totalValueCompare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// sortLess is the full ORDER BY ordering: key order (inverted for
// DESC), then the total-order tuple tie-break (always ascending — any
// fixed rule works, it only has to be the same everywhere).
func sortLess(ka, kb sortKey, ta, tb storage.Tuple, desc bool) bool {
	if c := compareKeys(ka, kb); c != 0 {
		if desc {
			return c > 0
		}
		return c < 0
	}
	return totalTupleCompare(ta, tb) < 0
}

// ---------------------------------------------------------------------------
// Runs: key column + tuple column, sorted together.

// sortRun is one sorted fragment: the extracted key column alongside
// its tuples. Workers accumulate a run from the batches they claim and
// sort it once at source exhaustion.
type sortRun struct {
	keys []sortKey
	tups []storage.Tuple
}

// absorb extracts col's keys for a batch of tuples and appends both
// columns (the once-per-batch key extraction the comparator relies
// on). Tuples are aliased, not copied: batch sources guarantee stable
// values.
func (r *sortRun) absorb(tups []storage.Tuple, col int) {
	for _, t := range tups {
		r.keys = append(r.keys, sortKeyOf(t[col]))
		r.tups = append(r.tups, t)
	}
}

// runSorter adapts a run to sort.Interface under sortLess.
type runSorter struct {
	*sortRun
	desc bool
}

func (s runSorter) Len() int { return len(s.keys) }
func (s runSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.tups[i], s.tups[j] = s.tups[j], s.tups[i]
}
func (s runSorter) Less(i, j int) bool {
	return sortLess(s.keys[i], s.keys[j], s.tups[i], s.tups[j], s.desc)
}

func (r *sortRun) sort(desc bool) { sort.Sort(runSorter{r, desc}) }

// ---------------------------------------------------------------------------
// Loser-tree merge.

// loserTree is a k-way tournament merge over sorted runs. node[1:]
// hold the *losers* of each internal match; node[0] is the overall
// winner, so emitting a tuple replays only the ⌈log₂ k⌉ matches on the
// winner's leaf-to-root path instead of re-scanning all k heads.
// Exhausted runs lose every match; equal heads (possible only for
// byte-identical rows, given the total tie-break) fall to the lower
// run index, keeping the merge fully deterministic.
type loserTree struct {
	runs []sortRun
	pos  []int
	node []int
	k    int
	desc bool
}

// newLoserTree builds the initial tournament over runs (empty runs are
// fine; they simply lose every match).
func newLoserTree(runs []sortRun, desc bool) *loserTree {
	k := len(runs)
	lt := &loserTree{runs: runs, pos: make([]int, k), k: k, desc: desc}
	if k == 0 {
		return lt
	}
	lt.node = make([]int, k)
	// Play the full bracket bottom-up once; winners propagate, each
	// internal node records its loser.
	winner := make([]int, 2*k)
	for j := 2*k - 1; j >= k; j-- {
		winner[j] = j - k
	}
	for j := k - 1; j >= 1; j-- {
		a, b := winner[2*j], winner[2*j+1]
		if lt.beats(a, b) {
			winner[j], lt.node[j] = a, b
		} else {
			winner[j], lt.node[j] = b, a
		}
	}
	lt.node[0] = winner[1]
	return lt
}

// beats reports whether run a's head precedes run b's head.
func (lt *loserTree) beats(a, b int) bool {
	ra, rb := &lt.runs[a], &lt.runs[b]
	pa, pb := lt.pos[a], lt.pos[b]
	if pa >= len(ra.tups) {
		return false
	}
	if pb >= len(rb.tups) {
		return true
	}
	if sortLess(ra.keys[pa], rb.keys[pb], ra.tups[pa], rb.tups[pb], lt.desc) {
		return true
	}
	if sortLess(rb.keys[pb], ra.keys[pa], rb.tups[pb], ra.tups[pa], lt.desc) {
		return false
	}
	return a < b
}

// next pops the globally smallest remaining tuple, replaying the
// winner's path.
func (lt *loserTree) next() (storage.Tuple, bool) {
	if lt.k == 0 {
		return nil, false
	}
	w := lt.node[0]
	if lt.pos[w] >= len(lt.runs[w].tups) {
		return nil, false
	}
	t := lt.runs[w].tups[lt.pos[w]]
	lt.pos[w]++
	for j := (w + lt.k) / 2; j >= 1; j /= 2 {
		if lt.beats(lt.node[j], w) {
			w, lt.node[j] = lt.node[j], w
		}
	}
	lt.node[0] = w
	return t, true
}

// MergedRuns streams the loser-tree merge as a Volcano iterator, so
// downstream operators consume globally ordered tuples without the
// runs ever being concatenated or re-sorted.
type MergedRuns struct {
	lt   *loserTree
	open bool
}

// Open implements Iterator.
func (m *MergedRuns) Open() error { m.open = true; return nil }

// Next implements Iterator.
func (m *MergedRuns) Next() (storage.Tuple, bool, error) {
	if !m.open {
		return nil, false, ErrNotOpen
	}
	t, ok := m.lt.next()
	return t, ok, nil
}

// Close implements Iterator; the runs are released.
func (m *MergedRuns) Close() error { m.open = false; m.lt = nil; return nil }

// ---------------------------------------------------------------------------
// Parallel sort.

// ParallelSortBatches sorts src by col across cfg workers: each worker
// claims batches, extracts the typed key column, and accumulates one
// local run, sorted at source exhaustion; the returned iterator
// streams the loser-tree merge of the runs. Output order is fully
// deterministic (see package comment) — identical to the serial Sort
// operator at any worker count and batch size.
func ParallelSortBatches(src BatchSource, col int, desc bool, cfg ParallelConfig) (*MergedRuns, error) {
	w := cfg.WorkerCount()
	runs := make([]sortRun, w)
	var fail failFlag
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer containPanic(&fail, i, "sort")
			b := GetBatch()
			defer PutBatch(b)
			r := &runs[i]
			for !fail.failed() {
				if cfg.interrupted(&fail) {
					break
				}
				n, err := src.NextBatch(b)
				if err != nil {
					fail.set(err)
					return
				}
				if n == 0 {
					break
				}
				if cfg.charge(&fail, b.Tuples) {
					break
				}
				r.absorb(b.Tuples, col)
			}
			r.sort(desc)
			if cfg.OnWorker != nil {
				cfg.OnWorker(i, "sort", len(r.tups))
			}
		}(i)
	}
	wg.Wait()
	if err := fail.err(); err != nil {
		return nil, err
	}
	// Drop empty runs so the tournament only plays live heads.
	live := runs[:0]
	for _, r := range runs {
		if len(r.tups) > 0 {
			live = append(live, r)
		}
	}
	return &MergedRuns{lt: newLoserTree(live, desc)}, nil
}

// ---------------------------------------------------------------------------
// Bounded Top-K.

// topKHeap is a bounded binary heap holding the k best rows seen so
// far, worst at the root (so one comparison rejects most candidates
// once the heap is full). Keys ride alongside tuples, extracted once
// per candidate.
type topKHeap struct {
	keys []sortKey
	tups []storage.Tuple
	k    int
	desc bool
}

// after reports whether entry i sorts after entry j (i is worse).
func (h *topKHeap) after(i, j int) bool {
	return sortLess(h.keys[j], h.keys[i], h.tups[j], h.tups[i], h.desc)
}

// offer considers one candidate row.
func (h *topKHeap) offer(k sortKey, t storage.Tuple) {
	if len(h.tups) < h.k {
		h.keys = append(h.keys, k)
		h.tups = append(h.tups, t)
		// Sift up.
		for i := len(h.tups) - 1; i > 0; {
			p := (i - 1) / 2
			if !h.after(i, p) {
				break
			}
			h.swap(i, p)
			i = p
		}
		return
	}
	// Full: the candidate must beat the current worst (the root).
	if !sortLess(k, h.keys[0], t, h.tups[0], h.desc) {
		return
	}
	h.keys[0], h.tups[0] = k, t
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h.tups) && h.after(l, worst) {
			worst = l
		}
		if r < len(h.tups) && h.after(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		h.swap(i, worst)
		i = worst
	}
}

func (h *topKHeap) swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.tups[i], h.tups[j] = h.tups[j], h.tups[i]
}

// ParallelTopKBatches computes the first k rows of ORDER BY col
// [DESC] over src with cfg workers: each worker keeps a k-bounded
// heap of its own candidates, and the barrier merges the ≤ k·W
// survivors — memory is O(k·W) no matter how large the input, and the
// source is consumed exactly once. The result is sorted and fully
// deterministic (same ordering contract as ParallelSortBatches).
func ParallelTopKBatches(src BatchSource, col int, desc bool, k int, cfg ParallelConfig) ([]storage.Tuple, error) {
	if k <= 0 {
		return nil, nil
	}
	w := cfg.WorkerCount()
	heaps := make([]*topKHeap, w)
	var fail failFlag
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer containPanic(&fail, i, "topk")
			b := GetBatch()
			defer PutBatch(b)
			h := &topKHeap{k: k, desc: desc}
			rows := 0
			for !fail.failed() {
				if cfg.interrupted(&fail) {
					break
				}
				n, err := src.NextBatch(b)
				if err != nil {
					fail.set(err)
					break
				}
				if n == 0 {
					break
				}
				for _, t := range b.Tuples {
					h.offer(sortKeyOf(t[col]), t)
				}
				rows += n
			}
			heaps[i] = h
			if cfg.OnWorker != nil {
				cfg.OnWorker(i, "topk", rows)
			}
		}(i)
	}
	wg.Wait()
	if err := fail.err(); err != nil {
		return nil, err
	}
	var merged sortRun
	for _, h := range heaps {
		merged.keys = append(merged.keys, h.keys...)
		merged.tups = append(merged.tups, h.tups...)
	}
	merged.sort(desc)
	if len(merged.tups) > k {
		merged.tups = merged.tups[:k]
	}
	return merged.tups, nil
}

// ---------------------------------------------------------------------------
// Serial operators on the same machinery.

// Sort materialises and orders its input by column Col (ascending, or
// descending when Desc). It shares the typed-key comparator and
// tie-break with the parallel sort path, so serial and parallel ORDER
// BY emit identical sequences. The sorted buffer is released as soon
// as the iterator is exhausted or closed.
type Sort struct {
	In   Iterator
	Col  int
	Desc bool
	buf  []storage.Tuple
	pos  int
	open bool
}

// NewSort orders in by column col.
func NewSort(in Iterator, col int, desc bool) *Sort { return &Sort{In: in, Col: col, Desc: desc} }

// Open implements Iterator.
func (s *Sort) Open() error {
	all, err := Drain(s.In)
	if err != nil {
		return err
	}
	r := sortRun{keys: make([]sortKey, 0, len(all))}
	r.absorb(all, s.Col)
	r.sort(s.Desc)
	s.buf, s.pos, s.open = r.tups, 0, true
	return nil
}

// Next implements Iterator.
func (s *Sort) Next() (storage.Tuple, bool, error) {
	if !s.open {
		return nil, false, ErrNotOpen
	}
	if s.pos >= len(s.buf) {
		s.buf = nil // exhausted: stop pinning the materialised result
		return nil, false, nil
	}
	t := s.buf[s.pos]
	s.pos++
	return t, true, nil
}

// Close implements Iterator.
func (s *Sort) Close() error { s.open, s.buf = false, nil; return nil }

// TopK is the bounded serial counterpart of Sort for ORDER BY ...
// LIMIT k: it drains its input through a k-bounded heap, so memory is
// O(k) rather than O(input). Ordering and tie-breaks match Sort (and
// the parallel paths) exactly.
type TopK struct {
	In   Iterator
	Col  int
	Desc bool
	K    int
	buf  []storage.Tuple
	pos  int
	open bool
}

// NewTopK keeps the first k rows of ORDER BY col [desc] over in.
func NewTopK(in Iterator, col int, desc bool, k int) *TopK {
	return &TopK{In: in, Col: col, Desc: desc, K: k}
}

// Open implements Iterator. K <= 0 short-circuits without consuming
// the input (LIMIT 0 does no work).
func (t *TopK) Open() (err error) {
	t.buf, t.pos, t.open = nil, 0, true
	if t.K <= 0 {
		return nil
	}
	if err := t.In.Open(); err != nil {
		return err
	}
	defer func() { err = errors.Join(err, t.In.Close()) }()
	h := &topKHeap{k: t.K, desc: t.Desc}
	for {
		tu, ok, err := t.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h.offer(sortKeyOf(tu[t.Col]), tu)
	}
	r := sortRun{keys: h.keys, tups: h.tups}
	r.sort(t.Desc)
	t.buf = r.tups
	return nil
}

// Next implements Iterator.
func (t *TopK) Next() (storage.Tuple, bool, error) {
	if !t.open {
		return nil, false, ErrNotOpen
	}
	if t.pos >= len(t.buf) {
		t.buf = nil
		return nil, false, nil
	}
	tu := t.buf[t.pos]
	t.pos++
	return tu, true, nil
}

// Close implements Iterator. The input was already closed by Open
// (TopK consumes it whole); Close only releases the candidate buffer.
func (t *TopK) Close() error { t.open, t.buf = false, nil; return nil }

// Leak audit for operator error paths. Two invariants:
//
//  1. An Open() that returns an error hands NOTHING to the caller —
//     no pooled batch may be held by the operator, and the input must
//     not be left open (the caller does not Close after a failed
//     Open, so anything acquired before the failure leaks).
//  2. A pipeline that errors mid-stream still releases every pinned
//     buffer-pool frame once the root is closed: after Close on any
//     error path, BufferManager.PinnedFrames() returns to baseline.
//
// The audit instrument is a pair of test iterators that count
// Open/Close calls and fail on demand at any point in the stream.
package operators

import (
	"errors"
	"sync"
	"testing"

	"github.com/adm-project/adm/internal/storage"
)

var errBoom = errors.New("boom")

// auditIter is a leak-checking Volcano iterator: it serves rows,
// errors on demand (at Open or after failAfter rows), and counts
// Open/Close calls so tests can assert the balance.
type auditIter struct {
	rows      []storage.Tuple
	failOpen  bool
	failAfter int // error from Next after this many rows; <0 = never
	pos       int
	opens     int
	closes    int
	open      bool
}

func (a *auditIter) Open() error {
	a.opens++
	if a.failOpen {
		return errBoom
	}
	a.pos, a.open = 0, true
	return nil
}

func (a *auditIter) Next() (storage.Tuple, bool, error) {
	if !a.open {
		return nil, false, ErrNotOpen
	}
	if a.failAfter >= 0 && a.pos >= a.failAfter {
		return nil, false, errBoom
	}
	if a.pos >= len(a.rows) {
		return nil, false, nil
	}
	t := a.rows[a.pos]
	a.pos++
	return t, true, nil
}

func (a *auditIter) Close() error { a.closes++; a.open = false; return nil }

// balanced reports whether every successful Open was matched by a
// Close (failed Opens hand nothing to the caller, so they owe none).
func (a *auditIter) balanced() bool {
	owed := a.opens
	if a.failOpen {
		owed = 0
	}
	return a.closes == owed
}

// auditBatch is the batch-native counterpart of auditIter. Unlike
// auditIter it is handed directly to the parallel exchange as a
// BatchSource, so — like the real morsel sources — it must serialise
// itself against concurrent worker claims.
type auditBatch struct {
	mu        sync.Mutex
	rows      []storage.Tuple
	failOpen  bool
	failAfter int // error once this many rows were served; <0 = never
	pos       int
	opens     int
	closes    int
	open      bool
	chunk     int
}

func (a *auditBatch) Open() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.opens++
	if a.failOpen {
		return errBoom
	}
	a.pos, a.open = 0, true
	return nil
}

func (a *auditBatch) NextBatch(b *Batch) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.open {
		return 0, ErrNotOpen
	}
	if a.failAfter >= 0 && a.pos >= a.failAfter {
		return 0, errBoom
	}
	b.Reset()
	n := a.chunk
	if n <= 0 {
		n = 2
	}
	for i := 0; i < n && a.pos < len(a.rows); i++ {
		b.Tuples = append(b.Tuples, a.rows[a.pos])
		a.pos++
	}
	return b.Len(), nil
}

func (a *auditBatch) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closes++
	a.open = false
	return nil
}

func (a *auditBatch) balanced() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	owed := a.opens
	if a.failOpen {
		owed = 0
	}
	return a.closes == owed
}

func auditRows(n int) []storage.Tuple {
	out := make([]storage.Tuple, n)
	for i := range out {
		out[i] = storage.Tuple{storage.IntValue(int64(i)), storage.StringValue("r")}
	}
	return out
}

// TestOpenErrorLeavesNothingHeld drives every batch adapter's Open
// through a failing input and asserts the operator holds no pooled
// batch and did not latch itself open.
func TestOpenErrorLeavesNothingHeld(t *testing.T) {
	t.Run("IteratorFromBatch", func(t *testing.T) {
		src := &auditBatch{failOpen: true, failAfter: -1}
		it := NewIteratorFromBatch(src)
		if err := it.Open(); !errors.Is(err, errBoom) {
			t.Fatalf("Open = %v, want errBoom", err)
		}
		if it.buf != nil {
			t.Fatal("failed Open stranded a pooled batch")
		}
		if _, _, err := it.Next(); !errors.Is(err, ErrNotOpen) {
			t.Fatalf("Next after failed Open = %v, want ErrNotOpen", err)
		}
		if !src.balanced() {
			t.Fatalf("input opens=%d closes=%d not balanced", src.opens, src.closes)
		}
	})
	t.Run("BatchProject", func(t *testing.T) {
		src := &auditBatch{failOpen: true, failAfter: -1}
		p := NewBatchProject(src, []int{0})
		if err := p.Open(); !errors.Is(err, errBoom) {
			t.Fatalf("Open = %v, want errBoom", err)
		}
		if p.scratch != nil {
			t.Fatal("failed Open stranded a pooled batch")
		}
		if _, err := p.NextBatch(GetBatch()); !errors.Is(err, ErrNotOpen) {
			t.Fatalf("NextBatch after failed Open = %v, want ErrNotOpen", err)
		}
	})
	t.Run("BatchHashProbe", func(t *testing.T) {
		build := &auditBatch{rows: auditRows(4), failAfter: -1}
		if err := build.Open(); err != nil {
			t.Fatalf("open build: %v", err)
		}
		table, _, err := ParallelBuildBatches(build, 0, ParallelConfig{Workers: 2}, nil)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		build.Close()
		src := &auditBatch{failOpen: true, failAfter: -1}
		j := NewBatchHashProbe(src, table, 0)
		if err := j.Open(); !errors.Is(err, errBoom) {
			t.Fatalf("Open = %v, want errBoom", err)
		}
		if j.scratch != nil {
			t.Fatal("failed Open stranded a pooled batch")
		}
	})
	t.Run("BatchFilter", func(t *testing.T) {
		src := &auditBatch{failOpen: true, failAfter: -1}
		f := NewBatchFilter(src, func(storage.Tuple) bool { return true })
		if err := f.Open(); !errors.Is(err, errBoom) {
			t.Fatalf("Open = %v, want errBoom", err)
		}
		if f.open {
			t.Fatal("operator latched open despite failed input Open")
		}
	})
	t.Run("BatchFromIterator", func(t *testing.T) {
		src := &auditIter{failOpen: true, failAfter: -1}
		a := NewBatchFromIterator(src, 8)
		if err := a.Open(); !errors.Is(err, errBoom) {
			t.Fatalf("Open = %v, want errBoom", err)
		}
		if a.open {
			t.Fatal("operator latched open despite failed input Open")
		}
		if !src.balanced() {
			t.Fatalf("input opens=%d closes=%d not balanced", src.opens, src.closes)
		}
	})
}

// TestMidStreamErrorClosesInput errors the input mid-stream under the
// serial Sort/TopK materialisers and the batch drain helper, then
// asserts the input's Open/Close counts balance — the pattern the
// pooled batches and pinned pages both ride on.
func TestMidStreamErrorClosesInput(t *testing.T) {
	t.Run("Sort", func(t *testing.T) {
		src := &auditIter{rows: auditRows(10), failAfter: 4}
		s := NewSort(src, 0, false)
		if err := s.Open(); !errors.Is(err, errBoom) {
			t.Fatalf("Open = %v, want errBoom", err)
		}
		if !src.balanced() {
			t.Fatalf("input opens=%d closes=%d not balanced", src.opens, src.closes)
		}
	})
	t.Run("TopK", func(t *testing.T) {
		src := &auditIter{rows: auditRows(10), failAfter: 4}
		k := NewTopK(src, 0, false, 3)
		if err := k.Open(); !errors.Is(err, errBoom) {
			t.Fatalf("Open = %v, want errBoom", err)
		}
		if !src.balanced() {
			t.Fatalf("input opens=%d closes=%d not balanced", src.opens, src.closes)
		}
	})
	t.Run("DrainBatchesThroughStack", func(t *testing.T) {
		src := &auditBatch{rows: auditRows(10), failAfter: 4, chunk: 2}
		stack := NewBatchProject(
			NewBatchFilter(src, func(storage.Tuple) bool { return true }),
			[]int{0},
		)
		if _, err := DrainBatches(stack); !errors.Is(err, errBoom) {
			t.Fatalf("DrainBatches = %v, want errBoom", err)
		}
		if !src.balanced() {
			t.Fatalf("input opens=%d closes=%d not balanced", src.opens, src.closes)
		}
	})
	t.Run("IteratorFromBatchMidStream", func(t *testing.T) {
		src := &auditBatch{rows: auditRows(10), failAfter: 4, chunk: 2}
		it := NewIteratorFromBatch(src)
		_, err := Drain(it)
		if !errors.Is(err, errBoom) {
			t.Fatalf("Drain = %v, want errBoom", err)
		}
		if !src.balanced() {
			t.Fatalf("input opens=%d closes=%d not balanced", src.opens, src.closes)
		}
	})
}

// TestPinnedFramesBalancedAfterErrors runs real heap scans — the only
// operators that pin buffer-pool frames — through error paths and
// asserts the pool's pin gauge returns to zero, i.e. no scan path
// holds a frame across an error.
func TestPinnedFramesBalancedAfterErrors(t *testing.T) {
	store := storage.NewStore()
	bm := storage.NewBufferManager(store, 64, storage.NewLRU())
	hf := storage.NewHeapFile("leak", store, bm)
	for i := 0; i < 500; i++ {
		tu := storage.Tuple{storage.IntValue(int64(i)), storage.StringValue("payload")}
		if _, err := hf.Insert(tu); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if got := bm.PinnedFrames(); got != 0 {
		t.Fatalf("baseline pins = %d, want 0", got)
	}

	// Serial sort over a heap scan.
	scan := NewHeapScan(hf)
	s := NewSort(NewFilter(scan, func(tu storage.Tuple) bool { return true }), 0, false)
	if err := s.Open(); err != nil {
		t.Fatalf("sort open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("sort close: %v", err)
	}
	if got := bm.PinnedFrames(); got != 0 {
		t.Fatalf("pins after serial sort = %d, want 0", got)
	}

	// Batch scan erroring mid-stream: abandon the iterator after the
	// error without a cooperative drain, then Close.
	bs := NewBatchHeapScan(hf)
	proj := NewBatchProject(bs, []int{0})
	if err := proj.Open(); err != nil {
		t.Fatalf("batch open: %v", err)
	}
	b := GetBatch()
	if _, err := proj.NextBatch(b); err != nil {
		t.Fatalf("batch next: %v", err)
	}
	PutBatch(b)
	if err := proj.Close(); err != nil {
		t.Fatalf("batch close: %v", err)
	}
	if got := bm.PinnedFrames(); got != 0 {
		t.Fatalf("pins after abandoned batch scan = %d, want 0", got)
	}
}

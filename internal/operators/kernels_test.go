// Kernel correctness tests: the compiled predicate must agree with
// the boxed reference semantics (NULL fails every comparison, numeric
// kinds compare through the float image, NaN compares equal to all
// numerics, mixed kinds order by kind tag) on every value × literal ×
// operator combination, and the zone-map prune decision must never
// veto a page holding a passing row.
package operators

import (
	"fmt"
	"math"
	"testing"

	"github.com/adm-project/adm/internal/storage"
)

// cmpOps are the six comparison kernels with their boxed pass rule.
var cmpOps = []struct {
	op   KernelOp
	name string
}{
	{KernEQ, "="}, {KernNE, "!="}, {KernLT, "<"},
	{KernGT, ">"}, {KernLE, "<="}, {KernGE, ">="},
}

// boxedKeep is the reference semantics, written independently of the
// kernel: exactly what query.compilePreds does per conjunct.
func boxedKeep(op KernelOp, v, lit storage.Value) bool {
	switch op {
	case KernIsNull:
		return v.Kind == storage.KindNull
	case KernNotNull:
		return v.Kind != storage.KindNull
	}
	if v.IsNull() {
		return false
	}
	cmp := storage.Compare(v, lit)
	switch op {
	case KernEQ:
		return cmp == 0
	case KernNE:
		return cmp != 0
	case KernLT:
		return cmp < 0
	case KernGT:
		return cmp > 0
	case KernLE:
		return cmp <= 0
	}
	return cmp >= 0
}

// hardValues covers every kind plus the numeric edge cases the kernel
// fast paths must replicate bit-for-bit: NaN (compares equal to any
// numeric), -0 (equal to +0), int64 magnitudes that lose precision as
// float64, infinities, empty and high strings, bools.
func hardValues() []storage.Value {
	return []storage.Value{
		storage.NullValue(),
		storage.IntValue(0), storage.IntValue(-1), storage.IntValue(1),
		storage.IntValue(math.MaxInt64), storage.IntValue(math.MinInt64),
		storage.IntValue(1 << 53), storage.IntValue(1<<53 + 1),
		storage.FloatValue(0), storage.FloatValue(math.Copysign(0, -1)),
		storage.FloatValue(math.NaN()), storage.FloatValue(math.Inf(1)),
		storage.FloatValue(math.Inf(-1)), storage.FloatValue(2.5),
		storage.FloatValue(float64(1 << 53)),
		storage.StringValue(""), storage.StringValue("a"), storage.StringValue("\xff\xff"),
		storage.BoolValue(false), storage.BoolValue(true),
	}
}

// TestKernelMatchesBoxedExhaustive runs every (row value × literal ×
// operator) combination through filterSel and the boxed rule.
func TestKernelMatchesBoxedExhaustive(t *testing.T) {
	vals := hardValues()
	for _, lit := range vals {
		for _, oc := range cmpOps {
			p := compilePred(ColPred{Col: 0, Op: oc.op, Lit: lit})
			tuples := make([]storage.Tuple, len(vals))
			sel := make([]int32, len(vals))
			for i, v := range vals {
				tuples[i] = storage.Tuple{v}
				sel[i] = int32(i)
			}
			out := p.filterSel(tuples, sel)
			kept := map[int32]bool{}
			for _, i := range out {
				kept[i] = true
			}
			for i, v := range vals {
				want := boxedKeep(oc.op, v, lit)
				if kept[int32(i)] != want {
					t.Errorf("%v %s %v: kernel=%v boxed=%v", v, oc.name, lit, kept[int32(i)], want)
				}
			}
		}
	}
	for _, op := range []KernelOp{KernIsNull, KernNotNull} {
		p := compilePred(ColPred{Col: 0, Op: op})
		for _, v := range vals {
			out := p.filterSel([]storage.Tuple{{v}}, []int32{0})
			if (len(out) == 1) != boxedKeep(op, v, storage.Value{}) {
				t.Errorf("nulltest %d on %v: kernel=%v", op, v, len(out) == 1)
			}
		}
	}
}

// TestMayMatchNeverPrunesPassingRow: for every single-value page and
// every predicate, a page whose zones veto must hold no passing row.
func TestMayMatchNeverPrunesPassingRow(t *testing.T) {
	vals := hardValues()
	allOps := append([]KernelOp{}, KernIsNull, KernNotNull)
	for _, oc := range cmpOps {
		allOps = append(allOps, oc.op)
	}
	// Pages of 1..3 mixed values.
	var pages [][]storage.Value
	for i, a := range vals {
		pages = append(pages, []storage.Value{a})
		pages = append(pages, []storage.Value{a, vals[(i*5+3)%len(vals)]})
		pages = append(pages, []storage.Value{a, vals[(i+7)%len(vals)], vals[(i*11+1)%len(vals)]})
	}
	for _, lit := range vals {
		for _, op := range allOps {
			p := compilePred(ColPred{Col: 0, Op: op, Lit: lit})
			for _, page := range pages {
				ts := make([]storage.Tuple, len(page))
				for i, v := range page {
					ts[i] = storage.Tuple{v}
				}
				zones := storage.BuildColZones(ts)
				if p.mayMatch(zones) {
					continue // scanning is always sound
				}
				for _, v := range page {
					if boxedKeep(op, v, lit) {
						t.Fatalf("pruned page %v loses row %v under op %d lit %v (zones %+v)",
							page, v, op, lit, zones)
					}
				}
			}
		}
	}
}

// TestFilterKernelApplyCompacts: multi-conjunct Apply keeps exactly
// the rows passing all conjuncts, in input order, at any batch size,
// and keeps agreeing after enough batches to trigger reordering.
func TestFilterKernelApplyCompacts(t *testing.T) {
	preds := []ColPred{
		{Col: 0, Op: KernGE, Lit: storage.IntValue(10), Name: "a >= 10"},
		{Col: 1, Op: KernLT, Lit: storage.StringValue("m"), Name: "b < 'm'"},
		{Col: 0, Op: KernNE, Lit: storage.IntValue(13), Name: "a != 13"},
	}
	mk := func() *FilterKernel { return NewFilterKernel(preds, nil, nil) }
	gen := func(n, off int) []storage.Tuple {
		out := make([]storage.Tuple, n)
		for i := range out {
			s := "z"
			if (i+off)%3 == 0 {
				s = "a"
			}
			out[i] = storage.Tuple{storage.IntValue(int64((i + off) % 20)), storage.StringValue(s)}
		}
		return out
	}
	ref := func(ts []storage.Tuple) []string {
		var out []string
		for _, tu := range ts {
			if boxedKeep(KernGE, tu[0], storage.IntValue(10)) &&
				boxedKeep(KernLT, tu[1], storage.StringValue("m")) &&
				boxedKeep(KernNE, tu[0], storage.IntValue(13)) {
				out = append(out, fmt.Sprint(tu))
			}
		}
		return out
	}
	for _, size := range []int{1, 7, 64, 1024} {
		k := mk()
		b := &Batch{}
		// 100 batches crosses the reorder cadence several times.
		for round := 0; round < 100; round++ {
			in := gen(size, round)
			b.Tuples = append(b.Tuples[:0], in...)
			k.Apply(b)
			want := ref(in)
			if len(b.Tuples) != len(want) {
				t.Fatalf("size %d round %d: %d rows, want %d", size, round, len(b.Tuples), len(want))
			}
			for i, tu := range b.Tuples {
				if fmt.Sprint(tu) != want[i] {
					t.Fatalf("size %d round %d row %d: %v want %s", size, round, i, tu, want[i])
				}
			}
		}
	}
}

// TestFilterKernelBoxedResidual: residual predicate runs after the
// kernels on the compacted batch.
func TestFilterKernelBoxedResidual(t *testing.T) {
	k := NewFilterKernel(
		[]ColPred{{Col: 0, Op: KernGT, Lit: storage.IntValue(5), Name: "a > 5"}},
		func(tu storage.Tuple) bool { return tu[0].Int%2 == 0 },
		nil)
	b := &Batch{}
	for i := 0; i < 20; i++ {
		b.Tuples = append(b.Tuples, storage.Tuple{storage.IntValue(int64(i))})
	}
	k.Apply(b)
	for _, tu := range b.Tuples {
		if tu[0].Int <= 5 || tu[0].Int%2 != 0 {
			t.Fatalf("row %v survived kernel+residual", tu)
		}
	}
	if len(b.Tuples) != 7 { // 6,8,10,12,14,16,18
		t.Fatalf("%d rows, want 7", len(b.Tuples))
	}
}

// TestFilterRankMatchesEddy pins the shared rank formula.
func TestFilterRankMatchesEddy(t *testing.T) {
	f := &EddyFilter{Cost: 2}
	f.evals, f.passes = 100, 25
	if got, want := f.rank(), FilterRank(2, 0.25); got != want {
		t.Fatalf("rank = %v, FilterRank = %v", got, want)
	}
	if r := FilterRank(1, 1); math.IsInf(r, 1) {
		t.Fatal("always-pass filter must rank finite")
	}
}

// BenchmarkFilterBatch is the allocation gate: steady-state kernel
// filtering of a 1024-row batch must stay within the ci.sh alloc
// budget (the selection vector is retained on the batch).
func BenchmarkFilterBatch(b *testing.B) {
	const n = 1024
	base := make([]storage.Tuple, n)
	arena := make(storage.Tuple, 0, 2*n)
	for i := 0; i < n; i++ {
		start := len(arena)
		arena = append(arena, storage.IntValue(int64(i%100)), storage.FloatValue(float64(i)))
		base[i] = arena[start:len(arena):len(arena)]
	}
	k := NewFilterKernel([]ColPred{
		{Col: 0, Op: KernLT, Lit: storage.IntValue(50), Name: "a < 50"},
		{Col: 1, Op: KernGE, Lit: storage.FloatValue(10), Name: "b >= 10"},
	}, nil, nil)
	batch := &Batch{Tuples: make([]storage.Tuple, 0, n)}
	work := make([]storage.Tuple, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		batch.Tuples = work[:n]
		k.Apply(batch)
	}
}

package operators

import (
	"math"

	"github.com/adm-project/adm/internal/storage"
)

// This file implements the three adaptive join algorithms the paper
// cites as the data-operator substrate (§2): the symmetric pipelined
// hash join of Wilschut & Apers [31], XJoin [29] with a reactive
// phase that works on spilled partitions while the sources stall, and
// the blocking classic hash join as the baseline they beat on
// time-to-first-tuple. All run over TimedSources and report
// timestamped outputs.

// RunBlockingHashJoin executes a classic hash join over timed
// sources: the build side must fully arrive before the first probe.
func RunBlockingHashJoin(l, r *TimedSource, lcol, rcol int) RunResult {
	res := newRunResult()
	now := 0.0
	table := map[string][]TimedTuple{}
	mem := 0
	// Build phase: wait for every left tuple.
	for !l.Done() {
		if t, ok := l.PollAt(now); ok {
			v := t.Tuple[lcol]
			if !v.IsNull() {
				table[joinKey(v)] = append(table[joinKey(v)], t)
			}
			mem++
			if mem > res.MaxMemTuples {
				res.MaxMemTuples = mem
			}
			continue
		}
		next, _ := l.NextArrival()
		res.IdleMS += next - now
		now = next
	}
	// Probe phase: stream the right side.
	for !r.Done() {
		t, ok := r.PollAt(now)
		if !ok {
			next, _ := r.NextArrival()
			res.IdleMS += next - now
			now = next
			continue
		}
		v := t.Tuple[rcol]
		if v.IsNull() {
			continue
		}
		res.Comparisons++
		for _, b := range table[joinKey(v)] {
			res.emit(TimedOutput{Tuple: concat(b.Tuple, t.Tuple), At: now, LSeq: b.Seq, RSeq: t.Seq})
		}
	}
	res.CompletionMS = now
	return res
}

// RunSymmetricHashJoin executes the pipelined (symmetric) hash join:
// both sides build as they arrive, each new tuple immediately probes
// the opposite table, so results stream from the first match — the
// non-blocking behaviour adaptive query processing is built on.
// Memory is unbounded (both tables live in RAM).
func RunSymmetricHashJoin(l, r *TimedSource, lcol, rcol int) RunResult {
	res := newRunResult()
	now := 0.0
	hl := map[string][]TimedTuple{}
	hr := map[string][]TimedTuple{}
	mem := 0
	for !l.Done() || !r.Done() {
		progressed := false
		if t, ok := l.PollAt(now); ok {
			progressed = true
			v := t.Tuple[lcol]
			if !v.IsNull() {
				k := joinKey(v)
				hl[k] = append(hl[k], t)
				res.Comparisons++
				for _, m := range hr[k] {
					res.emit(TimedOutput{Tuple: concat(t.Tuple, m.Tuple), At: now, LSeq: t.Seq, RSeq: m.Seq})
				}
			}
			mem++
		}
		if t, ok := r.PollAt(now); ok {
			progressed = true
			v := t.Tuple[rcol]
			if !v.IsNull() {
				k := joinKey(v)
				hr[k] = append(hr[k], t)
				res.Comparisons++
				for _, m := range hl[k] {
					res.emit(TimedOutput{Tuple: concat(m.Tuple, t.Tuple), At: now, LSeq: m.Seq, RSeq: t.Seq})
				}
			}
			mem++
		}
		if mem > res.MaxMemTuples {
			res.MaxMemTuples = mem
		}
		if !progressed {
			next := math.Inf(1)
			if a, ok := l.NextArrival(); ok {
				next = math.Min(next, a)
			}
			if a, ok := r.NextArrival(); ok {
				next = math.Min(next, a)
			}
			if math.IsInf(next, 1) {
				break
			}
			res.IdleMS += next - now
			now = next
		}
	}
	res.CompletionMS = now
	return res
}

// XJoinConfig parameterises RunXJoin.
type XJoinConfig struct {
	// MemTuplesPerSide caps each side's in-memory hash table; excess
	// tuples spill to "disk" partitions.
	MemTuplesPerSide int
	// ReactiveBatch is how many spilled tuples one reactive step
	// processes while the sources are stalled.
	ReactiveBatch int
	// ReactiveStepMS is the simulated cost of one reactive step.
	ReactiveStepMS float64
}

// DefaultXJoinConfig returns a small-memory configuration.
func DefaultXJoinConfig() XJoinConfig {
	return XJoinConfig{MemTuplesPerSide: 128, ReactiveBatch: 32, ReactiveStepMS: 1}
}

// RunXJoin executes an XJoin-style three-stage join: stage 1 is the
// symmetric in-memory join over bounded tables with overflow spilled;
// stage 2 (reactive) joins spilled tuples against the opposite
// in-memory table whenever both sources are stalled — producing
// results during delays the blocking join would waste; stage 3
// (cleanup) completes all remaining pairs after the sources end.
// Duplicate results are suppressed with a (LSeq,RSeq) pair set, the
// role the original plays with timestamp ranges.
func RunXJoin(l, r *TimedSource, lcol, rcol int, cfg XJoinConfig) RunResult {
	if cfg.MemTuplesPerSide <= 0 {
		cfg = DefaultXJoinConfig()
	}
	res := newRunResult()
	now := 0.0
	type side struct {
		mem     map[string][]TimedTuple
		memN    int
		disk    []TimedTuple
		diskIdx map[string][]TimedTuple // hash over spilled tuples
		col     int
		cur     int // reactive-stage cursor into disk
	}
	L := &side{mem: map[string][]TimedTuple{}, diskIdx: map[string][]TimedTuple{}, col: lcol}
	R := &side{mem: map[string][]TimedTuple{}, diskIdx: map[string][]TimedTuple{}, col: rcol}
	seen := map[uint64]struct{}{}
	pairKey := func(ls, rs int) uint64 { return uint64(ls)<<32 | uint64(uint32(rs)) }
	emit := func(lt, rt TimedTuple, at float64) {
		k := pairKey(lt.Seq, rt.Seq)
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		res.emit(TimedOutput{Tuple: concat(lt.Tuple, rt.Tuple), At: at, LSeq: lt.Seq, RSeq: rt.Seq})
	}

	admit := func(s, o *side, t TimedTuple, leftSide bool) {
		v := t.Tuple[s.col]
		if v.IsNull() {
			return
		}
		k := joinKey(v)
		// Probe opposite memory table.
		res.Comparisons++
		for _, m := range o.mem[k] {
			if leftSide {
				emit(t, m, now)
			} else {
				emit(m, t, now)
			}
		}
		if s.memN < cfg.MemTuplesPerSide {
			s.mem[k] = append(s.mem[k], t)
			s.memN++
		} else {
			s.disk = append(s.disk, t)
			s.diskIdx[k] = append(s.diskIdx[k], t)
		}
		if s.memN > res.MaxMemTuples {
			res.MaxMemTuples = s.memN
		}
	}

	reactive := func(deadline float64) {
		// Join spilled tuples against the opposite memory table,
		// advancing a cursor through each disk run so every spilled
		// tuple is covered; charging simulated time per step. The
		// stage ends when the cursors exhaust the spilled runs or the
		// next arrival is due.
		for now+cfg.ReactiveStepMS <= deadline && (L.cur < len(L.disk) || R.cur < len(R.disk)) {
			for i := 0; i < cfg.ReactiveBatch && L.cur < len(L.disk); i++ {
				t := L.disk[L.cur]
				L.cur++
				k := joinKey(t.Tuple[L.col])
				res.Comparisons++
				// Arrival already probed the opposite memory table;
				// the pairs stage 1 cannot have seen are disk×disk.
				for _, m := range R.diskIdx[k] {
					emit(t, m, now+cfg.ReactiveStepMS)
				}
			}
			for i := 0; i < cfg.ReactiveBatch && R.cur < len(R.disk); i++ {
				t := R.disk[R.cur]
				R.cur++
				k := joinKey(t.Tuple[R.col])
				res.Comparisons++
				for _, m := range L.diskIdx[k] {
					emit(m, t, now+cfg.ReactiveStepMS)
				}
			}
			now += cfg.ReactiveStepMS
		}
		if now < deadline {
			res.IdleMS += deadline - now
			now = deadline
		}
	}

	for !l.Done() || !r.Done() {
		progressed := false
		if t, ok := l.PollAt(now); ok {
			admit(L, R, t, true)
			progressed = true
		}
		if t, ok := r.PollAt(now); ok {
			admit(R, L, t, false)
			progressed = true
		}
		if !progressed {
			next := math.Inf(1)
			if a, ok := l.NextArrival(); ok {
				next = math.Min(next, a)
			}
			if a, ok := r.NextArrival(); ok {
				next = math.Min(next, a)
			}
			if math.IsInf(next, 1) {
				break
			}
			// Stage 2: sources stalled until `next` — do reactive work.
			reactive(next)
		}
	}
	// Stage 3: cleanup — every remaining pair combination, through the
	// dedup set. Memory and disk contents of each side join the
	// opposite side's full contents.
	allOf := func(s *side) []TimedTuple {
		var out []TimedTuple
		for _, b := range s.mem {
			out = append(out, b...)
		}
		return append(out, s.disk...)
	}
	lAll, rAll := allOf(L), allOf(R)
	rByKey := map[string][]TimedTuple{}
	for _, t := range rAll {
		rByKey[joinKey(t.Tuple[R.col])] = append(rByKey[joinKey(t.Tuple[R.col])], t)
	}
	for _, lt := range lAll {
		res.Comparisons++
		for _, rt := range rByKey[joinKey(lt.Tuple[L.col])] {
			emit(lt, rt, now)
		}
	}
	res.CompletionMS = now
	return res
}

// ---------------------------------------------------------------------------
// Ripple join for online aggregation [14].

// RipplePoint is one point of the running-estimate trajectory.
type RipplePoint struct {
	At       float64
	Sampled  int // total tuples consumed from both sides
	Estimate float64
	// Fraction of the full cross product inspected.
	Fraction float64
	// HalfWidth is a CLT-style half-confidence-interval on the
	// estimate (0 until enough contribution variance is observed) —
	// the shrinking error bar online aggregation shows the user.
	HalfWidth float64
}

// RippleResult is the outcome of a ripple-join run.
type RippleResult struct {
	Trajectory []RipplePoint
	FinalSum   float64
	// Exact is the true aggregate (available because the run completes).
	Exact float64
}

// RunRippleJoin executes a square ripple join computing
// SUM(valCol of L) over matching pairs (lcol = rcol), emitting a
// scaled running estimate after every sampling step. The estimator is
// the classic |L||R|/(l·r) scale-up of the partial sum; as sampling
// completes, the estimate converges to the exact answer.
func RunRippleJoin(l, r *TimedSource, lcol, rcol, valCol int, reportEvery int) RippleResult {
	res := RippleResult{}
	now := 0.0
	var seenL, seenR []TimedTuple
	partial := 0.0
	totL := l.Remaining()
	totR := r.Remaining()
	if reportEvery < 1 {
		reportEvery = 16
	}
	consumed := 0
	// Welford accumulator over per-step contributions, for the
	// CLT-style confidence half-width (an approximation in the spirit
	// of, not identical to, the Haas ripple-join estimator).
	var deltaMean, deltaM2 float64
	step := func(t TimedTuple, mine *[]TimedTuple, others []TimedTuple, leftSide bool) {
		before := partial
		*mine = append(*mine, t)
		for _, o := range others {
			var lv, rv storage.Value
			var lt storage.Tuple
			if leftSide {
				lv, rv, lt = t.Tuple[lcol], o.Tuple[rcol], t.Tuple
			} else {
				lv, rv, lt = o.Tuple[lcol], t.Tuple[rcol], o.Tuple
			}
			if lv.IsNull() || rv.IsNull() {
				continue
			}
			if storage.Equal(lv, rv) {
				if f, ok := lt[valCol].AsFloat(); ok {
					partial += f
				}
			}
		}
		consumed++
		delta := partial - before
		dm := delta - deltaMean
		deltaMean += dm / float64(consumed)
		deltaM2 += dm * (delta - deltaMean)
		if consumed%reportEvery == 0 {
			lN, rN := len(seenL), len(seenR)
			if lN > 0 && rN > 0 {
				scale := (float64(totL) / float64(lN)) * (float64(totR) / float64(rN))
				half := 0.0
				if consumed > 1 {
					variance := deltaM2 / float64(consumed-1)
					n := float64(consumed)
					total := float64(totL + totR)
					fpc := 1 - n/total
					if fpc < 0 {
						fpc = 0
					}
					half = 1.96 * scale * math.Sqrt(n*variance*fpc)
				}
				res.Trajectory = append(res.Trajectory, RipplePoint{
					At:        now,
					Sampled:   consumed,
					Estimate:  partial * scale,
					Fraction:  float64(lN*rN) / float64(totL*totR),
					HalfWidth: half,
				})
			}
		}
	}
	for !l.Done() || !r.Done() {
		progressed := false
		// Square growth: prefer the side with fewer samples.
		preferL := len(seenL) <= len(seenR)
		tryOrder := []*TimedSource{l, r}
		if !preferL {
			tryOrder[0], tryOrder[1] = r, l
		}
		for _, src := range tryOrder {
			if t, ok := src.PollAt(now); ok {
				if src == l {
					step(t, &seenL, seenR, true)
				} else {
					step(t, &seenR, seenL, false)
				}
				progressed = true
				break
			}
		}
		if !progressed {
			next := math.Inf(1)
			if a, ok := l.NextArrival(); ok {
				next = math.Min(next, a)
			}
			if a, ok := r.NextArrival(); ok {
				next = math.Min(next, a)
			}
			if math.IsInf(next, 1) {
				break
			}
			now = next
		}
	}
	res.FinalSum = partial
	res.Exact = partial // the run sampled everything
	// Final trajectory point at full coverage.
	res.Trajectory = append(res.Trajectory, RipplePoint{
		At: now, Sampled: consumed, Estimate: partial, Fraction: 1,
	})
	return res
}

package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/storage"
)

func newServerFixture(t *testing.T, cfg Config) (*Server, *storage.DB) {
	t.Helper()
	db, err := storage.Open(storage.NewMemDisk(), storage.NewMemDisk(),
		storage.DBOptions{Sync: storage.SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := query.NewDurableCatalog(db)
	if err != nil {
		t.Fatal(err)
	}
	eng := query.NewEngine(cat, nil, nil)
	// kv stays small (page slack for MVCC update versions); j is the
	// bulk table driving chunked results and explosive self-joins.
	eng.MustExec("CREATE TABLE kv (k INT, v STRING)")
	for i := 0; i < 8; i++ {
		eng.MustExec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'seed-%d')", i, i))
	}
	// Wide rows: a j-squared self-join is ~20MB on the wire, larger
	// than any auto-tuned kernel send buffer (the stalled-reader fault
	// needs the server's flush to actually block).
	pad := strings.Repeat("x", 56)
	eng.MustExec("CREATE TABLE j (g INT, p STRING)")
	for lo := 0; lo < 400; lo += 50 {
		var j []string
		for i := lo; i < lo+50; i++ {
			j = append(j, fmt.Sprintf("(1, 'pad-%d-%s')", i, pad))
		}
		eng.MustExec("INSERT INTO j VALUES " + strings.Join(j, ", "))
	}
	srv := New(eng, db, cfg, nil)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if n := db.Txns().Active(); n != 0 {
			t.Errorf("%d transactions leaked after server close", n)
		}
	})
	return srv, db
}

func dialT(t *testing.T, srv *Server, token string) *Client {
	t.Helper()
	c, err := Dial(srv.Addr(), token)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestServerRoundTrip(t *testing.T) {
	srv, _ := newServerFixture(t, Config{})
	c := dialT(t, srv, "")
	defer c.Close()

	res, err := c.Query("SELECT k, v FROM kv WHERE k < 3 ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || len(res.Rows) != 3 {
		t.Fatalf("got %d cols / %d rows, want 2 / 3", len(res.Cols), len(res.Rows))
	}
	if res.Rows[2][0].Int != 2 || res.Rows[2][1].Str != "seed-2" {
		t.Fatalf("row 2 = %v, want (2, seed-2)", res.Rows[2])
	}

	ins, err := c.Query("INSERT INTO kv VALUES (1000, 'net')")
	if err != nil {
		t.Fatal(err)
	}
	if ins.Affected != 1 {
		t.Fatalf("insert affected %d, want 1", ins.Affected)
	}
}

// TestServerLargeResult crosses several rowChunk boundaries so the
// chunked 'D' streaming path is exercised end to end.
func TestServerLargeResult(t *testing.T) {
	srv, _ := newServerFixture(t, Config{})
	c := dialT(t, srv, "")
	defer c.Close()

	res, err := c.Query("SELECT p FROM j")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 400 {
		t.Fatalf("got %d rows, want 400", len(res.Rows))
	}
}

func TestServerAuth(t *testing.T) {
	srv, _ := newServerFixture(t, Config{AuthToken: "sesame"})
	if _, err := Dial(srv.Addr(), "wrong"); err == nil {
		t.Fatal("bad token accepted")
	} else {
		var re *RemoteError
		if !errors.As(err, &re) || re.Code != CodeAuth {
			t.Fatalf("bad token error = %v, want CodeAuth", err)
		}
	}
	c := dialT(t, srv, "sesame")
	defer c.Close()
	if _, err := c.Query("SELECT k FROM kv WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
}

// TestServerTxnOverWire drives an explicit transaction over the
// protocol and checks isolation against a second connection.
func TestServerTxnOverWire(t *testing.T) {
	srv, _ := newServerFixture(t, Config{})
	a := dialT(t, srv, "")
	defer a.Close()
	b := dialT(t, srv, "")
	defer b.Close()

	mustQ := func(c *Client, sql string) *ClientResult {
		t.Helper()
		res, err := c.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustQ(a, "BEGIN")
	mustQ(a, "INSERT INTO kv VALUES (2000, 'txn')")
	if n := len(mustQ(b, "SELECT k FROM kv WHERE k = 2000").Rows); n != 0 {
		t.Fatalf("uncommitted row visible to other connection (%d rows)", n)
	}
	mustQ(a, "COMMIT")
	if n := len(mustQ(b, "SELECT k FROM kv WHERE k = 2000").Rows); n != 1 {
		t.Fatalf("committed row not visible (%d rows)", n)
	}
}

// TestServerConflictCode checks storage.ErrWriteConflict surfaces as
// the distinct retryable CodeConflict (satellite 2).
func TestServerConflictCode(t *testing.T) {
	srv, _ := newServerFixture(t, Config{})
	a := dialT(t, srv, "")
	defer a.Close()
	b := dialT(t, srv, "")
	defer b.Close()

	for _, sql := range []string{"BEGIN", "UPDATE kv SET v = 'a' WHERE k = 7"} {
		if _, err := a.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Query("BEGIN"); err != nil {
		t.Fatal(err)
	}
	_, err := b.Query("UPDATE kv SET v = 'b' WHERE k = 7")
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeConflict {
		t.Fatalf("conflicting update error = %v, want CodeConflict", err)
	}
	if !re.Retryable() {
		t.Fatal("write conflict not marked retryable")
	}
	if _, err := a.Query("COMMIT"); err != nil {
		t.Fatal(err)
	}
	// b's transaction was auto-rolled-back; the session must be usable
	// again in autocommit, and the retry must now succeed.
	if _, err := b.Query("UPDATE kv SET v = 'b-retry' WHERE k = 7"); err != nil {
		t.Fatalf("retry after conflict: %v", err)
	}
}

func TestServerDeadlineCode(t *testing.T) {
	srv, _ := newServerFixture(t, Config{StatementTimeout: 30 * time.Millisecond, MemQuota: -1})
	c := dialT(t, srv, "")
	defer c.Close()

	// A constant-key self-join cubed: 400^3 output rows, far beyond a
	// 30ms deadline; the morsel workers abort at batch granularity.
	_, err := c.Query("SELECT a.p FROM j a JOIN j b ON a.g = b.g JOIN j c ON b.g = c.g")
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeDeadline {
		t.Fatalf("slow statement error = %v, want CodeDeadline", err)
	}
	if re.Retryable() {
		t.Fatal("deadline should not be marked retryable")
	}
	// The connection survives a per-statement deadline.
	if _, err := c.Query("SELECT k FROM kv WHERE k = 1"); err != nil {
		t.Fatalf("statement after deadline: %v", err)
	}
}

func TestServerQuotaCode(t *testing.T) {
	srv, _ := newServerFixture(t, Config{MemQuota: 4 << 10})
	c := dialT(t, srv, "")
	defer c.Close()

	// 400x400 join output charges ~7MB against a 4KB budget.
	_, err := c.Query("SELECT a.p FROM j a JOIN j b ON a.g = b.g")
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeQuota {
		t.Fatalf("oversized statement error = %v, want CodeQuota", err)
	}
	if _, err := c.Query("SELECT k FROM kv WHERE k = 1"); err != nil {
		t.Fatalf("statement after quota trip: %v", err)
	}
}

// TestAdmissionShed saturates a 1-slot, 0-queue gate and checks the
// distinct retryable overloaded code.
func TestAdmissionShed(t *testing.T) {
	srv, _ := newServerFixture(t, Config{MaxInflight: 1, MaxQueue: -1})
	// Hold the only slot.
	if err := srv.Admission().Acquire(time.Second); err != nil {
		t.Fatal(err)
	}
	defer srv.Admission().Release()

	c := dialT(t, srv, "")
	defer c.Close()
	_, err := c.Query("SELECT k FROM kv WHERE k = 1")
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeOverloaded {
		t.Fatalf("shed statement error = %v, want CodeOverloaded", err)
	}
	if !re.Retryable() {
		t.Fatal("overload not marked retryable")
	}
	if srv.Stats().Shed == 0 {
		t.Fatal("shed counter did not move")
	}
}

func TestAdmissionQueueBounds(t *testing.T) {
	a := NewAdmission(1, 1)
	if err := a.Acquire(time.Second); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue; it must eventually get the slot.
	done := make(chan error, 1)
	go func() {
		err := a.Acquire(5 * time.Second)
		if err == nil {
			a.Release()
		}
		done <- err
	}()
	for a.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Queue full: the next statement is shed immediately.
	if err := a.Acquire(5 * time.Second); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-queue acquire = %v, want ErrOverloaded", err)
	}
	a.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	if a.Inflight() != 0 || a.QueueDepth() != 0 {
		t.Fatalf("gate not drained: inflight=%d queued=%d", a.Inflight(), a.QueueDepth())
	}
}

func TestAdmissionQueueingToggle(t *testing.T) {
	a := NewAdmission(1, 8)
	if err := a.Acquire(time.Second); err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	a.SetQueueing(false)
	if err := a.Acquire(time.Second); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queueing-off acquire = %v, want immediate shed", err)
	}
	a.SetQueueing(true)
	if !a.Queueing() {
		t.Fatal("queueing not restored")
	}
}

// TestControllerLadder drives the controller with synthetic latencies
// and checks the full ladder transit: l0 -> l1 -> l2 -> back to l0.
func TestControllerLadder(t *testing.T) {
	adm := NewAdmission(4, 16)
	base := Tuning{Workers: 4, Batch: 1024, Queue: true}
	c := newControllerForTest(adm, base, 50, 0)

	// Each tick drains the window, so every tick gets a fresh feed of
	// the phase's latency; the EWMA gauge converges across ticks.
	var scratch []float64
	phase := func(ms float64, ticks int) {
		for i := 0; i < ticks; i++ {
			for j := 0; j < 50; j++ {
				c.RecordLatency(ms)
			}
			_, scratch = c.Tick(scratch)
		}
	}

	phase(10, 2)
	if got := c.Tuning(); got.Level != 0 {
		t.Fatalf("healthy load at level %d, want 0", got.Level)
	}
	// p99 over SLO: EWMA alpha 0.5 converges within a few ticks.
	phase(80, 4)
	if got := c.Tuning(); got.Level != 1 || got.Queue || got.Batch >= base.Batch {
		t.Fatalf("over-SLO tuning = %+v, want l1 with queueing off and shrunk batch", got)
	}
	if adm.Queueing() {
		t.Fatal("l1 did not close the admission queue")
	}
	// p99 over 2x SLO: drop to one worker.
	phase(400, 4)
	if got := c.Tuning(); got.Level != 2 || got.Workers != 1 {
		t.Fatalf("crisis tuning = %+v, want l2 with 1 worker", got)
	}
	// Decay: healthy latencies and an empty queue restore l0 (stepwise
	// l2 -> l1 -> l0 across ticks).
	for i := 0; i < 12 && c.Tuning().Level != 0; i++ {
		phase(5, 1)
	}
	if got := c.Tuning(); got.Level != 0 || got.Workers != 4 || got.Batch != 1024 || !got.Queue {
		t.Fatalf("recovered tuning = %+v, want base %+v", got, base)
	}
	if !adm.Queueing() {
		t.Fatal("recovery did not reopen the admission queue")
	}
}

// newControllerForTest builds a controller with a deterministic clock.
func newControllerForTest(adm *Admission, base Tuning, sloMS, cooldownMS float64) *Controller {
	c := newController(monitor.NewRegistry(), adm, base, sloMS, cooldownMS, nil)
	var now float64
	c.clock = func() float64 { now += 10; return now }
	return c
}

// TestControllerConcurrent hammers RecordLatency/Tick/Tuning from
// many goroutines; the race detector is the assertion.
func TestControllerConcurrent(t *testing.T) {
	adm := NewAdmission(4, 16)
	c := newControllerForTest(adm, Tuning{Workers: 4, Batch: 1024, Queue: true}, 50, 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var scratch []float64
			for i := 0; i < 500; i++ {
				c.RecordLatency(float64(g*i%200) + 1)
				if i%10 == 0 {
					_, scratch = c.Tick(scratch)
				}
				_ = c.Tuning()
			}
		}(g)
	}
	wg.Wait()
}

func TestWireCodecRoundTrip(t *testing.T) {
	row := storage.Tuple{
		storage.NullValue(),
		storage.IntValue(-42),
		storage.FloatValue(3.5),
		storage.StringValue(strings.Repeat("x", 300)),
		storage.BoolValue(true),
	}
	buf := appendRow(nil, row)
	got, rest, err := readRow(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if len(got) != len(row) {
		t.Fatalf("width %d, want %d", len(got), len(row))
	}
	for i := range row {
		if got[i].Kind != row[i].Kind || got[i].Int != row[i].Int ||
			got[i].Float != row[i].Float || got[i].Str != row[i].Str || got[i].Bool != row[i].Bool {
			t.Fatalf("value %d: got %+v want %+v", i, got[i], row[i])
		}
	}
	// Truncations at every prefix must error, not panic or misparse.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := readRow(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

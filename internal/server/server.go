package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/session"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

// ErrDeadline reports a statement cancelled by its per-statement
// deadline. The morsel workers poll the Cancel hook between batches,
// so cancellation lands at batch granularity.
var ErrDeadline = errors.New("server: statement deadline exceeded")

// errAuth reports a rejected hello.
var errAuth = errors.New("server: authentication failed")

// Config tunes one admsqld instance. Zero values take the defaults
// noted per field.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0" — ephemeral
	// port, read it back with Server.Addr).
	Addr string
	// AuthToken is the stub credential a hello frame must carry
	// verbatim. Empty accepts every hello.
	AuthToken string

	// MaxInflight bounds concurrently executing statements (default 4).
	MaxInflight int
	// MaxQueue bounds admission waiters beyond MaxInflight (default 16).
	MaxQueue int

	// StatementTimeout is both the admission-queue wait bound and the
	// per-statement execution deadline (default 2s).
	StatementTimeout time.Duration
	// WriteTimeout bounds each response flush so a stalled reader
	// fails its connection instead of wedging a serving goroutine
	// (default 5s).
	WriteTimeout time.Duration
	// MemQuota is the per-statement materialisation budget in bytes,
	// charged against batches as the morsel pipelines produce them
	// (default 64 MiB; <0 disables).
	MemQuota int64

	// Workers and BatchSize are the l0 (normal) operating point for
	// parallel SELECTs; zero takes the executor defaults.
	Workers   int
	BatchSize int

	// Adaptive enables the degradation ladder (shed -> shrink batch ->
	// drop workers). When false the server runs pinned at l0.
	Adaptive bool
	// SLOMS is the p99 latency target in milliseconds driving the
	// ladder (default 50).
	SLOMS float64
	// Tick is the monitor/controller evaluation interval (default 25ms).
	Tick time.Duration
	// CooldownMS damps consecutive ladder moves (default 4 ticks).
	CooldownMS float64
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.StatementTimeout == 0 {
		c.StatementTimeout = 2 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.MemQuota == 0 {
		c.MemQuota = 64 << 20
	}
	if c.MemQuota < 0 {
		c.MemQuota = 0 // unlimited
	}
	if c.SLOMS == 0 {
		c.SLOMS = 50
	}
	if c.Tick == 0 {
		c.Tick = 25 * time.Millisecond
	}
	if c.CooldownMS == 0 {
		c.CooldownMS = 4 * float64(c.Tick) / float64(time.Millisecond)
	}
	return c
}

// Stats is a point-in-time server counter snapshot.
type Stats struct {
	Accepted  int64 // connections accepted
	Served    int64 // statements completed successfully
	Shed      int64 // statements rejected by admission control
	Conflicts int64 // statements failed with a write conflict
	Deadlines int64 // statements cancelled by deadline
	QuotaHits int64 // statements killed by the memory budget
	Errors    int64 // other statement errors
	Level     int   // current degradation-ladder level
	Switches  int64 // ladder level changes applied
}

// Server is the admsqld network front end: it accepts TCP
// connections, speaks the frame protocol, and runs each connection's
// statements through its own session.DBSession — so a dropped client
// tears down through DBSession.Close and cannot leak a transaction.
type Server struct {
	cfg Config
	eng *query.Engine
	db  *storage.DB
	reg *monitor.Registry
	adm *Admission
	ctl *Controller
	log *trace.Log

	ln net.Listener

	// mu guards the connection table and the closed flag; never held
	// across I/O or channel operations.
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg       sync.WaitGroup
	stopTick chan struct{}

	accepted  atomic.Int64
	served    atomic.Int64
	conflicts atomic.Int64
	deadlines atomic.Int64
	quotaHits atomic.Int64
	errs      atomic.Int64
}

// New builds a server over an engine and its durable DB. log may be
// nil (a fresh trace log is created).
func New(eng *query.Engine, db *storage.DB, cfg Config, log *trace.Log) *Server {
	cfg = cfg.withDefaults()
	if log == nil {
		log = trace.New()
	}
	reg := monitor.NewRegistry()
	adm := NewAdmission(cfg.MaxInflight, cfg.MaxQueue)
	base := Tuning{Level: 0, Workers: cfg.Workers, Batch: cfg.BatchSize, Queue: cfg.MaxQueue > 0}
	return &Server{
		cfg:      cfg,
		eng:      eng,
		db:       db,
		reg:      reg,
		adm:      adm,
		ctl:      newController(reg, adm, base, cfg.SLOMS, cfg.CooldownMS, log),
		log:      log,
		conns:    make(map[net.Conn]struct{}),
		stopTick: make(chan struct{}),
	}
}

// Controller exposes the admission controller (stats, tests).
func (s *Server) Controller() *Controller { return s.ctl }

// Admission exposes the admission gate (stats, tests).
func (s *Server) Admission() *Admission { return s.adm }

// Start binds the listener and launches the accept loop (and, when
// adaptive, the controller tick loop). It returns once the server is
// accepting; Close shuts it down.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	if s.cfg.Adaptive {
		s.wg.Add(1)
		go s.tickLoop()
	}
	return nil
}

// Addr is the bound listen address (useful with an ephemeral port).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:  s.accepted.Load(),
		Served:    s.served.Load(),
		Shed:      s.adm.Shed(),
		Conflicts: s.conflicts.Load(),
		Deadlines: s.deadlines.Load(),
		QuotaHits: s.quotaHits.Load(),
		Errors:    s.errs.Load(),
		Level:     s.ctl.Tuning().Level,
		Switches:  s.ctl.Switches(),
	}
}

// Close stops accepting, force-closes every live connection, and
// waits for all serving goroutines to tear down (each one rolls back
// its session's open transaction on the way out).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	close(s.stopTick)
	for _, c := range conns {
		_ = c.Close() // unblock the reader; serve's teardown reports its own error
	}
	s.wg.Wait()
	return err
}

// track registers a live connection; false means the server is
// closing and the connection should be dropped.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	span := s.log.Span("admsqld")
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			// Listener closed (shutdown) or a transient accept fault:
			// either way the error is surfaced in the trace, and a
			// closed server exits the loop.
			span.Emit(s.ctl.clock(), trace.KindInfo, "accept: %v", err)
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		if !s.track(nc) {
			_ = nc.Close() // racing with shutdown; nothing was served
			return
		}
		s.accepted.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(nc)
			if err := s.serve(nc); err != nil {
				span.Emit(s.ctl.clock(), trace.KindInfo, "conn %s: %v", nc.RemoteAddr(), err)
			}
		}()
	}
}

func (s *Server) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.Tick)
	defer t.Stop()
	var scratch []float64
	for {
		select {
		case <-s.stopTick:
			return
		case <-t.C:
			_, scratch = s.ctl.Tick(scratch)
		}
	}
}

// serve runs one connection's lifecycle: hello/auth, then a
// query loop until goodbye, EOF, or a poisoned stream. Teardown is
// unconditional — the session close (rolling back any open
// transaction) is joined into the returned error so a failed rollback
// is never silently dropped.
func (s *Server) serve(nc net.Conn) (err error) {
	fc := newFrameConn(nc, s.cfg.WriteTimeout)
	sess := session.NewDBSession(s.eng, s.db)
	defer func() {
		err = errors.Join(err, sess.Close(), nc.Close())
	}()

	typ, payload, err := fc.ReadFrame()
	if err != nil {
		return err
	}
	if typ != frameHello {
		return errors.Join(errAuth, s.writeErr(fc, CodeBadFrame, "expected hello"))
	}
	if s.cfg.AuthToken != "" && string(payload) != s.cfg.AuthToken {
		return errors.Join(errAuth, s.writeErr(fc, CodeAuth, "bad token"))
	}
	if err := fc.WriteFrame(frameHelloOK, nil); err != nil {
		return err
	}
	if err := fc.Flush(); err != nil {
		return err
	}

	for {
		typ, payload, err := fc.ReadFrame()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // clean disconnect between frames
			}
			return err
		}
		switch typ {
		case frameQuery:
			if err := s.handleQuery(fc, sess, string(payload)); err != nil {
				return err
			}
		case frameGoodbye:
			return nil
		default:
			if err := s.writeErr(fc, CodeBadFrame, fmt.Sprintf("unexpected frame %q", typ)); err != nil {
				return err
			}
		}
	}
}

// handleQuery runs one statement: admission (bypassed inside an
// explicit transaction — the client already holds row claims, and
// stalling it would hold them longer), the controller's current
// tuning, a deadline hook and memory budget threaded into the morsel
// pipelines, then the streamed response.
func (s *Server) handleQuery(fc *frameConn, sess *session.DBSession, sql string) error {
	// The latency window starts before admission so the controller
	// sees queue wait — that is exactly the latency a backlog inflates
	// and the ladder exists to cut. Shed statements are not recorded;
	// shedding is its own signal (queue-depth, shed counter).
	start := time.Now()
	if !sess.InTxn() {
		if err := s.adm.Acquire(s.cfg.StatementTimeout); err != nil {
			return s.writeErr(fc, CodeOverloaded, err.Error())
		}
		defer s.adm.Release()
	}

	tun := s.ctl.Tuning()
	var expired atomic.Bool
	timer := time.AfterFunc(s.cfg.StatementTimeout, func() { expired.Store(true) })
	defer timer.Stop()
	opts := query.ExecOptions{
		Workers:   tun.Workers,
		BatchSize: tun.Batch,
		Cancel: func() error {
			if expired.Load() {
				return ErrDeadline
			}
			return nil
		},
		MemBudget: operators.NewMemBudget(s.cfg.MemQuota),
	}

	res, err := sess.ExecOpts(sql, opts)
	s.ctl.RecordLatency(float64(time.Since(start).Nanoseconds()) / 1e6)
	if err != nil {
		code := classify(err)
		switch code {
		case CodeConflict:
			s.conflicts.Add(1)
		case CodeDeadline:
			s.deadlines.Add(1)
		case CodeQuota:
			s.quotaHits.Add(1)
		default:
			s.errs.Add(1)
		}
		return s.writeErr(fc, code, err.Error())
	}
	s.served.Add(1)
	return s.writeResult(fc, res)
}

// classify maps execution errors to wire codes.
func classify(err error) byte {
	switch {
	case errors.Is(err, storage.ErrWriteConflict):
		return CodeConflict
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrDeadline):
		return CodeDeadline
	case errors.Is(err, operators.ErrMemBudget):
		return CodeQuota
	default:
		return CodeInternal
	}
}

// writeResult streams header + bounded row chunks + completion.
func (s *Server) writeResult(fc *frameConn, res *query.Result) error {
	if res == nil {
		res = &query.Result{}
	}
	buf := appendUvarint(nil, uint64(len(res.Cols)))
	for _, c := range res.Cols {
		buf = appendUvarint(buf, uint64(len(c)))
		buf = append(buf, c...)
	}
	buf = appendUvarint(buf, uint64(res.Affected))
	buf = appendUvarint(buf, uint64(len(res.Rows)))
	if err := fc.WriteFrame(frameResult, buf); err != nil {
		return err
	}
	for lo := 0; lo < len(res.Rows); lo += rowChunk {
		hi := min(lo+rowChunk, len(res.Rows))
		chunk := appendUvarint(buf[:0], uint64(hi-lo))
		for _, t := range res.Rows[lo:hi] {
			chunk = appendRow(chunk, t)
		}
		if err := fc.WriteFrame(frameRows, chunk); err != nil {
			return err
		}
		buf = chunk
	}
	if err := fc.WriteFrame(frameDone, nil); err != nil {
		return err
	}
	return fc.Flush()
}

func (s *Server) writeErr(fc *frameConn, code byte, msg string) error {
	if err := fc.WriteFrame(frameError, append([]byte{code}, msg...)); err != nil {
		return err
	}
	return fc.Flush()
}

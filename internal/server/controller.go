package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/session"
	"github.com/adm-project/adm/internal/trace"
)

// Metric names the server publishes into its monitor registry. The
// p99 gauge is EWMA-smoothed so one slow statement does not flap the
// ladder; queue depth and in-flight count pass through raw.
const (
	MetricP99Latency = "p99-latency" // ms, EWMA over per-tick p99
	MetricQueueDepth = "queue-depth" // admission waiters
	MetricInflight   = "in-flight"   // executing statements, EWMA-smoothed occupancy
)

// Tuning is the degradation ladder's operating point, read atomically
// by every statement as it is admitted.
//
// The ladder (shed -> shrink batch -> drop workers):
//
//	l0  normal: configured workers and batch, bounded queueing
//	l1  queueing off (saturated statements shed immediately) and
//	    batches shrunk 4x, so in-flight statements yield at finer
//	    granularity and per-statement memory falls
//	l2  additionally workers dropped to 1: under a flash crowd,
//	    inter-query concurrency beats intra-query parallelism —
//	    W workers times N statements thrashes one core
type Tuning struct {
	Level   int
	Workers int
	Batch   int
	Queue   bool
}

// Controller is the monitor-fed adaptive admission controller: it
// records per-statement latencies, publishes gauge samples each tick,
// and lets a session.Manager evaluate the ladder rules (expressed in
// internal/constraint) whose decisions move the Tuning between
// levels. Level changes are idempotent and cooldown-damped.
type Controller struct {
	reg *monitor.Registry
	sm  *session.Manager
	adm *Admission

	base     Tuning
	cur      atomic.Pointer[Tuning]
	switches atomic.Int64
	clock    func() float64

	// mu guards only the per-tick latency batch (swapped out whole at
	// each tick; sorting happens outside the latch).
	mu    sync.Mutex
	batch []float64
}

// batchCap bounds the per-tick latency batch; a stalled tick loop must
// not let the window grow without bound.
const batchCap = 8192

// newController wires the ladder over reg/adm. sloMS is the p99
// target; cooldownMS damps consecutive level changes.
func newController(reg *monitor.Registry, adm *Admission, base Tuning,
	sloMS, cooldownMS float64, log *trace.Log) *Controller {
	c := &Controller{
		reg:   reg,
		adm:   adm,
		base:  base,
		clock: func() float64 { return float64(time.Now().UnixNano()) / 1e6 },
	}
	t := base
	c.cur.Store(&t)

	// Smooth the p99 feed, and the in-flight occupancy harder: the
	// occupancy gauge is sampled at tick instants, and under a raging
	// crowd a tick can land in the microsecond gap between a Release
	// and the next Acquire. Raw samples would show spare capacity that
	// does not exist; the slow EWMA makes recovery require SUSTAINED
	// slack, not one lucky instant. Queue depth passes through raw.
	reg.Bind(monitor.Key{Metric: MetricP99Latency}, &monitor.EWMA{Alpha: 0.5})
	reg.Bind(monitor.Key{Metric: MetricInflight}, &monitor.EWMA{Alpha: 0.2})

	// The ladder rules, most severe first. Recovery (l0) demands a
	// comfortable p99, an empty queue, AND spare execution capacity:
	// once l1 stops queueing, served latencies look healthy again even
	// under a raging crowd — saturated in-flight slots are what still
	// betray the overload, and releasing the ladder on latency alone
	// would flap it (reopen queue, refill, spike, close) forever.
	recoverOcc := max(1, adm.Capacity()/2)
	rules := constraint.NewRuleSet(
		constraint.PrioritisedRule{ID: 2, Priority: 0, Rule: constraint.MustParse(
			fmt.Sprintf("If %s > %g ms then admsqld.level.l2", MetricP99Latency, 2*sloMS))},
		constraint.PrioritisedRule{ID: 1, Priority: 1, Rule: constraint.MustParse(
			fmt.Sprintf("If %s > %g ms then admsqld.level.l1", MetricP99Latency, sloMS))},
		constraint.PrioritisedRule{ID: 0, Priority: 2, Rule: constraint.MustParse(
			fmt.Sprintf("If %s < %g ms and %s < 1 and %s < %d then admsqld.level.l0",
				MetricP99Latency, sloMS/2, MetricQueueDepth, MetricInflight, recoverOcc))},
	)
	c.sm = session.New("admsqld", reg, rules, log, c.clock,
		func(d constraint.Decision, r *constraint.PrioritisedRule) error {
			return c.apply(d.Target.Resource())
		})
	c.sm.CooldownMS = cooldownMS
	cur := constraint.Target{Segments: []string{"admsqld", "level", "l0"}}
	c.sm.SetCurrent(&cur)
	return c
}

// Tuning returns the current operating point.
func (c *Controller) Tuning() Tuning { return *c.cur.Load() }

// Switches counts applied level changes.
func (c *Controller) Switches() int64 { return c.switches.Load() }

// Manager exposes the session manager (stats, tests).
func (c *Controller) Manager() *session.Manager { return c.sm }

// Registry exposes the monitor registry the ladder reads (stats,
// tests).
func (c *Controller) Registry() *monitor.Registry { return c.reg }

// RecordLatency folds one served statement's latency into the current
// tick's window.
func (c *Controller) RecordLatency(ms float64) {
	c.mu.Lock()
	if len(c.batch) < batchCap {
		c.batch = append(c.batch, ms)
	}
	c.mu.Unlock()
}

// p99 drains the latencies recorded since the last tick and computes
// their 99th percentile. Draining per tick (rather than keeping a
// fixed-size ring) makes the controller's reaction time independent of
// throughput: a ring spanning seconds of low-rate traffic would let
// stale crowd latencies block recovery long after the load decays. The
// EWMA gauge the rules read supplies the smoothing across ticks. The
// batch is swapped out under the latch; sorting runs outside it. The
// swapped-in buf becomes the next window, and the drained batch is
// returned for the caller to recycle.
func (c *Controller) p99(buf []float64) (float64, int, []float64) {
	c.mu.Lock()
	buf, c.batch = c.batch, buf[:0]
	c.mu.Unlock()
	n := len(buf)
	if n == 0 {
		return 0, 0, buf
	}
	sort.Float64s(buf)
	idx := (n * 99) / 100
	if idx >= n {
		idx = n - 1
	}
	return buf[idx], n, buf
}

// Tick publishes one round of gauge samples and evaluates the ladder
// rules. The server calls it on its monitor interval; tests call it
// directly. Returns whether an adaptation fired.
func (c *Controller) Tick(scratch []float64) (bool, []float64) {
	now := c.clock()
	p99, n, scratch := c.p99(scratch)
	if n > 0 {
		c.reg.Publish(monitor.Sample{Key: monitor.Key{Metric: MetricP99Latency}, Value: p99, TimeMS: now})
	}
	c.reg.Publish(monitor.Sample{Key: monitor.Key{Metric: MetricQueueDepth}, Value: float64(c.adm.QueueDepth()), TimeMS: now})
	c.reg.Publish(monitor.Sample{Key: monitor.Key{Metric: MetricInflight}, Value: float64(c.adm.Inflight()), TimeMS: now})
	fired, err := c.sm.CheckNow()
	_ = err // metric gaps and failed adaptations are already counted in sm.Stats
	return fired, scratch
}

// apply moves the ladder to the named level ("level.l0".."level.l2").
// Unknown resources are rejected so a bad rule edit fails loudly in
// the manager's failure counter instead of silently no-opping.
func (c *Controller) apply(resource string) error {
	var t Tuning
	switch resource {
	case "level.l0":
		t = c.base
	case "level.l1":
		t = Tuning{Level: 1, Workers: c.base.Workers, Batch: shrink(c.base.Batch), Queue: false}
	case "level.l2":
		t = Tuning{Level: 2, Workers: 1, Batch: shrink(c.base.Batch), Queue: false}
	default:
		return fmt.Errorf("server: unknown ladder target %q", resource)
	}
	c.cur.Store(&t)
	c.adm.SetQueueing(t.Queue)
	c.switches.Add(1)
	return nil
}

// shrink is the ladder's batch reduction (4x, floored).
func shrink(batch int) int {
	if batch <= 0 {
		batch = 1024
	}
	if batch >= 256 {
		return batch / 4
	}
	return 64
}

package server

import (
	"fmt"
	"net"
	"time"

	"github.com/adm-project/adm/internal/storage"
)

// RemoteError is a server-reported statement failure, carrying the
// wire error code so clients can distinguish retryable outcomes
// (write conflicts, load shedding) from hard failures.
type RemoteError struct {
	Code byte
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote error (code %d): %s", e.Code, e.Msg)
}

// Retryable reports whether the protocol invites a retry: the
// statement failed cleanly (conflicted transaction rolled back, or
// shed before execution) and may succeed if re-issued.
func (e *RemoteError) Retryable() bool { return RetryableCode(e.Code) }

// ClientResult is one statement's decoded response.
type ClientResult struct {
	Cols     []string
	Rows     []storage.Tuple
	Affected int
}

// Client is a minimal admsqld wire-protocol client. Not safe for
// concurrent use — it is one connection, one statement at a time,
// matching the session semantics on the other end.
type Client struct {
	fc *frameConn
	nc net.Conn
}

// Dial connects, authenticates with token, and returns a live client.
func Dial(addr, token string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{fc: newFrameConn(nc, 10*time.Second), nc: nc}
	if err := c.fc.WriteFrame(frameHello, []byte(token)); err != nil {
		return nil, closeJoin(nc, err)
	}
	if err := c.fc.Flush(); err != nil {
		return nil, closeJoin(nc, err)
	}
	typ, payload, err := c.fc.ReadFrame()
	if err != nil {
		return nil, closeJoin(nc, err)
	}
	if typ == frameError {
		return nil, closeJoin(nc, decodeErr(payload))
	}
	if typ != frameHelloOK {
		return nil, closeJoin(nc, fmt.Errorf("server: unexpected hello reply %q", typ))
	}
	return c, nil
}

func closeJoin(nc net.Conn, err error) error {
	_ = nc.Close() // the dial error is the story; close is best-effort
	return err
}

// Query sends one SQL statement and decodes the full response.
// A *RemoteError means the server is healthy and reported a
// statement-level failure; any other error poisons the connection.
func (c *Client) Query(sql string) (*ClientResult, error) {
	if err := c.fc.WriteFrame(frameQuery, []byte(sql)); err != nil {
		return nil, err
	}
	if err := c.fc.Flush(); err != nil {
		return nil, err
	}
	typ, payload, err := c.fc.ReadFrame()
	if err != nil {
		return nil, err
	}
	if typ == frameError {
		return nil, decodeErr(payload)
	}
	if typ != frameResult {
		return nil, fmt.Errorf("server: unexpected reply frame %q", typ)
	}
	res, want, err := decodeHeader(payload)
	if err != nil {
		return nil, err
	}
	for uint64(len(res.Rows)) < want {
		typ, payload, err := c.fc.ReadFrame()
		if err != nil {
			return nil, err
		}
		if typ != frameRows {
			return nil, fmt.Errorf("server: expected row chunk, got %q", typ)
		}
		if err := decodeRows(res, payload); err != nil {
			return nil, err
		}
	}
	typ, _, err = c.fc.ReadFrame()
	if err != nil {
		return nil, err
	}
	if typ != frameDone {
		return nil, fmt.Errorf("server: expected completion, got %q", typ)
	}
	return res, nil
}

// Close sends goodbye and drops the connection.
func (c *Client) Close() error {
	werr := c.fc.WriteFrame(frameGoodbye, nil)
	if werr == nil {
		werr = c.fc.Flush()
	}
	cerr := c.nc.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func decodeErr(payload []byte) error {
	if len(payload) < 1 {
		return &RemoteError{Code: CodeInternal, Msg: "empty error frame"}
	}
	return &RemoteError{Code: payload[0], Msg: string(payload[1:])}
}

func decodeHeader(b []byte) (*ClientResult, uint64, error) {
	ncols, b, err := readUvarint(b)
	if err != nil || ncols > maxFrame {
		return nil, 0, errTruncated
	}
	res := &ClientResult{Cols: make([]string, 0, ncols)}
	for i := uint64(0); i < ncols; i++ {
		var n uint64
		n, b, err = readUvarint(b)
		if err != nil || uint64(len(b)) < n {
			return nil, 0, errTruncated
		}
		res.Cols = append(res.Cols, string(b[:n]))
		b = b[n:]
	}
	affected, b, err := readUvarint(b)
	if err != nil {
		return nil, 0, errTruncated
	}
	res.Affected = int(affected)
	nrows, _, err := readUvarint(b)
	if err != nil {
		return nil, 0, errTruncated
	}
	return res, nrows, nil
}

func decodeRows(res *ClientResult, b []byte) error {
	n, b, err := readUvarint(b)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		var t storage.Tuple
		t, b, err = readRow(b)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, t)
	}
	return nil
}

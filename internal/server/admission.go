package server

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded reports a statement shed by admission control: the
// in-flight slots are all taken and the queue is full (or queueing is
// disabled by the degradation ladder). Retryable with backoff.
var ErrOverloaded = errors.New("server: overloaded, statement shed")

// Admission is the bounded admission queue in front of statement
// execution: a fixed pool of in-flight slots plus a bounded waiting
// line. A statement that cannot get a slot waits — up to maxWait and
// only while the line is shorter than the queue cap — or is shed with
// ErrOverloaded. The degradation ladder tightens the queue cap to 0
// under overload so excess work is rejected in microseconds instead
// of marinating in a queue it will time out of anyway.
//
// Everything is atomics and one buffered channel; no mutex is held
// across any blocking operation.
type Admission struct {
	slots    chan struct{}
	queueCap atomic.Int64
	baseCap  int64

	queued   atomic.Int64
	inflight atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

// NewAdmission builds an admission gate with maxInflight concurrent
// statements (minimum 1) and maxQueue waiters (0 = shed immediately
// when saturated).
func NewAdmission(maxInflight, maxQueue int) *Admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	a := &Admission{slots: make(chan struct{}, maxInflight), baseCap: int64(maxQueue)}
	a.queueCap.Store(int64(maxQueue))
	return a
}

// Acquire claims an execution slot, waiting up to maxWait in the
// bounded queue. On success the caller must Release.
func (a *Admission) Acquire(maxWait time.Duration) error {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		a.admitted.Add(1)
		return nil
	default:
	}
	// Saturated: join the queue if there is room.
	if q := a.queued.Add(1); q > a.queueCap.Load() {
		a.queued.Add(-1)
		a.shed.Add(1)
		return ErrOverloaded
	}
	t := time.NewTimer(maxWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		a.inflight.Add(1)
		a.admitted.Add(1)
		return nil
	case <-t.C:
		a.queued.Add(-1)
		a.shed.Add(1)
		return ErrOverloaded
	}
}

// Release returns a slot taken by a successful Acquire.
func (a *Admission) Release() {
	a.inflight.Add(-1)
	<-a.slots
}

// SetQueueing toggles the waiting line: false drops the queue cap to
// zero (shed instead of queue), true restores the configured cap.
// In-queue waiters are unaffected — the cap gates entry only.
func (a *Admission) SetQueueing(on bool) {
	if on {
		a.queueCap.Store(a.baseCap)
	} else {
		a.queueCap.Store(0)
	}
}

// Capacity is the configured in-flight slot count.
func (a *Admission) Capacity() int { return cap(a.slots) }

// Queueing reports whether the waiting line is open.
func (a *Admission) Queueing() bool { return a.queueCap.Load() > 0 }

// QueueDepth is the current number of waiters.
func (a *Admission) QueueDepth() int64 { return a.queued.Load() }

// Inflight is the current number of executing statements.
func (a *Admission) Inflight() int64 { return a.inflight.Load() }

// Admitted is the total number of statements admitted.
func (a *Admission) Admitted() int64 { return a.admitted.Load() }

// Shed is the total number of statements rejected with ErrOverloaded.
func (a *Admission) Shed() int64 { return a.shed.Load() }

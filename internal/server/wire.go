// Package server is the network front door: a TCP server speaking a
// length-prefixed wire protocol over internal/session.DBSession, with
// per-statement deadlines and memory quotas threaded into the morsel
// pipelines, a bounded admission queue, and a monitor/constraint-fed
// degradation ladder that sheds load, shrinks batches and drops
// worker counts when the latency SLO slips — the paper's Patia
// flash-crowd adaptation turned on the database itself.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"github.com/adm-project/adm/internal/storage"
)

// Wire protocol. Every frame is:
//
//	uint32 big-endian length  (of type byte + payload)
//	byte   type
//	[]byte payload
//
// Client to server:
//
//	'H' hello    payload = auth token (stub: compared verbatim)
//	'Q' query    payload = one SQL statement
//	'X' goodbye  graceful close
//
// Server to client:
//
//	'h' hello-ok
//	'R' result header  uvarint ncols, ncols x (uvarint len, name),
//	                   uvarint affected, uvarint nrows
//	'D' row chunk      uvarint nrows, rows as (uvarint width, values)
//	'C' complete
//	'E' error          byte code, message text
//
// Results stream in bounded 'D' chunks so a client can consume
// arbitrarily large results without a frame-size blowup — and so the
// fault matrix can kill a connection mid-result.
const (
	frameHello   = 'H'
	frameQuery   = 'Q'
	frameGoodbye = 'X'
	frameHelloOK = 'h'
	frameResult  = 'R'
	frameRows    = 'D'
	frameDone    = 'C'
	frameError   = 'E'
)

// Error codes carried by 'E' frames. Conflict and Overloaded are
// retryable: the statement failed cleanly without side effects (a
// conflicted transaction has been rolled back) and an immediate or
// backed-off retry is the protocol-intended response.
const (
	// CodeInternal is any non-classified execution error.
	CodeInternal byte = 1
	// CodeConflict maps storage.ErrWriteConflict: first-committer-wins
	// lost; the transaction rolled back; retry the transaction.
	CodeConflict byte = 2
	// CodeOverloaded is admission-control load shedding; retry with
	// backoff.
	CodeOverloaded byte = 3
	// CodeDeadline is the per-statement deadline firing.
	CodeDeadline byte = 4
	// CodeQuota is the per-session statement memory budget overflowing.
	CodeQuota byte = 5
	// CodeAuth is a rejected hello token.
	CodeAuth byte = 6
	// CodeBadFrame is a malformed or oversized frame.
	CodeBadFrame byte = 7
)

// RetryableCode reports whether an error code invites a retry.
func RetryableCode(code byte) bool {
	return code == CodeConflict || code == CodeOverloaded
}

// maxFrame caps a single frame; a length prefix beyond it poisons the
// connection (a torn or hostile stream, not a big result — results
// chunk).
const maxFrame = 8 << 20

// rowChunk is the rows-per-'D'-frame granularity.
const rowChunk = 256

// frameConn frames a net.Conn. Reads are buffered; writes are
// buffered and covered by an optional write deadline per flush, so a
// stalled reader (client that stopped draining) fails the write
// instead of wedging the serving goroutine forever.
type frameConn struct {
	c            net.Conn
	r            *bufio.Reader
	w            *bufio.Writer
	writeTimeout time.Duration
	hdr          [5]byte
}

func newFrameConn(c net.Conn, writeTimeout time.Duration) *frameConn {
	return &frameConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c), writeTimeout: writeTimeout}
}

// ReadFrame reads one frame. A stream that ends cleanly between
// frames returns io.EOF; one torn mid-frame returns
// io.ErrUnexpectedEOF.
func (fc *frameConn) ReadFrame() (byte, []byte, error) {
	if _, err := io.ReadFull(fc.r, fc.hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(fc.hdr[:4])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("server: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(fc.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// WriteFrame buffers one frame; call Flush to push a complete
// response. The write deadline is armed here so a response to a
// stalled reader fails once the kernel buffer is full.
func (fc *frameConn) WriteFrame(typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("server: frame too large (%d bytes)", len(payload)+1)
	}
	if fc.writeTimeout > 0 {
		if err := fc.c.SetWriteDeadline(time.Now().Add(fc.writeTimeout)); err != nil {
			return err
		}
	}
	binary.BigEndian.PutUint32(fc.hdr[:4], uint32(len(payload)+1))
	fc.hdr[4] = typ
	if _, err := fc.w.Write(fc.hdr[:5]); err != nil {
		return err
	}
	_, err := fc.w.Write(payload)
	return err
}

// Flush pushes buffered frames to the socket.
func (fc *frameConn) Flush() error {
	if fc.writeTimeout > 0 {
		if err := fc.c.SetWriteDeadline(time.Now().Add(fc.writeTimeout)); err != nil {
			return err
		}
	}
	return fc.w.Flush()
}

// ---------------------------------------------------------------------------
// Value and row codec.

// Value wire kinds (one byte each).
const (
	wireNull   = 0
	wireInt    = 1
	wireFloat  = 2
	wireString = 3
	wireBool   = 4
)

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendValue(buf []byte, v storage.Value) []byte {
	switch v.Kind {
	case storage.KindInt:
		buf = append(buf, wireInt)
		return binary.AppendVarint(buf, v.Int)
	case storage.KindFloat:
		buf = append(buf, wireFloat)
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(v.Float))
	case storage.KindString:
		buf = append(buf, wireString)
		buf = appendUvarint(buf, uint64(len(v.Str)))
		return append(buf, v.Str...)
	case storage.KindBool:
		b := byte(0)
		if v.Bool {
			b = 1
		}
		return append(buf, wireBool, b)
	default:
		return append(buf, wireNull)
	}
}

// appendRow encodes one tuple: uvarint width, then values.
func appendRow(buf []byte, t storage.Tuple) []byte {
	buf = appendUvarint(buf, uint64(len(t)))
	for _, v := range t {
		buf = appendValue(buf, v)
	}
	return buf
}

var errTruncated = fmt.Errorf("server: truncated frame payload")

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errTruncated
	}
	return v, b[n:], nil
}

func readValue(b []byte) (storage.Value, []byte, error) {
	if len(b) < 1 {
		return storage.Value{}, nil, errTruncated
	}
	kind, b := b[0], b[1:]
	switch kind {
	case wireNull:
		return storage.NullValue(), b, nil
	case wireInt:
		v, n := binary.Varint(b)
		if n <= 0 {
			return storage.Value{}, nil, errTruncated
		}
		return storage.IntValue(v), b[n:], nil
	case wireFloat:
		if len(b) < 8 {
			return storage.Value{}, nil, errTruncated
		}
		return storage.FloatValue(math.Float64frombits(binary.BigEndian.Uint64(b))), b[8:], nil
	case wireString:
		n, rest, err := readUvarint(b)
		if err != nil || uint64(len(rest)) < n {
			return storage.Value{}, nil, errTruncated
		}
		return storage.StringValue(string(rest[:n])), rest[n:], nil
	case wireBool:
		if len(b) < 1 {
			return storage.Value{}, nil, errTruncated
		}
		return storage.BoolValue(b[0] != 0), b[1:], nil
	default:
		return storage.Value{}, nil, fmt.Errorf("server: unknown wire value kind %d", kind)
	}
}

func readRow(b []byte) (storage.Tuple, []byte, error) {
	w, b, err := readUvarint(b)
	if err != nil || w > maxFrame {
		return nil, nil, errTruncated
	}
	t := make(storage.Tuple, 0, w)
	for i := uint64(0); i < w; i++ {
		var v storage.Value
		v, b, err = readValue(b)
		if err != nil {
			return nil, nil, err
		}
		t = append(t, v)
	}
	return t, b, nil
}

package server

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/adm-project/adm/internal/fault"
	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
)

// faultSeed returns the deterministic seed for the fault matrix,
// overridable with ADM_FAULT_SEED (the CI matrix loops over seeds).
func faultSeed(t *testing.T) uint64 {
	t.Helper()
	if s := os.Getenv("ADM_FAULT_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			t.Fatalf("ADM_FAULT_SEED: %v", err)
		}
		return v
	}
	return 1
}

// rawClient speaks the wire protocol with direct frame control so
// tests can tear connections at arbitrary points.
type rawClient struct {
	nc net.Conn
	fc *frameConn
}

func dialRawT(t *testing.T, srv *Server) *rawClient {
	t.Helper()
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	rc := &rawClient{nc: nc, fc: newFrameConn(nc, 5*time.Second)}
	rc.send(t, frameHello, nil)
	typ, _, err := rc.fc.ReadFrame()
	if err != nil || typ != frameHelloOK {
		t.Fatalf("handshake: frame %q err %v", typ, err)
	}
	return rc
}

func (rc *rawClient) send(t *testing.T, typ byte, payload []byte) {
	t.Helper()
	if err := rc.fc.WriteFrame(typ, payload); err != nil {
		t.Fatalf("write frame: %v", err)
	}
	if err := rc.fc.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

// query sends a statement and fully drains the response, returning
// the terminal frame type ('C' or 'E').
func (rc *rawClient) query(t *testing.T, sql string) byte {
	t.Helper()
	rc.send(t, frameQuery, []byte(sql))
	for {
		typ, _, err := rc.fc.ReadFrame()
		if err != nil {
			t.Fatalf("read response: %v", err)
		}
		if typ == frameDone || typ == frameError {
			return typ
		}
	}
}

// waitDrained polls until the server has torn down every fault
// scenario: zero live transactions and the pooled-batch ledger back
// at its baseline.
func waitDrained(t *testing.T, db *storage.DB, batchBase int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		txns := db.Txns().Active()
		batches := operators.OutstandingBatches()
		if txns == 0 && batches <= batchBase {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak: %d active txns, %d outstanding batches (baseline %d)",
				txns, batches, batchBase)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitConnsGone polls until the server has torn down every tracked
// connection — proof no serving goroutine is wedged on a dead client.
func waitConnsGone(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv.mu.Lock()
		n := len(srv.conns)
		srv.mu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d connections still tracked; a serving goroutine is wedged", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConnectionFaultMatrix is the crash/disconnect matrix: torn
// frames, mid-result disconnects, stalled readers hitting the write
// deadline, abrupt death inside an explicit transaction, and client
// death mid-group-commit — all asserting the server leaks no
// transactions, no pooled batches, and no goroutines.
func TestConnectionFaultMatrix(t *testing.T) {
	srv, db := newServerFixture(t, Config{
		StatementTimeout: 5 * time.Second,
		WriteTimeout:     250 * time.Millisecond,
		MemQuota:         256 << 20, // the stalled-reader join materialises ~36MB
	})
	rng := fault.NewRand(faultSeed(t))

	// Warm up (pools, lazy init) before taking leak baselines.
	warm := dialT(t, srv, "")
	if _, err := warm.Query("SELECT p FROM j"); err != nil {
		t.Fatal(err)
	}
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, db, 1<<62)
	batchBase := operators.OutstandingBatches()
	goroBase := runtime.NumGoroutine()

	t.Run("TornFrame", func(t *testing.T) {
		for i := 0; i < 8; i++ {
			rc := dialRawT(t, srv)
			// A frame header promising more than we deliver, cut at a
			// seed-chosen point inside the payload.
			sql := []byte("SELECT k FROM kv")
			var hdr [5]byte
			binary.BigEndian.PutUint32(hdr[:4], uint32(len(sql)+1))
			hdr[4] = frameQuery
			cut := int(rng.Uint64() % uint64(len(sql)))
			if _, err := rc.nc.Write(append(hdr[:], sql[:cut]...)); err != nil {
				t.Fatal(err)
			}
			if err := rc.nc.Close(); err != nil {
				t.Fatal(err)
			}
		}
		// A hostile length prefix must poison the connection, not
		// allocate 4GB.
		rc := dialRawT(t, srv)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 1<<31)
		if _, err := rc.nc.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		if err := rc.nc.Close(); err != nil {
			t.Fatal(err)
		}
		waitConnsGone(t, srv)
		waitDrained(t, db, batchBase)
	})

	t.Run("MidResultDisconnect", func(t *testing.T) {
		for i := 0; i < 8; i++ {
			rc := dialRawT(t, srv)
			rc.send(t, frameQuery, []byte("SELECT p FROM j"))
			// Read a seed-chosen number of response frames (the 400-row
			// result spans header + 2 chunks + done), then vanish.
			drain := int(rng.Uint64() % 3)
			for j := 0; j < drain; j++ {
				if _, _, err := rc.fc.ReadFrame(); err != nil {
					t.Fatalf("drain frame %d: %v", j, err)
				}
			}
			if err := rc.nc.Close(); err != nil {
				t.Fatal(err)
			}
		}
		waitConnsGone(t, srv)
		waitDrained(t, db, batchBase)
	})

	t.Run("StalledReader", func(t *testing.T) {
		nc, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		// Shrink the receive window so the ~3.5MB join result cannot
		// fit in kernel buffers: the server's flush must stall and its
		// write deadline must fire, freeing the serving goroutine.
		if err := nc.(*net.TCPConn).SetReadBuffer(2048); err != nil {
			t.Fatal(err)
		}
		rc := &rawClient{nc: nc, fc: newFrameConn(nc, 5*time.Second)}
		rc.send(t, frameHello, nil)
		if typ, _, err := rc.fc.ReadFrame(); err != nil || typ != frameHelloOK {
			t.Fatalf("handshake: frame %q err %v", typ, err)
		}
		rc.send(t, frameQuery, []byte("SELECT a.p, b.p FROM j a JOIN j b ON a.g = b.g"))
		// Do not read. The server must give up on its own — the write
		// deadline fires once kernel buffers fill — rather than wedge
		// the serving goroutine forever.
		waitConnsGone(t, srv)
		waitDrained(t, db, batchBase)
	})

	t.Run("DeathInTxn", func(t *testing.T) {
		for i := 0; i < 4; i++ {
			rc := dialRawT(t, srv)
			if typ := rc.query(t, "BEGIN"); typ != frameDone {
				t.Fatalf("BEGIN -> %q", typ)
			}
			if typ := rc.query(t, fmt.Sprintf("INSERT INTO kv VALUES (%d, 'doomed')", 9000+i)); typ != frameDone {
				t.Fatalf("INSERT -> %q", typ)
			}
			if err := rc.nc.Close(); err != nil {
				t.Fatal(err)
			}
		}
		waitConnsGone(t, srv)
		waitDrained(t, db, batchBase)
		// Teardown rolled the transactions back: nothing leaked into
		// the visible state.
		c := dialT(t, srv, "")
		defer c.Close()
		res, err := c.Query("SELECT k FROM kv WHERE k >= 9000")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("%d doomed rows survived client death", len(res.Rows))
		}
	})

	t.Run("DeathMidGroupCommit", func(t *testing.T) {
		// Concurrent committers; the seed picks which ones die right
		// after sending COMMIT without reading the response — their
		// serving goroutines may be inside the group-commit protocol
		// (even as leader) when the client vanishes.
		const n = 8
		deserters := rng.Uint64()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rc := dialRawT(t, srv)
				if typ := rc.query(t, "BEGIN"); typ != frameDone {
					t.Errorf("BEGIN -> %q", typ)
					return
				}
				sql := fmt.Sprintf("INSERT INTO kv VALUES (%d, 'group')", 9500+i)
				if typ := rc.query(t, sql); typ != frameDone {
					t.Errorf("INSERT -> %q", typ)
					return
				}
				if deserters&(1<<i) != 0 {
					rc.send(t, frameQuery, []byte("COMMIT"))
					_ = rc.nc.Close() // die without reading the commit reply
					return
				}
				if typ := rc.query(t, "COMMIT"); typ != frameDone {
					t.Errorf("COMMIT -> %q", typ)
				}
				_ = rc.nc.Close()
			}(i)
		}
		wg.Wait()
		waitConnsGone(t, srv)
		waitDrained(t, db, batchBase)
		// Every COMMIT that reached the server must have committed —
		// client death after submission does not un-commit a leader's
		// group — and every survivor saw it acknowledged.
		c := dialT(t, srv, "")
		defer c.Close()
		res, err := c.Query("SELECT k FROM kv WHERE k >= 9500")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != n {
			t.Fatalf("%d of %d group-commit rows visible", len(res.Rows), n)
		}
	})

	// No serving goroutines may outlive their connections.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroBase {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), goroBase)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Package component implements the paper's fine-grained runtime
// component model: "components are concrete entities consisting of
// implementation and interfaces. The boundaries between components are
// concrete and are present in a running system" (§1.1).
//
// A Component exposes provided ports (Darwin's filled circles) and
// required ports (empty circles); an Assembly holds the running
// configuration — components plus bindings — and routes every
// inter-component call through an explicit binding, so configurations
// can be rebound at run time by the adaptivity manager without the
// callers noticing anything but a (bounded) quiesce window.
package component

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/adm-project/adm/internal/trace"
)

// Service is a service type name. A binding is valid only between a
// required and a provided port of the same Service.
type Service string

// Port declares one service endpoint on a component.
type Port struct {
	Name    string
	Service Service
}

func (p Port) String() string { return p.Name + ":" + string(p.Service) }

// Request is one inter-component invocation payload.
type Request struct {
	Op      string
	Args    map[string]any
	Payload any
}

// Handler implements a provided port.
type Handler func(req Request) (any, error)

// State is a component lifecycle state.
type State int

// Lifecycle states.
const (
	// Loaded: constructed, not yet started.
	Loaded State = iota
	// Started: accepting calls.
	Started
	// Quiesced: at a safe point, rejecting calls (reconfiguration
	// window). "The switch can be backed off if something goes
	// wrong" — quiesce is the reversible first phase.
	Quiesced
	// Stopped: terminal.
	Stopped
)

func (s State) String() string {
	return [...]string{"loaded", "started", "quiesced", "stopped"}[s]
}

// Stateful is implemented by components whose execution state must
// survive migration or replacement; the State Manager calls these.
type Stateful interface {
	// CaptureState serialises execution state at a safe point.
	CaptureState() ([]byte, error)
	// RestoreState reinstates previously captured state.
	RestoreState([]byte) error
}

// Lifecycle carries optional user hooks run on state transitions.
type Lifecycle struct {
	OnStart   func() error
	OnQuiesce func() error
	OnResume  func() error
	OnStop    func() error
}

// Component is one fine-grained unit: implementation (handlers) plus
// concrete interfaces (ports). Per Figure 3, a component also carries
// "the architectural description of itself and a copy of the
// switching rules relevant to it"; those live in Meta.
type Component struct {
	name     string
	mu       sync.Mutex
	state    State
	provides map[string]struct {
		service Service
		handler Handler
	}
	requires map[string]Service
	hooks    Lifecycle
	stateful Stateful

	// Meta holds the self-description the paper requires each
	// component to carry: free-form key/value (ADL fragment name,
	// switching-rule ids, version info).
	Meta map[string]string

	calls uint64
}

// New constructs a component in the Loaded state.
func New(name string) *Component {
	return &Component{
		name: name,
		provides: make(map[string]struct {
			service Service
			handler Handler
		}),
		requires: make(map[string]Service),
		Meta:     make(map[string]string),
	}
}

// Name returns the component's unique name.
func (c *Component) Name() string { return c.name }

// Provide declares a provided port backed by handler.
func (c *Component) Provide(port string, svc Service, h Handler) *Component {
	c.provides[port] = struct {
		service Service
		handler Handler
	}{svc, h}
	return c
}

// Require declares a required port of the given service type.
func (c *Component) Require(port string, svc Service) *Component {
	c.requires[port] = svc
	return c
}

// WithLifecycle installs lifecycle hooks.
func (c *Component) WithLifecycle(h Lifecycle) *Component {
	c.hooks = h
	return c
}

// WithStateful marks the component as carrying migratable state.
func (c *Component) WithStateful(s Stateful) *Component {
	c.stateful = s
	return c
}

// Stateful returns the component's state-capture interface, if any.
func (c *Component) StatefulPart() (Stateful, bool) {
	return c.stateful, c.stateful != nil
}

// State returns the current lifecycle state.
func (c *Component) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Calls returns the number of invocations served (grain-overhead
// accounting for the ablation benches).
func (c *Component) Calls() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// Provides lists provided ports, sorted by name.
func (c *Component) Provides() []Port {
	out := make([]Port, 0, len(c.provides))
	for n, p := range c.provides {
		out = append(out, Port{Name: n, Service: p.service})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Requires lists required ports, sorted by name.
func (c *Component) Requires() []Port {
	out := make([]Port, 0, len(c.requires))
	for n, s := range c.requires {
		out = append(out, Port{Name: n, Service: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Errors returned by lifecycle and call paths.
var (
	ErrNotStarted    = errors.New("component: not started")
	ErrQuiesced      = errors.New("component: quiesced")
	ErrStopped       = errors.New("component: stopped")
	ErrBadTransition = errors.New("component: invalid lifecycle transition")
	ErrUnknownPort   = errors.New("component: unknown port")
	ErrUnbound       = errors.New("component: port not bound")
	ErrTypeMismatch  = errors.New("component: service type mismatch")
	ErrDuplicate     = errors.New("component: duplicate name")
	ErrUnknown       = errors.New("component: unknown component")
	ErrNotStateful   = errors.New("component: component has no migratable state")
)

// Start transitions Loaded→Started (or Quiesced→Started via Resume).
func (c *Component) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != Loaded {
		return fmt.Errorf("%w: start from %s", ErrBadTransition, c.state)
	}
	if c.hooks.OnStart != nil {
		if err := c.hooks.OnStart(); err != nil {
			return err
		}
	}
	c.state = Started
	return nil
}

// Quiesce brings a started component to its safe point and blocks
// further calls.
func (c *Component) Quiesce() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != Started {
		return fmt.Errorf("%w: quiesce from %s", ErrBadTransition, c.state)
	}
	if c.hooks.OnQuiesce != nil {
		if err := c.hooks.OnQuiesce(); err != nil {
			return err
		}
	}
	c.state = Quiesced
	return nil
}

// Resume reopens a quiesced component.
func (c *Component) Resume() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != Quiesced {
		return fmt.Errorf("%w: resume from %s", ErrBadTransition, c.state)
	}
	if c.hooks.OnResume != nil {
		if err := c.hooks.OnResume(); err != nil {
			return err
		}
	}
	c.state = Started
	return nil
}

// Stop terminates the component from any non-stopped state.
func (c *Component) Stop() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == Stopped {
		return fmt.Errorf("%w: already stopped", ErrBadTransition)
	}
	if c.hooks.OnStop != nil {
		if err := c.hooks.OnStop(); err != nil {
			return err
		}
	}
	c.state = Stopped
	return nil
}

// serve runs a provided port's handler if the component is accepting
// calls.
func (c *Component) serve(port string, req Request) (any, error) {
	c.mu.Lock()
	switch c.state {
	case Loaded:
		c.mu.Unlock()
		return nil, fmt.Errorf("%s: %w", c.name, ErrNotStarted)
	case Quiesced:
		c.mu.Unlock()
		return nil, fmt.Errorf("%s: %w", c.name, ErrQuiesced)
	case Stopped:
		c.mu.Unlock()
		return nil, fmt.Errorf("%s: %w", c.name, ErrStopped)
	}
	p, ok := c.provides[port]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%s.%s: %w", c.name, port, ErrUnknownPort)
	}
	c.calls++
	c.mu.Unlock()
	return p.handler(req)
}

// ---------------------------------------------------------------------------
// Assembly: the running configuration.

type bindKey struct{ comp, port string }

type bindVal struct{ comp, port string }

// Binding describes one live wire in the configuration.
type Binding struct {
	FromComp, FromPort string // requirer
	ToComp, ToPort     string // provider
}

func (b Binding) String() string {
	return fmt.Sprintf("%s.%s -> %s.%s", b.FromComp, b.FromPort, b.ToComp, b.ToPort)
}

// Assembly is a set of components plus the bindings wiring their
// ports. All mutation is serialised; Call is safe for concurrent use.
type Assembly struct {
	mu         sync.RWMutex
	components map[string]*Component
	bindings   map[bindKey]bindVal
	log        *trace.Log
	clock      func() float64
	callHops   uint64
}

// NewAssembly returns an empty assembly. log and clock may be nil.
func NewAssembly(log *trace.Log, clock func() float64) *Assembly {
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	if log == nil {
		log = trace.New()
	}
	return &Assembly{
		components: make(map[string]*Component),
		bindings:   make(map[bindKey]bindVal),
		log:        log,
		clock:      clock,
	}
}

// Log exposes the assembly's trace log.
func (a *Assembly) Log() *trace.Log { return a.log }

// Add registers a component.
func (a *Assembly) Add(c *Component) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.components[c.name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicate, c.name)
	}
	a.components[c.name] = c
	return nil
}

// Remove unregisters a stopped component and drops its bindings.
func (a *Assembly) Remove(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.components[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	delete(a.components, name)
	for k, v := range a.bindings {
		if k.comp == name || v.comp == name {
			delete(a.bindings, k)
		}
	}
	return nil
}

// Component looks up a component by name.
func (a *Assembly) Component(name string) (*Component, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	c, ok := a.components[name]
	return c, ok
}

// Components returns all component names, sorted.
func (a *Assembly) Components() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.components))
	for n := range a.components {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Bind wires fromComp.fromPort (required) to toComp.toPort (provided),
// checking service-type compatibility — Darwin's typed binding rule.
func (a *Assembly) Bind(fromComp, fromPort, toComp, toPort string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	from, ok := a.components[fromComp]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, fromComp)
	}
	to, ok := a.components[toComp]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, toComp)
	}
	reqSvc, ok := from.requires[fromPort]
	if !ok {
		return fmt.Errorf("%s.%s: %w (required)", fromComp, fromPort, ErrUnknownPort)
	}
	prov, ok := to.provides[toPort]
	if !ok {
		return fmt.Errorf("%s.%s: %w (provided)", toComp, toPort, ErrUnknownPort)
	}
	if reqSvc != prov.service {
		return fmt.Errorf("%w: %s.%s wants %q, %s.%s provides %q",
			ErrTypeMismatch, fromComp, fromPort, reqSvc, toComp, toPort, prov.service)
	}
	a.bindings[bindKey{fromComp, fromPort}] = bindVal{toComp, toPort}
	a.log.Emit(a.clock(), trace.KindBind, "assembly", "%s.%s -> %s.%s", fromComp, fromPort, toComp, toPort)
	return nil
}

// Unbind removes the wire on fromComp.fromPort.
func (a *Assembly) Unbind(fromComp, fromPort string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	k := bindKey{fromComp, fromPort}
	if _, ok := a.bindings[k]; !ok {
		return fmt.Errorf("%s.%s: %w", fromComp, fromPort, ErrUnbound)
	}
	delete(a.bindings, k)
	a.log.Emit(a.clock(), trace.KindUnbind, "assembly", "%s.%s", fromComp, fromPort)
	return nil
}

// BoundTo reports the provider currently wired to fromComp.fromPort.
func (a *Assembly) BoundTo(fromComp, fromPort string) (Binding, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	v, ok := a.bindings[bindKey{fromComp, fromPort}]
	if !ok {
		return Binding{}, false
	}
	return Binding{FromComp: fromComp, FromPort: fromPort, ToComp: v.comp, ToPort: v.port}, true
}

// Bindings returns all live bindings, sorted for determinism.
func (a *Assembly) Bindings() []Binding {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]Binding, 0, len(a.bindings))
	for k, v := range a.bindings {
		out = append(out, Binding{FromComp: k.comp, FromPort: k.port, ToComp: v.comp, ToPort: v.port})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Call invokes the provider bound to caller.port with req. Every call
// crosses exactly one concrete boundary; CallHops counts them so the
// grain ablation can price componentisation overhead.
func (a *Assembly) Call(caller, port string, req Request) (any, error) {
	a.mu.RLock()
	v, ok := a.bindings[bindKey{caller, port}]
	if !ok {
		a.mu.RUnlock()
		return nil, fmt.Errorf("%s.%s: %w", caller, port, ErrUnbound)
	}
	target := a.components[v.comp]
	a.mu.RUnlock()
	if target == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, v.comp)
	}
	a.mu.Lock()
	a.callHops++
	a.mu.Unlock()
	return target.serve(v.port, req)
}

// CallHops returns the total inter-component boundary crossings.
func (a *Assembly) CallHops() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.callHops
}

// StartAll starts every loaded component (deterministic order).
func (a *Assembly) StartAll() error {
	for _, name := range a.Components() {
		c, _ := a.Component(name)
		if c.State() == Loaded {
			if err := c.Start(); err != nil {
				return fmt.Errorf("starting %s: %w", name, err)
			}
		}
	}
	return nil
}

// Validate checks the configuration is complete: every required port
// of every non-stopped component is bound to a live provider of the
// right type. This is the runtime analogue of ADL validation.
func (a *Assembly) Validate() []error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var errs []error
	for name, c := range a.components {
		if c.State() == Stopped {
			continue
		}
		for port, svc := range c.requires {
			v, ok := a.bindings[bindKey{name, port}]
			if !ok {
				errs = append(errs, fmt.Errorf("%s.%s (%s): %w", name, port, svc, ErrUnbound))
				continue
			}
			to, ok := a.components[v.comp]
			if !ok {
				errs = append(errs, fmt.Errorf("%s.%s: bound to missing %q", name, port, v.comp))
				continue
			}
			if p, ok := to.provides[v.port]; !ok || p.service != svc {
				errs = append(errs, fmt.Errorf("%s.%s: %w", name, port, ErrTypeMismatch))
			}
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errs
}

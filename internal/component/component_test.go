package component

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/adm-project/adm/internal/trace"
)

const svcEcho Service = "echo"

func echoComp(name string) *Component {
	return New(name).Provide("in", svcEcho, func(req Request) (any, error) {
		return req.Payload, nil
	})
}

func callerComp(name string) *Component {
	return New(name).Require("out", svcEcho)
}

func wired(t *testing.T) (*Assembly, *Component, *Component) {
	t.Helper()
	a := NewAssembly(trace.New(), nil)
	cl, sv := callerComp("client"), echoComp("server")
	for _, c := range []*Component{cl, sv} {
		if err := a.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Bind("client", "out", "server", "in"); err != nil {
		t.Fatal(err)
	}
	if err := a.StartAll(); err != nil {
		t.Fatal(err)
	}
	return a, cl, sv
}

func TestCallThroughBinding(t *testing.T) {
	a, _, sv := wired(t)
	got, err := a.Call("client", "out", Request{Op: "echo", Payload: 42})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %v", got)
	}
	if sv.Calls() != 1 || a.CallHops() != 1 {
		t.Fatalf("calls=%d hops=%d", sv.Calls(), a.CallHops())
	}
}

func TestCallUnbound(t *testing.T) {
	a := NewAssembly(nil, nil)
	_ = a.Add(callerComp("client"))
	_, err := a.Call("client", "out", Request{})
	if !errors.Is(err, ErrUnbound) {
		t.Fatalf("want ErrUnbound, got %v", err)
	}
}

func TestBindTypeMismatch(t *testing.T) {
	a := NewAssembly(nil, nil)
	_ = a.Add(New("c").Require("out", "alpha"))
	_ = a.Add(New("s").Provide("in", "beta", func(Request) (any, error) { return nil, nil }))
	if err := a.Bind("c", "out", "s", "in"); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("want ErrTypeMismatch, got %v", err)
	}
}

func TestBindUnknownPortsAndComponents(t *testing.T) {
	a := NewAssembly(nil, nil)
	_ = a.Add(callerComp("c"))
	_ = a.Add(echoComp("s"))
	cases := []struct {
		fc, fp, tc, tp string
		want           error
	}{
		{"zz", "out", "s", "in", ErrUnknown},
		{"c", "out", "zz", "in", ErrUnknown},
		{"c", "nope", "s", "in", ErrUnknownPort},
		{"c", "out", "s", "nope", ErrUnknownPort},
	}
	for _, cse := range cases {
		if err := a.Bind(cse.fc, cse.fp, cse.tc, cse.tp); !errors.Is(err, cse.want) {
			t.Errorf("Bind(%s.%s->%s.%s) = %v, want %v", cse.fc, cse.fp, cse.tc, cse.tp, err, cse.want)
		}
	}
}

func TestLifecycleTransitions(t *testing.T) {
	c := echoComp("x")
	if c.State() != Loaded {
		t.Fatal("initial state")
	}
	if err := c.Quiesce(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("quiesce from loaded: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); !errors.Is(err, ErrBadTransition) {
		t.Fatal("double start must fail")
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := c.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := c.Resume(); !errors.Is(err, ErrBadTransition) {
		t.Fatal("resume from started must fail")
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); !errors.Is(err, ErrBadTransition) {
		t.Fatal("double stop must fail")
	}
}

func TestCallRejectedOutsideStarted(t *testing.T) {
	a, _, sv := wired(t)
	if err := sv.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call("client", "out", Request{}); !errors.Is(err, ErrQuiesced) {
		t.Fatalf("quiesced call: %v", err)
	}
	_ = sv.Resume()
	if _, err := a.Call("client", "out", Request{}); err != nil {
		t.Fatalf("resumed call: %v", err)
	}
	_ = sv.Stop()
	if _, err := a.Call("client", "out", Request{}); !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped call: %v", err)
	}
}

func TestCallNotStarted(t *testing.T) {
	a := NewAssembly(nil, nil)
	_ = a.Add(callerComp("client"))
	_ = a.Add(echoComp("server"))
	_ = a.Bind("client", "out", "server", "in")
	if _, err := a.Call("client", "out", Request{}); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("want ErrNotStarted, got %v", err)
	}
}

func TestLifecycleHooksRunAndCanVeto(t *testing.T) {
	var order []string
	c := New("h").WithLifecycle(Lifecycle{
		OnStart:   func() error { order = append(order, "start"); return nil },
		OnQuiesce: func() error { order = append(order, "quiesce"); return nil },
		OnResume:  func() error { order = append(order, "resume"); return nil },
		OnStop:    func() error { order = append(order, "stop"); return nil },
	})
	_ = c.Start()
	_ = c.Quiesce()
	_ = c.Resume()
	_ = c.Stop()
	want := []string{"start", "quiesce", "resume", "stop"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v", order)
	}
	veto := errors.New("not safe yet")
	c2 := New("v").WithLifecycle(Lifecycle{OnQuiesce: func() error { return veto }})
	_ = c2.Start()
	if err := c2.Quiesce(); !errors.Is(err, veto) {
		t.Fatalf("veto: %v", err)
	}
	if c2.State() != Started {
		t.Fatal("vetoed quiesce must not change state")
	}
}

func TestRebindRedirectsTraffic(t *testing.T) {
	a, _, _ := wired(t)
	alt := New("server2").Provide("in", svcEcho, func(req Request) (any, error) {
		return "alt", nil
	})
	_ = a.Add(alt)
	_ = alt.Start()
	if err := a.Unbind("client", "out"); err != nil {
		t.Fatal(err)
	}
	if err := a.Bind("client", "out", "server2", "in"); err != nil {
		t.Fatal(err)
	}
	got, err := a.Call("client", "out", Request{Payload: "x"})
	if err != nil || got != "alt" {
		t.Fatalf("got %v %v", got, err)
	}
}

func TestUnbindUnknown(t *testing.T) {
	a, _, _ := wired(t)
	if err := a.Unbind("client", "nope"); !errors.Is(err, ErrUnbound) {
		t.Fatalf("got %v", err)
	}
}

func TestRemoveDropsBindings(t *testing.T) {
	a, _, _ := wired(t)
	if err := a.Remove("server"); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.BoundTo("client", "out"); ok {
		t.Fatal("binding survived provider removal")
	}
	if err := a.Remove("server"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("got %v", err)
	}
}

func TestDuplicateAdd(t *testing.T) {
	a := NewAssembly(nil, nil)
	_ = a.Add(echoComp("x"))
	if err := a.Add(echoComp("x")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("got %v", err)
	}
}

func TestValidateFindsDangling(t *testing.T) {
	a := NewAssembly(nil, nil)
	_ = a.Add(callerComp("c"))
	errs := a.Validate()
	if len(errs) != 1 || !errors.Is(errs[0], ErrUnbound) {
		t.Fatalf("errs = %v", errs)
	}
	_ = a.Add(echoComp("s"))
	_ = a.Bind("c", "out", "s", "in")
	if errs := a.Validate(); len(errs) != 0 {
		t.Fatalf("wired config invalid: %v", errs)
	}
}

func TestValidateIgnoresStopped(t *testing.T) {
	a := NewAssembly(nil, nil)
	c := callerComp("c")
	_ = a.Add(c)
	_ = c.Start()
	_ = c.Stop()
	if errs := a.Validate(); len(errs) != 0 {
		t.Fatalf("stopped component should not need bindings: %v", errs)
	}
}

func TestPortsSorted(t *testing.T) {
	c := New("multi").
		Provide("zeta", "s1", func(Request) (any, error) { return nil, nil }).
		Provide("alpha", "s2", func(Request) (any, error) { return nil, nil }).
		Require("beta", "s3").Require("aaa", "s4")
	p := c.Provides()
	if p[0].Name != "alpha" || p[1].Name != "zeta" {
		t.Fatalf("provides = %v", p)
	}
	r := c.Requires()
	if r[0].Name != "aaa" || r[1].Name != "beta" {
		t.Fatalf("requires = %v", r)
	}
	if p[0].String() != "alpha:s2" {
		t.Fatalf("port string = %q", p[0].String())
	}
}

func TestBindEmitsTraceEvents(t *testing.T) {
	log := trace.New()
	a := NewAssembly(log, func() float64 { return 7 })
	_ = a.Add(callerComp("c"))
	_ = a.Add(echoComp("s"))
	_ = a.Bind("c", "out", "s", "in")
	_ = a.Unbind("c", "out")
	if log.Count(trace.KindBind) != 1 || log.Count(trace.KindUnbind) != 1 {
		t.Fatalf("trace = %s", log.Summary())
	}
	ev := log.OfKind(trace.KindBind)[0]
	if ev.TimeMS != 7 {
		t.Fatalf("event time = %v", ev.TimeMS)
	}
}

type memState struct {
	mu  sync.Mutex
	val []byte
}

func (m *memState) CaptureState() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.val...), nil
}

func (m *memState) RestoreState(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.val = append([]byte(nil), b...)
	return nil
}

func TestStatefulCaptureRestore(t *testing.T) {
	ms := &memState{val: []byte("position=17")}
	c := New("op").WithStateful(ms)
	sf, ok := c.StatefulPart()
	if !ok {
		t.Fatal("stateful not exposed")
	}
	snap, err := sf.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	ms.val = []byte("position=99")
	if err := sf.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if string(ms.val) != "position=17" {
		t.Fatalf("restored = %q", ms.val)
	}
	if _, ok := New("plain").StatefulPart(); ok {
		t.Fatal("plain component claims state")
	}
}

func TestConcurrentCalls(t *testing.T) {
	a, _, sv := wired(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := a.Call("client", "out", Request{Payload: j}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if sv.Calls() != 1600 || a.CallHops() != 1600 {
		t.Fatalf("calls=%d hops=%d", sv.Calls(), a.CallHops())
	}
}

// Property: for any chain length n, a call relayed through n
// forwarding components crosses exactly n+1 boundaries and preserves
// the payload — componentisation changes cost, never semantics.
func TestChainRelayProperty(t *testing.T) {
	f := func(nRaw uint8, payload int64) bool {
		n := int(nRaw%8) + 1
		a := NewAssembly(nil, nil)
		// terminal echo
		_ = a.Add(echoComp("t"))
		// forwarders f0..f(n-1), each requiring the next hop
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("f%d", i)
			c := New(name).Require("next", svcEcho)
			c.Provide("in", svcEcho, func(req Request) (any, error) {
				return a.Call(name, "next", req)
			})
			_ = a.Add(c)
		}
		for i := 0; i < n-1; i++ {
			if err := a.Bind(fmt.Sprintf("f%d", i), "next", fmt.Sprintf("f%d", i+1), "in"); err != nil {
				return false
			}
		}
		if err := a.Bind(fmt.Sprintf("f%d", n-1), "next", "t", "in"); err != nil {
			return false
		}
		// driver
		d := New("driver").Require("out", svcEcho)
		_ = a.Add(d)
		_ = a.Bind("driver", "out", "f0", "in")
		if err := a.StartAll(); err != nil {
			return false
		}
		got, err := a.Call("driver", "out", Request{Payload: payload})
		if err != nil || got != payload {
			return false
		}
		return a.CallHops() == uint64(n+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/component"
	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/trace"
)

func figure4System(t *testing.T, rules []RuleSpec) *System {
	t.Helper()
	sys, err := New(Config{
		Name:        "test",
		ADL:         adl.Figure4,
		InitialMode: "docked",
		Rules:       rules,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{ADL: "component A {"}); err == nil {
		t.Fatal("bad ADL accepted")
	}
	if _, err := New(Config{ADL: `
component A { require x : s; }
inst a : A;
`}); err == nil || !strings.Contains(err.Error(), "invalid architecture") {
		t.Fatalf("invalid model accepted: %v", err)
	}
	if _, err := New(Config{ADL: adl.Figure4, InitialMode: "docked", Rules: []RuleSpec{
		{ID: 1, Source: "NOT A RULE"},
	}}); err == nil {
		t.Fatal("bad rule accepted")
	}
	if _, err := New(Config{ADL: adl.Figure4, InitialMode: "flying"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestLifecycleGuards(t *testing.T) {
	sys := figure4System(t, nil)
	if _, err := sys.Call("qm", "pages", component.Request{}); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("call before start: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); !errors.Is(err, ErrStarted) {
		t.Fatalf("double start: %v", err)
	}
	if _, err := sys.Call("qm", "pages", component.Request{Payload: 1}); err != nil {
		t.Fatalf("call after start: %v", err)
	}
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatalf("invalid: %v", errs)
	}
}

func TestModeSwitchViaPublish(t *testing.T) {
	sys := figure4System(t, []RuleSpec{{
		ID: 1, Source: "If bandwidth < 1000 then wireless.mode", Action: ActionSwitchMode,
	}})
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	sys.PublishMetric(monitor.MetricBandwidth, "", 10_000)
	if sys.Mode() != "docked" {
		t.Fatal("premature switch")
	}
	sys.PublishMetric(monitor.MetricBandwidth, "", 500)
	if sys.Mode() != "wireless" {
		t.Fatalf("mode = %q", sys.Mode())
	}
	if _, ok := sys.Assembly().Component("wopt"); !ok {
		t.Fatal("wireless optimiser not live")
	}
	if sys.Log().Count(trace.KindSwitch) != 1 {
		t.Fatalf("trace: %s", sys.Log().Summary())
	}
	st := sys.SessionStats()
	if st.Actions != 1 || st.Violations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if sys.Adaptivity().Stats().Switches != 1 {
		t.Fatalf("am stats = %+v", sys.Adaptivity().Stats())
	}
}

const rebindADL = `
component App   { require store : kv; }
component FastKV { provide get : kv; }
component SmallKV { provide get : kv; }
inst app   : App;
inst fast  : FastKV;
inst small : SmallKV;
bind app.store -- fast.get;
`

func TestRebindAction(t *testing.T) {
	sys, err := New(Config{
		ADL: rebindADL,
		Rules: []RuleSpec{{
			ID:         1,
			Source:     "If battery < 20 then small.get",
			Action:     ActionRebind,
			RebindFrom: "app",
			RebindPort: "store",
		}},
		Impl: func(typeName, port string) component.Handler {
			name := typeName
			return func(component.Request) (any, error) { return name, nil }
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	out, err := sys.Call("app", "store", component.Request{})
	if err != nil || out != "FastKV" {
		t.Fatalf("initial provider: %v %v", out, err)
	}
	sys.PublishMetric(monitor.MetricBattery, "", 15)
	out, err = sys.Call("app", "store", component.Request{})
	if err != nil || out != "SmallKV" {
		t.Fatalf("post-adapt provider: %v %v", out, err)
	}
	// Re-publishing the same state must not thrash (decision equals
	// current target).
	before := sys.SessionStats().Actions
	sys.PublishMetric(monitor.MetricBattery, "", 14)
	if got := sys.SessionStats().Actions; got != before {
		t.Fatalf("rebind thrashed: %d -> %d", before, got)
	}
}

func TestCustomAction(t *testing.T) {
	fired := 0
	sys, err := New(Config{
		ADL: rebindADL,
		Rules: []RuleSpec{{
			ID:     9,
			Source: "If request-rate > 100 then overload.alarm",
			Action: ActionCustom,
			Handler: func(d constraint.Decision) error {
				fired++
				return nil
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sys.Start()
	sys.PublishMetric(monitor.MetricRequestRate, "", 500)
	if fired != 1 {
		t.Fatalf("custom handler fired %d times", fired)
	}
}

func TestCustomActionNilHandler(t *testing.T) {
	sys, err := New(Config{
		ADL:   rebindADL,
		Rules: []RuleSpec{{ID: 9, Source: "If request-rate > 100 then x.y", Action: ActionCustom}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sys.Start()
	sys.PublishMetric(monitor.MetricRequestRate, "", 500)
	if sys.SessionStats().Failures != 1 {
		t.Fatalf("stats = %+v", sys.SessionStats())
	}
}

func TestCooldownInSystem(t *testing.T) {
	sys, err := New(Config{
		ADL:         adl.Figure4,
		InitialMode: "docked",
		CooldownMS:  1000,
		Rules: []RuleSpec{
			{ID: 1, Source: "If bandwidth < 1000 then wireless.mode", Action: ActionSwitchMode},
			{ID: 2, Source: "If bandwidth >= 1000 then docked.mode", Action: ActionSwitchMode, Priority: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sys.Start()
	sys.PublishMetric(monitor.MetricBandwidth, "", 500)
	if sys.Mode() != "wireless" {
		t.Fatalf("mode = %s", sys.Mode())
	}
	// Immediate flip back is suppressed by the cooldown.
	sys.PublishMetric(monitor.MetricBandwidth, "", 10_000)
	if sys.Mode() != "wireless" {
		t.Fatal("cooldown violated")
	}
	if sys.SessionStats().Skips == 0 {
		t.Fatalf("stats = %+v", sys.SessionStats())
	}
	// After the cooldown the flip-back applies.
	sys.Clock().Schedule(2000, func() {})
	sys.Clock().Run()
	sys.PublishMetric(monitor.MetricBandwidth, "", 10_000)
	if sys.Mode() != "docked" {
		t.Fatalf("mode = %s", sys.Mode())
	}
}

func TestFailedSwitchKeepsConfigurationValid(t *testing.T) {
	// A rule that names an unknown mode: the switch errors, the
	// session records a failure, and the configuration stays intact.
	sys := figure4System(t, []RuleSpec{{
		ID: 1, Source: "If bandwidth < 1000 then flying.mode", Action: ActionSwitchMode,
	}})
	_ = sys.Start()
	sys.PublishMetric(monitor.MetricBandwidth, "", 10)
	if sys.Mode() != "docked" {
		t.Fatalf("mode = %s", sys.Mode())
	}
	if sys.SessionStats().Failures != 1 {
		t.Fatalf("stats = %+v", sys.SessionStats())
	}
	if errs := sys.Validate(); len(errs) != 0 {
		t.Fatalf("invalid after failed switch: %v", errs)
	}
}

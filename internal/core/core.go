// Package core assembles the paper's §3 "Adaptive Data Management
// architecture" into one composable object: a component assembly, an
// ADL model with modes, a monitor/gauge registry, a prioritised
// switching-rule set, a session manager watching the gauges, and an
// adaptivity manager executing reconfiguration plans transactionally
// — the complete Figure 1 loop behind a small API.
//
// A System is built declaratively:
//
//	sys, err := core.New(core.Config{
//	    ADL:         adl.Figure4,
//	    InitialMode: "docked",
//	    Rules: []core.RuleSpec{{
//	        ID:     1,
//	        Source: "If bandwidth < 1000 then wireless.mode",
//	        Action: core.ActionSwitchMode,
//	    }},
//	})
//	err = sys.Start()
//	sys.Publish(sample)   // adaptation happens inside the loop
package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/adm-project/adm/internal/adapt"
	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/component"
	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/session"
	"github.com/adm-project/adm/internal/simnet"
	"github.com/adm-project/adm/internal/trace"
)

// ActionKind says how a fired rule's decision is executed.
type ActionKind int

// Rule action kinds.
const (
	// ActionSwitchMode treats the decision target's node as an ADL
	// mode name and switches the assembly to it.
	ActionSwitchMode ActionKind = iota
	// ActionRebind re-wires one require port to the provider named by
	// the decision target (node = component, resource = port).
	ActionRebind
	// ActionCustom invokes the rule's Handler.
	ActionCustom
)

// RuleSpec declares one switching rule.
type RuleSpec struct {
	ID       int
	Priority int
	// Source is the constraint text (Table 2 syntax).
	Source string
	Action ActionKind
	// RebindFrom/RebindPort identify the require endpoint ActionRebind
	// re-wires.
	RebindFrom string
	RebindPort string
	// Handler runs for ActionCustom.
	Handler func(d constraint.Decision) error
}

// Config declares a system.
type Config struct {
	// Name labels trace output.
	Name string
	// ADL is the architecture description source.
	ADL string
	// InitialMode selects the boot configuration ("" = base).
	InitialMode string
	// Rules are the switching rules.
	Rules []RuleSpec
	// Impl supplies provided-port handlers to the component factory
	// (nil handlers echo).
	Impl func(typeName, port string) component.Handler
	// CooldownMS suppresses adaptation thrash.
	CooldownMS float64
	// Clock supplies simulation time (a fresh clock if nil).
	Clock *simnet.Clock
}

// System is a running adaptive data management instance.
type System struct {
	mu      sync.Mutex
	name    string
	clock   *simnet.Clock
	log     *trace.Log
	reg     *monitor.Registry
	model   *adl.Model
	asm     *component.Assembly
	factory adapt.Factory
	am      *adapt.Manager
	mc      *session.ModeController
	sm      *session.Manager
	started bool
}

// Errors.
var (
	ErrNoRules    = errors.New("core: config has no rules")
	ErrNotStarted = errors.New("core: system not started")
	ErrStarted    = errors.New("core: system already started")
)

// New validates the configuration and builds a stopped system.
func New(cfg Config) (*System, error) {
	if cfg.Name == "" {
		cfg.Name = "adm"
	}
	model, err := adl.Parse(cfg.ADL)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if errs := model.Validate(); len(errs) != 0 {
		return nil, fmt.Errorf("core: invalid architecture: %v", errs[0])
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simnet.NewClock()
	}
	log := trace.New()
	s := &System{
		name:  cfg.Name,
		clock: clock,
		log:   log,
		reg:   monitor.NewRegistry(),
		model: model,
		asm:   component.NewAssembly(log, clock.Now),
	}
	s.factory = adapt.TypeFactory(model, cfg.Impl)
	s.am = adapt.NewManager(s.asm, log, clock.Now)
	s.mc = session.NewModeController(model, s.am, s.factory, cfg.InitialMode, log, clock.Now)

	var prules []constraint.PrioritisedRule
	handlers := map[int]RuleSpec{}
	for _, rs := range cfg.Rules {
		r, err := constraint.Parse(rs.Source)
		if err != nil {
			return nil, fmt.Errorf("core: rule %d: %w", rs.ID, err)
		}
		prules = append(prules, constraint.PrioritisedRule{ID: rs.ID, Priority: rs.Priority, Rule: r})
		handlers[rs.ID] = rs
	}
	ruleset := constraint.NewRuleSet(prules...)
	s.sm = session.New(cfg.Name+"-session", s.reg, ruleset, log, clock.Now,
		func(d constraint.Decision, pr *constraint.PrioritisedRule) error {
			spec, ok := handlers[pr.ID]
			if !ok {
				return fmt.Errorf("core: no spec for rule %d", pr.ID)
			}
			return s.execute(spec, d)
		})
	s.sm.CooldownMS = cfg.CooldownMS
	if err := adapt.Instantiate(s.asm, model, cfg.InitialMode, s.factory); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *System) execute(spec RuleSpec, d constraint.Decision) error {
	switch spec.Action {
	case ActionSwitchMode:
		return s.mc.SwitchTo(d.Target.Node())
	case ActionRebind:
		prov := d.Target.Node()
		port := d.Target.Resource()
		if port == "" {
			port = spec.RebindPort
		}
		if b, ok := s.asm.BoundTo(spec.RebindFrom, spec.RebindPort); ok {
			if b.ToComp == prov && b.ToPort == port {
				return nil // already wired as decided
			}
			if err := s.asm.Unbind(spec.RebindFrom, spec.RebindPort); err != nil {
				return err
			}
		}
		return s.asm.Bind(spec.RebindFrom, spec.RebindPort, prov, port)
	case ActionCustom:
		if spec.Handler == nil {
			return fmt.Errorf("core: rule %d: nil custom handler", spec.ID)
		}
		return spec.Handler(d)
	}
	return fmt.Errorf("core: rule %d: unknown action %d", spec.ID, spec.Action)
}

// Start boots the components and attaches the session manager to the
// monitor feed.
func (s *System) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return ErrStarted
	}
	if err := s.asm.StartAll(); err != nil {
		return err
	}
	s.sm.Attach()
	s.started = true
	s.log.Emit(s.clock.Now(), trace.KindInfo, s.name, "system started in mode %q", s.mc.Mode())
	return nil
}

// Publish feeds a monitor sample into the loop; adaptation (if any)
// happens synchronously before Publish returns.
func (s *System) Publish(sample monitor.Sample) {
	s.reg.Publish(sample)
}

// PublishMetric is sugar over Publish.
func (s *System) PublishMetric(metric, source string, value float64) {
	s.Publish(monitor.Sample{
		Key:    monitor.Key{Metric: metric, Source: source},
		Value:  value,
		TimeMS: s.clock.Now(),
	})
}

// Call invokes through the live configuration.
func (s *System) Call(caller, port string, req component.Request) (any, error) {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if !started {
		return nil, ErrNotStarted
	}
	return s.asm.Call(caller, port, req)
}

// Mode returns the current ADL mode.
func (s *System) Mode() string { return s.mc.Mode() }

// Assembly exposes the live configuration.
func (s *System) Assembly() *component.Assembly { return s.asm }

// Registry exposes the gauge environment.
func (s *System) Registry() *monitor.Registry { return s.reg }

// Log exposes the adaptation trace.
func (s *System) Log() *trace.Log { return s.log }

// Clock exposes the simulation clock.
func (s *System) Clock() *simnet.Clock { return s.clock }

// Adaptivity exposes the adaptivity manager (stats, migration).
func (s *System) Adaptivity() *adapt.Manager { return s.am }

// SessionStats returns the session manager's counters.
func (s *System) SessionStats() session.Stats { return s.sm.Stats() }

// Validate checks the running configuration's completeness.
func (s *System) Validate() []error { return s.asm.Validate() }

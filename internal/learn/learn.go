// Package learn implements the paper's §6 open issue — "more work on
// systems that learn from previous adaptations are required" — as a
// closed-loop threshold tuner: it watches the adaptation stream of a
// threshold-guarded switching rule and rewrites the rule's bound from
// outcome feedback. Oscillation (switches bouncing back and forth
// inside a short window) pushes the threshold up, trading sensitivity
// for stability; sustained calm decays it back toward the configured
// base so genuine overloads are still caught early.
//
// This is deliberately the "lean and tractable" end of self-learning
// the paper asks for (§6: "Self-learning systems must be lean and
// tractable"): one scalar, two update rules, no model.
package learn

import (
	"errors"
	"fmt"
	"sync"

	"github.com/adm-project/adm/internal/constraint"
)

// Config tunes the tuner.
type Config struct {
	// Base is the designed threshold (the rule's initial bound).
	Base float64
	// Max bounds how far the threshold may rise.
	Max float64
	// Step is the increment applied on detected oscillation.
	Step float64
	// OscillationWindowMS: two switches within this window count as
	// thrash.
	OscillationWindowMS float64
	// CalmWindowMS of no switches decays the threshold by Step/2
	// toward Base.
	CalmWindowMS float64
}

// DefaultConfig returns a conservative calibration for a percentage
// threshold.
func DefaultConfig(base float64) Config {
	return Config{
		Base:                base,
		Max:                 base + 9,
		Step:                2,
		OscillationWindowMS: 1000,
		CalmWindowMS:        5000,
	}
}

// Tuner rewrites one MetricCond rule's first bound.
type Tuner struct {
	mu   sync.Mutex
	cfg  Config
	cond *constraint.MetricCond

	lastSwitch   float64
	hasSwitch    bool
	lastActivity float64
	// counters
	raises int
	decays int
}

// Errors.
var ErrNotTunable = errors.New("learn: rule guard is not a single-metric threshold")

// NewTuner attaches to a rule of the form `If metric > X then ...`.
// The rule is mutated in place as the tuner learns.
func NewTuner(rule *constraint.Rule, cfg Config) (*Tuner, error) {
	if rule.Cond == nil {
		return nil, ErrNotTunable
	}
	mc, ok := rule.Cond.(*constraint.MetricCond)
	if !ok || len(mc.Bounds) != 1 {
		return nil, ErrNotTunable
	}
	if cfg.Max < cfg.Base {
		cfg.Max = cfg.Base
	}
	if cfg.Step <= 0 {
		cfg.Step = 1
	}
	mc.Bounds[0].Value = cfg.Base
	return &Tuner{cfg: cfg, cond: mc}, nil
}

// Threshold returns the current learned threshold.
func (t *Tuner) Threshold() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cond.Bounds[0].Value
}

// Stats returns (raises, decays) applied so far.
func (t *Tuner) Stats() (raises, decays int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.raises, t.decays
}

// ObserveSwitch records that the rule's adaptation fired at time
// nowMS. Two switches inside the oscillation window raise the
// threshold.
func (t *Tuner) ObserveSwitch(nowMS float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.hasSwitch && nowMS-t.lastSwitch <= t.cfg.OscillationWindowMS {
		nv := t.cond.Bounds[0].Value + t.cfg.Step
		if nv > t.cfg.Max {
			nv = t.cfg.Max
		}
		if nv != t.cond.Bounds[0].Value {
			t.cond.Bounds[0].Value = nv
			t.raises++
		}
	}
	t.lastSwitch = nowMS
	t.hasSwitch = true
	t.lastActivity = nowMS
}

// ObserveQuiet records a calm tick at nowMS; sustained calm decays a
// raised threshold back toward the designed base.
func (t *Tuner) ObserveQuiet(nowMS float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cond.Bounds[0].Value <= t.cfg.Base {
		t.lastActivity = nowMS
		return
	}
	if nowMS-t.lastActivity >= t.cfg.CalmWindowMS {
		nv := t.cond.Bounds[0].Value - t.cfg.Step/2
		if nv < t.cfg.Base {
			nv = t.cfg.Base
		}
		t.cond.Bounds[0].Value = nv
		t.decays++
		t.lastActivity = nowMS
	}
}

// String renders the tuner state.
func (t *Tuner) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("learn: %s threshold=%.1f (base %.1f, max %.1f, raises %d, decays %d)",
		t.cond.Metric, t.cond.Bounds[0].Value, t.cfg.Base, t.cfg.Max, t.raises, t.decays)
}

package learn

import (
	"errors"
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/session"
)

func tunableRule(t *testing.T) (*constraint.Rule, *Tuner) {
	t.Helper()
	r := constraint.MustParse("If processor-util > 90 then SWITCH(node1.a, node2.a)")
	tn, err := NewTuner(r, DefaultConfig(90))
	if err != nil {
		t.Fatal(err)
	}
	return r, tn
}

func TestNewTunerRejectsNonThresholdRules(t *testing.T) {
	cases := []string{
		"Select BEST(a, b)",
		"If bandwidth > 30 < 100 Kbps then BEST(a.v) else b.v", // two bounds
		"If x > 1 and y > 2 then BEST(a)",                      // boolean guard
	}
	for _, src := range cases {
		if _, err := NewTuner(constraint.MustParse(src), DefaultConfig(90)); !errors.Is(err, ErrNotTunable) {
			t.Errorf("%q: got %v", src, err)
		}
	}
}

func TestOscillationRaisesThreshold(t *testing.T) {
	_, tn := tunableRule(t)
	if tn.Threshold() != 90 {
		t.Fatalf("initial = %v", tn.Threshold())
	}
	tn.ObserveSwitch(100)
	if tn.Threshold() != 90 {
		t.Fatal("single switch must not raise")
	}
	tn.ObserveSwitch(400) // within 1000ms window → thrash
	if tn.Threshold() != 92 {
		t.Fatalf("threshold = %v, want 92", tn.Threshold())
	}
	tn.ObserveSwitch(700)
	tn.ObserveSwitch(900)
	if tn.Threshold() != 96 {
		t.Fatalf("threshold = %v, want 96", tn.Threshold())
	}
	// Cap at Max.
	for i := 0; i < 20; i++ {
		tn.ObserveSwitch(1000 + float64(i)*10)
	}
	if tn.Threshold() != 99 {
		t.Fatalf("threshold = %v, want capped at 99", tn.Threshold())
	}
}

func TestWellSpacedSwitchesDoNotRaise(t *testing.T) {
	_, tn := tunableRule(t)
	tn.ObserveSwitch(0)
	tn.ObserveSwitch(5000)
	tn.ObserveSwitch(10000)
	if tn.Threshold() != 90 {
		t.Fatalf("threshold = %v", tn.Threshold())
	}
}

func TestCalmDecaysTowardBase(t *testing.T) {
	_, tn := tunableRule(t)
	tn.ObserveSwitch(0)
	tn.ObserveSwitch(100) // raise to 92
	tn.ObserveQuiet(1000)
	if tn.Threshold() != 92 {
		t.Fatal("decayed too early")
	}
	tn.ObserveQuiet(5200) // ≥ calm window since last activity
	if tn.Threshold() != 91 {
		t.Fatalf("threshold = %v, want 91", tn.Threshold())
	}
	tn.ObserveQuiet(10_500)
	if tn.Threshold() != 90 {
		t.Fatalf("threshold = %v, want back at base", tn.Threshold())
	}
	// Never below base.
	tn.ObserveQuiet(20_000)
	if tn.Threshold() != 90 {
		t.Fatalf("threshold = %v", tn.Threshold())
	}
	raises, decays := tn.Stats()
	if raises != 1 || decays != 2 {
		t.Fatalf("stats = %d %d", raises, decays)
	}
	if !strings.Contains(tn.String(), "threshold=90.0") {
		t.Fatalf("string = %s", tn.String())
	}
}

// The end-to-end claim: on a flapping signal the learned threshold
// cuts switch count well below the static rule, while a genuine
// sustained overload still fires.
func TestLearnedRuleReducesThrash(t *testing.T) {
	run := func(learning bool) (switches int, caughtOverload bool) {
		rule := constraint.MustParse("If processor-util > 90 then SWITCH(node1.a, node2.a)")
		var tn *Tuner
		if learning {
			var err error
			tn, err = NewTuner(rule, Config{
				Base: 90, Max: 97, Step: 3, OscillationWindowMS: 600, CalmWindowMS: 3000,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		reg := monitor.NewRegistry()
		reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricCapacity, Source: "node1"}, Value: 100})
		reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricLoad, Source: "node1"}, Value: 50})
		reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricCapacity, Source: "node2"}, Value: 100})
		reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricLoad, Source: "node2"}, Value: 10})
		now := 0.0
		sm := session.New("learn", reg, constraint.NewRuleSet(constraint.PrioritisedRule{ID: 1, Rule: rule}),
			nil, func() float64 { return now },
			func(d constraint.Decision, _ *constraint.PrioritisedRule) error {
				switches++
				if tn != nil {
					tn.ObserveSwitch(now)
				}
				return nil
			})
		// Phase 1 (0..30s): flapping 89↔93 every 200ms — noise.
		for ; now < 30_000; now += 200 {
			v := 89.0
			if int(now/200)%2 == 0 {
				v = 93
			}
			reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricProcessorUtil, Source: "node1"}, Value: v, TimeMS: now})
			sm.SetSelf("node1")
			sm.SetCurrent(nil)
			fired, _ := sm.CheckNow()
			if tn != nil && !fired {
				tn.ObserveQuiet(now)
			}
		}
		// Phase 2 (30s..31s): genuine sustained overload at 99%.
		before := switches
		for ; now < 31_000; now += 200 {
			reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricProcessorUtil, Source: "node1"}, Value: 99, TimeMS: now})
			sm.SetCurrent(nil)
			_, _ = sm.CheckNow()
		}
		caughtOverload = switches > before
		return switches, caughtOverload
	}
	staticSwitches, staticCaught := run(false)
	learnedSwitches, learnedCaught := run(true)
	if !staticCaught || !learnedCaught {
		t.Fatalf("overload missed: static=%v learned=%v", staticCaught, learnedCaught)
	}
	if learnedSwitches*2 >= staticSwitches {
		t.Fatalf("learned %d switches vs static %d: want <half", learnedSwitches, staticSwitches)
	}
}

package monitor

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func s(metric, source string, v, t float64) Sample {
	return Sample{Key: Key{Metric: metric, Source: source}, Value: v, TimeMS: t}
}

func TestLastGauge(t *testing.T) {
	g := &Last{}
	if g.Ready() {
		t.Fatal("empty gauge ready")
	}
	g.Observe(s("m", "", 5, 0))
	g.Observe(s("m", "", 9, 1))
	if !g.Ready() || g.Value() != 9 {
		t.Fatalf("value = %v", g.Value())
	}
	g.Reset()
	if g.Ready() {
		t.Fatal("ready after reset")
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	g := &EWMA{Alpha: 0.5}
	for i := 0; i < 50; i++ {
		g.Observe(s("m", "", 42, float64(i)))
	}
	if math.Abs(g.Value()-42) > 1e-9 {
		t.Fatalf("EWMA of constant = %v", g.Value())
	}
}

func TestEWMASmoothing(t *testing.T) {
	g := &EWMA{Alpha: 0.5}
	g.Observe(s("m", "", 0, 0))
	g.Observe(s("m", "", 100, 1))
	if g.Value() != 50 {
		t.Fatalf("EWMA = %v, want 50", g.Value())
	}
}

func TestEWMABadAlphaDefaults(t *testing.T) {
	g := &EWMA{Alpha: 0}
	g.Observe(s("m", "", 0, 0))
	g.Observe(s("m", "", 10, 1))
	if g.Value() != 3 { // 0.3 default
		t.Fatalf("EWMA = %v, want 3", g.Value())
	}
}

func TestWindowAggregates(t *testing.T) {
	vals := []float64{1, 9, 5, 3, 7}
	cases := []struct {
		agg  WindowAgg
		want float64
	}{
		{AggMean, 5}, {AggMax, 9}, {AggMin, 1}, {AggP95, 9},
	}
	for _, c := range cases {
		g := &Window{N: 5, Agg: c.agg}
		for i, v := range vals {
			g.Observe(s("m", "", v, float64(i)))
		}
		if g.Value() != c.want {
			t.Errorf("agg %d = %v, want %v", c.agg, g.Value(), c.want)
		}
	}
}

func TestWindowSlides(t *testing.T) {
	g := &Window{N: 2, Agg: AggMean}
	for i, v := range []float64{100, 2, 4} {
		g.Observe(s("m", "", v, float64(i)))
	}
	if g.Value() != 3 {
		t.Fatalf("window mean = %v, want 3 (100 evicted)", g.Value())
	}
}

func TestTrendSlope(t *testing.T) {
	g := &Trend{N: 10}
	// value = 2*t + 1
	for i := 0; i < 8; i++ {
		g.Observe(s("req", "", 2*float64(i)+1, float64(i)))
	}
	if math.Abs(g.Value()-2) > 1e-9 {
		t.Fatalf("slope = %v, want 2", g.Value())
	}
	if math.Abs(g.Projected(5)-(15+10)) > 1e-9 {
		t.Fatalf("projected = %v, want 25", g.Projected(5))
	}
}

func TestTrendFlatAndUnready(t *testing.T) {
	g := &Trend{N: 4}
	if g.Ready() || g.Value() != 0 {
		t.Fatal("empty trend should be unready/zero")
	}
	g.Observe(s("m", "", 7, 0))
	if g.Ready() {
		t.Fatal("one sample should not be ready")
	}
	g.Observe(s("m", "", 7, 1))
	g.Observe(s("m", "", 7, 2))
	if g.Value() != 0 {
		t.Fatalf("flat slope = %v", g.Value())
	}
}

func TestTrendSameTimestampIsZero(t *testing.T) {
	g := &Trend{N: 4}
	g.Observe(s("m", "", 1, 5))
	g.Observe(s("m", "", 9, 5))
	if g.Value() != 0 {
		t.Fatalf("degenerate slope = %v, want 0", g.Value())
	}
}

func TestRegistryRoutesAndReads(t *testing.T) {
	r := NewRegistry()
	r.Publish(s(MetricProcessorUtil, "node1", 80, 0))
	r.Publish(s(MetricProcessorUtil, "node1", 90, 1))
	v, ok := r.Metric(MetricProcessorUtil, "node1")
	if !ok || v != 90 {
		t.Fatalf("metric = %v %v", v, ok)
	}
	if _, ok := r.Metric(MetricProcessorUtil, "node2"); ok {
		t.Fatal("unknown source should miss")
	}
}

func TestRegistryFallsBackToSystemWide(t *testing.T) {
	r := NewRegistry()
	r.Publish(s(MetricBandwidth, "", 120, 0))
	v, ok := r.Metric(MetricBandwidth, "laptop")
	if !ok || v != 120 {
		t.Fatalf("fallback = %v %v", v, ok)
	}
}

func TestRegistryBoundGauge(t *testing.T) {
	r := NewRegistry()
	k := Key{Metric: MetricRequestRate, Source: "web"}
	r.Bind(k, &Window{N: 3, Agg: AggMax})
	for i, v := range []float64{5, 50, 10} {
		r.Publish(Sample{Key: k, Value: v, TimeMS: float64(i)})
	}
	got, _ := r.Metric(MetricRequestRate, "web")
	if got != 50 {
		t.Fatalf("max gauge = %v", got)
	}
}

func TestRegistryDefaultGaugeFactory(t *testing.T) {
	r := NewRegistry()
	r.SetDefaultGauge(func(Key) Gauge { return &EWMA{Alpha: 1} })
	r.Publish(s("x", "", 5, 0))
	v, _ := r.Metric("x", "")
	if v != 5 {
		t.Fatalf("v = %v", v)
	}
}

func TestRegistryOnSampleHook(t *testing.T) {
	r := NewRegistry()
	var got []float64
	r.OnSample(func(smp Sample) { got = append(got, smp.Value) })
	r.Publish(s("m", "", 1, 0))
	r.Publish(s("m", "", 2, 1))
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("hook calls = %v", got)
	}
	if r.Samples() != 2 {
		t.Fatalf("samples = %d", r.Samples())
	}
}

func TestRegistryKeysSorted(t *testing.T) {
	r := NewRegistry()
	r.Publish(s("b", "2", 1, 0))
	r.Publish(s("b", "1", 1, 0))
	r.Publish(s("a", "9", 1, 0))
	keys := r.Keys()
	if len(keys) != 3 || keys[0].Metric != "a" || keys[1].Source != "1" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Publish(s("cpu", "n1", 42, 0))
	if got := r.Snapshot(); got != "cpu(n1)=42.00" {
		t.Fatalf("snapshot = %q", got)
	}
}

func TestRegistryConcurrentPublish(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Publish(s("m", "src", float64(i), float64(i)))
				r.Metric("m", "src")
			}
		}(w)
	}
	wg.Wait()
	if r.Samples() != 1600 {
		t.Fatalf("samples = %d, want 1600", r.Samples())
	}
}

// Property: EWMA output is always within the [min,max] envelope of its
// inputs (convex combination).
func TestEWMAEnvelopeProperty(t *testing.T) {
	f := func(raw []float64, alphaSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		alpha := 0.05 + 0.9*float64(alphaSeed)/255
		g := &EWMA{Alpha: alpha}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			g.Observe(s("m", "", v, float64(i)))
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return g.Value() >= lo-1e-9 && g.Value() <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Window min ≤ mean ≤ max for any inputs.
func TestWindowOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var clean []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		mk := func(agg WindowAgg) float64 {
			g := &Window{N: len(clean), Agg: agg}
			for i, v := range clean {
				g.Observe(s("m", "", v, float64(i)))
			}
			return g.Value()
		}
		mn, mean, mx := mk(AggMin), mk(AggMean), mk(AggMax)
		return mn <= mean+1e-6 && mean <= mx+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package monitor implements the monitors and gauges of the paper's
// adaptation framework (Figure 1): raw monitors sample environmental
// facts (processor utilisation, bandwidth, battery, request rate);
// gauges "aggregate raw monitor data for more lightweight processing"
// before it reaches the session manager. A registry of gauges is the
// environment against which constraints are evaluated.
package monitor

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Well-known metric names used across the scenarios. Constraints refer
// to these by name (Table 2 uses processor-util and bandwidth).
const (
	MetricProcessorUtil = "processor-util" // percent, 0..100
	MetricBandwidth     = "bandwidth"      // Kbps
	MetricBattery       = "battery"        // percent remaining
	MetricRequestRate   = "request-rate"   // requests/sec
	MetricCapacity      = "capacity"       // abstract capacity units
	MetricLoad          = "load"           // abstract load units
	MetricDistance      = "distance"       // metres (NEAREST)
	MetricLatency       = "latency"        // ms
	MetricFreeMemory    = "free-memory"    // KiB
)

// Key identifies a monitored quantity: a metric at a source (device,
// link or component name). An empty source means "system-wide".
type Key struct {
	Metric string
	Source string
}

func (k Key) String() string {
	if k.Source == "" {
		return k.Metric
	}
	return k.Metric + "(" + k.Source + ")"
}

// Sample is one raw monitor reading at simulation time TimeMS.
type Sample struct {
	Key    Key
	Value  float64
	TimeMS float64
}

// Gauge aggregates raw samples into the value the session manager
// actually consults. Implementations must be cheap: the paper's point
// is that gauges make the adaptation loop lightweight.
type Gauge interface {
	// Observe folds in one sample.
	Observe(Sample)
	// Value returns the current aggregate.
	Value() float64
	// Ready reports whether enough samples have arrived to trust Value.
	Ready() bool
	// Reset clears accumulated state.
	Reset()
}

// ---------------------------------------------------------------------------
// Gauge implementations.

// Last passes the latest sample through (a raw monitor feed).
type Last struct {
	v     float64
	seen  bool
	count int
}

// Observe implements Gauge.
func (g *Last) Observe(s Sample) { g.v, g.seen = s.Value, true; g.count++ }

// Value implements Gauge.
func (g *Last) Value() float64 { return g.v }

// Ready implements Gauge.
func (g *Last) Ready() bool { return g.seen }

// Reset implements Gauge.
func (g *Last) Reset() { *g = Last{} }

// EWMA is an exponentially weighted moving average with smoothing
// factor Alpha in (0,1]; higher alpha tracks faster.
type EWMA struct {
	Alpha float64
	v     float64
	seen  bool
}

// Observe implements Gauge.
func (g *EWMA) Observe(s Sample) {
	if !g.seen {
		g.v, g.seen = s.Value, true
		return
	}
	a := g.Alpha
	if a <= 0 || a > 1 {
		a = 0.3
	}
	g.v = a*s.Value + (1-a)*g.v
}

// Value implements Gauge.
func (g *EWMA) Value() float64 { return g.v }

// Ready implements Gauge.
func (g *EWMA) Ready() bool { return g.seen }

// Reset implements Gauge.
func (g *EWMA) Reset() { g.v, g.seen = 0, false }

// WindowAgg selects the aggregate a Window gauge computes.
type WindowAgg int

// Window aggregate kinds.
const (
	AggMean WindowAgg = iota
	AggMax
	AggMin
	AggP95
)

// Window keeps the last N samples and aggregates them.
type Window struct {
	N   int
	Agg WindowAgg
	buf []float64
}

// Observe implements Gauge.
func (g *Window) Observe(s Sample) {
	n := g.N
	if n <= 0 {
		n = 8
	}
	g.buf = append(g.buf, s.Value)
	if len(g.buf) > n {
		g.buf = g.buf[len(g.buf)-n:]
	}
}

// Value implements Gauge.
func (g *Window) Value() float64 {
	if len(g.buf) == 0 {
		return 0
	}
	switch g.Agg {
	case AggMax:
		m := g.buf[0]
		for _, v := range g.buf[1:] {
			m = math.Max(m, v)
		}
		return m
	case AggMin:
		m := g.buf[0]
		for _, v := range g.buf[1:] {
			m = math.Min(m, v)
		}
		return m
	case AggP95:
		s := append([]float64(nil), g.buf...)
		sort.Float64s(s)
		idx := int(math.Ceil(0.95*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		return s[idx]
	default:
		sum := 0.0
		for _, v := range g.buf {
			sum += v
		}
		return sum / float64(len(g.buf))
	}
}

// Ready implements Gauge.
func (g *Window) Ready() bool { return len(g.buf) > 0 }

// Reset implements Gauge.
func (g *Window) Reset() { g.buf = g.buf[:0] }

// Trend estimates the least-squares slope (units/ms) over the last N
// samples — "a monitor detects, through some form of trend analysis,
// that the number of requests are beginning to peak" (§5.2). Value
// returns the slope; Projected(dt) extrapolates.
type Trend struct {
	N  int
	ts []float64
	vs []float64
}

// Observe implements Gauge.
func (g *Trend) Observe(s Sample) {
	n := g.N
	if n <= 0 {
		n = 8
	}
	g.ts = append(g.ts, s.TimeMS)
	g.vs = append(g.vs, s.Value)
	if len(g.ts) > n {
		g.ts = g.ts[len(g.ts)-n:]
		g.vs = g.vs[len(g.vs)-n:]
	}
}

// Value implements Gauge: the current slope in units per ms.
func (g *Trend) Value() float64 {
	n := len(g.ts)
	if n < 2 {
		return 0
	}
	var sumT, sumV, sumTT, sumTV float64
	for i := 0; i < n; i++ {
		sumT += g.ts[i]
		sumV += g.vs[i]
		sumTT += g.ts[i] * g.ts[i]
		sumTV += g.ts[i] * g.vs[i]
	}
	den := float64(n)*sumTT - sumT*sumT
	if den == 0 {
		return 0
	}
	return (float64(n)*sumTV - sumT*sumV) / den
}

// Ready implements Gauge.
func (g *Trend) Ready() bool { return len(g.ts) >= 2 }

// Reset implements Gauge.
func (g *Trend) Reset() { g.ts, g.vs = g.ts[:0], g.vs[:0] }

// Projected extrapolates the latest value dt ms forward along the
// fitted slope.
func (g *Trend) Projected(dt float64) float64 {
	if len(g.vs) == 0 {
		return 0
	}
	return g.vs[len(g.vs)-1] + g.Value()*dt
}

// ---------------------------------------------------------------------------
// Registry: the gauge environment the session manager reads.

// Registry routes raw samples to per-key gauges and serves as the
// constraint-evaluation environment. It is safe for concurrent use:
// simulated devices publish from their own goroutines in some
// experiments.
type Registry struct {
	mu     sync.RWMutex
	gauges map[Key]Gauge
	// factory builds a gauge for keys seen before Bind was called.
	factory  func(Key) Gauge
	onSample []func(Sample)
	samples  uint64
}

// NewRegistry returns a registry whose unbound keys default to Last
// gauges (raw pass-through).
func NewRegistry() *Registry {
	return &Registry{
		gauges:  make(map[Key]Gauge),
		factory: func(Key) Gauge { return &Last{} },
	}
}

// SetDefaultGauge replaces the factory used for unbound keys.
func (r *Registry) SetDefaultGauge(f func(Key) Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factory = f
}

// Bind installs a specific gauge for a key, replacing any existing
// one (and its history).
func (r *Registry) Bind(k Key, g Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[k] = g
}

// OnSample registers a hook invoked for every published sample (after
// gauge update). The session manager uses this to run its constraint
// check per feed without polling.
func (r *Registry) OnSample(fn func(Sample)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onSample = append(r.onSample, fn)
}

// Publish feeds one raw sample in.
func (r *Registry) Publish(s Sample) {
	r.mu.Lock()
	g, ok := r.gauges[s.Key]
	if !ok {
		g = r.factory(s.Key)
		r.gauges[s.Key] = g
	}
	g.Observe(s)
	hooks := r.onSample
	r.samples++
	r.mu.Unlock()
	for _, h := range hooks {
		h(s)
	}
}

// Samples returns the count of published raw samples.
func (r *Registry) Samples() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.samples
}

// Metric implements the constraint environment: the current gauge
// value for metric at source. Falls back to the system-wide key when
// the sourced key is absent.
func (r *Registry) Metric(metric, source string) (float64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if g, ok := r.gauges[Key{Metric: metric, Source: source}]; ok && g.Ready() {
		return g.Value(), true
	}
	if source != "" {
		if g, ok := r.gauges[Key{Metric: metric}]; ok && g.Ready() {
			return g.Value(), true
		}
	}
	return 0, false
}

// Gauge returns the gauge bound to k, if any.
func (r *Registry) Gauge(k Key) (Gauge, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.gauges[k]
	return g, ok
}

// Keys returns all keys with at least one observation, sorted.
func (r *Registry) Keys() []Key {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Key, 0, len(r.gauges))
	for k := range r.gauges {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// Snapshot renders the registry state for traces.
func (r *Registry) Snapshot() string {
	var b []byte
	for _, k := range r.Keys() {
		g, _ := r.Gauge(k)
		if g != nil && g.Ready() {
			b = fmt.Appendf(b, "%s=%.2f ", k, g.Value())
		}
	}
	if len(b) > 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}

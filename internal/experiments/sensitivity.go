package experiments

import (
	"fmt"

	"github.com/adm-project/adm/internal/goos"
	"github.com/adm-project/adm/internal/machine"
)

// Table1Sensitivity is the robustness check behind the Table 1
// reproduction: the absolute cycle counts depend on the Pentium-era
// cost calibration, so we perturb the two dominant knobs — the TLB
// flush/refill penalty (address-space switches) and the cold-cache
// pollution of the BSD path — by ±50% and verify that the table's
// *shape* survives every combination: strict ordering, Go! untouched
// at 73 cycles, and the BSD/Go! gap staying above two and a half
// orders of magnitude (the −50%/−50% corner compresses it from ~750×
// to ~390×). The paper's claim is the shape, not the third
// significant digit.
func Table1Sensitivity() (*Report, error) {
	rep := &Report{ID: "table1-sensitivity", Title: "Table 1 ordering under ±50% cost-model perturbation"}
	goPath, err := goos.NewGoPath()
	if err != nil {
		return nil, err
	}
	for _, tlbScale := range []float64{0.5, 1, 1.5} {
		for _, pollScale := range []float64{0.5, 1, 1.5} {
			cost := machine.DefaultCostModel()
			cost.TLBFlushRefill = int(float64(cost.TLBFlushRefill) * tlbScale)

			bsd := goos.DefaultBSD()
			bsd.PollutionProbes = int(float64(bsd.PollutionProbes) * pollScale)

			run := func(p goos.KernelPath) (uint64, error) {
				m := machine.New(cost, 16)
				r, err := p.RPC(m)
				return r.Cycles, err
			}
			bsdC, err := run(bsd)
			if err != nil {
				return nil, err
			}
			machC, err := run(goos.DefaultMach())
			if err != nil {
				return nil, err
			}
			l4C, err := run(goos.DefaultL4())
			if err != nil {
				return nil, err
			}
			goR, err := goPath.RPC(nil)
			if err != nil {
				return nil, err
			}
			ordered := bsdC > machC && machC > l4C && l4C > goR.Cycles
			gap := float64(bsdC) / float64(goR.Cycles)
			status := "ordering holds"
			if !ordered {
				status = "ORDERING BROKEN"
			}
			rep.Add(fmt.Sprintf("tlb×%.1f, cache×%.1f", tlbScale, pollScale),
				"BSD>Mach>L4>Go!",
				fmt.Sprintf("%d > %d > %d > %d", bsdC, machC, l4C, goR.Cycles),
				fmt.Sprintf("%s; BSD/Go! = %.0fx", status, gap))
			if !ordered {
				return nil, fmt.Errorf("sensitivity: ordering broken at tlb=%.1f cache=%.1f", tlbScale, pollScale)
			}
			if goR.Cycles != 73 {
				return nil, fmt.Errorf("sensitivity: Go! drifted to %d cycles", goR.Cycles)
			}
			if gap < 300 {
				return nil, fmt.Errorf("sensitivity: BSD/Go! gap collapsed to %.0fx", gap)
			}
		}
	}
	return rep, nil
}

package experiments

import (
	"errors"
	"fmt"
	"time"

	"github.com/adm-project/adm/internal/adapt"
	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/component"
	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/device"
	"github.com/adm-project/adm/internal/kendra"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/patia"
	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/session"
	"github.com/adm-project/adm/internal/simnet"
	"github.com/adm-project/adm/internal/trace"
	"github.com/adm-project/adm/internal/xmlstream"
)

// Figure1Loop measures the adaptation framework end to end: a
// bandwidth collapse is published into the monitors and the time to a
// committed reconfiguration is read back from the trace.
func Figure1Loop() (*Report, error) {
	clock := simnet.NewClock()
	log := trace.New()
	reg := monitor.NewRegistry()
	model := adl.MustParse(adl.Figure4)
	asm := component.NewAssembly(log, clock.Now)
	factory := adapt.TypeFactory(model, nil)
	if err := adapt.Instantiate(asm, model, "docked", factory); err != nil {
		return nil, err
	}
	am := adapt.NewManager(asm, log, clock.Now)
	mc := session.NewModeController(model, am, factory, "docked", log, clock.Now)
	rules := constraint.NewRuleSet(constraint.PrioritisedRule{
		ID: 1, Rule: constraint.MustParse("If bandwidth < 1000 then wireless.mode"),
	})
	sm := session.New("fig1", reg, rules, log, clock.Now, func(d constraint.Decision, _ *constraint.PrioritisedRule) error {
		return mc.SwitchTo(d.Target.Node())
	})
	sm.Attach()

	// Gauge feed every 10ms; the drop happens at t=105.
	dropAt := 105.0
	for t := 0.0; t <= 200; t += 10 {
		tt := t
		clock.Schedule(t, func() {
			bw := 10000.0
			if tt >= dropAt {
				bw = 500
			}
			reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricBandwidth}, Value: bw, TimeMS: tt})
		})
	}
	wall := time.Now()
	clock.Run()
	wallUS := float64(time.Since(wall).Microseconds())

	rep := &Report{ID: "figure1", Title: "Adaptation framework loop (monitors→gauges→session→adaptivity)"}
	if mc.Mode() != "wireless" {
		return nil, errors.New("figure1: loop failed to reconfigure")
	}
	viol, ok1 := log.FirstAfter(0, trace.KindViolation)
	sw, ok2 := log.FirstAfter(0, trace.KindSwitch)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("figure1: trace incomplete: %s", log.Summary())
	}
	rep.Add("detection delay", "≤ sampling interval", fmt.Sprintf("%.0f ms", viol.TimeMS-dropAt),
		"drop at 105ms, 10ms gauge cadence")
	rep.Add("violation→commit", "-", fmt.Sprintf("%.0f ms (sim)", sw.TimeMS-viol.TimeMS),
		"synchronous within one tick")
	rep.Add("loop wall time", "-", fmt.Sprintf("%.0f µs", wallUS), "entire 200ms simulation")
	st := am.Stats()
	rep.Add("unbinds/binds/starts/stops", "-",
		fmt.Sprintf("%d/%d/%d/%d", st.Unbinds, st.Binds, st.Starts, st.Stops), "figure 5 plan")
	return rep, nil
}

// Figure5Switchover reports the docked→wireless reconfiguration plan
// and its transactional application.
func Figure5Switchover() (*Report, error) {
	model := adl.MustParse(adl.Figure4)
	if errs := model.Validate(); len(errs) != 0 {
		return nil, fmt.Errorf("figure5: model invalid: %v", errs)
	}
	plan, err := model.Diff("docked", "wireless")
	if err != nil {
		return nil, err
	}
	log := trace.New()
	asm := component.NewAssembly(log, nil)
	factory := adapt.TypeFactory(model, nil)
	if err := adapt.Instantiate(asm, model, "docked", factory); err != nil {
		return nil, err
	}
	am := adapt.NewManager(asm, log, nil)
	wall := time.Now()
	if err := am.Apply(plan, factory); err != nil {
		return nil, err
	}
	applyUS := float64(time.Since(wall).Microseconds())
	rep := &Report{ID: "figure5", Title: "Darwin switchover docked→wireless"}
	rep.Add("plan steps", "-", fmt.Sprintf("%d", len(plan.Steps())), "quiesce/unbind/stop/start/bind/resume")
	rep.Add("swapped out", "optimiser, ethernet driver", fmt.Sprintf("%v", plan.Stop), "")
	rep.Add("swapped in", "wireless optimiser, wireless driver", instNames(plan.Start), "")
	rep.Add("survivors quiesced", "-", fmt.Sprintf("%v", plan.Quiesce), "resume after commit")
	rep.Add("apply wall time", "-", fmt.Sprintf("%.0f µs", applyUS), "transactional")
	if errs := asm.Validate(); len(errs) != 0 {
		return nil, fmt.Errorf("figure5: post-switch invalid: %v", errs)
	}
	rep.Add("post-switch config valid", "yes", "yes", "all require ports bound")
	return rep, nil
}

func instNames(insts []adl.InstDecl) string {
	s := "["
	for i, in := range insts {
		if i > 0 {
			s += " "
		}
		s += in.Name
	}
	return s + "]"
}

// Scenario1 reproduces inter-query adaptation: the data component's
// BEST/NEAREST constraints evaluated against live device vitals.
func Scenario1() (*Report, error) {
	tb := device.NewTestbed(1)
	ctx := &constraint.Context{Env: tb.Reg}
	best := constraint.MustParse("Select BEST (PDA, Laptop)")
	near := constraint.MustParse("Select NEAREST (PDA, Laptop)")

	rep := &Report{ID: "scenario1", Title: "Inter-query adaptation: BEST and NEAREST"}
	d1, err := best.Eval(ctx)
	if err != nil {
		return nil, err
	}
	rep.Add("BEST (laptop idle)", "Laptop", d1.Target.Node(), d1.Reason)
	d2, err := near.Eval(ctx)
	if err != nil {
		return nil, err
	}
	rep.Add("NEAREST", "PDA", d2.Target.Node(), d2.Reason)

	// Load the laptop heavily: BEST flips to the PDA.
	tb.Devices[device.NodeLaptop].SetLoad(95)
	tb.PublishAll()
	d3, err := best.Eval(ctx)
	if err != nil {
		return nil, err
	}
	rep.Add("BEST (laptop busy)", "PDA", d3.Target.Node(), d3.Reason)
	return rep, nil
}

// Scenario2Result carries the structured outcome for benches.
type Scenario2Result struct {
	CompletionMS float64
	BytesSent    int64
	Readings     int
	Switched     bool
	// Mode is the Laptop's final ADL mode (wireless after an adaptive
	// undock; docked otherwise).
	Mode string
}

// RunScenario2 executes system adaptation: the sensor streams XML to
// the laptop; mid-stream the laptop undocks (Ethernet→wireless) and —
// when adaptive — the session switches the remaining stream to the
// compressed version at the next safe point.
func RunScenario2(adaptive bool) (*Scenario2Result, error) {
	tb := device.NewTestbed(7)

	// The Laptop's component architecture (Figure 4), booted docked.
	// The adaptive run applies the Figure 5 switchover at the undock
	// event, in the same transaction window as the stream re-encode.
	model := adl.MustParse(adl.Figure4)
	log := trace.New()
	asm := component.NewAssembly(log, tb.Clock.Now)
	factory := adapt.TypeFactory(model, nil)
	if err := adapt.Instantiate(asm, model, "docked", factory); err != nil {
		return nil, err
	}
	am := adapt.NewManager(asm, log, tb.Clock.Now)
	mc := session.NewModeController(model, am, factory, "docked", log, tb.Clock.Now)

	readings := xmlstream.Generate("sensor", 1200)
	streamer := xmlstream.NewStreamer(readings, 50, 2)
	chunks, err := streamer.Encode(0, "full")
	if err != nil {
		return nil, err
	}

	received := map[int]bool{}
	gotReadings := 0
	tb.Net.OnReceive(device.NodeLaptop, func(m simnet.Message) {
		c := m.Payload.(xmlstream.Chunk)
		if received[c.FirstSeq] {
			return
		}
		received[c.FirstSeq] = true
		rs, err := xmlstream.DecodeChunk(c)
		if err == nil {
			gotReadings += len(rs)
		}
	})

	// Roughly a third of the stream fits before the undock event.
	undockAt := 40.0
	undocked := false
	switched := false
	res := &Scenario2Result{}

	for i := 0; i < len(chunks); i++ {
		now := tb.Clock.Now()
		if !undocked && now >= undockAt {
			undocked = true
			if err := tb.UndockLaptop(); err != nil {
				return nil, err
			}
			if adaptive {
				// Architectural reconfiguration first: swap in the
				// wireless driver and optimiser (Figure 5)...
				if err := mc.SwitchTo("wireless"); err != nil {
					return nil, err
				}
				// ...whose decision is to re-encode the remainder
				// compressed from the next safe point.
				resume := streamer.NextSafeResume(chunks[i].FirstSeq)
				tail, err := streamer.Encode(resume, "compressed")
				if err != nil {
					return nil, err
				}
				// Keep full chunks up to the safe point, then the
				// compressed tail.
				var kept []xmlstream.Chunk
				for _, c := range chunks[i:] {
					if c.FirstSeq < resume {
						kept = append(kept, c)
					}
				}
				chunks = append(chunks[:i], append(kept, tail...)...)
				switched = true
			}
		}
		c := chunks[i]
		// Stop-and-wait with retransmission over the lossy link.
		for !received[c.FirstSeq] {
			arrival, err := tb.Net.Send(device.NodeSensor, device.NodeLaptop, len(c.Bytes), c)
			if err != nil {
				return nil, err
			}
			tb.Clock.RunUntil(arrival)
		}
	}
	res.CompletionMS = tb.Clock.Now()
	_, _, bytes := tb.Net.Stats()
	res.BytesSent = bytes
	res.Readings = gotReadings
	res.Switched = switched
	res.Mode = mc.Mode()
	if switched {
		if errs := asm.Validate(); len(errs) != 0 {
			return nil, fmt.Errorf("scenario2: post-switch config invalid: %v", errs[0])
		}
		if _, ok := asm.Component("wopt"); !ok {
			return nil, fmt.Errorf("scenario2: wireless optimiser not live")
		}
	}
	if gotReadings != len(readings) {
		return nil, fmt.Errorf("scenario2: delivered %d of %d readings", gotReadings, len(readings))
	}
	return res, nil
}

// Scenario2 reports adaptive vs static completion of the undocked
// stream.
func Scenario2() (*Report, error) {
	static, err := RunScenario2(false)
	if err != nil {
		return nil, err
	}
	adaptive, err := RunScenario2(true)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "scenario2", Title: "System adaptation: docked→wireless mid-stream"}
	rep.Add("static completion", "-", fmt.Sprintf("%.0f ms", static.CompletionMS), "full XML over wireless")
	rep.Add("adaptive completion", "faster", fmt.Sprintf("%.0f ms", adaptive.CompletionMS),
		fmt.Sprintf("%.1fx faster", static.CompletionMS/adaptive.CompletionMS))
	rep.Add("static bytes", "-", fmt.Sprintf("%d", static.BytesSent), "")
	rep.Add("adaptive bytes", "smaller", fmt.Sprintf("%d", adaptive.BytesSent),
		"compressed version after safe point")
	rep.Add("readings delivered", "all", fmt.Sprintf("%d = %d", adaptive.Readings, static.Readings),
		"safe-point switch loses nothing")
	rep.Add("laptop architecture", "wireless config", adaptive.Mode,
		"figure 5 switchover applied in the same window")
	return rep, nil
}

// Scenario3Result carries the structured outcome for benches.
type Scenario3Result struct {
	StaticRows   int
	AdaptiveRows int
	Replanned    bool
	TriggerRow   int
	PeakHashRows int
	StaticPeak   int
}

// RunScenario3 builds the misestimated-join engine and runs static vs
// adaptive execution.
func RunScenario3() (*Scenario3Result, error) {
	e := query.NewEngine(query.NewCatalog(512), trace.New(), nil)
	if _, err := e.Exec("CREATE TABLE big (k INT, pad STRING)"); err != nil {
		return nil, err
	}
	if _, err := e.Exec("CREATE TABLE small (k INT, v INT)"); err != nil {
		return nil, err
	}
	for i := 0; i < 3000; i++ {
		if _, err := e.Exec(fmt.Sprintf("INSERT INTO big VALUES (%d, 'padpadpad')", i%100)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 100; i++ {
		if _, err := e.Exec(fmt.Sprintf("INSERT INTO small VALUES (%d, %d)", i, i)); err != nil {
			return nil, err
		}
	}
	if _, err := e.Exec("ANALYZE small"); err != nil {
		return nil, err
	}
	// Stale stats: the optimiser believes big has 10 rows.
	if err := e.Catalog().SetStats("big", query.TableStats{Rows: 10, Distinct: map[string]int{"k": 10}}); err != nil {
		return nil, err
	}
	const sql = "SELECT big.k, small.v FROM big JOIN small ON big.k = small.k"
	static, err := e.Exec(sql)
	if err != nil {
		return nil, err
	}
	st := query.MustParse(sql).(*query.SelectStmt)
	adaptiveRes, repRep, err := e.ExecSelectAdaptive(st, query.AdaptiveConfig{Theta: 3, CheckEvery: 32})
	if err != nil {
		return nil, err
	}
	return &Scenario3Result{
		StaticRows:   len(static.Rows),
		AdaptiveRows: len(adaptiveRes.Rows),
		Replanned:    repRep.Replanned,
		TriggerRow:   repRep.TriggerRow,
		PeakHashRows: repRep.PeakHashRows,
		StaticPeak:   3000, // static plan materialises all of big
	}, nil
}

// Scenario3 reports intra-query adaptation.
func Scenario3() (*Report, error) {
	r, err := RunScenario3()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "scenario3", Title: "Intra-query adaptation: join replanning at a safe point"}
	rep.Add("replanned", "yes", fmt.Sprintf("%v", r.Replanned), "stale stats said 10 rows; actual 3000")
	rep.Add("trigger row", "early", fmt.Sprintf("%d", r.TriggerRow), "θ=3 × est 10, safe points every 32")
	rep.Add("peak hash rows (adaptive)", "small", fmt.Sprintf("%d", r.PeakHashRows), "")
	rep.Add("peak hash rows (static)", "-", fmt.Sprintf("%d", r.StaticPeak), "builds all of big")
	rep.Add("result rows equal", "yes", fmt.Sprintf("%v (%d)", r.StaticRows == r.AdaptiveRows, r.AdaptiveRows),
		"State-Manager consistency: no loss, no duplicates")
	return rep, nil
}

// Table2 reports the Patia flash-crowd run (rule 455) and the banded
// video rule (595).
func Table2() (*Report, error) {
	static, err := patia.RunFlashCrowd(patia.DefaultCrowdConfig(false))
	if err != nil {
		return nil, err
	}
	adaptive, err := patia.RunFlashCrowd(patia.DefaultCrowdConfig(true))
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "table2", Title: "Patia atom constraints under a flash crowd"}
	rep.Add("switches (static)", "0", fmt.Sprintf("%d", static.Switches), "")
	rep.Add("switches (adaptive)", "≥1", fmt.Sprintf("%d", adaptive.Switches), "rule 455 at util>90%")
	rep.Add("saturated ticks", "-", fmt.Sprintf("%d -> %d", static.SaturatedTicks, adaptive.SaturatedTicks),
		"static -> adaptive")
	rep.Add("mean latency", "lower with SWITCH", fmt.Sprintf("%.2f -> %.2f ms",
		static.MeanLatencyMS, adaptive.MeanLatencyMS), "request-weighted")
	rep.Add("peak latency", "-", fmt.Sprintf("%.1f -> %.1f ms", static.PeakLatencyMS, adaptive.PeakLatencyMS), "")

	// Rule 595: bandwidth sweep over the banded video constraint.
	reg := monitor.NewRegistry()
	sys := patia.NewSystem([]string{"node1", "node2", "node3"}, reg, trace.New(), nil)
	video := &patia.Atom{ID: 153, Name: "video.ram", Type: "video", Bytes: 4_000_000,
		Constraints: patia.Table2VideoRules(),
		Versions:    map[string]int{"videohalf": 2_000_000, "videosmall": 500_000}}
	sys.PublishVitals(0)
	for _, bw := range []float64{10, 31, 64, 99, 150} {
		reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricBandwidth}, Value: bw})
		v, _ := sys.SelectVersion(video, "node1")
		want := "videosmall"
		if bw > 30 && bw < 100 {
			want = "videohalf"
		}
		rep.Add(fmt.Sprintf("rule 595 @ %.0f Kbps", bw), want, v, "")
	}
	return rep, nil
}

// Kendra reports the codec-switching comparison.
func Kendra() (*Report, error) {
	fixed, err := kendra.Stream(kendra.DefaultConfig(false), kendra.DropTrace())
	if err != nil {
		return nil, err
	}
	adaptive, err := kendra.Stream(kendra.DefaultConfig(true), kendra.DropTrace())
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "kendra", Title: "Kendra: codec swap-in under a bandwidth drop"}
	rep.Add("stall rate (fixed pcm)", "high", fmt.Sprintf("%.1f%%", 100*fixed.StallRate()), "")
	rep.Add("stall rate (adaptive)", "~0", fmt.Sprintf("%.2f%%", 100*adaptive.StallRate()), "")
	rep.Add("mean quality", "-", fmt.Sprintf("%.2f -> %.2f", fixed.MeanQuality, adaptive.MeanQuality),
		"fixed -> adaptive")
	rep.Add("codec switches", "≥2", fmt.Sprintf("%d", adaptive.Switches), "down at drop, up at recovery")
	return rep, nil
}

package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
)

// joinWorkload builds the standard remote-source workload: n tuples
// per side, 20 keys, the left (build) side trickling in slowly with
// periodic stalls — the wide-area regime of §2.
func joinWorkload(n int) (func() (*operators.TimedSource, *operators.TimedSource), int) {
	var l, r []storage.Tuple
	for i := 0; i < n; i++ {
		l = append(l, storage.Tuple{storage.IntValue(int64(i % 20)), storage.StringValue("L")})
		r = append(r, storage.Tuple{storage.IntValue(int64(i % 20)), storage.StringValue("R")})
	}
	mk := func() (*operators.TimedSource, *operators.TimedSource) {
		return operators.NewTimedSource("L", l, operators.ArrivalPattern{
				PerTupleMS: 4, StallEvery: 100, StallMS: 800,
			}),
			operators.NewTimedSource("R", r, operators.ArrivalPattern{PerTupleMS: 1})
	}
	// 20 keys, n/20 repeats per side → n/20 * n/20 * 20 outputs.
	expect := (n / 20) * (n / 20) * 20
	return mk, expect
}

// AdaptiveJoinRows holds the structured comparison for benches.
type AdaptiveJoinRows struct {
	Blocking, Symmetric, XJoin operators.RunResult
}

// RunAdaptiveJoins executes the three timed joins on the standard
// workload.
func RunAdaptiveJoins(n int) (*AdaptiveJoinRows, error) {
	mk, expect := joinWorkload(n)
	l1, r1 := mk()
	blocking := operators.RunBlockingHashJoin(l1, r1, 0, 0)
	l2, r2 := mk()
	symmetric := operators.RunSymmetricHashJoin(l2, r2, 0, 0)
	l3, r3 := mk()
	xjoin := operators.RunXJoin(l3, r3, 0, 0, operators.XJoinConfig{
		MemTuplesPerSide: n / 8, ReactiveBatch: 16, ReactiveStepMS: 2,
	})
	for name, res := range map[string]operators.RunResult{
		"blocking": blocking, "symmetric": symmetric, "xjoin": xjoin,
	} {
		if len(res.Outputs) != expect {
			return nil, fmt.Errorf("joins: %s produced %d of %d outputs", name, len(res.Outputs), expect)
		}
	}
	return &AdaptiveJoinRows{Blocking: blocking, Symmetric: symmetric, XJoin: xjoin}, nil
}

// AdaptiveJoins reports time-to-first-tuple and completion for the
// blocking baseline against the two pipelined joins.
func AdaptiveJoins() (*Report, error) {
	r, err := RunAdaptiveJoins(400)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "joins", Title: "Adaptive joins vs blocking hash join (slow bursty build side)"}
	add := func(name string, res operators.RunResult) {
		rep.Add(name+" first output", "-", fmt.Sprintf("%.0f ms", res.FirstOutputMS), "")
		rep.Add(name+" completion", "-", fmt.Sprintf("%.0f ms", res.CompletionMS), "")
		rep.Add(name+" idle", "-", fmt.Sprintf("%.0f ms", res.IdleMS),
			fmt.Sprintf("peak mem %d tuples", res.MaxMemTuples))
	}
	add("blocking", r.Blocking)
	add("symmetric", r.Symmetric)
	add("xjoin", r.XJoin)
	speedup := r.Blocking.FirstOutputMS / r.Symmetric.FirstOutputMS
	rep.Add("first-output speedup", "large", fmt.Sprintf("%.0fx", speedup), "symmetric vs blocking")
	return rep, nil
}

// Ripple reports the online-aggregation estimate trajectory.
func Ripple() (*Report, error) {
	rng := rand.New(rand.NewSource(42))
	var l, r []storage.Tuple
	for i := 0; i < 400; i++ {
		l = append(l, storage.Tuple{storage.IntValue(int64(rng.Intn(25))), storage.FloatValue(float64(rng.Intn(100)))})
	}
	for i := 0; i < 300; i++ {
		r = append(r, storage.Tuple{storage.IntValue(int64(rng.Intn(25))), storage.StringValue("r")})
	}
	ls := operators.NewTimedSource("L", l, operators.ArrivalPattern{PerTupleMS: 2})
	rs := operators.NewTimedSource("R", r, operators.ArrivalPattern{PerTupleMS: 2})
	res := operators.RunRippleJoin(ls, rs, 0, 0, 1, 25)
	rep := &Report{ID: "ripple", Title: "Ripple join: running SUM estimate vs sampled fraction"}
	for _, pt := range res.Trajectory {
		errPct := 0.0
		if res.Exact != 0 {
			errPct = 100 * math.Abs(pt.Estimate-res.Exact) / res.Exact
		}
		rep.Add(fmt.Sprintf("%.1f%% of cross product", 100*pt.Fraction), "estimate tightens",
			fmt.Sprintf("est %.0f (err %.1f%%)", pt.Estimate, errPct),
			fmt.Sprintf("t=%.0fms, %d tuples", pt.At, pt.Sampled))
		if len(rep.Rows) > 12 {
			break
		}
	}
	rep.Add("exact", "-", fmt.Sprintf("%.0f", res.Exact), "full completion")
	return rep, nil
}

// AblationEddy compares adaptive tuple routing against the static
// plan under a mid-stream selectivity inversion.
func AblationEddy() (*Report, error) {
	n := 4000
	tuples := make([]storage.Tuple, n)
	for i := range tuples {
		tuples[i] = storage.Tuple{storage.IntValue(int64(i))}
	}
	mk := func() []*operators.EddyFilter {
		return []*operators.EddyFilter{
			{Name: "A", Cost: 1, Pred: func(t storage.Tuple) bool {
				i := t[0].Int
				if i < int64(n/2) {
					return i%10 == 0
				}
				return i%10 != 0
			}},
			{Name: "B", Cost: 1, Pred: func(t storage.Tuple) bool {
				i := t[0].Int
				if i < int64(n/2) {
					return i%10 != 0
				}
				return i%10 == 0
			}},
		}
	}
	f1 := mk()
	static := operators.RunEddy(tuples, []*operators.EddyFilter{f1[1], f1[0]}, 0)
	f2 := mk()
	adaptive := operators.RunEddy(tuples, []*operators.EddyFilter{f2[1], f2[0]}, 100)
	rep := &Report{ID: "ablation-eddy", Title: "Eddy routing vs static plan (selectivity inversion mid-stream)"}
	rep.Add("static work", "-", fmt.Sprintf("%.0f", static.Work), "filter-cost units")
	rep.Add("eddy work", "lower", fmt.Sprintf("%.0f", adaptive.Work),
		fmt.Sprintf("%.0f%% of static", 100*adaptive.Work/static.Work))
	rep.Add("reorders", "≥1", fmt.Sprintf("%d", adaptive.Reorders), "")
	rep.Add("results equal", "yes", fmt.Sprintf("%v", static.Passed == adaptive.Passed), "")
	return rep, nil
}

package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
)

// sortBenchTuples builds `rows` three-column tuples whose key column
// mixes heavy duplicates with a long unique tail — the regime where
// both the comparator cost and the tie-break cost are visible.
func sortBenchTuples(rows int) []storage.Tuple {
	out := make([]storage.Tuple, rows)
	for i := 0; i < rows; i++ {
		key := int64((i * 2654435761) % (rows / 4)) // ~4 rows per key
		out[i] = intRow(key, int64(i%97), int64(i))
	}
	return out
}

// RunParallelSortBench times a full ORDER BY over materialised rows.
// Three records come out of one run:
//
//   - SerialSort: the pre-pipeline reference — sort.SliceStable with
//     storage.Compare called on boxed Values per comparison. This is
//     what the engine did before typed key extraction, re-measured in
//     the same process so the speedup claim is apples-to-apples.
//   - ParallelSort at each requested worker count: worker-local runs
//     with typed keys, merged through the loser tree and drained.
//
// The 4-worker ParallelSort record carries its throughput ratio over
// SerialSort as ScalingEfficiency; on a single-core host that ratio is
// almost entirely the comparator win. Repeats are interleaved — every
// round measures the serial reference and every worker count
// back-to-back — so a transient load spike lands on both sides of the
// ratio instead of skewing whichever bench happened to own that
// window.
func RunParallelSortBench(rows int, workers []int, repeats, batch int) ([]ParallelBenchResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	tuples := sortBenchTuples(rows)

	serialBest := time.Duration(0)
	parallelBest := make([]time.Duration, len(workers))
	for rep := 0; rep < repeats; rep++ {
		buf := make([]storage.Tuple, len(tuples))
		copy(buf, tuples)
		start := time.Now()
		sort.SliceStable(buf, func(i, j int) bool {
			return storage.Compare(buf[i][0], buf[j][0]) < 0
		})
		if elapsed := time.Since(start); serialBest == 0 || elapsed < serialBest {
			serialBest = elapsed
		}
		for wi, w := range workers {
			start := time.Now()
			merge, err := operators.ParallelSortBatches(
				operators.NewSliceBatches(tuples, batch), 0, false,
				operators.ParallelConfig{Workers: w, MorselSize: batch})
			if err != nil {
				return nil, err
			}
			got, err := operators.Drain(merge)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if len(got) != rows {
				return nil, fmt.Errorf("parallel sort produced %d rows, want %d", len(got), rows)
			}
			if parallelBest[wi] == 0 || elapsed < parallelBest[wi] {
				parallelBest[wi] = elapsed
			}
		}
	}

	out := []ParallelBenchResult{{
		Bench:      "SerialSort",
		Workers:    1,
		RowsPerSec: float64(rows) / serialBest.Seconds(),
		Cycles:     uint64(serialBest.Nanoseconds()),
	}}
	for wi, w := range workers {
		r := ParallelBenchResult{
			Bench:      "ParallelSort",
			Workers:    w,
			RowsPerSec: float64(rows) / parallelBest[wi].Seconds(),
			Cycles:     uint64(parallelBest[wi].Nanoseconds()),
		}
		if w == 4 {
			r.ScalingEfficiency = r.RowsPerSec / out[0].RowsPerSec
		}
		out = append(out, r)
	}
	return out, nil
}

// RunTopKBench times ORDER BY ... LIMIT k (k=10) over the same rows:
// per-worker bounded heaps, k·workers candidates merged at the
// barrier. Throughput is input rows per second — the point of the
// operator is that it scans everything but materialises almost
// nothing.
func RunTopKBench(rows int, workers []int, repeats, batch int) ([]ParallelBenchResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	const k = 10
	tuples := sortBenchTuples(rows)
	var out []ParallelBenchResult
	for _, w := range workers {
		best := time.Duration(0)
		for rep := 0; rep < repeats; rep++ {
			start := time.Now()
			got, err := operators.ParallelTopKBatches(
				operators.NewSliceBatches(tuples, batch), 0, false, k,
				operators.ParallelConfig{Workers: w, MorselSize: batch})
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if len(got) != k {
				return nil, fmt.Errorf("top-k produced %d rows, want %d", len(got), k)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		out = append(out, ParallelBenchResult{
			Bench:      "TopK",
			Workers:    w,
			RowsPerSec: float64(rows) / best.Seconds(),
			Cycles:     uint64(best.Nanoseconds()),
		})
	}
	var oneW float64
	for _, r := range out {
		if r.Workers == 1 {
			oneW = r.RowsPerSec
		}
	}
	if oneW > 0 {
		for i := range out {
			if out[i].Workers == 4 {
				out[i].ScalingEfficiency = out[i].RowsPerSec / oneW
			}
		}
	}
	return out, nil
}

// Concurrent-commit benchmark: the group-commit gate. N sessions run
// small mixed read/write transactions against one SyncManual store
// whose WAL fsync costs a fixed simulated latency. One session pays
// that latency on every commit; sixteen sessions share it through the
// group-commit leader, so commits/sec must scale well past the
// single-session fsync-per-commit rate. The 16-session/1-session
// ratio is the number ci.sh gates on (commit_scaling_floor).
package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/adm-project/adm/internal/fault"
	"github.com/adm-project/adm/internal/storage"
)

// commitSyncDelay is the simulated fsync latency. MemDisk.Sync is
// free, which would hide the entire group-commit win; 200µs is the
// order of a fast NVMe flush and keeps the bench fsync-bound, so the
// measured scaling reflects batching rather than CPU parallelism
// (it holds even on a single-core host).
const commitSyncDelay = 200 * time.Microsecond

// commitPoolRows is the size of the shared contention pool. A quarter
// of each session's transactions update a pool row, so
// first-claimer-wins conflicts (and thus abort_rate) occur under load
// without an abort storm drowning the group-commit signal: a claim is
// held until its commit publishes (~one fsync), so a hotter pool
// turns most attempts into retries.
const commitPoolRows = 64

// syncDelayDisk charges commitSyncDelay on every Sync. Writes and
// reads pass through untouched.
type syncDelayDisk struct {
	storage.DiskFile
	delay time.Duration
}

func (d *syncDelayDisk) Sync() error {
	time.Sleep(d.delay)
	return d.DiskFile.Sync()
}

// commitBenchRun drives `sessions` concurrent sessions, each
// committing txnsPerSession transactions (read a pool row, insert a
// private row, update a contended pool row). Returns commits/sec and
// the abort rate (aborts / attempts).
func commitBenchRun(sessions, txnsPerSession int) (rate float64, abortRate float64, elapsed time.Duration, err error) {
	wal := &syncDelayDisk{DiskFile: storage.NewMemDisk(), delay: commitSyncDelay}
	db, err := storage.Open(wal, storage.NewMemDisk(), storage.DBOptions{Sync: storage.SyncManual})
	if err != nil {
		return 0, 0, 0, err
	}
	h, err := db.CreateFile("bench")
	if err != nil {
		return 0, 0, 0, err
	}

	// Seed the contention pool in one committed transaction and track
	// each row's current RID: updates move rows to new versions, so
	// sessions look the live RID up under poolMu and the winner
	// publishes the replacement after commit.
	var poolMu sync.Mutex
	pool := make([]storage.RID, commitPoolRows)
	seed := db.Txns().Begin()
	for i := range pool {
		rid, err := seed.Insert(h, storage.Tuple{
			storage.IntValue(int64(i)),
			storage.StringValue(fmt.Sprintf("pool-%04d", i)),
		})
		if err != nil {
			return 0, 0, 0, err
		}
		pool[i] = rid
	}
	if err := seed.Commit(); err != nil {
		return 0, 0, 0, err
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		aborts int
		firstE error
	)
	start := time.Now()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := fault.NewRand(uint64(0xC0FFEE + 0x9E37*s))
			fail := func(err error) {
				mu.Lock()
				if firstE == nil {
					firstE = err
				}
				mu.Unlock()
			}
			myAborts := 0
			for committed := 0; committed < txnsPerSession; {
				tx := db.Txns().Begin()
				// Read: one pool row under this snapshot. The RID can be
				// stale (row moved by a concurrent update); a miss is fine.
				poolMu.Lock()
				rrid := pool[rng.Intn(commitPoolRows)]
				poolMu.Unlock()
				_, _ = tx.View(h).Get(rrid)
				// Write 1: a private insert (never conflicts).
				key := int64(1_000_000 + s*txnsPerSession + committed)
				if _, err := tx.Insert(h, storage.Tuple{
					storage.IntValue(key),
					storage.StringValue("row"),
				}); err != nil {
					_ = tx.Rollback()
					fail(err)
					return
				}
				// Write 2 (every 4th txn): update a contended pool row.
				// Losing the claim race is a real abort — roll back
				// (undoing the insert too), back off roughly one
				// claim-hold time and retry the whole transaction.
				idx := -1
				var urid, nrid storage.RID
				if committed%4 == 0 {
					idx = rng.Intn(commitPoolRows)
					poolMu.Lock()
					urid = pool[idx]
					poolMu.Unlock()
					var err error
					_, nrid, err = tx.Update(h, urid, storage.Tuple{
						storage.IntValue(int64(idx)),
						storage.StringValue("pool-updated"),
					})
					if err != nil {
						myAborts++
						_ = tx.Rollback()
						time.Sleep(commitSyncDelay)
						continue
					}
				}
				if err := tx.Commit(); err != nil {
					fail(err)
					return
				}
				if idx >= 0 {
					poolMu.Lock()
					if pool[idx] == urid {
						pool[idx] = nrid
					}
					poolMu.Unlock()
				}
				committed++
			}
			mu.Lock()
			aborts += myAborts
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	elapsed = time.Since(start)
	if firstE != nil {
		return 0, 0, 0, firstE
	}
	commits := sessions * txnsPerSession
	rate = float64(commits) / elapsed.Seconds()
	abortRate = float64(aborts) / float64(aborts+commits)
	return rate, abortRate, elapsed, nil
}

// RunCommitBench measures concurrent commit throughput at each
// session count (commits/sec, best of repeats) plus the abort rate
// from the best run. ScalingEfficiency on every multi-session record
// is its ratio over the single-session rate — the 16-session value is
// the group-commit fan-in the baseline's commit_scaling_floor gates.
func RunCommitBench(sessions []int, txnsPerSession, repeats int) ([]ParallelBenchResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	if txnsPerSession < 1 {
		txnsPerSession = 64
	}
	var out []ParallelBenchResult
	var oneSession float64
	for _, s := range sessions {
		var best ParallelBenchResult
		for r := 0; r < repeats; r++ {
			rate, abortRate, elapsed, err := commitBenchRun(s, txnsPerSession)
			if err != nil {
				return nil, fmt.Errorf("commit bench (%d sessions): %w", s, err)
			}
			if rate > best.RowsPerSec {
				best = ParallelBenchResult{
					Bench:      "CommitTxn",
					Workers:    s,
					RowsPerSec: rate,
					Cycles:     uint64(elapsed.Nanoseconds()),
					AbortRate:  abortRate,
				}
			}
		}
		if s == 1 {
			oneSession = best.RowsPerSec
		} else if oneSession > 0 {
			best.ScalingEfficiency = best.RowsPerSec / oneSession
		}
		out = append(out, best)
	}
	return out, nil
}

package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/adm-project/adm/internal/patia"
	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/server"
	"github.com/adm-project/adm/internal/storage"
)

// Flash-crowd drive shape, sized for the 1-core CI container: a
// couple of steady clients, then an order-of-magnitude client surge.
// The two variants run the IDENTICAL drive; only the server differs.
//
// The statement is a join-aggregate chosen so the SERVER is the
// bottleneck: a one-row result (no wire/decode cost on the client
// side) over flashRows x flashDupes join pairs of compute — roughly
// 5ms of engine work per statement on the CI core. A wide-result scan
// would invert the experiment: fifty client goroutines decoding
// 100KB responses saturate the core while the execution slots idle,
// and the admission queue never fills.
const (
	flashSteadyClients = 2
	flashCrowdClients  = 64
	flashSteadyMS      = 300
	flashCrowdMS       = 2000
	flashDecayMS       = 800
	// flashWarmupMS excludes the controller's reaction transient from
	// the p99 sample (statements already queued when the ladder trips
	// drain at pre-adaptation latencies); the gate is the SLO under
	// sustained overload.
	flashWarmupMS = 500
	// Steady clients think between statements so background traffic
	// alone stays well under capacity (~5ms service, 2 clients).
	flashThinkMS = 30
	flashRows    = 2000
	// flashDupes rows share each join key, so the self-join produces
	// flashRows*flashDupes pairs for the aggregate to consume.
	flashDupes = 6
	flashQuery = "SELECT COUNT(a.g) FROM f a JOIN f b ON a.g = b.g"

	// Both servers are configured IDENTICALLY — two execution slots,
	// a deep admission queue — except for the adaptive flag, so the
	// contrast isolates the degradation ladder. Under the crowd the
	// static server lets every statement marinate in the deep queue
	// and client-observed p99 explodes; the adaptive one trips to l1,
	// stops queueing, and keeps served latency at service time.
	flashInflight = 2
	flashQueue    = 4096
	flashSLOMS    = 30
)

// flashBackoff is the client pause after a shed before re-issuing;
// long enough that 48 rejected clients do not themselves saturate the
// core with rejection round-trips.
const flashBackoff = 8 * time.Millisecond

// flashServer builds a seeded engine and a running server for one
// drive variant.
func flashServer(adaptive bool) (*server.Server, error) {
	db, err := storage.Open(storage.NewMemDisk(), storage.NewMemDisk(),
		storage.DBOptions{Sync: storage.SyncManual})
	if err != nil {
		return nil, err
	}
	cat, err := query.NewDurableCatalog(db)
	if err != nil {
		return nil, err
	}
	eng := query.NewEngine(cat, nil, nil)
	if _, err := eng.Exec("CREATE TABLE f (g INT, p STRING)"); err != nil {
		return nil, err
	}
	pad := strings.Repeat("x", 40)
	groups := flashRows / flashDupes
	for lo := 0; lo < flashRows; lo += 100 {
		var vals []string
		for i := lo; i < lo+100; i++ {
			vals = append(vals, fmt.Sprintf("(%d, 'row-%d-%s')", i%groups, i, pad))
		}
		if _, err := eng.Exec("INSERT INTO f VALUES " + strings.Join(vals, ", ")); err != nil {
			return nil, err
		}
	}
	cfg := server.Config{
		MaxInflight:      flashInflight,
		MaxQueue:         flashQueue,
		StatementTimeout: 10 * time.Second,
		Adaptive:         adaptive,
		SLOMS:            flashSLOMS,
		Tick:             10 * time.Millisecond,
		CooldownMS:       40,
	}
	srv := server.New(eng, db, cfg, nil)
	if err := srv.Start(); err != nil {
		return nil, err
	}
	return srv, nil
}

// runFlashVariant drives one server variant and tears it down,
// asserting the run was clean (no transport errors, nothing leaked).
func runFlashVariant(adaptive bool) (*patia.ServerCrowdResult, int64, error) {
	srv, err := flashServer(adaptive)
	if err != nil {
		return nil, 0, err
	}
	res, err := patia.RunServerCrowd(patia.ServerCrowdConfig{
		Addr:          srv.Addr(),
		SteadyClients: flashSteadyClients,
		CrowdClients:  flashCrowdClients,
		SteadyMS:      flashSteadyMS,
		CrowdMS:       flashCrowdMS,
		DecayMS:       flashDecayMS,
		WarmupMS:      flashWarmupMS,
		SteadyThinkMS: flashThinkMS,
		Query:         flashQuery,
		RetryBackoff:  flashBackoff,
	})
	switches := srv.Stats().Switches
	if cerr := srv.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, err
	}
	if res.Errors > 0 {
		return nil, 0, fmt.Errorf("flash crowd (adaptive=%v): %d non-retryable client errors", adaptive, res.Errors)
	}
	if res.TotalServed == 0 {
		return nil, 0, errors.New("flash crowd served nothing; drive is broken")
	}
	return res, switches, nil
}

// RunFlashCrowdBench runs the flash-crowd drive against a live
// admsqld twice — adaptive ladder on, then off — and reports both as
// bench records. FlashCrowdAdapt carries the gated p99 and
// shed-recovery numbers; FlashCrowdStatic is the overload witness:
// its p99 must EXCEED the ceiling for the gate to mean anything.
// Workers records the in-flight bound (not 4: these records are
// outside the 0.9x absolute-throughput gate by construction).
func RunFlashCrowdBench() ([]ParallelBenchResult, error) {
	adapt, switches, err := runFlashVariant(true)
	if err != nil {
		return nil, err
	}
	if switches == 0 {
		return nil, errors.New("flash crowd: adaptive run never moved the degradation ladder")
	}
	static, _, err := runFlashVariant(false)
	if err != nil {
		return nil, err
	}
	crowdSecs := flashCrowdMS / 1e3
	return []ParallelBenchResult{
		{
			Bench:        "FlashCrowdAdapt",
			Workers:      flashInflight,
			RowsPerSec:   float64(adapt.CrowdServed) / crowdSecs,
			P99MS:        adapt.CrowdP99MS,
			ShedRecovery: adapt.ShedRecovery,
		},
		{
			Bench:      "FlashCrowdStatic",
			Workers:    flashInflight,
			RowsPerSec: float64(static.CrowdServed) / crowdSecs,
			P99MS:      static.CrowdP99MS,
		},
	}, nil
}

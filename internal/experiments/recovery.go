// Recovery benchmark: how fast the WAL redo pass brings a crashed
// store back. Two variants bound the recovery envelope — RecoveryWAL
// replays every mutation from the log (no checkpoint, the worst
// case), RecoveryCkpt loads checksummed frames and replays only the
// post-checkpoint tail (the steady state).
package experiments

import (
	"fmt"
	"time"

	"github.com/adm-project/adm/internal/storage"
)

// recoveryFixture builds a crashed-disk image pair: rows inserted
// into one heap with a secondary index logged, optionally
// checkpointed, then "crashed" by snapshotting the disks.
func recoveryFixture(rows int, checkpoint bool) (walBytes, dataBytes []byte, err error) {
	wal, data := storage.NewMemDisk(), storage.NewMemDisk()
	db, err := storage.Open(wal, data, storage.DBOptions{Sync: storage.SyncManual})
	if err != nil {
		return nil, nil, err
	}
	h, err := db.CreateFile("bench")
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < rows; i++ {
		t := storage.Tuple{
			storage.IntValue(int64(i)),
			storage.StringValue(fmt.Sprintf("payload-%08d", i)),
			storage.IntValue(int64(i % 97)),
		}
		if _, err := h.Insert(t); err != nil {
			return nil, nil, err
		}
	}
	if err := db.LogIndex(storage.IndexDef{Name: "bench_k", File: "bench", Col: 0}); err != nil {
		return nil, nil, err
	}
	if checkpoint {
		if err := db.Checkpoint(); err != nil {
			return nil, nil, err
		}
	} else if err := db.WAL().Sync(); err != nil {
		return nil, nil, err
	}
	return wal.Bytes(), data.Bytes(), nil
}

// RunRecoveryBench measures crash recovery (Open over snapshotted
// disks, including index backfill) in recovered rows per second.
// Results: RecoveryWAL (pure redo) and RecoveryCkpt (frame loads +
// empty tail), best of repeats. Workers is always 1 — recovery is a
// single-threaded log scan by design.
func RunRecoveryBench(rows, repeats int) ([]ParallelBenchResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	var out []ParallelBenchResult
	for _, variant := range []struct {
		name       string
		checkpoint bool
	}{
		{"RecoveryWAL", false},
		{"RecoveryCkpt", true},
	} {
		walBytes, dataBytes, err := recoveryFixture(rows, variant.checkpoint)
		if err != nil {
			return nil, err
		}
		best := time.Duration(0)
		for rep := 0; rep < repeats; rep++ {
			w := storage.NewMemDiskFrom(append([]byte(nil), walBytes...))
			d := storage.NewMemDiskFrom(append([]byte(nil), dataBytes...))
			start := time.Now()
			db, err := storage.Open(w, d, storage.DBOptions{})
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			h, ok := db.File("bench")
			if !ok || h.Count() != rows {
				return nil, fmt.Errorf("recovery bench: recovered %d rows, want %d", h.Count(), rows)
			}
			if tree, ok := db.Index("bench_k"); !ok || tree.Len() != rows {
				return nil, fmt.Errorf("recovery bench: index not rebuilt")
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		out = append(out, ParallelBenchResult{
			Bench:      variant.name,
			Workers:    1,
			RowsPerSec: float64(rows) / best.Seconds(),
			Cycles:     uint64(best.Nanoseconds()),
		})
	}
	return out, nil
}

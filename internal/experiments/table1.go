package experiments

import (
	"fmt"

	"github.com/adm-project/adm/internal/goos"
	"github.com/adm-project/adm/internal/machine"
)

// Table1 regenerates the paper's Table 1: null-RPC cost in cycles on
// each kernel-path model.
func Table1() (*Report, error) {
	rows, err := goos.Table1()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "table1", Title: "Relative RPC performance (cycles)"}
	for _, r := range rows {
		dev := 100 * (float64(r.Cycles) - float64(r.PaperCycles)) / float64(r.PaperCycles)
		rep.Add(r.System, fmt.Sprintf("%d", r.PaperCycles), fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%+.1f%% vs paper", dev))
	}
	return rep, nil
}

// Memory regenerates the §5.1 memory claim: 32 bytes per interface,
// ~two orders of magnitude below page-granule protection.
func Memory() (*Report, error) {
	sys := goos.NewSystem(512)
	text := machine.NewSeq().ALU("logic", 16).Build()
	if _, err := sys.LoadType("svc", text); err != nil {
		return nil, err
	}
	const n = 100
	for i := 0; i < n; i++ {
		inst, err := sys.NewInstance(fmt.Sprintf("svc-%03d", i), "svc", 256)
		if err != nil {
			return nil, err
		}
		sys.ORB().Register(inst, 2, nil)
	}
	f := sys.Footprint()
	rep := &Report{ID: "mem", Title: "Protection metadata for 100 components (1 interface each)"}
	rep.Add("bytes/interface (ORB)", "32", fmt.Sprintf("%d", f.ORBTableBytes/f.Interfaces), "InterfaceEntry layout")
	rep.Add("Go! total", "-", fmt.Sprintf("%d B", f.GoBytes()), "ORB table + 8B GDT descriptors")
	rep.Add("page-based total", "-", fmt.Sprintf("%d B", f.PageBasedBytes), "4 KiB granule per protection domain")
	rep.Add("ratio", "~100x", fmt.Sprintf("%.0fx", f.Ratio()), "paper: 'around two orders of magnitude'")
	return rep, nil
}

// Figure6ORB measures one ORB-mediated invocation in detail.
func Figure6ORB() (*Report, error) {
	g, err := goos.NewGoPath()
	if err != nil {
		return nil, err
	}
	res, err := g.RPC(nil)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "figure6", Title: "Components invoke services via the ORB"}
	rep.Add("null RPC cycles", "73", fmt.Sprintf("%d", res.Cycles), "3 segment loads each way")
	rep.Add("instructions", "-", fmt.Sprintf("%d", res.Instructions), "")
	for _, ph := range g.Breakdown() {
		rep.Add("phase: "+ph.Name, "-", "-", ph.Notes)
	}
	return rep, nil
}

// AblationTrapVsScan compares SISR's scan-once protection against
// trap-interposition on every invocation.
func AblationTrapVsScan() (*Report, error) {
	g, err := goos.NewGoPath()
	if err != nil {
		return nil, err
	}
	sisr, err := g.RPC(nil)
	if err != nil {
		return nil, err
	}
	sys := g.System()
	caller, _ := sys.Instance("caller")
	callee, _ := sys.Instance("callee")
	id := sys.ORB().Register(callee, 4, nil)
	trapped, err := sys.ORB().InvokeTrapped(caller, id)
	if err != nil {
		return nil, err
	}
	scanOnce := sys.ScanCycles()
	rep := &Report{ID: "ablation-trap", Title: "SISR scan-at-load vs trap-at-run per RPC"}
	rep.Add("SISR RPC", "-", fmt.Sprintf("%d cycles", sisr.Cycles), "no ring crossings")
	rep.Add("trapped RPC", "-", fmt.Sprintf("%d cycles", trapped.Cycles),
		fmt.Sprintf("%.1fx SISR", float64(trapped.Cycles)/float64(sisr.Cycles)))
	rep.Add("scan cost (one-time)", "-", fmt.Sprintf("%d cycles", scanOnce),
		fmt.Sprintf("amortised after %d calls", breakEven(scanOnce, trapped.Cycles-sisr.Cycles)))
	return rep, nil
}

func breakEven(once uint64, perCall uint64) uint64 {
	if perCall == 0 {
		return 0
	}
	return (once + perCall - 1) / perCall
}

package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// Every experiment must run clean and produce at least one row; the
// individual shape assertions below pin the headline results.
func TestAllExperimentsRun(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			rep, err := r.Run()
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if rep.ID != r.ID {
				t.Errorf("report id %q != runner id %q", rep.ID, r.ID)
			}
			if len(rep.Rows) == 0 {
				t.Fatal("empty report")
			}
			if !strings.Contains(rep.String(), rep.Title) {
				t.Error("String() missing title")
			}
			if !strings.Contains(rep.Markdown(), "| metric |") {
				t.Error("Markdown() missing header")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table1"); !ok {
		t.Fatal("table1 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("phantom experiment")
	}
}

func rowValue(t *testing.T, rep *Report, name string) string {
	t.Helper()
	for _, r := range rep.Rows {
		if r.Name == name {
			return r.Measured
		}
	}
	t.Fatalf("row %q missing from %s: %+v", name, rep.ID, rep.Rows)
	return ""
}

func TestTable1Shape(t *testing.T) {
	rep, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if got := rowValue(t, rep, "Go!"); got != "73" {
		t.Fatalf("Go! = %s", got)
	}
	bsd, _ := strconv.Atoi(rowValue(t, rep, "BSD (Unix)"))
	mach, _ := strconv.Atoi(rowValue(t, rep, "Mach2.5"))
	l4, _ := strconv.Atoi(rowValue(t, rep, "L4"))
	if !(bsd > mach && mach > l4 && l4 > 73) {
		t.Fatalf("ordering: %d %d %d", bsd, mach, l4)
	}
}

func TestMemoryShape(t *testing.T) {
	rep, err := Memory()
	if err != nil {
		t.Fatal(err)
	}
	if got := rowValue(t, rep, "bytes/interface (ORB)"); got != "32" {
		t.Fatalf("bytes/interface = %s", got)
	}
}

func TestScenario2AdaptiveFaster(t *testing.T) {
	static, err := RunScenario2(false)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := RunScenario2(true)
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.Switched {
		t.Fatal("adaptive run never switched versions")
	}
	if adaptive.CompletionMS >= static.CompletionMS {
		t.Fatalf("adaptive %.0fms >= static %.0fms", adaptive.CompletionMS, static.CompletionMS)
	}
	if adaptive.BytesSent >= static.BytesSent {
		t.Fatalf("adaptive bytes %d >= static %d", adaptive.BytesSent, static.BytesSent)
	}
	if adaptive.Readings != static.Readings {
		t.Fatalf("readings %d vs %d", adaptive.Readings, static.Readings)
	}
}

func TestScenario3Shape(t *testing.T) {
	r, err := RunScenario3()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Replanned {
		t.Fatal("no replan")
	}
	if r.StaticRows != r.AdaptiveRows {
		t.Fatalf("rows %d vs %d", r.StaticRows, r.AdaptiveRows)
	}
	if r.PeakHashRows*4 > r.StaticPeak {
		t.Fatalf("peak %d not far below static %d", r.PeakHashRows, r.StaticPeak)
	}
}

func TestAdaptiveJoinsShape(t *testing.T) {
	r, err := RunAdaptiveJoins(400)
	if err != nil {
		t.Fatal(err)
	}
	if r.Symmetric.FirstOutputMS*10 > r.Blocking.FirstOutputMS {
		t.Fatalf("first output: sym %.0f vs blocking %.0f",
			r.Symmetric.FirstOutputMS, r.Blocking.FirstOutputMS)
	}
	if r.XJoin.IdleMS >= r.Blocking.IdleMS {
		t.Fatalf("xjoin idle %.0f >= blocking idle %.0f", r.XJoin.IdleMS, r.Blocking.IdleMS)
	}
}

func TestScenario2ModeFollowsAdaptivity(t *testing.T) {
	static, err := RunScenario2(false)
	if err != nil {
		t.Fatal(err)
	}
	if static.Mode != "docked" || static.Switched {
		t.Fatalf("static run: mode=%s switched=%v", static.Mode, static.Switched)
	}
	adaptive, err := RunScenario2(true)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Mode != "wireless" {
		t.Fatalf("adaptive run mode = %s", adaptive.Mode)
	}
}

func TestTable1SensitivityShape(t *testing.T) {
	rep, err := Table1Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 9 { // 3×3 grid
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if !strings.Contains(r.Note, "ordering holds") {
			t.Fatalf("row %s: %s", r.Name, r.Note)
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

func intRow(vs ...int64) storage.Tuple {
	t := make(storage.Tuple, len(vs))
	for i, v := range vs {
		t[i] = storage.IntValue(v)
	}
	return t
}

// ParallelBenchResult is one machine-readable benchmark record, the
// unit of BENCH_parallel.json and bench_baseline.json. Cycles is the
// best-run wall time in nanoseconds (no cycle counter in pure Go;
// nanoseconds are the stable proxy at fixed clock rate).
type ParallelBenchResult struct {
	Bench      string  `json:"bench"`
	Workers    int     `json:"workers"`
	RowsPerSec float64 `json:"rows_per_sec"`
	Cycles     uint64  `json:"cycles"`
}

// parallelJoinEngine seeds l(k,v) ⋈ r(k,v) with `rows` tuples per
// side, unique keys, and fresh statistics.
func parallelJoinEngine(rows int) (*query.Engine, error) {
	e := query.NewEngine(query.NewCatalog(4096), trace.New(), nil)
	for _, ddl := range []string{
		"CREATE TABLE l (k INT, v INT)",
		"CREATE TABLE r (k INT, v INT)",
	} {
		if _, err := e.Exec(ddl); err != nil {
			return nil, err
		}
	}
	cat := e.Catalog()
	for i := 0; i < rows; i++ {
		if _, err := cat.Insert("l", intRow(int64(i), int64(i*3))); err != nil {
			return nil, err
		}
		if _, err := cat.Insert("r", intRow(int64(i), int64(i*7))); err != nil {
			return nil, err
		}
	}
	if err := cat.Analyze("l"); err != nil {
		return nil, err
	}
	if err := cat.Analyze("r"); err != nil {
		return nil, err
	}
	return e, nil
}

// RunParallelJoinBench times the parallel equi-join l ⋈ r at each
// worker count, best of `repeats` runs. Throughput is input rows
// (both sides) per second — the morsel pipeline's feed rate.
func RunParallelJoinBench(rows int, workers []int, repeats int) ([]ParallelBenchResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	e, err := parallelJoinEngine(rows)
	if err != nil {
		return nil, err
	}
	const sql = "SELECT l.v, r.v FROM l JOIN r ON l.k = r.k"
	var out []ParallelBenchResult
	for _, w := range workers {
		best := time.Duration(0)
		for rep := 0; rep < repeats; rep++ {
			start := time.Now()
			res, _, err := e.ExecuteSQL(sql, query.ExecOptions{Workers: w})
			elapsed := time.Since(start)
			if err != nil {
				return nil, err
			}
			if len(res.Rows) != rows {
				return nil, fmt.Errorf("parallel join produced %d rows, want %d", len(res.Rows), rows)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		out = append(out, ParallelBenchResult{
			Bench:      "ParallelJoin",
			Workers:    w,
			RowsPerSec: float64(2*rows) / best.Seconds(),
			Cycles:     uint64(best.Nanoseconds()),
		})
	}
	return out, nil
}

package experiments

import (
	"fmt"
	"time"

	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

func intRow(vs ...int64) storage.Tuple {
	t := make(storage.Tuple, len(vs))
	for i, v := range vs {
		t[i] = storage.IntValue(v)
	}
	return t
}

// ParallelBenchResult is one machine-readable benchmark record, the
// unit of BENCH_parallel.json and bench_baseline.json. Cycles is the
// best-run wall time in nanoseconds (no cycle counter in pure Go;
// nanoseconds are the stable proxy at fixed clock rate).
type ParallelBenchResult struct {
	Bench      string  `json:"bench"`
	Workers    int     `json:"workers"`
	RowsPerSec float64 `json:"rows_per_sec"`
	Cycles     uint64  `json:"cycles"`
	// ScalingEfficiency is the 4-worker/1-worker rows_per_sec ratio,
	// recorded on the 4-worker record when both counts were measured
	// (1.0 = no parallel speedup; on a single-core host values near 1.0
	// are the physical ceiling).
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	// AbortRate is the fraction of transaction attempts that lost the
	// first-claimer-wins race and rolled back (CommitTxn bench only).
	AbortRate float64 `json:"abort_rate,omitempty"`
	// RecoveryRatio is (this variant − MultiJoinDecl) /
	// (MultiJoinOracle − MultiJoinDecl) on throughput, computed within a
	// single repeat (all four variants run back-to-back, so correlated
	// host load cancels) and reported as the best repeat's value
	// (MultiJoinGreedy / MultiJoinAdapt records only).
	RecoveryRatio float64 `json:"recovery_ratio,omitempty"`
	// FilterKernelRatio is the kernel-path / boxed-path throughput
	// ratio for the 1%-selectivity scan, paired within a repeat and
	// reported as the best repeat (ScanFilter record only). The ratio
	// folds in both mechanisms — zone-map page pruning and the typed
	// selection-vector kernels — against the tuple-at-a-time boxed
	// predicate on identical data.
	FilterKernelRatio float64 `json:"filter_kernel_ratio,omitempty"`
	// P99MS is the 99th-percentile client-observed latency in
	// milliseconds of statements served during the overload window
	// (FlashCrowd records only). An absolute ceiling gates it: the
	// degradation ladder's whole job is to keep this bounded no matter
	// what the offered load is, so a ratio against throughput would
	// miss the point.
	P99MS float64 `json:"p99_ms,omitempty"`
	// ShedRecovery is the fraction of decay-phase statements served
	// rather than shed after the crowd leaves (FlashCrowdAdapt only):
	// a ladder that never releases keeps rejecting healthy traffic and
	// this collapses toward 0.
	ShedRecovery float64 `json:"shed_recovery,omitempty"`
}

// parallelJoinEngine seeds l(k,v) ⋈ r(k,v) with `rows` tuples per
// side, unique keys, and fresh statistics.
func parallelJoinEngine(rows int) (*query.Engine, error) {
	e := query.NewEngine(query.NewCatalog(4096), trace.New(), nil)
	for _, ddl := range []string{
		"CREATE TABLE l (k INT, v INT)",
		"CREATE TABLE r (k INT, v INT)",
	} {
		if _, err := e.Exec(ddl); err != nil {
			return nil, err
		}
	}
	cat := e.Catalog()
	for i := 0; i < rows; i++ {
		if _, err := cat.Insert("l", intRow(int64(i), int64(i*3))); err != nil {
			return nil, err
		}
		if _, err := cat.Insert("r", intRow(int64(i), int64(i*7))); err != nil {
			return nil, err
		}
	}
	if err := cat.Analyze("l"); err != nil {
		return nil, err
	}
	if err := cat.Analyze("r"); err != nil {
		return nil, err
	}
	return e, nil
}

// RunParallelJoinBench times the parallel equi-join l ⋈ r at each
// worker count, best of `repeats` runs, at the default batch size.
func RunParallelJoinBench(rows int, workers []int, repeats int) ([]ParallelBenchResult, error) {
	return RunParallelJoinBenchBatch(rows, workers, repeats, 0)
}

// RunParallelJoinBenchBatch is RunParallelJoinBench with an explicit
// exchange batch size (0 = operator default). Throughput is input rows
// (both sides) per second — the batch pipeline's feed rate. When both
// 1- and 4-worker counts are measured, the 4-worker record carries
// their rows_per_sec ratio as ScalingEfficiency.
func RunParallelJoinBenchBatch(rows int, workers []int, repeats, batch int) ([]ParallelBenchResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	e, err := parallelJoinEngine(rows)
	if err != nil {
		return nil, err
	}
	const sql = "SELECT l.v, r.v FROM l JOIN r ON l.k = r.k"
	var out []ParallelBenchResult
	for _, w := range workers {
		best := time.Duration(0)
		for rep := 0; rep < repeats; rep++ {
			start := time.Now()
			res, _, err := e.ExecuteSQL(sql, query.ExecOptions{Workers: w, BatchSize: batch})
			elapsed := time.Since(start)
			if err != nil {
				return nil, err
			}
			if len(res.Rows) != rows {
				return nil, fmt.Errorf("parallel join produced %d rows, want %d", len(res.Rows), rows)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		out = append(out, ParallelBenchResult{
			Bench:      "ParallelJoin",
			Workers:    w,
			RowsPerSec: float64(2*rows) / best.Seconds(),
			Cycles:     uint64(best.Nanoseconds()),
		})
	}
	var oneW float64
	for _, r := range out {
		if r.Workers == 1 {
			oneW = r.RowsPerSec
		}
	}
	if oneW > 0 {
		for i := range out {
			if out[i].Workers == 4 {
				out[i].ScalingEfficiency = out[i].RowsPerSec / oneW
			}
		}
	}
	return out, nil
}

package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/trace"
)

// The multi-join benchmark runs one deliberately mis-ordered 4-table
// star query four ways and reports each as its own bench family:
//
//	MultiJoinDecl    declared (worst) order, adaptation off — the floor
//	MultiJoinGreedy  greedy order from honest statistics, adaptation off
//	MultiJoinAdapt   greedy order from stale statistics, adaptation on
//	MultiJoinOracle  hand-ordered SQL, adaptation off — the ceiling
//
// The interesting numbers are the recovery ratios
// (Greedy−Decl)/(Oracle−Decl) and (Adapt−Decl)/(Oracle−Decl), gated in
// ci.sh via greedy_recovery_floor / adaptation_recovery_floor.

// misorderedSQL declares the biggest table first and the selective
// region filter last — the worst left-deep declaration order.
const misorderedSQL = "SELECT c.id, l.qty FROM lineitem l" +
	" JOIN orders o ON l.o_id = o.id" +
	" JOIN customer c ON o.c_id = c.id" +
	" JOIN nation n ON c.n_id = n.id WHERE n.region = 1"

// oracleSQL is the same query hand-ordered: filtered nation first,
// fan-out tables last.
const oracleSQL = "SELECT c.id, l.qty FROM nation n" +
	" JOIN customer c ON c.n_id = n.id" +
	" JOIN orders o ON o.c_id = c.id" +
	" JOIN lineitem l ON l.o_id = o.id WHERE n.region = 1"

// starEngine seeds the 4-table star: nation ← customer ← orders ←
// lineitem with `rows` lineitem tuples and 4×/5×/10× fan-in, fresh
// statistics on every table.
func starEngine(rows int) (*query.Engine, error) {
	if rows < 200 {
		rows = 200
	}
	orders, customers, nations := rows/4, rows/20, 6
	e := query.NewEngine(query.NewCatalog(4096), trace.New(), nil)
	for _, ddl := range []string{
		"CREATE TABLE nation (id INT, region INT)",
		"CREATE TABLE customer (id INT, n_id INT)",
		"CREATE TABLE orders (id INT, c_id INT)",
		"CREATE TABLE lineitem (id INT, o_id INT, qty INT)",
	} {
		if _, err := e.Exec(ddl); err != nil {
			return nil, err
		}
	}
	cat := e.Catalog()
	for i := 0; i < nations; i++ {
		if _, err := cat.Insert("nation", intRow(int64(i), int64(i%3))); err != nil {
			return nil, err
		}
	}
	for i := 0; i < customers; i++ {
		if _, err := cat.Insert("customer", intRow(int64(i), int64(i%nations))); err != nil {
			return nil, err
		}
	}
	for i := 0; i < orders; i++ {
		if _, err := cat.Insert("orders", intRow(int64(i), int64(i%customers))); err != nil {
			return nil, err
		}
	}
	for i := 0; i < rows; i++ {
		if _, err := cat.Insert("lineitem", intRow(int64(i), int64(i%orders), int64((i*7)%13))); err != nil {
			return nil, err
		}
	}
	for _, t := range []string{"nation", "customer", "orders", "lineitem"} {
		if err := cat.Analyze(t); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// RunMultiJoinBench times the four variants at `workers` workers, best
// of `repeats`. Throughput is lineitem (fact-table) rows per second so
// the four records are directly comparable. Every variant must return
// the same row count — a mismatch is a correctness bug, not noise.
func RunMultiJoinBench(rows, workers, repeats int) ([]ParallelBenchResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	e, err := starEngine(rows)
	if err != nil {
		return nil, err
	}
	if rows < 200 {
		rows = 200
	}
	disabled := &query.AdaptiveConfig{Disabled: true}
	variants := []struct {
		bench string
		sql   string
		opts  query.ExecOptions
		// lie, when set, replaces a table's statistics before each timed
		// run of this variant (undone again right after).
		lie func(cat *query.Catalog) error
	}{
		{bench: "MultiJoinDecl", sql: misorderedSQL,
			opts: query.ExecOptions{JoinOrder: query.JoinOrderDeclared, Adaptive: disabled}},
		{bench: "MultiJoinOracle", sql: oracleSQL,
			opts: query.ExecOptions{JoinOrder: query.JoinOrderDeclared, Adaptive: disabled}},
		{bench: "MultiJoinGreedy", sql: misorderedSQL,
			opts: query.ExecOptions{Adaptive: disabled}},
		{bench: "MultiJoinAdapt", sql: misorderedSQL,
			opts: query.ExecOptions{},
			// Stale statistics: orders claims 2 rows, so greedy seeds the
			// join at orders and the safe-point router has to discover the
			// real cardinality mid-query and re-route.
			lie: func(cat *query.Catalog) error {
				return cat.SetStats("orders", query.TableStats{
					Rows: 2, Distinct: map[string]int{"id": 2, "c_id": 2}})
			}},
	}
	// Repeat 0 is an untimed warmup pass over all four variants (cold
	// caches and heap growth would otherwise be billed to whichever
	// variant runs first); the timed repeats interleave the variants so
	// transient host load biases all four alike instead of whichever
	// variant ran while the machine was busy.
	best := make([]time.Duration, len(variants))
	times := make([][]time.Duration, len(variants)) // per-variant, per-repeat
	wantRows := -1
	for rep := -1; rep < repeats; rep++ {
		for vi, v := range variants {
			if v.lie != nil {
				if err := v.lie(e.Catalog()); err != nil {
					return nil, err
				}
			}
			opts := v.opts
			opts.Workers = workers
			// Collect before timing: the slow declared-order variant
			// leaves GC debt that would otherwise be billed to whichever
			// variant runs next.
			runtime.GC()
			start := time.Now()
			res, _, err := e.ExecuteSQL(v.sql, opts)
			elapsed := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", v.bench, err)
			}
			if v.lie != nil {
				// Restore honest statistics for the next repeat's
				// non-adaptive variants.
				if err := e.Catalog().Analyze("orders"); err != nil {
					return nil, err
				}
			}
			if wantRows < 0 {
				wantRows = len(res.Rows)
			} else if len(res.Rows) != wantRows {
				return nil, fmt.Errorf("%s produced %d rows, want %d", v.bench, len(res.Rows), wantRows)
			}
			if rep >= 0 {
				times[vi] = append(times[vi], elapsed)
				if best[vi] == 0 || elapsed < best[vi] {
					best[vi] = elapsed
				}
			}
		}
	}
	// Recovery ratios are paired within a repeat: all four variants ran
	// back-to-back there, so correlated host load cancels out of the
	// ratio. The best repeat is reported — the gate asks whether the
	// optimizer CAN recover the gap, and one quiet window proves it.
	recovery := func(vi int) float64 {
		bestRatio := 0.0
		for rep := range times[vi] {
			decl := 1 / times[0][rep].Seconds()
			oracle := 1 / times[1][rep].Seconds()
			got := 1 / times[vi][rep].Seconds()
			if oracle <= decl {
				continue
			}
			if r := (got - decl) / (oracle - decl); r > bestRatio {
				bestRatio = r
			}
		}
		return bestRatio
	}
	var out []ParallelBenchResult
	for vi, v := range variants {
		r := ParallelBenchResult{
			Bench:      v.bench,
			Workers:    workers,
			RowsPerSec: float64(rows) / best[vi].Seconds(),
			Cycles:     uint64(best[vi].Nanoseconds()),
		}
		if vi >= 2 { // MultiJoinGreedy, MultiJoinAdapt
			r.RecoveryRatio = recovery(vi)
		}
		out = append(out, r)
	}
	return out, nil
}

// RunPlanTimeBench times greedy planning of a 5-table chain via a
// pre-parsed EXPLAIN (parse excluded, plan + render included).
// RowsPerSec is plans per second; Cycles is nanoseconds per plan.
func RunPlanTimeBench(repeats int) ([]ParallelBenchResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	e := query.NewEngine(query.NewCatalog(64), trace.New(), nil)
	cat := e.Catalog()
	for i := 0; i < 5; i++ {
		if _, err := e.Exec(fmt.Sprintf("CREATE TABLE t%d (a INT, b INT)", i)); err != nil {
			return nil, err
		}
		if err := cat.SetStats(fmt.Sprintf("t%d", i), query.TableStats{
			Rows: 100 * (i + 1), Distinct: map[string]int{"a": 50, "b": 50}}); err != nil {
			return nil, err
		}
	}
	st := query.MustParse("EXPLAIN SELECT * FROM t0" +
		" JOIN t1 ON t0.b = t1.a JOIN t2 ON t1.b = t2.a" +
		" JOIN t3 ON t2.b = t3.a JOIN t4 ON t3.b = t4.a WHERE t0.a = 7")
	const plans = 2000
	best := time.Duration(0)
	for rep := 0; rep < repeats; rep++ {
		start := time.Now()
		for i := 0; i < plans; i++ {
			if _, err := e.ExecStmt(st); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return []ParallelBenchResult{{
		Bench:      "PlanTime",
		Workers:    1,
		RowsPerSec: plans / best.Seconds(),
		Cycles:     uint64(best.Nanoseconds() / plans),
	}}, nil
}

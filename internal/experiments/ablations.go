package experiments

import (
	"errors"
	"fmt"
	"time"

	"github.com/adm-project/adm/internal/adapt"
	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/component"
	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/session"
	"github.com/adm-project/adm/internal/trace"
)

// AblationGrain prices componentisation: the same 5-stage request
// path (parse→optimise→execute→getpage→buffer) as five fine-grained
// components with concrete boundaries versus one monolithic
// component, measuring per-call overhead — "componentisation itself
// must not produce excessive overheads" (§2).
func AblationGrain() (*Report, error) {
	const stages = 5
	const calls = 50_000

	work := func(x int) int { // the actual per-stage logic
		return x*31 + 7
	}

	// Fine-grained: a chain of components wired through the assembly.
	fine := component.NewAssembly(nil, nil)
	for i := 0; i < stages; i++ {
		name := fmt.Sprintf("stage%d", i)
		c := component.New(name)
		if i < stages-1 {
			c.Require("next", "svc")
		}
		idx := i
		c.Provide("in", "svc", func(req component.Request) (any, error) {
			v := work(req.Payload.(int))
			if idx == stages-1 {
				return v, nil
			}
			return fine.Call(name, "next", component.Request{Payload: v})
		})
		if err := fine.Add(c); err != nil {
			return nil, err
		}
	}
	for i := 0; i < stages-1; i++ {
		if err := fine.Bind(fmt.Sprintf("stage%d", i), "next", fmt.Sprintf("stage%d", i+1), "in"); err != nil {
			return nil, err
		}
	}
	drv := component.New("driver").Require("out", "svc")
	_ = fine.Add(drv)
	_ = fine.Bind("driver", "out", "stage0", "in")
	if err := fine.StartAll(); err != nil {
		return nil, err
	}

	// Monolith: one component running all stages inline.
	mono := component.NewAssembly(nil, nil)
	m := component.New("monolith").Provide("in", "svc", func(req component.Request) (any, error) {
		v := req.Payload.(int)
		for i := 0; i < stages; i++ {
			v = work(v)
		}
		return v, nil
	})
	_ = mono.Add(m)
	mdrv := component.New("driver").Require("out", "svc")
	_ = mono.Add(mdrv)
	_ = mono.Bind("driver", "out", "monolith", "in")
	if err := mono.StartAll(); err != nil {
		return nil, err
	}

	run := func(a *component.Assembly) (time.Duration, any, error) {
		start := time.Now()
		var last any
		for i := 0; i < calls; i++ {
			v, err := a.Call("driver", "out", component.Request{Payload: i})
			if err != nil {
				return 0, nil, err
			}
			last = v
		}
		return time.Since(start), last, nil
	}
	fineDur, fv, err := run(fine)
	if err != nil {
		return nil, err
	}
	monoDur, mv, err := run(mono)
	if err != nil {
		return nil, err
	}
	if fv != mv {
		return nil, fmt.Errorf("grain ablation: results diverge: %v vs %v", fv, mv)
	}

	rep := &Report{ID: "ablation-grain", Title: "Fine-grained (5 components) vs monolithic request path"}
	rep.Add("monolith", "-", fmt.Sprintf("%.0f ns/call", float64(monoDur.Nanoseconds())/calls), "1 boundary")
	rep.Add("fine-grained", "-", fmt.Sprintf("%.0f ns/call", float64(fineDur.Nanoseconds())/calls),
		fmt.Sprintf("%d boundaries", stages))
	perHop := float64(fineDur.Nanoseconds()-monoDur.Nanoseconds()) / calls / float64(stages-1)
	rep.Add("overhead/boundary", "small", fmt.Sprintf("%.0f ns", perHop),
		"price of a rebindable concrete boundary")
	rep.Add("reconfiguration scope", "per stage", "per stage vs whole service",
		"fine grain swaps one stage; monolith swaps everything")
	return rep, nil
}

// AblationGauges compares raw monitor feeds against EWMA gauges on a
// noisy utilisation signal oscillating around the 90% threshold: raw
// feeds thrash the switch rule; gauges suppress the noise.
func AblationGauges() (*Report, error) {
	mkSession := func(useGauge bool) (int, error) {
		reg := monitor.NewRegistry()
		if useGauge {
			reg.Bind(monitor.Key{Metric: monitor.MetricProcessorUtil, Source: "node1"},
				&monitor.EWMA{Alpha: 0.2})
		}
		// Candidate scores for the SWITCH target.
		reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricCapacity, Source: "node1"}, Value: 100})
		reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricLoad, Source: "node1"}, Value: 50})
		reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricCapacity, Source: "node2"}, Value: 100})
		reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricLoad, Source: "node2"}, Value: 10})
		rules := constraint.NewRuleSet(constraint.PrioritisedRule{
			ID: 455, Rule: constraint.MustParse("If processor-util > 90 then SWITCH(node1.a, node2.a)"),
		})
		actions := 0
		sm := session.New("gauge-ablation", reg, rules, nil, nil,
			func(d constraint.Decision, _ *constraint.PrioritisedRule) error {
				actions++
				return nil
			})
		sm.SetSelf("node1")
		// Noisy signal: mean 85, spikes to 95 every third sample — the
		// true load never warrants a switch.
		for i := 0; i < 300; i++ {
			v := 85.0
			if i%3 == 0 {
				v = 95
			}
			reg.Publish(monitor.Sample{
				Key:    monitor.Key{Metric: monitor.MetricProcessorUtil, Source: "node1"},
				Value:  v,
				TimeMS: float64(i),
			})
			if _, err := sm.CheckNow(); err != nil {
				return 0, err
			}
			// A fired switch would flip Current; reset to keep the
			// counting comparable.
			sm.SetCurrent(nil)
		}
		return actions, nil
	}
	raw, err := mkSession(false)
	if err != nil {
		return nil, err
	}
	gauged, err := mkSession(true)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "ablation-gauges", Title: "Raw monitor feed vs EWMA gauge on a noisy 85±10% signal"}
	rep.Add("spurious switches (raw)", "many", fmt.Sprintf("%d", raw), "every spike fires rule 455")
	rep.Add("spurious switches (EWMA)", "~0", fmt.Sprintf("%d", gauged), "gauge absorbs spikes")
	if gauged >= raw {
		return nil, fmt.Errorf("gauge ablation inverted: %d >= %d", gauged, raw)
	}
	return rep, nil
}

// AblationTxRebind compares the transactional switch against a naive
// non-transactional apply when the new component fails to start: the
// transactional path leaves a valid configuration; the naive path
// leaves dangling require ports.
func AblationTxRebind() (*Report, error) {
	model := adl.MustParse(adl.Figure4)
	factory := adapt.TypeFactory(model, nil)
	failing := func(inst adl.InstDecl) (*component.Component, error) {
		if inst.Name == "wopt" {
			return nil, errors.New("component store unreachable")
		}
		return factory(inst)
	}
	plan, err := model.Diff("docked", "wireless")
	if err != nil {
		return nil, err
	}

	// Transactional path.
	log := trace.New()
	txAsm := component.NewAssembly(log, nil)
	if err := adapt.Instantiate(txAsm, model, "docked", factory); err != nil {
		return nil, err
	}
	am := adapt.NewManager(txAsm, log, nil)
	txErr := am.Apply(plan, failing)
	txDangling := len(txAsm.Validate())

	// Naive path: apply unbinds and stops first, then fail on start.
	naiveAsm := component.NewAssembly(nil, nil)
	if err := adapt.Instantiate(naiveAsm, model, "docked", factory); err != nil {
		return nil, err
	}
	for _, b := range plan.Unbind {
		_ = naiveAsm.Unbind(b.From, b.FromPort)
	}
	for _, n := range plan.Stop {
		if c, ok := naiveAsm.Component(n); ok {
			_ = c.Stop()
		}
		_ = naiveAsm.Remove(n)
	}
	naiveFailed := false
	for _, inst := range plan.Start {
		c, err := failing(inst)
		if err != nil {
			naiveFailed = true
			break // the naive implementation just gives up here
		}
		_ = naiveAsm.Add(c)
		_ = c.Start()
	}
	naiveDangling := len(naiveAsm.Validate())

	rep := &Report{ID: "ablation-tx", Title: "Transactional vs naive rebinding under start failure"}
	rep.Add("tx switch outcome", "backed off", fmt.Sprintf("error=%v", txErr != nil), "SwitchError with rollback")
	rep.Add("tx dangling ports", "0", fmt.Sprintf("%d", txDangling), "configuration restored")
	rep.Add("naive gave up mid-switch", "-", fmt.Sprintf("%v", naiveFailed), "")
	rep.Add("naive dangling ports", ">0", fmt.Sprintf("%d", naiveDangling), "stranded configuration")
	if txDangling != 0 || naiveDangling == 0 {
		return nil, fmt.Errorf("tx ablation inverted: tx=%d naive=%d", txDangling, naiveDangling)
	}
	return rep, nil
}

package experiments

import "testing"

// TestFlashCrowdAdaptationHolds runs the live-server flash-crowd
// drive both ways and checks the acceptance shape: the adaptive
// ladder keeps crowd-phase p99 strictly below the static server's
// (which queues everything and lets latency explode), and it releases
// after the crowd leaves. The absolute ceiling lives in
// bench_baseline.json and is enforced by admbench in CI; this test
// pins the relative contrast so `go test ./...` catches the ladder
// dying outright.
func TestFlashCrowdAdaptationHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-server drive")
	}
	rs, err := RunFlashCrowdBench()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ParallelBenchResult{}
	for _, r := range rs {
		byName[r.Bench] = r
	}
	adapt, ok := byName["FlashCrowdAdapt"]
	if !ok {
		t.Fatal("no FlashCrowdAdapt record")
	}
	static, ok := byName["FlashCrowdStatic"]
	if !ok {
		t.Fatal("no FlashCrowdStatic record")
	}
	t.Logf("adaptive: p99=%.1fms served/sec=%.0f shed-recovery=%.2f", adapt.P99MS, adapt.RowsPerSec, adapt.ShedRecovery)
	t.Logf("static:   p99=%.1fms served/sec=%.0f", static.P99MS, static.RowsPerSec)
	if adapt.P99MS <= 0 || static.P99MS <= 0 {
		t.Fatal("drive produced no latency samples")
	}
	if adapt.P99MS >= static.P99MS {
		t.Fatalf("adaptation did not help: adaptive p99 %.1fms >= static %.1fms", adapt.P99MS, static.P99MS)
	}
	if adapt.ShedRecovery < 0.5 {
		t.Fatalf("ladder failed to release after the crowd: shed recovery %.2f", adapt.ShedRecovery)
	}
}

// ScanFilter benchmark: the vectorized filter path (typed predicate
// kernels over selection vectors plus zone-map page pruning) against
// the boxed tuple-at-a-time reference, on the workload the machinery
// targets — a ~1% selective predicate over a clustered key on a
// checkpointed multi-page table. Both variants run back-to-back in
// each repeat so correlated host load cancels out of the ratio.
package experiments

import (
	"fmt"
	"time"

	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

// scanFilterEngine seeds s(k INT, v INT) with k = 0..rows-1 in insert
// order (clustered, so zone maps carry disjoint k ranges per page),
// analyzes, and checkpoints — the durable build point that installs
// the zone maps the kernel path prunes with.
func scanFilterEngine(rows int) (*query.Engine, error) {
	db, err := storage.Open(storage.NewMemDisk(), storage.NewMemDisk(),
		storage.DBOptions{Sync: storage.SyncManual, BufferFrames: 4096})
	if err != nil {
		return nil, err
	}
	cat, err := query.NewDurableCatalog(db)
	if err != nil {
		return nil, err
	}
	e := query.NewEngine(cat, trace.New(), nil)
	if _, err := e.Exec("CREATE TABLE s (k INT, v INT)"); err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		if _, err := cat.Insert("s", intRow(int64(i), int64(i*13%1000))); err != nil {
			return nil, err
		}
	}
	if err := cat.Analyze("s"); err != nil {
		return nil, err
	}
	if err := db.Checkpoint(); err != nil {
		return nil, err
	}
	return e, nil
}

// RunScanFilterBench measures the 1%-selectivity scan at `workers`
// with the kernel path and with NoVectorKernels, best of `repeats`.
// Emits two records: ScanFilterBoxed (the reference) and ScanFilter,
// whose FilterKernelRatio is the best single-repeat kernel/boxed
// throughput ratio — the field filter_kernel_floor gates. Throughput
// is table rows per second (the scan's feed rate; output is ~1% of
// it, so rows/sec measures how fast the filter disposes of input).
func RunScanFilterBench(rows, workers, repeats int) ([]ParallelBenchResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	e, err := scanFilterEngine(rows)
	if err != nil {
		return nil, err
	}
	want := rows / 100
	sql := fmt.Sprintf("SELECT v FROM s WHERE k < %d", want)
	run := func(boxed bool) (time.Duration, error) {
		start := time.Now()
		res, _, err := e.ExecuteSQL(sql, query.ExecOptions{
			Workers: workers, NoVectorKernels: boxed,
		})
		elapsed := time.Since(start)
		if err != nil {
			return 0, err
		}
		if len(res.Rows) != want {
			return 0, fmt.Errorf("scan filter (boxed=%v) produced %d rows, want %d", boxed, len(res.Rows), want)
		}
		return elapsed, nil
	}
	// One untimed round of each variant warms the buffer pool and the
	// plan path so repeat 0 is not a cold outlier.
	if _, err := run(false); err != nil {
		return nil, err
	}
	if _, err := run(true); err != nil {
		return nil, err
	}
	var bestKern, bestBoxed time.Duration
	bestRatio := 0.0
	for rep := 0; rep < repeats; rep++ {
		kern, err := run(false)
		if err != nil {
			return nil, err
		}
		boxed, err := run(true)
		if err != nil {
			return nil, err
		}
		if bestKern == 0 || kern < bestKern {
			bestKern = kern
		}
		if bestBoxed == 0 || boxed < bestBoxed {
			bestBoxed = boxed
		}
		if r := boxed.Seconds() / kern.Seconds(); r > bestRatio {
			bestRatio = r
		}
	}
	return []ParallelBenchResult{
		{
			Bench:      "ScanFilterBoxed",
			Workers:    workers,
			RowsPerSec: float64(rows) / bestBoxed.Seconds(),
			Cycles:     uint64(bestBoxed.Nanoseconds()),
		},
		{
			Bench:             "ScanFilter",
			Workers:           workers,
			RowsPerSec:        float64(rows) / bestKern.Seconds(),
			Cycles:            uint64(bestKern.Nanoseconds()),
			FilterKernelRatio: bestRatio,
		},
	}, nil
}

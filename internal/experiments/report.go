// Package experiments regenerates every table and figure of the
// paper's evaluation surface: Table 1 (RPC cycles), the §5.1 memory
// claim, Table 2 (Patia constraints under a flash crowd and the
// bandwidth-banded video rule), the Figure 1 adaptation loop, the
// Figure 4/5 ADL switchover, the three Section 4 scenarios, and the
// §2 adaptive-operator comparisons — each as a function returning a
// structured Report with paper-vs-measured rows. cmd/admbench prints
// them; bench_test.go wraps them in testing.B; EXPERIMENTS.md records
// their output.
package experiments

import (
	"fmt"
	"strings"
)

// Row is one reported line: what the paper says vs what we measured.
type Row struct {
	Name     string
	Paper    string
	Measured string
	Note     string
}

// Report is one experiment's output.
type Report struct {
	ID    string // "table1", "figure5", "scenario2", ...
	Title string
	Rows  []Row
}

// Add appends a row.
func (r *Report) Add(name, paper, measured, note string) {
	r.Rows = append(r.Rows, Row{Name: name, Paper: paper, Measured: measured, Note: note})
}

// String renders an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", r.ID, r.Title)
	wName, wPaper, wMeas := len("metric"), len("paper"), len("measured")
	for _, row := range r.Rows {
		wName = maxi(wName, len(row.Name))
		wPaper = maxi(wPaper, len(row.Paper))
		wMeas = maxi(wMeas, len(row.Measured))
	}
	fmt.Fprintf(&b, "%-*s  %-*s  %-*s  %s\n", wName, "metric", wPaper, "paper", wMeas, "measured", "note")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-*s  %-*s  %-*s  %s\n", wName, row.Name, wPaper, row.Paper, wMeas, row.Measured, row.Note)
	}
	return b.String()
}

// Markdown renders the report as a markdown table section.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	b.WriteString("| metric | paper | measured | note |\n|---|---|---|---|\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", row.Name, row.Paper, row.Measured, row.Note)
	}
	return b.String()
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Runner is one named experiment.
type Runner struct {
	ID   string
	Run  func() (*Report, error)
	Desc string
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{ID: "table1", Desc: "RPC cycles: BSD vs Mach vs L4 vs Go!", Run: Table1},
		{ID: "mem", Desc: "§5.1 protection-metadata memory per interface", Run: Memory},
		{ID: "table1-sensitivity", Desc: "Table 1 shape under ±50% cost perturbation", Run: Table1Sensitivity},
		{ID: "figure1", Desc: "adaptation-loop detection→switch latency", Run: Figure1Loop},
		{ID: "figure5", Desc: "ADL docked→wireless switchover", Run: Figure5Switchover},
		{ID: "figure6", Desc: "ORB-mediated invocation (thread migration)", Run: Figure6ORB},
		{ID: "scenario1", Desc: "inter-query adaptation: BEST/NEAREST", Run: Scenario1},
		{ID: "scenario2", Desc: "system adaptation: undock mid-stream", Run: Scenario2},
		{ID: "scenario3", Desc: "intra-query adaptation: join replanning", Run: Scenario3},
		{ID: "table2", Desc: "Patia flash crowd + banded video rule", Run: Table2},
		{ID: "joins", Desc: "adaptive joins vs blocking baseline", Run: AdaptiveJoins},
		{ID: "ripple", Desc: "ripple join online-aggregation trajectory", Run: Ripple},
		{ID: "kendra", Desc: "Kendra codec switching under bandwidth drop", Run: Kendra},
		{ID: "dbmachine", Desc: "§6: getpage via ORB vs monolithic syscall", Run: DBMachine},
		{ID: "failover", Desc: "§1: query jumps to another device mid-flight", Run: Failover},
		{ID: "learning", Desc: "§6 extension: self-tuning switch threshold", Run: Learning},
		{ID: "ablation-trap", Desc: "SISR scan-at-load vs trap-at-run", Run: AblationTrapVsScan},
		{ID: "ablation-grain", Desc: "fine vs thick component grain", Run: AblationGrain},
		{ID: "ablation-gauges", Desc: "gauge aggregation vs raw feeds", Run: AblationGauges},
		{ID: "ablation-tx", Desc: "transactional vs non-transactional rebind", Run: AblationTxRebind},
		{ID: "ablation-eddy", Desc: "eddy routing vs static plan", Run: AblationEddy},
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

package experiments

import (
	"fmt"

	"github.com/adm-project/adm/internal/adapt"
	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/dbmachine"
	"github.com/adm-project/adm/internal/goos"
	"github.com/adm-project/adm/internal/learn"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/session"
	"github.com/adm-project/adm/internal/trace"
)

// DBMachine regenerates the §6 claim in miniature: the DB function's
// getpage, tailored "down to the metal" through the ORB, against the
// same operation crossing a monolithic kernel's syscall boundary.
func DBMachine() (*Report, error) {
	g, err := goos.MeasureGetPage(100)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "dbmachine", Title: "The Database Machine: getpage via ORB vs syscall (100-page scan)"}
	rep.Add("Go! (ORB RPC)", "73 cycles/getpage", fmt.Sprintf("%d cycles total", g.GoCycles),
		fmt.Sprintf("%d cycles each", g.GoCycles/uint64(g.PagesScanned)))
	rep.Add("monolithic (trap)", "-", fmt.Sprintf("%d cycles total", g.SyscallCycles),
		fmt.Sprintf("%d cycles each", g.SyscallCycles/uint64(g.PagesScanned)))
	rep.Add("overhead ratio", ">1", fmt.Sprintf("%.1fx", g.Ratio()),
		"control transfer only; page processing identical")

	// And the upper half of the claim: the DBMS itself as components,
	// the optimiser swapped mid-session without changing answers.
	m, err := dbmachine.New(128, trace.New())
	if err != nil {
		return nil, err
	}
	m.MustExec("CREATE TABLE big (k INT)")
	m.MustExec("CREATE TABLE small (k INT)")
	for i := 0; i < 800; i++ {
		m.MustExec(fmt.Sprintf("INSERT INTO big VALUES (%d)", i%40))
	}
	for i := 0; i < 40; i++ {
		m.MustExec(fmt.Sprintf("INSERT INTO small VALUES (%d)", i))
	}
	m.MustExec("ANALYZE small")
	if err := m.Engine.Catalog().SetStats("big", query.TableStats{Rows: 8, Distinct: map[string]int{"k": 8}}); err != nil {
		return nil, err
	}
	const sql = "SELECT big.k FROM big JOIN small ON big.k = small.k"
	r1, _, err := m.Exec(sql)
	if err != nil {
		return nil, err
	}
	if err := m.SwapOptimiser("conservative"); err != nil {
		return nil, err
	}
	r2, rep2, err := m.Exec(sql)
	if err != nil {
		return nil, err
	}
	rep.Add("optimiser swap mid-session", "plan amended", fmt.Sprintf("replanned=%v", rep2 != nil && rep2.Replanned),
		"cost -> conservative optimiser component rebound")
	rep.Add("results across swap", "identical", fmt.Sprintf("%v (%d rows)", len(r1.Rows) == len(r2.Rows), len(r2.Rows)),
		fmt.Sprintf("%d component-boundary crossings total", m.BoundaryCrossings()))
	return rep, nil
}

// Failover regenerates §1's "units failing mid way through answering
// a query": an aggregation checkpointed by the State Manager jumps
// from a failed device to a replica and finishes exactly.
func Failover() (*Report, error) {
	mk := func() (*query.Engine, error) {
		e := query.NewEngine(query.NewCatalog(128), trace.New(), nil)
		if _, err := e.Exec("CREATE TABLE m (k INT, v FLOAT)"); err != nil {
			return nil, err
		}
		for i := 0; i < 2000; i++ {
			if _, err := e.Exec(fmt.Sprintf("INSERT INTO m VALUES (%d, %d.5)", i, i%50)); err != nil {
				return nil, err
			}
		}
		return e, nil
	}
	devA, err := mk()
	if err != nil {
		return nil, err
	}
	devB, err := mk()
	if err != nil {
		return nil, err
	}
	qa, err := query.NewResumableAgg(devA.Catalog(), "m", "v", nil)
	if err != nil {
		return nil, err
	}
	sm := adapt.NewStateManager(nil, nil)
	const checkpointEvery = 100
	for qa.Position() < 800 { // device A dies at 40%
		qa.Step(checkpointEvery)
		if err := sm.Capture("q", qa); err != nil {
			return nil, err
		}
	}
	qb, err := query.NewResumableAgg(devB.Catalog(), "m", "v", nil)
	if err != nil {
		return nil, err
	}
	if err := sm.Restore("q", qb); err != nil {
		return nil, err
	}
	resumedFrom := qb.Position()
	for !qb.Done() {
		qb.Step(500)
	}
	exact := devB.MustExec("SELECT SUM(v) FROM m").Rows[0][0].Float
	res := qb.Result()
	rep := &Report{ID: "failover", Title: "Query jumps to another device after mid-query failure (§1)"}
	rep.Add("failure point", "mid-query", "row 800 of 2000", "")
	rep.Add("resumed from", "last safe point", fmt.Sprintf("row %d", resumedFrom),
		fmt.Sprintf("checkpoint every %d rows", checkpointEvery))
	rep.Add("work lost", "bounded", fmt.Sprintf("%d rows", 800-resumedFrom), "")
	rep.Add("answer exact", "yes", fmt.Sprintf("%v (SUM=%.1f)", res.Sum == exact, res.Sum),
		"replica checksum verified")
	if res.Sum != exact {
		return nil, fmt.Errorf("failover: sum %v != %v", res.Sum, exact)
	}
	return rep, nil
}

// Learning regenerates the §6 extension: the self-tuning threshold
// cuts adaptation thrash on a flapping signal without missing a
// genuine overload.
func Learning() (*Report, error) {
	run := func(learning bool) (switches int, finalThreshold float64, caught bool, err error) {
		rule := constraint.MustParse("If processor-util > 90 then SWITCH(node1.a, node2.a)")
		var tn *learn.Tuner
		finalThreshold = 90
		if learning {
			tn, err = learn.NewTuner(rule, learn.Config{
				Base: 90, Max: 97, Step: 3, OscillationWindowMS: 600, CalmWindowMS: 3000,
			})
			if err != nil {
				return 0, 0, false, err
			}
		}
		reg := monitor.NewRegistry()
		for _, n := range []string{"node1", "node2"} {
			reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricCapacity, Source: n}, Value: 100})
			reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricLoad, Source: n}, Value: 10})
		}
		now := 0.0
		sm := session.New("learning", reg,
			constraint.NewRuleSet(constraint.PrioritisedRule{ID: 1, Rule: rule}),
			nil, func() float64 { return now },
			func(constraint.Decision, *constraint.PrioritisedRule) error {
				switches++
				if tn != nil {
					tn.ObserveSwitch(now)
				}
				return nil
			})
		sm.SetSelf("node1")
		for ; now < 30_000; now += 200 { // flapping phase
			v := 89.0
			if int(now/200)%2 == 0 {
				v = 93
			}
			reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricProcessorUtil, Source: "node1"}, Value: v, TimeMS: now})
			sm.SetCurrent(nil)
			fired, _ := sm.CheckNow()
			if tn != nil && !fired {
				tn.ObserveQuiet(now)
			}
		}
		before := switches
		for ; now < 31_000; now += 200 { // genuine overload
			reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricProcessorUtil, Source: "node1"}, Value: 99, TimeMS: now})
			sm.SetCurrent(nil)
			_, _ = sm.CheckNow()
		}
		caught = switches > before
		if tn != nil {
			finalThreshold = tn.Threshold()
		}
		return switches, finalThreshold, caught, nil
	}
	staticN, _, staticCaught, err := run(false)
	if err != nil {
		return nil, err
	}
	learnedN, thr, learnedCaught, err := run(true)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "learning", Title: "Self-tuning threshold (learning from previous adaptations, §6)"}
	rep.Add("switches on flapping signal", "fewer when learning",
		fmt.Sprintf("%d -> %d", staticN, learnedN), "static -> learned")
	rep.Add("learned threshold", "rises under thrash", fmt.Sprintf("%.0f%%", thr), "base 90%")
	rep.Add("genuine overload caught", "both", fmt.Sprintf("%v / %v", staticCaught, learnedCaught), "")
	if !learnedCaught || learnedN >= staticN {
		return nil, fmt.Errorf("learning experiment inverted: %d vs %d, caught %v", learnedN, staticN, learnedCaught)
	}
	return rep, nil
}

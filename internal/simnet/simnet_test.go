package simnet

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/adm-project/adm/internal/monitor"
)

func TestClockOrdering(t *testing.T) {
	c := NewClock()
	var got []int
	c.Schedule(30, func() { got = append(got, 3) })
	c.Schedule(10, func() { got = append(got, 1) })
	c.Schedule(20, func() { got = append(got, 2) })
	if n := c.Run(); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("order = %v", got)
	}
	if c.Now() != 30 {
		t.Fatalf("now = %v", c.Now())
	}
}

func TestClockFIFOAtSameTime(t *testing.T) {
	c := NewClock()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(5, func() { got = append(got, i) })
	}
	c.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestClockRunUntil(t *testing.T) {
	c := NewClock()
	ran := 0
	c.Schedule(10, func() { ran++ })
	c.Schedule(50, func() { ran++ })
	n := c.RunUntil(30)
	if n != 1 || ran != 1 {
		t.Fatalf("n=%d ran=%d", n, ran)
	}
	if c.Now() != 30 {
		t.Fatalf("now = %v, want 30 (advances to horizon)", c.Now())
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d", c.Pending())
	}
	c.RunUntil(100)
	if ran != 2 {
		t.Fatal("second event never ran")
	}
}

func TestClockNestedScheduling(t *testing.T) {
	c := NewClock()
	var times []float64
	c.Schedule(10, func() {
		times = append(times, c.Now())
		c.Schedule(5, func() { times = append(times, c.Now()) })
	})
	c.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v", times)
	}
}

func TestClockNegativeDelayClamped(t *testing.T) {
	c := NewClock()
	c.Schedule(10, func() {})
	c.Run()
	fired := false
	c.Schedule(-5, func() { fired = true })
	c.Run()
	if !fired || c.Now() != 10 {
		t.Fatalf("fired=%v now=%v", fired, c.Now())
	}
}

func TestTransferMS(t *testing.T) {
	// 1000 bytes over Ethernet: 1ms latency + 8000 bits / 10000 Kbps = 1.8ms.
	if got := Ethernet.TransferMS(1000); math.Abs(got-1.8) > 1e-9 {
		t.Fatalf("ethernet transfer = %v", got)
	}
	// Same payload over Wireless: 20 + 8000/500 = 36ms.
	if got := Wireless.TransferMS(1000); math.Abs(got-36) > 1e-9 {
		t.Fatalf("wireless transfer = %v", got)
	}
	if got := Down.TransferMS(1); got < 1e17 {
		t.Fatalf("down link transfer = %v, want +inf-ish", got)
	}
}

func newNet(seed int64) (*Network, *Clock) {
	c := NewClock()
	n := New(c, nil, seed)
	n.AddNode("a")
	n.AddNode("b")
	_ = n.SetLink("a", "b", Ethernet)
	return n, c
}

func TestSendDelivers(t *testing.T) {
	n, c := newNet(1)
	var got []Message
	n.OnReceive("b", func(m Message) { got = append(got, m) })
	at, err := n.Send("a", "b", 1000, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(at-1.8) > 1e-9 {
		t.Fatalf("arrival = %v", at)
	}
	c.Run()
	if len(got) != 1 || got[0].Payload != "hello" || got[0].ArrivedAt != at {
		t.Fatalf("got = %+v", got)
	}
}

func TestSendErrors(t *testing.T) {
	n, _ := newNet(1)
	n.AddNode("c")
	if _, err := n.Send("a", "c", 1, nil); !errors.Is(err, ErrNoLink) {
		t.Fatalf("want ErrNoLink, got %v", err)
	}
	_ = n.SetLink("a", "b", Down)
	if _, err := n.Send("a", "b", 1, nil); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("want ErrLinkDown, got %v", err)
	}
	if err := n.SetLink("a", "zzz", Ethernet); !errors.Is(err, ErrNoNode) {
		t.Fatalf("want ErrNoNode, got %v", err)
	}
}

func TestLinkIsBidirectional(t *testing.T) {
	n, c := newNet(1)
	delivered := false
	n.OnReceive("a", func(Message) { delivered = true })
	if _, err := n.Send("b", "a", 10, nil); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if !delivered {
		t.Fatal("reverse direction failed")
	}
}

func TestLinkReplacementMidRun(t *testing.T) {
	n, c := newNet(1)
	var arrivals []float64
	n.OnReceive("b", func(m Message) { arrivals = append(arrivals, m.ArrivedAt) })
	_, _ = n.Send("a", "b", 1000, 1)
	c.Run()
	// Undock: replace with wireless; same payload now takes 36ms.
	_ = n.SetLink("a", "b", LinkProfile{Name: "w", Kbps: 500, LatencyMS: 20})
	start := c.Now()
	_, _ = n.Send("a", "b", 1000, 2)
	c.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if math.Abs((arrivals[1]-start)-36) > 1e-9 {
		t.Fatalf("post-switch transfer = %v", arrivals[1]-start)
	}
}

func TestLossIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int {
		c := NewClock()
		n := New(c, nil, seed)
		n.AddNode("a")
		n.AddNode("b")
		_ = n.SetLink("a", "b", LinkProfile{Kbps: 100, LatencyMS: 1, LossProb: 0.5})
		for i := 0; i < 100; i++ {
			_, _ = n.Send("a", "b", 10, i)
		}
		_, lost, _ := n.Stats()
		return lost
	}
	if run(7) != run(7) {
		t.Fatal("same seed must lose the same messages")
	}
	if run(7) == 0 {
		t.Fatal("50% loss lost nothing in 100 sends")
	}
}

func TestLostMessagesNotDelivered(t *testing.T) {
	c := NewClock()
	n := New(c, nil, 3)
	n.AddNode("a")
	n.AddNode("b")
	_ = n.SetLink("a", "b", LinkProfile{Kbps: 100, LatencyMS: 1, LossProb: 1})
	got := 0
	n.OnReceive("b", func(Message) { got++ })
	for i := 0; i < 10; i++ {
		_, _ = n.Send("a", "b", 10, nil)
	}
	c.Run()
	sent, lost, _ := n.Stats()
	if got != 0 || sent != 10 || lost != 10 {
		t.Fatalf("got=%d sent=%d lost=%d", got, sent, lost)
	}
}

func TestSetLinkPublishesBandwidth(t *testing.T) {
	c := NewClock()
	reg := monitor.NewRegistry()
	n := New(c, reg, 1)
	n.AddNode("Laptop")
	n.AddNode("sensor")
	_ = n.SetLink("sensor", "Laptop", Wireless)
	bw, ok := reg.Metric(monitor.MetricBandwidth, LinkName("sensor", "Laptop"))
	if !ok || bw != 500 {
		t.Fatalf("bandwidth sample = %v %v", bw, ok)
	}
	// Link name is order-independent.
	if LinkName("Laptop", "sensor") != LinkName("sensor", "Laptop") {
		t.Fatal("link name not canonical")
	}
}

// Property: transfer time is monotone in payload size and never below
// latency.
func TestTransferMonotoneProperty(t *testing.T) {
	f := func(b1, b2 uint16, kbpsRaw, latRaw uint8) bool {
		p := LinkProfile{Kbps: 1 + float64(kbpsRaw), LatencyMS: float64(latRaw)}
		t1, t2 := p.TransferMS(int(b1)), p.TransferMS(int(b2))
		if b1 <= b2 && t1 > t2 {
			return false
		}
		return t1 >= p.LatencyMS && t2 >= p.LatencyMS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never runs events out of time order.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		c := NewClock()
		var seen []float64
		for _, d := range delays {
			c.Schedule(float64(d), func() { seen = append(seen, c.Now()) })
		}
		c.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n, c := newNet(1)
	if err := n.Partition("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Send("a", "b", 10, nil); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send across partition: %v", err)
	}
	delivered := false
	n.OnReceive("b", func(Message) { delivered = true })
	if err := n.Heal("a", "b", Ethernet); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Send("a", "b", 10, nil); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if !delivered {
		t.Fatal("healed link did not deliver")
	}
}

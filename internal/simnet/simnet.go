// Package simnet is a discrete-event network simulator: named nodes
// joined by links with bandwidth, latency and loss, supporting
// run-time link replacement (docked Ethernet → wireless) and feeding
// bandwidth monitors. It substitutes for the paper's physical ubicomp
// testbed; the adaptation scenarios only consume link properties and
// connectivity events, which this model exposes through the same
// monitor interfaces a real deployment would.
package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/adm-project/adm/internal/monitor"
)

// Clock is the discrete-event simulation clock shared by the whole
// stack: devices, streams, servers and managers schedule callbacks on
// it and the experiment driver pumps it.
type Clock struct {
	mu    sync.Mutex
	now   float64
	queue eventQueue
	seq   int
}

type event struct {
	at  float64
	seq int
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns current simulation time in milliseconds.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Schedule runs fn at now+delayMS (clamped to now for negative delays).
func (c *Clock) Schedule(delayMS float64, fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if delayMS < 0 {
		delayMS = 0
	}
	heap.Push(&c.queue, &event{at: c.now + delayMS, seq: c.seq, fn: fn})
	c.seq++
}

// Step executes the next event; returns false when the queue is empty.
func (c *Clock) Step() bool {
	c.mu.Lock()
	if c.queue.Len() == 0 {
		c.mu.Unlock()
		return false
	}
	e := heap.Pop(&c.queue).(*event)
	c.now = e.at
	c.mu.Unlock()
	e.fn()
	return true
}

// RunUntil pumps events until the queue is empty or time exceeds
// tMS; returns the number of events executed.
func (c *Clock) RunUntil(tMS float64) int {
	n := 0
	for {
		c.mu.Lock()
		if c.queue.Len() == 0 || c.queue[0].at > tMS {
			if c.now < tMS {
				c.now = tMS
			}
			c.mu.Unlock()
			return n
		}
		e := heap.Pop(&c.queue).(*event)
		c.now = e.at
		c.mu.Unlock()
		e.fn()
		n++
	}
}

// Run pumps until the queue is empty; returns events executed.
func (c *Clock) Run() int {
	n := 0
	for c.Step() {
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queue.Len()
}

// ---------------------------------------------------------------------------
// Links and the network.

// LinkProfile describes one link's service characteristics.
type LinkProfile struct {
	Name      string
	Kbps      float64 // bandwidth
	LatencyMS float64 // one-way propagation delay
	LossProb  float64 // per-message loss probability
}

// Standard profiles for the paper's scenarios.
var (
	// Ethernet is the docked profile: fast, reliable.
	Ethernet = LinkProfile{Name: "ethernet", Kbps: 10000, LatencyMS: 1, LossProb: 0}
	// Wireless is the undocked profile: slow, lossy, higher latency.
	Wireless = LinkProfile{Name: "wireless", Kbps: 500, LatencyMS: 20, LossProb: 0.01}
	// WirelessPoor models the degraded band of Table 2 row 595.
	WirelessPoor = LinkProfile{Name: "wireless-poor", Kbps: 64, LatencyMS: 60, LossProb: 0.05}
	// Down is a severed link.
	Down = LinkProfile{Name: "down", Kbps: 0, LatencyMS: 0, LossProb: 1}
)

// TransferMS returns the time to move `bytes` across the profile
// (latency + serialisation), or +Inf when the link is down.
func (p LinkProfile) TransferMS(bytes int) float64 {
	if p.Kbps <= 0 {
		return inf
	}
	bits := float64(bytes) * 8
	return p.LatencyMS + bits/p.Kbps // bits / (Kbits/s) = ms
}

const inf = 1e18

// Message is a delivered payload.
type Message struct {
	From, To  string
	Payload   any
	Bytes     int
	SentAt    float64
	ArrivedAt float64
}

// Errors returned by the network.
var (
	ErrNoLink   = errors.New("simnet: no link")
	ErrLinkDown = errors.New("simnet: link down")
	ErrNoNode   = errors.New("simnet: unknown node")
)

type linkKey struct{ a, b string }

func keyFor(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Network is the simulated network fabric.
type Network struct {
	mu    sync.Mutex
	clock *Clock
	nodes map[string]bool
	links map[linkKey]LinkProfile
	reg   *monitor.Registry
	rng   *rand.Rand
	sent  int
	lost  int
	bytes int64
	inbox map[string]func(Message)
}

// New creates a network on the given clock, publishing bandwidth
// samples into reg (may be nil). Seed fixes the loss RNG so runs are
// reproducible.
func New(clock *Clock, reg *monitor.Registry, seed int64) *Network {
	return &Network{
		clock: clock,
		nodes: make(map[string]bool),
		links: make(map[linkKey]LinkProfile),
		reg:   reg,
		rng:   rand.New(rand.NewSource(seed)),
		inbox: make(map[string]func(Message)),
	}
}

// Clock returns the network's clock.
func (n *Network) Clock() *Clock { return n.clock }

// AddNode registers a node.
func (n *Network) AddNode(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[name] = true
}

// Nodes lists registered nodes, sorted.
func (n *Network) Nodes() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.nodes))
	for k := range n.nodes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SetLink installs or replaces the (bidirectional) link a—b. This is
// the undocking event of Scenario 2: replacing Ethernet with Wireless
// at run time. The new profile is published to the monitor registry.
func (n *Network) SetLink(a, b string, p LinkProfile) error {
	n.mu.Lock()
	if !n.nodes[a] || !n.nodes[b] {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s—%s", ErrNoNode, a, b)
	}
	n.links[keyFor(a, b)] = p
	reg := n.reg
	now := n.clock.Now()
	n.mu.Unlock()
	if reg != nil {
		reg.Publish(monitor.Sample{
			Key:    monitor.Key{Metric: monitor.MetricBandwidth, Source: linkName(a, b)},
			Value:  p.Kbps,
			TimeMS: now,
		})
		reg.Publish(monitor.Sample{
			Key:    monitor.Key{Metric: monitor.MetricLatency, Source: linkName(a, b)},
			Value:  p.LatencyMS,
			TimeMS: now,
		})
	}
	return nil
}

func linkName(a, b string) string {
	k := keyFor(a, b)
	return k.a + "-" + k.b
}

// LinkName returns the canonical monitor source for the a—b link.
func LinkName(a, b string) string { return linkName(a, b) }

// Link returns the profile of the a—b link.
func (n *Network) Link(a, b string) (LinkProfile, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.links[keyFor(a, b)]
	return p, ok
}

// OnReceive installs the delivery callback for a node.
func (n *Network) OnReceive(node string, fn func(Message)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.inbox[node] = fn
}

// Send schedules delivery of a payload; returns the expected arrival
// time, or an error when no usable link exists. Lost messages consume
// time but never arrive (the sender learns nothing — timeouts are the
// receiver-side protocol's business).
func (n *Network) Send(from, to string, bytes int, payload any) (float64, error) {
	n.mu.Lock()
	p, ok := n.links[keyFor(from, to)]
	if !ok {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: %s—%s", ErrNoLink, from, to)
	}
	if p.Kbps <= 0 {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: %s—%s", ErrLinkDown, from, to)
	}
	n.sent++
	n.bytes += int64(bytes)
	lost := p.LossProb > 0 && n.rng.Float64() < p.LossProb
	if lost {
		n.lost++
	}
	fn := n.inbox[to]
	now := n.clock.Now()
	n.mu.Unlock()

	dt := p.TransferMS(bytes)
	arrival := now + dt
	if !lost && fn != nil {
		msg := Message{From: from, To: to, Payload: payload, Bytes: bytes, SentAt: now, ArrivedAt: arrival}
		n.clock.Schedule(dt, func() { fn(msg) })
	}
	return arrival, nil
}

// Partition severs the a—b link (SetLink with the Down profile): a
// network partition event. Heal restores it.
func (n *Network) Partition(a, b string) error { return n.SetLink(a, b, Down) }

// Heal restores a partitioned link with the given profile.
func (n *Network) Heal(a, b string, p LinkProfile) error { return n.SetLink(a, b, p) }

// Stats reports traffic counters: messages sent, messages lost, and
// total payload bytes offered.
func (n *Network) Stats() (sent, lost int, bytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.lost, n.bytes
}

// Package xmlstream implements the sensor's XML data stream from
// Scenario 2: readings encoded as XML, streamed in chunks with
// periodic safe points ("the original query plan included safe points
// which allow the system to stop streaming at a safe time and
// continue the other version's stream"), and alternative versions —
// full, flate-compressed ("perhaps with associated decompression
// code") and summarised — that the adaptivity machinery switches
// between when bandwidth changes.
package xmlstream

import (
	"bytes"
	"compress/flate"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"math"
)

// Reading is one sensor observation.
type Reading struct {
	XMLName xml.Name `xml:"reading"`
	Seq     int      `xml:"seq,attr"`
	TimeMS  float64  `xml:"t,attr"`
	Sensor  string   `xml:"sensor"`
	Kind    string   `xml:"kind"`
	Value   float64  `xml:"value"`
}

// Generate produces n deterministic readings from the named sensor:
// a diurnal-ish temperature curve with harmonics, so summaries have
// real information to lose.
func Generate(sensor string, n int) []Reading {
	out := make([]Reading, n)
	for i := 0; i < n; i++ {
		t := float64(i) * 100 // one reading per 100ms
		v := 20 +
			5*math.Sin(2*math.Pi*float64(i)/500) +
			1.5*math.Sin(2*math.Pi*float64(i)/47) +
			0.25*math.Sin(2*math.Pi*float64(i)/7)
		out[i] = Reading{Seq: i, TimeMS: t, Sensor: sensor, Kind: "temperature", Value: math.Round(v*1000) / 1000}
	}
	return out
}

// EncodeXML marshals readings as an XML document.
func EncodeXML(rs []Reading) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString("<readings>")
	enc := xml.NewEncoder(&buf)
	for i := range rs {
		if err := enc.Encode(&rs[i]); err != nil {
			return nil, fmt.Errorf("xmlstream: encode seq %d: %w", rs[i].Seq, err)
		}
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	buf.WriteString("</readings>")
	return buf.Bytes(), nil
}

// DecodeXML unmarshals a document produced by EncodeXML.
func DecodeXML(doc []byte) ([]Reading, error) {
	dec := xml.NewDecoder(bytes.NewReader(doc))
	var out []Reading
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlstream: decode: %w", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok || se.Name.Local != "reading" {
			continue
		}
		var r Reading
		if err := dec.DecodeElement(&r, &se); err != nil {
			return nil, fmt.Errorf("xmlstream: decode element: %w", err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Compress deflates a document at the given level (flate levels 1-9).
func Compress(doc []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(doc); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress is the "associated decompression code" shipped with a
// compressed version.
func Decompress(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	return io.ReadAll(r)
}

// Summarise keeps every strideth reading (stride >= 1), producing the
// lower-quality summary version. Quality is reported as 1/stride.
func Summarise(rs []Reading, stride int) ([]Reading, float64) {
	if stride < 1 {
		stride = 1
	}
	var out []Reading
	for i := 0; i < len(rs); i += stride {
		out = append(out, rs[i])
	}
	return out, 1 / float64(stride)
}

// ---------------------------------------------------------------------------
// Chunked streaming with safe points.

// Chunk is one streamed unit. SafePoint marks a consistent switchover
// boundary: a receiver that has chunk k's safe point can resume from
// FirstSeq of chunk k+1 on a different version of the stream.
type Chunk struct {
	Index     int
	FirstSeq  int
	LastSeq   int
	SafePoint bool
	Bytes     []byte
	// Encoding names the version ("full", "compressed", "summary").
	Encoding string
}

// ErrBadResume is returned when a stream is resumed at a non-safe
// sequence.
var ErrBadResume = errors.New("xmlstream: resume point is not a safe point")

// Streamer cuts a reading sequence into chunks of chunkSize readings,
// marking every safePointEvery-th chunk boundary as a safe point, and
// can re-encode the remainder of the stream in a different version
// mid-flight.
type Streamer struct {
	readings       []Reading
	chunkSize      int
	safePointEvery int
	level          int
}

// NewStreamer builds a streamer over readings. chunkSize is readings
// per chunk; every safePointEvery chunks the boundary is safe.
func NewStreamer(readings []Reading, chunkSize, safePointEvery int) *Streamer {
	if chunkSize < 1 {
		chunkSize = 16
	}
	if safePointEvery < 1 {
		safePointEvery = 1
	}
	return &Streamer{readings: readings, chunkSize: chunkSize, safePointEvery: safePointEvery, level: 6}
}

// Total returns the number of readings in the stream.
func (s *Streamer) Total() int { return len(s.readings) }

// ChunkCount returns the number of chunks for the full stream.
func (s *Streamer) ChunkCount() int {
	return (len(s.readings) + s.chunkSize - 1) / s.chunkSize
}

// IsSafeBoundary reports whether resuming at reading seq is safe: seq
// must start a chunk whose preceding boundary is a safe point (or 0).
func (s *Streamer) IsSafeBoundary(seq int) bool {
	if seq == 0 || seq >= len(s.readings) {
		// Nothing before / nothing after the boundary: trivially safe.
		return true
	}
	if seq%s.chunkSize != 0 {
		return false
	}
	chunkIdx := seq / s.chunkSize
	return chunkIdx%s.safePointEvery == 0
}

// Encode produces the chunk sequence for readings[from:], encoded as
// the named version: "full" (XML), "compressed" (XML+flate) or
// "summary:<stride>" (summarised XML). from must be a safe boundary.
func (s *Streamer) Encode(from int, version string) ([]Chunk, error) {
	if !s.IsSafeBoundary(from) {
		return nil, fmt.Errorf("%w: seq %d", ErrBadResume, from)
	}
	var stride int
	base := version
	if n, err := fmt.Sscanf(version, "summary:%d", &stride); n == 1 && err == nil {
		base = "summary"
	}
	var chunks []Chunk
	for start := from; start < len(s.readings); start += s.chunkSize {
		end := start + s.chunkSize
		if end > len(s.readings) {
			end = len(s.readings)
		}
		part := s.readings[start:end]
		if base == "summary" {
			part, _ = Summarise(part, stride)
		}
		doc, err := EncodeXML(part)
		if err != nil {
			return nil, err
		}
		if base == "compressed" {
			doc, err = Compress(doc, s.level)
			if err != nil {
				return nil, err
			}
		}
		idx := start / s.chunkSize
		chunks = append(chunks, Chunk{
			Index:     idx,
			FirstSeq:  start,
			LastSeq:   end - 1,
			SafePoint: (idx+1)%s.safePointEvery == 0 || end == len(s.readings),
			Bytes:     doc,
			Encoding:  base,
		})
	}
	return chunks, nil
}

// DecodeChunk rehydrates one chunk into readings.
func DecodeChunk(c Chunk) ([]Reading, error) {
	doc := c.Bytes
	if c.Encoding == "compressed" {
		var err error
		doc, err = Decompress(doc)
		if err != nil {
			return nil, fmt.Errorf("xmlstream: chunk %d: %w", c.Index, err)
		}
	}
	return DecodeXML(doc)
}

// NextSafeResume returns the first safe resume sequence at or after
// seq (for a receiver that has consumed up to seq-1).
func (s *Streamer) NextSafeResume(seq int) int {
	for q := seq; q <= len(s.readings); q++ {
		if s.IsSafeBoundary(q) {
			return q
		}
	}
	return len(s.readings)
}

// Fidelity quantifies how much information a summary retains: 1 −
// NRMSE of the summary linearly interpolated back onto the full
// sequence's timeline (1 = exact; towards 0 as structure is lost).
// This puts a number on Figure 2's "lower quality versions or
// summaries of the data".
func Fidelity(full, summary []Reading) float64 {
	if len(full) == 0 || len(summary) == 0 {
		return 0
	}
	interp := func(t float64) float64 {
		// summary is time-ordered; find the bracketing pair.
		if t <= summary[0].TimeMS {
			return summary[0].Value
		}
		for i := 1; i < len(summary); i++ {
			if summary[i].TimeMS >= t {
				a, b := summary[i-1], summary[i]
				if b.TimeMS == a.TimeMS {
					return a.Value
				}
				frac := (t - a.TimeMS) / (b.TimeMS - a.TimeMS)
				return a.Value + frac*(b.Value-a.Value)
			}
		}
		return summary[len(summary)-1].Value
	}
	var sqErr float64
	lo, hi := full[0].Value, full[0].Value
	for _, r := range full {
		d := r.Value - interp(r.TimeMS)
		sqErr += d * d
		if r.Value < lo {
			lo = r.Value
		}
		if r.Value > hi {
			hi = r.Value
		}
	}
	rmse := math.Sqrt(sqErr / float64(len(full)))
	span := hi - lo
	if span == 0 {
		if rmse == 0 {
			return 1
		}
		return 0
	}
	f := 1 - rmse/span
	if f < 0 {
		return 0
	}
	return f
}

// SizeOf returns the total wire bytes of a chunk sequence.
func SizeOf(chunks []Chunk) int {
	n := 0
	for _, c := range chunks {
		n += len(c.Bytes)
	}
	return n
}

package xmlstream

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate("s1", 100)
	b := Generate("s1", 100)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
	if a[0].Seq != 0 || a[99].Seq != 99 || a[50].Sensor != "s1" {
		t.Fatalf("fields wrong: %+v", a[0])
	}
}

func TestXMLRoundTrip(t *testing.T) {
	rs := Generate("s", 37)
	doc, err := EncodeXML(rs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeXML(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rs) {
		t.Fatalf("lost readings: %d vs %d", len(back), len(rs))
	}
	for i := range rs {
		if back[i].Seq != rs[i].Seq || back[i].Value != rs[i].Value {
			t.Fatalf("mismatch at %d: %+v vs %+v", i, back[i], rs[i])
		}
	}
}

func TestDecodeXMLGarbage(t *testing.T) {
	if _, err := DecodeXML([]byte("<readings><reading")); err == nil {
		t.Fatal("want error on truncated XML")
	}
}

func TestCompressionShrinksAndRoundTrips(t *testing.T) {
	doc, _ := EncodeXML(Generate("s", 500))
	comp, err := Compress(doc, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(doc) {
		t.Fatalf("compressed %d >= raw %d", len(comp), len(doc))
	}
	if float64(len(comp)) > 0.5*float64(len(doc)) {
		t.Fatalf("XML should compress well, got ratio %.2f", float64(len(comp))/float64(len(doc)))
	}
	back, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(doc) {
		t.Fatal("round trip mismatch")
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, err := Decompress([]byte{0xff, 0x00, 0x12}); err == nil {
		t.Fatal("want error")
	}
}

func TestSummarise(t *testing.T) {
	rs := Generate("s", 100)
	sum, q := Summarise(rs, 4)
	if len(sum) != 25 || q != 0.25 {
		t.Fatalf("len=%d q=%v", len(sum), q)
	}
	if sum[1].Seq != 4 {
		t.Fatalf("stride wrong: %+v", sum[1])
	}
	all, q1 := Summarise(rs, 0) // clamped to 1
	if len(all) != 100 || q1 != 1 {
		t.Fatalf("stride 0: len=%d q=%v", len(all), q1)
	}
}

func TestStreamerChunking(t *testing.T) {
	s := NewStreamer(Generate("s", 100), 16, 2)
	if s.Total() != 100 || s.ChunkCount() != 7 {
		t.Fatalf("total=%d chunks=%d", s.Total(), s.ChunkCount())
	}
	chunks, err := s.Encode(0, "full")
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 7 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	if chunks[0].FirstSeq != 0 || chunks[0].LastSeq != 15 {
		t.Fatalf("chunk0 = %+v", chunks[0])
	}
	if chunks[6].LastSeq != 99 {
		t.Fatalf("last chunk = %+v", chunks[6])
	}
	// Safe points on every 2nd boundary plus the final chunk.
	if chunks[0].SafePoint || !chunks[1].SafePoint || chunks[2].SafePoint || !chunks[6].SafePoint {
		t.Fatalf("safepoints: %v %v %v %v", chunks[0].SafePoint, chunks[1].SafePoint, chunks[2].SafePoint, chunks[6].SafePoint)
	}
}

func TestSafeBoundaries(t *testing.T) {
	s := NewStreamer(Generate("s", 100), 16, 2)
	if !s.IsSafeBoundary(0) {
		t.Fatal("0 must be safe")
	}
	if s.IsSafeBoundary(16) { // chunk 1 boundary, 1%2 != 0
		t.Fatal("16 must not be safe")
	}
	if !s.IsSafeBoundary(32) {
		t.Fatal("32 must be safe")
	}
	if s.IsSafeBoundary(33) {
		t.Fatal("mid-chunk must not be safe")
	}
	if got := s.NextSafeResume(17); got != 32 {
		t.Fatalf("next safe after 17 = %d", got)
	}
	if got := s.NextSafeResume(99); got != 100 {
		t.Fatalf("next safe after 99 = %d", got)
	}
}

func TestEncodeRejectsUnsafeResume(t *testing.T) {
	s := NewStreamer(Generate("s", 100), 16, 2)
	if _, err := s.Encode(16, "full"); !errors.Is(err, ErrBadResume) {
		t.Fatalf("want ErrBadResume, got %v", err)
	}
	if _, err := s.Encode(32, "full"); err != nil {
		t.Fatalf("safe resume refused: %v", err)
	}
}

func TestVersionSwitchAtSafePoint(t *testing.T) {
	// Scenario 2's mechanics: stream full until a safe point, then
	// resume the remainder compressed; the union of decoded readings
	// must be exactly the original sequence.
	readings := Generate("s", 128)
	s := NewStreamer(readings, 16, 2)
	full, err := s.Encode(0, "full")
	if err != nil {
		t.Fatal(err)
	}
	// Receive the first 2 chunks; chunk[1] carries a safe point.
	var got []Reading
	for _, c := range full[:2] {
		rs, err := DecodeChunk(c)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)
	}
	resume := s.NextSafeResume(full[1].LastSeq + 1)
	if resume != 32 {
		t.Fatalf("resume = %d", resume)
	}
	comp, err := s.Encode(resume, "compressed")
	if err != nil {
		t.Fatal(err)
	}
	if SizeOf(comp) >= SizeOf(full[2:]) {
		t.Fatalf("compressed tail %d >= full tail %d", SizeOf(comp), SizeOf(full[2:]))
	}
	for _, c := range comp {
		rs, err := DecodeChunk(c)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)
	}
	if len(got) != len(readings) {
		t.Fatalf("got %d readings, want %d", len(got), len(readings))
	}
	for i := range got {
		if got[i].Seq != i {
			t.Fatalf("gap or duplicate at %d: seq %d", i, got[i].Seq)
		}
	}
}

func TestSummaryEncodeSmaller(t *testing.T) {
	s := NewStreamer(Generate("s", 128), 16, 2)
	full, _ := s.Encode(0, "full")
	sum, err := s.Encode(0, "summary:4")
	if err != nil {
		t.Fatal(err)
	}
	if SizeOf(sum) >= SizeOf(full)/2 {
		t.Fatalf("summary %d not much smaller than full %d", SizeOf(sum), SizeOf(full))
	}
	rs, err := DecodeChunk(sum[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 { // 16-reading chunk, stride 4
		t.Fatalf("summary chunk readings = %d", len(rs))
	}
}

// Property: for any chunk size / safe-point cadence, switching
// versions at any safe point loses and duplicates nothing.
func TestSwitchLosslessProperty(t *testing.T) {
	f := func(nRaw, csRaw, speRaw, cutRaw uint8) bool {
		n := int(nRaw)%150 + 20
		cs := int(csRaw)%20 + 4
		spe := int(speRaw)%4 + 1
		readings := Generate("p", n)
		s := NewStreamer(readings, cs, spe)
		full, err := s.Encode(0, "full")
		if err != nil {
			return false
		}
		cutChunk := int(cutRaw) % len(full)
		var got []Reading
		for _, c := range full[:cutChunk] {
			rs, err := DecodeChunk(c)
			if err != nil {
				return false
			}
			got = append(got, rs...)
		}
		var lastSeq int
		if cutChunk > 0 {
			lastSeq = full[cutChunk-1].LastSeq + 1
		}
		resume := s.NextSafeResume(lastSeq)
		// Drop already-received readings beyond the resume point is
		// impossible (resume >= lastSeq); re-encode the tail.
		tail, err := s.Encode(resume, "compressed")
		if err != nil {
			return false
		}
		// Readings between lastSeq and resume are re-fetched from the
		// old stream in a real system; here we just decode them from
		// the full chunks to complete the sequence.
		for _, c := range full[cutChunk:] {
			if c.FirstSeq >= resume {
				break
			}
			rs, err := DecodeChunk(c)
			if err != nil {
				return false
			}
			got = append(got, rs...)
		}
		for _, c := range tail {
			rs, err := DecodeChunk(c)
			if err != nil {
				return false
			}
			got = append(got, rs...)
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i].Seq != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFidelity(t *testing.T) {
	full := Generate("s", 200)
	exact, _ := Summarise(full, 1)
	if f := Fidelity(full, exact); f != 1 {
		t.Fatalf("identity fidelity = %v", f)
	}
	coarse, _ := Summarise(full, 8)
	fine, _ := Summarise(full, 2)
	fc := Fidelity(full, coarse)
	ff := Fidelity(full, fine)
	if !(fc > 0 && fc < 1) {
		t.Fatalf("coarse fidelity = %v", fc)
	}
	if ff <= fc {
		t.Fatalf("finer summary fidelity %v <= coarser %v", ff, fc)
	}
	if Fidelity(nil, coarse) != 0 || Fidelity(full, nil) != 0 {
		t.Fatal("empty inputs")
	}
	// Flat signal: any summary reproduces it exactly.
	flat := make([]Reading, 10)
	for i := range flat {
		flat[i] = Reading{Seq: i, TimeMS: float64(i), Value: 5}
	}
	flatSum, _ := Summarise(flat, 3)
	if f := Fidelity(flat, flatSum); f != 1 {
		t.Fatalf("flat fidelity = %v", f)
	}
}

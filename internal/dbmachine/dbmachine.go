// Package dbmachine is the paper's thesis made executable: "there is
// no DBMS or OS in this architecture just components and hardware and
// some 'intelligence'". The query-processing path itself — parser,
// optimiser, executor — runs as fine-grained components with concrete
// boundaries in an Assembly, so the optimiser can be unbound and a
// different one rebound *between queries of the same session*, which
// is exactly the wireless-optimiser swap of Scenario 2 ("the wireless
// optimisor must activate and amend the query plan accordingly").
package dbmachine

import (
	"errors"
	"fmt"

	"github.com/adm-project/adm/internal/component"
	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/trace"
)

// Strategy is what an optimiser component hands the executor: the
// knobs of the execution engine rather than a full plan tree (the
// engine's planner applies them; the component boundary is what the
// architecture cares about).
type Strategy struct {
	Name string
	// Adaptive enables mid-query re-optimisation.
	Adaptive bool
	// PreferIndex lets a replan link in an index nested-loop join.
	PreferIndex bool
	// Theta is the misestimate trigger ratio.
	Theta float64
	// CheckEvery is the safe-point cadence.
	CheckEvery int
}

// Standard strategies.
var (
	// CostStrategy is the docked optimiser: trust the statistics.
	CostStrategy = Strategy{Name: "cost", Adaptive: false}
	// ConservativeStrategy is the wireless optimiser: bound memory by
	// replanning aggressively and preferring index paths.
	ConservativeStrategy = Strategy{Name: "conservative", Adaptive: true, PreferIndex: true, Theta: 2, CheckEvery: 32}
)

// Machine is a componentised query processor.
type Machine struct {
	Asm    *component.Assembly
	Engine *query.Engine
	log    *trace.Log
}

// Component and port names (public so tests and ADL descriptions can
// refer to them).
const (
	CompFrontend = "frontend"
	CompParser   = "parser"
	CompExecutor = "executor"
	PortParse    = "parse"
	PortExec     = "exec"
	PortPlan     = "plan"
	SvcParse     = component.Service("sql-parse")
	SvcExec      = component.Service("sql-exec")
	SvcPlan      = component.Service("sql-plan")
)

// ErrNotSelect is returned when Query is given DML (use Exec).
var ErrNotSelect = errors.New("dbmachine: not a SELECT")

// New assembles the machine: frontend → parser, frontend → executor,
// executor → optimiser(initial).
func New(bufferFrames int, log *trace.Log) (*Machine, error) {
	if log == nil {
		log = trace.New()
	}
	eng := query.NewEngine(query.NewCatalog(bufferFrames), log, nil)
	asm := component.NewAssembly(log, nil)
	m := &Machine{Asm: asm, Engine: eng, log: log}

	parser := component.New(CompParser).Provide(PortParse, SvcParse,
		func(req component.Request) (any, error) {
			return query.Parse(req.Op)
		})

	executor := component.New(CompExecutor).
		Require(PortPlan, SvcPlan).
		Provide(PortExec, SvcExec, func(req component.Request) (any, error) {
			stmt := req.Payload.(query.Stmt)
			out, err := asm.Call(CompExecutor, PortPlan, component.Request{Op: "strategy"})
			if err != nil {
				return nil, fmt.Errorf("dbmachine: optimiser unavailable: %w", err)
			}
			strat := out.(Strategy)
			if sel, ok := stmt.(*query.SelectStmt); ok && strat.Adaptive {
				res, rep, err := eng.ExecSelectAdaptive(sel, query.AdaptiveConfig{
					Theta: strat.Theta, CheckEvery: strat.CheckEvery, PreferIndex: strat.PreferIndex,
				})
				if err != nil {
					return nil, err
				}
				return execOutcome{res: res, rep: rep, strat: strat}, nil
			}
			res, err := eng.ExecStmt(stmt)
			if err != nil {
				return nil, err
			}
			return execOutcome{res: res, strat: strat}, nil
		})

	frontend := component.New(CompFrontend).
		Require(PortParse, SvcParse).
		Require(PortExec, SvcExec)

	for _, c := range []*component.Component{parser, executor, frontend} {
		if err := asm.Add(c); err != nil {
			return nil, err
		}
	}
	if err := asm.Bind(CompFrontend, PortParse, CompParser, PortParse); err != nil {
		return nil, err
	}
	if err := asm.Bind(CompFrontend, PortExec, CompExecutor, PortExec); err != nil {
		return nil, err
	}
	// Install both optimiser components; bind the cost one initially.
	for _, s := range []Strategy{CostStrategy, ConservativeStrategy} {
		if err := asm.Add(newOptimiser(s)); err != nil {
			return nil, err
		}
	}
	if err := asm.Bind(CompExecutor, PortPlan, optimiserName(CostStrategy.Name), PortPlan); err != nil {
		return nil, err
	}
	if err := asm.StartAll(); err != nil {
		return nil, err
	}
	return m, nil
}

type execOutcome struct {
	res   *query.Result
	rep   *query.AdaptiveReport
	strat Strategy
}

func optimiserName(strategy string) string { return "optimiser-" + strategy }

func newOptimiser(s Strategy) *component.Component {
	strat := s
	return component.New(optimiserName(s.Name)).
		Provide(PortPlan, SvcPlan, func(component.Request) (any, error) {
			return strat, nil
		})
}

// Optimiser reports which optimiser component is currently bound.
func (m *Machine) Optimiser() string {
	if b, ok := m.Asm.BoundTo(CompExecutor, PortPlan); ok {
		return b.ToComp
	}
	return ""
}

// SwapOptimiser rebinds the executor's plan port to another strategy
// component, with the quiesce→rebind→resume discipline: in-flight
// callers see a clean boundary, never a half-switched one.
func (m *Machine) SwapOptimiser(strategy string) error {
	target := optimiserName(strategy)
	if _, ok := m.Asm.Component(target); !ok {
		return fmt.Errorf("dbmachine: unknown optimiser %q", strategy)
	}
	exec, _ := m.Asm.Component(CompExecutor)
	if err := exec.Quiesce(); err != nil {
		return err
	}
	defer func() { _ = exec.Resume() }()
	if err := m.Asm.Unbind(CompExecutor, PortPlan); err != nil {
		return err
	}
	if err := m.Asm.Bind(CompExecutor, PortPlan, target, PortPlan); err != nil {
		return err
	}
	m.log.Emit(0, trace.KindSwitch, "dbmachine", "optimiser -> %s", target)
	return nil
}

// Exec runs one statement through the component pipeline: frontend →
// parser → executor → (bound) optimiser.
func (m *Machine) Exec(sql string) (*query.Result, *query.AdaptiveReport, error) {
	parsed, err := m.Asm.Call(CompFrontend, PortParse, component.Request{Op: sql})
	if err != nil {
		return nil, nil, err
	}
	out, err := m.Asm.Call(CompFrontend, PortExec, component.Request{Op: sql, Payload: parsed})
	if err != nil {
		return nil, nil, err
	}
	oc := out.(execOutcome)
	return oc.res, oc.rep, nil
}

// MustExec panics on error (fixtures).
func (m *Machine) MustExec(sql string) *query.Result {
	res, _, err := m.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("%s: %v", sql, err))
	}
	return res
}

// BoundaryCrossings reports total inter-component calls served — the
// concrete boundaries the paper insists are "present in a running
// system".
func (m *Machine) BoundaryCrossings() uint64 { return m.Asm.CallHops() }

package dbmachine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/trace"
)

func seeded(t *testing.T) *Machine {
	t.Helper()
	m, err := New(256, trace.New())
	if err != nil {
		t.Fatal(err)
	}
	m.MustExec("CREATE TABLE big (k INT, pad STRING)")
	m.MustExec("CREATE TABLE small (k INT, v INT)")
	for i := 0; i < 1500; i++ {
		m.MustExec(fmt.Sprintf("INSERT INTO big VALUES (%d, 'x')", i%50))
	}
	for i := 0; i < 50; i++ {
		m.MustExec(fmt.Sprintf("INSERT INTO small VALUES (%d, %d)", i, i*2))
	}
	m.MustExec("ANALYZE small")
	// Stale statistics on big, as in Scenario 3.
	if err := m.Engine.Catalog().SetStats("big", query.TableStats{
		Rows: 10, Distinct: map[string]int{"k": 10},
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

const joinSQL = "SELECT big.k, small.v FROM big JOIN small ON big.k = small.k"

func TestPipelineMatchesDirectEngine(t *testing.T) {
	m := seeded(t)
	viaComponents, _, err := m.Exec("SELECT COUNT(*) FROM big")
	if err != nil {
		t.Fatal(err)
	}
	direct := m.Engine.MustExec("SELECT COUNT(*) FROM big")
	if viaComponents.Rows[0][0].Int != direct.Rows[0][0].Int {
		t.Fatalf("component path %v vs direct %v", viaComponents.Rows, direct.Rows)
	}
	if m.BoundaryCrossings() == 0 {
		t.Fatal("no component boundaries crossed")
	}
}

func TestEveryStageIsARealComponent(t *testing.T) {
	m := seeded(t)
	if _, _, err := m.Exec("SELECT COUNT(*) FROM small"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{CompParser, CompExecutor, optimiserName("cost")} {
		c, ok := m.Asm.Component(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if c.Calls() == 0 {
			t.Errorf("%s never invoked — not a concrete boundary", name)
		}
	}
	if errs := m.Asm.Validate(); len(errs) != 0 {
		t.Fatalf("invalid machine: %v", errs)
	}
}

func TestOptimiserSwapChangesBehaviourNotResults(t *testing.T) {
	m := seeded(t)
	if m.Optimiser() != "optimiser-cost" {
		t.Fatalf("initial optimiser = %s", m.Optimiser())
	}
	// Under the cost optimiser: no adaptation, stale stats trusted.
	res1, rep1, err := m.Exec(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if rep1 != nil && rep1.Replanned {
		t.Fatal("cost optimiser must not replan")
	}
	// Swap in the conservative (wireless) optimiser mid-session.
	if err := m.SwapOptimiser("conservative"); err != nil {
		t.Fatal(err)
	}
	if m.Optimiser() != "optimiser-conservative" {
		t.Fatalf("optimiser = %s", m.Optimiser())
	}
	res2, rep2, err := m.Exec(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if rep2 == nil || !rep2.Replanned {
		t.Fatalf("conservative optimiser should replan the misestimated join: %+v", rep2)
	}
	// Same answer either way.
	a := canonical(res1)
	b := canonical(res2)
	if len(a) != len(b) {
		t.Fatalf("row counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: %s vs %s", i, a[i], b[i])
		}
	}
	// Swap back.
	if err := m.SwapOptimiser("cost"); err != nil {
		t.Fatal(err)
	}
	_, rep3, err := m.Exec(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if rep3 != nil && rep3.Replanned {
		t.Fatal("cost optimiser replanned after swap-back")
	}
}

func canonical(r *query.Result) []string {
	var out []string
	for _, row := range r.Rows {
		s := ""
		for _, v := range row {
			s += v.String() + "|"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestSwapUnknownOptimiser(t *testing.T) {
	m := seeded(t)
	if err := m.SwapOptimiser("quantum"); err == nil {
		t.Fatal("want error")
	}
	if m.Optimiser() != "optimiser-cost" {
		t.Fatal("binding disturbed by failed swap")
	}
}

func TestQuiesceWindowRejectsCallsCleanly(t *testing.T) {
	m := seeded(t)
	exec, _ := m.Asm.Component(CompExecutor)
	if err := exec.Quiesce(); err != nil {
		t.Fatal(err)
	}
	_, _, err := m.Exec("SELECT COUNT(*) FROM small")
	if err == nil || !strings.Contains(err.Error(), "quiesced") {
		t.Fatalf("mid-quiesce call: %v", err)
	}
	_ = exec.Resume()
	if _, _, err := m.Exec("SELECT COUNT(*) FROM small"); err != nil {
		t.Fatalf("post-resume call: %v", err)
	}
}

func TestExecSyntaxErrorsSurface(t *testing.T) {
	m := seeded(t)
	if _, _, err := m.Exec("SELEKT porkchops"); err == nil {
		t.Fatal("want parse error through the component boundary")
	}
}

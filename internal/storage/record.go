// Package storage implements the getpage-grained storage substrate
// the paper's fine-grained DBMS decomposes into: slotted pages, a
// buffer manager with pluggable (component-swappable) replacement
// policies, heap files and a B-tree index, in the main-memory-DBMS
// style of Smallbase [16], which the paper cites as the decomposition
// substrate of [28]. The paper's point is that these "lower level
// operations (such as getpage)" are themselves components; the query
// engine consumes them through the same call interfaces the component
// layer can rebind.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ValueKind tags a value in a record.
type ValueKind uint8

// Value kinds.
const (
	KindNull ValueKind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// Value is one typed field.
type Value struct {
	Kind  ValueKind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Convenience constructors.
func NullValue() Value           { return Value{Kind: KindNull} }
func IntValue(v int64) Value     { return Value{Kind: KindInt, Int: v} }
func FloatValue(v float64) Value { return Value{Kind: KindFloat, Float: v} }
func StringValue(v string) Value { return Value{Kind: KindString, Str: v} }
func BoolValue(v bool) Value     { return Value{Kind: KindBool, Bool: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindFloat:
		return fmt.Sprintf("%g", v.Float)
	case KindString:
		return v.Str
	case KindBool:
		return fmt.Sprintf("%t", v.Bool)
	}
	return "?"
}

// AsFloat coerces numeric values for comparisons; NULL and strings
// report !ok.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	case KindBool:
		if v.Bool {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// Compare orders two values: NULLs first, then by numeric or lexical
// order; mixed numeric kinds compare as floats. Returns -1, 0, or 1;
// incomparable kinds (string vs number) order by kind tag.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == b.Kind:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok && bok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Kind == KindString && b.Kind == KindString {
		switch {
		case a.Str < b.Str:
			return -1
		case a.Str > b.Str:
			return 1
		default:
			return 0
		}
	}
	switch {
	case a.Kind < b.Kind:
		return -1
	case a.Kind > b.Kind:
		return 1
	}
	return 0
}

// Equal reports value equality under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Tuple is one record's field list.
type Tuple []Value

// Clone deep-copies a tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// ErrCorruptRecord is returned when a record image fails to decode.
var ErrCorruptRecord = errors.New("storage: corrupt record")

// EncodeTuple serialises a tuple: u16 field count, then per field a
// kind tag and the payload (varints for ints, 8-byte floats, u32-
// prefixed strings).
func EncodeTuple(t Tuple) []byte {
	buf := make([]byte, 0, 16+8*len(t))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(t)))
	for _, v := range t {
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case KindNull:
		case KindInt:
			buf = binary.AppendVarint(buf, v.Int)
		case KindFloat:
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.Float))
		case KindString:
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Str)))
			buf = append(buf, v.Str...)
		case KindBool:
			b := byte(0)
			if v.Bool {
				b = 1
			}
			buf = append(buf, b)
		}
	}
	return buf
}

// DecodeTuple parses a stored record image into its tuple. Versioned
// records decode version-blind: the MVCC header is skipped and the
// payload tuple returned (DecodeRecord surfaces the version).
func DecodeTuple(b []byte) (Tuple, error) {
	b, _, err := recordParts(b)
	if err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(b))
	return decodeFields(make(Tuple, 0, n), b[2:], n)
}

// RecordFields returns the field count of an encoded record (plain or
// versioned) without decoding it — how batch decoders size their
// value arenas.
func RecordFields(b []byte) (int, error) {
	b, _, err := recordParts(b)
	if err != nil {
		return 0, err
	}
	return int(binary.BigEndian.Uint16(b)), nil
}

// DecodeTupleInto appends the record's values to dst and returns the
// extended slice. When dst has capacity for the record's fields the
// decode allocates nothing beyond string payloads — the zero-alloc
// fast path of the vectorized scan. The appended region is the decoded
// tuple; callers typically slice it back out of the returned arena.
func DecodeTupleInto(dst Tuple, b []byte) (Tuple, error) {
	b, _, err := recordParts(b)
	if err != nil {
		return dst, err
	}
	return decodeFields(dst, b[2:], int(binary.BigEndian.Uint16(b)))
}

// decodeFields appends n values parsed from b to out.
func decodeFields(out Tuple, b []byte, n int) (Tuple, error) {
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: truncated at field %d", ErrCorruptRecord, i)
		}
		kind := ValueKind(b[0])
		b = b[1:]
		switch kind {
		case KindNull:
			out = append(out, NullValue())
		case KindInt:
			v, n := binary.Varint(b)
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad varint at field %d", ErrCorruptRecord, i)
			}
			b = b[n:]
			out = append(out, IntValue(v))
		case KindFloat:
			if len(b) < 8 {
				return nil, fmt.Errorf("%w: short float at field %d", ErrCorruptRecord, i)
			}
			out = append(out, FloatValue(math.Float64frombits(binary.BigEndian.Uint64(b))))
			b = b[8:]
		case KindString:
			if len(b) < 4 {
				return nil, fmt.Errorf("%w: short string len at field %d", ErrCorruptRecord, i)
			}
			l := int(binary.BigEndian.Uint32(b))
			b = b[4:]
			if len(b) < l {
				return nil, fmt.Errorf("%w: short string at field %d", ErrCorruptRecord, i)
			}
			out = append(out, StringValue(string(b[:l])))
			b = b[l:]
		case KindBool:
			if len(b) < 1 {
				return nil, fmt.Errorf("%w: short bool at field %d", ErrCorruptRecord, i)
			}
			out = append(out, BoolValue(b[0] != 0))
			b = b[1:]
		default:
			return nil, fmt.Errorf("%w: unknown kind %d at field %d", ErrCorruptRecord, kind, i)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptRecord, len(b))
	}
	return out, nil
}

// Write-ahead log with redo recovery. Records are CRC32-C framed and
// LSN-stamped; Append writes straight through to the DiskFile and the
// Sync policy decides where the fsync barriers land (every record by
// default — a record is acknowledged only once durable). Recovery is
// redo-only physiological replay: each heap mutation logs its page,
// slot and record image, pages carry the LSN of their last logged
// mutation, and replay applies exactly the records a page's LSN says
// it has not seen. Checkpoints are fuzzy: the checkpoint record
// stores the redo position captured *before* the dirty-page flush, so
// mutations racing the flush are replayed (and LSN-skipped where the
// flush already caught them).
//
// Torn tails are the normal crash case: replay stops at the first
// record whose frame is short or fails its CRC and treats everything
// before it as the durable prefix — exactly the contract the
// crash-at-every-boundary tests assert.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// walMagic heads the log; version bumps invalidate old logs.
var walMagic = []byte("ADMWAL01")

const (
	walHeader       = 8  // magic
	recHeaderSize   = 17 // u32 crc | u32 payload len | u64 lsn | u8 type
	maxRecordLen    = 1 << 20
	checkpointExtra = 8 // u64 redo position inside a checkpoint payload
)

// RecordType tags WAL records.
type RecordType uint8

// WAL record types.
const (
	RecInvalid RecordType = iota
	// RecCreateFile registers a heap file: payload = name.
	RecCreateFile
	// RecAllocPage appends a page to a file: payload = name, pageID.
	RecAllocPage
	// RecInsert logs a heap insert: payload = pageID, slot, record image.
	RecInsert
	// RecDelete logs a tombstone: payload = pageID, slot.
	RecDelete
	// RecUpdate logs an in-page rewrite: payload = pageID, oldSlot,
	// newSlot, record image.
	RecUpdate
	// RecCreateIndex registers a B-tree: payload = index name, file
	// name, column.
	RecCreateIndex
	// RecMeta stores an opaque key/value (catalog schemas): payload =
	// key, value.
	RecMeta
	// RecCheckpoint carries the durable metadata snapshot plus the redo
	// position replay resumes from.
	RecCheckpoint
	// RecTxnCommit marks a transaction durable: payload = txn id. Its
	// own LSN is the commit timestamp snapshots order against. The
	// commit table is rebuilt from the full log scan at recovery, so
	// versions whose Xmin has no durable commit record are invisible
	// forever — crash atomicity without undo.
	RecTxnCommit
	// RecTxnAbort records a rolled-back transaction: payload = txn id.
	// Purely informational (rollback undoes physically, and recovery
	// treats any uncommitted id as aborted), but it lets the log tell
	// in-flight from deliberately aborted work.
	RecTxnAbort
)

func (t RecordType) String() string {
	switch t {
	case RecCreateFile:
		return "create-file"
	case RecAllocPage:
		return "alloc-page"
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	case RecUpdate:
		return "update"
	case RecCreateIndex:
		return "create-index"
	case RecMeta:
		return "meta"
	case RecCheckpoint:
		return "checkpoint"
	case RecTxnCommit:
		return "txn-commit"
	case RecTxnAbort:
		return "txn-abort"
	}
	return fmt.Sprintf("record(%d)", uint8(t))
}

// Record is one decoded WAL entry.
type Record struct {
	LSN     uint64
	Type    RecordType
	Payload []byte
	// Off and End are the record's byte extent in the log (End is the
	// offset of the next record) — the boundary coordinates the
	// crash-at-every-point tests truncate at.
	Off, End int64
}

// SyncPolicy controls where Append places fsync barriers.
type SyncPolicy int

// Sync policies.
const (
	// SyncEveryRecord makes every Append a barrier: a returned LSN is
	// durable. The default.
	SyncEveryRecord SyncPolicy = iota
	// SyncManual leaves barriers to explicit Sync calls (group commit;
	// the recovery bench uses it to price the barrier separately).
	SyncManual
)

// ErrWALCorrupt reports a mid-log record that failed validation (torn
// tails are not errors — they end replay).
var ErrWALCorrupt = errors.New("storage: corrupt WAL record")

// WAL is the append-only redo log.
type WAL struct {
	mu      sync.Mutex
	disk    DiskFile
	tail    int64
	nextLSN uint64
	policy  SyncPolicy
	appends uint64
	syncs   uint64
}

// OpenWAL opens (or initialises) a log on disk. For a non-empty log
// the tail and next LSN are discovered by scanning; the scan result is
// also what recovery replays, so Open returns the records.
func OpenWAL(disk DiskFile, policy SyncPolicy) (*WAL, []Record, error) {
	w := &WAL{disk: disk, policy: policy, nextLSN: 1}
	size, err := disk.Size()
	if err != nil {
		return nil, nil, err
	}
	// size < header covers both a fresh file and a crash that tore the
	// magic write itself: either way no record was ever durable, so the
	// log (re)initialises empty.
	if size < walHeader {
		if _, err := disk.WriteAt(walMagic, 0); err != nil {
			return nil, nil, err
		}
		w.tail = walHeader
		return w, nil, nil
	}
	head := make([]byte, walHeader)
	if n, err := disk.ReadAt(head, 0); err != nil || n < walHeader {
		return nil, nil, fmt.Errorf("storage: WAL header unreadable (n=%d): %w", n, err)
	}
	if string(head) != string(walMagic) {
		return nil, nil, fmt.Errorf("storage: bad WAL magic %q", head)
	}
	recs, tail, err := scanRecords(disk, walHeader, size)
	if err != nil {
		return nil, nil, err
	}
	w.tail = tail
	for _, r := range recs {
		if r.LSN >= w.nextLSN {
			w.nextLSN = r.LSN + 1
		}
	}
	return w, recs, nil
}

// scanRecords reads records from off until the first torn/corrupt
// frame or end of file, returning them and the valid tail offset.
func scanRecords(disk DiskFile, off, size int64) ([]Record, int64, error) {
	var out []Record
	hdr := make([]byte, recHeaderSize)
	for off+recHeaderSize <= size {
		if n, err := disk.ReadAt(hdr, off); err != nil {
			return nil, 0, err
		} else if n < recHeaderSize {
			break // torn header: end of durable prefix
		}
		wantCRC := binary.BigEndian.Uint32(hdr[0:4])
		plen := int64(binary.BigEndian.Uint32(hdr[4:8]))
		lsn := binary.BigEndian.Uint64(hdr[8:16])
		typ := RecordType(hdr[16])
		if plen > maxRecordLen || typ == RecInvalid || off+recHeaderSize+plen > size {
			break // implausible frame or payload past EOF: torn tail
		}
		payload := make([]byte, plen)
		if plen > 0 {
			if n, err := disk.ReadAt(payload, off+recHeaderSize); err != nil {
				return nil, 0, err
			} else if int64(n) < plen {
				break
			}
		}
		crc := crc32.Checksum(hdr[4:], castagnoli)
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != wantCRC {
			break // torn or flipped record: durable prefix ends here
		}
		out = append(out, Record{
			LSN: lsn, Type: typ, Payload: payload,
			Off: off, End: off + recHeaderSize + plen,
		})
		off += recHeaderSize + plen
	}
	return out, off, nil
}

// Append frames, writes and (policy permitting) syncs one record,
// returning its LSN. The returned LSN is durable iff the policy is
// SyncEveryRecord or a later Sync succeeds.
func (w *WAL) Append(typ RecordType, payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	lsn := w.nextLSN
	frame := make([]byte, recHeaderSize+len(payload))
	binary.BigEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint64(frame[8:16], lsn)
	frame[16] = byte(typ)
	copy(frame[recHeaderSize:], payload)
	crc := crc32.Checksum(frame[4:], castagnoli)
	binary.BigEndian.PutUint32(frame[0:4], crc)
	n, err := w.disk.WriteAt(frame, w.tail)
	if err != nil {
		return 0, err
	}
	if n != len(frame) {
		return 0, fmt.Errorf("%w: WAL record at %d: %d of %d bytes", ErrShortWrite, w.tail, n, len(frame))
	}
	if w.policy == SyncEveryRecord {
		//admvet:allow latchorder the serialised append+fsync under w.mu is the SyncEveryRecord durability contract
		if err := w.disk.Sync(); err != nil {
			return 0, err
		}
		w.syncs++
	}
	w.nextLSN++
	w.tail += int64(len(frame))
	w.appends++
	return lsn, nil
}

// Sync places an explicit barrier (SyncManual group commit).
func (w *WAL) Sync() error {
	// The fsync runs OUTSIDE w.mu: group commit depends on appends
	// (other sessions' in-flight transactions) proceeding while the
	// leader's barrier is on the disk, or every commit degenerates to
	// a private fsync. A write that lands after the fsync started is
	// simply not covered — it belongs to a later batch, and that
	// batch's own barrier follows its commit records.
	if err := w.disk.Sync(); err != nil {
		return err
	}
	w.mu.Lock()
	w.syncs++
	w.mu.Unlock()
	return nil
}

// Tail returns the offset one past the last durable record — the redo
// position a fuzzy checkpoint captures before flushing.
func (w *WAL) Tail() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tail
}

// Stats returns cumulative (records appended, sync barriers, tail
// bytes).
func (w *WAL) Stats() (appends, syncs uint64, tailBytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends, w.syncs, w.tail
}

// ---------------------------------------------------------------------------
// Payload codecs. All integers big-endian; strings u16-prefixed.

func putString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func getString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("%w: short string header", ErrWALCorrupt)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, fmt.Errorf("%w: short string", ErrWALCorrupt)
	}
	return string(b[:n]), b[n:], nil
}

func putBytes(b, p []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func getBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%w: short bytes header", ErrWALCorrupt)
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return nil, nil, fmt.Errorf("%w: short bytes", ErrWALCorrupt)
	}
	return b[:n], b[n:], nil
}

func encodeCreateFile(name string) []byte { return putString(nil, name) }

func decodeCreateFile(p []byte) (string, error) {
	name, rest, err := getString(p)
	if err != nil || len(rest) != 0 {
		return "", fmt.Errorf("%w: create-file payload", ErrWALCorrupt)
	}
	return name, nil
}

func encodeAllocPage(name string, id PageID) []byte {
	b := putString(nil, name)
	return binary.BigEndian.AppendUint32(b, uint32(id))
}

func decodeAllocPage(p []byte) (string, PageID, error) {
	name, rest, err := getString(p)
	if err != nil || len(rest) != 4 {
		return "", 0, fmt.Errorf("%w: alloc-page payload", ErrWALCorrupt)
	}
	return name, PageID(binary.BigEndian.Uint32(rest)), nil
}

func encodeInsert(id PageID, slot int, rec []byte) []byte {
	b := binary.BigEndian.AppendUint32(nil, uint32(id))
	b = binary.BigEndian.AppendUint16(b, uint16(slot))
	return putBytes(b, rec)
}

func decodeInsert(p []byte) (PageID, int, []byte, error) {
	if len(p) < 6 {
		return 0, 0, nil, fmt.Errorf("%w: insert payload", ErrWALCorrupt)
	}
	id := PageID(binary.BigEndian.Uint32(p))
	slot := int(binary.BigEndian.Uint16(p[4:]))
	rec, rest, err := getBytes(p[6:])
	if err != nil || len(rest) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: insert payload", ErrWALCorrupt)
	}
	return id, slot, rec, nil
}

func encodeDelete(id PageID, slot int) []byte {
	b := binary.BigEndian.AppendUint32(nil, uint32(id))
	return binary.BigEndian.AppendUint16(b, uint16(slot))
}

func decodeDelete(p []byte) (PageID, int, error) {
	if len(p) != 6 {
		return 0, 0, fmt.Errorf("%w: delete payload", ErrWALCorrupt)
	}
	return PageID(binary.BigEndian.Uint32(p)), int(binary.BigEndian.Uint16(p[4:])), nil
}

func encodeUpdate(id PageID, oldSlot, newSlot int, rec []byte) []byte {
	b := binary.BigEndian.AppendUint32(nil, uint32(id))
	b = binary.BigEndian.AppendUint16(b, uint16(oldSlot))
	b = binary.BigEndian.AppendUint16(b, uint16(newSlot))
	return putBytes(b, rec)
}

func decodeUpdate(p []byte) (id PageID, oldSlot, newSlot int, rec []byte, err error) {
	if len(p) < 8 {
		return 0, 0, 0, nil, fmt.Errorf("%w: update payload", ErrWALCorrupt)
	}
	id = PageID(binary.BigEndian.Uint32(p))
	oldSlot = int(binary.BigEndian.Uint16(p[4:]))
	newSlot = int(binary.BigEndian.Uint16(p[6:]))
	rec, rest, err := getBytes(p[8:])
	if err != nil || len(rest) != 0 {
		return 0, 0, 0, nil, fmt.Errorf("%w: update payload", ErrWALCorrupt)
	}
	return id, oldSlot, newSlot, rec, nil
}

func encodeCreateIndex(name, file string, col int) []byte {
	b := putString(nil, name)
	b = putString(b, file)
	return binary.BigEndian.AppendUint16(b, uint16(col))
}

func decodeCreateIndex(p []byte) (name, file string, col int, err error) {
	name, p, err = getString(p)
	if err != nil {
		return "", "", 0, err
	}
	file, p, err = getString(p)
	if err != nil || len(p) != 2 {
		return "", "", 0, fmt.Errorf("%w: create-index payload", ErrWALCorrupt)
	}
	return name, file, int(binary.BigEndian.Uint16(p)), nil
}

func encodeTxn(id uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, id)
}

func decodeTxn(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: txn payload", ErrWALCorrupt)
	}
	return binary.BigEndian.Uint64(p), nil
}

func encodeMeta(key, value string) []byte {
	return putString(putString(nil, key), value)
}

func decodeMeta(p []byte) (key, value string, err error) {
	key, p, err = getString(p)
	if err != nil {
		return "", "", err
	}
	value, p, err = getString(p)
	if err != nil || len(p) != 0 {
		return "", "", fmt.Errorf("%w: meta payload", ErrWALCorrupt)
	}
	return key, value, nil
}

// checkpointImage is the metadata snapshot a checkpoint record
// carries: everything recovery needs besides page contents.
type checkpointImage struct {
	redoPos  int64
	nextPage PageID
	files    []checkpointFile
	indexes  []IndexDef
	meta     map[string]string
}

type checkpointFile struct {
	name  string
	pages []PageID
}

func encodeCheckpoint(img checkpointImage) []byte {
	b := binary.BigEndian.AppendUint64(nil, uint64(img.redoPos))
	b = binary.BigEndian.AppendUint32(b, uint32(img.nextPage))
	b = binary.BigEndian.AppendUint32(b, uint32(len(img.files)))
	for _, f := range img.files {
		b = putString(b, f.name)
		b = binary.BigEndian.AppendUint32(b, uint32(len(f.pages)))
		for _, id := range f.pages {
			b = binary.BigEndian.AppendUint32(b, uint32(id))
		}
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(img.indexes)))
	for _, ix := range img.indexes {
		b = putString(b, ix.Name)
		b = putString(b, ix.File)
		b = binary.BigEndian.AppendUint16(b, uint16(ix.Col))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(img.meta)))
	for _, k := range sortedKeys(img.meta) {
		b = putString(b, k)
		b = putString(b, img.meta[k])
	}
	return b
}

func decodeCheckpoint(p []byte) (checkpointImage, error) {
	var img checkpointImage
	bad := func() (checkpointImage, error) {
		return img, fmt.Errorf("%w: checkpoint payload", ErrWALCorrupt)
	}
	if len(p) < checkpointExtra+4+4 {
		return bad()
	}
	img.redoPos = int64(binary.BigEndian.Uint64(p))
	img.nextPage = PageID(binary.BigEndian.Uint32(p[8:]))
	p = p[12:]
	nf := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	for i := 0; i < nf; i++ {
		name, rest, err := getString(p)
		if err != nil || len(rest) < 4 {
			return bad()
		}
		np := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) < 4*np {
			return bad()
		}
		f := checkpointFile{name: name, pages: make([]PageID, np)}
		for j := 0; j < np; j++ {
			f.pages[j] = PageID(binary.BigEndian.Uint32(rest[4*j:]))
		}
		img.files = append(img.files, f)
		p = rest[4*np:]
	}
	if len(p) < 4 {
		return bad()
	}
	ni := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	for i := 0; i < ni; i++ {
		name, rest, err := getString(p)
		if err != nil {
			return bad()
		}
		file, rest, err := getString(rest)
		if err != nil || len(rest) < 2 {
			return bad()
		}
		img.indexes = append(img.indexes, IndexDef{
			Name: name, File: file, Col: int(binary.BigEndian.Uint16(rest)),
		})
		p = rest[2:]
	}
	if len(p) < 4 {
		return bad()
	}
	nm := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	img.meta = map[string]string{}
	for i := 0; i < nm; i++ {
		k, rest, err := getString(p)
		if err != nil {
			return bad()
		}
		v, rest, err := getString(rest)
		if err != nil {
			return bad()
		}
		img.meta[k] = v
		p = rest
	}
	if len(p) != 0 {
		return bad()
	}
	return img, nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort: meta maps are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package storage

import (
	"errors"
	"sync"
	"testing"
)

// TestBufferShardCount pins the capacity->shard sizing: small pools
// stay single-shard (so eviction-order tests and tiny caches keep
// strict global LRU/Clock behaviour), large pools fan out to at most
// bufferShardMax shards of at least bufferShardMinFrames frames.
func TestBufferShardCount(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{1, 1}, {32, 1}, {63, 1}, {64, 2}, {128, 4}, {256, 8}, {512, 16},
		{4096, 16}, {100000, 16},
	}
	for _, c := range cases {
		if got := bufferShardCount(c.capacity); got != c.want {
			t.Errorf("bufferShardCount(%d) = %d, want %d", c.capacity, got, c.want)
		}
		bm := NewBufferManager(NewStore(), c.capacity, NewLRU())
		if got := bm.ShardCount(); got != c.want {
			t.Errorf("ShardCount(cap=%d) = %d, want %d", c.capacity, got, c.want)
		}
	}
}

// TestBufferShardedEvictionCapacity: a sharded pool must never hold
// more resident pages than its total capacity, and page data must
// survive eviction round-trips.
func TestBufferShardedEvictionCapacity(t *testing.T) {
	store := NewStore()
	bm := NewBufferManager(store, 128, NewLRU()) // 4 shards x 32 frames
	var ids []PageID
	for i := 0; i < 400; i++ {
		id := store.Allocate()
		ids = append(ids, id)
		p, err := bm.GetPage(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Insert(EncodeTuple(Tuple{IntValue(int64(i))})); err != nil {
			t.Fatal(err)
		}
		bm.Unpin(id)
	}
	if r := bm.Resident(); r > 128 {
		t.Fatalf("resident %d exceeds capacity 128", r)
	}
	for i, id := range ids {
		p, err := bm.GetPage(id)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := p.Tuples()
		if err != nil || len(ts) != 1 || ts[0][0].Int != int64(i) {
			t.Fatalf("page %d round-trip: %v %v", id, ts, err)
		}
		bm.Unpin(id)
	}
	st := bm.Stats()
	if st.Hits+st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
}

// TestBufferManagerShardedRace hammers the sharded buffer manager from
// many goroutines — GetPage/Unpin across all shards, policy swaps
// mid-flight, and stat reads — to let the race detector check the
// per-shard locking and the lock-free counters. Invariant checked at
// the end: every access was counted exactly once as hit or miss.
func TestBufferManagerShardedRace(t *testing.T) {
	store := NewStore()
	var ids []PageID
	for i := 0; i < 512; i++ {
		ids = append(ids, store.Allocate())
	}
	bm := NewBufferManager(store, 256, NewLRU()) // 8 shards
	const (
		workers = 8
		rounds  = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := ids[(i*13+w*97)%len(ids)]
				p, err := bm.GetPage(id)
				if err != nil {
					// A shard can transiently fill with pinned frames.
					if errors.Is(err, ErrAllPinned) {
						continue
					}
					t.Error(err)
					return
				}
				p.FreeSpace() // touch the page under pin
				bm.Unpin(id)
			}
		}(w)
	}
	wg.Add(2)
	go func() { // policy swapper
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if i%2 == 0 {
				bm.SwapPolicy(NewClock())
			} else {
				bm.SwapPolicy(NewLRU())
			}
		}
	}()
	go func() { // stats reader (the monitor's gauge path)
		defer wg.Done()
		for i := 0; i < 500; i++ {
			st := bm.Stats()
			_ = st.HitRate()
			_ = bm.Resident()
			_ = bm.Policy()
		}
	}()
	wg.Wait()
	st := bm.Stats()
	if st.Hits+st.Misses > uint64(workers*rounds) {
		t.Fatalf("counted %d accesses, only %d issued", st.Hits+st.Misses, workers*rounds)
	}
	if st.Misses == 0 {
		t.Fatal("expected cold misses")
	}
}

package storage

import (
	"fmt"
	"sync"
)

// btreeOrder is the max children per internal node / max entries per
// leaf.
const btreeOrder = 64

// BTree is an in-memory B+-tree index mapping Values to RID postings.
// Deletion is lazy (postings are removed; structural underflow is
// tolerated), the common choice for main-memory indexes where
// rebalancing buys little.
type BTree struct {
	mu    sync.RWMutex
	name  string
	root  *btNode
	size  int // live (key,rid) postings
	depth int
}

type btNode struct {
	leaf     bool
	keys     []Value
	children []*btNode // internal: len(keys)+1
	rids     [][]RID   // leaf: parallel to keys
	next     *btNode   // leaf chain for range scans
}

// NewBTree returns an empty index.
func NewBTree(name string) *BTree {
	return &BTree{name: name, root: &btNode{leaf: true}, depth: 1}
}

// Name returns the index name.
func (t *BTree) Name() string { return t.name }

// Len returns the number of (key,rid) postings.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Depth returns the tree height.
func (t *BTree) Depth() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.depth
}

// Insert adds a posting.
func (t *BTree) Insert(key Value, rid RID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	midKey, right := t.insert(t.root, key, rid)
	if right != nil {
		t.root = &btNode{
			keys:     []Value{midKey},
			children: []*btNode{t.root, right},
		}
		t.depth++
	}
	t.size++
}

// insert returns a promoted (key, rightSibling) when node splits.
func (t *BTree) insert(n *btNode, key Value, rid RID) (Value, *btNode) {
	if n.leaf {
		i := lowerBound(n.keys, key)
		if i < len(n.keys) && Equal(n.keys[i], key) {
			n.rids[i] = append(n.rids[i], rid)
			return Value{}, nil
		}
		n.keys = append(n.keys, Value{})
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.rids = append(n.rids, nil)
		copy(n.rids[i+1:], n.rids[i:])
		n.rids[i] = []RID{rid}
		if len(n.keys) < btreeOrder {
			return Value{}, nil
		}
		return t.splitLeaf(n)
	}
	i := upperBound(n.keys, key)
	midKey, right := t.insert(n.children[i], key, rid)
	if right == nil {
		return Value{}, nil
	}
	n.keys = append(n.keys, Value{})
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = midKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.children) <= btreeOrder {
		return Value{}, nil
	}
	return t.splitInternal(n)
}

func (t *BTree) splitLeaf(n *btNode) (Value, *btNode) {
	mid := len(n.keys) / 2
	right := &btNode{
		leaf: true,
		keys: append([]Value(nil), n.keys[mid:]...),
		rids: append([][]RID(nil), n.rids[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.rids = n.rids[:mid]
	n.next = right
	return right.keys[0], right
}

func (t *BTree) splitInternal(n *btNode) (Value, *btNode) {
	mid := len(n.keys) / 2
	midKey := n.keys[mid]
	right := &btNode{
		keys:     append([]Value(nil), n.keys[mid+1:]...),
		children: append([]*btNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return midKey, right
}

// lowerBound returns the first index with keys[i] >= key.
func lowerBound(keys []Value, key Value) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the child index to descend for key.
func upperBound(keys []Value, key Value) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Search returns the postings for key (nil if absent).
func (t *BTree) Search(key Value) []RID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[upperBound(n.keys, key)]
	}
	i := lowerBound(n.keys, key)
	if i < len(n.keys) && Equal(n.keys[i], key) {
		return append([]RID(nil), n.rids[i]...)
	}
	return nil
}

// Range calls fn for every posting with lo <= key <= hi, in key
// order; fn returning false stops the scan.
func (t *BTree) Range(lo, hi Value, fn func(key Value, rid RID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[upperBound(n.keys, lo)]
	}
	// lowerBound may land us mid-leaf; walk the leaf chain.
	for n != nil {
		for i := range n.keys {
			if Compare(n.keys[i], lo) < 0 {
				continue
			}
			if Compare(n.keys[i], hi) > 0 {
				return
			}
			for _, rid := range n.rids[i] {
				if !fn(n.keys[i], rid) {
					return
				}
			}
		}
		n = n.next
	}
}

// Delete removes one posting (key,rid); returns whether it existed.
func (t *BTree) Delete(key Value, rid RID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for !n.leaf {
		n = n.children[upperBound(n.keys, key)]
	}
	i := lowerBound(n.keys, key)
	if i >= len(n.keys) || !Equal(n.keys[i], key) {
		return false
	}
	for j, r := range n.rids[i] {
		if r == rid {
			n.rids[i] = append(n.rids[i][:j], n.rids[i][j+1:]...)
			t.size--
			if len(n.rids[i]) == 0 {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.rids = append(n.rids[:i], n.rids[i+1:]...)
			}
			return true
		}
	}
	return false
}

// Keys returns all distinct keys in order (diagnostics).
func (t *BTree) Keys() []Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	var out []Value
	for n != nil {
		out = append(out, n.keys...)
		n = n.next
	}
	return out
}

// Validate checks structural invariants (test hook): key order within
// and across leaves, and size consistency.
func (t *BTree) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	keys := []Value{}
	count := 0
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		for i := range n.keys {
			keys = append(keys, n.keys[i])
			count += len(n.rids[i])
			if len(n.rids[i]) == 0 {
				return fmt.Errorf("btree %s: empty posting list", t.name)
			}
		}
		n = n.next
	}
	for i := 1; i < len(keys); i++ {
		if Compare(keys[i-1], keys[i]) >= 0 {
			return fmt.Errorf("btree %s: keys out of order at %d", t.name, i)
		}
	}
	if count != t.size {
		return fmt.Errorf("btree %s: size %d != counted %d", t.name, t.size, count)
	}
	return nil
}

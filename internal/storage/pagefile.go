// PageFile: fixed-frame page persistence with per-frame checksums.
// Each frame is the page image followed by its LSN and a CRC32-C over
// both, so a torn or bit-flipped frame is detected at read time and
// quarantined instead of silently served — the checkpoint target the
// WAL's redo pass recovers against.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// pageFileMagic heads the page file; version bumps invalidate old
// images.
var pageFileMagic = []byte("ADMPG001")

const (
	pageFileHeader = 8                       // magic
	frameTrailer   = 12                      // u64 LSN + u32 CRC
	frameSize      = PageSize + frameTrailer // one on-disk frame
	framePayload   = PageSize + 8            // bytes covered by the CRC
)

// castagnoli is the CRC32-C table used for page frames and WAL
// records (hardware-accelerated on common platforms).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Page-file errors.
var (
	// ErrChecksum reports a frame whose stored CRC does not match its
	// contents — a torn write or bit rot.
	ErrChecksum = errors.New("storage: page checksum mismatch")
	// ErrNoFrame reports a frame that has never been written.
	ErrNoFrame = errors.New("storage: page frame not in page file")
)

// PageFile persists page images over a DiskFile, one fixed-size frame
// per PageID. It is safe for concurrent use to the extent the
// underlying DiskFile is; the DB serialises checkpoint writes anyway.
type PageFile struct {
	disk DiskFile
}

// OpenPageFile validates or writes the header and returns the file.
func OpenPageFile(disk DiskFile) (*PageFile, error) {
	size, err := disk.Size()
	if err != nil {
		return nil, err
	}
	// size < header means fresh, or a crash tore the magic write; no
	// frame can exist either way, so reinitialise.
	if size < pageFileHeader {
		if _, err := disk.WriteAt(pageFileMagic, 0); err != nil {
			return nil, err
		}
		return &PageFile{disk: disk}, nil
	}
	head := make([]byte, pageFileHeader)
	if n, err := disk.ReadAt(head, 0); err != nil || n < pageFileHeader {
		return nil, fmt.Errorf("storage: page file header unreadable (n=%d): %w", n, err)
	}
	if string(head) != string(pageFileMagic) {
		return nil, fmt.Errorf("storage: bad page file magic %q", head)
	}
	return &PageFile{disk: disk}, nil
}

func frameOffset(id PageID) int64 {
	return pageFileHeader + int64(id)*frameSize
}

// WritePage persists one page image with its LSN and checksum. The
// caller supplies a stable snapshot of the page bytes (copied under
// the page latch).
func (f *PageFile) WritePage(id PageID, img []byte, lsn uint64) error {
	if len(img) != PageSize {
		return fmt.Errorf("storage: page image is %d bytes, want %d", len(img), PageSize)
	}
	frame := make([]byte, frameSize)
	copy(frame, img)
	binary.BigEndian.PutUint64(frame[PageSize:], lsn)
	sum := crc32.Checksum(frame[:framePayload], castagnoli)
	binary.BigEndian.PutUint32(frame[framePayload:], sum)
	if n, err := f.disk.WriteAt(frame, frameOffset(id)); err != nil {
		return err
	} else if n != frameSize {
		return fmt.Errorf("%w: frame %d: %d of %d bytes", ErrShortWrite, id, n, frameSize)
	}
	return nil
}

// ReadPage loads one frame, verifying its checksum. ErrNoFrame means
// the frame was never written (the page predates any checkpoint);
// ErrChecksum means the frame exists but is corrupt.
func (f *PageFile) ReadPage(id PageID) ([]byte, uint64, error) {
	frame := make([]byte, frameSize)
	n, err := f.disk.ReadAt(frame, frameOffset(id))
	if err != nil {
		return nil, 0, err
	}
	if n == 0 {
		return nil, 0, fmt.Errorf("%w: %d", ErrNoFrame, id)
	}
	if n < frameSize {
		return nil, 0, fmt.Errorf("%w: frame %d truncated at %d bytes", ErrChecksum, id, n)
	}
	want := binary.BigEndian.Uint32(frame[framePayload:])
	if got := crc32.Checksum(frame[:framePayload], castagnoli); got != want {
		return nil, 0, fmt.Errorf("%w: frame %d: crc %08x, want %08x", ErrChecksum, id, got, want)
	}
	lsn := binary.BigEndian.Uint64(frame[PageSize:])
	return frame[:PageSize], lsn, nil
}

// FrameLSN returns the stored LSN and CRC of a frame without
// verifying page contents (the buffer-pool verifier's fast path reads
// only the trailer).
func (f *PageFile) FrameLSN(id PageID) (lsn uint64, crc uint32, err error) {
	trailer := make([]byte, frameTrailer)
	n, err := f.disk.ReadAt(trailer, frameOffset(id)+PageSize)
	if err != nil {
		return 0, 0, err
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("%w: %d", ErrNoFrame, id)
	}
	if n < frameTrailer {
		return 0, 0, fmt.Errorf("%w: frame %d trailer truncated", ErrChecksum, id)
	}
	return binary.BigEndian.Uint64(trailer), binary.BigEndian.Uint32(trailer[8:]), nil
}

// Sync flushes the page file (the checkpoint's data barrier).
func (f *PageFile) Sync() error { return f.disk.Sync() }

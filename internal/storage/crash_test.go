// Crash-recovery tests: a deterministic workload is run against a DB
// over in-memory disks, the disks are snapshotted and truncated at
// every WAL record boundary (and at mid-record byte offsets), and the
// engine is reopened from the surviving bytes. The oracle is the
// workload's own shadow model: at op boundaries the recovered state
// must be byte-identical to the model; inside an op only the op's own
// key may differ, and only between its before/after versions.
package storage

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// wlOp is one step of the crash workload.
type wlOp struct {
	kind string // create | insert | delete | update | index | meta | checkpoint
	key  int64
	tup  Tuple
}

func wlTuple(key int64, rev int) Tuple {
	// ~200-byte payload so the workload spans several pages; rev makes
	// updated versions distinguishable byte-for-byte.
	pay := strings.Repeat(fmt.Sprintf("k%drev%d.", key, rev), 20)
	return Tuple{IntValue(key), StringValue(pay)}
}

// crashWorkload is the fixed op sequence every crash test replays.
func crashWorkload() []wlOp {
	ops := []wlOp{{kind: "create"}}
	for i := int64(0); i < 30; i++ {
		ops = append(ops, wlOp{kind: "insert", key: i, tup: wlTuple(i, 0)})
	}
	ops = append(ops, wlOp{kind: "checkpoint"})
	for _, k := range []int64{2, 11, 17} {
		ops = append(ops, wlOp{kind: "delete", key: k})
	}
	for _, k := range []int64{5, 13, 28} {
		ops = append(ops, wlOp{kind: "update", key: k, tup: wlTuple(k, 1)})
	}
	ops = append(ops, wlOp{kind: "index"}, wlOp{kind: "meta"})
	for i := int64(30); i < 40; i++ {
		ops = append(ops, wlOp{kind: "insert", key: i, tup: wlTuple(i, 0)})
	}
	ops = append(ops, wlOp{kind: "checkpoint"})
	for i := int64(40); i < 43; i++ {
		ops = append(ops, wlOp{kind: "insert", key: i, tup: wlTuple(i, 0)})
	}
	return ops
}

// wlState is the shadow model: acknowledged rows (encoded) keyed by
// column 0, plus the RIDs the live run needs to address them.
type wlState struct {
	rows map[int64][]byte
	rids map[int64]RID
}

func newWLState() *wlState {
	return &wlState{rows: map[int64][]byte{}, rids: map[int64]RID{}}
}

func (s *wlState) clone() *wlState {
	c := newWLState()
	for k, v := range s.rows {
		c.rows[k] = v
	}
	for k, v := range s.rids {
		c.rids[k] = v
	}
	return c
}

// applyOp runs one op against db, updating the model only on success.
func applyOp(db *DB, op wlOp, s *wlState) error {
	switch op.kind {
	case "create":
		_, err := db.CreateFile("t")
		return err
	case "insert":
		h, _ := db.File("t")
		rid, err := h.Insert(op.tup)
		if err != nil {
			return err
		}
		s.rows[op.key] = EncodeTuple(op.tup)
		s.rids[op.key] = rid
		return nil
	case "delete":
		h, _ := db.File("t")
		if err := h.Delete(s.rids[op.key]); err != nil {
			return err
		}
		delete(s.rows, op.key)
		delete(s.rids, op.key)
		return nil
	case "update":
		h, _ := db.File("t")
		rid, err := h.Update(s.rids[op.key], op.tup)
		if err != nil {
			return err
		}
		s.rows[op.key] = EncodeTuple(op.tup)
		s.rids[op.key] = rid
		return nil
	case "index":
		return db.LogIndex(IndexDef{Name: "t_k0", File: "t", Col: 0})
	case "meta":
		return db.SetMeta("schema", "t(k0 int, pay string)")
	case "checkpoint":
		return db.Checkpoint()
	default:
		return fmt.Errorf("unknown op %q", op.kind)
	}
}

// runWorkload executes ops in order, recording the model snapshot and
// WAL tail after each op. It stops at the first error (the crashed
// regime) and reports how many ops were fully acknowledged.
func runWorkload(db *DB, ops []wlOp) (states []*wlState, tails []int64, acked int, err error) {
	s := newWLState()
	for _, op := range ops {
		if e := applyOp(db, op, s); e != nil {
			return states, tails, acked, e
		}
		states = append(states, s.clone())
		tails = append(tails, db.WAL().Tail())
		acked++
	}
	return states, tails, acked, nil
}

// runWorkloadSnapshotting additionally snapshots the data disk after
// each op: a crash at WAL offset t must be replayed against the data
// bytes of t's own era — pairing an early WAL cut with a later
// checkpoint's frames is a state no real crash can produce.
func runWorkloadSnapshotting(db *DB, ops []wlOp, dataDisk *MemDisk) (states []*wlState, tails []int64, dataSnaps [][]byte, err error) {
	s := newWLState()
	for _, op := range ops {
		if e := applyOp(db, op, s); e != nil {
			return states, tails, dataSnaps, e
		}
		states = append(states, s.clone())
		tails = append(tails, db.WAL().Tail())
		dataSnaps = append(dataSnaps, dataDisk.Bytes())
	}
	return states, tails, dataSnaps, nil
}

// scanState reads the recovered table into the model's representation.
func scanState(t *testing.T, db *DB) map[int64][]byte {
	t.Helper()
	h, ok := db.File("t")
	if !ok {
		return map[int64][]byte{}
	}
	out := map[int64][]byte{}
	err := h.Scan(func(rid RID, tu Tuple) bool {
		k := tu[0].Int
		if _, dup := out[k]; dup {
			t.Fatalf("key %d recovered twice", k)
		}
		out[k] = EncodeTuple(tu)
		return true
	})
	if err != nil {
		t.Fatalf("scan recovered: %v", err)
	}
	return out
}

func sameState(a, b map[int64][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !bytes.Equal(b[k], v) {
			return false
		}
	}
	return true
}

// verifyIndex checks the recovered B-tree (if its definition was
// durable) enumerates exactly the recovered rows, byte-identically.
func verifyIndex(t *testing.T, db *DB, rows map[int64][]byte) {
	t.Helper()
	tree, ok := db.Index("t_k0")
	if !ok {
		return
	}
	h, _ := db.File("t")
	seen := 0
	tree.Range(Value{Kind: KindNull}, Value{Kind: KindString, Str: "\xff"}, func(key Value, rid RID) bool {
		tu, err := h.Get(rid)
		if err != nil {
			t.Fatalf("index rid %v: %v", rid, err)
		}
		want, ok := rows[tu[0].Int]
		if !ok {
			t.Fatalf("index enumerates key %d not in recovered heap", tu[0].Int)
		}
		if !bytes.Equal(want, EncodeTuple(tu)) {
			t.Fatalf("index row for key %d differs from heap scan", tu[0].Int)
		}
		seen++
		return true
	})
	if seen != len(rows) {
		t.Fatalf("index enumerates %d rows, heap has %d", seen, len(rows))
	}
}

func reopen(t *testing.T, walBytes, dataBytes []byte) *DB {
	t.Helper()
	db, err := Open(NewMemDiskFrom(walBytes), NewMemDiskFrom(dataBytes), DBOptions{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	return db
}

// ---------------------------------------------------------------------------
// WAL-level framing tests.

func TestWALAppendScanRoundtrip(t *testing.T) {
	disk := NewMemDisk()
	w, recs, err := OpenWAL(disk, SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	payloads := [][]byte{
		encodeCreateFile("t"),
		encodeAllocPage("t", 7),
		encodeInsert(7, 0, []byte("hello")),
		encodeDelete(7, 0),
		encodeMeta("k", "v"),
	}
	types := []RecordType{RecCreateFile, RecAllocPage, RecInsert, RecDelete, RecMeta}
	for i, p := range payloads {
		lsn, err := w.Append(types[i], p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d: lsn %d", i, lsn)
		}
	}
	_, recs2, err := OpenWAL(NewMemDiskFrom(disk.Bytes()), SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(payloads) {
		t.Fatalf("reopen scanned %d records, want %d", len(recs2), len(payloads))
	}
	for i, r := range recs2 {
		if r.LSN != uint64(i+1) || r.Type != types[i] || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
}

// TestWALTornTailEveryByte truncates the log at every byte offset and
// asserts the scan recovers exactly the records wholly inside the
// surviving prefix — torn tails end replay, they are never errors.
func TestWALTornTailEveryByte(t *testing.T) {
	disk := NewMemDisk()
	w, _, err := OpenWAL(disk, SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := w.Append(RecMeta, encodeMeta(fmt.Sprintf("key%d", i), strings.Repeat("v", i*3))); err != nil {
			t.Fatal(err)
		}
	}
	full := disk.Bytes()
	_, golden, err := OpenWAL(NewMemDiskFrom(full), SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(full); cut >= walHeader; cut-- {
		w2, recs, err := OpenWAL(NewMemDiskFrom(full[:cut]), SyncEveryRecord)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := 0
		for _, r := range golden {
			if r.End <= int64(cut) {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("cut %d: scanned %d records, want %d", cut, len(recs), want)
		}
		// The tail must sit at the last whole record so new appends
		// overwrite torn garbage rather than chaining onto it.
		if want > 0 && w2.Tail() != golden[want-1].End {
			t.Fatalf("cut %d: tail %d, want %d", cut, w2.Tail(), golden[want-1].End)
		}
	}
}

// TestWALAppendAfterTornTail reopens a torn log and appends: the new
// record must land at the durable tail and scan back cleanly.
func TestWALAppendAfterTornTail(t *testing.T) {
	disk := NewMemDisk()
	w, _, err := OpenWAL(disk, SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(RecMeta, encodeMeta("k", "v")); err != nil {
			t.Fatal(err)
		}
	}
	full := disk.Bytes()
	torn := full[:len(full)-5] // tear the last record mid-frame
	w2, recs, err := OpenWAL(NewMemDiskFrom(torn), SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn reopen scanned %d records, want 2", len(recs))
	}
	lsn, err := w2.Append(RecMeta, encodeMeta("post", "crash"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("post-crash append lsn %d, want 3", lsn)
	}
	_, recs3, err := OpenWAL(NewMemDiskFrom(torn), SyncEveryRecord) // torn shares w2's backing? no: fresh copy
	if err != nil {
		t.Fatal(err)
	}
	_ = recs3
	// Scan the disk w2 actually wrote to.
	_, recs4, err := OpenWAL(NewMemDiskFrom(snapshotOf(t, w2)), SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs4) != 3 || recs4[2].Type != RecMeta || recs4[2].LSN != 3 {
		t.Fatalf("after post-crash append: %d records", len(recs4))
	}
}

func snapshotOf(t *testing.T, w *WAL) []byte {
	t.Helper()
	md, ok := w.disk.(*MemDisk)
	if !ok {
		t.Fatal("test WAL not on MemDisk")
	}
	return md.Bytes()
}

// TestWALCorruptMiddleStopsScan flips a payload byte in the middle of
// the log: the scan must keep everything before the corrupt record and
// surrender everything after (no resynchronisation on garbage).
func TestWALCorruptMiddleStopsScan(t *testing.T) {
	disk := NewMemDisk()
	w, _, err := OpenWAL(disk, SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := w.Append(RecMeta, encodeMeta(fmt.Sprintf("key%d", i), "value")); err != nil {
			t.Fatal(err)
		}
	}
	full := disk.Bytes()
	_, golden, err := OpenWAL(NewMemDiskFrom(full), SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), full...)
	corrupt[golden[3].Off+recHeaderSize] ^= 0xFF // payload byte of record 3
	_, recs, err := OpenWAL(NewMemDiskFrom(corrupt), SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("scan past corruption returned %d records, want 3", len(recs))
	}
}

// ---------------------------------------------------------------------------
// Engine-level recovery.

// TestRecoverCleanLog reopens after the full workload and requires an
// exact byte-identical reconstruction: rows, index, metadata, counts.
func TestRecoverCleanLog(t *testing.T) {
	walDisk, dataDisk := NewMemDisk(), NewMemDisk()
	db, err := Open(walDisk, dataDisk, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	states, _, _, err := runWorkload(db, crashWorkload())
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	want := states[len(states)-1]

	db2 := reopen(t, walDisk.Bytes(), dataDisk.Bytes())
	got := scanState(t, db2)
	if !sameState(got, want.rows) {
		t.Fatalf("recovered %d rows, want %d (or bytes differ)", len(got), len(want.rows))
	}
	verifyIndex(t, db2, got)
	if v, ok := db2.Meta("schema"); !ok || v != "t(k0 int, pay string)" {
		t.Fatalf("meta not recovered: %q %v", v, ok)
	}
	h, _ := db2.File("t")
	if h.Count() != len(want.rows) {
		t.Fatalf("recovered Count() = %d, want %d", h.Count(), len(want.rows))
	}
	st := db2.Stats()
	if !st.Recovery.CheckpointFound {
		t.Fatal("recovery missed the checkpoint")
	}
	if st.Recovery.PagesQuarantined != 0 {
		t.Fatalf("clean recovery quarantined %d pages", st.Recovery.PagesQuarantined)
	}

	// The recovered DB must keep working: another workload step.
	if _, err := h.Insert(wlTuple(99, 0)); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
}

// TestCrashAtEveryRecordBoundary truncates the WAL at every record
// boundary. At op boundaries the recovered state must equal the shadow
// model exactly; between an op's records only that op's key may
// diverge, and only to its before/after/absent versions. This is the
// acceptance criterion: byte-identical heap and index scans at every
// WAL barrier.
func TestCrashAtEveryRecordBoundary(t *testing.T) {
	walDisk, dataDisk := NewMemDisk(), NewMemDisk()
	db, err := Open(walDisk, dataDisk, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ops := crashWorkload()
	states, tails, dataSnaps, err := runWorkloadSnapshotting(db, ops, dataDisk)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	walBytes := walDisk.Bytes()
	_, golden, err := OpenWAL(NewMemDiskFrom(walBytes), SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}

	// ackedAt returns the last op fully durable at cut, or -1.
	ackedAt := func(cut int64) int {
		i := -1
		for j, tail := range tails {
			if tail <= cut {
				i = j
			}
		}
		return i
	}

	cuts := []int64{walHeader}
	for _, r := range golden {
		cuts = append(cuts, r.End)
	}
	for _, cut := range cuts {
		dataBytes := []byte(nil)
		if i := ackedAt(cut); i >= 0 {
			dataBytes = dataSnaps[i]
		}
		db2 := reopen(t, walBytes[:cut], dataBytes)
		got := scanState(t, db2)
		i := ackedAt(cut)
		acked := newWLState()
		if i >= 0 {
			acked = states[i]
		}
		if i >= 0 && tails[i] == cut {
			// Clean op boundary: exact byte-identical reconstruction.
			if !sameState(got, acked.rows) {
				t.Fatalf("cut %d (op %d boundary): recovered %d rows, want %d (or bytes differ)",
					cut, i, len(got), len(acked.rows))
			}
		} else {
			// Mid-op: only the in-flight op's key may diverge.
			verifyRelaxed(t, cut, got, acked, ops, i)
		}
		verifyIndex(t, db2, got)
	}
}

// verifyRelaxed checks recovered state against the acked model with
// the in-flight op (ops[i+1]) allowed to be partially applied.
func verifyRelaxed(t *testing.T, cut int64, got map[int64][]byte, acked *wlState, ops []wlOp, i int) {
	t.Helper()
	var inflight *wlOp
	if i+1 < len(ops) {
		inflight = &ops[i+1]
	}
	touched := int64(-1)
	var allowed [][]byte
	if inflight != nil {
		switch inflight.kind {
		case "insert", "update":
			touched = inflight.key
			allowed = append(allowed, EncodeTuple(inflight.tup))
		case "delete":
			touched = inflight.key
		}
		if prev, ok := acked.rows[touched]; ok {
			allowed = append(allowed, prev)
		}
	}
	for k, v := range acked.rows {
		if k == touched {
			continue
		}
		if !bytes.Equal(got[k], v) {
			t.Fatalf("cut %d: acked key %d lost or altered after recovery", cut, k)
		}
	}
	for k, v := range got {
		if k == touched {
			okv := false
			for _, a := range allowed {
				if bytes.Equal(a, v) {
					okv = true
					break
				}
			}
			if !okv {
				t.Fatalf("cut %d: in-flight key %d recovered with phantom bytes", cut, k)
			}
			continue
		}
		want, ok := acked.rows[k]
		if !ok {
			t.Fatalf("cut %d: phantom key %d recovered", cut, k)
		}
		if !bytes.Equal(want, v) {
			t.Fatalf("cut %d: key %d bytes differ", cut, k)
		}
	}
}

// TestRecoveryDeterministic recovers twice from the same crash image
// and requires identical results — replay has no hidden state.
func TestRecoveryDeterministic(t *testing.T) {
	walDisk, dataDisk := NewMemDisk(), NewMemDisk()
	db, err := Open(walDisk, dataDisk, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := runWorkload(db, crashWorkload()); err != nil {
		t.Fatal(err)
	}
	walBytes, dataBytes := walDisk.Bytes(), dataDisk.Bytes()
	cut := int64(len(walBytes)) * 2 / 3 // arbitrary torn point
	a := reopen(t, walBytes[:cut], dataBytes)
	b := reopen(t, walBytes[:cut], dataBytes)
	if !sameState(scanState(t, a), scanState(t, b)) {
		t.Fatal("two recoveries of the same image differ")
	}
	if a.Stats().Recovery != b.Stats().Recovery {
		t.Fatalf("recovery stats differ: %+v vs %+v", a.Stats().Recovery, b.Stats().Recovery)
	}
}

// ---------------------------------------------------------------------------
// Checksum quarantine.

// TestRecoveryQuarantinesCorruptPage flips a byte inside a
// checkpointed frame: recovery must quarantine that page, report it,
// keep serving every other page, and surface the quarantine on direct
// access — never silently serve corrupt data.
func TestRecoveryQuarantinesCorruptPage(t *testing.T) {
	walDisk, dataDisk := NewMemDisk(), NewMemDisk()
	db, err := Open(walDisk, dataDisk, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	states, _, _, err := runWorkload(db, crashWorkload())
	if err != nil {
		t.Fatal(err)
	}
	want := states[len(states)-1]
	h, _ := db.File("t")
	victim := h.PageIDs()[0]

	data := dataDisk.Bytes()
	data[frameOffset(victim)+100] ^= 0xFF

	var reported []PageID
	db2, err := Open(NewMemDiskFrom(walDisk.Bytes()), NewMemDiskFrom(data), DBOptions{})
	if err != nil {
		t.Fatalf("recovery with corrupt frame must not fail: %v", err)
	}
	db2.SetCorruptionHook(func(id PageID, err error) { reported = append(reported, id) })

	st := db2.Stats()
	if st.Recovery.PagesQuarantined != 1 {
		t.Fatalf("PagesQuarantined = %d, want 1", st.Recovery.PagesQuarantined)
	}
	if st.Buffer.QuarantinedPages != 1 || st.Buffer.ChecksumFailures != 1 {
		t.Fatalf("buffer stats: %+v", st.Buffer)
	}
	if _, err := db2.Buffer().GetPage(victim); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("GetPage(quarantined) = %v, want ErrQuarantined", err)
	}

	// A full scan must REPORT the quarantined page, not silently skip
	// it — that is the whole point of quarantine.
	h2, _ := db2.File("t")
	if err := h2.Scan(func(RID, Tuple) bool { return true }); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("scan over quarantined page = %v, want ErrQuarantined", err)
	}

	// Every page other than the victim must serve its rows
	// byte-identically; the redo suffix still applied to them.
	got := map[int64][]byte{}
	for _, id := range h2.PageIDs() {
		if id == victim {
			if _, err := h2.PageTuples(id); !errors.Is(err, ErrQuarantined) {
				t.Fatalf("victim page read = %v, want ErrQuarantined", err)
			}
			continue
		}
		tus, err := h2.PageTuples(id)
		if err != nil {
			t.Fatalf("surviving page %d: %v", id, err)
		}
		for _, tu := range tus {
			got[tu[0].Int] = EncodeTuple(tu)
		}
	}
	for k, v := range got {
		if want.rows[k] == nil || !bytes.Equal(want.rows[k], v) {
			t.Fatalf("surviving key %d has phantom bytes", k)
		}
	}
	if len(got) >= len(want.rows) {
		t.Fatalf("expected to lose the victim page's rows (got %d of %d)", len(got), len(want.rows))
	}
	if len(reported) != 0 {
		// Hook was installed after recovery; fetch-time hits may add
		// later — recovery-time reports went to the pre-hook default.
		t.Fatalf("unexpected post-recovery corruption reports: %v", reported)
	}
}

// TestFetchTimeChecksum corrupts a frame's stored CRC after a
// checkpoint and forces the page out of the buffer pool: the next
// fetch must fail verification, bump the counters, and quarantine the
// page instead of serving it.
func TestFetchTimeChecksum(t *testing.T) {
	walDisk, dataDisk := NewMemDisk(), NewMemDisk()
	db, err := Open(walDisk, dataDisk, DBOptions{BufferFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	h, err := db.CreateFile("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 60; i++ { // several pages at ~200 B/row
		if _, err := h.Insert(wlTuple(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pages := h.PageIDs()
	if len(pages) < 3 {
		t.Fatalf("want >= 3 pages, got %d", len(pages))
	}
	victim := pages[0]

	// Corrupt the stored CRC of the victim's frame in place.
	var hooked []PageID
	db.SetCorruptionHook(func(id PageID, err error) { hooked = append(hooked, id) })
	trailer := frameOffset(victim) + PageSize + 8
	crc := make([]byte, 4)
	if _, err := dataDisk.ReadAt(crc, trailer); err != nil {
		t.Fatal(err)
	}
	crc[0] ^= 0xFF
	if _, err := dataDisk.WriteAt(crc, trailer); err != nil {
		t.Fatal(err)
	}

	// Evict the victim from the 2-frame pool by touching other pages.
	for round := 0; round < 4; round++ {
		for _, id := range pages[1:] {
			if p, err := db.Buffer().GetPage(id); err != nil {
				t.Fatal(err)
			} else {
				_ = p
				db.Buffer().Unpin(id)
			}
		}
	}
	_, err = db.Buffer().GetPage(victim)
	if !errors.Is(err, ErrChecksum) || !errors.Is(err, ErrQuarantined) {
		t.Fatalf("fetch of corrupt page = %v, want ErrChecksum via quarantine", err)
	}
	if _, err := db.Buffer().GetPage(victim); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("second fetch = %v, want ErrQuarantined", err)
	}
	st := db.Stats().Buffer
	if st.ChecksumFailures != 1 || st.QuarantinedPages != 1 {
		t.Fatalf("buffer stats after fetch-time failure: %+v", st)
	}
	if len(hooked) != 1 || hooked[0] != victim {
		t.Fatalf("corruption hook saw %v, want [%d]", hooked, victim)
	}
}

// TestCheckpointCutsReplay asserts checkpoints actually bound redo
// work: recovering right after a checkpoint replays only the suffix.
func TestCheckpointCutsReplay(t *testing.T) {
	walDisk, dataDisk := NewMemDisk(), NewMemDisk()
	db, err := Open(walDisk, dataDisk, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := db.CreateFile("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if _, err := h.Insert(wlTuple(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db2 := reopen(t, walDisk.Bytes(), dataDisk.Bytes())
	st := db2.Stats().Recovery
	if !st.CheckpointFound {
		t.Fatal("checkpoint not found")
	}
	// Only the checkpoint record itself sits past redoPos.
	if st.RecordsReplayed != 0 {
		t.Fatalf("replayed %d records after checkpoint, want 0", st.RecordsReplayed)
	}
	if got := scanState(t, db2); len(got) != 100 {
		t.Fatalf("recovered %d rows, want 100", len(got))
	}
}

// TestStickyFailure: a failed WAL append must poison the DB — no
// acknowledged write may exist only in memory.
func TestStickyFailure(t *testing.T) {
	walDisk, dataDisk := NewMemDisk(), NewMemDisk()
	db, err := Open(walDisk, dataDisk, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := db.CreateFile("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Insert(wlTuple(1, 0)); err != nil {
		t.Fatal(err)
	}
	// Fail the log by swapping in a broken disk under the WAL.
	db.wal.mu.Lock()
	db.wal.disk = brokenDisk{}
	db.wal.mu.Unlock()
	if _, err := h.Insert(wlTuple(2, 0)); err == nil {
		t.Fatal("insert with broken WAL succeeded")
	}
	if err := db.Err(); !errors.Is(err, ErrDBFailed) {
		t.Fatalf("Err() = %v, want ErrDBFailed", err)
	}
	if _, err := h.Insert(wlTuple(3, 0)); !errors.Is(err, ErrDBFailed) {
		t.Fatalf("post-failure insert = %v, want ErrDBFailed", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrDBFailed) {
		t.Fatalf("post-failure checkpoint = %v, want ErrDBFailed", err)
	}
}

type brokenDisk struct{}

func (brokenDisk) ReadAt(p []byte, off int64) (int, error)  { return 0, errors.New("broken") }
func (brokenDisk) WriteAt(p []byte, off int64) (int, error) { return 0, errors.New("broken") }
func (brokenDisk) Sync() error                              { return errors.New("broken") }
func (brokenDisk) Size() (int64, error)                     { return 0, errors.New("broken") }
func (brokenDisk) Truncate(int64) error                     { return errors.New("broken") }

// Snapshot-isolation MVCC over the LSN clock, as a component layered
// on (not into) the storage engine — the Transparent Concurrency
// Control decoupling applied to this substrate. The design, end to
// end:
//
//   - Timestamps are WAL LSNs. A transaction's snapshot is the LSN of
//     the last *published* commit at Begin; a version (Xmin, Xmax) is
//     visible when Xmin committed at or before that horizon (or is the
//     reader itself) and Xmax did not.
//   - Writes are eager: inserts land immediately with Xmin = writer,
//     deletes stamp Xmax in place under the page latch. Stamping Xmax
//     doubles as the row write lock — the claim's decide callback
//     rejects a version whose Xmax belongs to a live or
//     newer-committed transaction, which is first-claimer-wins and
//     hence first-committer-wins under SI.
//   - Rollback undoes physically (tombstone own inserts, clear claimed
//     Xmax) through the ordinary logged mutation path, so the redo log
//     stays redo-only.
//   - Commit is a group: committers enqueue; the first to arrive with
//     no leader active is elected leader and drains the queue, appends
//     every RecTxnCommit, places ONE Sync barrier for the whole batch
//     (the SyncManual contract), then publishes the commits in LSN
//     order, looping while new committers accumulate behind the
//     barrier. Publication order is what keeps snapshots
//     prefix-consistent: a horizon can never include a later commit
//     while excluding an earlier one.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrWriteConflict reports a first-committer-wins serialization
// failure: the transaction tried to delete or update a row version a
// concurrent transaction already claimed (or committed over). The
// transaction must abort and retry.
var ErrWriteConflict = errors.New("storage: write conflict")

// ErrTxnDone is returned when a finished transaction is used again.
var ErrTxnDone = errors.New("storage: transaction already finished")

// Snapshot is a transaction's read horizon.
type Snapshot struct {
	// High is the commit-LSN horizon: versions whose creator committed
	// at an LSN <= High existed at Begin.
	High uint64
	// Self is the owning transaction: its own writes are visible (and
	// its own deletes are not).
	Self uint64
}

// TxnManager issues transactions and commit timestamps over one DB's
// WAL LSN clock. It is the pluggable CC component: a DB without
// transactions never touches it, and readers opt in per scan by
// binding a HeapView to a snapshot.
type TxnManager struct {
	db *DB

	// mu guards the commit table and the snapshot horizon. Level 55
	// ("txn-manager") in the latch hierarchy: visibility checks take
	// it (read-side) under page latches, publication takes it under
	// the group-commit leader baton.
	mu      sync.RWMutex
	commits map[uint64]uint64 // txn id -> commit LSN
	aborted map[uint64]struct{}
	high    uint64 // last published commit LSN
	nextID  uint64

	// gcMu guards the commit queue and the leader flag (level 53,
	// "txn-commit"). The flag IS the leader election: the first
	// committer to enqueue while no leader is active becomes the
	// leader and loops flushing batches until the queue drains;
	// everyone else just waits on its done channel. Followers never
	// contend on a leader lock — that shape degenerates into a baton
	// convoy where every committer pays its own Sync.
	gcMu      sync.Mutex
	gcLeading bool
	queue     []*commitReq

	statMu  sync.Mutex
	groups  uint64
	batched uint64
	aborts  uint64

	// active counts Begin-without-finish transactions: the leak oracle
	// the server's connection-fault matrix asserts returns to zero
	// after every disconnect scenario (an abandoned session must not
	// strand its claims).
	active atomic.Int64
}

type commitReq struct {
	id   uint64
	done chan error
}

// TxnStats is the manager's counter snapshot.
type TxnStats struct {
	// Groups is the number of commit batches flushed (one Sync each);
	// Batched is the transactions committed through them — Batched /
	// Groups is the realised group-commit fan-in.
	Groups, Batched uint64
	// Aborts counts rollbacks (explicit and conflict-forced).
	Aborts uint64
}

// newTxnManager wires a manager over db with recovered state.
func newTxnManager(db *DB, commits map[uint64]uint64, aborted map[uint64]struct{}, maxID uint64) *TxnManager {
	if commits == nil {
		commits = map[uint64]uint64{}
	}
	if aborted == nil {
		aborted = map[uint64]struct{}{}
	}
	var high uint64
	for _, lsn := range commits {
		if lsn > high {
			high = lsn
		}
	}
	return &TxnManager{
		db:      db,
		commits: commits,
		aborted: aborted,
		high:    high,
		nextID:  maxID,
	}
}

// Stats returns the manager's counters.
func (tm *TxnManager) Stats() TxnStats {
	tm.statMu.Lock()
	defer tm.statMu.Unlock()
	return TxnStats{Groups: tm.groups, Batched: tm.batched, Aborts: tm.aborts}
}

// Begin opens a transaction with a snapshot of the current commit
// horizon. Read-only transactions are free: no WAL record is written
// unless the transaction writes.
func (tm *TxnManager) Begin() *Txn {
	tm.mu.Lock()
	tm.nextID++
	id := tm.nextID
	snap := Snapshot{High: tm.high, Self: id}
	tm.mu.Unlock()
	tm.active.Add(1)
	return &Txn{tm: tm, id: id, snap: snap}
}

// Active reports the number of transactions begun but not yet
// committed or rolled back.
func (tm *TxnManager) Active() int64 { return tm.active.Load() }

// commitLSN looks up a transaction's commit timestamp.
func (tm *TxnManager) commitLSN(id uint64) (uint64, bool) {
	tm.mu.RLock()
	lsn, ok := tm.commits[id]
	tm.mu.RUnlock()
	return lsn, ok
}

// isAborted reports whether id rolled back.
func (tm *TxnManager) isAborted(id uint64) bool {
	tm.mu.RLock()
	_, ok := tm.aborted[id]
	tm.mu.RUnlock()
	return ok
}

// committedAt reports whether id committed within snapshot s.
func (tm *TxnManager) committedAt(id uint64, s Snapshot) bool {
	if id == 0 {
		return true // plain record: committed before every snapshot
	}
	if id == s.Self {
		return true // own write
	}
	lsn, ok := tm.commitLSN(id)
	return ok && lsn <= s.High
}

// visible implements snapshot visibility for one version.
func (tm *TxnManager) visible(v Version, s Snapshot) bool {
	if v.Xmin != 0 && !tm.committedAt(v.Xmin, s) {
		return false // creator not committed in this snapshot
	}
	if v.Xmax == 0 {
		return true // never deleted
	}
	return !tm.committedAt(v.Xmax, s) // deleted iff the deleter committed in-snapshot (or is self)
}

// ---------------------------------------------------------------------------
// Txn.

// Txn is one transaction. A Txn is owned by a single session
// goroutine; only its snapshot closure (Visible) may be shared across
// goroutines (parallel scan workers).
type Txn struct {
	tm     *TxnManager
	id     uint64
	snap   Snapshot
	writes int
	undo   []func() error
	done   bool
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Snapshot returns the transaction's read horizon.
func (t *Txn) Snapshot() Snapshot { return t.snap }

// Visible returns the snapshot's visibility closure — safe for
// concurrent use by parallel scan workers.
func (t *Txn) Visible() Visibility {
	tm, snap := t.tm, t.snap
	return func(v Version) bool { return tm.visible(v, snap) }
}

// View binds a heap file to this transaction's snapshot.
func (t *Txn) View(h *HeapFile) *HeapView { return h.View(t.Visible()) }

// OnRollback registers an undo action (run in reverse registration
// order). Higher layers hang index fix-ups here.
func (t *Txn) OnRollback(fn func() error) { t.undo = append(t.undo, fn) }

// Insert adds a row version owned by this transaction.
func (t *Txn) Insert(h *HeapFile, tu Tuple) (RID, error) {
	if t.done {
		return RID{}, ErrTxnDone
	}
	rid, err := h.InsertVersion(tu, Version{Xmin: t.id})
	if err != nil {
		return RID{}, err
	}
	t.writes++
	t.undo = append(t.undo, func() error { return h.Delete(rid) })
	return rid, nil
}

// Delete claims the row version at rid for deletion
// (first-claimer-wins: a version already claimed by a live
// transaction, or committed over since this snapshot, returns
// ErrWriteConflict). The version stays on the page — invisible to
// later snapshots once this transaction commits — so concurrent
// readers are never blocked. Returns the version's (possibly moved)
// RID.
func (t *Txn) Delete(h *HeapFile, rid RID) (RID, error) {
	if t.done {
		return RID{}, ErrTxnDone
	}
	nrid, err := h.SetXmax(rid, t.id, t.claimable)
	if err != nil {
		return RID{}, err
	}
	t.writes++
	t.undo = append(t.undo, func() error {
		_, err := h.SetXmax(nrid, 0, nil)
		return err
	})
	return nrid, nil
}

// claimable is the conflict decision, run under the page write latch
// so it is atomic with the Xmax stamp.
func (t *Txn) claimable(v Version) error {
	if v.Xmin != 0 && !t.tm.committedAt(v.Xmin, t.snap) {
		// A version we cannot even see (uncommitted or post-snapshot
		// creator): claiming it would write over a concurrent writer.
		return fmt.Errorf("%w: version created by txn %d", ErrWriteConflict, v.Xmin)
	}
	if v.Xmax == 0 {
		return nil
	}
	if v.Xmax == t.id {
		return fmt.Errorf("%w: already deleted in this transaction", ErrWriteConflict)
	}
	if t.tm.isAborted(v.Xmax) {
		return nil // the claimer rolled back: steal the claim
	}
	// Live claimer or one that committed past our snapshot: first
	// claimer wins, we lose.
	return fmt.Errorf("%w: row claimed by txn %d", ErrWriteConflict, v.Xmax)
}

// Update replaces the version at rid: claim the old version, insert
// the new one owned by this transaction. Returns the old version's
// (possibly moved) RID and the new version's RID.
func (t *Txn) Update(h *HeapFile, rid RID, tu Tuple) (oldRID, newRID RID, err error) {
	oldRID, err = t.Delete(h, rid)
	if err != nil {
		return RID{}, RID{}, err
	}
	newRID, err = t.Insert(h, tu)
	if err != nil {
		return RID{}, RID{}, err
	}
	return oldRID, newRID, nil
}

// Commit makes the transaction's writes durable and visible. Writing
// transactions ride the group-commit path: one WAL Sync barrier per
// batch of concurrently committing sessions. Read-only transactions
// commit for free.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	t.tm.active.Add(-1)
	t.undo = nil
	if t.writes == 0 {
		return nil
	}
	return t.tm.commitTxn(t.id)
}

// Rollback undoes the transaction's writes physically (through the
// ordinary logged mutation path) and records the abort. Idempotent
// after Commit-or-Rollback: a second call is a no-op.
func (t *Txn) Rollback() error {
	if t.done {
		return nil
	}
	t.done = true
	t.tm.active.Add(-1)
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.undo[i](); err != nil {
			// The undo path appends WAL records; a failure there has
			// already poisoned the DB (ErrDBFailed) — nothing more to
			// unwind.
			t.undo = nil
			return err
		}
	}
	t.undo = nil
	if t.writes == 0 {
		return nil
	}
	return t.tm.abortTxn(t.id)
}

// ---------------------------------------------------------------------------
// Group commit.

// commitTxn runs the leader/follower protocol. Enqueue under gcMu;
// if a leader is already active, its drain loop is guaranteed to
// flush this request, so just wait for the verdict. Otherwise become
// the leader: flush the queue as one WAL batch (append every
// RecTxnCommit, ONE Sync, publish), and keep flushing batches that
// accumulated during the Sync until the queue is empty, then retire.
// Election and retirement both happen under gcMu, so a request is
// never enqueued without either an active leader or its owner
// becoming one — no lost wakeups.
func (tm *TxnManager) commitTxn(id uint64) error {
	req := &commitReq{id: id, done: make(chan error, 1)}
	tm.gcMu.Lock()
	tm.queue = append(tm.queue, req)
	if tm.gcLeading {
		tm.gcMu.Unlock()
		return <-req.done
	}
	tm.gcLeading = true
	var own error
	for {
		batch := tm.queue
		tm.queue = nil
		tm.gcMu.Unlock()
		err := tm.commitBatch(batch)
		// Signal outside every lock; channels are buffered so the
		// sends never block. The leader's own request rides the first
		// batch (it was enqueued before the election).
		for _, r := range batch {
			if r == req {
				own = err
				continue
			}
			r.done <- err
		}
		tm.gcMu.Lock()
		if len(tm.queue) == 0 {
			tm.gcLeading = false
			tm.gcMu.Unlock()
			return own
		}
		// Committers arrived while this batch was syncing: flush them
		// too before retiring — they are waiting on their channels and
		// no one else will.
	}
}

// commitBatch appends one RecTxnCommit per transaction, places a
// single Sync barrier for all of them, then publishes the commits in
// LSN order under the horizon lock. Runs under the leader baton.
func (tm *TxnManager) commitBatch(batch []*commitReq) error {
	if err := tm.db.Err(); err != nil {
		return err
	}
	type pub struct{ id, lsn uint64 }
	pubs := make([]pub, 0, len(batch))
	for _, r := range batch {
		lsn, err := tm.db.wal.Append(RecTxnCommit, encodeTxn(r.id))
		if err != nil {
			return tm.db.fail(err)
		}
		pubs = append(pubs, pub{r.id, lsn})
	}
	// The batch's one durability barrier (under SyncEveryRecord each
	// append was already a barrier and this is a cheap no-op).
	if err := tm.db.wal.Sync(); err != nil {
		return tm.db.fail(err)
	}
	tm.mu.Lock()
	for _, p := range pubs {
		tm.commits[p.id] = p.lsn
		if p.lsn > tm.high {
			tm.high = p.lsn
		}
	}
	tm.mu.Unlock()
	tm.statMu.Lock()
	tm.groups++
	tm.batched += uint64(len(batch))
	tm.statMu.Unlock()
	return nil
}

// abortTxn records a rollback: the abort mark makes the id's claims
// stealable, and the (unsynced) abort record documents the decision
// in the log.
func (tm *TxnManager) abortTxn(id uint64) error {
	tm.mu.Lock()
	tm.aborted[id] = struct{}{}
	tm.mu.Unlock()
	tm.statMu.Lock()
	tm.aborts++
	tm.statMu.Unlock()
	if err := tm.db.Err(); err != nil {
		return err
	}
	if _, err := tm.db.wal.Append(RecTxnAbort, encodeTxn(id)); err != nil {
		return tm.db.fail(err)
	}
	return nil
}

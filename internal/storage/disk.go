// Pluggable byte-addressed I/O: the seam between the durability layer
// (WAL, page file) and whatever actually persists the bytes. The
// engine's own tests run over MemDisk; the internal/fault package
// wraps any DiskFile with deterministic crash points, torn writes and
// injected I/O errors, which is how recovery is tested at every WAL
// barrier without a real disk or a real kill -9.
package storage

import (
	"errors"
	"fmt"
	"sync"
)

// DiskFile is the minimal stable-storage contract the WAL and page
// file are written against. Implementations must be safe for
// concurrent use. Sync is the fsync barrier: a write is only
// crash-durable once a subsequent Sync has returned.
type DiskFile interface {
	// ReadAt reads len(p) bytes at off. Reads entirely past the end
	// return 0, io.EOF-like short counts are reported via n < len(p)
	// with a nil error only at end of file.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt writes p at off, extending the file as needed.
	WriteAt(p []byte, off int64) (int, error)
	// Sync flushes all completed writes to stable storage.
	Sync() error
	// Size returns the current file length in bytes.
	Size() (int64, error)
	// Truncate sets the file length.
	Truncate(size int64) error
}

// ErrShortWrite is returned when a DiskFile applied fewer bytes than
// requested (a torn write observed synchronously).
var ErrShortWrite = errors.New("storage: short write")

// MemDisk is an in-memory DiskFile: the simulated stable storage the
// crash tests snapshot and reopen. Sync is a no-op (memory is always
// "durable" until the harness says otherwise); the fault layer is
// where sync barriers gain meaning.
type MemDisk struct {
	mu  sync.Mutex
	buf []byte
}

// NewMemDisk returns an empty in-memory disk.
func NewMemDisk() *MemDisk { return &MemDisk{} }

// NewMemDiskFrom returns a disk initialised with a copy of data (how
// crash tests reopen a snapshot).
func NewMemDiskFrom(data []byte) *MemDisk {
	return &MemDisk{buf: append([]byte(nil), data...)}
}

// ReadAt implements DiskFile.
func (d *MemDisk) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("storage: negative read offset %d", off)
	}
	if off >= int64(len(d.buf)) {
		return 0, nil
	}
	n := copy(p, d.buf[off:])
	return n, nil
}

// WriteAt implements DiskFile.
func (d *MemDisk) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("storage: negative write offset %d", off)
	}
	if need := off + int64(len(p)); need > int64(len(d.buf)) {
		grown := make([]byte, need)
		copy(grown, d.buf)
		d.buf = grown
	}
	copy(d.buf[off:], p)
	return len(p), nil
}

// Sync implements DiskFile (no-op: memory).
func (d *MemDisk) Sync() error { return nil }

// Size implements DiskFile.
func (d *MemDisk) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.buf)), nil
}

// Truncate implements DiskFile.
func (d *MemDisk) Truncate(size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("storage: negative truncate %d", size)
	}
	if size <= int64(len(d.buf)) {
		d.buf = d.buf[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, d.buf)
	d.buf = grown
	return nil
}

// Bytes returns a copy of the disk contents — the crash-test snapshot
// primitive: capture, truncate to a boundary, reopen, recover.
func (d *MemDisk) Bytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.buf...)
}

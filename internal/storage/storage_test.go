package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// --------------------------------------------------------------------------
// Record codec.

func TestTupleRoundTrip(t *testing.T) {
	tu := Tuple{
		IntValue(-42), FloatValue(3.14), StringValue("hello, 世界"),
		BoolValue(true), NullValue(), IntValue(1 << 40), StringValue(""),
	}
	back, err := DecodeTuple(EncodeTuple(tu))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tu) {
		t.Fatalf("len = %d", len(back))
	}
	for i := range tu {
		if !Equal(back[i], tu[i]) || back[i].Kind != tu[i].Kind {
			t.Errorf("field %d: %v vs %v", i, back[i], tu[i])
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{0, 2, byte(KindInt)},          // truncated varint
		{0, 1, byte(KindFloat), 1, 2},  // short float
		{0, 1, byte(KindString), 0, 0}, // short length
		{0, 1, byte(KindString), 0, 0, 0, 9, 'a'}, // short body
		{0, 1, 99}, // unknown kind
		append(EncodeTuple(Tuple{IntValue(1)}), 0xFF), // trailing bytes
	}
	for i, b := range cases {
		if _, err := DecodeTuple(b); !errors.Is(err, ErrCorruptRecord) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), FloatValue(1.5), 1},
		{FloatValue(2), IntValue(2), 0},
		{StringValue("a"), StringValue("b"), -1},
		{NullValue(), IntValue(0), -1},
		{NullValue(), NullValue(), 0},
		{BoolValue(true), BoolValue(false), 1},
		{StringValue("x"), IntValue(5), 1}, // kind-tag order: string > int
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if IntValue(1).String() != "1" || NullValue().String() != "NULL" ||
		BoolValue(true).String() != "true" || FloatValue(2.5).String() != "2.5" ||
		StringValue("s").String() != "s" {
		t.Error("String renderings wrong")
	}
	if !NullValue().IsNull() || IntValue(0).IsNull() {
		t.Error("IsNull wrong")
	}
}

// Property: encode/decode is the identity on arbitrary tuples.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(ints []int64, strs []string, floats []float64) bool {
		var tu Tuple
		for _, v := range ints {
			tu = append(tu, IntValue(v))
		}
		for _, s := range strs {
			tu = append(tu, StringValue(s))
		}
		for _, fl := range floats {
			tu = append(tu, FloatValue(fl))
		}
		back, err := DecodeTuple(EncodeTuple(tu))
		if err != nil || len(back) != len(tu) {
			return false
		}
		for i := range tu {
			if back[i].Kind != tu[i].Kind {
				return false
			}
			if tu[i].Kind == KindFloat {
				// NaN != NaN under Compare; compare bits via String.
				if fmt.Sprint(back[i].Float) != fmt.Sprint(tu[i].Float) {
					return false
				}
			} else if !Equal(back[i], tu[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --------------------------------------------------------------------------
// Pages.

func TestPageInsertGetDelete(t *testing.T) {
	p := NewPage()
	s1, err := p.Insert([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := p.Insert([]byte("beta"))
	if s1 == s2 {
		t.Fatal("slot reuse")
	}
	b, err := p.Get(s1)
	if err != nil || string(b) != "alpha" {
		t.Fatalf("get = %q %v", b, err)
	}
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s1); !errors.Is(err, ErrSlotDeleted) {
		t.Fatalf("deleted get: %v", err)
	}
	if err := p.Delete(s1); !errors.Is(err, ErrSlotDeleted) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := p.Get(99); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("bad slot: %v", err)
	}
	// s2 unaffected.
	if b, _ := p.Get(s2); string(b) != "beta" {
		t.Fatal("neighbour damaged")
	}
}

func TestPageFull(t *testing.T) {
	p := NewPage()
	rec := make([]byte, 100)
	inserted := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatal(err)
			}
			break
		}
		inserted++
	}
	// 4096 bytes, ~104 bytes/record incl. slot: expect ~39.
	if inserted < 35 || inserted > 41 {
		t.Fatalf("inserted %d records of 100B", inserted)
	}
}

func TestPageCompactPreservesSlots(t *testing.T) {
	p := NewPage()
	var slots []int
	for i := 0; i < 10; i++ {
		s, _ := p.Insert([]byte(fmt.Sprintf("rec-%d", i)))
		slots = append(slots, s)
	}
	for i := 0; i < 10; i += 2 {
		_ = p.Delete(slots[i])
	}
	liveBefore := p.LiveBytes()
	freeBefore := p.FreeSpace()
	p.Compact()
	if p.LiveBytes() != liveBefore {
		t.Fatal("compact lost bytes")
	}
	if p.FreeSpace() <= freeBefore {
		t.Fatalf("compact did not reclaim: %d <= %d", p.FreeSpace(), freeBefore)
	}
	for i := 1; i < 10; i += 2 {
		b, err := p.Get(slots[i])
		if err != nil || string(b) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("slot %d after compact: %q %v", slots[i], b, err)
		}
	}
	for i := 0; i < 10; i += 2 {
		if p.Live(slots[i]) {
			t.Fatal("tombstone resurrected")
		}
	}
}

func TestPageUpdateInPlaceAndGrow(t *testing.T) {
	p := NewPage()
	s, _ := p.Insert([]byte("aaaa"))
	ns, err := p.Update(s, []byte("bb"))
	if err != nil || ns != s {
		t.Fatalf("shrink update: %d %v", ns, err)
	}
	if b, _ := p.Get(s); string(b) != "bb" {
		t.Fatalf("got %q", b)
	}
	ns, err = p.Update(s, []byte("cccccccccc"))
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := p.Get(ns); string(b) != "cccccccccc" {
		t.Fatalf("got %q", b)
	}
}

// --------------------------------------------------------------------------
// Buffer manager.

func TestBufferHitMissEvict(t *testing.T) {
	store := NewStore()
	var ids []PageID
	for i := 0; i < 4; i++ {
		ids = append(ids, store.Allocate())
	}
	bm := NewBufferManager(store, 2, NewLRU())
	for _, id := range ids[:2] {
		if _, err := bm.GetPage(id); err != nil {
			t.Fatal(err)
		}
		bm.Unpin(id)
	}
	if _, err := bm.GetPage(ids[0]); err != nil { // hit
		t.Fatal(err)
	}
	bm.Unpin(ids[0])
	if _, err := bm.GetPage(ids[2]); err != nil { // evicts ids[1] (LRU)
		t.Fatal(err)
	}
	bm.Unpin(ids[2])
	st := bm.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if bm.Resident() != 2 {
		t.Fatalf("resident = %d", bm.Resident())
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
}

func TestBufferAllPinned(t *testing.T) {
	store := NewStore()
	a, b, c := store.Allocate(), store.Allocate(), store.Allocate()
	bm := NewBufferManager(store, 2, NewLRU())
	_, _ = bm.GetPage(a) // pinned
	_, _ = bm.GetPage(b) // pinned
	if _, err := bm.GetPage(c); !errors.Is(err, ErrAllPinned) {
		t.Fatalf("got %v", err)
	}
	bm.Unpin(a)
	if _, err := bm.GetPage(c); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestBufferUnknownPage(t *testing.T) {
	bm := NewBufferManager(NewStore(), 2, nil)
	if _, err := bm.GetPage(99); !errors.Is(err, ErrNoPage) {
		t.Fatalf("got %v", err)
	}
}

func TestClockPolicySecondChance(t *testing.T) {
	store := NewStore()
	var ids []PageID
	for i := 0; i < 3; i++ {
		ids = append(ids, store.Allocate())
	}
	bm := NewBufferManager(store, 2, NewClock())
	if bm.Policy() != "clock" {
		t.Fatal("policy name")
	}
	_, _ = bm.GetPage(ids[0])
	bm.Unpin(ids[0])
	_, _ = bm.GetPage(ids[1])
	bm.Unpin(ids[1])
	// Touch ids[0] so it has its reference bit set.
	_, _ = bm.GetPage(ids[0])
	bm.Unpin(ids[0])
	// Fault ids[2]: clock should spare recently-referenced ids[0]... the
	// precise victim depends on hand position; assert pool correctness.
	_, _ = bm.GetPage(ids[2])
	bm.Unpin(ids[2])
	if bm.Resident() != 2 {
		t.Fatalf("resident = %d", bm.Resident())
	}
}

func TestSwapPolicyMidFlight(t *testing.T) {
	store := NewStore()
	var ids []PageID
	for i := 0; i < 8; i++ {
		ids = append(ids, store.Allocate())
	}
	bm := NewBufferManager(store, 4, NewLRU())
	for _, id := range ids[:4] {
		_, _ = bm.GetPage(id)
		bm.Unpin(id)
	}
	bm.SwapPolicy(NewClock())
	if bm.Policy() != "clock" {
		t.Fatal("swap failed")
	}
	// Pool keeps working (evictions under the new policy).
	for _, id := range ids[4:] {
		if _, err := bm.GetPage(id); err != nil {
			t.Fatal(err)
		}
		bm.Unpin(id)
	}
	if bm.Resident() != 4 {
		t.Fatalf("resident = %d", bm.Resident())
	}
}

// --------------------------------------------------------------------------
// Heap file.

func newHeap(t *testing.T, frames int) *HeapFile {
	t.Helper()
	store := NewStore()
	bm := NewBufferManager(store, frames, NewLRU())
	return NewHeapFile("t", store, bm)
}

func TestHeapInsertGetDeleteUpdate(t *testing.T) {
	h := newHeap(t, 16)
	rid, err := h.Insert(Tuple{IntValue(1), StringValue("x")})
	if err != nil {
		t.Fatal(err)
	}
	tu, err := h.Get(rid)
	if err != nil || tu[0].Int != 1 || tu[1].Str != "x" {
		t.Fatalf("get = %v %v", tu, err)
	}
	nrid, err := h.Update(rid, Tuple{IntValue(2), StringValue("y")})
	if err != nil {
		t.Fatal(err)
	}
	tu, _ = h.Get(nrid)
	if tu[0].Int != 2 {
		t.Fatalf("after update: %v", tu)
	}
	if err := h.Delete(nrid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(nrid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get deleted: %v", err)
	}
	if err := h.Delete(nrid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if h.Count() != 0 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHeapSpansPages(t *testing.T) {
	h := newHeap(t, 64)
	long := StringValue(string(make([]byte, 500)))
	for i := 0; i < 50; i++ {
		if _, err := h.Insert(Tuple{IntValue(int64(i)), long}); err != nil {
			t.Fatal(err)
		}
	}
	if h.Pages() < 2 {
		t.Fatalf("pages = %d, want multi-page file", h.Pages())
	}
	all, err := h.All()
	if err != nil || len(all) != 50 {
		t.Fatalf("all = %d %v", len(all), err)
	}
	seen := map[int64]bool{}
	for _, tu := range all {
		seen[tu[0].Int] = true
	}
	if len(seen) != 50 {
		t.Fatal("duplicates or losses in scan")
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	h := newHeap(t, 16)
	for i := 0; i < 10; i++ {
		_, _ = h.Insert(Tuple{IntValue(int64(i))})
	}
	n := 0
	_ = h.Scan(func(RID, Tuple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("scanned %d", n)
	}
}

func TestHeapOversizeRecord(t *testing.T) {
	h := newHeap(t, 4)
	if _, err := h.Insert(Tuple{StringValue(string(make([]byte, PageSize)))}); err == nil {
		t.Fatal("oversize insert must fail")
	}
}

func TestHeapVacuum(t *testing.T) {
	h := newHeap(t, 16)
	var rids []RID
	for i := 0; i < 20; i++ {
		rid, _ := h.Insert(Tuple{IntValue(int64(i)), StringValue("payload")})
		rids = append(rids, rid)
	}
	for i := 0; i < 20; i += 2 {
		_ = h.Delete(rids[i])
	}
	if err := h.Vacuum(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 20; i += 2 {
		tu, err := h.Get(rids[i])
		if err != nil || tu[0].Int != int64(i) {
			t.Fatalf("rid %v after vacuum: %v %v", rids[i], tu, err)
		}
	}
}

// Property: a heap file holds exactly the multiset of inserted-minus-
// deleted tuples, under any interleaving.
func TestHeapContentsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		store := NewStore()
		h := NewHeapFile("p", store, NewBufferManager(store, 32, NewLRU()))
		want := map[int64]int{}
		var live []RID
		var liveKeys []int64
		for i, op := range ops {
			if op%3 != 0 || len(live) == 0 { // insert
				k := int64(i)
				rid, err := h.Insert(Tuple{IntValue(k)})
				if err != nil {
					return false
				}
				live = append(live, rid)
				liveKeys = append(liveKeys, k)
				want[k]++
			} else { // delete
				j := int(op/3) % len(live)
				if err := h.Delete(live[j]); err != nil {
					return false
				}
				want[liveKeys[j]]--
				live = append(live[:j], live[j+1:]...)
				liveKeys = append(liveKeys[:j], liveKeys[j+1:]...)
			}
		}
		got := map[int64]int{}
		all, err := h.All()
		if err != nil {
			return false
		}
		for _, tu := range all {
			got[tu[0].Int]++
		}
		for k, c := range want {
			if c != 0 && got[k] != c {
				return false
			}
			if c == 0 && got[k] != 0 {
				return false
			}
		}
		return h.Count() == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --------------------------------------------------------------------------
// B-tree.

func TestBTreeInsertSearch(t *testing.T) {
	bt := NewBTree("idx")
	for i := 0; i < 1000; i++ {
		bt.Insert(IntValue(int64(i%100)), RID{Page: PageID(i), Slot: i})
	}
	if bt.Len() != 1000 {
		t.Fatalf("len = %d", bt.Len())
	}
	rids := bt.Search(IntValue(42))
	if len(rids) != 10 {
		t.Fatalf("postings = %d", len(rids))
	}
	if bt.Search(IntValue(1000)) != nil {
		t.Fatal("phantom key")
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	if bt.Depth() < 2 {
		t.Fatalf("depth = %d, want split tree", bt.Depth())
	}
}

func TestBTreeRange(t *testing.T) {
	bt := NewBTree("idx")
	for i := 0; i < 500; i++ {
		bt.Insert(IntValue(int64(i)), RID{Page: PageID(i)})
	}
	var keys []int64
	bt.Range(IntValue(100), IntValue(110), func(k Value, _ RID) bool {
		keys = append(keys, k.Int)
		return true
	})
	if len(keys) != 11 || keys[0] != 100 || keys[10] != 110 {
		t.Fatalf("range = %v", keys)
	}
	// Early stop.
	n := 0
	bt.Range(IntValue(0), IntValue(499), func(Value, RID) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop: %d", n)
	}
	// Empty range.
	bt.Range(IntValue(1000), IntValue(2000), func(Value, RID) bool {
		t.Fatal("phantom range hit")
		return false
	})
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree("idx")
	r1, r2 := RID{Page: 1}, RID{Page: 2}
	bt.Insert(IntValue(5), r1)
	bt.Insert(IntValue(5), r2)
	if !bt.Delete(IntValue(5), r1) {
		t.Fatal("delete failed")
	}
	if bt.Delete(IntValue(5), r1) {
		t.Fatal("double delete succeeded")
	}
	if got := bt.Search(IntValue(5)); len(got) != 1 || got[0] != r2 {
		t.Fatalf("remaining = %v", got)
	}
	if !bt.Delete(IntValue(5), r2) {
		t.Fatal("second delete failed")
	}
	if bt.Search(IntValue(5)) != nil {
		t.Fatal("key survived")
	}
	if bt.Delete(IntValue(99), r1) {
		t.Fatal("deleting absent key succeeded")
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeStringKeys(t *testing.T) {
	bt := NewBTree("names")
	words := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, w := range words {
		bt.Insert(StringValue(w), RID{Page: PageID(i)})
	}
	var got []string
	bt.Range(StringValue("a"), StringValue("z"), func(k Value, _ RID) bool {
		got = append(got, k.Str)
		return true
	})
	want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

// Property: after any random insert sequence, the tree validates and
// every inserted key is findable with the right posting count.
func TestBTreeInvariantProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		rng := rand.New(rand.NewSource(seed))
		bt := NewBTree("p")
		want := map[int64]int{}
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(200))
			bt.Insert(IntValue(k), RID{Page: PageID(i)})
			want[k]++
		}
		if bt.Validate() != nil || bt.Len() != n {
			return false
		}
		for k, c := range want {
			if len(bt.Search(IntValue(k))) != c {
				return false
			}
		}
		// Range over everything yields exactly n postings in order.
		var prev *Value
		count := 0
		ok := true
		bt.Range(IntValue(-1), IntValue(1000), func(k Value, _ RID) bool {
			count++
			if prev != nil && Compare(*prev, k) > 0 {
				ok = false
				return false
			}
			kk := k
			prev = &kk
			return true
		})
		return ok && count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Versioned records: the MVCC record format layered over the plain
// tuple encoding. A stored record is either a plain EncodeTuple image
// (pre-MVCC, and everything the legacy autocommit path writes) or a
// versioned image: a u16 marker that cannot collide with a field
// count, then the creating and deleting transaction ids, then the
// plain encoding. Version detection is per record, so plain and
// versioned records coexist on one page and every legacy decode path
// (DecodeTuple, RecordFields, DecodeTupleInto) remains version-blind:
// it skips the header and returns the payload tuple.
package storage

import (
	"encoding/binary"
	"fmt"
)

// versionMarker heads a versioned record. A plain record starts with
// its u16 field count, and a 4 KiB page cannot hold 0xFFFF fields, so
// the marker is unambiguous.
const versionMarker = 0xFFFF

// versionHeaderSize: u16 marker | u64 xmin | u64 xmax.
const versionHeaderSize = 18

// Version is a record's MVCC header: Xmin is the transaction that
// created the version, Xmax the transaction that deleted it (0 = not
// deleted). Plain records carry the zero Version — created before
// every snapshot, deleted by none — so every Visibility must report
// Version{} visible.
type Version struct {
	Xmin, Xmax uint64
}

// Versioned reports whether the version came from an explicit MVCC
// header rather than a plain record.
func (v Version) Versioned() bool { return v.Xmin != 0 || v.Xmax != 0 }

// Visibility decides whether a record version is visible to a reader
// — the snapshot closure the transaction layer threads through scans.
// It must be safe for concurrent use (parallel scan workers share
// one) and must report the zero Version visible.
type Visibility func(Version) bool

// EncodeVersionedTuple serialises a tuple with an MVCC header.
func EncodeVersionedTuple(t Tuple, v Version) []byte {
	body := EncodeTuple(t)
	buf := make([]byte, versionHeaderSize+len(body))
	binary.BigEndian.PutUint16(buf[0:2], versionMarker)
	binary.BigEndian.PutUint64(buf[2:10], v.Xmin)
	binary.BigEndian.PutUint64(buf[10:18], v.Xmax)
	copy(buf[versionHeaderSize:], body)
	return buf
}

// recordParts splits a stored record into its plain tuple encoding
// and its version (zero for plain records).
func recordParts(b []byte) ([]byte, Version, error) {
	if len(b) < 2 {
		return nil, Version{}, fmt.Errorf("%w: short header", ErrCorruptRecord)
	}
	if binary.BigEndian.Uint16(b) != versionMarker {
		return b, Version{}, nil
	}
	if len(b) < versionHeaderSize+2 {
		return nil, Version{}, fmt.Errorf("%w: short version header", ErrCorruptRecord)
	}
	v := Version{
		Xmin: binary.BigEndian.Uint64(b[2:10]),
		Xmax: binary.BigEndian.Uint64(b[10:18]),
	}
	return b[versionHeaderSize:], v, nil
}

// RecordVersion reads a stored record's version without decoding the
// tuple (zero for plain records).
func RecordVersion(b []byte) (Version, error) {
	_, v, err := recordParts(b)
	return v, err
}

// DecodeRecord parses a stored record — plain or versioned — into its
// tuple and version.
func DecodeRecord(b []byte) (Tuple, Version, error) {
	body, v, err := recordParts(b)
	if err != nil {
		return nil, Version{}, err
	}
	t, err := DecodeTuple(body)
	return t, v, err
}

// stampXmax returns a copy of record b with its deleting transaction
// set, upgrading a plain record to versioned form when needed. A
// versioned record keeps its length, so the rewrite is always
// in-place on the page; only a plain upgrade grows the record.
func stampXmax(b []byte, xmax uint64) []byte {
	if len(b) >= versionHeaderSize && binary.BigEndian.Uint16(b) == versionMarker {
		out := append([]byte(nil), b...)
		binary.BigEndian.PutUint64(out[10:18], xmax)
		return out
	}
	out := make([]byte, versionHeaderSize+len(b))
	binary.BigEndian.PutUint16(out[0:2], versionMarker)
	binary.BigEndian.PutUint64(out[10:18], xmax)
	copy(out[versionHeaderSize:], b)
	return out
}

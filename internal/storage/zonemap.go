// Zone maps: per-page, per-column min/max summaries that let scans
// skip whole pages before decoding them — the "move the computation to
// the data" half of the vectorized filter path. A zone entry is a
// conservative superset of the page's contents across EVERY record
// version (MVCC visibility stays a post-filter concern: a page whose
// zone cannot match a predicate holds no matching version, visible or
// not, so pruning it is sound under any snapshot).
//
// Consistency protocol. Writers bracket every page mutation with
// invalidations: once BEFORE the mutation becomes observable (so the
// entry is absent while the write is in flight) and once AFTER it
// completes (so the write's return is a fence past which no stale
// entry survives). Builds run without holding the zone latch across
// page reads (the latch-order hierarchy places ZoneMaps.mu below the
// page latch): the builder records a per-page generation, decodes the
// page, and installs the entry only if the generation is unchanged.
// The post-mutation invalidation is what makes the generation check
// sound — a builder that read the generation after the writer's first
// invalidation but decoded the pre-write image installs a summary
// missing the new value, and only the second bump (which both deletes
// the entry and outdates the builder's generation) removes it. A
// reader can therefore observe a missing entry for a write still in
// flight (it scans the page — always sound) but never a surviving
// entry that omits an acknowledged write. Quarantining a page also
// invalidates its entry (HeapFile registers ZoneMaps.invalidate with
// BufferManager.OnQuarantine), so a page that goes unreadable after
// its entry was built is scanned — and reports ErrQuarantined —
// instead of being pruned on the strength of a summary taken before
// it went bad.
//
// Deletions and MVCC Xmax stamping do not invalidate: they only remove
// values or rewrite version headers, so the existing entry remains a
// superset and pruning stays sound (just occasionally pessimistic).
package storage

import (
	"errors"
	"math"
	"strings"
	"sync"
)

// ColZone summarises one column over every record version on a page.
// The flags record which value categories appear; the ranges are valid
// only when the corresponding flag is set. An over-approximate zone is
// always sound — pruning happens only when NO category could satisfy
// the predicate.
type ColZone struct {
	HasNull bool // any NULL
	HasNum  bool // any int/float/bool with a non-NaN float image
	HasNaN  bool // any float NaN
	HasBool bool // any bool (subset of HasNum; bools order above strings)
	HasStr  bool // any string
	// HasOther marks value kinds this summary does not model; a zone
	// carrying it never prunes.
	HasOther bool
	MinF     float64 // min/max float image over HasNum values
	MaxF     float64
	MinS     string // min/max over HasStr values
	MaxS     string
}

// absorb folds one value into the zone.
func (z *ColZone) absorb(v Value) {
	switch v.Kind {
	case KindNull:
		z.HasNull = true
	case KindString:
		if !z.HasStr {
			z.MinS, z.MaxS = v.Str, v.Str
		} else if v.Str < z.MinS {
			z.MinS = v.Str
		} else if v.Str > z.MaxS {
			z.MaxS = v.Str
		}
		z.HasStr = true
	case KindInt, KindFloat, KindBool:
		f, _ := v.AsFloat()
		if math.IsNaN(f) {
			z.HasNaN = true
			return
		}
		if !z.HasNum {
			z.MinF, z.MaxF = f, f
		} else if f < z.MinF {
			z.MinF = f
		} else if f > z.MaxF {
			z.MaxF = f
		}
		z.HasNum = true
		if v.Kind == KindBool {
			z.HasBool = true
		}
	default:
		z.HasOther = true
	}
}

// BuildColZones summarises decoded tuples into per-column zones. The
// zone width is the narrowest tuple's width, so every summarised column
// is present in every row; a non-nil empty slice means the page holds
// no rows at all (prunable under any predicate). A page containing a
// zero-width tuple yields nil — no summary: an empty slice there would
// read as "no rows" and prune the page's other, non-empty tuples.
func BuildColZones(ts []Tuple) []ColZone {
	if len(ts) == 0 {
		return []ColZone{}
	}
	width := len(ts[0])
	for _, t := range ts[1:] {
		if len(t) < width {
			width = len(t)
		}
	}
	if width == 0 {
		return nil
	}
	zones := make([]ColZone, width)
	for _, t := range ts {
		for c := 0; c < width; c++ {
			zones[c].absorb(t[c])
		}
	}
	// The absorbed strings are substrings of the page's decode arena;
	// clone so an installed entry retains only its min/max bytes, not a
	// page worth of string data.
	for c := range zones {
		if zones[c].HasStr {
			zones[c].MinS = strings.Clone(zones[c].MinS)
			zones[c].MaxS = strings.Clone(zones[c].MaxS)
		}
	}
	return zones
}

// ZoneReader is the optional zone-map surface of a heap reader: scan
// operators type-assert their HeapReader to it and, when present,
// snapshot the zones of their page list in one call. Returned zone
// slices are immutable once installed — safe to read without locks.
type ZoneReader interface {
	// PageZones returns the zone entry for each id (nil = no entry:
	// never built or invalidated — the page must be scanned).
	PageZones(ids []PageID) [][]ColZone
}

// ZoneMaps holds a heap file's per-page zone entries. The zero value
// is ready to use.
type ZoneMaps struct {
	mu      sync.Mutex
	entries map[PageID][]ColZone
	// gen counts invalidations per page; the builder re-checks it at
	// install time so a build racing a writer never installs a summary
	// of the pre-write image.
	gen map[PageID]uint64
}

// invalidate drops a page's entry and bumps its generation. Writers
// call this both BEFORE and AFTER mutating the page, and quarantine
// calls it when a page goes unreadable (see the package comment).
func (z *ZoneMaps) invalidate(id PageID) {
	z.mu.Lock()
	delete(z.entries, id)
	if z.gen == nil {
		z.gen = map[PageID]uint64{}
	}
	z.gen[id]++
	z.mu.Unlock()
}

// generation reads a page's current invalidation count.
func (z *ZoneMaps) generation(id PageID) uint64 {
	z.mu.Lock()
	defer z.mu.Unlock()
	return z.gen[id]
}

// install publishes a freshly built entry unless the page was
// invalidated since the builder read gen.
func (z *ZoneMaps) install(id PageID, gen uint64, zones []ColZone) {
	z.mu.Lock()
	if z.gen[id] == gen {
		if z.entries == nil {
			z.entries = map[PageID][]ColZone{}
		}
		z.entries[id] = zones
	}
	z.mu.Unlock()
}

// snapshot returns the entries for ids under one latch acquisition.
func (z *ZoneMaps) snapshot(ids []PageID) [][]ColZone {
	out := make([][]ColZone, len(ids))
	z.mu.Lock()
	for i, id := range ids {
		out[i] = z.entries[id]
	}
	z.mu.Unlock()
	return out
}

// reset drops every entry and generation (recovery reinstall).
func (z *ZoneMaps) reset() {
	z.mu.Lock()
	z.entries, z.gen = nil, nil
	z.mu.Unlock()
}

// PageZones implements ZoneReader for the raw (version-blind) file.
func (h *HeapFile) PageZones(ids []PageID) [][]ColZone {
	return h.zm.snapshot(ids)
}

// PageZones implements ZoneReader for a snapshot-bound view. Zones
// cover every version, a superset of what any snapshot can see, so the
// underlying file's entries prune soundly for every view.
func (v *HeapView) PageZones(ids []PageID) [][]ColZone {
	return v.h.PageZones(ids)
}

// BuildZoneMaps (re)builds the file's zone entries from its current
// pages. Safe to run concurrently with readers and writers: each page
// is decoded under its read latch only (never the zone latch), and the
// generation check drops summaries of pages that were written
// mid-build. Quarantined pages are skipped and left without an entry —
// an unreadable page is never trusted, so scans still touch (and
// report) it. Any other read or decode failure is returned to the
// caller, which on the durable path feeds the DB failure spine.
func (h *HeapFile) BuildZoneMaps() error {
	var buf []Tuple
	for _, id := range h.PageIDs() {
		gen := h.zm.generation(id)
		ts, err := h.PageTuplesInto(id, buf[:0])
		if errors.Is(err, ErrQuarantined) {
			continue
		}
		if err != nil {
			return err
		}
		buf = ts
		if zones := BuildColZones(ts); zones != nil {
			h.zm.install(id, gen, zones)
		}
	}
	return nil
}

package storage

import "fmt"

// HeapReader is the read surface scan operators consume: *HeapFile
// implements it directly (every version visible — the legacy,
// version-blind behaviour), and *HeapView implements it bound to a
// snapshot. Retyping the operators to this interface is the CC-layer
// plug-in boundary: the same serial, batch and morsel scan pipelines
// run transactional or non-transactional depending only on which
// reader the planner hands them.
type HeapReader interface {
	Name() string
	PageIDs() []PageID
	PageTuples(id PageID) ([]Tuple, error)
	PageTuplesInto(id PageID, dst []Tuple) ([]Tuple, error)
	Get(rid RID) (Tuple, error)
	All() ([]Tuple, error)
}

// HeapView is a snapshot-bound reader over a heap file: every read
// primitive filters record versions through the visibility closure,
// so scans are repeatable against concurrent writers without taking
// any lock beyond the page read latch.
type HeapView struct {
	h   *HeapFile
	vis Visibility
}

// View binds a heap file to a snapshot's visibility.
func (h *HeapFile) View(vis Visibility) *HeapView {
	return &HeapView{h: h, vis: vis}
}

// Name returns the underlying file name.
func (v *HeapView) Name() string { return v.h.Name() }

// PageIDs returns a snapshot of the file's page list.
func (v *HeapView) PageIDs() []PageID { return v.h.PageIDs() }

// PageTuples decodes one page's visible tuples.
func (v *HeapView) PageTuples(id PageID) ([]Tuple, error) {
	return v.PageTuplesInto(id, nil)
}

// PageTuplesInto appends one page's visible tuples to dst under a
// single latch acquisition.
func (v *HeapView) PageTuplesInto(id PageID, dst []Tuple) ([]Tuple, error) {
	return v.h.PageTuplesVisibleInto(id, dst, v.vis)
}

// Get fetches the tuple at rid if its version is visible; an
// invisible version reads as ErrNotFound, which is how index scans
// (whose entries cover every version) skip the ones outside the
// snapshot.
func (v *HeapView) Get(rid RID) (Tuple, error) {
	t, ver, err := v.h.GetVersion(rid)
	if err != nil {
		return nil, err
	}
	if v.vis != nil && !v.vis(ver) {
		return nil, fmt.Errorf("%w: %s not visible", ErrNotFound, rid)
	}
	return t, nil
}

// Scan calls fn for every visible record in file order.
func (v *HeapView) Scan(fn func(rid RID, t Tuple) bool) error {
	return v.h.ScanVersions(func(rid RID, t Tuple, ver Version) bool {
		if v.vis != nil && !v.vis(ver) {
			return true
		}
		return fn(rid, t)
	})
}

// All collects every visible tuple.
func (v *HeapView) All() ([]Tuple, error) {
	var out []Tuple
	err := v.Scan(func(_ RID, t Tuple) bool {
		out = append(out, t)
		return true
	})
	return out, err
}

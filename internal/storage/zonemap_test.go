// Zone-map unit tests: category/range summaries, the
// invalidate-around-mutate protocol (writers bump the generation both
// before and after the page op), generation-checked installs, and the
// quarantine rules (an unreadable page never gets an entry, and loses
// any entry it had when it goes unreadable).
package storage

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestBuildColZonesCategories(t *testing.T) {
	ts := []Tuple{
		{IntValue(5), StringValue("m"), NullValue()},
		{IntValue(-3), StringValue("a"), FloatValue(math.NaN())},
		{FloatValue(2.5), StringValue("z"), BoolValue(true)},
	}
	zones := BuildColZones(ts)
	if len(zones) != 3 {
		t.Fatalf("width = %d, want 3", len(zones))
	}
	z0 := zones[0]
	if !z0.HasNum || z0.HasNull || z0.HasStr || z0.HasNaN || z0.MinF != -3 || z0.MaxF != 5 {
		t.Fatalf("numeric zone = %+v", z0)
	}
	z1 := zones[1]
	if !z1.HasStr || z1.MinS != "a" || z1.MaxS != "z" || z1.HasNum {
		t.Fatalf("string zone = %+v", z1)
	}
	z2 := zones[2]
	if !z2.HasNull || !z2.HasNaN || !z2.HasBool || !z2.HasNum {
		t.Fatalf("mixed zone = %+v", z2)
	}
	if z2.MinF != 1 || z2.MaxF != 1 { // bool true's float image
		t.Fatalf("mixed zone range = %+v", z2)
	}
}

func TestBuildColZonesEmptyAndRagged(t *testing.T) {
	if z := BuildColZones(nil); z == nil || len(z) != 0 {
		t.Fatalf("empty page zone = %v, want non-nil empty", z)
	}
	// Ragged widths: summary covers only the common prefix.
	z := BuildColZones([]Tuple{
		{IntValue(1), IntValue(2)},
		{IntValue(3)},
	})
	if len(z) != 1 {
		t.Fatalf("ragged width = %d, want 1", len(z))
	}
}

func TestZoneMapsGenerationGuardsInstall(t *testing.T) {
	var zm ZoneMaps
	id := PageID(7)
	gen := zm.generation(id)
	// A racing invalidation between read and install drops the entry.
	zm.invalidate(id)
	zm.install(id, gen, []ColZone{{HasNum: true}})
	if got := zm.snapshot([]PageID{id}); got[0] != nil {
		t.Fatalf("stale install accepted: %v", got[0])
	}
	// Clean install lands.
	gen = zm.generation(id)
	zm.install(id, gen, []ColZone{{HasNum: true}})
	if got := zm.snapshot([]PageID{id}); got[0] == nil {
		t.Fatal("clean install dropped")
	}
	zm.reset()
	if got := zm.snapshot([]PageID{id}); got[0] != nil {
		t.Fatal("reset kept an entry")
	}
}

// TestHeapFileZoneInvalidation: insert/update invalidate the touched
// page's entry before the mutation; delete leaves the (superset) entry
// in place.
func TestHeapFileZoneInvalidation(t *testing.T) {
	h := newHeap(t, 256)
	var rids []RID
	for i := 0; i < 64; i++ {
		rid, err := h.Insert(Tuple{IntValue(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := h.BuildZoneMaps(); err != nil {
		t.Fatal(err)
	}
	ids := h.PageIDs()
	for i, z := range h.PageZones(ids) {
		if z == nil {
			t.Fatalf("page %d has no zone after build", ids[i])
		}
	}

	// Update invalidates its page; others keep their entries.
	victim := rids[0]
	if _, err := h.Update(victim, Tuple{IntValue(9999)}); err != nil {
		t.Fatal(err)
	}
	zs := h.PageZones(ids)
	if zs[0] != nil {
		t.Fatal("updated page kept a stale zone entry")
	}
	if len(ids) > 1 && zs[1] == nil {
		t.Fatal("untouched page lost its zone entry")
	}

	// Rebuild, then delete: the entry stays (conservative superset).
	if err := h.BuildZoneMaps(); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rids[1]); err != nil {
		t.Fatal(err)
	}
	if zs := h.PageZones(ids[:1]); zs[0] == nil {
		t.Fatal("delete invalidated a zone entry; removal keeps the summary a superset")
	}
}

// TestWriteInvalidatesAroundMutation: every completed write moves the
// page generation by at least two — one invalidation before the page
// op and one after. The second bump is the fix for the lost-write
// race: a builder that read the generation after the writer's
// pre-write invalidation but decoded the pre-write image would
// otherwise pass the install check and publish a summary missing the
// new value.
func TestWriteInvalidatesAroundMutation(t *testing.T) {
	h := newHeap(t, 16)
	rid, err := h.Insert(Tuple{IntValue(1)})
	if err != nil {
		t.Fatal(err)
	}
	id := rid.Page
	g := h.zm.generation(id)
	if _, err := h.Insert(Tuple{IntValue(2)}); err != nil {
		t.Fatal(err)
	}
	if got := h.zm.generation(id); got < g+2 {
		t.Fatalf("insert moved generation %d -> %d, want pre- AND post-mutation invalidation", g, got)
	}
	g = h.zm.generation(id)
	if _, err := h.Update(rid, Tuple{IntValue(3)}); err != nil {
		t.Fatal(err)
	}
	if got := h.zm.generation(id); got < g+2 {
		t.Fatalf("update moved generation %d -> %d, want pre- AND post-mutation invalidation", g, got)
	}
}

// assertZonesCoverPages checks the soundness invariant a scan relies
// on: every tuple currently on a page with a zone entry is covered by
// that entry (nil entries are fine — the page is simply scanned).
func assertZonesCoverPages(t *testing.T, h *HeapFile) {
	t.Helper()
	ids := h.PageIDs()
	for pi, zones := range h.PageZones(ids) {
		if zones == nil {
			continue
		}
		ts, err := h.PageTuples(ids[pi])
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range ts {
			for c, v := range tu {
				if c >= len(zones) {
					break
				}
				z := zones[c]
				covered := false
				switch v.Kind {
				case KindNull:
					covered = z.HasNull
				case KindString:
					covered = z.HasStr && z.MinS <= v.Str && z.MaxS >= v.Str
				case KindInt, KindFloat, KindBool:
					f, _ := v.AsFloat()
					if math.IsNaN(f) {
						covered = z.HasNaN
					} else {
						covered = z.HasNum && z.MinF <= f && z.MaxF >= f
					}
				}
				if !covered {
					t.Fatalf("page %d col %d: %v not covered by %+v", ids[pi], c, v, z)
				}
			}
		}
	}
}

// TestZoneBuildConcurrentWriterNeverStale races BuildZoneMaps against
// a writer inserting values far outside the seeded range, then checks
// that no surviving entry omits a committed row — the interleaving
// where the builder decodes a page between a writer's pre-write
// invalidation and the write itself must never leave a stale summary
// once the writes have returned.
func TestZoneBuildConcurrentWriterNeverStale(t *testing.T) {
	h := newHeap(t, 512)
	for i := 0; i < 200; i++ {
		if _, err := h.Insert(Tuple{IntValue(int64(i % 50))}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 500; i++ {
			if _, err := h.Insert(Tuple{IntValue(int64(100000 + i))}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 200; i++ {
		if err := h.BuildZoneMaps(); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	assertZonesCoverPages(t, h)
}

// TestZoneMapsPruneSoundnessRandom: for every page of a mixed-value
// heap, any tuple on the page must be absorbed by the page's built
// zone — i.e. each column's category flag covers the value.
func TestZoneMapsPruneSoundnessRandom(t *testing.T) {
	h := newHeap(t, 512)
	vals := []Value{
		IntValue(-100), IntValue(0), IntValue(100),
		FloatValue(-0.0), FloatValue(math.NaN()), FloatValue(2.5),
		StringValue(""), StringValue("zz"), BoolValue(false), NullValue(),
	}
	for i := 0; i < 300; i++ {
		if _, err := h.Insert(Tuple{vals[i%len(vals)], vals[(i*7+3)%len(vals)]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.BuildZoneMaps(); err != nil {
		t.Fatal(err)
	}
	ids := h.PageIDs()
	for pi, zones := range h.PageZones(ids) {
		ts, err := h.PageTuples(ids[pi])
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range ts {
			for c, v := range tu {
				z := zones[c]
				covered := false
				switch v.Kind {
				case KindNull:
					covered = z.HasNull
				case KindString:
					covered = z.HasStr && z.MinS <= v.Str && z.MaxS >= v.Str
				case KindInt, KindFloat, KindBool:
					f, _ := v.AsFloat()
					if math.IsNaN(f) {
						covered = z.HasNaN
					} else {
						covered = z.HasNum && z.MinF <= f && z.MaxF >= f
					}
				}
				if !covered {
					t.Fatalf("page %d col %d: %v not covered by %+v", ids[pi], c, v, z)
				}
			}
		}
	}
}

// TestZoneMapsQuarantinedPageNeverTrusted: after recovery quarantines
// a corrupt page, that page must have no zone entry (scans must touch
// and report it), while healthy pages keep theirs.
func TestZoneMapsQuarantinedPageNeverTrusted(t *testing.T) {
	walDisk, dataDisk := NewMemDisk(), NewMemDisk()
	db, err := Open(walDisk, dataDisk, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := db.CreateFile("t")
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 200) // force the table across several pages
	for i := 0; i < 200; i++ {
		if _, err := h.Insert(Tuple{IntValue(int64(i)), StringValue(fmt.Sprintf("r%d-%s", i, pad))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(h.PageIDs()) < 2 {
		t.Fatalf("test needs >=2 pages, got %d", len(h.PageIDs()))
	}
	victim := h.PageIDs()[0]
	data := dataDisk.Bytes()
	data[frameOffset(victim)+100] ^= 0xFF

	db2, err := Open(NewMemDiskFrom(walDisk.Bytes()), NewMemDiskFrom(data), DBOptions{})
	if err != nil {
		t.Fatalf("recovery with corrupt frame must not fail: %v", err)
	}
	if q := db2.Stats().Recovery.PagesQuarantined; q != 1 {
		t.Fatalf("PagesQuarantined = %d, want 1", q)
	}
	h2, _ := db2.File("t")
	ids := h2.PageIDs()
	zones := h2.PageZones(ids)
	healthy := 0
	for i, id := range ids {
		if id == victim {
			if zones[i] != nil {
				t.Fatal("quarantined page has a zone entry — it could be pruned instead of reported")
			}
			continue
		}
		if zones[i] != nil {
			healthy++
		}
	}
	if healthy == 0 {
		t.Fatal("recovery built no zone entries for healthy pages")
	}
	// And the quarantined page still reports on read, as always.
	if _, err := h2.PageTuples(victim); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("victim read = %v, want ErrQuarantined", err)
	}
}

// TestQuarantineDropsZoneEntry: a page quarantined AFTER its entry was
// built (checksum failure on a later re-read) must lose the entry, so
// every subsequent scan touches the page and reports ErrQuarantined
// instead of pruning past the corruption.
func TestQuarantineDropsZoneEntry(t *testing.T) {
	store := NewStore()
	bm := NewBufferManager(store, 16, NewLRU())
	h := NewHeapFile("t", store, bm)
	for i := 0; i < 8; i++ {
		if _, err := h.Insert(Tuple{IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.BuildZoneMaps(); err != nil {
		t.Fatal(err)
	}
	id := h.PageIDs()[0]
	if h.PageZones([]PageID{id})[0] == nil {
		t.Fatal("no zone entry after build")
	}
	bm.Quarantine(id, ErrChecksum)
	if h.PageZones([]PageID{id})[0] != nil {
		t.Fatal("quarantined page kept its zone entry — a scan could prune it instead of reporting")
	}
	// Rebuilding leaves it zone-less (builder skips quarantined pages)…
	if err := h.BuildZoneMaps(); err != nil {
		t.Fatal(err)
	}
	if h.PageZones([]PageID{id})[0] != nil {
		t.Fatal("rebuild installed an entry for a quarantined page")
	}
	// …and touching it still reports.
	if _, err := h.PageTuples(id); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined page read = %v, want ErrQuarantined", err)
	}
}

// TestBuildColZonesZeroWidth: a zero-column tuple yields no summary at
// all — an empty slice would read as "page holds no rows" and prune
// the page's other tuples.
func TestBuildColZonesZeroWidth(t *testing.T) {
	if z := BuildColZones([]Tuple{{IntValue(1)}, {}}); z != nil {
		t.Fatalf("zero-width summary = %v, want nil", z)
	}
	h := newHeap(t, 16)
	if _, err := h.Insert(Tuple{IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Insert(Tuple{}); err != nil {
		t.Fatal(err)
	}
	if err := h.BuildZoneMaps(); err != nil {
		t.Fatal(err)
	}
	if zs := h.PageZones(h.PageIDs()); zs[0] != nil {
		t.Fatal("page holding a zero-width tuple must stay zone-less (always scanned)")
	}
}

// TestCheckpointBuildsZones: the durable build point.
func TestCheckpointBuildsZones(t *testing.T) {
	db, err := Open(NewMemDisk(), NewMemDisk(), DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := db.CreateFile("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := h.Insert(Tuple{IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	ids := h.PageIDs()
	for _, z := range h.PageZones(ids) {
		if z != nil {
			t.Fatal("zone entry exists before any build point")
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i, z := range h.PageZones(ids) {
		if z == nil {
			t.Fatalf("page %d has no zone after checkpoint", ids[i])
		}
	}
}

// Zone-map unit tests: category/range summaries, the
// invalidate-before-mutate protocol, generation-checked installs, and
// the quarantine rule (an unreadable page never gets an entry).
package storage

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestBuildColZonesCategories(t *testing.T) {
	ts := []Tuple{
		{IntValue(5), StringValue("m"), NullValue()},
		{IntValue(-3), StringValue("a"), FloatValue(math.NaN())},
		{FloatValue(2.5), StringValue("z"), BoolValue(true)},
	}
	zones := BuildColZones(ts)
	if len(zones) != 3 {
		t.Fatalf("width = %d, want 3", len(zones))
	}
	z0 := zones[0]
	if !z0.HasNum || z0.HasNull || z0.HasStr || z0.HasNaN || z0.MinF != -3 || z0.MaxF != 5 {
		t.Fatalf("numeric zone = %+v", z0)
	}
	z1 := zones[1]
	if !z1.HasStr || z1.MinS != "a" || z1.MaxS != "z" || z1.HasNum {
		t.Fatalf("string zone = %+v", z1)
	}
	z2 := zones[2]
	if !z2.HasNull || !z2.HasNaN || !z2.HasBool || !z2.HasNum {
		t.Fatalf("mixed zone = %+v", z2)
	}
	if z2.MinF != 1 || z2.MaxF != 1 { // bool true's float image
		t.Fatalf("mixed zone range = %+v", z2)
	}
}

func TestBuildColZonesEmptyAndRagged(t *testing.T) {
	if z := BuildColZones(nil); z == nil || len(z) != 0 {
		t.Fatalf("empty page zone = %v, want non-nil empty", z)
	}
	// Ragged widths: summary covers only the common prefix.
	z := BuildColZones([]Tuple{
		{IntValue(1), IntValue(2)},
		{IntValue(3)},
	})
	if len(z) != 1 {
		t.Fatalf("ragged width = %d, want 1", len(z))
	}
}

func TestZoneMapsGenerationGuardsInstall(t *testing.T) {
	var zm ZoneMaps
	id := PageID(7)
	gen := zm.generation(id)
	// A racing invalidation between read and install drops the entry.
	zm.invalidate(id)
	zm.install(id, gen, []ColZone{{HasNum: true}})
	if got := zm.snapshot([]PageID{id}); got[0] != nil {
		t.Fatalf("stale install accepted: %v", got[0])
	}
	// Clean install lands.
	gen = zm.generation(id)
	zm.install(id, gen, []ColZone{{HasNum: true}})
	if got := zm.snapshot([]PageID{id}); got[0] == nil {
		t.Fatal("clean install dropped")
	}
	zm.reset()
	if got := zm.snapshot([]PageID{id}); got[0] != nil {
		t.Fatal("reset kept an entry")
	}
}

// TestHeapFileZoneInvalidation: insert/update invalidate the touched
// page's entry before the mutation; delete leaves the (superset) entry
// in place.
func TestHeapFileZoneInvalidation(t *testing.T) {
	h := newHeap(t, 256)
	var rids []RID
	for i := 0; i < 64; i++ {
		rid, err := h.Insert(Tuple{IntValue(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := h.BuildZoneMaps(); err != nil {
		t.Fatal(err)
	}
	ids := h.PageIDs()
	for i, z := range h.PageZones(ids) {
		if z == nil {
			t.Fatalf("page %d has no zone after build", ids[i])
		}
	}

	// Update invalidates its page; others keep their entries.
	victim := rids[0]
	if _, err := h.Update(victim, Tuple{IntValue(9999)}); err != nil {
		t.Fatal(err)
	}
	zs := h.PageZones(ids)
	if zs[0] != nil {
		t.Fatal("updated page kept a stale zone entry")
	}
	if len(ids) > 1 && zs[1] == nil {
		t.Fatal("untouched page lost its zone entry")
	}

	// Rebuild, then delete: the entry stays (conservative superset).
	if err := h.BuildZoneMaps(); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rids[1]); err != nil {
		t.Fatal(err)
	}
	if zs := h.PageZones(ids[:1]); zs[0] == nil {
		t.Fatal("delete invalidated a zone entry; removal keeps the summary a superset")
	}
}

// TestZoneMapsPruneSoundnessRandom: for every page of a mixed-value
// heap, any tuple on the page must be absorbed by the page's built
// zone — i.e. each column's category flag covers the value.
func TestZoneMapsPruneSoundnessRandom(t *testing.T) {
	h := newHeap(t, 512)
	vals := []Value{
		IntValue(-100), IntValue(0), IntValue(100),
		FloatValue(-0.0), FloatValue(math.NaN()), FloatValue(2.5),
		StringValue(""), StringValue("zz"), BoolValue(false), NullValue(),
	}
	for i := 0; i < 300; i++ {
		if _, err := h.Insert(Tuple{vals[i%len(vals)], vals[(i*7+3)%len(vals)]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.BuildZoneMaps(); err != nil {
		t.Fatal(err)
	}
	ids := h.PageIDs()
	for pi, zones := range h.PageZones(ids) {
		ts, err := h.PageTuples(ids[pi])
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range ts {
			for c, v := range tu {
				z := zones[c]
				covered := false
				switch v.Kind {
				case KindNull:
					covered = z.HasNull
				case KindString:
					covered = z.HasStr && z.MinS <= v.Str && z.MaxS >= v.Str
				case KindInt, KindFloat, KindBool:
					f, _ := v.AsFloat()
					if math.IsNaN(f) {
						covered = z.HasNaN
					} else {
						covered = z.HasNum && z.MinF <= f && z.MaxF >= f
					}
				}
				if !covered {
					t.Fatalf("page %d col %d: %v not covered by %+v", ids[pi], c, v, z)
				}
			}
		}
	}
}

// TestZoneMapsQuarantinedPageNeverTrusted: after recovery quarantines
// a corrupt page, that page must have no zone entry (scans must touch
// and report it), while healthy pages keep theirs.
func TestZoneMapsQuarantinedPageNeverTrusted(t *testing.T) {
	walDisk, dataDisk := NewMemDisk(), NewMemDisk()
	db, err := Open(walDisk, dataDisk, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := db.CreateFile("t")
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 200) // force the table across several pages
	for i := 0; i < 200; i++ {
		if _, err := h.Insert(Tuple{IntValue(int64(i)), StringValue(fmt.Sprintf("r%d-%s", i, pad))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(h.PageIDs()) < 2 {
		t.Fatalf("test needs >=2 pages, got %d", len(h.PageIDs()))
	}
	victim := h.PageIDs()[0]
	data := dataDisk.Bytes()
	data[frameOffset(victim)+100] ^= 0xFF

	db2, err := Open(NewMemDiskFrom(walDisk.Bytes()), NewMemDiskFrom(data), DBOptions{})
	if err != nil {
		t.Fatalf("recovery with corrupt frame must not fail: %v", err)
	}
	if q := db2.Stats().Recovery.PagesQuarantined; q != 1 {
		t.Fatalf("PagesQuarantined = %d, want 1", q)
	}
	h2, _ := db2.File("t")
	ids := h2.PageIDs()
	zones := h2.PageZones(ids)
	healthy := 0
	for i, id := range ids {
		if id == victim {
			if zones[i] != nil {
				t.Fatal("quarantined page has a zone entry — it could be pruned instead of reported")
			}
			continue
		}
		if zones[i] != nil {
			healthy++
		}
	}
	if healthy == 0 {
		t.Fatal("recovery built no zone entries for healthy pages")
	}
	// And the quarantined page still reports on read, as always.
	if _, err := h2.PageTuples(victim); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("victim read = %v, want ErrQuarantined", err)
	}
}

// TestCheckpointBuildsZones: the durable build point.
func TestCheckpointBuildsZones(t *testing.T) {
	db, err := Open(NewMemDisk(), NewMemDisk(), DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := db.CreateFile("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := h.Insert(Tuple{IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	ids := h.PageIDs()
	for _, z := range h.PageZones(ids) {
		if z != nil {
			t.Fatal("zone entry exists before any build point")
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i, z := range h.PageZones(ids) {
		if z == nil {
			t.Fatalf("page %d has no zone after checkpoint", ids[i])
		}
	}
}

package storage

import (
	"errors"
	"fmt"
	"sync"
)

// PageID identifies a page within a store.
type PageID uint32

// Store is the backing page repository (the simulated "disk"). Reads
// and writes are counted so experiments can price I/O; in this
// main-memory substrate the cost is purely statistical.
type Store struct {
	mu     sync.Mutex
	pages  map[PageID]*Page
	next   PageID
	reads  uint64
	writes uint64
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{pages: map[PageID]*Page{}} }

// Allocate creates a fresh page and returns its id.
func (s *Store) Allocate() PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	s.pages[id] = NewPage()
	return id
}

// ErrNoPage is returned for an unknown page id.
var ErrNoPage = errors.New("storage: no such page")

func (s *Store) read(id PageID) (*Page, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoPage, id)
	}
	s.reads++
	return p, nil
}

// Stats returns cumulative (reads, writes).
func (s *Store) Stats() (reads, writes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads, s.writes
}

// PageCount returns the number of allocated pages.
func (s *Store) PageCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// ---------------------------------------------------------------------------
// Replacement policies — the paper's fine-grain claim in miniature:
// the policy is a swappable component behind a small interface.

// Policy chooses eviction victims. Implementations are not
// concurrency-safe; the buffer manager serialises access.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Touched notes a hit/admission of id.
	Touched(id PageID)
	// Admitted notes id entering the pool.
	Admitted(id PageID)
	// Evicted notes id leaving the pool.
	Evicted(id PageID)
	// Victim picks an evictable page from candidates (non-pinned);
	// candidates is non-empty.
	Victim(candidates []PageID) PageID
}

// LRUPolicy evicts the least recently used page.
type LRUPolicy struct {
	stamp map[PageID]uint64
	tick  uint64
}

// NewLRU returns an LRU policy.
func NewLRU() *LRUPolicy { return &LRUPolicy{stamp: map[PageID]uint64{}} }

// Name implements Policy.
func (p *LRUPolicy) Name() string { return "lru" }

// Touched implements Policy.
func (p *LRUPolicy) Touched(id PageID) { p.tick++; p.stamp[id] = p.tick }

// Admitted implements Policy.
func (p *LRUPolicy) Admitted(id PageID) { p.Touched(id) }

// Evicted implements Policy.
func (p *LRUPolicy) Evicted(id PageID) { delete(p.stamp, id) }

// Victim implements Policy.
func (p *LRUPolicy) Victim(candidates []PageID) PageID {
	best := candidates[0]
	bestStamp := p.stamp[best]
	for _, c := range candidates[1:] {
		if s := p.stamp[c]; s < bestStamp {
			best, bestStamp = c, s
		}
	}
	return best
}

// ClockPolicy is the classic second-chance clock.
type ClockPolicy struct {
	ref  map[PageID]bool
	ring []PageID
	hand int
}

// NewClock returns a clock policy.
func NewClock() *ClockPolicy { return &ClockPolicy{ref: map[PageID]bool{}} }

// Name implements Policy.
func (p *ClockPolicy) Name() string { return "clock" }

// Touched implements Policy.
func (p *ClockPolicy) Touched(id PageID) { p.ref[id] = true }

// Admitted implements Policy.
func (p *ClockPolicy) Admitted(id PageID) {
	p.ref[id] = true
	p.ring = append(p.ring, id)
}

// Evicted implements Policy.
func (p *ClockPolicy) Evicted(id PageID) {
	delete(p.ref, id)
	for i, r := range p.ring {
		if r == id {
			p.ring = append(p.ring[:i], p.ring[i+1:]...)
			if p.hand > i {
				p.hand--
			}
			break
		}
	}
	if len(p.ring) > 0 {
		p.hand %= len(p.ring)
	} else {
		p.hand = 0
	}
}

// Victim implements Policy.
func (p *ClockPolicy) Victim(candidates []PageID) PageID {
	cand := map[PageID]bool{}
	for _, c := range candidates {
		cand[c] = true
	}
	for sweep := 0; sweep < 2*len(p.ring)+1; sweep++ {
		if len(p.ring) == 0 {
			break
		}
		id := p.ring[p.hand]
		p.hand = (p.hand + 1) % len(p.ring)
		if !cand[id] {
			continue
		}
		if p.ref[id] {
			p.ref[id] = false
			continue
		}
		return id
	}
	return candidates[0]
}

// ---------------------------------------------------------------------------
// Buffer manager.

// ErrAllPinned is returned when the pool has no evictable frame.
var ErrAllPinned = errors.New("storage: all frames pinned")

// BufferStats reports pool effectiveness.
type BufferStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns hits/(hits+misses), 0 when idle.
func (s BufferStats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// BufferManager caches pages over a store with a bounded frame pool
// and a pluggable replacement policy. GetPage is the paper's exemplar
// fine-grained operation.
type BufferManager struct {
	mu     sync.Mutex
	store  *Store
	frames map[PageID]*frame
	cap    int
	policy Policy
	stats  BufferStats
}

type frame struct {
	page *Page
	pins int
}

// NewBufferManager builds a pool of `capacity` frames over store.
func NewBufferManager(store *Store, capacity int, policy Policy) *BufferManager {
	if capacity < 1 {
		capacity = 64
	}
	if policy == nil {
		policy = NewLRU()
	}
	return &BufferManager{store: store, frames: map[PageID]*frame{}, cap: capacity, policy: policy}
}

// Policy returns the current replacement policy name.
func (b *BufferManager) Policy() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.policy.Name()
}

// SwapPolicy replaces the replacement policy at run time — the
// buffer-manager component being rebound without flushing the pool.
func (b *BufferManager) SwapPolicy(p Policy) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id := range b.frames {
		p.Admitted(id)
	}
	b.policy = p
}

// GetPage pins and returns a page, faulting it in if needed.
func (b *BufferManager) GetPage(id PageID) (*Page, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if f, ok := b.frames[id]; ok {
		f.pins++
		b.stats.Hits++
		b.policy.Touched(id)
		return f.page, nil
	}
	b.stats.Misses++
	if len(b.frames) >= b.cap {
		if err := b.evictLocked(); err != nil {
			return nil, err
		}
	}
	p, err := b.store.read(id)
	if err != nil {
		return nil, err
	}
	b.frames[id] = &frame{page: p, pins: 1}
	b.policy.Admitted(id)
	return p, nil
}

func (b *BufferManager) evictLocked() error {
	var cands []PageID
	for id, f := range b.frames {
		if f.pins == 0 {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		return ErrAllPinned
	}
	victim := b.policy.Victim(cands)
	delete(b.frames, victim)
	b.policy.Evicted(victim)
	b.stats.Evictions++
	return nil
}

// Unpin releases a pin taken by GetPage.
func (b *BufferManager) Unpin(id PageID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if f, ok := b.frames[id]; ok && f.pins > 0 {
		f.pins--
	}
}

// Resident returns the number of cached pages.
func (b *BufferManager) Resident() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.frames)
}

// Stats returns pool statistics.
func (b *BufferManager) Stats() BufferStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageID identifies a page within a store.
type PageID uint32

// storeShardCount is the fixed store shard fan-out (power of two).
// Page ids are dealt round-robin across shards, so a sequential scan
// touches every shard in turn and concurrent workers rarely collide.
const storeShardCount = 16

// Store is the backing page repository (the simulated "disk"). Reads
// and writes are counted so experiments can price I/O; in this
// main-memory substrate the cost is purely statistical. The page map
// is sharded by PageID so concurrent morsel workers do not serialise
// on one mutex, and the counters are atomics so Stats() never takes a
// shard lock.
type Store struct {
	shards [storeShardCount]storeShard
	next   atomic.Uint32
	reads  atomic.Uint64
	writes atomic.Uint64
}

type storeShard struct {
	mu    sync.Mutex
	pages map[PageID]*Page
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].pages = map[PageID]*Page{}
	}
	return s
}

func (s *Store) shard(id PageID) *storeShard {
	return &s.shards[uint32(id)&(storeShardCount-1)]
}

// Allocate creates a fresh page and returns its id.
func (s *Store) Allocate() PageID {
	id := PageID(s.next.Add(1) - 1)
	sh := s.shard(id)
	sh.mu.Lock()
	sh.pages[id] = NewPage()
	sh.mu.Unlock()
	return id
}

// ErrNoPage is returned for an unknown page id.
var ErrNoPage = errors.New("storage: no such page")

func (s *Store) read(id PageID) (*Page, error) {
	sh := s.shard(id)
	sh.mu.Lock()
	p, ok := sh.pages[id]
	sh.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoPage, id)
	}
	s.reads.Add(1)
	return p, nil
}

// Stats returns cumulative (reads, writes). Lock-free: monitor gauges
// can poll it mid-query without stalling scan workers.
func (s *Store) Stats() (reads, writes uint64) {
	return s.reads.Load(), s.writes.Load()
}

// install places a recovered page at a specific id, bumping the
// allocator cursor past it — recovery rebuilding the store from a
// checkpoint image and redo log must reproduce the exact pre-crash
// PageIDs or every logged RID would dangle.
func (s *Store) install(id PageID, p *Page) {
	sh := s.shard(id)
	sh.mu.Lock()
	sh.pages[id] = p
	sh.mu.Unlock()
	s.ensureNext(uint32(id) + 1)
}

// ensureNext raises the allocator cursor to at least n (recovery's
// next-page watermark).
func (s *Store) ensureNext(n uint32) {
	for {
		cur := s.next.Load()
		if cur >= n || s.next.CompareAndSwap(cur, n) {
			return
		}
	}
}

// PageCount returns the number of allocated pages.
func (s *Store) PageCount() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += len(s.shards[i].pages)
		s.shards[i].mu.Unlock()
	}
	return n
}

// ---------------------------------------------------------------------------
// Replacement policies — the paper's fine-grain claim in miniature:
// the policy is a swappable component behind a small interface.

// Policy chooses eviction victims. Implementations are not
// concurrency-safe; the buffer manager serialises access (per shard —
// each shard of a sharded pool runs its own policy instance, or a
// mutex-wrapped shared instance for policy types it cannot clone).
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Touched notes a hit/admission of id.
	Touched(id PageID)
	// Admitted notes id entering the pool.
	Admitted(id PageID)
	// Evicted notes id leaving the pool.
	Evicted(id PageID)
	// Victim picks an evictable page from candidates (non-pinned);
	// candidates is non-empty.
	Victim(candidates []PageID) PageID
}

// LRUPolicy evicts the least recently used page.
type LRUPolicy struct {
	stamp map[PageID]uint64
	tick  uint64
}

// NewLRU returns an LRU policy.
func NewLRU() *LRUPolicy { return &LRUPolicy{stamp: map[PageID]uint64{}} }

// Name implements Policy.
func (p *LRUPolicy) Name() string { return "lru" }

// Touched implements Policy.
func (p *LRUPolicy) Touched(id PageID) { p.tick++; p.stamp[id] = p.tick }

// Admitted implements Policy.
func (p *LRUPolicy) Admitted(id PageID) { p.Touched(id) }

// Evicted implements Policy.
func (p *LRUPolicy) Evicted(id PageID) { delete(p.stamp, id) }

// Victim implements Policy.
func (p *LRUPolicy) Victim(candidates []PageID) PageID {
	best := candidates[0]
	bestStamp := p.stamp[best]
	for _, c := range candidates[1:] {
		if s := p.stamp[c]; s < bestStamp {
			best, bestStamp = c, s
		}
	}
	return best
}

// ClockPolicy is the classic second-chance clock.
type ClockPolicy struct {
	ref  map[PageID]bool
	ring []PageID
	hand int
}

// NewClock returns a clock policy.
func NewClock() *ClockPolicy { return &ClockPolicy{ref: map[PageID]bool{}} }

// Name implements Policy.
func (p *ClockPolicy) Name() string { return "clock" }

// Touched implements Policy.
func (p *ClockPolicy) Touched(id PageID) { p.ref[id] = true }

// Admitted implements Policy.
func (p *ClockPolicy) Admitted(id PageID) {
	p.ref[id] = true
	p.ring = append(p.ring, id)
}

// Evicted implements Policy.
func (p *ClockPolicy) Evicted(id PageID) {
	delete(p.ref, id)
	for i, r := range p.ring {
		if r == id {
			p.ring = append(p.ring[:i], p.ring[i+1:]...)
			if p.hand > i {
				p.hand--
			}
			break
		}
	}
	if len(p.ring) > 0 {
		p.hand %= len(p.ring)
	} else {
		p.hand = 0
	}
}

// Victim implements Policy.
func (p *ClockPolicy) Victim(candidates []PageID) PageID {
	cand := map[PageID]bool{}
	for _, c := range candidates {
		cand[c] = true
	}
	for sweep := 0; sweep < 2*len(p.ring)+1; sweep++ {
		if len(p.ring) == 0 {
			break
		}
		id := p.ring[p.hand]
		p.hand = (p.hand + 1) % len(p.ring)
		if !cand[id] {
			continue
		}
		if p.ref[id] {
			p.ref[id] = false
			continue
		}
		return id
	}
	return candidates[0]
}

// clonePolicy returns a fresh instance of the same policy type for
// another shard, or false for policy types it does not know (custom
// test policies), which then share one mutex-wrapped instance.
func clonePolicy(p Policy) (Policy, bool) {
	switch p.(type) {
	case *LRUPolicy:
		return NewLRU(), true
	case *ClockPolicy:
		return NewClock(), true
	}
	return nil, false
}

// lockedPolicy serialises a shared policy instance across shards.
type lockedPolicy struct {
	mu sync.Mutex
	p  Policy
}

func (l *lockedPolicy) Name() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.p.Name()
}
func (l *lockedPolicy) Touched(id PageID) {
	l.mu.Lock()
	l.p.Touched(id)
	l.mu.Unlock()
}
func (l *lockedPolicy) Admitted(id PageID) {
	l.mu.Lock()
	l.p.Admitted(id)
	l.mu.Unlock()
}
func (l *lockedPolicy) Evicted(id PageID) {
	l.mu.Lock()
	l.p.Evicted(id)
	l.mu.Unlock()
}
func (l *lockedPolicy) Victim(candidates []PageID) PageID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.p.Victim(candidates)
}

// ---------------------------------------------------------------------------
// Buffer manager.

// ErrAllPinned is returned when the pool has no evictable frame.
var ErrAllPinned = errors.New("storage: all frames pinned")

// ErrQuarantined is returned for pages pulled from service after a
// checksum failure: the engine reports the corruption instead of
// silently serving bad bytes.
var ErrQuarantined = errors.New("storage: page quarantined (checksum failure)")

// BufferStats reports pool effectiveness and integrity counters.
type BufferStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// ChecksumFailures counts verifier rejections on fetch.
	ChecksumFailures uint64
	// QuarantinedPages is the number of pages currently quarantined.
	QuarantinedPages uint64
}

// HitRate returns hits/(hits+misses), 0 when idle.
func (s BufferStats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Shard sizing: pools get up to bufferShardMax shards, but never so
// many that a shard drops below bufferShardMinFrames frames — small
// deterministic pools (unit tests, ablations) stay single-shard and
// keep exact global LRU/clock semantics.
const (
	bufferShardMax       = 16
	bufferShardMinFrames = 32
)

func bufferShardCount(capacity int) int {
	n := 1
	for n*2 <= bufferShardMax && capacity/(n*2) >= bufferShardMinFrames {
		n *= 2
	}
	return n
}

// BufferManager caches pages over a store with a bounded frame pool
// and a pluggable replacement policy. GetPage is the paper's exemplar
// fine-grained operation, and the pool is built so many workers can
// issue it at once: frames are sharded by PageID (per-shard mutex and
// policy, capacity split evenly) and the hit/miss/eviction counters
// are atomics readable without any lock. Sharding trades exact global
// eviction order for concurrency — each shard evicts among its own
// resident pages — which only engages on pools of 64+ frames.
type BufferManager struct {
	store     *Store
	shards    []bufShard
	mask      uint32
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	checksum  atomic.Uint64

	// verifier, when set, runs on every pool miss before the fetched
	// page is admitted (the DB wires it to the page file's stored CRC).
	// A non-nil error quarantines the page. Guarded by quarantineMu
	// only at install time; reads are via the atomic pointer.
	verifier atomic.Pointer[func(PageID, *Page) error]

	quarantineMu sync.Mutex
	quarantined  map[PageID]error
	// onQuarantine holds callbacks run (outside every pool latch) the
	// first time a page is quarantined; heap files register their
	// zone-map invalidation here so a page that goes unreadable never
	// keeps a prunable summary. cbMu is an incidental leaf mutex, not
	// part of the latch hierarchy: registration can happen under the
	// db latch (CreateFile), so it must rank below nothing — it is
	// never held across any other acquisition.
	cbMu         sync.Mutex
	onQuarantine []func(PageID)
}

type bufShard struct {
	mu     sync.Mutex
	frames map[PageID]*frame
	cap    int
	policy Policy
}

type frame struct {
	page *Page
	pins int
}

// NewBufferManager builds a pool of `capacity` frames over store. The
// given policy seeds shard 0; known policy types (LRU, clock) are
// cloned per shard, unknown ones are shared behind a mutex.
func NewBufferManager(store *Store, capacity int, policy Policy) *BufferManager {
	if capacity < 1 {
		capacity = 64
	}
	if policy == nil {
		policy = NewLRU()
	}
	n := bufferShardCount(capacity)
	b := &BufferManager{store: store, shards: make([]bufShard, n), mask: uint32(n - 1)}
	perShard := capacity / n
	policies := shardPolicies(policy, n)
	for i := range b.shards {
		b.shards[i] = bufShard{frames: map[PageID]*frame{}, cap: perShard, policy: policies[i]}
	}
	b.quarantined = map[PageID]error{}
	return b
}

// SetVerifier installs the fetch-time integrity check run on every
// pool miss. Passing nil disables verification.
func (b *BufferManager) SetVerifier(fn func(PageID, *Page) error) {
	if fn == nil {
		b.verifier.Store(nil)
		return
	}
	b.verifier.Store(&fn)
}

// OnQuarantine registers fn to run after a page is first quarantined.
// Callbacks are invoked with no pool latch held (admvet: callbacks
// never run under engine latches), so they may take their own locks.
func (b *BufferManager) OnQuarantine(fn func(PageID)) {
	b.cbMu.Lock()
	b.onQuarantine = append(b.onQuarantine, fn)
	b.cbMu.Unlock()
}

// Quarantine pulls a page from service: subsequent GetPage calls fail
// with ErrQuarantined (wrapping cause) instead of serving bytes that
// failed their checksum. Registered OnQuarantine callbacks fire once
// per page, after the quarantine is in effect.
func (b *BufferManager) Quarantine(id PageID, cause error) {
	b.quarantineMu.Lock()
	_, dup := b.quarantined[id]
	if !dup {
		b.quarantined[id] = cause
	}
	b.quarantineMu.Unlock()
	b.cbMu.Lock()
	cbs := b.onQuarantine
	b.cbMu.Unlock()
	// Drop any resident frame so the poisoned image cannot be served
	// from cache. Pinned frames stay (the pin holder already has the
	// pointer); the quarantine check still blocks new fetches.
	sh := b.shard(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok && f.pins == 0 {
		delete(sh.frames, id)
		sh.policy.Evicted(id)
	}
	sh.mu.Unlock()
	if !dup {
		for _, fn := range cbs {
			fn(id)
		}
	}
}

// Quarantined returns the ids currently quarantined (diagnostics).
func (b *BufferManager) Quarantined() []PageID {
	b.quarantineMu.Lock()
	defer b.quarantineMu.Unlock()
	out := make([]PageID, 0, len(b.quarantined))
	for id := range b.quarantined {
		out = append(out, id)
	}
	return out
}

func (b *BufferManager) quarantineErr(id PageID) error {
	b.quarantineMu.Lock()
	cause, ok := b.quarantined[id]
	b.quarantineMu.Unlock()
	if !ok {
		return nil
	}
	if cause != nil {
		// Both sentinels stay matchable: ErrQuarantined for the service
		// state, the cause (typically ErrChecksum) for the diagnosis.
		return fmt.Errorf("%w: page %d: %w", ErrQuarantined, id, cause)
	}
	return fmt.Errorf("%w: page %d", ErrQuarantined, id)
}

// shardPolicies produces one policy per shard: clones when the type is
// clonable, otherwise one shared locked instance.
func shardPolicies(p Policy, n int) []Policy {
	out := make([]Policy, n)
	if n == 1 {
		out[0] = p
		return out
	}
	if _, ok := clonePolicy(p); !ok {
		shared := &lockedPolicy{p: p}
		for i := range out {
			out[i] = shared
		}
		return out
	}
	out[0] = p
	for i := 1; i < n; i++ {
		out[i], _ = clonePolicy(p)
	}
	return out
}

func (b *BufferManager) shard(id PageID) *bufShard {
	return &b.shards[uint32(id)&b.mask]
}

// ShardCount reports the pool's shard fan-out.
func (b *BufferManager) ShardCount() int { return len(b.shards) }

// Policy returns the current replacement policy name.
func (b *BufferManager) Policy() string {
	sh := &b.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.policy.Name()
}

// SwapPolicy replaces the replacement policy at run time — the
// buffer-manager component being rebound without flushing the pool.
// Each shard's resident pages are re-admitted into its new policy
// instance.
func (b *BufferManager) SwapPolicy(p Policy) {
	policies := shardPolicies(p, len(b.shards))
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		for id := range sh.frames {
			policies[i].Admitted(id)
		}
		sh.policy = policies[i]
		sh.mu.Unlock()
	}
}

// GetPage pins and returns a page, faulting it in if needed. On a
// pool miss the installed verifier (if any) checks the page before it
// is admitted; a failure quarantines the page and the fetch errors
// instead of serving unverified bytes.
func (b *BufferManager) GetPage(id PageID) (*Page, error) {
	if err := b.quarantineErr(id); err != nil {
		return nil, err
	}
	sh := b.shard(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		f.pins++
		sh.policy.Touched(id)
		sh.mu.Unlock()
		b.hits.Add(1)
		return f.page, nil
	}
	b.misses.Add(1)
	if len(sh.frames) >= sh.cap {
		if err := b.evictLocked(sh); err != nil {
			sh.mu.Unlock()
			return nil, err
		}
	}
	p, err := b.store.read(id)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	if vp := b.verifier.Load(); vp != nil {
		//admvet:allow latchorder verify-before-admit: the page must be checked under the shard latch or a racing fetch could pin unverified bytes
		if err := (*vp)(id, p); err != nil {
			sh.mu.Unlock()
			b.checksum.Add(1)
			b.Quarantine(id, err)
			return nil, b.quarantineErr(id)
		}
	}
	sh.frames[id] = &frame{page: p, pins: 1}
	sh.policy.Admitted(id)
	sh.mu.Unlock()
	return p, nil
}

func (b *BufferManager) evictLocked(sh *bufShard) error {
	var cands []PageID
	for id, f := range sh.frames {
		if f.pins == 0 {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		return ErrAllPinned
	}
	victim := sh.policy.Victim(cands)
	delete(sh.frames, victim)
	sh.policy.Evicted(victim)
	b.evictions.Add(1)
	return nil
}

// Unpin releases a pin taken by GetPage.
func (b *BufferManager) Unpin(id PageID) {
	sh := b.shard(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok && f.pins > 0 {
		f.pins--
	}
	sh.mu.Unlock()
}

// Resident returns the number of cached pages.
func (b *BufferManager) Resident() int {
	n := 0
	for i := range b.shards {
		b.shards[i].mu.Lock()
		n += len(b.shards[i].frames)
		b.shards[i].mu.Unlock()
	}
	return n
}

// PinnedFrames returns the total outstanding pin count across the
// pool — the leak-audit gauge: after a query completes (success or
// error), this must return to its pre-query value.
func (b *BufferManager) PinnedFrames() int {
	n := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			n += f.pins
		}
		sh.mu.Unlock()
	}
	return n
}

// Stats returns pool statistics. Mostly lock-free — safe for monitor
// gauges to poll mid-query; the quarantine count takes a small mutex
// no hot path holds.
func (b *BufferManager) Stats() BufferStats {
	b.quarantineMu.Lock()
	nq := uint64(len(b.quarantined))
	b.quarantineMu.Unlock()
	return BufferStats{
		Hits:             b.hits.Load(),
		Misses:           b.misses.Load(),
		Evictions:        b.evictions.Load(),
		ChecksumFailures: b.checksum.Load(),
		QuarantinedPages: nq,
	}
}

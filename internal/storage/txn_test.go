// MVCC transaction tests: the snapshot-visibility/conflict matrix
// (insert/delete/update races, read-own-writes, first-committer-wins)
// plus a race-detector stress run driving 16 concurrent sessions
// through the group-commit leader.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// newTxnDB opens a fresh DB (SyncManual — the group-commit policy)
// with one heap file.
func newTxnDB(t *testing.T) (*DB, *HeapFile) {
	t.Helper()
	db, err := Open(NewMemDisk(), NewMemDisk(), DBOptions{Sync: SyncManual})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	h, err := db.CreateFile("rows")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	return db, h
}

func rowTuple(k int64, rev int) Tuple {
	return Tuple{IntValue(k), StringValue(fmt.Sprintf("k%d-rev%d", k, rev))}
}

// keysOf extracts column-0 keys from a view's visible rows.
func keysOf(t *testing.T, v *HeapView) map[int64]bool {
	t.Helper()
	rows, err := v.All()
	if err != nil {
		t.Fatalf("all: %v", err)
	}
	out := map[int64]bool{}
	for _, r := range rows {
		out[r[0].Int] = true
	}
	return out
}

func wantKeys(t *testing.T, v *HeapView, want ...int64) {
	t.Helper()
	got := keysOf(t, v)
	if len(got) != len(want) {
		t.Fatalf("visible keys = %v, want %v", got, want)
	}
	for _, k := range want {
		if !got[k] {
			t.Fatalf("visible keys = %v, missing %d", got, k)
		}
	}
}

// TestSnapshotVisibilityMatrix is the table-driven visibility and
// conflict matrix. Each scenario scripts two transactions (and the
// autocommit heap) and states what every observer must see.
func TestSnapshotVisibilityMatrix(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, db *DB, h *HeapFile)
	}{
		{"plain records visible to every snapshot", func(t *testing.T, db *DB, h *HeapFile) {
			if _, err := h.Insert(rowTuple(1, 0)); err != nil {
				t.Fatal(err)
			}
			tx := db.Txns().Begin()
			defer tx.Rollback()
			wantKeys(t, tx.View(h), 1)
		}},
		{"uncommitted insert invisible to others, visible to self", func(t *testing.T, db *DB, h *HeapFile) {
			t1, t2 := db.Txns().Begin(), db.Txns().Begin()
			defer t1.Rollback()
			defer t2.Rollback()
			if _, err := t1.Insert(h, rowTuple(1, 0)); err != nil {
				t.Fatal(err)
			}
			wantKeys(t, t1.View(h), 1) // read-own-writes
			wantKeys(t, t2.View(h))    // snapshot isolation
		}},
		{"commit visible only to later snapshots", func(t *testing.T, db *DB, h *HeapFile) {
			t1 := db.Txns().Begin()
			if _, err := t1.Insert(h, rowTuple(1, 0)); err != nil {
				t.Fatal(err)
			}
			before := db.Txns().Begin() // snapshot predates the commit
			defer before.Rollback()
			if err := t1.Commit(); err != nil {
				t.Fatal(err)
			}
			after := db.Txns().Begin()
			defer after.Rollback()
			wantKeys(t, before.View(h)) // repeatable: still empty
			wantKeys(t, after.View(h), 1)
		}},
		{"delete hides from later snapshots, not earlier ones", func(t *testing.T, db *DB, h *HeapFile) {
			rid, err := h.Insert(rowTuple(1, 0))
			if err != nil {
				t.Fatal(err)
			}
			t1 := db.Txns().Begin()
			if _, err := t1.Delete(h, rid); err != nil {
				t.Fatal(err)
			}
			before := db.Txns().Begin()
			defer before.Rollback()
			wantKeys(t, t1.View(h)) // own delete: gone for self
			if err := t1.Commit(); err != nil {
				t.Fatal(err)
			}
			after := db.Txns().Begin()
			defer after.Rollback()
			wantKeys(t, before.View(h), 1) // old snapshot keeps the row
			wantKeys(t, after.View(h))
		}},
		{"update: old snapshot sees old version, new sees new", func(t *testing.T, db *DB, h *HeapFile) {
			rid, err := h.Insert(rowTuple(1, 0))
			if err != nil {
				t.Fatal(err)
			}
			t1 := db.Txns().Begin()
			if _, _, err := t1.Update(h, rid, rowTuple(1, 1)); err != nil {
				t.Fatal(err)
			}
			before := db.Txns().Begin()
			defer before.Rollback()
			if err := t1.Commit(); err != nil {
				t.Fatal(err)
			}
			after := db.Txns().Begin()
			defer after.Rollback()
			for _, probe := range []struct {
				tx   *Txn
				want string
			}{{before, "k1-rev0"}, {after, "k1-rev1"}} {
				rows, err := probe.tx.View(h).All()
				if err != nil {
					t.Fatal(err)
				}
				if len(rows) != 1 || rows[0][1].Str != probe.want {
					t.Fatalf("saw %v, want one row %q", rows, probe.want)
				}
			}
		}},
		{"delete-delete race: first claimer wins", func(t *testing.T, db *DB, h *HeapFile) {
			rid, err := h.Insert(rowTuple(1, 0))
			if err != nil {
				t.Fatal(err)
			}
			t1, t2 := db.Txns().Begin(), db.Txns().Begin()
			defer t1.Rollback()
			defer t2.Rollback()
			nrid, err := t1.Delete(h, rid)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := t2.Delete(h, nrid); !errors.Is(err, ErrWriteConflict) {
				t.Fatalf("second claim err = %v, want ErrWriteConflict", err)
			}
		}},
		{"update-update race: loser conflicts even after winner commits", func(t *testing.T, db *DB, h *HeapFile) {
			rid, err := h.Insert(rowTuple(1, 0))
			if err != nil {
				t.Fatal(err)
			}
			t1, t2 := db.Txns().Begin(), db.Txns().Begin()
			defer t2.Rollback()
			orid, _, err := t1.Update(h, rid, rowTuple(1, 1))
			if err != nil {
				t.Fatal(err)
			}
			if err := t1.Commit(); err != nil {
				t.Fatal(err)
			}
			// t2's snapshot predates t1's commit: first committer won.
			if _, _, err := t2.Update(h, orid, rowTuple(1, 2)); !errors.Is(err, ErrWriteConflict) {
				t.Fatalf("loser update err = %v, want ErrWriteConflict", err)
			}
		}},
		{"aborted claim is stealable", func(t *testing.T, db *DB, h *HeapFile) {
			rid, err := h.Insert(rowTuple(1, 0))
			if err != nil {
				t.Fatal(err)
			}
			t1 := db.Txns().Begin()
			nrid, err := t1.Delete(h, rid)
			if err != nil {
				t.Fatal(err)
			}
			if err := t1.Rollback(); err != nil {
				t.Fatal(err)
			}
			t2 := db.Txns().Begin()
			if _, err := t2.Delete(h, nrid); err != nil {
				t.Fatalf("steal after abort: %v", err)
			}
			if err := t2.Commit(); err != nil {
				t.Fatal(err)
			}
			after := db.Txns().Begin()
			defer after.Rollback()
			wantKeys(t, after.View(h))
		}},
		{"rollback undoes insert and restores claimed rows", func(t *testing.T, db *DB, h *HeapFile) {
			rid, err := h.Insert(rowTuple(1, 0))
			if err != nil {
				t.Fatal(err)
			}
			t1 := db.Txns().Begin()
			if _, err := t1.Insert(h, rowTuple(2, 0)); err != nil {
				t.Fatal(err)
			}
			if _, err := t1.Delete(h, rid); err != nil {
				t.Fatal(err)
			}
			if err := t1.Rollback(); err != nil {
				t.Fatal(err)
			}
			after := db.Txns().Begin()
			defer after.Rollback()
			wantKeys(t, after.View(h), 1)
		}},
		{"double delete in one txn conflicts with itself", func(t *testing.T, db *DB, h *HeapFile) {
			rid, err := h.Insert(rowTuple(1, 0))
			if err != nil {
				t.Fatal(err)
			}
			t1 := db.Txns().Begin()
			defer t1.Rollback()
			nrid, err := t1.Delete(h, rid)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := t1.Delete(h, nrid); !errors.Is(err, ErrWriteConflict) {
				t.Fatalf("second delete err = %v, want ErrWriteConflict", err)
			}
		}},
		{"read-only commit is free", func(t *testing.T, db *DB, h *HeapFile) {
			if _, err := h.Insert(rowTuple(1, 0)); err != nil {
				t.Fatal(err)
			}
			before := db.Txns().Stats()
			tx := db.Txns().Begin()
			wantKeys(t, tx.View(h), 1)
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			after := db.Txns().Stats()
			if after.Groups != before.Groups || after.Batched != before.Batched {
				t.Fatalf("read-only commit flushed a group: %+v -> %+v", before, after)
			}
		}},
		{"finished txn refuses further writes", func(t *testing.T, db *DB, h *HeapFile) {
			t1 := db.Txns().Begin()
			if err := t1.Commit(); err != nil {
				t.Fatal(err)
			}
			if _, err := t1.Insert(h, rowTuple(1, 0)); !errors.Is(err, ErrTxnDone) {
				t.Fatalf("insert after commit err = %v, want ErrTxnDone", err)
			}
			if err := t1.Commit(); !errors.Is(err, ErrTxnDone) {
				t.Fatalf("double commit err = %v, want ErrTxnDone", err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, h := newTxnDB(t)
			tc.run(t, db, h)
		})
	}
}

// TestTxnRecoveryCommitTable crashes with a mix of committed, aborted
// and in-flight transactions and checks the reopened DB reconstructs
// exactly the committed state.
func TestTxnRecoveryCommitTable(t *testing.T) {
	walMem, dataMem := NewMemDisk(), NewMemDisk()
	db, err := Open(walMem, dataMem, DBOptions{Sync: SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	h, err := db.CreateFile("rows")
	if err != nil {
		t.Fatal(err)
	}
	committed := db.Txns().Begin()
	if _, err := committed.Insert(h, rowTuple(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := committed.Commit(); err != nil {
		t.Fatal(err)
	}
	aborted := db.Txns().Begin()
	if _, err := aborted.Insert(h, rowTuple(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := aborted.Rollback(); err != nil {
		t.Fatal(err)
	}
	inflight := db.Txns().Begin()
	if _, err := inflight.Insert(h, rowTuple(3, 0)); err != nil {
		t.Fatal(err)
	}
	// Crash: reopen from the disks' surviving bytes, in-flight txn
	// never decided. (MemDisk writes are durable immediately; only the
	// missing commit record matters.)
	db2, err := Open(NewMemDiskFrom(walMem.Bytes()), NewMemDiskFrom(dataMem.Bytes()), DBOptions{Sync: SyncManual})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := db2.Stats().Recovery; got.TxnsCommitted != 1 || got.TxnsAborted != 1 {
		t.Fatalf("recovery txn counts = %+v, want 1 committed / 1 aborted", got)
	}
	h2, ok := db2.File("rows")
	if !ok {
		t.Fatal("rows file lost")
	}
	tx := db2.Txns().Begin()
	defer tx.Rollback()
	wantKeys(t, tx.View(h2), 1) // only the committed row survives
	// The recovered id clock must not reissue the in-flight id: a new
	// txn gets a fresh id, and the orphan version stays invisible.
	if tx.ID() <= inflight.ID() {
		t.Fatalf("recovered id clock %d not past in-flight id %d", tx.ID(), inflight.ID())
	}
}

// TestGroupCommitStress drives 16 concurrent sessions through the
// group-commit path under the race detector: every session loops
// begin-insert-commit with interleaved snapshot reads; afterwards all
// rows must be visible and the batching counters consistent.
func TestGroupCommitStress(t *testing.T) {
	db, h := newTxnDB(t)
	const sessions = 16
	const txnsPer = 25
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < txnsPer; i++ {
				tx := db.Txns().Begin()
				if _, err := tx.Insert(h, rowTuple(int64(s*txnsPer+i), 0)); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
				// Interleaved snapshot read: own row must be visible.
				rd := db.Txns().Begin()
				keys := keysOf(t, rd.View(h))
				if !keys[int64(s*txnsPer+i)] {
					errs <- fmt.Errorf("session %d: committed row %d invisible", s, s*txnsPer+i)
					return
				}
				_ = rd.Commit()
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	tx := db.Txns().Begin()
	defer tx.Rollback()
	keys := keysOf(t, tx.View(h))
	if len(keys) != sessions*txnsPer {
		t.Fatalf("visible rows = %d, want %d", len(keys), sessions*txnsPer)
	}
	st := db.Txns().Stats()
	if st.Batched != sessions*txnsPer {
		t.Fatalf("stats.Batched = %d, want %d", st.Batched, sessions*txnsPer)
	}
	if st.Groups == 0 || st.Groups > st.Batched {
		t.Fatalf("stats.Groups = %d out of range (batched %d)", st.Groups, st.Batched)
	}
	t.Logf("group commit: %d txns in %d groups (fan-in %.1f)",
		st.Batched, st.Groups, float64(st.Batched)/float64(st.Groups))
}

// TestGroupCommitConflictStress has all sessions fight over a small
// set of rows: every row claim must be won by exactly one live
// transaction at a time, and the final state must reflect a serial
// order (each row still has exactly one visible version).
func TestGroupCommitConflictStress(t *testing.T) {
	db, h := newTxnDB(t)
	const rows = 4
	rids := make([]RID, rows)
	for i := range rids {
		rid, err := h.Insert(rowTuple(int64(i), 0))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	const sessions = 8
	const attempts = 20
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				tx := db.Txns().Begin()
				target := (s + i) % rows
				// Find the row's currently visible version by key.
				var cur RID
				found := false
				err := tx.View(h).Scan(func(rid RID, tu Tuple) bool {
					if tu[0].Int == int64(target) {
						cur, found = rid, true
						return false
					}
					return true
				})
				if err != nil {
					errs <- err
					return
				}
				if !found {
					_ = tx.Rollback()
					errs <- fmt.Errorf("row %d has no visible version", target)
					return
				}
				_, _, err = tx.Update(h, cur, rowTuple(int64(target), s*attempts+i+1))
				if errors.Is(err, ErrWriteConflict) {
					if err := tx.Rollback(); err != nil {
						errs <- err
						return
					}
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	tx := db.Txns().Begin()
	defer tx.Rollback()
	perKey := map[int64]int{}
	err := tx.View(h).Scan(func(_ RID, tu Tuple) bool {
		perKey[tu[0].Int]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(perKey) != rows {
		t.Fatalf("visible keys = %v, want %d keys", perKey, rows)
	}
	for k, n := range perKey {
		if n != 1 {
			t.Fatalf("key %d has %d visible versions, want 1", k, n)
		}
	}
	st := db.Txns().Stats()
	t.Logf("conflict stress: %d commits in %d groups, %d aborts",
		st.Batched, st.Groups, st.Aborts)
}

package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the fixed page size (IA32 page granule; also what the
// §5.1 memory comparison uses as the page-protection unit).
const PageSize = 4096

// pageHeaderSize: u16 slot count + u16 free-space offset.
const pageHeaderSize = 4

// slotSize: u16 offset + u16 length per slot.
const slotSize = 4

// Errors returned by page operations.
var (
	ErrPageFull    = errors.New("storage: page full")
	ErrBadSlot     = errors.New("storage: bad slot")
	ErrSlotDeleted = errors.New("storage: slot deleted")
)

// Page is a slotted data page: records grow down from the end, the
// slot directory grows up after the header. Deleted slots keep their
// directory entry (length 0) so RIDs stay stable.
//
// Pages are latch-protected: mutators take the write latch, readers
// the read latch, so heap scans can run concurrently with inserts —
// the shared-scan requirement of the parallel executor.
//
// dec caches the page's decoded live tuples (the arena produced by
// TuplesInto): scans of a page that hasn't changed since its last
// decode skip record parsing entirely. Mutators clear it under the
// write latch; readers publish it under the read latch, so a cached
// image can never be stale. Cached tuples are shared across readers —
// consumers must treat scanned tuples as immutable (the executor
// always copies values before mutating).
type Page struct {
	mu  sync.RWMutex
	buf [PageSize]byte
	dec atomic.Pointer[[]Tuple]
}

// NewPage returns an initialised empty page.
func NewPage() *Page {
	p := &Page{}
	p.setSlotCount(0)
	p.setFreeEnd(PageSize)
	return p
}

func (p *Page) slotCount() int     { return int(binary.BigEndian.Uint16(p.buf[0:2])) }
func (p *Page) setSlotCount(n int) { binary.BigEndian.PutUint16(p.buf[0:2], uint16(n)) }
func (p *Page) freeEnd() int       { return int(binary.BigEndian.Uint16(p.buf[2:4])) }
func (p *Page) setFreeEnd(off int) { binary.BigEndian.PutUint16(p.buf[2:4], uint16(off)) }

func (p *Page) slotAt(i int) (off, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.BigEndian.Uint16(p.buf[base : base+2])),
		int(binary.BigEndian.Uint16(p.buf[base+2 : base+4]))
}

func (p *Page) setSlot(i, off, length int) {
	base := pageHeaderSize + i*slotSize
	binary.BigEndian.PutUint16(p.buf[base:base+2], uint16(off))
	binary.BigEndian.PutUint16(p.buf[base+2:base+4], uint16(length))
}

func (p *Page) freeEndActual() int { return p.freeEnd() }

// FreeSpace returns the bytes available for one more record + slot.
func (p *Page) FreeSpace() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.freeSpaceLocked()
}

func (p *Page) freeSpaceLocked() int {
	used := pageHeaderSize + p.slotCount()*slotSize
	free := p.freeEndActual() - used - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Slots returns the number of directory entries (live + deleted).
func (p *Page) Slots() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.slotCount()
}

// Insert stores a record and returns its slot number.
func (p *Page) Insert(rec []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dec.Store(nil)
	return p.insertLocked(rec)
}

func (p *Page) insertLocked(rec []byte) (int, error) {
	if len(rec) > p.freeSpaceLocked() {
		return 0, fmt.Errorf("%w: need %d, have %d", ErrPageFull, len(rec), p.freeSpaceLocked())
	}
	n := p.slotCount()
	newEnd := p.freeEndActual() - len(rec)
	copy(p.buf[newEnd:], rec)
	p.setSlot(n, newEnd, len(rec))
	p.setSlotCount(n + 1)
	p.setFreeEnd(newEnd)
	return n, nil
}

// Get returns a copy of the record in a slot. (A copy, not an alias:
// the caller decodes outside the page latch, so an alias would race
// with concurrent writers.)
func (p *Page) Get(slot int) ([]byte, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if slot < 0 || slot >= p.slotCount() {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadSlot, slot, p.slotCount())
	}
	off, length := p.slotAt(slot)
	if length == 0 {
		return nil, fmt.Errorf("%w: %d", ErrSlotDeleted, slot)
	}
	return append([]byte(nil), p.buf[off:off+length]...), nil
}

// Delete tombstones a slot (directory entry kept, space reclaimable
// by Compact).
func (p *Page) Delete(slot int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dec.Store(nil)
	return p.deleteLocked(slot)
}

func (p *Page) deleteLocked(slot int) error {
	if slot < 0 || slot >= p.slotCount() {
		return fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	if _, length := p.slotAt(slot); length == 0 {
		return fmt.Errorf("%w: %d", ErrSlotDeleted, slot)
	}
	off, _ := p.slotAt(slot)
	p.setSlot(slot, off, 0)
	return nil
}

// Update rewrites a slot in place when the new record fits the old
// space, otherwise deletes and reinserts (same-page only; returns the
// possibly-new slot).
func (p *Page) Update(slot int, rec []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dec.Store(nil)
	if slot < 0 || slot >= p.slotCount() {
		return 0, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	off, length := p.slotAt(slot)
	if length == 0 {
		return 0, fmt.Errorf("%w: %d", ErrSlotDeleted, slot)
	}
	if len(rec) <= length {
		copy(p.buf[off:], rec)
		p.setSlot(slot, off, len(rec))
		return slot, nil
	}
	if err := p.deleteLocked(slot); err != nil {
		return 0, err
	}
	return p.insertLocked(rec)
}

// Live reports whether the slot holds a record.
func (p *Page) Live(slot int) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.liveLocked(slot)
}

func (p *Page) liveLocked(slot int) bool {
	if slot < 0 || slot >= p.slotCount() {
		return false
	}
	_, length := p.slotAt(slot)
	return length > 0
}

// Compact rewrites the page dropping tombstoned space; slot numbers
// of live records are preserved (tombstones stay as zero-length
// entries so RIDs never dangle).
func (p *Page) Compact() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dec.Store(nil)
	type rec struct {
		slot int
		data []byte
	}
	var live []rec
	for i := 0; i < p.slotCount(); i++ {
		if p.liveLocked(i) {
			off, length := p.slotAt(i)
			live = append(live, rec{i, append([]byte(nil), p.buf[off:off+length]...)})
		}
	}
	n := p.slotCount()
	end := PageSize
	for i := 0; i < n; i++ {
		off, _ := p.slotAt(i)
		p.setSlot(i, off, 0)
	}
	for _, r := range live {
		end -= len(r.data)
		copy(p.buf[end:], r.data)
		p.setSlot(r.slot, end, len(r.data))
	}
	p.setFreeEnd(end)
	p.setSlotCount(n)
}

// LiveBytes returns the total bytes of live records.
func (p *Page) LiveBytes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for i := 0; i < p.slotCount(); i++ {
		if p.liveLocked(i) {
			_, l := p.slotAt(i)
			n += l
		}
	}
	return n
}

// Tuples decodes every live record in the page in slot order. It is
// the page-granular read path of the parallel executor: one latch
// acquisition per page, tuples copied out so workers never hold page
// state.
func (p *Page) Tuples() ([]Tuple, error) { return p.TuplesInto(nil) }

// TuplesInto appends every live tuple of the page (slot order) to dst
// and returns the extended slice — the batch decode of the vectorized
// scan path. The whole page is decoded under one read-latch
// acquisition, and all values are carved from a single arena sized by
// a header-only pre-pass, so the per-tuple allocation of the scalar
// path disappears (two allocations per page, amortised to near zero
// per tuple). The returned tuples own their memory: they stay valid
// after dst is reused, so retaining consumers (hash-join builds,
// drains) alias them without copying.
func (p *Page) TuplesInto(dst []Tuple) ([]Tuple, error) {
	if c := p.dec.Load(); c != nil {
		return append(dst, *c...), nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	// Pre-pass: size the value arena from the record headers alone,
	// and count live slots for the cache image.
	total, live := 0, 0
	for s := 0; s < p.slotCount(); s++ {
		off, length := p.slotAt(s)
		if length == 0 {
			continue
		}
		n, err := RecordFields(p.buf[off : off+length])
		if err != nil {
			return dst, err
		}
		total += n
		live++
	}
	// The arena never reallocates (capacity is exact), so the tuple
	// slices carved below remain valid.
	arena := make(Tuple, 0, total)
	decoded := make([]Tuple, 0, live)
	for s := 0; s < p.slotCount(); s++ {
		off, length := p.slotAt(s)
		if length == 0 {
			continue
		}
		start := len(arena)
		var err error
		arena, err = DecodeTupleInto(arena, p.buf[off:off+length])
		if err != nil {
			return dst, err
		}
		decoded = append(decoded, arena[start:len(arena):len(arena)])
	}
	// Publish under the read latch: any mutator's invalidation is
	// either already visible (we decoded its write) or will run after
	// our unlock and clear this image.
	p.dec.Store(&decoded)
	return append(dst, decoded...), nil
}

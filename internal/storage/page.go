package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the fixed page size (IA32 page granule; also what the
// §5.1 memory comparison uses as the page-protection unit).
const PageSize = 4096

// pageHeaderSize: u16 slot count + u16 free-space offset.
const pageHeaderSize = 4

// slotSize: u16 offset + u16 length per slot.
const slotSize = 4

// Errors returned by page operations.
var (
	ErrPageFull    = errors.New("storage: page full")
	ErrBadSlot     = errors.New("storage: bad slot")
	ErrSlotDeleted = errors.New("storage: slot deleted")
)

// Page is a slotted data page: records grow down from the end, the
// slot directory grows up after the header. Deleted slots keep their
// directory entry (length 0) so RIDs stay stable.
//
// Pages are latch-protected: mutators take the write latch, readers
// the read latch, so heap scans can run concurrently with inserts —
// the shared-scan requirement of the parallel executor.
//
// dec caches the page's decoded live tuples (the arena produced by
// TuplesInto): scans of a page that hasn't changed since its last
// decode skip record parsing entirely. Mutators clear it under the
// write latch; readers publish it under the read latch, so a cached
// image can never be stale. Cached tuples are shared across readers —
// consumers must treat scanned tuples as immutable (the executor
// always copies values before mutating).
type Page struct {
	mu  sync.RWMutex
	buf [PageSize]byte
	dec atomic.Pointer[decodedPage]
	// lsn is the LSN of the last logged mutation applied to this page
	// (0 for unlogged pages). Guarded by mu; recovery's redo pass
	// applies a record only when lsn < record LSN, which is what makes
	// replaying over a fuzzy-checkpoint image idempotent.
	lsn uint64
}

// decodedPage is the page's cached decode image: the live tuples in
// slot order and, when any record on the page carries an MVCC header,
// a parallel version slice (nil means every record is plain, which
// lets visibility-filtered scans skip per-tuple checks entirely).
type decodedPage struct {
	tuples []Tuple
	vers   []Version
}

// NewPage returns an initialised empty page.
func NewPage() *Page {
	p := &Page{}
	p.setSlotCount(0)
	p.setFreeEnd(PageSize)
	return p
}

// pageFromImage rebuilds a page from a checkpointed frame image and
// its flushed LSN (recovery only).
func pageFromImage(img []byte, lsn uint64) *Page {
	p := &Page{lsn: lsn}
	copy(p.buf[:], img)
	return p
}

func (p *Page) slotCount() int     { return int(binary.BigEndian.Uint16(p.buf[0:2])) }
func (p *Page) setSlotCount(n int) { binary.BigEndian.PutUint16(p.buf[0:2], uint16(n)) }
func (p *Page) freeEnd() int       { return int(binary.BigEndian.Uint16(p.buf[2:4])) }
func (p *Page) setFreeEnd(off int) { binary.BigEndian.PutUint16(p.buf[2:4], uint16(off)) }

func (p *Page) slotAt(i int) (off, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.BigEndian.Uint16(p.buf[base : base+2])),
		int(binary.BigEndian.Uint16(p.buf[base+2 : base+4]))
}

func (p *Page) setSlot(i, off, length int) {
	base := pageHeaderSize + i*slotSize
	binary.BigEndian.PutUint16(p.buf[base:base+2], uint16(off))
	binary.BigEndian.PutUint16(p.buf[base+2:base+4], uint16(length))
}

func (p *Page) freeEndActual() int { return p.freeEnd() }

// FreeSpace returns the bytes available for one more record + slot.
func (p *Page) FreeSpace() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.freeSpaceLocked()
}

func (p *Page) freeSpaceLocked() int {
	used := pageHeaderSize + p.slotCount()*slotSize
	free := p.freeEndActual() - used - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Slots returns the number of directory entries (live + deleted).
func (p *Page) Slots() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.slotCount()
}

// LSN returns the page's last-mutation LSN (0 if never logged).
func (p *Page) LSN() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.lsn
}

// CopyBytes snapshots the raw page image and its LSN under the read
// latch — the stable copy a checkpoint flush persists.
func (p *Page) CopyBytes() ([]byte, uint64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	img := make([]byte, PageSize)
	copy(img, p.buf[:])
	return img, p.lsn
}

// Insert stores a record and returns its slot number.
func (p *Page) Insert(rec []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dec.Store(nil)
	return p.insertLocked(rec)
}

// InsertWith is Insert with a logging hook that runs inside the latch
// critical section: after the record is applied, `after` appends the
// WAL record for the chosen slot and returns the LSN to stamp. Running
// the append under the latch is what guarantees per-page WAL order
// matches apply order — two writers racing on one page cannot log in
// the reverse of the order they applied. If `after` fails the
// mutation is rolled back and the page is unchanged.
func (p *Page) InsertWith(rec []byte, after func(slot int) (uint64, error)) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dec.Store(nil)
	slot, err := p.insertLocked(rec)
	if err != nil {
		return 0, err
	}
	//admvet:allow latchorder per-page WAL order must equal apply order, so the log callback runs under the page latch by design
	lsn, err := after(slot)
	if err != nil {
		// Roll back: the insert always lands in a fresh last slot.
		off, length := p.slotAt(slot)
		p.setSlotCount(slot)
		p.setFreeEnd(off + length)
		return 0, err
	}
	p.lsn = lsn
	return slot, nil
}

func (p *Page) insertLocked(rec []byte) (int, error) {
	if len(rec) > p.freeSpaceLocked() {
		return 0, fmt.Errorf("%w: need %d, have %d", ErrPageFull, len(rec), p.freeSpaceLocked())
	}
	n := p.slotCount()
	newEnd := p.freeEndActual() - len(rec)
	copy(p.buf[newEnd:], rec)
	p.setSlot(n, newEnd, len(rec))
	p.setSlotCount(n + 1)
	p.setFreeEnd(newEnd)
	return n, nil
}

// Get returns a copy of the record in a slot. (A copy, not an alias:
// the caller decodes outside the page latch, so an alias would race
// with concurrent writers.)
func (p *Page) Get(slot int) ([]byte, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if slot < 0 || slot >= p.slotCount() {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadSlot, slot, p.slotCount())
	}
	off, length := p.slotAt(slot)
	if length == 0 {
		return nil, fmt.Errorf("%w: %d", ErrSlotDeleted, slot)
	}
	return append([]byte(nil), p.buf[off:off+length]...), nil
}

// Delete tombstones a slot (directory entry kept, space reclaimable
// by Compact).
func (p *Page) Delete(slot int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dec.Store(nil)
	return p.deleteLocked(slot)
}

// DeleteWith is Delete with a latch-scoped logging hook (see
// InsertWith). Tombstoning is reversible, so a failed append restores
// the slot.
func (p *Page) DeleteWith(slot int, after func() (uint64, error)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dec.Store(nil)
	off, length := 0, 0
	if slot >= 0 && slot < p.slotCount() {
		off, length = p.slotAt(slot)
	}
	if err := p.deleteLocked(slot); err != nil {
		return err
	}
	//admvet:allow latchorder per-page WAL order must equal apply order, so the log callback runs under the page latch by design
	lsn, err := after()
	if err != nil {
		p.setSlot(slot, off, length)
		return err
	}
	p.lsn = lsn
	return nil
}

func (p *Page) deleteLocked(slot int) error {
	if slot < 0 || slot >= p.slotCount() {
		return fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	if _, length := p.slotAt(slot); length == 0 {
		return fmt.Errorf("%w: %d", ErrSlotDeleted, slot)
	}
	off, _ := p.slotAt(slot)
	p.setSlot(slot, off, 0)
	return nil
}

// Update rewrites a slot in place when the new record fits the old
// space, otherwise deletes and reinserts (same-page only; returns the
// possibly-new slot).
func (p *Page) Update(slot int, rec []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dec.Store(nil)
	return p.updateLocked(slot, rec)
}

func (p *Page) updateLocked(slot int, rec []byte) (int, error) {
	if slot < 0 || slot >= p.slotCount() {
		return 0, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	off, length := p.slotAt(slot)
	if length == 0 {
		return 0, fmt.Errorf("%w: %d", ErrSlotDeleted, slot)
	}
	if len(rec) <= length {
		copy(p.buf[off:], rec)
		p.setSlot(slot, off, len(rec))
		return slot, nil
	}
	if err := p.deleteLocked(slot); err != nil {
		return 0, err
	}
	newSlot, err := p.insertLocked(rec)
	if err != nil {
		// The move failed (page full): resurrect the old record — its
		// bytes are untouched, only the slot length was zeroed — so a
		// failed update never loses the row.
		p.setSlot(slot, off, length)
		return 0, err
	}
	return newSlot, nil
}

// MutateWith rewrites one record through `mutate` under a single
// write-latch hold: the callback receives the current image and
// returns the replacement, so a read-decide-write sequence (the MVCC
// claim: inspect the version, then stamp Xmax) is atomic with respect
// to every other writer of the page. `after` is the latch-scoped
// logging hook (see InsertWith); nil skips logging (detached files).
// Returns the record's resulting slot — same-length rewrites never
// move.
func (p *Page) MutateWith(slot int, mutate func(old []byte) ([]byte, error),
	after func(newSlot int, rec []byte) (uint64, error)) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if slot < 0 || slot >= p.slotCount() {
		return 0, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	off, length := p.slotAt(slot)
	if length == 0 {
		return 0, fmt.Errorf("%w: %d", ErrSlotDeleted, slot)
	}
	old := append([]byte(nil), p.buf[off:off+length]...)
	//admvet:allow latchorder the claim decision must be atomic with the rewrite, so the mutate callback runs under the page latch by design
	rec, err := mutate(old)
	if err != nil {
		return 0, err
	}
	p.dec.Store(nil)
	newSlot, err := p.updateLocked(slot, rec)
	if err != nil {
		return 0, err
	}
	if after == nil {
		return newSlot, nil
	}
	//admvet:allow latchorder per-page WAL order must equal apply order, so the log callback runs under the page latch by design
	lsn, err := after(newSlot, rec)
	if err != nil {
		if newSlot != slot {
			// Move path: drop the appended slot, then resurrect the old.
			insOff, insLen := p.slotAt(newSlot)
			p.setSlotCount(newSlot)
			p.setFreeEnd(insOff + insLen)
		}
		copy(p.buf[off:], old)
		p.setSlot(slot, off, len(old))
		return 0, err
	}
	p.lsn = lsn
	return newSlot, nil
}

// UpdateWith is Update with a latch-scoped logging hook (see
// InsertWith): `after` logs the update given the resulting slot. On a
// failed append the old record image and directory state are restored.
func (p *Page) UpdateWith(slot int, rec []byte, after func(newSlot int) (uint64, error)) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dec.Store(nil)
	if slot < 0 || slot >= p.slotCount() {
		return 0, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	off, length := p.slotAt(slot)
	if length == 0 {
		return 0, fmt.Errorf("%w: %d", ErrSlotDeleted, slot)
	}
	old := append([]byte(nil), p.buf[off:off+length]...)
	newSlot, err := p.updateLocked(slot, rec)
	if err != nil {
		return 0, err
	}
	//admvet:allow latchorder per-page WAL order must equal apply order, so the log callback runs under the page latch by design
	lsn, err := after(newSlot)
	if err != nil {
		if newSlot != slot {
			// Move path: drop the appended slot, then resurrect the old.
			insOff, insLen := p.slotAt(newSlot)
			p.setSlotCount(newSlot)
			p.setFreeEnd(insOff + insLen)
		}
		copy(p.buf[off:], old)
		p.setSlot(slot, off, len(old))
		return 0, err
	}
	p.lsn = lsn
	return newSlot, nil
}

// Live reports whether the slot holds a record.
func (p *Page) Live(slot int) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.liveLocked(slot)
}

func (p *Page) liveLocked(slot int) bool {
	if slot < 0 || slot >= p.slotCount() {
		return false
	}
	_, length := p.slotAt(slot)
	return length > 0
}

// Compact rewrites the page dropping tombstoned space; slot numbers
// of live records are preserved (tombstones stay as zero-length
// entries so RIDs never dangle).
func (p *Page) Compact() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dec.Store(nil)
	type rec struct {
		slot int
		data []byte
	}
	var live []rec
	for i := 0; i < p.slotCount(); i++ {
		if p.liveLocked(i) {
			off, length := p.slotAt(i)
			live = append(live, rec{i, append([]byte(nil), p.buf[off:off+length]...)})
		}
	}
	n := p.slotCount()
	end := PageSize
	for i := 0; i < n; i++ {
		off, _ := p.slotAt(i)
		p.setSlot(i, off, 0)
	}
	for _, r := range live {
		end -= len(r.data)
		copy(p.buf[end:], r.data)
		p.setSlot(r.slot, end, len(r.data))
	}
	p.setFreeEnd(end)
	p.setSlotCount(n)
}

// LiveBytes returns the total bytes of live records.
func (p *Page) LiveBytes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for i := 0; i < p.slotCount(); i++ {
		if p.liveLocked(i) {
			_, l := p.slotAt(i)
			n += l
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Redo appliers. Each is LSN-guarded (a page whose LSN is already at
// or past the record's was flushed after the mutation — reapplying
// would corrupt it) and slot-asserting: physiological redo on an
// LSN-consistent page must land in exactly the slot the original
// mutation produced, so a mismatch means the log and page diverged.

func (p *Page) redoInsert(slot int, rec []byte, lsn uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lsn >= lsn {
		return nil // flush already carried this mutation
	}
	p.dec.Store(nil)
	got, err := p.insertLocked(rec)
	if err != nil {
		return fmt.Errorf("storage: redo insert lsn %d: %w", lsn, err)
	}
	if got != slot {
		return fmt.Errorf("storage: redo insert lsn %d landed in slot %d, logged %d", lsn, got, slot)
	}
	p.lsn = lsn
	return nil
}

func (p *Page) redoDelete(slot int, lsn uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lsn >= lsn {
		return nil
	}
	p.dec.Store(nil)
	if err := p.deleteLocked(slot); err != nil {
		return fmt.Errorf("storage: redo delete lsn %d: %w", lsn, err)
	}
	p.lsn = lsn
	return nil
}

func (p *Page) redoUpdate(oldSlot, newSlot int, rec []byte, lsn uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lsn >= lsn {
		return nil
	}
	p.dec.Store(nil)
	got, err := p.updateLocked(oldSlot, rec)
	if err != nil {
		return fmt.Errorf("storage: redo update lsn %d: %w", lsn, err)
	}
	if got != newSlot {
		return fmt.Errorf("storage: redo update lsn %d landed in slot %d, logged %d", lsn, got, newSlot)
	}
	p.lsn = lsn
	return nil
}

// setLSN installs a recovered page's flushed LSN (recovery only).
func (p *Page) setLSN(lsn uint64) {
	p.mu.Lock()
	p.lsn = lsn
	p.mu.Unlock()
}

// Tuples decodes every live record in the page in slot order. It is
// the page-granular read path of the parallel executor: one latch
// acquisition per page, tuples copied out so workers never hold page
// state.
func (p *Page) Tuples() ([]Tuple, error) { return p.TuplesInto(nil) }

// TuplesInto appends every live tuple of the page (slot order) to dst
// and returns the extended slice — the batch decode of the vectorized
// scan path. The whole page is decoded under one read-latch
// acquisition, and all values are carved from a single arena sized by
// a header-only pre-pass, so the per-tuple allocation of the scalar
// path disappears (two allocations per page, amortised to near zero
// per tuple). The returned tuples own their memory: they stay valid
// after dst is reused, so retaining consumers (hash-join builds,
// drains) alias them without copying.
func (p *Page) TuplesInto(dst []Tuple) ([]Tuple, error) {
	d, err := p.decoded()
	if err != nil {
		return dst, err
	}
	return append(dst, d.tuples...), nil
}

// TuplesVisibleInto is TuplesInto filtered through a snapshot: only
// versions vis reports visible are appended. This is the MVCC read
// path of the batch executor — the filter runs inside the (cached)
// decode loop, so snapshot scans are lock-free against the version
// store and cost nothing on pages with no versioned records.
func (p *Page) TuplesVisibleInto(dst []Tuple, vis Visibility) ([]Tuple, error) {
	d, err := p.decoded()
	if err != nil {
		return dst, err
	}
	if d.vers == nil || vis == nil {
		// All-plain page: the zero Version is visible to every snapshot.
		return append(dst, d.tuples...), nil
	}
	for i, t := range d.tuples {
		if vis(d.vers[i]) {
			dst = append(dst, t)
		}
	}
	return dst, nil
}

// decoded returns the page's decode image, producing and publishing
// it under the read latch on a cache miss.
func (p *Page) decoded() (*decodedPage, error) {
	if c := p.dec.Load(); c != nil {
		return c, nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	// Pre-pass: size the value arena from the record headers alone,
	// count live slots for the cache image, and note whether any
	// record carries an MVCC header (the common all-plain page skips
	// the version slice entirely).
	total, live, versioned := 0, 0, false
	for s := 0; s < p.slotCount(); s++ {
		off, length := p.slotAt(s)
		if length == 0 {
			continue
		}
		n, err := RecordFields(p.buf[off : off+length])
		if err != nil {
			return nil, err
		}
		if length >= 2 && binary.BigEndian.Uint16(p.buf[off:off+2]) == versionMarker {
			versioned = true
		}
		total += n
		live++
	}
	// The arena never reallocates (capacity is exact), so the tuple
	// slices carved below remain valid.
	arena := make(Tuple, 0, total)
	d := &decodedPage{tuples: make([]Tuple, 0, live)}
	if versioned {
		d.vers = make([]Version, 0, live)
	}
	for s := 0; s < p.slotCount(); s++ {
		off, length := p.slotAt(s)
		if length == 0 {
			continue
		}
		rec := p.buf[off : off+length]
		if versioned {
			v, err := RecordVersion(rec)
			if err != nil {
				return nil, err
			}
			d.vers = append(d.vers, v)
		}
		start := len(arena)
		var err error
		arena, err = DecodeTupleInto(arena, rec)
		if err != nil {
			return nil, err
		}
		d.tuples = append(d.tuples, arena[start:len(arena):len(arena)])
	}
	// Publish under the read latch: any mutator's invalidation is
	// either already visible (we decoded its write) or will run after
	// our unlock and clear this image.
	p.dec.Store(d)
	return d, nil
}

package storage

import (
	"errors"
	"fmt"
	"sync"
)

// RID is a record identifier: page + slot. RIDs are stable across
// deletes and compaction.
type RID struct {
	Page PageID
	Slot int
}

func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// ErrNotFound is returned for missing records.
var ErrNotFound = errors.New("storage: record not found")

// HeapFile is an unordered record file over the buffer manager. When
// attached to a DB (db != nil) every mutation is redo-logged to the
// WAL before it is acknowledged; detached heap files keep the original
// in-memory-only behaviour.
type HeapFile struct {
	mu    sync.Mutex
	name  string
	bm    *BufferManager
	store *Store
	db    *DB
	pages []PageID
	live  int
	// zm holds the file's per-page zone maps. Mutation paths that can
	// change page VALUES (insert, update) invalidate the page's entry
	// both before touching it and again once the mutation lands — the
	// second bump is what keeps a concurrent BuildZoneMaps from keeping
	// a summary of the pre-write image (see zonemap.go). Delete and
	// Xmax stamping leave entries in place — removal and version-header
	// rewrites keep the summary a superset.
	zm ZoneMaps
}

// NewHeapFile creates an empty heap file.
func NewHeapFile(name string, store *Store, bm *BufferManager) *HeapFile {
	return newHeapFile(name, store, bm, nil)
}

// newHeapFile is the shared constructor (recovery builds files with
// the owning DB attached). Registering the zone invalidation with the
// buffer manager keeps quarantine and pruning consistent: a page
// pulled from service after its entry was built loses the entry, so
// every later scan attempts the read and reports ErrQuarantined
// instead of silently pruning past corruption.
func newHeapFile(name string, store *Store, bm *BufferManager, db *DB) *HeapFile {
	h := &HeapFile{name: name, bm: bm, store: store, db: db}
	if bm != nil {
		bm.OnQuarantine(h.zm.invalidate)
	}
	return h
}

// Name returns the file name.
func (h *HeapFile) Name() string { return h.name }

// Count returns the number of live records.
func (h *HeapFile) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.live
}

// Pages returns the number of pages in the file.
func (h *HeapFile) Pages() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pages)
}

// Insert appends a tuple and returns its RID.
func (h *HeapFile) Insert(t Tuple) (RID, error) {
	return h.insertRec(EncodeTuple(t))
}

// InsertVersion appends a tuple carrying an MVCC header — the
// transaction layer's insert: the version is born with Xmin set to
// the writing transaction and becomes globally visible only when that
// transaction's commit record is durable.
func (h *HeapFile) InsertVersion(t Tuple, v Version) (RID, error) {
	return h.insertRec(EncodeVersionedTuple(t, v))
}

func (h *HeapFile) insertRec(rec []byte) (RID, error) {
	if len(rec) > PageSize-pageHeaderSize-2*slotSize {
		return RID{}, fmt.Errorf("storage: record of %d bytes exceeds page capacity", len(rec))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	// Try the last page first (append locality).
	if n := len(h.pages); n > 0 {
		id := h.pages[n-1]
		p, err := h.bm.GetPage(id)
		if err != nil {
			return RID{}, err
		}
		h.zm.invalidate(id) // before the mutation is observable
		slot, err := h.insertPage(p, id, rec)
		h.zm.invalidate(id) // and after: outdate any mid-write build
		h.bm.Unpin(id)
		if err == nil {
			h.live++
			return RID{Page: id, Slot: slot}, nil
		}
		if !errors.Is(err, ErrPageFull) {
			return RID{}, err
		}
	}
	id := h.store.Allocate()
	if h.db != nil {
		if err := h.db.logAlloc(h.name, id); err != nil {
			return RID{}, err
		}
	}
	h.pages = append(h.pages, id)
	p, err := h.bm.GetPage(id)
	if err != nil {
		return RID{}, err
	}
	defer h.bm.Unpin(id)
	h.zm.invalidate(id)       // before the mutation is observable
	defer h.zm.invalidate(id) // and after: outdate any mid-write build
	slot, err := h.insertPage(p, id, rec)
	if err != nil {
		return RID{}, err
	}
	h.live++
	return RID{Page: id, Slot: slot}, nil
}

// insertPage applies one insert, logging it inside the page latch
// when the file is durable.
func (h *HeapFile) insertPage(p *Page, id PageID, rec []byte) (int, error) {
	if h.db == nil {
		return p.Insert(rec)
	}
	return p.InsertWith(rec, func(slot int) (uint64, error) {
		return h.db.logInsert(id, slot, rec)
	})
}

// Get fetches the tuple at rid.
func (h *HeapFile) Get(rid RID) (Tuple, error) {
	p, err := h.bm.GetPage(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.bm.Unpin(rid.Page)
	rec, err := p.Get(rid.Slot)
	if err != nil {
		if errors.Is(err, ErrSlotDeleted) || errors.Is(err, ErrBadSlot) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, rid)
		}
		return nil, err
	}
	return DecodeTuple(rec)
}

// GetVersion fetches the tuple and MVCC version at rid (zero version
// for plain records).
func (h *HeapFile) GetVersion(rid RID) (Tuple, Version, error) {
	p, err := h.bm.GetPage(rid.Page)
	if err != nil {
		return nil, Version{}, err
	}
	defer h.bm.Unpin(rid.Page)
	rec, err := p.Get(rid.Slot)
	if err != nil {
		if errors.Is(err, ErrSlotDeleted) || errors.Is(err, ErrBadSlot) {
			return nil, Version{}, fmt.Errorf("%w: %s", ErrNotFound, rid)
		}
		return nil, Version{}, err
	}
	return DecodeRecord(rec)
}

// SetXmax stamps the deleting transaction on the record at rid — the
// MVCC claim. `decide` inspects the record's current version under
// the page write latch and may refuse (write conflict); decision and
// stamp being one critical section is what makes first-claimer-wins
// sound. A nil decide stamps unconditionally (rollback's un-claim).
// Stamping a versioned record is an in-place same-length rewrite;
// upgrading a plain record grows it by the header and may move it, so
// the record's resulting RID is returned.
func (h *HeapFile) SetXmax(rid RID, xmax uint64, decide func(Version) error) (RID, error) {
	slot, err := h.setXmaxOnce(rid, xmax, decide)
	if errors.Is(err, ErrPageFull) {
		// A plain-record upgrade did not fit: reclaim tombstoned space
		// and retry once (decide re-runs — the record may have changed
		// between the latch holds).
		if p, perr := h.bm.GetPage(rid.Page); perr == nil {
			p.Compact()
			h.bm.Unpin(rid.Page)
			slot, err = h.setXmaxOnce(rid, xmax, decide)
		}
	}
	if err != nil {
		if errors.Is(err, ErrSlotDeleted) && decide != nil {
			// A guarded claim found the slot tombstoned: a concurrent
			// claimer's plain→versioned upgrade moved the record (or a
			// physical delete removed it) between the claimant reading
			// the RID and reaching the page latch. To the loser that is
			// a write conflict — retryable — not a missing row.
			return RID{}, fmt.Errorf("%w: record at %s concurrently moved or removed", ErrWriteConflict, rid)
		}
		if errors.Is(err, ErrSlotDeleted) || errors.Is(err, ErrBadSlot) {
			return RID{}, fmt.Errorf("%w: %s", ErrNotFound, rid)
		}
		return RID{}, err
	}
	return RID{Page: rid.Page, Slot: slot}, nil
}

func (h *HeapFile) setXmaxOnce(rid RID, xmax uint64, decide func(Version) error) (int, error) {
	p, err := h.bm.GetPage(rid.Page)
	if err != nil {
		return 0, err
	}
	defer h.bm.Unpin(rid.Page)
	var after func(newSlot int, rec []byte) (uint64, error)
	if h.db != nil {
		after = func(newSlot int, rec []byte) (uint64, error) {
			return h.db.logUpdate(rid.Page, rid.Slot, newSlot, rec)
		}
	}
	return p.MutateWith(rid.Slot, func(old []byte) ([]byte, error) {
		if decide != nil {
			v, err := RecordVersion(old)
			if err != nil {
				return nil, err
			}
			if err := decide(v); err != nil {
				return nil, err
			}
		}
		return stampXmax(old, xmax), nil
	}, after)
}

// Delete removes the record at rid.
func (h *HeapFile) Delete(rid RID) error {
	p, err := h.bm.GetPage(rid.Page)
	if err != nil {
		return err
	}
	defer h.bm.Unpin(rid.Page)
	var derr error
	if h.db == nil {
		derr = p.Delete(rid.Slot)
	} else {
		derr = p.DeleteWith(rid.Slot, func() (uint64, error) {
			return h.db.logDelete(rid.Page, rid.Slot)
		})
	}
	if derr != nil {
		if errors.Is(derr, ErrSlotDeleted) || errors.Is(derr, ErrBadSlot) {
			return fmt.Errorf("%w: %s", ErrNotFound, rid)
		}
		return derr
	}
	h.mu.Lock()
	h.live--
	h.mu.Unlock()
	return nil
}

// Update rewrites the record at rid in place when it fits; otherwise
// the record moves within its page (RID slot may change) or, if the
// page cannot hold it, is deleted and re-inserted elsewhere. The
// record's current RID is returned.
func (h *HeapFile) Update(rid RID, t Tuple) (RID, error) {
	rec := EncodeTuple(t)
	p, err := h.bm.GetPage(rid.Page)
	if err != nil {
		return RID{}, err
	}
	h.zm.invalidate(rid.Page) // before the mutation is observable
	var slot int
	if h.db == nil {
		slot, err = p.Update(rid.Slot, rec)
	} else {
		slot, err = p.UpdateWith(rid.Slot, rec, func(newSlot int) (uint64, error) {
			return h.db.logUpdate(rid.Page, rid.Slot, newSlot, rec)
		})
	}
	h.zm.invalidate(rid.Page) // and after: outdate any mid-write build
	h.bm.Unpin(rid.Page)
	if err == nil {
		return RID{Page: rid.Page, Slot: slot}, nil
	}
	if errors.Is(err, ErrSlotDeleted) || errors.Is(err, ErrBadSlot) {
		return RID{}, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	if !errors.Is(err, ErrPageFull) {
		return RID{}, err
	}
	// Record no longer fits its page: move it.
	if err := h.Delete(rid); err != nil {
		return RID{}, err
	}
	return h.Insert(t)
}

// PageIDs returns a snapshot of the file's page list. The snapshot is
// the unit of work distribution for parallel scans: each page id can
// be handed to a different worker and read via PageTuples.
func (h *HeapFile) PageIDs() []PageID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]PageID(nil), h.pages...)
}

// PageTuples decodes every live tuple on one page under the page read
// latch. It is safe to call from many goroutines at once — this is
// the per-partition cursor primitive of the parallel executor.
func (h *HeapFile) PageTuples(id PageID) ([]Tuple, error) {
	return h.PageTuplesInto(id, nil)
}

// PageTuplesInto is PageTuples with a caller-owned batch: the page's
// live tuples are appended to dst (usually dst[:0] of a recycled
// batch) under a single latch acquisition, decoded arena-style with no
// per-tuple allocation. It replaces the copy-per-Get discipline on hot
// paths — hash-join builds and probes read whole pages through here
// instead of RID-at-a-time Get calls. The returned tuples stay valid
// after dst is recycled (they own their arena), so both retaining and
// streaming consumers are safe.
func (h *HeapFile) PageTuplesInto(id PageID, dst []Tuple) ([]Tuple, error) {
	p, err := h.bm.GetPage(id)
	if err != nil {
		return dst, err
	}
	defer h.bm.Unpin(id)
	return p.TuplesInto(dst)
}

// PageTuplesVisibleInto is PageTuplesInto filtered through a
// snapshot: only versions vis reports visible are appended — the
// page-granular MVCC read primitive HeapView threads through the
// batch executor.
func (h *HeapFile) PageTuplesVisibleInto(id PageID, dst []Tuple, vis Visibility) ([]Tuple, error) {
	p, err := h.bm.GetPage(id)
	if err != nil {
		return dst, err
	}
	defer h.bm.Unpin(id)
	return p.TuplesVisibleInto(dst, vis)
}

// ScanVersions calls fn for every live record in file order with its
// MVCC version (zero for plain records); returning false stops the
// scan. The transaction layer's DML scans run through here so the
// victim set is computed against the statement's snapshot.
func (h *HeapFile) ScanVersions(fn func(rid RID, t Tuple, v Version) bool) error {
	h.mu.Lock()
	pages := append([]PageID(nil), h.pages...)
	h.mu.Unlock()
	for _, id := range pages {
		stop, err := h.scanPageVersions(id, fn)
		if err != nil || stop {
			return err
		}
	}
	return nil
}

func (h *HeapFile) scanPageVersions(id PageID, fn func(rid RID, t Tuple, v Version) bool) (stop bool, err error) {
	p, err := h.bm.GetPage(id)
	if err != nil {
		return false, err
	}
	defer h.bm.Unpin(id)
	for s := 0; s < p.Slots(); s++ {
		if !p.Live(s) {
			continue
		}
		rec, err := p.Get(s)
		if errors.Is(err, ErrSlotDeleted) {
			continue // deleted between Live and Get by a concurrent writer
		}
		if err != nil {
			return false, err
		}
		t, v, err := DecodeRecord(rec)
		if err != nil {
			return false, err
		}
		if !fn(RID{Page: id, Slot: s}, t, v) {
			return true, nil
		}
	}
	return false, nil
}

// ScanPartition calls fn for every live record on the pages of one
// partition (pages whose index i satisfies i % parts == part, over a
// snapshot of the page list). Distinct partitions cover disjoint page
// sets, so `parts` goroutines each scanning one partition together
// visit every record exactly once.
func (h *HeapFile) ScanPartition(part, parts int, fn func(rid RID, t Tuple) bool) error {
	if parts < 1 {
		return fmt.Errorf("storage: ScanPartition parts = %d", parts)
	}
	all := h.PageIDs()
	var pages []PageID
	for i := part; i < len(all); i += parts {
		pages = append(pages, all[i])
	}
	return h.scanPages(pages, fn)
}

// Scan calls fn for every live record in file order; returning false
// stops the scan early.
func (h *HeapFile) Scan(fn func(rid RID, t Tuple) bool) error {
	h.mu.Lock()
	pages := append([]PageID(nil), h.pages...)
	h.mu.Unlock()
	return h.scanPages(pages, fn)
}

func (h *HeapFile) scanPages(pages []PageID, fn func(rid RID, t Tuple) bool) error {
	for _, id := range pages {
		stop, err := h.scanPage(id, fn)
		if err != nil || stop {
			return err
		}
	}
	return nil
}

// scanPage visits one page's live records with the pin released by
// defer: fn is caller code, and a panic there (contained at the
// morsel boundary by the parallel executor) must not leak the pin.
func (h *HeapFile) scanPage(id PageID, fn func(rid RID, t Tuple) bool) (stop bool, err error) {
	p, err := h.bm.GetPage(id)
	if err != nil {
		return false, err
	}
	defer h.bm.Unpin(id)
	for s := 0; s < p.Slots(); s++ {
		if !p.Live(s) {
			continue
		}
		rec, err := p.Get(s)
		if errors.Is(err, ErrSlotDeleted) {
			continue // deleted between Live and Get by a concurrent writer
		}
		if err != nil {
			return false, err
		}
		t, err := DecodeTuple(rec)
		if err != nil {
			return false, err
		}
		if !fn(RID{Page: id, Slot: s}, t) {
			return true, nil
		}
	}
	return false, nil
}

// All collects every live tuple (test/bench convenience).
func (h *HeapFile) All() ([]Tuple, error) {
	var out []Tuple
	err := h.Scan(func(_ RID, t Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out, err
}

// restore installs the recovered page list and recounts live records
// (recovery only; runs before the file is visible to queries).
func (h *HeapFile) restore(pages []PageID) error {
	live := 0
	for _, id := range pages {
		p, err := h.bm.GetPage(id)
		if errors.Is(err, ErrQuarantined) {
			continue // unreadable; reported, not counted
		}
		if err != nil {
			return err
		}
		for s := 0; s < p.Slots(); s++ {
			if p.Live(s) {
				live++
			}
		}
		h.bm.Unpin(id)
	}
	h.mu.Lock()
	h.pages = append([]PageID(nil), pages...)
	h.live = live
	h.mu.Unlock()
	h.zm.reset() // stale pre-crash zones never survive into recovery
	return nil
}

// Vacuum compacts every page in the file.
func (h *HeapFile) Vacuum() error {
	h.mu.Lock()
	pages := append([]PageID(nil), h.pages...)
	h.mu.Unlock()
	for _, id := range pages {
		p, err := h.bm.GetPage(id)
		if err != nil {
			return err
		}
		p.Compact()
		h.bm.Unpin(id)
	}
	return nil
}

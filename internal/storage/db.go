// DB is the durability spine: it owns the WAL, the checksummed page
// file, and the store/buffer pair, and threads them together so that
// every heap mutation is redo-logged before it is acknowledged and a
// reopen after any crash rebuilds byte-identical state.
//
// The protocol, end to end:
//
//   - Mutations log inside the page latch (Page.InsertWith et al call
//     back into logInsert/logDelete/logUpdate), so per-page WAL order
//     equals apply order and redo in LSN order is exact.
//   - Checkpoints are fuzzy: capture redoPos = WAL tail, flush every
//     dirty page (image + LSN + CRC32-C) to the page file, sync, then
//     append a checkpoint record carrying the metadata snapshot and
//     redoPos. The WAL is never truncated — recovery scans for the
//     last complete checkpoint, so a crash mid-checkpoint just falls
//     back to the previous one.
//   - Recovery loads checkpointed frames (quarantining any that fail
//     their checksum), replays the log from redoPos with the per-page
//     LSN guard, recounts heap files, and rebuilds B-trees by
//     backfilling from the recovered heaps.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// IndexDef describes a logged secondary index: recovery rebuilds the
// tree by scanning File and keying on column Col.
type IndexDef struct {
	Name string
	File string
	Col  int
}

// DBOptions configures Open.
type DBOptions struct {
	// BufferFrames sizes the buffer pool (default 1024).
	BufferFrames int
	// Policy is the replacement policy (default LRU).
	Policy Policy
	// Sync is the WAL barrier policy (default SyncEveryRecord).
	Sync SyncPolicy
}

// RecoveryStats describes what Open's redo pass did.
type RecoveryStats struct {
	CheckpointFound  bool
	RecordsScanned   int
	RecordsReplayed  int
	PagesLoaded      int
	PagesQuarantined int
	Files            int
	Indexes          int
	// TxnsCommitted / TxnsAborted count the transaction outcomes the
	// full-log scan rebuilt the commit table from. A version whose
	// creator is in neither set was in flight at the crash and stays
	// invisible forever.
	TxnsCommitted int
	TxnsAborted   int
}

// DBStats is the durability layer's counter snapshot.
type DBStats struct {
	WALAppends  uint64
	WALSyncs    uint64
	WALBytes    int64
	Checkpoints uint64
	Recovery    RecoveryStats
	Buffer      BufferStats
}

// ErrDBFailed wraps the sticky failure state: after a WAL append
// fails, the in-memory image may be ahead of the log, so the DB
// refuses further mutations rather than acknowledge writes recovery
// would not reproduce.
var ErrDBFailed = errors.New("storage: db failed")

// DB is a crash-safe storage instance over two DiskFiles (WAL + page
// file).
type DB struct {
	wal   *WAL
	pf    *PageFile
	store *Store
	bm    *BufferManager
	txns  *TxnManager

	mu        sync.Mutex
	files     map[string]*HeapFile
	fileOrder []string
	indexDefs []IndexDef
	indexes   map[string]*BTree
	meta      map[string]string
	failure   error

	dirtyMu sync.Mutex
	dirty   map[PageID]uint64 // page -> LSN of latest logged mutation

	checkpoints atomic.Uint64
	recovery    RecoveryStats

	// onCorruption, when set, is notified of every quarantined page
	// (recovery or fetch-time). Must not call back into the DB.
	onCorruption func(PageID, error)
}

// Open opens (or creates) a DB over the given WAL and page-file
// disks, running redo recovery if the log is non-empty.
func Open(walDisk, dataDisk DiskFile, opts DBOptions) (*DB, error) {
	if opts.BufferFrames <= 0 {
		opts.BufferFrames = 1024
	}
	if opts.Policy == nil {
		opts.Policy = NewLRU()
	}
	wal, recs, err := OpenWAL(walDisk, opts.Sync)
	if err != nil {
		return nil, err
	}
	pf, err := OpenPageFile(dataDisk)
	if err != nil {
		return nil, err
	}
	store := NewStore()
	db := &DB{
		wal:     wal,
		pf:      pf,
		store:   store,
		bm:      NewBufferManager(store, opts.BufferFrames, opts.Policy),
		files:   map[string]*HeapFile{},
		indexes: map[string]*BTree{},
		meta:    map[string]string{},
		dirty:   map[PageID]uint64{},
	}
	db.bm.SetVerifier(db.verifyPage)
	if err := db.recover(recs); err != nil {
		return nil, err
	}
	commits, aborted, maxID := recoverCommitTable(recs, &db.recovery)
	db.txns = newTxnManager(db, commits, aborted, maxID)
	return db, nil
}

// Txns returns the DB's transaction manager — the pluggable CC
// component. Callers that never Begin a transaction get the legacy
// single-writer behaviour untouched.
func (db *DB) Txns() *TxnManager { return db.txns }

// recoverCommitTable rebuilds the MVCC commit table from the FULL log
// scan (the WAL is never truncated, so every commit record since
// genesis is present regardless of the checkpoint's redo position)
// and recovers the transaction-id clock from commit, abort and
// versioned record images so ids are never reused.
func recoverCommitTable(recs []Record, stats *RecoveryStats) (map[uint64]uint64, map[uint64]struct{}, uint64) {
	commits := map[uint64]uint64{}
	aborted := map[uint64]struct{}{}
	var maxID uint64
	seen := func(id uint64) {
		if id > maxID {
			maxID = id
		}
	}
	for _, r := range recs {
		switch r.Type {
		case RecTxnCommit:
			if id, err := decodeTxn(r.Payload); err == nil {
				commits[id] = r.LSN
				seen(id)
			}
		case RecTxnAbort:
			if id, err := decodeTxn(r.Payload); err == nil {
				aborted[id] = struct{}{}
				seen(id)
			}
		case RecInsert:
			if _, _, rec, err := decodeInsert(r.Payload); err == nil {
				if v, err := RecordVersion(rec); err == nil {
					seen(v.Xmin)
					seen(v.Xmax)
				}
			}
		case RecUpdate:
			if _, _, _, rec, err := decodeUpdate(r.Payload); err == nil {
				if v, err := RecordVersion(rec); err == nil {
					seen(v.Xmin)
					seen(v.Xmax)
				}
			}
		}
	}
	stats.TxnsCommitted = len(commits)
	stats.TxnsAborted = len(aborted)
	return commits, aborted, maxID
}

// Store returns the underlying page store.
func (db *DB) Store() *Store { return db.store }

// Buffer returns the buffer manager.
func (db *DB) Buffer() *BufferManager { return db.bm }

// WAL returns the log (tests and benchmarks inspect barriers/tail).
func (db *DB) WAL() *WAL { return db.wal }

// SetCorruptionHook installs the quarantine observer (trace wiring).
func (db *DB) SetCorruptionHook(fn func(PageID, error)) {
	db.mu.Lock()
	db.onCorruption = fn
	db.mu.Unlock()
}

func (db *DB) reportCorruption(id PageID, err error) {
	db.mu.Lock()
	fn := db.onCorruption
	db.mu.Unlock()
	if fn != nil {
		fn(id, err)
	}
}

// Stats returns a counter snapshot.
func (db *DB) Stats() DBStats {
	appends, syncs, tail := db.wal.Stats()
	db.mu.Lock()
	rec := db.recovery
	db.mu.Unlock()
	return DBStats{
		WALAppends:  appends,
		WALSyncs:    syncs,
		WALBytes:    tail,
		Checkpoints: db.checkpoints.Load(),
		Recovery:    rec,
		Buffer:      db.bm.Stats(),
	}
}

// Err returns the sticky failure, if any.
func (db *DB) Err() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.failure
}

func (db *DB) fail(err error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.failLocked(err)
}

func (db *DB) failLocked(err error) error {
	if db.failure == nil {
		db.failure = fmt.Errorf("%w: %v", ErrDBFailed, err)
	}
	return db.failure
}

// ---------------------------------------------------------------------------
// Logged DDL + metadata.

// CreateFile registers (and logs) a heap file. Idempotent: an
// existing file of the same name is returned as-is.
func (db *DB) CreateFile(name string) (*HeapFile, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.failure != nil {
		return nil, db.failure
	}
	if h, ok := db.files[name]; ok {
		return h, nil
	}
	if _, err := db.wal.Append(RecCreateFile, encodeCreateFile(name)); err != nil {
		return nil, db.failLocked(err)
	}
	h := newHeapFile(name, db.store, db.bm, db)
	db.files[name] = h
	db.fileOrder = append(db.fileOrder, name)
	return h, nil
}

// File returns a registered heap file.
func (db *DB) File(name string) (*HeapFile, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	h, ok := db.files[name]
	return h, ok
}

// Files returns registered file names in creation order.
func (db *DB) Files() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append([]string(nil), db.fileOrder...)
}

// LogIndex records a secondary-index definition so recovery can
// rebuild the tree by backfill. Idempotent by name. The tree itself
// lives with the caller (the catalog) — index contents are never
// logged record-by-record.
func (db *DB) LogIndex(def IndexDef) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.failure != nil {
		return db.failure
	}
	for _, d := range db.indexDefs {
		if d.Name == def.Name {
			return nil
		}
	}
	if _, ok := db.files[def.File]; !ok {
		return fmt.Errorf("storage: index %s over unknown file %s", def.Name, def.File)
	}
	if _, err := db.wal.Append(RecCreateIndex, encodeCreateIndex(def.Name, def.File, def.Col)); err != nil {
		return db.failLocked(err)
	}
	db.indexDefs = append(db.indexDefs, def)
	return nil
}

// IndexDefs returns the logged index definitions.
func (db *DB) IndexDefs() []IndexDef {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append([]IndexDef(nil), db.indexDefs...)
}

// Index returns a tree rebuilt by the last recovery, if any. After a
// fresh Open with an empty log there are none — the catalog owns live
// trees.
func (db *DB) Index(name string) (*BTree, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.indexes[name]
	return t, ok
}

// SetMeta logs an opaque key/value (catalog schemas ride here).
func (db *DB) SetMeta(key, value string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.failure != nil {
		return db.failure
	}
	if _, err := db.wal.Append(RecMeta, encodeMeta(key, value)); err != nil {
		return db.failLocked(err)
	}
	db.meta[key] = value
	return nil
}

// Meta returns one logged metadata value.
func (db *DB) Meta(key string) (string, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	v, ok := db.meta[key]
	return v, ok
}

// MetaAll returns a copy of the metadata map.
func (db *DB) MetaAll() map[string]string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make(map[string]string, len(db.meta))
	for k, v := range db.meta {
		out[k] = v
	}
	return out
}

// ---------------------------------------------------------------------------
// Redo logging (called from HeapFile inside the page latch).

func (db *DB) logInsert(id PageID, slot int, rec []byte) (uint64, error) {
	if err := db.Err(); err != nil {
		return 0, err
	}
	lsn, err := db.wal.Append(RecInsert, encodeInsert(id, slot, rec))
	if err != nil {
		return 0, db.fail(err)
	}
	db.markDirty(id, lsn)
	return lsn, nil
}

func (db *DB) logDelete(id PageID, slot int) (uint64, error) {
	if err := db.Err(); err != nil {
		return 0, err
	}
	lsn, err := db.wal.Append(RecDelete, encodeDelete(id, slot))
	if err != nil {
		return 0, db.fail(err)
	}
	db.markDirty(id, lsn)
	return lsn, nil
}

func (db *DB) logUpdate(id PageID, oldSlot, newSlot int, rec []byte) (uint64, error) {
	if err := db.Err(); err != nil {
		return 0, err
	}
	lsn, err := db.wal.Append(RecUpdate, encodeUpdate(id, oldSlot, newSlot, rec))
	if err != nil {
		return 0, db.fail(err)
	}
	db.markDirty(id, lsn)
	return lsn, nil
}

func (db *DB) logAlloc(file string, id PageID) error {
	if err := db.Err(); err != nil {
		return err
	}
	if _, err := db.wal.Append(RecAllocPage, encodeAllocPage(file, id)); err != nil {
		return db.fail(err)
	}
	return nil
}

func (db *DB) markDirty(id PageID, lsn uint64) {
	db.dirtyMu.Lock()
	db.dirty[id] = lsn
	db.dirtyMu.Unlock()
}

func (db *DB) isDirty(id PageID) bool {
	db.dirtyMu.Lock()
	_, ok := db.dirty[id]
	db.dirtyMu.Unlock()
	return ok
}

// ---------------------------------------------------------------------------
// Checkpoint.

// Checkpoint flushes every dirty page to the checksummed page file,
// syncs it, then logs a checkpoint record carrying the metadata
// snapshot and the redo position captured before the flush. After it
// returns, recovery replays only the log suffix past that position.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	if db.failure != nil {
		err := db.failure
		db.mu.Unlock()
		return err
	}
	db.mu.Unlock()

	// Redo position first: any mutation that races the flush below is
	// at an offset >= redoPos and will be replayed (the page-LSN guard
	// makes replaying over an already-flushed image a no-op).
	redoPos := db.wal.Tail()

	db.dirtyMu.Lock()
	ids := make([]PageID, 0, len(db.dirty))
	for id := range db.dirty {
		ids = append(ids, id)
	}
	db.dirtyMu.Unlock()

	flushed := make(map[PageID]uint64, len(ids))
	for _, id := range ids {
		p, err := db.store.read(id)
		if err != nil {
			return db.fail(err)
		}
		img, lsn := p.CopyBytes()
		if err := db.pf.WritePage(id, img, lsn); err != nil {
			return db.fail(err)
		}
		flushed[id] = lsn
	}
	if err := db.pf.Sync(); err != nil {
		return db.fail(err)
	}
	// Clear only entries the flush fully covered; a mutation that
	// landed after the copy re-dirtied the page at a higher LSN.
	db.dirtyMu.Lock()
	for id, lsn := range flushed {
		if cur, ok := db.dirty[id]; ok && cur <= lsn {
			delete(db.dirty, id)
		}
	}
	db.dirtyMu.Unlock()

	db.mu.Lock()
	img := checkpointImage{
		redoPos:  redoPos,
		nextPage: PageID(db.store.next.Load()),
		meta:     db.meta,
		indexes:  append([]IndexDef(nil), db.indexDefs...),
	}
	for _, name := range db.fileOrder {
		img.files = append(img.files, checkpointFile{
			name:  name,
			pages: db.files[name].PageIDs(),
		})
	}
	db.mu.Unlock()

	if _, err := db.wal.Append(RecCheckpoint, encodeCheckpoint(img)); err != nil {
		return db.fail(err)
	}
	if err := db.wal.Sync(); err != nil { // explicit barrier under SyncManual
		return db.fail(err)
	}
	db.checkpoints.Add(1)

	// Refresh zone maps off the just-flushed heaps: checkpoint is the
	// natural build point (pages are warm and the write burst that
	// invalidated entries has quiesced). A page that cannot be read or
	// decoded here will not read later either — engine-fatal.
	db.mu.Lock()
	files := make([]*HeapFile, 0, len(db.fileOrder))
	for _, name := range db.fileOrder {
		files = append(files, db.files[name])
	}
	db.mu.Unlock()
	for _, h := range files {
		if err := h.BuildZoneMaps(); err != nil {
			return db.fail(err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Fetch-time verification.

// verifyPage is the buffer pool's miss-time integrity check: a clean
// page whose on-disk frame carries the same LSN must match that
// frame's checksum. Dirty pages and pages the log is still ahead of
// are skipped — the WAL, not the frame, governs their contents.
func (db *DB) verifyPage(id PageID, p *Page) error {
	if db.isDirty(id) {
		return nil
	}
	lsn, crc, err := db.pf.FrameLSN(id)
	if errors.Is(err, ErrNoFrame) {
		return nil // never checkpointed; nothing on disk to diverge from
	}
	if err != nil {
		db.reportCorruption(id, err)
		return err
	}
	img, plsn := p.CopyBytes()
	if plsn != lsn {
		return nil // frame belongs to a different epoch; redo governs
	}
	frame := make([]byte, framePayload)
	copy(frame, img)
	binary.BigEndian.PutUint64(frame[PageSize:], lsn)
	if got := crc32.Checksum(frame, castagnoli); got != crc {
		err := fmt.Errorf("%w: page %d: memory crc %08x, frame crc %08x", ErrChecksum, id, got, crc)
		db.reportCorruption(id, err)
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// Recovery.

func (db *DB) recover(recs []Record) error {
	stats := RecoveryStats{RecordsScanned: len(recs)}

	// Last complete checkpoint wins; a checkpoint torn off the tail
	// simply is not in recs and we fall back to the previous one.
	var ck checkpointImage
	ck.redoPos = walHeader
	ck.meta = map[string]string{}
	for _, r := range recs {
		if r.Type != RecCheckpoint {
			continue
		}
		img, err := decodeCheckpoint(r.Payload)
		if err != nil {
			return err
		}
		ck = img
		stats.CheckpointFound = true
	}

	// Install checkpointed state: files, pages (checksum-verified),
	// index defs, metadata.
	quarantined := map[PageID]bool{}
	filePages := map[string][]PageID{}
	pageSeen := map[PageID]bool{}
	for _, f := range ck.files {
		db.files[f.name] = newHeapFile(f.name, db.store, db.bm, db)
		db.fileOrder = append(db.fileOrder, f.name)
		filePages[f.name] = append([]PageID(nil), f.pages...)
		for _, id := range f.pages {
			if pageSeen[id] {
				return fmt.Errorf("storage: recovery: page %d in two files", id)
			}
			pageSeen[id] = true
			img, lsn, err := db.pf.ReadPage(id)
			switch {
			case err == nil:
				db.store.install(id, pageFromImage(img, lsn))
				stats.PagesLoaded++
			case errors.Is(err, ErrNoFrame):
				// Allocated before the checkpoint record but never
				// flushed: every mutation is past redoPos, replay
				// rebuilds it from empty.
				db.store.install(id, NewPage())
				stats.PagesLoaded++
			case errors.Is(err, ErrChecksum):
				// Corrupt frame: quarantine, keep a placeholder so the
				// id stays allocated, and skip its redo records.
				db.store.install(id, NewPage())
				db.bm.checksum.Add(1)
				db.bm.Quarantine(id, err)
				db.reportCorruption(id, err)
				quarantined[id] = true
				stats.PagesQuarantined++
			default:
				return err
			}
		}
	}
	db.indexDefs = append(db.indexDefs, ck.indexes...)
	for k, v := range ck.meta {
		db.meta[k] = v
	}
	db.store.ensureNext(uint32(ck.nextPage))

	// Redo pass: replay the suffix past redoPos in log order. The
	// page-LSN guard inside each redo applier skips mutations a
	// flushed frame already carries.
	for _, r := range recs {
		if r.Off < ck.redoPos {
			continue
		}
		switch r.Type {
		case RecCheckpoint:
			// Only the final checkpoint's image was installed; its own
			// record (and any older one in the suffix) carries no redo.
		case RecCreateFile:
			name, err := decodeCreateFile(r.Payload)
			if err != nil {
				return err
			}
			if _, ok := db.files[name]; !ok {
				db.files[name] = newHeapFile(name, db.store, db.bm, db)
				db.fileOrder = append(db.fileOrder, name)
			}
			stats.RecordsReplayed++
		case RecAllocPage:
			name, id, err := decodeAllocPage(r.Payload)
			if err != nil {
				return err
			}
			if _, ok := db.files[name]; !ok {
				return fmt.Errorf("storage: recovery: alloc for unknown file %s", name)
			}
			if !pageSeen[id] {
				pageSeen[id] = true
				db.store.install(id, NewPage())
				filePages[name] = append(filePages[name], id)
				stats.PagesLoaded++
			}
			stats.RecordsReplayed++
		case RecInsert:
			id, slot, rec, err := decodeInsert(r.Payload)
			if err != nil {
				return err
			}
			if quarantined[id] {
				continue
			}
			p, err := db.store.read(id)
			if err != nil {
				return err
			}
			if err := p.redoInsert(slot, rec, r.LSN); err != nil {
				return err
			}
			stats.RecordsReplayed++
		case RecDelete:
			id, slot, err := decodeDelete(r.Payload)
			if err != nil {
				return err
			}
			if quarantined[id] {
				continue
			}
			p, err := db.store.read(id)
			if err != nil {
				return err
			}
			if err := p.redoDelete(slot, r.LSN); err != nil {
				return err
			}
			stats.RecordsReplayed++
		case RecUpdate:
			id, oldSlot, newSlot, rec, err := decodeUpdate(r.Payload)
			if err != nil {
				return err
			}
			if quarantined[id] {
				continue
			}
			p, err := db.store.read(id)
			if err != nil {
				return err
			}
			if err := p.redoUpdate(oldSlot, newSlot, rec, r.LSN); err != nil {
				return err
			}
			stats.RecordsReplayed++
		case RecCreateIndex:
			name, file, col, err := decodeCreateIndex(r.Payload)
			if err != nil {
				return err
			}
			have := false
			for _, d := range db.indexDefs {
				if d.Name == name {
					have = true
					break
				}
			}
			if !have {
				db.indexDefs = append(db.indexDefs, IndexDef{Name: name, File: file, Col: col})
			}
			stats.RecordsReplayed++
		case RecMeta:
			key, value, err := decodeMeta(r.Payload)
			if err != nil {
				return err
			}
			db.meta[key] = value
			stats.RecordsReplayed++
		case RecTxnCommit, RecTxnAbort:
			// Transaction outcomes carry no page redo; the commit table
			// is rebuilt by a full-log scan after the redo pass (it must
			// cover commits from before the checkpoint too).
			stats.RecordsReplayed++
		default:
			return fmt.Errorf("%w: unknown type %d at offset %d", ErrWALCorrupt, r.Type, r.Off)
		}
	}

	// Reattach recovered page lists and live counts.
	for _, name := range db.fileOrder {
		if err := db.files[name].restore(filePages[name]); err != nil {
			return err
		}
	}
	stats.Files = len(db.fileOrder)

	// Rebuild secondary indexes by backfill: trees are not logged, the
	// recovered heaps are their source of truth.
	for _, def := range db.indexDefs {
		h, ok := db.files[def.File]
		if !ok {
			return fmt.Errorf("storage: recovery: index %s over unknown file %s", def.Name, def.File)
		}
		tree, err := db.backfillIndex(def, h, quarantined)
		if err != nil {
			return err
		}
		db.indexes[def.Name] = tree
		stats.Indexes++
	}

	// Rebuild zone maps from the recovered heaps. restore() wiped any
	// pre-crash entries; quarantined pages are skipped inside
	// BuildZoneMaps and stay zone-less — an unreadable page is never
	// pruned on the strength of a summary taken before it went bad.
	for _, name := range db.fileOrder {
		if err := db.files[name].BuildZoneMaps(); err != nil {
			return err
		}
	}

	db.recovery = stats
	return nil
}

// backfillIndex rebuilds one B-tree from its heap, skipping
// quarantined pages (their records are unrecoverable; the scan layer
// reports them when touched directly).
func (db *DB) backfillIndex(def IndexDef, h *HeapFile, quarantined map[PageID]bool) (*BTree, error) {
	tree := NewBTree(def.Name)
	for _, id := range h.PageIDs() {
		if quarantined[id] {
			continue
		}
		p, err := db.bm.GetPage(id)
		if err != nil {
			if errors.Is(err, ErrQuarantined) {
				continue
			}
			return nil, err
		}
		for s := 0; s < p.Slots(); s++ {
			rec, err := p.Get(s)
			if errors.Is(err, ErrSlotDeleted) || errors.Is(err, ErrBadSlot) {
				continue
			}
			if err != nil {
				db.bm.Unpin(id)
				return nil, err
			}
			tu, err := DecodeTuple(rec)
			if err != nil {
				db.bm.Unpin(id)
				return nil, err
			}
			if def.Col < 0 || def.Col >= len(tu) {
				db.bm.Unpin(id)
				return nil, fmt.Errorf("storage: recovery: index %s col %d out of range", def.Name, def.Col)
			}
			tree.Insert(tu[def.Col], RID{Page: id, Slot: s})
		}
		db.bm.Unpin(id)
	}
	return tree, nil
}

package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestEmitAndQuery(t *testing.T) {
	l := New()
	l.Emit(1, KindViolation, "sm", "util %d", 95)
	l.Emit(2, KindPlan, "sm", "alt plan")
	l.Emit(5, KindSwitch, "am", "committed")
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if l.Count(KindViolation) != 1 || l.Count(KindRollback) != 0 {
		t.Fatal("counts wrong")
	}
	ev := l.OfKind(KindViolation)[0]
	if ev.Detail != "util 95" || ev.TimeMS != 1 || ev.Seq != 0 {
		t.Fatalf("event = %+v", ev)
	}
	if !strings.Contains(ev.String(), "violation") {
		t.Fatalf("string = %q", ev.String())
	}
}

func TestLatency(t *testing.T) {
	l := New()
	l.Emit(10, KindViolation, "sm", "x")
	l.Emit(17, KindSwitch, "am", "y")
	lat, ok := l.Latency(KindViolation, KindSwitch)
	if !ok || lat != 7 {
		t.Fatalf("latency = %v %v", lat, ok)
	}
	if _, ok := l.Latency(KindViolation, KindRollback); ok {
		t.Fatal("phantom latency")
	}
	if _, ok := l.Latency(KindMigrate, KindSwitch); ok {
		t.Fatal("latency without source event")
	}
}

func TestLatencyRequiresOrdering(t *testing.T) {
	l := New()
	l.Emit(5, KindSwitch, "am", "early switch")
	l.Emit(10, KindViolation, "sm", "late violation")
	if _, ok := l.Latency(KindViolation, KindSwitch); ok {
		t.Fatal("switch before violation must not count")
	}
}

func TestFirstAfter(t *testing.T) {
	l := New()
	l.Emit(1, KindInfo, "a", "one")
	l.Emit(9, KindInfo, "a", "two")
	ev, ok := l.FirstAfter(5, KindInfo)
	if !ok || ev.Detail != "two" {
		t.Fatalf("ev = %+v", ev)
	}
	if _, ok := l.FirstAfter(10, KindInfo); ok {
		t.Fatal("phantom event")
	}
}

func TestResetAndSummary(t *testing.T) {
	l := New()
	l.Emit(0, KindBind, "x", "a")
	l.Emit(0, KindBind, "x", "b")
	l.Emit(0, KindUnbind, "x", "c")
	if got := l.Summary(); got != "bind=2 unbind=1" {
		t.Fatalf("summary = %q", got)
	}
	l.Reset()
	if l.Len() != 0 || l.Summary() != "" {
		t.Fatal("reset failed")
	}
	l.Emit(0, KindBind, "x", "d")
	if l.Events()[0].Seq != 0 {
		t.Fatal("seq not reset")
	}
}

func TestConcurrentEmit(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Emit(float64(j), KindInfo, "w", "e")
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("len = %d", l.Len())
	}
	seen := map[int]bool{}
	for _, e := range l.Events() {
		if seen[e.Seq] {
			t.Fatal("duplicate seq")
		}
		seen[e.Seq] = true
	}
}

// Package trace provides the structured event log shared by the
// adaptive data management stack. Every adaptation decision —
// constraint violation, plan switch, component rebind, rollback — is
// recorded here so experiments can report detection-to-reconfiguration
// latencies and tests can assert on exact adaptation sequences.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies trace events.
type Kind string

// Event kinds emitted by the stack.
const (
	KindMonitor    Kind = "monitor"    // raw monitor sample
	KindGauge      Kind = "gauge"      // aggregated gauge update
	KindViolation  Kind = "violation"  // constraint broken
	KindPlan       Kind = "plan"       // alternative architecture designed
	KindUnbind     Kind = "unbind"     // component unbound
	KindBind       Kind = "bind"       // component bound
	KindSwitch     Kind = "switch"     // configuration switch committed
	KindRollback   Kind = "rollback"   // switch backed off
	KindSafePoint  Kind = "safepoint"  // stream/query safe point reached
	KindMigrate    Kind = "migrate"    // component/agent migration
	KindReoptimize Kind = "reoptimize" // query plan revised mid-flight
	KindCorruption Kind = "corruption" // page checksum failure / quarantine
	KindPanic      Kind = "panic"      // worker panic contained
	KindInfo       Kind = "info"       // free-form
)

// Event is one recorded occurrence. Time is simulation time in
// milliseconds (the simulators are discrete-event; wall time would be
// noise).
type Event struct {
	Seq    int
	TimeMS float64
	Kind   Kind
	Actor  string // which component/manager emitted it
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("[%06d %9.3fms] %-11s %-18s %s", e.Seq, e.TimeMS, e.Kind, e.Actor, e.Detail)
}

// Log is a concurrency-safe append-only event log.
type Log struct {
	mu     sync.Mutex
	events []Event
	seq    int
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Emit appends an event at simulation time t.
func (l *Log) Emit(t float64, kind Kind, actor, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{
		Seq:    l.seq,
		TimeMS: t,
		Kind:   kind,
		Actor:  actor,
		Detail: fmt.Sprintf(format, args...),
	})
	l.seq++
}

// Span is a named emission context over a shared log: workers of a
// parallel operation each hold a child span ("query.w0", "query.w1",
// ...) and emit into the same sequenced log, so one parallel run
// produces a single coherent trace instead of per-goroutine shards.
// Spans are immutable and safe for concurrent use.
type Span struct {
	log   *Log
	actor string
}

// Span returns an emission context for actor over this log.
func (l *Log) Span(actor string) *Span { return &Span{log: l, actor: actor} }

// Sub derives a child span named parent.name.
func (s *Span) Sub(name string) *Span {
	return &Span{log: s.log, actor: s.actor + "." + name}
}

// Actor returns the span's actor name.
func (s *Span) Actor() string { return s.actor }

// Emit appends an event attributed to this span.
func (s *Span) Emit(t float64, kind Kind, format string, args ...any) {
	s.log.Emit(t, kind, s.actor, format, args...)
}

// Events returns a snapshot of all events in emission order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// OfKind returns the events of one kind, in order.
func (l *Log) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of events of kind k.
func (l *Log) Count(k Kind) int { return len(l.OfKind(k)) }

// Len returns the total number of events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Reset discards all events.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
	l.seq = 0
}

// FirstAfter returns the first event of kind k at or after time t.
func (l *Log) FirstAfter(t float64, k Kind) (Event, bool) {
	for _, e := range l.Events() {
		if e.Kind == k && e.TimeMS >= t {
			return e, true
		}
	}
	return Event{}, false
}

// Latency returns the simulation-time gap between the first `from`
// event and the first subsequent `to` event — e.g. violation→switch
// is the paper's detection-to-reconfiguration latency.
func (l *Log) Latency(from, to Kind) (float64, bool) {
	events := l.Events()
	for _, a := range events {
		if a.Kind != from {
			continue
		}
		for _, b := range events {
			if b.Kind == to && b.Seq > a.Seq {
				return b.TimeMS - a.TimeMS, true
			}
		}
		return 0, false
	}
	return 0, false
}

// Summary renders per-kind counts, sorted by kind name.
func (l *Log) Summary() string {
	counts := map[Kind]int{}
	for _, e := range l.Events() {
		counts[e.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "%s=%d ", k, counts[Kind(k)])
	}
	return strings.TrimSpace(b.String())
}

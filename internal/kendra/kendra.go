// Package kendra implements the Kendra adaptive audio server [23]
// referenced in §5.2 and §6: "while the server is delivering some
// streaming media (e.g. audio) the codec of the stream is chosen to
// best suit the bandwidth, and if the bandwidth should change during
// mid delivery, then a new less bandwidth hungry codec is swapped
// in." Codec swaps happen only at safe points (frame boundaries) via
// the adaptivity machinery's quiesce/switch discipline.
package kendra

import (
	"fmt"

	"github.com/adm-project/adm/internal/trace"
)

// Codec is one rung of the codec ladder.
type Codec struct {
	Name    string
	Kbps    float64 // required bandwidth
	Quality float64 // perceptual quality in (0,1]
}

// DefaultLadder returns the standard codec ladder, best first.
func DefaultLadder() []Codec {
	return []Codec{
		{Name: "pcm", Kbps: 256, Quality: 1.0},
		{Name: "adpcm", Kbps: 64, Quality: 0.7},
		{Name: "gsm", Kbps: 13, Quality: 0.4},
	}
}

// BandwidthPoint is one step of a bandwidth trace.
type BandwidthPoint struct {
	FromMS float64
	Kbps   float64
}

// TraceAt returns the bandwidth at time t.
func TraceAt(tr []BandwidthPoint, t float64) float64 {
	bw := 0.0
	for _, p := range tr {
		if p.FromMS <= t {
			bw = p.Kbps
		}
	}
	return bw
}

// Config parameterises a streaming session.
type Config struct {
	// Adaptive enables codec switching; off = fixed initial codec.
	Adaptive bool
	// Ladder is the codec ladder (best first).
	Ladder []Codec
	// FrameMS is the frame duration; codec swaps align to frames
	// (the safe points).
	FrameMS float64
	// DurationMS is the stream length.
	DurationMS float64
	// Headroom is the fraction of bandwidth a codec may use (switch
	// up only when comfortably below; hysteresis against flapping).
	Headroom float64
	// UpHysteresisFrames is how many consecutive good frames are
	// required before switching back up.
	UpHysteresisFrames int
}

// DefaultConfig returns a 30-second adaptive session of 20ms frames.
func DefaultConfig(adaptive bool) Config {
	return Config{
		Adaptive:           adaptive,
		Ladder:             DefaultLadder(),
		FrameMS:            20,
		DurationMS:         30_000,
		Headroom:           0.9,
		UpHysteresisFrames: 25,
	}
}

// Result summarises a session.
type Result struct {
	Frames        int
	StalledFrames int
	// MeanQuality is the average delivered quality over non-stalled
	// frames (0 counted for stalls).
	MeanQuality float64
	// Switches counts codec changes.
	Switches int
	// CodecFrames counts frames delivered per codec.
	CodecFrames map[string]int
	Log         *trace.Log
}

// StallRate is stalled/total frames.
func (r *Result) StallRate() float64 {
	if r.Frames == 0 {
		return 0
	}
	return float64(r.StalledFrames) / float64(r.Frames)
}

// Stream runs one audio session against a bandwidth trace.
func Stream(cfg Config, bw []BandwidthPoint) (*Result, error) {
	if len(cfg.Ladder) == 0 {
		return nil, fmt.Errorf("kendra: empty codec ladder")
	}
	log := trace.New()
	res := &Result{CodecFrames: map[string]int{}, Log: log}
	cur := 0 // ladder index; start at the best codec
	goodStreak := 0
	qualitySum := 0.0

	for t := 0.0; t < cfg.DurationMS; t += cfg.FrameMS {
		res.Frames++
		avail := TraceAt(bw, t)

		if cfg.Adaptive {
			// Down-switch immediately when the current codec no
			// longer fits; up-switch only after a sustained streak.
			fits := func(i int) bool { return cfg.Ladder[i].Kbps <= avail*cfg.Headroom }
			switched := false
			for cur < len(cfg.Ladder)-1 && !fits(cur) {
				cur++
				switched = true
				goodStreak = 0
			}
			if !switched && cur > 0 && fits(cur-1) {
				goodStreak++
				if goodStreak >= cfg.UpHysteresisFrames {
					cur--
					switched = true
					goodStreak = 0
				}
			} else if !switched {
				goodStreak = 0
			}
			if switched {
				res.Switches++
				log.Emit(t, trace.KindSwitch, "kendra",
					"codec -> %s (%.0f Kbps available)", cfg.Ladder[cur].Name, avail)
			}
		}

		c := cfg.Ladder[cur]
		if c.Kbps > avail {
			// Buffer underrun: the frame stalls.
			res.StalledFrames++
			log.Emit(t, trace.KindViolation, "kendra",
				"stall: %s needs %.0f Kbps, have %.0f", c.Name, c.Kbps, avail)
			continue
		}
		res.CodecFrames[c.Name]++
		qualitySum += c.Quality
	}
	res.MeanQuality = qualitySum / float64(res.Frames)
	return res, nil
}

// DropTrace is the standard experiment trace: full bandwidth, a deep
// mid-stream drop, partial recovery.
func DropTrace() []BandwidthPoint {
	return []BandwidthPoint{
		{FromMS: 0, Kbps: 300},
		{FromMS: 10_000, Kbps: 40},
		{FromMS: 20_000, Kbps: 120},
	}
}

package kendra

import (
	"testing"
	"testing/quick"
)

func TestTraceAt(t *testing.T) {
	tr := DropTrace()
	cases := []struct {
		t, want float64
	}{
		{0, 300}, {9999, 300}, {10_000, 40}, {15_000, 40}, {20_000, 120}, {29_000, 120},
	}
	for _, c := range cases {
		if got := TraceAt(tr, c.t); got != c.want {
			t.Errorf("TraceAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestFixedCodecStallsThroughDrop(t *testing.T) {
	res, err := Stream(DefaultConfig(false), DropTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 0 {
		t.Fatalf("fixed session switched %d times", res.Switches)
	}
	// PCM needs 256 Kbps: stalls for the whole drop (10s) and the
	// partial recovery (10s at 120): 1000 of 1500 frames.
	if res.StalledFrames != 1000 {
		t.Fatalf("stalled = %d, want 1000", res.StalledFrames)
	}
}

func TestAdaptiveCodecSwitchKeepsStreamAlive(t *testing.T) {
	res, err := Stream(DefaultConfig(true), DropTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches < 2 { // down at the drop, up at recovery
		t.Fatalf("switches = %d", res.Switches)
	}
	// At most one stalled frame per bandwidth step (detection is at
	// frame granularity).
	if res.StalledFrames > 2 {
		t.Fatalf("stalled = %d", res.StalledFrames)
	}
	if res.CodecFrames["gsm"] == 0 || res.CodecFrames["pcm"] == 0 {
		t.Fatalf("codec mix = %v", res.CodecFrames)
	}
	// The up-switch at recovery must respect hysteresis: adpcm (64
	// Kbps) only becomes usable at 120 Kbps recovery.
	if res.CodecFrames["adpcm"] == 0 {
		t.Fatalf("never recovered up the ladder: %v", res.CodecFrames)
	}
	if res.Log.Count("switch") != res.Switches {
		t.Fatalf("trace switches = %d vs %d", res.Log.Count("switch"), res.Switches)
	}
}

func TestAdaptiveQualityBeatsFixedLowCodec(t *testing.T) {
	// A fixed GSM session never stalls but delivers 0.4 quality; the
	// adaptive session should beat it on quality with ~no stalls.
	lowFirst := DefaultConfig(false)
	lowFirst.Ladder = []Codec{{Name: "gsm", Kbps: 13, Quality: 0.4}}
	fixedLow, err := Stream(lowFirst, DropTrace())
	if err != nil {
		t.Fatal(err)
	}
	adaptive, _ := Stream(DefaultConfig(true), DropTrace())
	if fixedLow.StalledFrames != 0 {
		t.Fatalf("gsm stalled %d frames", fixedLow.StalledFrames)
	}
	if adaptive.MeanQuality <= fixedLow.MeanQuality {
		t.Fatalf("adaptive quality %.3f <= fixed-low %.3f",
			adaptive.MeanQuality, fixedLow.MeanQuality)
	}
}

func TestEmptyLadderErrors(t *testing.T) {
	cfg := DefaultConfig(true)
	cfg.Ladder = nil
	if _, err := Stream(cfg, DropTrace()); err == nil {
		t.Fatal("want error")
	}
}

func TestStallRate(t *testing.T) {
	r := &Result{Frames: 100, StalledFrames: 25}
	if r.StallRate() != 0.25 {
		t.Fatalf("rate = %v", r.StallRate())
	}
	if (&Result{}).StallRate() != 0 {
		t.Fatal("empty rate")
	}
}

// Property: under any bandwidth trace, the adaptive session never
// stalls more than the fixed-best-codec session, and every frame is
// accounted for (delivered per codec + stalled = total).
func TestAdaptiveNeverWorseProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		var tr []BandwidthPoint
		t0 := 0.0
		for _, s := range steps {
			tr = append(tr, BandwidthPoint{FromMS: t0, Kbps: float64(s % 400)})
			t0 += 1000
		}
		if len(tr) == 0 {
			tr = []BandwidthPoint{{FromMS: 0, Kbps: 100}}
		}
		cfg := DefaultConfig(true)
		cfg.DurationMS = t0 + 2000
		adaptive, err := Stream(cfg, tr)
		if err != nil {
			return false
		}
		fixedCfg := DefaultConfig(false)
		fixedCfg.DurationMS = cfg.DurationMS
		fixed, err := Stream(fixedCfg, tr)
		if err != nil {
			return false
		}
		delivered := 0
		for _, n := range adaptive.CodecFrames {
			delivered += n
		}
		if delivered+adaptive.StalledFrames != adaptive.Frames {
			return false
		}
		return adaptive.StalledFrames <= fixed.StalledFrames
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Package constraint implements the adaptability-constraint language
// used throughout the paper: the `Select BEST(...)`/`Select
// NEAREST(...)` forms of the Section 4 data components and the
// `If processor-util > 90% then SWITCH(...)` / banded
// `If bandwidth > 30 < 100 Kbps then ... else ...` rules of Table 2.
//
// "These constraints work at the sub-operation level" (fn. 3): a rule
// is evaluated against the gauge environment and yields a Decision —
// select a version, switch (migrate) an agent, or do nothing — which
// the session manager turns into a reconfiguration plan.
package constraint

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokIf
	TokThen
	TokElse
	TokSelect
	TokAnd
	TokOr
	TokLParen
	TokRParen
	TokComma
	TokDot
	TokLT
	TokGT
	TokLE
	TokGE
	TokEQ
	TokNE
	TokPercent
)

var kindNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "ident", TokNumber: "number", TokIf: "If",
	TokThen: "then", TokElse: "else", TokSelect: "Select", TokAnd: "and",
	TokOr: "or", TokLParen: "(", TokRParen: ")", TokComma: ",", TokDot: ".",
	TokLT: "<", TokGT: ">", TokLE: "<=", TokGE: ">=", TokEQ: "=", TokNE: "!=",
	TokPercent: "%",
}

func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokKind
	Text string
	Pos  int
}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Pos  int
	Msg  string
	Near string
}

func (e *SyntaxError) Error() string {
	if e.Near != "" {
		return fmt.Sprintf("constraint: syntax error at %d near %q: %s", e.Pos, e.Near, e.Msg)
	}
	return fmt.Sprintf("constraint: syntax error at %d: %s", e.Pos, e.Msg)
}

var keywords = map[string]TokKind{
	"if": TokIf, "then": TokThen, "else": TokElse, "select": TokSelect,
	"and": TokAnd, "or": TokOr,
}

// Lex tokenises a constraint source string. Identifiers may contain
// hyphens (processor-util) and keywords are case-insensitive, matching
// the paper's free mixture of `Select`, `If ... then`.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, Token{TokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, Token{TokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, Token{TokComma, ",", i})
			i++
		case c == '.':
			// A trailing period terminates a rule (Table 2 row 595
			// ends "...(time parms)."). Dots inside target paths are
			// handled by the parser via TokDot.
			toks = append(toks, Token{TokDot, ".", i})
			i++
		case c == '%':
			toks = append(toks, Token{TokPercent, "%", i})
			i++
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{TokLE, "<=", i})
				i += 2
			} else {
				toks = append(toks, Token{TokLT, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{TokGE, ">=", i})
				i += 2
			} else {
				toks = append(toks, Token{TokGT, ">", i})
				i++
			}
		case c == '=':
			toks = append(toks, Token{TokEQ, "=", i})
			i++
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{TokNE, "!=", i})
				i += 2
			} else {
				return nil, &SyntaxError{Pos: i, Msg: "unexpected '!'"}
			}
		case c >= '0' && c <= '9':
			j := i
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				// A digit-then-dot-then-nondigit is a rule terminator,
				// not a decimal point.
				if src[j] == '.' && (j+1 >= n || src[j+1] < '0' || src[j+1] > '9') {
					break
				}
				j++
			}
			toks = append(toks, Token{TokNumber, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			if k, ok := keywords[strings.ToLower(word)]; ok {
				toks = append(toks, Token{k, word, i})
			} else {
				toks = append(toks, Token{TokIdent, word, i})
			}
			i = j
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

package constraint

import (
	"fmt"
	"math"
	"sort"
)

// Env supplies metric values to the evaluator. The monitor registry
// satisfies it; tests use fixed maps.
type Env interface {
	// Metric returns the current value of metric at source (empty
	// source = system-wide), and whether it is known.
	Metric(metric, source string) (float64, bool)
}

// EnvMap is a literal Env for tests and fixtures: key "metric" or
// "metric@source".
type EnvMap map[string]float64

// Metric implements Env.
func (m EnvMap) Metric(metric, source string) (float64, bool) {
	if source != "" {
		if v, ok := m[metric+"@"+source]; ok {
			return v, true
		}
	}
	v, ok := m[metric]
	return v, ok
}

// Context is the evaluation context: the gauge environment plus the
// identity of the node the rule is being evaluated on (unsourced
// metrics resolve against Self first).
type Context struct {
	Env  Env
	Self string
	// Current, when set, is the currently selected target; SWITCH
	// excludes its node so a migration always moves somewhere else.
	Current *Target
}

// DecisionKind classifies what a rule asks the session manager to do.
type DecisionKind int

// Decision kinds.
const (
	// DecisionNone: the rule's guard did not fire and no else exists.
	DecisionNone DecisionKind = iota
	// DecisionSelect: deliver/bind the chosen target (BEST, NEAREST,
	// or a direct else-target).
	DecisionSelect
	// DecisionSwitch: migrate the running agent — "not only should the
	// Adaptivity Manager save the data state, but also the processing
	// state, as it is this that is about to migrate" (§5.2).
	DecisionSwitch
)

func (k DecisionKind) String() string {
	return [...]string{"none", "select", "switch"}[k]
}

// Decision is the outcome of evaluating one rule.
type Decision struct {
	Kind   DecisionKind
	Target Target
	// Fn is the builtin that produced the choice ("" for direct).
	Fn string
	// Score is the winning candidate's score (builtin-dependent).
	Score float64
	// Reason is a human-readable audit line.
	Reason string
}

func (d Decision) String() string {
	if d.Kind == DecisionNone {
		return "none"
	}
	return fmt.Sprintf("%s %s (%s)", d.Kind, d.Target, d.Reason)
}

// Eval evaluates a rule in ctx.
//
// Builtin semantics (from §4 and Table 2):
//
//   - BEST(a, b, ...): "the best device in terms of capacity and
//     current load" — score = capacity(node) − load(node); highest
//     wins; ties break to the earlier candidate.
//   - NEAREST(a, b, ...): lowest distance(node) wins.
//   - SWITCH(a, b, ...): like BEST but excludes the current node and
//     yields DecisionSwitch (processing state migrates too).
func (r *Rule) Eval(ctx *Context) (Decision, error) {
	if r.Select != nil {
		return evalCall(ctx, r.Select)
	}
	fired, err := r.Cond.Eval(ctx)
	if err != nil {
		return Decision{}, err
	}
	var act *Action
	if fired {
		act = r.Then
	} else {
		act = r.Else
	}
	if act == nil {
		return Decision{Kind: DecisionNone, Reason: "guard not satisfied"}, nil
	}
	if act.Call != nil {
		d, err := evalCall(ctx, act.Call)
		if err != nil {
			return Decision{}, err
		}
		if fired {
			d.Reason = "guard " + r.Cond.String() + " fired; " + d.Reason
		} else {
			d.Reason = "else branch; " + d.Reason
		}
		return d, nil
	}
	reason := "else branch: direct target"
	if fired {
		reason = "guard fired: direct target"
	}
	return Decision{Kind: DecisionSelect, Target: *act.Direct, Reason: reason}, nil
}

func evalCall(ctx *Context, c *Call) (Decision, error) {
	switch c.Fn {
	case "BEST":
		t, score, err := argBest(ctx, c.Args, "")
		if err != nil {
			return Decision{}, err
		}
		return Decision{Kind: DecisionSelect, Target: t, Fn: "BEST", Score: score,
			Reason: fmt.Sprintf("BEST: %s scores %.2f (capacity-load)", t.Node(), score)}, nil
	case "NEAREST":
		t, dist, err := argNearest(ctx, c.Args)
		if err != nil {
			return Decision{}, err
		}
		return Decision{Kind: DecisionSelect, Target: t, Fn: "NEAREST", Score: dist,
			Reason: fmt.Sprintf("NEAREST: %s at %.2f", t.Node(), dist)}, nil
	case "SWITCH":
		exclude := ""
		if ctx.Current != nil {
			exclude = ctx.Current.Node()
		}
		t, score, err := argBest(ctx, c.Args, exclude)
		if err != nil {
			return Decision{}, err
		}
		return Decision{Kind: DecisionSwitch, Target: t, Fn: "SWITCH", Score: score,
			Reason: fmt.Sprintf("SWITCH: migrate to %s (score %.2f, excluding %q)", t.Node(), score, exclude)}, nil
	default:
		return Decision{}, fmt.Errorf("constraint: unknown builtin %q", c.Fn)
	}
}

// argBest picks the candidate with the highest capacity−load score,
// optionally excluding one node. If every candidate is excluded the
// exclusion is dropped (a forced migration to the only replica beats
// no migration).
func argBest(ctx *Context, args []Target, exclude string) (Target, float64, error) {
	best := -1
	bestScore := math.Inf(-1)
	considered := 0
	for i, t := range args {
		if exclude != "" && t.Node() == exclude {
			continue
		}
		considered++
		score, err := nodeScore(ctx, t.Node())
		if err != nil {
			return Target{}, 0, err
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if considered == 0 && exclude != "" {
		return argBest(ctx, args, "")
	}
	if best < 0 {
		return Target{}, 0, fmt.Errorf("constraint: no candidates")
	}
	return args[best], bestScore, nil
}

func nodeScore(ctx *Context, node string) (float64, error) {
	capac, ok := ctx.Env.Metric("capacity", node)
	if !ok {
		return 0, &MetricError{Metric: "capacity", Source: node}
	}
	load, ok := ctx.Env.Metric("load", node)
	if !ok {
		return 0, &MetricError{Metric: "load", Source: node}
	}
	return capac - load, nil
}

func argNearest(ctx *Context, args []Target) (Target, float64, error) {
	best := -1
	bestDist := math.Inf(1)
	for i, t := range args {
		d, ok := ctx.Env.Metric("distance", t.Node())
		if !ok {
			return Target{}, 0, &MetricError{Metric: "distance", Source: t.Node()}
		}
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		return Target{}, 0, fmt.Errorf("constraint: no candidates")
	}
	return args[best], bestDist, nil
}

// ---------------------------------------------------------------------------
// Rule sets with priorities ("the constraint rules themselves can be
// prioritised", §4).

// PrioritisedRule pairs a rule with its priority and identity; lower
// Priority value = evaluated earlier (priority 0 is highest).
type PrioritisedRule struct {
	ID       int
	Priority int
	Rule     *Rule
}

// RuleSet is an ordered collection of prioritised rules.
type RuleSet struct {
	rules []PrioritisedRule
}

// NewRuleSet builds a set; rules are kept sorted by (Priority, ID).
func NewRuleSet(rules ...PrioritisedRule) *RuleSet {
	rs := &RuleSet{rules: append([]PrioritisedRule(nil), rules...)}
	rs.sort()
	return rs
}

// Add inserts a rule.
func (rs *RuleSet) Add(r PrioritisedRule) {
	rs.rules = append(rs.rules, r)
	rs.sort()
}

func (rs *RuleSet) sort() {
	sort.SliceStable(rs.rules, func(i, j int) bool {
		if rs.rules[i].Priority != rs.rules[j].Priority {
			return rs.rules[i].Priority < rs.rules[j].Priority
		}
		return rs.rules[i].ID < rs.rules[j].ID
	})
}

// Rules returns the ordered rules.
func (rs *RuleSet) Rules() []PrioritisedRule { return rs.rules }

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// FirstDecision evaluates rules in priority order and returns the
// first non-none decision, together with the rule that produced it.
// Rules whose metrics are unavailable are skipped (a monitor that has
// not reported yet must not wedge the session manager); the error of
// the last skip is returned if nothing decides.
func (rs *RuleSet) FirstDecision(ctx *Context) (Decision, *PrioritisedRule, error) {
	var lastErr error
	for i := range rs.rules {
		d, err := rs.rules[i].Rule.Eval(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		if d.Kind != DecisionNone {
			return d, &rs.rules[i], nil
		}
	}
	return Decision{Kind: DecisionNone}, nil, lastErr
}

// AllDecisions evaluates every rule and returns the non-none outcomes
// in priority order (used by reporting).
func (rs *RuleSet) AllDecisions(ctx *Context) []Decision {
	var out []Decision
	for i := range rs.rules {
		d, err := rs.rules[i].Rule.Eval(ctx)
		if err == nil && d.Kind != DecisionNone {
			out = append(out, d)
		}
	}
	return out
}

package constraint

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// The verbatim rule texts from the paper.
const (
	// Table 2, constraint 450.
	srcBest = "Select BEST (node1.Page1.html, node2.Page1.html)"
	// Table 2, constraint 455 (including the paper's doubled paren).
	srcSwitch = "If processor-util > 90% then SWITCH ((node1.Page1.html, node2.Page1.html)"
	// Table 2, constraint 595 (normalised whitespace).
	srcBanded = "If bandwidth > 30 < 100 Kbps then BEST(node1.videohalf.ram(time parms), node2.videohalf.ram(time parms), node3.videohalf.ram(time parms)) else node3.videosmall.ram(time parms)."
	// §4 scenario 1 forms.
	srcScenBest    = "Select BEST (PDA, Laptop)"
	srcScenNearest = "Select NEAREST (PDA, Laptop)"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("If processor-util > 90% then SWITCH(a.b, c)")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokIf, TokIdent, TokGT, TokNumber, TokPercent, TokThen,
		TokIdent, TokLParen, TokIdent, TokDot, TokIdent, TokComma, TokIdent, TokRParen, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("tok[%d] = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexHyphenIdent(t *testing.T) {
	toks, _ := Lex("processor-util")
	if toks[0].Kind != TokIdent || toks[0].Text != "processor-util" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, _ := Lex("IF x > 1 THEN y ELSE z")
	if toks[0].Kind != TokIf || toks[4].Kind != TokThen || toks[6].Kind != TokElse {
		t.Fatalf("toks = %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"a # b", "x ! y"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("%q: want lex error", src)
		}
	}
}

func TestLexNumberThenTerminatorDot(t *testing.T) {
	toks, err := Lex("x > 30.")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokNumber || toks[2].Text != "30" || toks[3].Kind != TokDot {
		t.Fatalf("toks = %v", toks)
	}
}

func TestLexDecimalNumber(t *testing.T) {
	toks, _ := Lex("x > 0.5")
	if toks[2].Text != "0.5" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestParseTable2_450(t *testing.T) {
	r := MustParse(srcBest)
	if r.Select == nil || r.Select.Fn != "BEST" || len(r.Select.Args) != 2 {
		t.Fatalf("rule = %v", r)
	}
	if r.Select.Args[0].Node() != "node1" || r.Select.Args[0].Resource() != "Page1.html" {
		t.Fatalf("arg0 = %v", r.Select.Args[0])
	}
}

func TestParseTable2_455_DoubledParen(t *testing.T) {
	r := MustParse(srcSwitch)
	if r.Cond == nil || r.Then == nil || r.Then.Call == nil || r.Then.Call.Fn != "SWITCH" {
		t.Fatalf("rule = %v", r)
	}
	mc := r.Cond.(*MetricCond)
	if mc.Metric != "processor-util" || len(mc.Bounds) != 1 || mc.Bounds[0].Op != OpGT ||
		mc.Bounds[0].Value != 90 || mc.Bounds[0].Unit != "%" {
		t.Fatalf("cond = %v", mc)
	}
}

func TestParseTable2_595_BandAndElse(t *testing.T) {
	r := MustParse(srcBanded)
	mc := r.Cond.(*MetricCond)
	if mc.Metric != "bandwidth" || len(mc.Bounds) != 2 {
		t.Fatalf("cond = %v", mc)
	}
	if mc.Bounds[0].Op != OpGT || mc.Bounds[0].Value != 30 || mc.Bounds[0].Unit != "Kbps" {
		t.Errorf("bound0 = %v (unit should propagate)", mc.Bounds[0])
	}
	if mc.Bounds[1].Op != OpLT || mc.Bounds[1].Value != 100 || mc.Bounds[1].Unit != "Kbps" {
		t.Errorf("bound1 = %v", mc.Bounds[1])
	}
	if r.Then.Call == nil || len(r.Then.Call.Args) != 3 {
		t.Fatalf("then = %v", r.Then)
	}
	if got := r.Then.Call.Args[0].Args; len(got) != 2 || got[0] != "time" || got[1] != "parms" {
		t.Errorf("target args = %v", got)
	}
	if r.Else == nil || r.Else.Direct == nil || r.Else.Direct.Node() != "node3" {
		t.Fatalf("else = %v", r.Else)
	}
	if r.Else.Direct.Resource() != "videosmall.ram" {
		t.Errorf("else resource = %q", r.Else.Direct.Resource())
	}
}

func TestParseScenario1Forms(t *testing.T) {
	for _, src := range []string{srcScenBest, srcScenNearest} {
		r := MustParse(src)
		if r.Select == nil || len(r.Select.Args) != 2 {
			t.Fatalf("%q: rule = %v", src, r)
		}
		if r.Select.Args[0].Node() != "PDA" || r.Select.Args[1].Node() != "Laptop" {
			t.Fatalf("%q: args = %v", src, r.Select.Args)
		}
	}
}

func TestParseSourcedMetric(t *testing.T) {
	r := MustParse("If processor-util(node1) > 90 then SWITCH(node1.a, node2.a)")
	mc := r.Cond.(*MetricCond)
	if mc.Source != "node1" {
		t.Fatalf("source = %q", mc.Source)
	}
}

func TestParseBoolConds(t *testing.T) {
	r := MustParse("If bandwidth < 50 and battery < 20 or processor-util > 95 then BEST(a, b)")
	bc, ok := r.Cond.(*BoolCond)
	if !ok || bc.OpAnd {
		t.Fatalf("top must be OR, got %v", r.Cond)
	}
	inner, ok := bc.L.(*BoolCond)
	if !ok || !inner.OpAnd {
		t.Fatalf("left must be AND, got %v", bc.L)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                // empty
		"BEST(a,b)",                       // no Select/If head
		"Select FROBNICATE(a)",            // unknown builtin
		"If then BEST(a)",                 // missing condition
		"If x > then BEST(a)",             // missing number
		"If x then BEST(a)",               // no comparison
		"Select BEST()",                   // empty args... lexes ident missing
		"If x > 1 then BEST(a) junk junk", // trailing input
		"Select BEST(a",                   // unclosed
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("%q: error %v is not SyntaxError", src, err)
			}
		}
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	// String() must itself re-parse to the same normal form.
	for _, src := range []string{srcBest, srcSwitch, srcBanded, srcScenBest, srcScenNearest} {
		r1 := MustParse(src)
		r2, err := Parse(r1.String())
		if err != nil {
			t.Fatalf("%q: reparse of %q: %v", src, r1.String(), err)
		}
		if r1.String() != r2.String() {
			t.Errorf("not a fixed point:\n  %q\n  %q", r1.String(), r2.String())
		}
	}
}

// ---------------------------------------------------------------------------
// Evaluation.

func envScenario1() EnvMap {
	// Laptop docked and idle, PDA small and loaded; PDA is nearer.
	return EnvMap{
		"capacity@Laptop": 100, "load@Laptop": 10,
		"capacity@PDA": 20, "load@PDA": 15,
		"distance@Laptop": 12, "distance@PDA": 1,
	}
}

func TestEvalBESTPicksCapacityMinusLoad(t *testing.T) {
	d, err := MustParse(srcScenBest).Eval(&Context{Env: envScenario1()})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DecisionSelect || d.Target.Node() != "Laptop" {
		t.Fatalf("decision = %v", d)
	}
	if d.Score != 90 {
		t.Errorf("score = %v, want 90", d.Score)
	}
}

func TestEvalNEARESTPicksMinDistance(t *testing.T) {
	d, err := MustParse(srcScenNearest).Eval(&Context{Env: envScenario1()})
	if err != nil {
		t.Fatal(err)
	}
	if d.Target.Node() != "PDA" || d.Score != 1 {
		t.Fatalf("decision = %v", d)
	}
}

func TestEvalBESTTieBreaksToFirst(t *testing.T) {
	env := EnvMap{"capacity@a": 10, "load@a": 0, "capacity@b": 10, "load@b": 0}
	d, err := MustParse("Select BEST(a, b)").Eval(&Context{Env: env})
	if err != nil {
		t.Fatal(err)
	}
	if d.Target.Node() != "a" {
		t.Fatalf("tie should go to first candidate, got %v", d.Target)
	}
}

func TestEvalSwitchFiresAboveThreshold(t *testing.T) {
	env := EnvMap{
		"processor-util": 95,
		"capacity@node1": 50, "load@node1": 48,
		"capacity@node2": 50, "load@node2": 5,
	}
	cur := Target{Segments: []string{"node1", "Page1", "html"}}
	d, err := MustParse(srcSwitch).Eval(&Context{Env: env, Current: &cur})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DecisionSwitch || d.Target.Node() != "node2" {
		t.Fatalf("decision = %v", d)
	}
}

func TestEvalSwitchQuietBelowThreshold(t *testing.T) {
	env := EnvMap{"processor-util": 90} // boundary: strictly-greater must NOT fire
	d, err := MustParse(srcSwitch).Eval(&Context{Env: env})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DecisionNone {
		t.Fatalf("decision at exactly 90%% = %v, want none", d)
	}
}

func TestEvalSwitchExcludesCurrentEvenIfBest(t *testing.T) {
	env := EnvMap{
		"processor-util": 99,
		"capacity@node1": 100, "load@node1": 0, // current node scores best...
		"capacity@node2": 10, "load@node2": 5,
	}
	cur := Target{Segments: []string{"node1", "Page1", "html"}}
	d, _ := MustParse(srcSwitch).Eval(&Context{Env: env, Current: &cur})
	if d.Target.Node() != "node2" {
		t.Fatalf("SWITCH must leave the overloaded node, got %v", d.Target)
	}
}

func TestEvalSwitchAllExcludedFallsBack(t *testing.T) {
	env := EnvMap{"processor-util": 99, "capacity@node1": 10, "load@node1": 1}
	cur := Target{Segments: []string{"node1", "x"}}
	d, err := MustParse("If processor-util > 90 then SWITCH(node1.x)").Eval(&Context{Env: env, Current: &cur})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DecisionSwitch || d.Target.Node() != "node1" {
		t.Fatalf("single-replica fallback failed: %v", d)
	}
}

func TestEvalBandedRule595(t *testing.T) {
	base := EnvMap{
		"capacity@node1": 10, "load@node1": 9,
		"capacity@node2": 10, "load@node2": 1,
		"capacity@node3": 10, "load@node3": 5,
	}
	cases := []struct {
		bw       float64
		wantNode string
		wantRes  string
	}{
		{50, "node2", "videohalf.ram"},   // in band → BEST of three
		{30, "node3", "videosmall.ram"},  // at lower edge: > is strict → else
		{100, "node3", "videosmall.ram"}, // at upper edge: < is strict → else
		{10, "node3", "videosmall.ram"},  // below band → else
		{500, "node3", "videosmall.ram"}, // above band → else
		{99.9, "node2", "videohalf.ram"}, // just inside
	}
	r := MustParse(srcBanded)
	for _, c := range cases {
		env := EnvMap{}
		for k, v := range base {
			env[k] = v
		}
		env["bandwidth"] = c.bw
		d, err := r.Eval(&Context{Env: env})
		if err != nil {
			t.Fatalf("bw=%v: %v", c.bw, err)
		}
		if d.Target.Node() != c.wantNode || d.Target.Resource() != c.wantRes {
			t.Errorf("bw=%v: got %s.%s, want %s.%s", c.bw,
				d.Target.Node(), d.Target.Resource(), c.wantNode, c.wantRes)
		}
	}
}

func TestEvalUnsourcedMetricUsesSelf(t *testing.T) {
	env := EnvMap{"processor-util@me": 95, "capacity@a": 1, "load@a": 0}
	r := MustParse("If processor-util > 90 then BEST(a)")
	d, err := r.Eval(&Context{Env: env, Self: "me"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DecisionSelect {
		t.Fatalf("decision = %v", d)
	}
}

func TestEvalMissingMetricError(t *testing.T) {
	r := MustParse("If bandwidth < 10 then BEST(a)")
	_, err := r.Eval(&Context{Env: EnvMap{}})
	var me *MetricError
	if !errors.As(err, &me) || me.Metric != "bandwidth" {
		t.Fatalf("want MetricError, got %v", err)
	}
}

func TestEvalBoolShortCircuit(t *testing.T) {
	// OR short-circuits: right side references a missing metric but
	// must not be evaluated when the left is true.
	env := EnvMap{"bandwidth": 5, "capacity@a": 1, "load@a": 0}
	r := MustParse("If bandwidth < 10 or missing-metric > 1 then BEST(a)")
	d, err := r.Eval(&Context{Env: env})
	if err != nil {
		t.Fatalf("short-circuit failed: %v", err)
	}
	if d.Kind != DecisionSelect {
		t.Fatalf("decision = %v", d)
	}
	// AND short-circuits on false left.
	r2 := MustParse("If bandwidth > 10 and missing-metric > 1 then BEST(a)")
	d2, err := r2.Eval(&Context{Env: env})
	if err != nil || d2.Kind != DecisionNone {
		t.Fatalf("AND short-circuit: %v %v", d2, err)
	}
}

func TestRuleSetPriorityOrder(t *testing.T) {
	env := EnvMap{
		"processor-util": 95, "bandwidth": 50,
		"capacity@a": 10, "load@a": 0,
		"capacity@b": 5, "load@b": 0,
	}
	high := PrioritisedRule{ID: 455, Priority: 0,
		Rule: MustParse("If processor-util > 90 then SWITCH(a.x, b.x)")}
	low := PrioritisedRule{ID: 450, Priority: 1,
		Rule: MustParse("Select BEST(a.x, b.x)")}
	rs := NewRuleSet(low, high)
	d, pr, err := rs.FirstDecision(&Context{Env: env})
	if err != nil {
		t.Fatal(err)
	}
	if pr.ID != 455 || d.Kind != DecisionSwitch {
		t.Fatalf("decision = %v from rule %d", d, pr.ID)
	}
	all := rs.AllDecisions(&Context{Env: env})
	if len(all) != 2 {
		t.Fatalf("all = %v", all)
	}
}

func TestRuleSetSkipsUnavailableMetrics(t *testing.T) {
	env := EnvMap{"capacity@a": 1, "load@a": 0}
	rs := NewRuleSet(
		PrioritisedRule{ID: 1, Priority: 0, Rule: MustParse("If no-such > 1 then BEST(a)")},
		PrioritisedRule{ID: 2, Priority: 1, Rule: MustParse("Select BEST(a)")},
	)
	d, pr, err := rs.FirstDecision(&Context{Env: env})
	if err != nil {
		t.Fatal(err)
	}
	if pr.ID != 2 || d.Kind != DecisionSelect {
		t.Fatalf("decision = %v from %v", d, pr)
	}
}

func TestRuleSetNothingFires(t *testing.T) {
	rs := NewRuleSet(PrioritisedRule{ID: 1, Rule: MustParse("If x > 1 then BEST(a)")})
	d, pr, err := rs.FirstDecision(&Context{Env: EnvMap{}})
	if d.Kind != DecisionNone || pr != nil || err == nil {
		t.Fatalf("d=%v pr=%v err=%v", d, pr, err)
	}
	// With the metric present but guard false: no error, no decision.
	d2, pr2, err2 := rs.FirstDecision(&Context{Env: EnvMap{"x": 0}})
	if d2.Kind != DecisionNone || pr2 != nil || err2 != nil {
		t.Fatalf("d=%v pr=%v err=%v", d2, pr2, err2)
	}
}

// Property: for any capacities/loads, BEST always returns the argmax
// of capacity−load among candidates.
func TestBESTArgmaxProperty(t *testing.T) {
	f := func(caps, loads [4]uint16) bool {
		env := EnvMap{}
		names := []string{"n0", "n1", "n2", "n3"}
		bestIdx, bestScore := 0, float64(caps[0])-float64(loads[0])
		for i, n := range names {
			env["capacity@"+n] = float64(caps[i])
			env["load@"+n] = float64(loads[i])
			if s := float64(caps[i]) - float64(loads[i]); s > bestScore {
				bestIdx, bestScore = i, s
			}
		}
		d, err := MustParse("Select BEST(n0, n1, n2, n3)").Eval(&Context{Env: env})
		if err != nil {
			return false
		}
		return d.Target.Node() == names[bestIdx]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the banded rule fires its then-branch iff 30 < bw < 100.
func TestBandedGuardProperty(t *testing.T) {
	r := MustParse(srcBanded)
	f := func(bwRaw uint16) bool {
		bw := float64(bwRaw) / 2
		env := EnvMap{
			"bandwidth":      bw,
			"capacity@node1": 1, "load@node1": 0,
			"capacity@node2": 1, "load@node2": 0,
			"capacity@node3": 1, "load@node3": 0,
		}
		d, err := r.Eval(&Context{Env: env})
		if err != nil {
			return false
		}
		inBand := bw > 30 && bw < 100
		if inBand {
			return strings.Contains(d.Target.Resource(), "videohalf")
		}
		return strings.Contains(d.Target.Resource(), "videosmall")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTargetAccessors(t *testing.T) {
	tg := Target{Segments: []string{"node1", "Page1", "html"}, Args: []string{"t", "p"}}
	if tg.Node() != "node1" || tg.Resource() != "Page1.html" {
		t.Fatalf("accessors: %q %q", tg.Node(), tg.Resource())
	}
	if tg.String() != "node1.Page1.html(t p)" {
		t.Fatalf("string = %q", tg.String())
	}
	if (Target{}).Node() != "" || (Target{}).Resource() != "" {
		t.Fatal("empty target accessors")
	}
	if !tg.Equal(tg) || tg.Equal(Target{}) {
		t.Fatal("Equal broken")
	}
}

func TestCmpOpApplyAll(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b float64
		want bool
	}{
		{OpLT, 1, 2, true}, {OpLT, 2, 2, false},
		{OpGT, 3, 2, true}, {OpGT, 2, 2, false},
		{OpLE, 2, 2, true}, {OpLE, 3, 2, false},
		{OpGE, 2, 2, true}, {OpGE, 1, 2, false},
		{OpEQ, 2, 2, true}, {OpEQ, 1, 2, false},
		{OpNE, 1, 2, true}, {OpNE, 2, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v", c.a, c.op, c.b, got)
		}
	}
}

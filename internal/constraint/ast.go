package constraint

import (
	"fmt"
	"strings"
)

// Target is a resource path such as `node1.Page1.html` or
// `node3.videohalf.ram(time parms)` or a bare device name `PDA`. The
// first segment names the hosting node; the rest locate the resource;
// Args carries the free-form parameter list the paper writes as
// "(time parms)".
type Target struct {
	Segments []string
	Args     []string
}

// Node returns the hosting node (first path segment).
func (t Target) Node() string {
	if len(t.Segments) == 0 {
		return ""
	}
	return t.Segments[0]
}

// Resource returns the path below the node, or "" for a bare node.
func (t Target) Resource() string {
	if len(t.Segments) <= 1 {
		return ""
	}
	return strings.Join(t.Segments[1:], ".")
}

func (t Target) String() string {
	s := strings.Join(t.Segments, ".")
	if len(t.Args) > 0 {
		s += "(" + strings.Join(t.Args, " ") + ")"
	}
	return s
}

// Equal reports structural equality.
func (t Target) Equal(o Target) bool { return t.String() == o.String() }

// Call is a builtin invocation: BEST, NEAREST or SWITCH over a
// candidate list. The builtins are "parameterised with representations
// of the two computing nodes to be compared" (§4).
type Call struct {
	Fn   string // canonical upper-case: BEST | NEAREST | SWITCH
	Args []Target
	// Pos is the byte offset of the builtin name in the rule source.
	Pos int
}

func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Fn + "(" + strings.Join(parts, ", ") + ")"
}

// Action is what a rule does when it applies: either a builtin call or
// a direct target ("else node3.videosmall.ram").
type Action struct {
	Call   *Call
	Direct *Target
}

func (a Action) String() string {
	if a.Call != nil {
		return a.Call.String()
	}
	if a.Direct != nil {
		return a.Direct.String()
	}
	return "<none>"
}

// CmpOp is a comparison operator in a condition.
type CmpOp int

// Comparison operators.
const (
	OpLT CmpOp = iota
	OpGT
	OpLE
	OpGE
	OpEQ
	OpNE
)

func (o CmpOp) String() string {
	return [...]string{"<", ">", "<=", ">=", "=", "!="}[o]
}

// Apply evaluates `a op b`.
func (o CmpOp) Apply(a, b float64) bool {
	switch o {
	case OpLT:
		return a < b
	case OpGT:
		return a > b
	case OpLE:
		return a <= b
	case OpGE:
		return a >= b
	case OpEQ:
		return a == b
	default:
		return a != b
	}
}

// Bound is one comparison against a literal, with an optional unit
// ("90 %", "100 Kbps"). Units are recorded for display and checked
// for consistency but do not rescale values: monitors publish in the
// rule's units.
type Bound struct {
	Op    CmpOp
	Value float64
	Unit  string
	// Pos is the byte offset of the comparison operator in the rule
	// source (0 for programmatically built rules).
	Pos int
}

func (b Bound) String() string {
	s := fmt.Sprintf("%s %g", b.Op, b.Value)
	if b.Unit != "" {
		s += " " + b.Unit
	}
	return s
}

// Cond is a condition tree node.
type Cond interface {
	fmt.Stringer
	// Eval returns whether the condition holds in ctx, or an error if
	// a referenced metric is unavailable.
	Eval(ctx *Context) (bool, error)
}

// MetricCond compares one metric against one or more bounds; multiple
// bounds express the paper's banded form `bandwidth > 30 < 100 Kbps`
// (all must hold). Source optionally pins the metric to a node:
// `processor-util(node1) > 90%`.
type MetricCond struct {
	Metric string
	Source string
	Bounds []Bound
	// Pos is the byte offset of the metric name in the rule source.
	Pos int
}

func (c *MetricCond) String() string {
	name := c.Metric
	if c.Source != "" {
		name += "(" + c.Source + ")"
	}
	parts := make([]string, len(c.Bounds))
	for i, b := range c.Bounds {
		parts[i] = b.String()
	}
	return name + " " + strings.Join(parts, " ")
}

// Eval implements Cond.
func (c *MetricCond) Eval(ctx *Context) (bool, error) {
	src := c.Source
	if src == "" {
		src = ctx.Self
	}
	v, ok := ctx.Env.Metric(c.Metric, src)
	if !ok {
		return false, &MetricError{Metric: c.Metric, Source: src}
	}
	for _, b := range c.Bounds {
		if !b.Op.Apply(v, b.Value) {
			return false, nil
		}
	}
	return true, nil
}

// BoolCond combines two conditions with and/or.
type BoolCond struct {
	OpAnd bool
	L, R  Cond
}

func (c *BoolCond) String() string {
	op := "or"
	if c.OpAnd {
		op = "and"
	}
	return "(" + c.L.String() + " " + op + " " + c.R.String() + ")"
}

// Eval implements Cond with short-circuit semantics.
func (c *BoolCond) Eval(ctx *Context) (bool, error) {
	l, err := c.L.Eval(ctx)
	if err != nil {
		return false, err
	}
	if c.OpAnd && !l {
		return false, nil
	}
	if !c.OpAnd && l {
		return true, nil
	}
	return c.R.Eval(ctx)
}

// Rule is a parsed constraint: either an unconditional Select or a
// guarded If/then/else.
type Rule struct {
	// Select is non-nil for `Select BEST(...)` rules.
	Select *Call
	// Cond/Then/Else are set for `If ... then ... else ...` rules.
	Cond Cond
	Then *Action
	Else *Action
	// Src preserves the original text.
	Src string
}

func (r *Rule) String() string {
	if r.Select != nil {
		return "Select " + r.Select.String()
	}
	s := "If " + r.Cond.String() + " then " + r.Then.String()
	if r.Else != nil {
		s += " else " + r.Else.String()
	}
	return s
}

// MetricError reports an unavailable metric during evaluation.
type MetricError struct {
	Metric string
	Source string
}

func (e *MetricError) Error() string {
	if e.Source == "" {
		return fmt.Sprintf("constraint: metric %q unavailable", e.Metric)
	}
	return fmt.Sprintf("constraint: metric %q unavailable at %q", e.Metric, e.Source)
}

package constraint

import (
	"strconv"
	"strings"
)

// Parse compiles one constraint rule from source. The grammar covers
// every form the paper writes:
//
//	rule      = "Select" call
//	          | "If" cond "then" action [ "else" action ] [ "." ]
//	cond      = orCond
//	orCond    = andCond { "or" andCond }
//	andCond   = metric { "and" metric }
//	metric    = IDENT [ "(" IDENT ")" ] bound { bound }
//	bound     = cmp NUMBER [ unit ]
//	cmp       = "<" | ">" | "<=" | ">=" | "=" | "!="
//	unit      = "%" | IDENT            (Kbps, ms, ...)
//	action    = call | target
//	call      = IDENT "(" target { "," target } ")"
//	target    = IDENT { "." IDENT } [ "(" words ")" ]
//
// Builtin names (BEST, NEAREST, SWITCH) are recognised
// case-insensitively and canonicalised to upper case; an action whose
// head identifier is followed by "(" and is a known builtin parses as
// a call, otherwise as a target.
func Parse(src string) (*Rule, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	r, err := p.rule()
	if err != nil {
		return nil, err
	}
	r.Src = src
	return r, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(src string) *Rule {
	r, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return r
}

// Builtins recognised by the evaluator.
var builtins = map[string]bool{"BEST": true, "NEAREST": true, "SWITCH": true}

// IsBuiltin reports whether name is a recognised builtin function.
func IsBuiltin(name string) bool { return builtins[strings.ToUpper(name)] }

type parser struct {
	toks []Token
	pos  int
	src  string
}

func (p *parser) peek() Token       { return p.toks[p.pos] }
func (p *parser) next() Token       { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k TokKind) bool { return p.toks[p.pos].Kind == k }

func (p *parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		t := p.peek()
		return Token{}, &SyntaxError{Pos: t.Pos, Near: t.Text,
			Msg: "expected " + k.String() + ", got " + t.Kind.String()}
	}
	return p.next(), nil
}

func (p *parser) rule() (*Rule, error) {
	switch p.peek().Kind {
	case TokSelect:
		p.next()
		call, err := p.call()
		if err != nil {
			return nil, err
		}
		if err := p.finish(); err != nil {
			return nil, err
		}
		return &Rule{Select: call}, nil
	case TokIf:
		p.next()
		cond, err := p.orCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokThen); err != nil {
			return nil, err
		}
		then, err := p.action()
		if err != nil {
			return nil, err
		}
		r := &Rule{Cond: cond, Then: then}
		if p.at(TokElse) {
			p.next()
			els, err := p.action()
			if err != nil {
				return nil, err
			}
			r.Else = els
		}
		if err := p.finish(); err != nil {
			return nil, err
		}
		return r, nil
	default:
		t := p.peek()
		return nil, &SyntaxError{Pos: t.Pos, Near: t.Text, Msg: "rule must start with Select or If"}
	}
}

// finish consumes an optional trailing period and requires EOF.
func (p *parser) finish() error {
	if p.at(TokDot) {
		p.next()
	}
	if !p.at(TokEOF) {
		t := p.peek()
		return &SyntaxError{Pos: t.Pos, Near: t.Text, Msg: "trailing input after rule"}
	}
	return nil
}

func (p *parser) orCond() (Cond, error) {
	l, err := p.andCond()
	if err != nil {
		return nil, err
	}
	for p.at(TokOr) {
		p.next()
		r, err := p.andCond()
		if err != nil {
			return nil, err
		}
		l = &BoolCond{OpAnd: false, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andCond() (Cond, error) {
	l, err := p.metricCond()
	if err != nil {
		return nil, err
	}
	for p.at(TokAnd) {
		p.next()
		r, err := p.metricCond()
		if err != nil {
			return nil, err
		}
		l = &BoolCond{OpAnd: true, L: l, R: r}
	}
	return l, nil
}

func (p *parser) metricCond() (Cond, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	mc := &MetricCond{Metric: name.Text, Pos: name.Pos}
	if p.at(TokLParen) {
		p.next()
		src, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		mc.Source = src.Text
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	for {
		op, ok := cmpFor(p.peek().Kind)
		if !ok {
			break
		}
		opTok := p.next()
		num, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(num.Text, 64)
		if err != nil {
			return nil, &SyntaxError{Pos: num.Pos, Near: num.Text, Msg: "bad number"}
		}
		b := Bound{Op: op, Value: v, Pos: opTok.Pos}
		// Optional unit: % or a bare ident that is not a keyword-ish
		// continuation. `Kbps then` — "then" is its own token kind, so
		// any TokIdent here is a unit... unless another bound follows,
		// which starts with a comparison token anyway.
		if p.at(TokPercent) {
			p.next()
			b.Unit = "%"
		} else if p.at(TokIdent) {
			// Lookahead: a unit ident must be followed by then/else/
			// and/or/cmp/EOF — otherwise it belongs to something else.
			save := p.pos
			u := p.next()
			if p.at(TokThen) || p.at(TokElse) || p.at(TokAnd) || p.at(TokOr) || p.at(TokEOF) || isCmpKind(p.peek().Kind) {
				b.Unit = u.Text
			} else {
				p.pos = save
			}
		}
		mc.Bounds = append(mc.Bounds, b)
	}
	if len(mc.Bounds) == 0 {
		t := p.peek()
		return nil, &SyntaxError{Pos: t.Pos, Near: t.Text, Msg: "condition needs at least one comparison"}
	}
	// Unit consistency within a band: the paper writes the unit once
	// (`> 30 < 100 Kbps`); propagate the last unit to unitless bounds.
	unit := ""
	for _, b := range mc.Bounds {
		if b.Unit != "" {
			unit = b.Unit
		}
	}
	for i := range mc.Bounds {
		if mc.Bounds[i].Unit == "" {
			mc.Bounds[i].Unit = unit
		}
	}
	return mc, nil
}

func cmpFor(k TokKind) (CmpOp, bool) {
	switch k {
	case TokLT:
		return OpLT, true
	case TokGT:
		return OpGT, true
	case TokLE:
		return OpLE, true
	case TokGE:
		return OpGE, true
	case TokEQ:
		return OpEQ, true
	case TokNE:
		return OpNE, true
	}
	return 0, false
}

func isCmpKind(k TokKind) bool { _, ok := cmpFor(k); return ok }

func (p *parser) action() (*Action, error) {
	head, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if IsBuiltin(head.Text) && p.at(TokLParen) {
		call, err := p.callArgs(strings.ToUpper(head.Text), head.Pos)
		if err != nil {
			return nil, err
		}
		return &Action{Call: call}, nil
	}
	t, err := p.targetFrom(head)
	if err != nil {
		return nil, err
	}
	return &Action{Direct: t}, nil
}

func (p *parser) call() (*Call, error) {
	head, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if !IsBuiltin(head.Text) {
		return nil, &SyntaxError{Pos: head.Pos, Near: head.Text,
			Msg: "unknown builtin (want BEST, NEAREST or SWITCH)"}
	}
	return p.callArgs(strings.ToUpper(head.Text), head.Pos)
}

func (p *parser) callArgs(fn string, pos int) (*Call, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	// The paper's Table 2 row 455 has a doubled open paren:
	// `SWITCH ((node1.Page1.html, node2.Page1.html)`. Accept and
	// normalise it.
	extraParen := false
	if p.at(TokLParen) {
		p.next()
		extraParen = true
	}
	c := &Call{Fn: fn, Pos: pos}
	for {
		t, err := p.target()
		if err != nil {
			return nil, err
		}
		c.Args = append(c.Args, *t)
		if p.at(TokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if extraParen && p.at(TokRParen) {
		p.next()
	}
	if len(c.Args) < 1 {
		return nil, &SyntaxError{Pos: p.peek().Pos, Msg: fn + " needs at least one candidate"}
	}
	return c, nil
}

func (p *parser) target() (*Target, error) {
	head, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	return p.targetFrom(head)
}

// targetFrom parses the remainder of a target whose first segment is
// already consumed.
func (p *parser) targetFrom(head Token) (*Target, error) {
	t := &Target{Segments: []string{head.Text}}
	for p.at(TokDot) {
		// A dot at end-of-rule is the terminator, not a path segment.
		if p.toks[p.pos+1].Kind != TokIdent && p.toks[p.pos+1].Kind != TokNumber {
			break
		}
		p.next()
		seg := p.next()
		t.Segments = append(t.Segments, seg.Text)
	}
	if p.at(TokLParen) {
		p.next()
		for !p.at(TokRParen) && !p.at(TokEOF) {
			w := p.next()
			t.Args = append(t.Args, w.Text)
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	return t, nil
}
